package verify

import (
	"fmt"
	"math"
	"math/rand"

	"moment/internal/maxflow"
)

// RandomNetwork deterministically derives a pseudo-random flow network from
// rng: a layered DAG (2–5 layers, 1–4 nodes wide) with dense inter-layer
// edges, occasional parallel duplicates and layer-skipping shortcuts, plus
// virtual source/sink arcs that are sometimes infinite — the same shape as
// the planner's augmented communication graphs. Capacities mix three
// regimes (O(100) uniform, near-Eps, and bandwidth-scale 1e9..1e11) to
// exercise the comparison-epsilon semantics. Every s→t path traverses at
// least one finite inter-layer edge, so the maximum flow is always finite.
//
// The same rng state always yields the same network; seed rand.NewSource
// explicitly for reproducible fuzzing.
func RandomNetwork(rng *rand.Rand) (g *maxflow.Graph, s, t int) {
	layers := 2 + rng.Intn(4)
	width := 1 + rng.Intn(4)
	g = maxflow.New(2 + layers*width)
	s, t = 0, 1
	node := func(l, w int) int { return 2 + l*width + w }

	capOf := func() float64 {
		switch rng.Intn(10) {
		case 0:
			return maxflow.Eps * (0.1 + 10*rng.Float64()) // near the comparison epsilon
		case 1, 2:
			return 1e9 * (1 + 100*rng.Float64()) // profiled-bandwidth scale
		default:
			return 100 * rng.Float64()
		}
	}
	// Virtual arcs may be infinite, like the planner's SSD-pool arcs.
	virtualCap := func() float64 {
		if rng.Intn(4) == 0 {
			return maxflow.Inf
		}
		return capOf()
	}

	for w := 0; w < width; w++ {
		if rng.Float64() < 0.8 {
			g.AddEdge(s, node(0, w), virtualCap())
		}
	}
	for l := 0; l+1 < layers; l++ {
		for a := 0; a < width; a++ {
			for b := 0; b < width; b++ {
				if rng.Float64() < 0.75 {
					g.AddEdge(node(l, a), node(l+1, b), capOf())
					if rng.Float64() < 0.2 {
						g.AddEdge(node(l, a), node(l+1, b), capOf()) // parallel edge
					}
				}
			}
			if l+2 < layers && rng.Float64() < 0.15 {
				g.AddEdge(node(l, a), node(l+2, rng.Intn(width)), capOf())
			}
		}
	}
	for w := 0; w < width; w++ {
		if rng.Float64() < 0.8 {
			g.AddEdge(node(layers-1, w), t, virtualCap())
		}
	}
	return g, s, t
}

// CheckDifferential cross-checks all three solvers on independent clones of
// g: each solution must carry a valid certificate (CheckFlow), the three
// values must agree, and the Dinic solution must survive the Decompose
// round trip. Returns the agreed maximum-flow value.
func CheckDifferential(g *maxflow.Graph, s, t int) (float64, error) {
	solvers := []maxflow.Solver{maxflow.Dinic, maxflow.EdmondsKarp, maxflow.PushRelabel}
	vals := make([]float64, len(solvers))
	totalCap := 0.0
	for i := 0; i < g.M(); i++ {
		if c := g.Capacity(maxflow.EdgeID(2 * i)); !math.IsInf(c, 1) {
			totalCap += c
		}
	}
	for i, sv := range solvers {
		c := g.Clone()
		v := c.MaxFlow(s, t, sv)
		cert, err := CheckFlow(c, s, t)
		if err != nil {
			return 0, fmt.Errorf("%v: %w", sv, err)
		}
		if math.Abs(cert.Value-v) > tol(v)+float64(g.M())*maxflow.Eps+capSlack(totalCap) {
			return 0, fmt.Errorf("%v reported %v but edges carry %v", sv, v, cert.Value)
		}
		vals[i] = v
		if sv == maxflow.Dinic {
			if err := CheckDecompose(c, s, t, v); err != nil {
				return 0, fmt.Errorf("%v: %w", sv, err)
			}
		}
	}
	for i := 1; i < len(vals); i++ {
		slack := tol(math.Max(vals[0], vals[i])) + float64(g.M())*maxflow.Eps + capSlack(totalCap)
		if math.Abs(vals[i]-vals[0]) > slack {
			return 0, fmt.Errorf("solver disagreement: %v=%v vs %v=%v",
				solvers[0], vals[0], solvers[i], vals[i])
		}
	}
	return vals[0], nil
}
