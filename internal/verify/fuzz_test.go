package verify

import (
	"math"
	"math/rand"
	"testing"

	"moment/internal/maxflow"
)

// The differential fuzzer: ≥200 seeded random networks (layered DAGs with
// parallel edges, Inf virtual arcs, and near-Eps capacities) must agree
// across Dinic, Edmonds–Karp, and push–relabel, each run carrying a valid
// certificate and a clean Decompose round trip. Seeds are fixed: a failure
// here reproduces exactly.
func TestDifferentialSolverAgreement(t *testing.T) {
	positive := 0
	for seed := int64(0); seed < 250; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g, s, sink := RandomNetwork(rng)
		v, err := CheckDifferential(g, s, sink)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if v > maxflow.Eps {
			positive++
		}
	}
	// The generator must actually exercise the solvers, not produce a pile
	// of disconnected zero-flow instances.
	if positive < 150 {
		t.Fatalf("only %d/250 networks had positive flow; generator too sparse", positive)
	}
}

func TestRandomNetworkDeterministic(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g1, s1, t1 := RandomNetwork(rand.New(rand.NewSource(seed)))
		g2, s2, t2 := RandomNetwork(rand.New(rand.NewSource(seed)))
		if g1.N() != g2.N() || g1.M() != g2.M() || s1 != s2 || t1 != t2 {
			t.Fatalf("seed %d: shapes differ: n=%d/%d m=%d/%d", seed, g1.N(), g2.N(), g1.M(), g2.M())
		}
		v1 := g1.MaxFlow(s1, t1, maxflow.Dinic)
		v2 := g2.MaxFlow(s2, t2, maxflow.Dinic)
		if v1 != v2 {
			t.Fatalf("seed %d: values differ: %v vs %v", seed, v1, v2)
		}
	}
}

func TestRandomNetworkCoversCapacityRegimes(t *testing.T) {
	var nearEps, inf, large int
	for seed := int64(0); seed < 100; seed++ {
		g, _, _ := RandomNetwork(rand.New(rand.NewSource(seed)))
		for i := 0; i < g.M(); i++ {
			c := g.Capacity(maxflow.EdgeID(2 * i))
			switch {
			case math.IsInf(c, 1):
				inf++
			case c < maxflow.Eps*100:
				nearEps++
			case c >= 1e9:
				large++
			}
		}
	}
	if nearEps == 0 || inf == 0 || large == 0 {
		t.Fatalf("capacity regimes not covered: nearEps=%d inf=%d large=%d", nearEps, inf, large)
	}
}
