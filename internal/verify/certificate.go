package verify

import (
	"fmt"
	"math"

	"moment/internal/maxflow"
)

// tol is the absolute slack allowed for a quantity of the given scale.
// Solvers compare residuals against maxflow.Eps and accumulate float error
// over many augmentations, so certificates accept Eps plus a small relative
// term; planner quantities are bytes (~1e9..1e12), where 1e-7 relative is
// far below anything a real bug would produce.
func tol(scale float64) float64 {
	return maxflow.Eps + 1e-7*math.Abs(scale)
}

// capSlack is the float-noise floor for flow arithmetic against capacities
// of the given total magnitude: residual updates (resid -= d) round at
// ulp(cap) ≈ 2e-16·cap per operation, and a solve performs many of them.
// 1e-14·cap masks only sub-ulp-accumulation noise — a real conservation or
// duality bug strands at least one path's bottleneck, which on a network of
// scale cap is many orders of magnitude larger.
func capSlack(capSum float64) float64 {
	return 1e-14 * capSum
}

// Certificate is the evidence that a flow is a valid maximum flow: its
// value together with the minimum cut whose crossing capacity matches it.
type Certificate struct {
	// Value is the certified flow value (net flow out of the source).
	Value float64
	// CutEdges are the forward edges crossing the verified minimum cut.
	CutEdges []maxflow.EdgeID
	// SourceSide marks the nodes on the source side of that cut.
	SourceSide []bool
}

// CheckFlow verifies that the flow currently recorded on g is a valid
// maximum s→t flow:
//
//  1. conservation — at every node besides s and t, inflow equals outflow;
//  2. capacity — no edge carries more than its capacity (Eps semantics);
//  3. duality — no augmenting path remains in the residual graph, and the
//     capacity crossing the source-reachable cut equals the flow value
//     (the max-flow = min-cut certificate).
//
// On success it returns the certificate; any violation is an error naming
// the node or edge at fault.
func CheckFlow(g *maxflow.Graph, s, t int) (*Certificate, error) {
	if s < 0 || s >= g.N() || t < 0 || t >= g.N() || s == t {
		return nil, fmt.Errorf("verify: bad terminals s=%d t=%d n=%d", s, t, g.N())
	}
	totalCap := 0.0
	for i := 0; i < g.M(); i++ {
		if c := g.Capacity(maxflow.EdgeID(2 * i)); !math.IsInf(c, 1) {
			totalCap += c
		}
	}
	in := make([]float64, g.N())
	out := make([]float64, g.N())
	incidentCap := make([]float64, g.N())
	for i := 0; i < g.M(); i++ {
		e := maxflow.EdgeID(2 * i)
		f := g.Flow(e)
		c := g.Capacity(e)
		u, v := g.Endpoints(e)
		if f < 0 || math.IsNaN(f) {
			return nil, fmt.Errorf("verify: edge %d (%d→%d) carries invalid flow %v", e, u, v, f)
		}
		scale := c
		if math.IsInf(c, 1) {
			// Infinite arcs see transients up to the total finite capacity
			// (push–relabel saturates them with exactly that bound), so
			// their flow readings carry noise at that magnitude.
			scale = totalCap
		} else if f > c+tol(c) {
			return nil, fmt.Errorf("verify: edge %d (%d→%d) over capacity: flow %v > cap %v", e, u, v, f, c)
		}
		incidentCap[u] += scale
		incidentCap[v] += scale
		out[u] += f
		in[v] += f
	}
	for v := 0; v < g.N(); v++ {
		if v == s || v == t {
			continue
		}
		if d := math.Abs(in[v] - out[v]); d > tol(in[v]+out[v])+capSlack(incidentCap[v]) {
			return nil, fmt.Errorf("verify: conservation violated at node %d (%s): in %v, out %v",
				v, g.Label(v), in[v], out[v])
		}
	}
	value := out[s] - in[s]
	if sv := in[t] - out[t]; math.Abs(value-sv) > tol(value)+tol(sv)+capSlack(totalCap) {
		return nil, fmt.Errorf("verify: source emits %v but sink absorbs %v", value, sv)
	}

	cutEdges, side := g.MinCut(s)
	if side[t] {
		return nil, fmt.Errorf("verify: flow not maximum: augmenting path from %d to %d remains", s, t)
	}
	cutCap := 0.0
	for _, e := range cutEdges {
		c := g.Capacity(e)
		if math.IsInf(c, 1) {
			u, v := g.Endpoints(e)
			return nil, fmt.Errorf("verify: infinite-capacity edge %d (%d→%d) crosses the min cut of a finite flow", e, u, v)
		}
		if f := g.Flow(e); f < c-tol(c) {
			u, v := g.Endpoints(e)
			return nil, fmt.Errorf("verify: cut edge %d (%d→%d) unsaturated: flow %v < cap %v", e, u, v, f, c)
		}
		cutCap += c
	}
	// Each residual comparison contributes up to Eps of slack, so the
	// duality gap tolerance scales with the edge count (plus the float
	// noise floor of the network's capacity magnitude).
	if gap := math.Abs(cutCap - value); gap > tol(math.Max(cutCap, value))+float64(g.M())*maxflow.Eps+capSlack(totalCap) {
		return nil, fmt.Errorf("verify: duality gap: min-cut capacity %v vs flow value %v", cutCap, value)
	}
	return &Certificate{Value: value, CutEdges: cutEdges, SourceSide: side}, nil
}

// CheckDecompose verifies the path-decomposition round trip for the flow
// currently on g: the returned paths all run s→t along connected forward
// edges, each path's edges carry at least the path amount, and the amounts
// sum back to the flow value.
func CheckDecompose(g *maxflow.Graph, s, t int, value float64) error {
	paths := g.Decompose(s, t)
	sum := 0.0
	totalCap := 0.0
	for i := 0; i < g.M(); i++ {
		if c := g.Capacity(maxflow.EdgeID(2 * i)); !math.IsInf(c, 1) {
			totalCap += c
		}
	}
	for pi, p := range paths {
		if p.Amount <= 0 || math.IsInf(p.Amount, 0) || math.IsNaN(p.Amount) {
			return fmt.Errorf("verify: path %d has invalid amount %v", pi, p.Amount)
		}
		if len(p.Nodes) != len(p.Edges)+1 {
			return fmt.Errorf("verify: path %d has %d nodes for %d edges", pi, len(p.Nodes), len(p.Edges))
		}
		if p.Nodes[0] != s || p.Nodes[len(p.Nodes)-1] != t {
			return fmt.Errorf("verify: path %d runs %d→%d, want %d→%d",
				pi, p.Nodes[0], p.Nodes[len(p.Nodes)-1], s, t)
		}
		for j, e := range p.Edges {
			u, v := g.Endpoints(e)
			if u != p.Nodes[j] || v != p.Nodes[j+1] {
				return fmt.Errorf("verify: path %d edge %d is (%d→%d), nodes say (%d→%d)",
					pi, j, u, v, p.Nodes[j], p.Nodes[j+1])
			}
			if f := g.Flow(e); f < p.Amount-tol(f) {
				return fmt.Errorf("verify: path %d routes %v over edge %d carrying only %v",
					pi, p.Amount, e, f)
			}
		}
		sum += p.Amount
	}
	if math.Abs(sum-value) > tol(value)+float64(len(paths))*maxflow.Eps+capSlack(totalCap) {
		return fmt.Errorf("verify: decomposition sums to %v, flow value is %v (%d paths)",
			sum, value, len(paths))
	}
	return nil
}
