package verify

import (
	"fmt"
	"math"

	"moment/internal/ddak"
	"moment/internal/flownet"
	"moment/internal/maxflow"
	"moment/internal/placement"
	"moment/internal/topology"
)

// CheckNetwork audits a solved flownet.Network: the flow on the graph must
// carry a valid maximum-flow certificate, route exactly the total GPU
// demand, draw no more from any storage bin than its supply budget, and
// keep every physical link at or under 100% utilization. Installed as
// flownet.Check by Enable.
func CheckNetwork(n *flownet.Network) error {
	d := n.Demand()
	horizon := n.SolvedHorizon()
	if horizon == 0 {
		// Zero-demand solve: nothing routed, nothing to certify.
		if dem := d.TotalDemand(); dem > maxflow.Eps {
			return fmt.Errorf("verify: network reports horizon 0 with demand %.0f", dem)
		}
		return nil
	}
	cert, err := CheckFlow(n.G, n.S, n.T)
	if err != nil {
		return err
	}
	dem := d.TotalDemand()
	if math.Abs(cert.Value-dem) > tol(dem) {
		return fmt.Errorf("verify: solved flow routes %.6g bytes, demand is %.6g", cert.Value, dem)
	}

	bt, err := n.Traffic()
	if err != nil {
		return err
	}
	for i, v := range bt.HBMPeer {
		if d.HBMPeer != nil && v > d.HBMPeer[i]+tol(d.HBMPeer[i]) {
			return fmt.Errorf("verify: hbm%d serves %.6g > budget %.6g", i, v, d.HBMPeer[i])
		}
	}
	for rc, v := range bt.DRAM {
		budget := 0.0
		if d.DRAM != nil {
			budget = d.DRAM[rc]
		}
		if v > budget+tol(budget) {
			return fmt.Errorf("verify: dram:%s serves %.6g > budget %.6g", rc, v, budget)
		}
	}
	ssdServed := 0.0
	for i, v := range bt.SSD {
		ssdServed += v
		if d.SSDPer != nil && v > d.SSDPer[i]+tol(d.SSDPer[i]) {
			return fmt.Errorf("verify: ssd%d serves %.6g > pinned budget %.6g", i, v, d.SSDPer[i])
		}
	}
	if d.SSDPer == nil && ssdServed > d.SSDTotal+tol(d.SSDTotal) {
		return fmt.Errorf("verify: SSD tier serves %.6g > budget %.6g", ssdServed, d.SSDTotal)
	}

	util, err := n.LinkUtilization()
	if err != nil {
		return err
	}
	for name, u := range util {
		if u > 1+1e-6 {
			return fmt.Errorf("verify: link %s at %.4f×capacity", name, u)
		}
	}
	return nil
}

// CheckAssignment audits a DDAK vertex layout: Assignment.Validate plus
// access accounting (per-bin Access must equal the hotness mass of the
// vertices placed there) and the traffic-matching rule that zero-budget
// bins are last-resort — they may hold vertices only once every budgeted
// bin is full. Installed as ddak.Check by Enable.
func CheckAssignment(a *ddak.Assignment, hot []float64, bytesPerVertex float64) error {
	if len(a.Of) != len(hot) {
		return fmt.Errorf("verify: %d vertices placed, %d profiled", len(a.Of), len(hot))
	}
	if err := a.Validate(bytesPerVertex); err != nil {
		return err
	}
	access := make([]float64, len(a.Bins))
	for v, b := range a.Of {
		access[b] += hot[v]
	}
	for i := range a.Bins {
		if math.Abs(access[i]-a.Access[i]) > tol(access[i]) {
			return fmt.Errorf("verify: bin %s access accounting %.6g, recomputed %.6g",
				a.Bins[i].Name, a.Access[i], access[i])
		}
	}
	spilled := false
	for i, b := range a.Bins {
		if b.Traffic <= 0 && a.Used[i] > 0 {
			spilled = true
			break
		}
	}
	if spilled {
		for i, b := range a.Bins {
			if b.Traffic > 0 && a.Used[i]+bytesPerVertex <= b.Capacity+tol(b.Capacity) {
				return fmt.Errorf("verify: zero-traffic bin holds vertices while budgeted bin %s has free space", b.Name)
			}
		}
	}
	return nil
}

// CheckItemAssignment audits a DDAK item layout: every item placed in a
// real bin, per-bin Used/Access accounting reproducible from the item list,
// and no bin over its byte capacity. Installed as ddak.CheckItems by
// Enable.
func CheckItemAssignment(a *ddak.ItemAssignment, items []ddak.Item) error {
	if len(a.Of) != len(items) {
		return fmt.Errorf("verify: %d items placed, %d given", len(a.Of), len(items))
	}
	used := make([]float64, len(a.Bins))
	access := make([]float64, len(a.Bins))
	for v, b := range a.Of {
		if b < 0 || int(b) >= len(a.Bins) {
			return fmt.Errorf("verify: item %d in bin %d out of range", v, b)
		}
		used[b] += items[v].Bytes
		access[b] += items[v].Hot
	}
	for i, b := range a.Bins {
		if math.Abs(used[i]-a.Used[i]) > tol(used[i]) {
			return fmt.Errorf("verify: bin %s used accounting %.6g, recomputed %.6g",
				b.Name, a.Used[i], used[i])
		}
		if math.Abs(access[i]-a.Access[i]) > tol(access[i]) {
			return fmt.Errorf("verify: bin %s access accounting %.6g, recomputed %.6g",
				b.Name, a.Access[i], access[i])
		}
		if used[i] > b.Capacity+tol(b.Capacity) {
			return fmt.Errorf("verify: bin %s over capacity: %.6g > %.6g", b.Name, used[i], b.Capacity)
		}
	}
	return nil
}

// CheckSearchResult audits a placement.Search result: the winner validates
// against the machine, re-scoring it reproduces the reported time, and the
// reported throughput is consistent with demand/time. Installed as
// placement.Check by Enable.
func CheckSearchResult(m *topology.Machine, d *flownet.Demand, opt placement.Options, res *placement.Result) error {
	if res.Best == nil {
		return fmt.Errorf("verify: search returned no placement")
	}
	if err := res.Best.Validate(m); err != nil {
		return fmt.Errorf("verify: winning placement invalid: %w", err)
	}
	if _, err := placement.CanonicalKey(m, res.Best); err != nil {
		return fmt.Errorf("verify: winning placement has no canonical key: %w", err)
	}
	n, err := flownet.Build(m, res.Best, d)
	if err != nil {
		return fmt.Errorf("verify: winner does not rebuild: %w", err)
	}
	t2, err := n.SolveTol(opt.Tolerance)
	if err != nil {
		return fmt.Errorf("verify: winner does not re-solve: %w", err)
	}
	if math.Abs(t2.Sec()-res.Time.Sec()) > 1e-6*res.Time.Sec()+maxflow.Eps {
		return fmt.Errorf("verify: winner re-scores to %.6gs, search reported %.6gs",
			t2.Sec(), res.Time.Sec())
	}
	if res.Time > 0 {
		want := d.TotalDemand() / res.Time.Sec()
		if got := float64(res.Throughput); math.Abs(got-want) > 1e-6*want+maxflow.Eps {
			return fmt.Errorf("verify: throughput %.6g inconsistent with demand/time %.6g", got, want)
		}
	}
	return nil
}

// CheckSearchDeterminism re-runs the placement search at several
// Parallelism settings and verifies that the optimum is identical every
// time — same canonical placement key, same predicted time. Placement
// choice feeds every downstream figure, so a schedule-dependent winner
// would make results irreproducible.
func CheckSearchDeterminism(m *topology.Machine, d *flownet.Demand, opt placement.Options) error {
	var firstKey string
	var firstTime float64
	for i, par := range []int{1, 2, 0} { // 0 = GOMAXPROCS default
		o := opt
		o.Parallelism = par
		res, err := placement.Search(m, d, o)
		if err != nil {
			return fmt.Errorf("verify: search at parallelism %d: %w", par, err)
		}
		key, err := placement.CanonicalKey(m, res.Best)
		if err != nil {
			return err
		}
		if i == 0 {
			firstKey, firstTime = key, res.Time.Sec()
			continue
		}
		if key != firstKey {
			return fmt.Errorf("verify: optimum depends on parallelism: key %q at 1 worker, %q at %d",
				firstKey, key, par)
		}
		if math.Abs(res.Time.Sec()-firstTime) > 1e-9*firstTime {
			return fmt.Errorf("verify: optimum time depends on parallelism: %.9g vs %.9g",
				firstTime, res.Time.Sec())
		}
	}
	return nil
}
