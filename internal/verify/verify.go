// Package verify is the correctness-certification subsystem for Moment's
// planner core. The headline numbers of the paper rest on the planner being
// right: the time-bisection max-flow score (§3.2) decides the recommended
// hardware placement, and the DDAK layout (§3.3) realizes the per-bin
// traffic that flow solution promised. A silently wrong flow or an
// over-capacity bin invalidates every downstream figure, so this package
// provides machine-checkable certificates for each stage:
//
//   - CheckFlow / CheckDecompose certify a solved maxflow.Graph: per-node
//     conservation, capacity respect under Eps semantics, and the
//     max-flow = min-cut duality certificate.
//   - RandomNetwork / CheckDifferential form a deterministic seeded fuzzer
//     that cross-checks Dinic, Edmonds–Karp, and push–relabel against each
//     other and against their certificates.
//   - CheckNetwork, CheckAssignment, CheckItemAssignment, CheckSearchResult,
//     and CheckSearchDeterminism audit the planner-facing invariants of
//     flownet, ddak, and placement.
//
// Enable installs the audits as self-check hooks inside flownet.Solve,
// placement.Search, and ddak.Place/PlaceItems, so every planner run
// certifies its own output (momentopt -verify). The hooked packages declare
// plain function variables rather than importing this package, keeping the
// dependency arrow pointing one way.
package verify

import (
	"sync"

	"moment/internal/ddak"
	"moment/internal/flownet"
	"moment/internal/placement"
)

var (
	mu      sync.Mutex
	enabled bool
)

// Enable turns on planner self-verification: every subsequent
// flownet.Solve, placement.Search, ddak.Place, and ddak.PlaceItems audits
// its result and fails loudly instead of returning a silently wrong plan.
// Safe to call more than once.
func Enable() {
	mu.Lock()
	defer mu.Unlock()
	if enabled {
		return
	}
	enabled = true
	flownet.Check = CheckNetwork
	placement.Check = CheckSearchResult
	ddak.Check = CheckAssignment
	ddak.CheckItems = CheckItemAssignment
}

// Disable removes the self-check hooks installed by Enable.
func Disable() {
	mu.Lock()
	defer mu.Unlock()
	if !enabled {
		return
	}
	enabled = false
	flownet.Check = nil
	placement.Check = nil
	ddak.Check = nil
	ddak.CheckItems = nil
}

// Enabled reports whether self-verification is currently installed.
func Enabled() bool {
	mu.Lock()
	defer mu.Unlock()
	return enabled
}
