package verify

import (
	"math"
	"strings"
	"testing"

	"moment/internal/maxflow"
)

// clrs26 is the CLRS figure 26.1 network with max flow 23.
func clrs26() (*maxflow.Graph, int, int, float64) {
	g := maxflow.New(6)
	s, t := 0, 5
	g.AddEdge(s, 1, 16)
	g.AddEdge(s, 2, 13)
	g.AddEdge(1, 3, 12)
	g.AddEdge(2, 1, 4)
	g.AddEdge(2, 4, 14)
	g.AddEdge(3, 2, 9)
	g.AddEdge(3, t, 20)
	g.AddEdge(4, 3, 7)
	g.AddEdge(4, t, 4)
	return g, s, t, 23
}

func TestCheckFlowCertifiesAllSolvers(t *testing.T) {
	for _, sv := range []maxflow.Solver{maxflow.Dinic, maxflow.EdmondsKarp, maxflow.PushRelabel} {
		g, s, sink, want := clrs26()
		v := g.MaxFlow(s, sink, sv)
		cert, err := CheckFlow(g, s, sink)
		if err != nil {
			t.Fatalf("%v: %v", sv, err)
		}
		if math.Abs(cert.Value-want) > 1e-9 || math.Abs(v-want) > 1e-9 {
			t.Errorf("%v: certified %v, solver %v, want %v", sv, cert.Value, v, want)
		}
		if len(cert.CutEdges) == 0 || !cert.SourceSide[s] || cert.SourceSide[sink] {
			t.Errorf("%v: malformed certificate %+v", sv, cert)
		}
	}
}

func TestCheckFlowDetectsNonMaximalFlow(t *testing.T) {
	g, s, sink, _ := clrs26()
	g.MaxFlow(s, sink, maxflow.Dinic)
	// A fresh bypass edge reopens an augmenting path: the recorded flow is
	// still feasible but no longer maximum, so the duality check must fail.
	g.AddEdge(s, sink, 5)
	if _, err := CheckFlow(g, s, sink); err == nil {
		t.Fatal("non-maximal flow certified")
	} else if !strings.Contains(err.Error(), "augmenting") {
		t.Fatalf("wrong failure: %v", err)
	}
}

func TestCheckFlowDetectsConservationViolation(t *testing.T) {
	g := maxflow.New(3)
	e1 := g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 10)
	g.MaxFlow(0, 2, maxflow.Dinic)
	// Clearing flow on only the first hop strands 10 units at node 1.
	g.SetCapacity(e1, 10)
	if _, err := CheckFlow(g, 0, 2); err == nil {
		t.Fatal("conservation violation certified")
	} else if !strings.Contains(err.Error(), "conservation") {
		t.Fatalf("wrong failure: %v", err)
	}
}

func TestCheckFlowZeroFlow(t *testing.T) {
	// Disconnected network: the zero flow is maximal and must certify.
	g := maxflow.New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(2, 3, 5)
	g.MaxFlow(0, 3, maxflow.Dinic)
	cert, err := CheckFlow(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cert.Value != 0 {
		t.Errorf("value %v, want 0", cert.Value)
	}
}

func TestCheckFlowInfiniteVirtualArcs(t *testing.T) {
	// s -Inf-> a -7-> b -Inf-> t: the finite middle edge bounds the flow.
	g := maxflow.New(4)
	g.AddEdge(0, 1, maxflow.Inf)
	g.AddEdge(1, 2, 7)
	g.AddEdge(2, 3, maxflow.Inf)
	v := g.MaxFlow(0, 3, maxflow.Dinic)
	cert, err := CheckFlow(g, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-7) > 1e-9 || math.Abs(cert.Value-7) > 1e-9 {
		t.Errorf("value %v / %v, want 7", v, cert.Value)
	}
}

func TestCheckDecomposeRoundTrip(t *testing.T) {
	g, s, sink, want := clrs26()
	v := g.MaxFlow(s, sink, maxflow.Dinic)
	if err := CheckDecompose(g, s, sink, v); err != nil {
		t.Fatal(err)
	}
	if err := CheckDecompose(g, s, sink, want+5); err == nil {
		t.Fatal("wrong value accepted by decomposition round trip")
	}
}
