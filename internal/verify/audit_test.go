package verify

import (
	"math/rand"
	"strings"
	"testing"

	"moment/internal/ddak"
	"moment/internal/flownet"
	"moment/internal/maxflow"
	"moment/internal/placement"
	"moment/internal/topology"
)

const gb = 1 << 30

// demandA mirrors the representative epoch demand used by the flownet and
// placement suites: 100 GB per GPU with CPU-cache, peer-HBM, and SSD tiers.
func demandA(numGPU int) *flownet.Demand {
	per := make([]float64, numGPU)
	hbm := make([]float64, numGPU)
	for i := range per {
		per[i] = 100 * gb
		hbm[i] = 10 * gb
	}
	total := float64(numGPU) * 100 * gb
	return &flownet.Demand{
		PerGPU:   per,
		HBMPeer:  hbm,
		DRAM:     map[string]float64{"rc0": 25 * gb, "rc1": 25 * gb},
		SSDTotal: total - 50*gb - float64(numGPU)*10*gb,
	}
}

func solvedNetwork(t *testing.T, layout topology.ClassicLayout) *flownet.Network {
	t.Helper()
	m := topology.MachineA()
	p, err := topology.ClassicPlacement(m, layout)
	if err != nil {
		t.Fatal(err)
	}
	n, err := flownet.Build(m, p, demandA(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Solve(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestCheckNetworkCertifiesSolvedPlans(t *testing.T) {
	for _, l := range []topology.ClassicLayout{topology.LayoutA, topology.LayoutB, topology.LayoutC, topology.LayoutD} {
		n := solvedNetwork(t, l)
		if err := CheckNetwork(n); err != nil {
			t.Errorf("layout %v: %v", l, err)
		}
	}
}

func TestCheckNetworkDetectsCorruptedFlow(t *testing.T) {
	n := solvedNetwork(t, topology.LayoutC)
	// Clearing the flow on one carrying edge (SetCapacity resets its
	// residual) breaks conservation or the routed-equals-demand identity.
	corrupted := false
	for i := 0; i < n.G.M(); i++ {
		e := maxflow.EdgeID(2 * i)
		if n.G.Flow(e) > gb {
			n.G.SetCapacity(e, n.G.Capacity(e))
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Fatal("no flow-carrying edge found to corrupt")
	}
	if err := CheckNetwork(n); err == nil {
		t.Fatal("corrupted network passed the audit")
	}
}

func TestCheckNetworkZeroDemand(t *testing.T) {
	m := topology.MachineA()
	p, err := topology.ClassicPlacement(m, topology.LayoutC)
	if err != nil {
		t.Fatal(err)
	}
	n, err := flownet.Build(m, p, &flownet.Demand{PerGPU: make([]float64, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Solve(); err != nil {
		t.Fatal(err)
	}
	if err := CheckNetwork(n); err != nil {
		t.Fatalf("zero-demand network failed the audit: %v", err)
	}
}

func auditBins() []ddak.Bin {
	return []ddak.Bin{
		{Name: "hbm0", Tier: ddak.TierGPU, Capacity: 100, Traffic: 500},
		{Name: "dram0", Tier: ddak.TierCPU, Capacity: 300, Traffic: 300},
		{Name: "ssd0", Tier: ddak.TierSSD, Capacity: 10_000, Traffic: 100},
		{Name: "ssd1", Tier: ddak.TierSSD, Capacity: 10_000, Traffic: 0},
	}
}

func auditHot(n int) []float64 {
	rng := rand.New(rand.NewSource(7))
	hot := make([]float64, n)
	for i := range hot {
		hot[i] = rng.Float64() * 10
	}
	return hot
}

func TestCheckAssignmentAuditsPlace(t *testing.T) {
	hot := auditHot(400)
	a, err := ddak.Place(hot, 1, auditBins(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckAssignment(a, hot, 1); err != nil {
		t.Fatalf("genuine layout failed the audit: %v", err)
	}

	// Corrupt the access accounting: the audit must recompute and object.
	a.Access[0] += 5
	if err := CheckAssignment(a, hot, 1); err == nil {
		t.Fatal("corrupted access accounting passed")
	} else if !strings.Contains(err.Error(), "access accounting") {
		t.Fatalf("wrong failure: %v", err)
	}
	a.Access[0] -= 5

	// A profile/layout length mismatch must be rejected outright.
	if err := CheckAssignment(a, hot[:len(hot)-1], 1); err == nil {
		t.Fatal("length mismatch passed")
	}
}

func TestCheckItemAssignmentAuditsPlaceItems(t *testing.T) {
	hot := auditHot(300)
	items := make([]ddak.Item, len(hot))
	for i, h := range hot {
		items[i] = ddak.Item{Hot: h, Bytes: 1 + float64(i%3)}
	}
	a, err := ddak.PlaceItems(items, auditBins(), 4, 900)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckItemAssignment(a, items); err != nil {
		t.Fatalf("genuine item layout failed the audit: %v", err)
	}

	a.Used[0] += 5
	if err := CheckItemAssignment(a, items); err == nil {
		t.Fatal("corrupted used accounting passed")
	} else if !strings.Contains(err.Error(), "used accounting") {
		t.Fatalf("wrong failure: %v", err)
	}
	a.Used[0] -= 5

	a.Of[0] = -1
	if err := CheckItemAssignment(a, items); err == nil {
		t.Fatal("out-of-range bin index passed")
	}
}

func TestCheckSearchResultAuditsSearch(t *testing.T) {
	m := topology.MachineA()
	d := demandA(4)
	opt := placement.Options{Tolerance: 1e-4, Parallelism: 2}
	res, err := placement.Search(m, d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckSearchResult(m, d, opt, res); err != nil {
		t.Fatalf("genuine search result failed the audit: %v", err)
	}

	tampered := *res
	tampered.Time = res.Time * 2
	if err := CheckSearchResult(m, d, opt, &tampered); err == nil {
		t.Fatal("tampered time passed the audit")
	}
	tampered = *res
	tampered.Best = nil
	if err := CheckSearchResult(m, d, opt, &tampered); err == nil {
		t.Fatal("missing winner passed the audit")
	}
}

func TestSearchDeterminismAcrossParallelism(t *testing.T) {
	m := topology.MachineA()
	if err := CheckSearchDeterminism(m, demandA(4), placement.Options{Tolerance: 1e-4}); err != nil {
		t.Fatal(err)
	}
}

// The Enable/Disable round trip: hooks install, the hooked pipeline runs
// clean with self-checks live, and Disable removes every hook.
func TestEnableDisableHooks(t *testing.T) {
	if Enabled() {
		t.Fatal("verification enabled before Enable")
	}
	Enable()
	defer Disable()
	if !Enabled() || flownet.Check == nil || placement.Check == nil || ddak.Check == nil || ddak.CheckItems == nil {
		t.Fatal("Enable did not install all hooks")
	}
	Enable() // idempotent

	// Run the hooked planner paths end to end with self-checks live.
	n := solvedNetwork(t, topology.LayoutC)
	if n.SolvedHorizon() <= 0 {
		t.Fatal("solve under verification produced no horizon")
	}
	hot := auditHot(200)
	if _, err := ddak.Place(hot, 1, auditBins(), 4); err != nil {
		t.Fatalf("Place under verification: %v", err)
	}
	items := make([]ddak.Item, len(hot))
	for i, h := range hot {
		items[i] = ddak.Item{Hot: h, Bytes: 1}
	}
	if _, err := ddak.PlaceItems(items, auditBins(), 4, 900); err != nil {
		t.Fatalf("PlaceItems under verification: %v", err)
	}
	if _, err := placement.Search(topology.MachineA().WithGPUs(2), demandA(2), placement.Options{Parallelism: 2}); err != nil {
		t.Fatalf("Search under verification: %v", err)
	}

	Disable()
	if Enabled() || flownet.Check != nil || placement.Check != nil || ddak.Check != nil || ddak.CheckItems != nil {
		t.Fatal("Disable did not remove all hooks")
	}
	Disable() // idempotent
}
