package trainsim

import (
	"math"
	"testing"

	"moment/internal/gnn"
	"moment/internal/topology"
)

func simulate(t *testing.T, cfg Config) *Result {
	t.Helper()
	r, err := SimulateEpoch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.OOM != "" {
		t.Fatalf("unexpected OOM: %s", r.OOM)
	}
	return r
}

func classicCfg(t *testing.T, m *topology.Machine, l topology.ClassicLayout, ds string) Config {
	t.Helper()
	p, err := topology.ClassicPlacement(m, l)
	if err != nil {
		t.Fatal(err)
	}
	return Config{Machine: m, Placement: p,
		Workload: Workload{Dataset: dataset(t, ds), Model: gnn.KindSAGE}}
}

func TestLayoutOrderingMachineA(t *testing.T) {
	m := topology.MachineA()
	times := map[topology.ClassicLayout]float64{}
	for _, l := range []topology.ClassicLayout{topology.LayoutA, topology.LayoutB, topology.LayoutC, topology.LayoutD} {
		times[l] = simulate(t, classicCfg(t, m, l, "IG")).EpochTime.Sec()
	}
	// Fig 1 ordering: (c) best, packed-GPU layouts ~1.6-2x worse.
	if !(times[topology.LayoutC] <= times[topology.LayoutA]*1.05) {
		t.Errorf("(c) should be best: %v", times)
	}
	if r := times[topology.LayoutB] / times[topology.LayoutC]; r < 1.4 {
		t.Errorf("(b)/(c) = %.2f, want >1.4 (paper 1.79)", r)
	}
	if r := times[topology.LayoutD] / times[topology.LayoutC]; r < 1.3 {
		t.Errorf("(d)/(c) = %.2f, want >1.3 (paper 1.62)", r)
	}
}

func TestLayoutOrderingMachineB(t *testing.T) {
	m := topology.MachineB()
	times := map[topology.ClassicLayout]float64{}
	for _, l := range []topology.ClassicLayout{topology.LayoutA, topology.LayoutB, topology.LayoutC, topology.LayoutD} {
		times[l] = simulate(t, classicCfg(t, m, l, "IG")).EpochTime.Sec()
	}
	// Fig 2 ordering: (c) < (d) < (a) <= (b).
	if !(times[topology.LayoutC] < times[topology.LayoutD]) {
		t.Errorf("(c) should beat (d): %v", times)
	}
	if !(times[topology.LayoutD] < times[topology.LayoutA]) {
		t.Errorf("(d) should beat (a): %v", times)
	}
	if times[topology.LayoutA] > times[topology.LayoutB]*1.05 {
		t.Errorf("(a) should be <= (b): %v", times)
	}
}

func TestMomentBeatsClassicsOnB(t *testing.T) {
	m := topology.MachineB()
	pm, err := topology.MomentPlacementB(m)
	if err != nil {
		t.Fatal(err)
	}
	mom := simulate(t, Config{Machine: m, Placement: pm,
		Workload: Workload{Dataset: dataset(t, "IG"), Model: gnn.KindSAGE}}).EpochTime.Sec()
	best := math.Inf(1)
	for _, l := range []topology.ClassicLayout{topology.LayoutA, topology.LayoutB, topology.LayoutC, topology.LayoutD} {
		if v := simulate(t, classicCfg(t, m, l, "IG")).EpochTime.Sec(); v < best {
			best = v
		}
	}
	// Fig 7 / Fig 12: Moment beats the best classic layout (paper: 1.41x;
	// the fluid fabric model lands near 1.2x — see EXPERIMENTS.md).
	if ratio := best / mom; ratio < 1.15 {
		t.Errorf("moment %.1fs vs best classic %.1fs (ratio %.2f, want >1.2)", mom, best, ratio)
	}
}

func TestDDAKBeatsHash(t *testing.T) {
	for _, mk := range []func() *topology.Machine{topology.MachineA, topology.MachineB} {
		m := mk()
		cfg := classicCfg(t, m, topology.LayoutC, "IG")
		dd := simulate(t, cfg)
		cfg.Policy = PolicyHash
		hh := simulate(t, cfg)
		// Fig 14/15: DDAK improves throughput (paper: up to 30.6%/34.0%).
		if hh.EpochTime.Sec() <= dd.EpochTime.Sec() {
			t.Errorf("%s: hash %.1fs should be slower than ddak %.1fs",
				m.Name, hh.EpochTime.Sec(), dd.EpochTime.Sec())
		}
		// DDAK reduces cross-QPI traffic (Fig 17).
		if m.Name == "A" && dd.QPIBytes >= hh.QPIBytes {
			t.Errorf("ddak QPI bytes %.0fGB >= hash %.0fGB", dd.QPIBytes/1e9, hh.QPIBytes/1e9)
		}
	}
}

func TestPartitionedSSDSlower(t *testing.T) {
	// Compare under the same (hash) data placement so only the SSD access
	// mode differs. On Machine B the SSDs sit at asymmetric points, so
	// static GPU-SSD binding forfeits aggregate flexibility.
	m := topology.MachineB()
	cfg := classicCfg(t, m, topology.LayoutC, "IG")
	cfg.Policy = PolicyHash
	shared := simulate(t, cfg)
	cfg.Mode = PartitionedSSD
	part := simulate(t, cfg)
	if part.EpochTime.Sec() < shared.EpochTime.Sec()*0.99 {
		t.Errorf("partitioned %.1fs beats shared %.1fs", part.EpochTime.Sec(), shared.EpochTime.Sec())
	}
}

func TestPartitionedSSDReplicaOOM(t *testing.T) {
	// With 1 TiB SSDs, 4 replicas of CL (4.1 TiB each) cannot fit 8 TiB.
	m := topology.MachineA()
	m.SSDCapacity = 1 << 40
	cfg := classicCfg(t, m, topology.LayoutC, "CL")
	cfg.Mode = PartitionedSSD
	r, err := SimulateEpoch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.OOM == "" {
		t.Error("expected SSD-capacity OOM for partitioned CL")
	}
}

func TestHostMemoryOOM(t *testing.T) {
	m := topology.MachineB()
	m.DRAMPerSocket = 1 << 34 // 16 GiB per socket: UK topology won't fit
	cfg := classicCfg(t, m, topology.LayoutC, "UK")
	r, err := SimulateEpoch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.OOM == "" {
		t.Error("expected host-memory OOM")
	}
}

func TestMomentRunsAllDatasets(t *testing.T) {
	// Fig 10: Moment completes PA, IG, UK and CL on a single machine.
	m := topology.MachineB()
	pm, err := topology.MomentPlacementB(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range []string{"PA", "IG", "UK", "CL"} {
		for _, model := range []gnn.ModelKind{gnn.KindSAGE, gnn.KindGAT} {
			r := simulate(t, Config{Machine: m, Placement: pm,
				Workload: Workload{Dataset: dataset(t, ds), Model: model}})
			if r.EpochTime <= 0 {
				t.Errorf("%s/%v: epoch %v", ds, model, r.EpochTime)
			}
			if r.Throughput <= 0 {
				t.Errorf("%s/%v: throughput %v", ds, model, r.Throughput)
			}
		}
	}
}

func TestGATSlowerComputeThanSAGE(t *testing.T) {
	m := topology.MachineA()
	p, err := topology.ClassicPlacement(m, topology.LayoutC)
	if err != nil {
		t.Fatal(err)
	}
	sage := simulate(t, Config{Machine: m, Placement: p,
		Workload: Workload{Dataset: dataset(t, "IG"), Model: gnn.KindSAGE}})
	gat := simulate(t, Config{Machine: m, Placement: p,
		Workload: Workload{Dataset: dataset(t, "IG"), Model: gnn.KindGAT}})
	if gat.ComputeTime.Sec() <= sage.ComputeTime.Sec() {
		t.Errorf("GAT compute %.1fs <= SAGE %.1fs", gat.ComputeTime.Sec(), sage.ComputeTime.Sec())
	}
}

func TestPredictionAccuracy(t *testing.T) {
	// Fig 13: max-flow prediction tracks the measured I/O time (paper max
	// error 8.61%; the fluid fabric adds some slack, so allow 30%).
	for _, mk := range []func() *topology.Machine{topology.MachineA, topology.MachineB} {
		m := mk()
		for _, ds := range []string{"PA", "IG"} {
			cfg := classicCfg(t, m, topology.LayoutC, ds)
			r := simulate(t, cfg)
			relErr := math.Abs(r.PredictedIO.Sec()-r.IOTime.Sec()) / r.IOTime.Sec()
			if relErr > 0.30 {
				t.Errorf("%s/%s: prediction error %.1f%% (pred %.1fs vs measured %.1fs)",
					m.Name, ds, relErr*100, r.PredictedIO.Sec(), r.IOTime.Sec())
			}
		}
	}
}

func TestScalingMomentVsPackedLayout(t *testing.T) {
	// Fig 16 flavor: Moment-style spread placement scales from 1->4 GPUs
	// far better than the packed layout (d).
	epoch := func(n int, l topology.ClassicLayout) float64 {
		m := topology.MachineA().WithGPUs(n)
		return simulate(t, classicCfg(t, m, l, "IG")).EpochTime.Sec()
	}
	spread1, spread4 := epoch(1, topology.LayoutC), epoch(4, topology.LayoutC)
	packed1, packed4 := epoch(1, topology.LayoutD), epoch(4, topology.LayoutD)
	spreadSpeedup := spread1 / spread4
	packedSpeedup := packed1 / packed4
	if spreadSpeedup < 1.2 {
		t.Errorf("spread scaling %.2fx too weak", spreadSpeedup)
	}
	if packedSpeedup > spreadSpeedup {
		t.Errorf("packed layout scales better (%.2fx) than spread (%.2fx)",
			packedSpeedup, spreadSpeedup)
	}
}

func TestNVLinkWithPartitionedCacheHelps(t *testing.T) {
	// Fig 18: adding NVLink bridges (and pairing caches across them)
	// improves throughput.
	base := topology.MachineA()
	pBase, err := topology.ClassicPlacement(base, topology.LayoutC)
	if err != nil {
		t.Fatal(err)
	}
	noNV := simulate(t, Config{Machine: base, Placement: pBase,
		Workload: Workload{Dataset: dataset(t, "IG"), Model: gnn.KindSAGE}})
	nv := base.WithNVLink(topology.NVLinkBridgeBW,
		topology.NVLinkPair{A: 0, B: 1}, topology.NVLinkPair{A: 2, B: 3})
	pNV, err := topology.ClassicPlacement(nv, topology.LayoutC)
	if err != nil {
		t.Fatal(err)
	}
	withNV := simulate(t, Config{Machine: nv, Placement: pNV, Cache: CachePaired,
		Workload: Workload{Dataset: dataset(t, "IG"), Model: gnn.KindSAGE}})
	if withNV.EpochTime.Sec() >= noNV.EpochTime.Sec() {
		t.Errorf("NVLink config %.2fs >= baseline %.2fs",
			withNV.EpochTime.Sec(), noNV.EpochTime.Sec())
	}
}

func TestPerGPUBandwidthAndQPI(t *testing.T) {
	m := topology.MachineB()
	pm, err := topology.MomentPlacementB(m)
	if err != nil {
		t.Fatal(err)
	}
	r := simulate(t, Config{Machine: m, Placement: pm,
		Workload: Workload{Dataset: dataset(t, "IG"), Model: gnn.KindSAGE}})
	if len(r.PerGPUIOBW) != 4 {
		t.Fatalf("per-GPU BW count %d", len(r.PerGPUIOBW))
	}
	for g, bw := range r.PerGPUIOBW {
		if bw <= 0 || bw > m.PCIeX16*2 {
			t.Errorf("gpu%d inlet %v implausible", g, bw)
		}
	}
	if r.QPIBytes < 0 {
		t.Error("negative QPI bytes")
	}
	if r.FabricEpoch <= 0 || r.FabricEpoch > r.FetchEpoch {
		t.Errorf("fabric bytes %.0f vs fetch %.0f", r.FabricEpoch, r.FetchEpoch)
	}
}

func TestSimulateEpochErrors(t *testing.T) {
	if _, err := SimulateEpoch(Config{}); err == nil {
		t.Error("nil machine accepted")
	}
	m := topology.MachineA()
	bad := &topology.Placement{GPUAt: []string{"rc0", "rc0", "rc0", "rc0"},
		SSDAt: make([]string, 8)}
	if _, err := SimulateEpoch(Config{Machine: m, Placement: bad,
		Workload: Workload{Dataset: dataset(t, "IG")}}); err == nil {
		t.Error("invalid placement accepted")
	}
}

func TestPolicyAndModeStrings(t *testing.T) {
	if PolicyDDAK.String() != "ddak" || PolicyHash.String() != "hash" {
		t.Error("policy names changed")
	}
}
