package trainsim

import (
	"fmt"
	"math"

	"moment/internal/simnet"
	"moment/internal/topology"
)

// Fabric wires a machine+placement into a simnet link network and provides
// tree-path routing between storage devices and GPUs. PCIe and QPI links
// are full duplex: each physical link contributes one simnet link per
// direction, so egress and ingress never contend with each other (only
// with same-direction traffic).
type Fabric struct {
	Net *simnet.Net
	M   *topology.Machine
	P   *topology.Placement

	up      map[string]simnet.LinkID // child point -> link child→parent
	down    map[string]simnet.LinkID // child point -> link parent→child
	qpi     map[[2]string]simnet.LinkID
	ssdOut  []simnet.LinkID
	dramOut map[string]simnet.LinkID
	gpuIn   []simnet.LinkID
	gpuOut  []simnet.LinkID // P2P serving egress over the GPU's own slot
	nvl     map[[2]int]simnet.LinkID

	chains map[string][]string // point -> [point, ..., root complex]
}

// NewFabric builds the link network for machine m under placement p.
func NewFabric(m *topology.Machine, p *topology.Placement) (*Fabric, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(m); err != nil {
		return nil, err
	}
	f := &Fabric{
		Net:     simnet.New(),
		M:       m,
		P:       p,
		up:      map[string]simnet.LinkID{},
		down:    map[string]simnet.LinkID{},
		qpi:     map[[2]string]simnet.LinkID{},
		dramOut: map[string]simnet.LinkID{},
		nvl:     map[[2]int]simnet.LinkID{},
		chains:  map[string][]string{},
	}
	for _, pt := range m.Points {
		chain := []string{pt.ID}
		cur := pt
		for cur.Kind == topology.Switch {
			parent, err := m.Point(cur.Parent)
			if err != nil {
				return nil, err
			}
			chain = append(chain, parent.ID)
			cur = *parent
		}
		f.chains[pt.ID] = chain
		if pt.Kind == topology.Switch {
			upl, err := f.Net.AddLink("up:"+pt.ID, float64(pt.UplinkBW))
			if err != nil {
				return nil, err
			}
			dnl, err := f.Net.AddLink("down:"+pt.ID, float64(pt.UplinkBW))
			if err != nil {
				return nil, err
			}
			f.up[pt.ID] = upl
			f.down[pt.ID] = dnl
		}
	}
	rcs := m.RootComplexes()
	for i := 0; i < len(rcs); i++ {
		for j := 0; j < len(rcs); j++ {
			if i == j {
				continue
			}
			l, err := f.Net.AddLink(fmt.Sprintf("qpi:%s>%s", rcs[i], rcs[j]), float64(m.QPIBW))
			if err != nil {
				return nil, err
			}
			f.qpi[[2]string{rcs[i], rcs[j]}] = l
		}
	}
	ssdRate := math.Min(float64(m.SSDBW), float64(m.PCIeX4))
	for i := 0; i < m.NumSSDs; i++ {
		l, err := f.Net.AddLink(fmt.Sprintf("ssd%d", i), ssdRate)
		if err != nil {
			return nil, err
		}
		f.ssdOut = append(f.ssdOut, l)
	}
	for _, rc := range rcs {
		l, err := f.Net.AddLink("dram:"+rc, float64(m.DRAMBW))
		if err != nil {
			return nil, err
		}
		f.dramOut[rc] = l
	}
	for i := 0; i < m.NumGPUs; i++ {
		in, err := f.Net.AddLink(fmt.Sprintf("gpu%d:in", i), float64(m.PCIeX16))
		if err != nil {
			return nil, err
		}
		out, err := f.Net.AddLink(fmt.Sprintf("gpu%d:out", i), float64(m.PCIeX16))
		if err != nil {
			return nil, err
		}
		f.gpuIn = append(f.gpuIn, in)
		f.gpuOut = append(f.gpuOut, out)
	}
	for _, nvp := range m.NVLinks {
		ab, err := f.Net.AddLink(fmt.Sprintf("nvl:%d>%d", nvp.A, nvp.B), float64(m.NVLinkBW))
		if err != nil {
			return nil, err
		}
		ba, err := f.Net.AddLink(fmt.Sprintf("nvl:%d>%d", nvp.B, nvp.A), float64(m.NVLinkBW))
		if err != nil {
			return nil, err
		}
		f.nvl[[2]int{nvp.A, nvp.B}] = ab
		f.nvl[[2]int{nvp.B, nvp.A}] = ba
	}
	return f, nil
}

// fabricPath returns the directed link path from storage attach point src
// to GPU attach point dst (excluding the device-edge links, which callers
// prepend/append).
func (f *Fabric) fabricPath(src, dst string) []simnet.LinkID {
	if src == dst {
		return nil
	}
	sc := f.chains[src]
	dc := f.chains[dst]
	// Find the lowest common point of the two chains, if any.
	pos := map[string]int{}
	for i, id := range sc {
		pos[id] = i
	}
	lcaS, lcaD := -1, -1
	for j, id := range dc {
		if i, ok := pos[id]; ok {
			lcaS, lcaD = i, j
			break
		}
	}
	var path []simnet.LinkID
	if lcaS >= 0 {
		// Same socket subtree: up src..lca, down lca..dst.
		for i := 0; i < lcaS; i++ {
			path = append(path, f.up[sc[i]])
		}
		for j := lcaD - 1; j >= 0; j-- {
			path = append(path, f.down[dc[j]])
		}
		return path
	}
	// Cross-socket: up to src's RC, QPI, down from dst's RC.
	for i := 0; i < len(sc)-1; i++ {
		path = append(path, f.up[sc[i]])
	}
	path = append(path, f.qpi[[2]string{sc[len(sc)-1], dc[len(dc)-1]}])
	for j := len(dc) - 2; j >= 0; j-- {
		path = append(path, f.down[dc[j]])
	}
	return path
}

// PathSSDToGPU routes SSD i's traffic to GPU g: SSD egress, fabric, slot
// ingress.
func (f *Fabric) PathSSDToGPU(ssd, gpu int) ([]simnet.LinkID, error) {
	if ssd < 0 || ssd >= f.M.NumSSDs || gpu < 0 || gpu >= f.M.NumGPUs {
		return nil, fmt.Errorf("trainsim: path ssd%d->gpu%d out of range", ssd, gpu)
	}
	path := []simnet.LinkID{f.ssdOut[ssd]}
	path = append(path, f.fabricPath(f.P.SSDAt[ssd], f.P.GPUAt[gpu])...)
	return append(path, f.gpuIn[gpu]), nil
}

// PathDRAMToGPU routes socket rc's CPU-memory traffic to GPU g.
func (f *Fabric) PathDRAMToGPU(rc string, gpu int) ([]simnet.LinkID, error) {
	l, ok := f.dramOut[rc]
	if !ok {
		return nil, fmt.Errorf("trainsim: unknown socket %q", rc)
	}
	if gpu < 0 || gpu >= f.M.NumGPUs {
		return nil, fmt.Errorf("trainsim: gpu %d out of range", gpu)
	}
	path := []simnet.LinkID{l}
	path = append(path, f.fabricPath(rc, f.P.GPUAt[gpu])...)
	return append(path, f.gpuIn[gpu]), nil
}

// PathHBMToGPU routes GPU src's cache traffic to GPU dst. Local access
// (src == dst) returns an empty path (HBM hit, no fabric). NVLinked pairs
// take the direct bridge; otherwise the data leaves over src's slot
// egress, crosses the fabric, and enters dst's slot.
func (f *Fabric) PathHBMToGPU(src, dst int) ([]simnet.LinkID, error) {
	if src < 0 || src >= f.M.NumGPUs || dst < 0 || dst >= f.M.NumGPUs {
		return nil, fmt.Errorf("trainsim: hbm path %d->%d out of range", src, dst)
	}
	if src == dst {
		return nil, nil
	}
	if l, ok := f.nvl[[2]int{src, dst}]; ok {
		return []simnet.LinkID{l}, nil
	}
	path := []simnet.LinkID{f.gpuOut[src]}
	path = append(path, f.fabricPath(f.P.GPUAt[src], f.P.GPUAt[dst])...)
	return append(path, f.gpuIn[dst]), nil
}

// QPIBytes sums bytes carried over all socket-interconnect links in a
// completed run.
func (f *Fabric) QPIBytes(res *simnet.Result) float64 {
	total := 0.0
	for _, l := range f.qpi {
		total += res.LinkBytes[l]
	}
	return total
}
