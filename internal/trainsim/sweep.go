package trainsim

import (
	"fmt"
	"strings"

	"moment/internal/ddak"
	"moment/internal/faults"
	"moment/internal/obs"
	"moment/internal/simnet"
	"moment/internal/units"
)

// This file implements long-horizon fleet sweeps: simulating thousands of
// back-to-back training epochs against one absolute fault schedule. The
// expensive planning pipeline (stats, max-flow prediction, DDAK) runs
// once; each epoch then only needs a fabric evaluation. Between fault
// boundaries the fabric evaluation itself is redundant — an epoch whose
// fault signature (every link and GPU factor plus the dead-device set at
// its start) matches an earlier epoch, and whose duration fits entirely
// before the next factor change, must take exactly as long. The delta
// cache exploits that: signature-identical quiet epochs are served from
// memory and only epochs that straddle a fault boundary re-simulate.

// SweepOptions tunes SimulateEpochs.
type SweepOptions struct {
	// Epochs is the number of back-to-back epochs to simulate (default 1).
	Epochs int
	// NoDeltaCache disables the fault-signature epoch cache, re-simulating
	// every epoch in full — the reference (and benchmark baseline) path.
	NoDeltaCache bool
}

// SweepResult aggregates a multi-epoch training run.
type SweepResult struct {
	// Epochs is the number of epochs simulated.
	Epochs int
	// Total is the wall-clock of the whole run, including recovery stalls.
	Total units.Duration
	// EpochTimes holds each epoch's duration in seconds.
	EpochTimes []float64
	// Resims counts epochs evaluated by full fabric simulation; CacheHits
	// counts epochs served by the delta cache (Resims + CacheHits = Epochs).
	Resims    int
	CacheHits int
	// DeadSSDs lists devices lost over the horizon, in failure order.
	DeadSSDs []int
	// Nominal is the healthy single-epoch result the sweep degrades from.
	Nominal *Result
}

// sweepEntry is one cached epoch: the duration observed for a fault
// signature, valid for any later epoch with the same signature whose span
// [t, t+dur) contains no factor change.
type sweepEntry struct {
	dur float64
}

// faultSig fingerprints the fault state at time t as seen by this fabric:
// the capacity factor of every link, the compute factor of every GPU, and
// the sorted dead-device set. Two epochs with equal signatures and no
// mid-epoch boundary are byte-for-byte identical simulations.
func faultSig(inj *faults.Injector, linkNames []string, nGPU, nSSD int, t float64) string {
	var b strings.Builder
	for _, name := range linkNames {
		fmt.Fprintf(&b, "%s=%g;", name, inj.LinkFactor(name, t))
	}
	for g := 0; g < nGPU; g++ {
		fmt.Fprintf(&b, "g%d=%g;", g, inj.GPUFactor(g, t))
	}
	for j := 0; j < nSSD; j++ {
		if inj.SSDFailed(j, t) {
			fmt.Fprintf(&b, "dead%d;", j)
		}
	}
	return b.String()
}

// respecDead rebuilds the healthy flow list for a fleet where some SSDs
// already fail-stopped: every dead device's bytes re-route to survivors,
// whole-epoch, weighted by the degraded bins' traffic budgets.
func respecDead(specs []flowSpec, cfg Config, bins []ddak.Bin, ssdBin0 int, dead map[int]bool, ssdsPerGPU int) ([]flowSpec, error) {
	if len(dead) == 0 {
		return specs, nil
	}
	next := make([]flowSpec, 0, len(specs))
	stranded := map[int]float64{}
	for _, sp := range specs {
		if sp.ssd >= 0 && dead[sp.ssd] {
			stranded[sp.gpu] += sp.bytes
			continue
		}
		next = append(next, sp)
	}
	return rerouteStranded(next, stranded, cfg, bins, ssdBin0, dead, ssdsPerGPU)
}

// SimulateEpochs simulates opt.Epochs back-to-back training epochs under
// cfg.Faults interpreted as one absolute schedule spanning the whole run
// (event times are seconds from the start of epoch 0). Planning runs
// once; each epoch is then either re-simulated on the fabric or — when
// the delta cache can prove it identical to an earlier epoch — served
// from memory. SSD fail-stops persist: once a device dies, every later
// epoch runs without it.
func SimulateEpochs(cfg Config, opt SweepOptions) (*SweepResult, error) {
	if opt.Epochs <= 0 {
		opt.Epochs = 1
	}
	o := obs.Active(cfg.Observer)
	sp := o.Begin("trainsim.sweep")
	if cfg.Machine != nil {
		sp.SetStr("machine", cfg.Machine.Name)
	}
	sp.SetInt("epochs", opt.Epochs)
	defer sp.End()

	// The nominal single-epoch result (reported, and the healthy fast path).
	healthyCfg := cfg
	healthyCfg.Faults = nil
	nominal, err := SimulateEpoch(healthyCfg)
	if err != nil {
		return nil, err
	}
	if nominal.OOM != "" {
		return nil, fmt.Errorf("trainsim: sweep configuration cannot run: %s", nominal.OOM)
	}

	// One planning pass serves every epoch.
	es, oom, err := placeAndSpecs(cfg, o, sp)
	if err != nil {
		return nil, err
	}
	if oom != nil {
		return nil, fmt.Errorf("trainsim: sweep configuration cannot run: %s", oom.OOM)
	}
	cfg = es.cfg
	m := cfg.Machine
	nGPU := m.NumGPUs

	var inj *faults.Injector
	if !cfg.Faults.Empty() {
		inj, err = faults.NewInjector(cfg.Faults)
		if err != nil {
			return nil, err
		}
		if err := inj.CheckTargets(m.NumSSDs, nGPU); err != nil {
			return nil, err
		}
	}

	// Link names for the fault signature come from the actual fabric.
	probe, err := NewFabric(m, cfg.Placement)
	if err != nil {
		return nil, err
	}
	linkNames := make([]string, probe.Net.NumLinks())
	for i := range linkNames {
		linkNames[i] = probe.Net.LinkName(simnet.LinkID(i))
	}

	res := &SweepResult{
		Epochs:     opt.Epochs,
		EpochTimes: make([]float64, 0, opt.Epochs),
		Nominal:    nominal,
	}
	cache := map[string]sweepEntry{}
	pol := cfg.Retry.Defaults()

	// resim evaluates one epoch in full starting at absolute time t with
	// the given dead set and (already re-routed) flow list.
	resim := func(t float64, dead map[int]bool, specs []flowSpec) (float64, error) {
		if inj == nil {
			// Healthy fleet: the nominal epoch, exactly. Still charged as a
			// resim when the cache is off (the baseline re-runs the fabric).
			if opt.NoDeltaCache {
				fab, err := NewFabric(m, cfg.Placement)
				if err != nil {
					return 0, err
				}
				if err := addFlows(fab, specs); err != nil {
					return 0, err
				}
				run, err := fab.Net.Run()
				if err != nil {
					return 0, err
				}
				return es.epochOf(run.Makespan, es.computeTime), nil
			}
			return nominal.EpochTime.Sec(), nil
		}
		end, _, err := simulateDegradedIO(degradeInput{
			cfg:        cfg,
			specs:      specs,
			inj:        inj,
			pol:        pol,
			bins:       es.bins,
			ssdBin0:    es.ssdBin0,
			items:      es.placeItems,
			fetchEpoch: es.pl.fetchEpoch,
			ssdsPerGPU: es.pl.ssdsPerGPU,
			t0:         t,
			dead:       dead,
		})
		if err != nil {
			return 0, err
		}
		comp := stragglerCompute(es.computeTime, nGPU, inj.WithBase(t))
		return es.epochOf(end-t, comp), nil
	}

	t := 0.0
	dead := map[int]bool{}
	specs := es.specs
	bins := es.bins
	for e := 0; e < opt.Epochs; e++ {
		// Carry fail-stops forward: a device dead at this epoch's start
		// stays dead, and the healthy flow list is re-routed once per death.
		changed := false
		for j := 0; j < m.NumSSDs; j++ {
			if inj != nil && !dead[j] && inj.SSDFailed(j, t) {
				dead[j] = true
				res.DeadSSDs = append(res.DeadSSDs, j)
				changed = true
			}
		}
		if changed {
			deadNames := map[string]bool{}
			for j := range dead {
				deadNames[fmt.Sprintf("ssd%d", j)] = true
			}
			bins, err = ddak.DegradeBins(es.bins, deadNames)
			if err != nil {
				return nil, fmt.Errorf("trainsim: sweep cannot degrade past epoch %d: %w", e, err)
			}
			specs, err = respecDead(es.specs, cfg, bins, es.ssdBin0, dead, es.pl.ssdsPerGPU)
			if err != nil {
				return nil, err
			}
		}

		var sig string
		if !opt.NoDeltaCache {
			if inj == nil {
				sig = "healthy"
			} else {
				sig = faultSig(inj, linkNames, nGPU, m.NumSSDs, t)
			}
			if entry, ok := cache[sig]; ok && quietFor(inj, t, entry.dur) {
				res.CacheHits++
				res.EpochTimes = append(res.EpochTimes, entry.dur)
				t += entry.dur
				continue
			}
		}

		dur, err := resim(t, dead, specs)
		if err != nil {
			return nil, fmt.Errorf("trainsim: sweep epoch %d (t=%.3f): %w", e, t, err)
		}
		res.Resims++
		res.EpochTimes = append(res.EpochTimes, dur)
		// Only boundary-free epochs generalize: a duration that straddled a
		// factor change depends on when in the epoch the change landed.
		if !opt.NoDeltaCache && quietFor(inj, t, dur) {
			cache[sig] = sweepEntry{dur: dur}
		}
		t += dur
	}
	res.Total = units.Seconds(t)
	sp.SetFloat("total_seconds", t)
	sp.SetInt("resims", res.Resims)
	sp.SetInt("cache_hits", res.CacheHits)
	o.Counter("sim_delta_epochs_total").Add(float64(opt.Epochs))
	o.Counter("sim_delta_cache_hits_total").Add(float64(res.CacheHits))
	o.Counter("sim_delta_resims_total").Add(float64(res.Resims))
	return res, nil
}

// quietFor reports whether no fault factor changes inside [t, t+dur).
func quietFor(inj *faults.Injector, t, dur float64) bool {
	if inj == nil {
		return true
	}
	return inj.NextChange(t) >= t+dur-1e-9
}
