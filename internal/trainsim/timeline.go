package trainsim

import (
	"fmt"
	"strings"

	"moment/internal/units"
)

// StageTimes is the per-iteration cost of each pipeline stage on one GPU
// (§3.1 System Runtime: sampling → feature extraction → model training).
type StageTimes struct {
	Sample  float64
	IO      float64
	Compute float64
}

// Segment is one stage execution on the timeline.
type Segment struct {
	Stage      string // "sample", "io", "compute"
	Round      int
	Start, End float64
}

// Timeline is the exact software-pipeline schedule of an epoch: each stage
// is a serially-reused resource; iteration i's stage starts when both the
// resource and iteration i's previous stage are done.
type Timeline struct {
	Rounds int
	Total  float64
	// Busy fraction of each stage resource over the epoch.
	SampleUtil, IOUtil, ComputeUtil float64
	// Critical names the dominant stage.
	Critical string
	// Segments holds the first min(Rounds, keep) rounds' stage intervals
	// for rendering.
	Segments []Segment
}

// PipelineTimeline schedules rounds iterations of the three-stage pipeline
// and reports total time and per-stage utilization, keeping the first
// `keep` rounds of segments for display (0 keeps none).
func PipelineTimeline(st StageTimes, rounds, keep int) (*Timeline, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("trainsim: non-positive round count")
	}
	if st.Sample < 0 || st.IO < 0 || st.Compute < 0 {
		return nil, fmt.Errorf("trainsim: negative stage time %+v", st)
	}
	var sampleEnd, ioEnd, compEnd float64
	tl := &Timeline{Rounds: rounds}
	for i := 0; i < rounds; i++ {
		sStart := sampleEnd
		sampleEnd = sStart + st.Sample
		ioStart := sampleEnd
		if ioEnd > ioStart {
			ioStart = ioEnd
		}
		ioEnd = ioStart + st.IO
		cStart := ioEnd
		if compEnd > cStart {
			cStart = compEnd
		}
		compEnd = cStart + st.Compute
		if i < keep {
			tl.Segments = append(tl.Segments,
				Segment{Stage: "sample", Round: i, Start: sStart, End: sampleEnd},
				Segment{Stage: "io", Round: i, Start: ioStart, End: ioEnd},
				Segment{Stage: "compute", Round: i, Start: cStart, End: compEnd},
			)
		}
	}
	tl.Total = compEnd
	if tl.Total > 0 {
		tl.SampleUtil = st.Sample * float64(rounds) / tl.Total
		tl.IOUtil = st.IO * float64(rounds) / tl.Total
		tl.ComputeUtil = st.Compute * float64(rounds) / tl.Total
	}
	switch {
	case st.IO >= st.Sample && st.IO >= st.Compute:
		tl.Critical = "io"
	case st.Compute >= st.Sample:
		tl.Critical = "compute"
	default:
		tl.Critical = "sample"
	}
	return tl, nil
}

// TimelineOf derives the exact pipeline schedule for a simulated epoch,
// spreading each stage's epoch total evenly over the rounds.
func TimelineOf(r *Result, keep int) (*Timeline, error) {
	if r == nil || r.Stats == nil {
		return nil, fmt.Errorf("trainsim: result lacks stats")
	}
	if r.OOM != "" {
		return nil, fmt.Errorf("trainsim: cannot draw a timeline for an OOM run (%s)", r.OOM)
	}
	rounds := r.Stats.BatchesPerEpoch
	if rounds <= 0 {
		rounds = 1
	}
	// Per-GPU rounds: the result's stage totals are already per GPU.
	perGPU := rounds / maxInt(1, len(r.PerGPUIOBW))
	if perGPU <= 0 {
		perGPU = 1
	}
	st := StageTimes{
		Sample:  r.SampleTime.Sec() / float64(perGPU),
		IO:      r.IOTime.Sec() / float64(perGPU),
		Compute: r.ComputeTime.Sec() / float64(perGPU),
	}
	return PipelineTimeline(st, perGPU, keep)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Render draws an ASCII Gantt chart of the kept segments, one row per
// stage, scaled to width columns.
func (tl *Timeline) Render(width int) string {
	if width <= 10 {
		width = 72
	}
	if len(tl.Segments) == 0 {
		return "(no segments kept)\n"
	}
	span := 0.0
	for _, s := range tl.Segments {
		if s.End > span {
			span = s.End
		}
	}
	if span == 0 {
		return "(zero-length timeline)\n"
	}
	rows := map[string][]byte{}
	for _, stage := range []string{"sample", "io", "compute"} {
		rows[stage] = []byte(strings.Repeat(".", width))
	}
	for _, s := range tl.Segments {
		row := rows[s.Stage]
		lo := int(s.Start / span * float64(width-1))
		hi := int(s.End / span * float64(width-1))
		mark := byte('0' + byte(s.Round%10))
		for i := lo; i <= hi && i < width; i++ {
			row[i] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline timeline (first %d rounds over %s, critical stage: %s)\n",
		len(tl.Segments)/3, units.Seconds(span), tl.Critical)
	for _, stage := range []string{"sample", "io", "compute"} {
		fmt.Fprintf(&b, "  %-8s %s\n", stage, rows[stage])
	}
	fmt.Fprintf(&b, "  utilization: sample %.0f%%, io %.0f%%, compute %.0f%%\n",
		tl.SampleUtil*100, tl.IOUtil*100, tl.ComputeUtil*100)
	return b.String()
}
