package trainsim

import (
	"math"
	"testing"

	"moment/internal/gnn"
	"moment/internal/graph"
)

func dataset(t *testing.T, name string) graph.Dataset {
	t.Helper()
	d, err := graph.DatasetByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestComputeStatsIG(t *testing.T) {
	stats, err := ComputeStats(Workload{Dataset: dataset(t, "IG"), Model: gnn.KindSAGE}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 2.69M training vertices at batch 8000 -> 337 batches (Table 2).
	if stats.BatchesPerEpoch != 337 {
		t.Errorf("batches = %d, want 337", stats.BatchesPerEpoch)
	}
	// Unique per batch: well above the 8000 seeds, well below the raw
	// 8000×(1+25+250) sample count.
	if stats.UniquePerBatch < 50_000 || stats.UniquePerBatch > 2_208_000 {
		t.Errorf("unique/batch = %.0f out of plausible range", stats.UniquePerBatch)
	}
	if stats.EdgesPerBatch <= 8000*25 {
		t.Errorf("edges/batch = %.0f too low", stats.EdgesPerBatch)
	}
	// Hotness sums to 1 and decreases with rank.
	sum := 0.0
	for i, h := range stats.VirtualHot {
		sum += h
		if h < 0 {
			t.Fatalf("negative hotness at %d", i)
		}
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("hotness sums to %v", sum)
	}
	// Per-vertex hotness density decreases with rank.
	for i := 1; i < len(stats.VirtualHot); i++ {
		d0 := stats.VirtualHot[i-1] / stats.VirtualBytes[i-1]
		d1 := stats.VirtualHot[i] / stats.VirtualBytes[i]
		if d1 > d0*(1+1e-9) {
			t.Fatalf("hotness density not monotone at %d", i)
		}
	}
	// Virtual bytes cover the full feature store.
	total := 0.0
	for _, b := range stats.VirtualBytes {
		total += b
	}
	want := float64(dataset(t, "IG").Vertices) * 4096
	if math.Abs(total-want) > 0.001*want {
		t.Errorf("virtual bytes %.3e, want %.3e", total, want)
	}
}

func TestComputeStatsSkewSensitivity(t *testing.T) {
	base := dataset(t, "IG")
	lo, hi := base, base
	lo.Skew = 0.6
	hi.Skew = 1.1
	sLo, err := ComputeStats(Workload{Dataset: lo}, 0)
	if err != nil {
		t.Fatal(err)
	}
	sHi, err := ComputeStats(Workload{Dataset: hi}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Higher skew -> fewer distinct fetches per batch.
	if sHi.UniquePerBatch >= sLo.UniquePerBatch {
		t.Errorf("skew did not reduce unique: %.0f vs %.0f", sHi.UniquePerBatch, sLo.UniquePerBatch)
	}
	// Higher skew -> more head mass.
	headLo, headHi := 0.0, 0.0
	for i := 0; i < hotDetail; i++ {
		headLo += sLo.VirtualHot[i]
		headHi += sHi.VirtualHot[i]
	}
	if headHi <= headLo {
		t.Errorf("head mass %v <= %v under higher skew", headHi, headLo)
	}
}

func TestComputeStatsDedupFactor(t *testing.T) {
	d := dataset(t, "IG")
	s1, err := ComputeStats(Workload{Dataset: d, DedupFactor: 1.0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	s05, err := ComputeStats(Workload{Dataset: d, DedupFactor: 0.5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s05.UniquePerBatch >= s1.UniquePerBatch {
		t.Errorf("dedup factor did not reduce unique: %.0f vs %.0f",
			s05.UniquePerBatch, s1.UniquePerBatch)
	}
}

func TestComputeStatsErrors(t *testing.T) {
	d := dataset(t, "IG")
	if _, err := ComputeStats(Workload{Dataset: d, BatchSize: -1}, 0); err == nil {
		t.Error("negative batch accepted")
	}
	if _, err := ComputeStats(Workload{Dataset: d, Fanouts: []int{}}, 0); err == nil {
		t.Error("empty fanouts accepted")
	}
	var empty graph.Dataset
	if _, err := ComputeStats(Workload{Dataset: empty}, 0); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestSaturate(t *testing.T) {
	if saturate(0, 100) != 0 || saturate(0.5, 0) != 0 {
		t.Error("degenerate saturate")
	}
	if saturate(1, 5) != 1 || saturate(2, 5) != 1 {
		t.Error("p>=1 should saturate to 1")
	}
	// 1-(1-p)^D for small p*D approximates p*D.
	got := saturate(1e-9, 100)
	if math.Abs(got-1e-7) > 1e-9 {
		t.Errorf("small-p saturate = %v", got)
	}
	// Large p*D approaches 1.
	if saturate(0.01, 10_000) < 0.999 {
		t.Error("large draws should saturate")
	}
}

func TestGeneralizedHarmonic(t *testing.T) {
	// Exact for small n.
	exact := 0.0
	for r := 1; r <= 500; r++ {
		exact += math.Pow(float64(r), -0.9)
	}
	got := generalizedHarmonic(500, 0.9)
	if math.Abs(got-exact) > 1e-9 {
		t.Errorf("H(500,0.9) = %v, want %v", got, exact)
	}
	// s=1 path and monotonicity in n.
	h1 := generalizedHarmonic(1_000_000, 1)
	h2 := generalizedHarmonic(10_000_000, 1)
	if h2 <= h1 {
		t.Error("harmonic not increasing")
	}
	// ~ln(n) + gamma for s=1.
	want := math.Log(1e6) + 0.5772
	if math.Abs(h1-want) > 0.05 {
		t.Errorf("H(1e6,1) = %v, want ~%v", h1, want)
	}
}

func TestRankBucketsCoverage(t *testing.T) {
	ranks, counts := rankBuckets(1_000_000, 500)
	total := 0.0
	for i, c := range counts {
		if c < 1 {
			t.Fatalf("bucket %d count %v", i, c)
		}
		total += c
	}
	if math.Abs(total-1_000_000) > 1 {
		t.Errorf("buckets cover %v of 1e6", total)
	}
	// Ranks strictly increasing.
	for i := 1; i < len(ranks); i++ {
		if ranks[i] <= ranks[i-1] {
			t.Fatalf("ranks not increasing at %d", i)
		}
	}
	// Small n: every rank individual.
	r2, c2 := rankBuckets(100, 500)
	if len(r2) != 100 || c2[0] != 1 {
		t.Errorf("small-n buckets: %d ranks", len(r2))
	}
}
