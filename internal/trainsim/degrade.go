package trainsim

import (
	"fmt"
	"math"

	"moment/internal/adaptive"
	"moment/internal/ddak"
	"moment/internal/faults"
	"moment/internal/simnet"
	"moment/internal/units"
)

// This file implements graceful degradation under injected faults. The
// healthy epoch is a single fabric-simulator run; with a fault schedule
// attached, throttles, link downtrains, and error bursts are absorbed by
// the simulator's time-varying link rates, while SSD fail-stops need
// placement-level recovery: the run is split at each failure, the dead
// device's remaining traffic is re-routed to the survivors in proportion
// to a degraded DDAK re-solve (via adaptive.Replanner.Rebin), and the
// timeline is charged a recovery stall — the retry policy's timeout plus
// the full backoff ladder — before the continuation segment starts.

// FaultReport summarizes how an epoch degraded under an injected schedule.
type FaultReport struct {
	// Injected counts schedule events whose start time fell inside the
	// (degraded) epoch.
	Injected int
	// DeadSSDs lists devices that fail-stopped during the epoch, in
	// failure order.
	DeadSSDs []int
	// Replans counts degraded placement re-solves (one per dead device).
	Replans int
	// Timeouts counts fail-stop drains charged to the timeline.
	Timeouts int
	// MovedBytes is the migration bill of the degraded re-solves: bytes
	// whose bin changed.
	MovedBytes float64
	// RetriedBytes estimates bytes re-fetched due to transient error
	// bursts (goodput model: served x p/(1-p), averaged over the epoch).
	RetriedBytes float64
	// StallSeconds is the total recovery stall inserted into the timeline.
	StallSeconds float64
	// NominalEpoch is the epoch time the same configuration achieves on
	// perfect hardware; Inflation = EpochTime / NominalEpoch.
	NominalEpoch units.Duration
	Inflation    float64
}

// flowSpec is one logical epoch transfer: a source endpoint, a destination
// GPU, and the bytes to move. Keeping flows in logical form (rather than
// resolved link paths) lets the degradation loop rebuild them on a fresh
// fabric for each timeline segment.
type flowSpec struct {
	name  string
	ssd   int    // source SSD index, or -1
	rc    string // source socket for DRAM flows, "" otherwise
	hbm   int    // source GPU cache for peer flows, or -1
	gpu   int    // destination GPU
	bytes float64
}

// buildFlowSpecs converts a placement's per-bin served bytes into the
// logical flow list SimulateEpoch feeds the fabric simulator.
func buildFlowSpecs(cfg Config, pl *plan, served []float64, gpuBin []int, dramBin map[string]int, ssdBin0 int) []flowSpec {
	m := cfg.Machine
	nGPU := m.NumGPUs
	perGPUFetch := pl.fetchEpoch / float64(nGPU)
	var specs []flowSpec
	for g := 0; g < nGPU; g++ {
		// GPU-cache flows.
		if cfg.Cache == CachePartitioned {
			for i, bi := range gpuBin {
				specs = append(specs, flowSpec{
					name: fmt.Sprintf("hbm%d>g%d", i, g),
					ssd:  -1, hbm: i, gpu: g,
					bytes: served[bi] / float64(nGPU),
				})
			}
		} else if pl.nvlHit[g] > 0 {
			specs = append(specs, flowSpec{
				name: fmt.Sprintf("nvl>g%d", g),
				ssd:  -1, hbm: pl.partner[g], gpu: g,
				bytes: pl.nvlHit[g] * perGPUFetch,
			})
		}
		// CPU-memory flows.
		for _, rc := range m.RootComplexes() {
			specs = append(specs, flowSpec{
				name: fmt.Sprintf("dram:%s>g%d", rc, g),
				ssd:  -1, hbm: -1, rc: rc, gpu: g,
				bytes: served[dramBin[rc]] / float64(nGPU),
			})
		}
		// SSD flows.
		for j := 0; j < m.NumSSDs; j++ {
			var bytes float64
			if cfg.Mode == PartitionedSSD {
				if j/pl.ssdsPerGPU != g {
					continue
				}
				ssdTier := 0.0
				for k := ssdBin0; k < len(served); k++ {
					ssdTier += served[k]
				}
				bytes = ssdTier / float64(nGPU) / float64(pl.ssdsPerGPU)
			} else {
				bytes = served[ssdBin0+j] / float64(nGPU)
			}
			specs = append(specs, flowSpec{
				name: fmt.Sprintf("ssd%d>g%d", j, g),
				ssd:  j, hbm: -1, gpu: g,
				bytes: bytes,
			})
		}
	}
	return specs
}

// addFlows resolves each spec's path on the fabric and registers it. Flow
// IDs are assigned sequentially, so flow i in the result corresponds to
// specs[i].
func addFlows(fab *Fabric, specs []flowSpec) error {
	for _, s := range specs {
		var (
			path []simnet.LinkID
			err  error
		)
		switch {
		case s.ssd >= 0:
			path, err = fab.PathSSDToGPU(s.ssd, s.gpu)
		case s.rc != "":
			path, err = fab.PathDRAMToGPU(s.rc, s.gpu)
		default:
			path, err = fab.PathHBMToGPU(s.hbm, s.gpu)
		}
		if err != nil {
			return err
		}
		if _, err := fab.Net.AddFlow(s.name, path, s.bytes, 0); err != nil {
			return err
		}
	}
	return nil
}

type degradeInput struct {
	cfg        Config
	specs      []flowSpec
	inj        *faults.Injector
	pol        faults.RetryPolicy
	bins       []ddak.Bin
	ssdBin0    int
	items      []ddak.Item
	fetchEpoch float64
	ssdsPerGPU int
	// t0 starts the timeline at an absolute schedule time instead of 0, and
	// dead seeds devices that already fail-stopped before t0 (their traffic
	// must have been re-routed out of specs by the caller). Both are zero
	// for a single-epoch run; the multi-epoch sweep uses them to evaluate a
	// later epoch against the same absolute fault schedule.
	t0   float64
	dead map[int]bool
}

// simulateDegradedIO runs the epoch's fabric traffic under the fault
// schedule and returns the degraded I/O time. Non-fail-stop faults ride on
// the simulator's time-varying link rates; each SSD fail-stop splits the
// timeline: the segment runs up to the failure, the dead device's
// remaining bytes re-route to surviving SSDs weighted by a degraded
// placement re-solve, a recovery stall is charged, and the continuation
// resumes on a fresh fabric with the injector's clock re-based.
func simulateDegradedIO(in degradeInput) (float64, *FaultReport, error) {
	m := in.cfg.Machine
	rep := &FaultReport{}
	dead := map[int]bool{}
	for j := range in.dead {
		dead[j] = true
	}
	var repl *adaptive.Replanner
	bins := in.bins
	cur := append([]flowSpec(nil), in.specs...)
	t := in.t0
	for {
		// Next unhandled SSD fail-stop, in absolute time.
		tf, fs := math.Inf(1), -1
		for j := 0; j < m.NumSSDs; j++ {
			if dead[j] {
				continue
			}
			if ft := in.inj.SSDFailTime(j); ft >= t && ft < tf {
				tf, fs = ft, j
			}
		}

		fab, err := NewFabric(m, in.cfg.Placement)
		if err != nil {
			return 0, nil, err
		}
		if err := addFlows(fab, cur); err != nil {
			return 0, nil, err
		}
		fab.Net.SetFaults(in.inj.WithBase(t))

		if math.IsInf(tf, 1) {
			res, err := fab.Net.Run()
			if err != nil {
				return 0, nil, err
			}
			return t + res.Makespan, rep, nil
		}
		res, err := fab.Net.RunUntil(tf - t)
		if err != nil {
			return 0, nil, err
		}
		remainTotal := 0.0
		for _, r := range res.FlowRemain {
			remainTotal += r
		}
		if remainTotal <= 1e-6 {
			// The epoch drained before the failure hit.
			return t + res.Makespan, rep, nil
		}

		// SSD fs fail-stops at absolute time tf with work outstanding.
		dead[fs] = true
		rep.DeadSSDs = append(rep.DeadSSDs, fs)
		rep.Timeouts++
		stall := in.pol.Timeout + in.pol.BackoffTotal()
		rep.StallSeconds += stall

		// Degraded placement re-solve: the dead bin's budget moves to the
		// surviving SSDs, and the replanner migrates its items.
		deadNames := map[string]bool{}
		for j := range dead {
			deadNames[fmt.Sprintf("ssd%d", j)] = true
		}
		bins, err = ddak.DegradeBins(in.bins, deadNames)
		if err != nil {
			return 0, nil, fmt.Errorf("trainsim: cannot degrade past ssd%d failure: %w", fs, err)
		}
		if in.cfg.Policy != PolicyHash {
			if repl == nil {
				repl, err = newReplannerFromItems(in.items, in.bins, in.cfg.PoolN, in.fetchEpoch, faults.Format(in.cfg.Faults))
				if err != nil {
					return 0, nil, err
				}
			}
			mig, err := repl.Rebin(bins)
			if err != nil {
				return 0, nil, fmt.Errorf("trainsim: degraded re-solve after ssd%d failure: %w", fs, err)
			}
			rep.Replans++
			rep.MovedBytes += mig.MovedBytes
		}

		// Rebuild the flow list from frozen per-flow progress, re-routing
		// the dead device's bytes onto survivors.
		next := make([]flowSpec, 0, len(cur))
		strandedPerGPU := map[int]float64{}
		for i, sp := range cur {
			rem := res.FlowRemain[i]
			if rem <= 1e-9 {
				continue
			}
			if sp.ssd == fs {
				strandedPerGPU[sp.gpu] += rem
				continue
			}
			sp.bytes = rem
			next = append(next, sp)
		}
		next, err = rerouteStranded(next, strandedPerGPU, in.cfg, bins, in.ssdBin0, dead, in.ssdsPerGPU)
		if err != nil {
			return 0, nil, err
		}
		t = tf + stall
		cur = next
		if len(cur) == 0 {
			return t, rep, nil
		}
	}
}

// rerouteStranded spreads each GPU's stranded bytes over surviving SSD
// flows, weighted by the degraded bins' traffic budgets (equal split when
// no survivor has one). Flows that do not exist yet — the survivor served
// nothing to that GPU before the failure — are created.
func rerouteStranded(next []flowSpec, stranded map[int]float64, cfg Config, bins []ddak.Bin, ssdBin0 int, dead map[int]bool, ssdsPerGPU int) ([]flowSpec, error) {
	m := cfg.Machine
	for gpu, bytes := range stranded {
		var surv []int
		wsum := 0.0
		for j := 0; j < m.NumSSDs; j++ {
			if dead[j] {
				continue
			}
			if cfg.Mode == PartitionedSSD && j/ssdsPerGPU != gpu {
				continue
			}
			surv = append(surv, j)
			wsum += bins[ssdBin0+j].Traffic
		}
		if len(surv) == 0 {
			return nil, fmt.Errorf("trainsim: gpu %d has no surviving SSD to re-route %.0f bytes", gpu, bytes)
		}
		for _, j := range surv {
			share := bytes / float64(len(surv))
			if wsum > 0 {
				share = bytes * bins[ssdBin0+j].Traffic / wsum
			}
			if share == 0 {
				continue
			}
			found := false
			for i := range next {
				if next[i].ssd == j && next[i].gpu == gpu {
					next[i].bytes += share
					found = true
					break
				}
			}
			if !found {
				next = append(next, flowSpec{
					name: fmt.Sprintf("ssd%d>g%d:rr", j, gpu),
					ssd:  j, hbm: -1, gpu: gpu,
					bytes: share,
				})
			}
		}
	}
	return next, nil
}

// newReplannerFromItems seeds an adaptive replanner with the epoch's item
// profile so degradation re-solves account their migration bill against
// the layout actually in force. scheduleKey (faults.Format output) salts
// the replanner's layout fingerprints so a shared layout cache never
// serves one schedule's degraded layouts to another.
func newReplannerFromItems(items []ddak.Item, bins []ddak.Bin, poolN int, fetchEpoch float64, scheduleKey string) (*adaptive.Replanner, error) {
	hot := make([]float64, len(items))
	sizes := make([]float64, len(items))
	for i, it := range items {
		hot[i] = it.Hot
		sizes[i] = it.Bytes
	}
	// The threshold is irrelevant on the Rebin path; any valid value works.
	r, err := adaptive.NewReplanner(hot, sizes, bins, poolN, fetchEpoch, 0.5)
	if err != nil {
		return nil, err
	}
	r.ScheduleKey = scheduleKey
	return r, nil
}

// stragglerCompute stretches the per-GPU compute stage under GPU slowdown
// events: each GPU finishes its work integral at its (piecewise-constant)
// speed factor, and the stage lasts until the slowest GPU is done.
func stragglerCompute(computeTime float64, nGPU int, inj *faults.Injector) float64 {
	worst := computeTime
	for g := 0; g < nGPU; g++ {
		done, t := 0.0, 0.0
		for done < computeTime-1e-12 {
			f := inj.GPUFactor(g, t)
			nb := inj.NextChange(t)
			if math.IsInf(nb, 1) || done+f*(nb-t) >= computeTime {
				t += (computeTime - done) / f
				break
			}
			done += f * (nb - t)
			t = nb
		}
		if t > worst {
			worst = t
		}
	}
	return worst
}

// retriedBytesEstimate approximates the transient-error retry traffic:
// each SSD's served bytes times p̄/(1-p̄), with p̄ its time-averaged error
// probability over the I/O window.
func retriedBytesEstimate(inj *faults.Injector, ssdServed []float64, ioTime float64) float64 {
	if ioTime <= 0 {
		return 0
	}
	total := 0.0
	for j, served := range ssdServed {
		integ, t := 0.0, 0.0
		for t < ioTime {
			nb := math.Min(inj.NextChange(t), ioTime)
			integ += inj.ErrorProb(j, t) * (nb - t)
			t = nb
		}
		p := integ / ioTime
		if p > 0 && p < 1 {
			total += served * p / (1 - p)
		}
	}
	return total
}
