package trainsim

import (
	"fmt"
	"math"

	"moment/internal/ddak"
	"moment/internal/faults"
	"moment/internal/flownet"
	"moment/internal/gnn"
	"moment/internal/obs"
	"moment/internal/topology"
	"moment/internal/units"
)

// Policy selects the data-placement algorithm.
type Policy int

const (
	// PolicyDDAK is the data-distribution-aware knapsack (§3.3).
	PolicyDDAK Policy = iota
	// PolicyHash is the capacity-proportional hash baseline.
	PolicyHash
)

// String names the policy.
func (p Policy) String() string {
	if p == PolicyHash {
		return "hash"
	}
	return "ddak"
}

// SSDMode selects how GPUs reach SSDs.
type SSDMode int

const (
	// SharedSSD lets every GPU read every SSD (Moment's multi-GPU I/O
	// stack, §3.1).
	SharedSSD SSDMode = iota
	// PartitionedSSD statically assigns SSDs to GPUs and replicates the
	// dataset per group (the M-GIDS extension, §4.1 Baselines).
	PartitionedSSD
)

// CacheMode selects how the GPU HBM feature caches are organized.
type CacheMode int

const (
	// CacheReplicated: every GPU caches the same hottest vertices; all
	// GPU-cache hits are local (Hyperion/GNNLab-style hot caching).
	CacheReplicated CacheMode = iota
	// CachePartitioned: the collective HBM capacity holds distinct
	// vertices; peers are served over the PCIe fabric (or NVLink).
	CachePartitioned
	// CachePaired: NVLink-bridged GPU pairs partition their combined
	// capacity (2x distinct vertices per pair, half served over the
	// bridge); pairs replicate each other. This is how Moment exploits
	// NVLink in Fig 18. GPUs without a bridge behave as CacheReplicated.
	CachePaired
)

// String names the cache mode.
func (c CacheMode) String() string {
	switch c {
	case CachePartitioned:
		return "partitioned"
	case CachePaired:
		return "paired"
	}
	return "replicated"
}

// Config describes one simulated training setup.
type Config struct {
	Machine   *topology.Machine
	Placement *topology.Placement
	Workload  Workload

	Policy Policy
	Mode   SSDMode
	Cache  CacheMode

	// VirtualVertices is the rank-bucket resolution (default 50000).
	VirtualVertices int
	// PoolN is DDAK's pooling factor (default 100, §3.3).
	PoolN int
	// CPUCacheVertexFrac is the fraction of vertices cached in CPU memory
	// (default 0.01 per §4.1).
	CPUCacheVertexFrac float64
	// StorageShardFrac is the fraction of the (non-cached) feature store
	// this machine holds on its SSDs — 1 for a standalone machine, 1/N
	// for a node of an N-way cluster whose cold data is partitioned
	// (§5 multi-node generalization). Cache capacity still holds the full
	// replicated hot head.
	StorageShardFrac float64
	// SampleRate is sampled edges/second/GPU for the sampling stage
	// (default 2e9, GPU-resident sampling).
	SampleRate float64
	// Observer receives spans and metrics for the simulated epoch (nil
	// falls back to the process default observer).
	Observer *obs.Observer

	// Faults is an optional fault schedule to inject into the epoch: SSD
	// fail-stops trigger graceful degradation (the dead device's remaining
	// traffic re-routes to survivors via a degraded placement re-solve),
	// while throttles, link downtrains, error bursts, and GPU stragglers
	// stretch the affected stages in place. Nil or empty simulates perfect
	// hardware.
	Faults *faults.Schedule
	// Retry governs recovery stalls under Faults (zero value = defaults).
	Retry faults.RetryPolicy
}

// Result is one simulated epoch.
type Result struct {
	// OOM is non-empty when the configuration cannot run (e.g. the graph
	// topology and feature cache exceed host memory); all other fields
	// are zero then.
	OOM string

	EpochTime   units.Duration
	IOTime      units.Duration // measured by the fabric simulator
	PredictedIO units.Duration // predicted by max-flow (Fig 13)
	ComputeTime units.Duration // per-GPU model compute over the epoch
	SampleTime  units.Duration

	PerGPUIOBW   []units.Bandwidth // average fabric inlet rate per GPU
	QPIBytes     float64
	FetchEpoch   float64 // feature bytes fetched per epoch (whole job)
	FabricEpoch  float64 // bytes that actually crossed the fabric
	HitGPU       float64 // fraction of fetches served by GPU caches
	HitCPU       float64
	Throughput   float64 // training vertices per second
	Stats        *Stats
	BinAssign    *ddak.ItemAssignment
	PreprocessOK bool
	// Faults reports the injected-fault timeline and the degradation it
	// forced; nil when the epoch ran on perfect hardware.
	Faults *FaultReport
}

// plan carries everything derived before data placement: workload stats,
// cache organization, tier masses, and the flow-network demand.
type plan struct {
	cfg     Config
	stats   *Stats
	items   []ddak.Item
	partner []int

	hitGPU           float64
	gpuDistinctBytes float64
	localHit         []float64
	nvlHit           []float64
	gpuMass, cpuMass float64
	ssdMass          float64

	fetchEpoch    float64
	cpuCacheBytes float64
	gpuCacheBytes float64
	replicas      float64
	ssdsPerGPU    int

	demand *flownet.Demand
}

// PlanDemand exposes the flow-network demand SimulateEpoch plans with, so
// that placement search can score candidates against the exact workload
// the runtime will execute.
func PlanDemand(cfg Config) (*flownet.Demand, *Stats, error) {
	pl, oom, err := buildPlan(cfg)
	if err != nil {
		return nil, nil, err
	}
	if oom != nil {
		return nil, nil, fmt.Errorf("trainsim: %s", oom.OOM)
	}
	return pl.demand, pl.stats, nil
}

// buildPlan normalizes the config, checks memory feasibility, derives the
// workload stats and cache organization, and constructs the flow demand.
// A non-nil second return is an OOM pseudo-result.
func buildPlan(cfg Config) (*plan, *Result, error) {
	m := cfg.Machine
	if m == nil || cfg.Placement == nil {
		return nil, nil, fmt.Errorf("trainsim: nil machine or placement")
	}
	w := cfg.Workload.Defaults()
	w.NumGPUs = m.NumGPUs
	if cfg.CPUCacheVertexFrac == 0 {
		cfg.CPUCacheVertexFrac = 0.01
	}
	if cfg.SampleRate == 0 {
		cfg.SampleRate = 2e9
	}
	if cfg.PoolN == 0 {
		cfg.PoolN = 100
	}
	if cfg.StorageShardFrac <= 0 || cfg.StorageShardFrac > 1 {
		cfg.StorageShardFrac = 1
	}
	if cfg.Policy == PolicyHash {
		// Hash-based partitioning spreads embeddings uniformly across the
		// whole hierarchy, including the GPU caches — so the caches hold
		// mostly cold vertices (§3.3: "naive uniform distribution methods
		// ... are not effective"). Model this as partitioned caches with
		// capacity-share hit rates.
		cfg.Cache = CachePartitioned
	}
	cfg.Workload = w
	stats, err := ComputeStats(w, cfg.VirtualVertices)
	if err != nil {
		return nil, nil, err
	}
	d := w.Dataset
	rowBytes := float64(d.FeatureBytesPerVertex())
	nGPU := m.NumGPUs
	rcs := m.RootComplexes()

	// ---- Memory feasibility ------------------------------------------
	cpuCacheBytes := cfg.CPUCacheVertexFrac * float64(d.Vertices) * rowBytes
	totalDRAM := float64(m.DRAMPerSocket.Int64()) * float64(len(rcs))
	if float64(d.TopologyStorage.Int64())+cpuCacheBytes > totalDRAM {
		return nil, &Result{OOM: fmt.Sprintf(
			"host memory: topology %s + feature cache %.0f GiB exceed %.0f GiB DRAM",
			d.TopologyStorage, cpuCacheBytes/(1<<30), totalDRAM/(1<<30))}, nil
	}
	featBytes := float64(d.FeatureStorage.Int64())
	ssdTotalCap := float64(m.SSDCapacity.Int64()) * float64(m.NumSSDs)
	replicas := 1.0
	ssdsPerGPU := 0
	if cfg.Mode == PartitionedSSD {
		if nGPU <= 0 || m.NumSSDs < nGPU {
			return nil, &Result{OOM: "fewer SSDs than GPUs under static partitioning"}, nil
		}
		ssdsPerGPU = m.NumSSDs / nGPU
		replicas = float64(nGPU) // dataset replicated per GPU's SSD group
	}
	if featBytes*replicas*cfg.StorageShardFrac > ssdTotalCap {
		return nil, &Result{OOM: fmt.Sprintf(
			"ssd capacity: %.1f TiB x %.0f replicas exceed %.1f TiB",
			featBytes*cfg.StorageShardFrac/(1<<40), replicas, ssdTotalCap/(1<<40))}, nil
	}

	gpuCacheBytes := float64(m.GPUMemory.Int64()) * m.GPUCacheFrac

	// ---- GPU cache organization --------------------------------------
	items := make([]ddak.Item, len(stats.VirtualHot))
	for i := range items {
		items[i] = ddak.Item{Hot: stats.VirtualHot[i], Bytes: stats.VirtualBytes[i]}
	}
	partner := nvlinkPartners(m)
	var hitGPU float64           // total GPU-cache hit mass
	var gpuDistinctBytes float64 // distinct cached bytes (removed from DDAK items)
	localHit := make([]float64, nGPU)
	nvlHit := make([]float64, nGPU)
	switch cfg.Cache {
	case CachePartitioned:
		// Handled via DDAK bins below (collective distinct capacity,
		// peers served across the fabric).
		gpuDistinctBytes = 0
	case CachePaired:
		m1 := replicatedMass(items, gpuCacheBytes)
		m2 := replicatedMass(items, 2*gpuCacheBytes)
		anyPaired := false
		for g := 0; g < nGPU; g++ {
			if partner[g] >= 0 {
				localHit[g] = m2 / 2
				nvlHit[g] = m2 / 2
				anyPaired = true
			} else {
				localHit[g] = m1
			}
		}
		if anyPaired {
			gpuDistinctBytes = 2 * gpuCacheBytes
			hitGPU = m2
		} else {
			gpuDistinctBytes = gpuCacheBytes
			hitGPU = m1
		}
	default: // CacheReplicated
		m1 := replicatedMass(items, gpuCacheBytes)
		for g := 0; g < nGPU; g++ {
			localHit[g] = m1
		}
		gpuDistinctBytes = gpuCacheBytes
		hitGPU = m1
	}

	// ---- Provisional tier budgets (greedy hot-first fill) -------------
	var gpuMass, cpuMass float64
	if cfg.Cache == CachePartitioned {
		gpuMass, cpuMass = tierMasses(stats, gpuCacheBytes*float64(nGPU), cpuCacheBytes)
	} else {
		// Aggregate GPU-cache service across (possibly mixed paired and
		// unpaired) GPUs, so supply exactly covers demand.
		agg := 0.0
		for g := 0; g < nGPU; g++ {
			agg += localHit[g] + nvlHit[g]
		}
		gpuMass = agg / float64(nGPU)
		hitGPU = gpuMass
		_, cpuMass = tierMasses(stats, gpuDistinctBytes, cpuCacheBytes)
	}
	if cfg.Policy == PolicyHash {
		// Uniform spread: every cache captures only its capacity share.
		total := float64(d.FeatureStorage.Int64())
		gpuMass = math.Min(1, gpuCacheBytes*float64(nGPU)/total)
		cpuMass = math.Min(1-gpuMass, cpuCacheBytes/total)
	}
	ssdMass := 1 - gpuMass - cpuMass
	if ssdMass < 0 {
		ssdMass = 0
	}

	fetchEpoch := stats.FetchBytesEpoch
	perGPUFetch := fetchEpoch / float64(nGPU)

	// ---- Max-flow prediction (§3.2) ------------------------------------
	dem := &flownet.Demand{
		PerGPU:   make([]float64, nGPU),
		DRAM:     map[string]float64{},
		SSDTotal: ssdMass * fetchEpoch,
	}
	switch cfg.Cache {
	case CachePartitioned:
		localShare := gpuMass / float64(nGPU)
		for g := range dem.PerGPU {
			dem.PerGPU[g] = perGPUFetch * (1 - localShare)
		}
		dem.HBMPeer = make([]float64, nGPU)
		for g := range dem.HBMPeer {
			dem.HBMPeer[g] = gpuMass / float64(nGPU) * fetchEpoch * float64(nGPU-1) / float64(nGPU)
		}
	case CachePaired:
		dem.HBMPeer = make([]float64, nGPU)
		for g := range dem.PerGPU {
			dem.PerGPU[g] = perGPUFetch * (1 - localHit[g])
			if partner[g] >= 0 {
				dem.HBMPeer[g] = nvlHit[partner[g]] * perGPUFetch
			}
		}
	default:
		for g := range dem.PerGPU {
			dem.PerGPU[g] = perGPUFetch * (1 - localHit[g])
		}
	}
	for _, rc := range rcs {
		dem.DRAM[rc] = cpuMass * fetchEpoch / float64(len(rcs))
	}
	return &plan{
		cfg:              cfg,
		stats:            stats,
		items:            items,
		partner:          partner,
		hitGPU:           hitGPU,
		gpuDistinctBytes: gpuDistinctBytes,
		localHit:         localHit,
		nvlHit:           nvlHit,
		gpuMass:          gpuMass,
		cpuMass:          cpuMass,
		ssdMass:          ssdMass,
		fetchEpoch:       fetchEpoch,
		cpuCacheBytes:    cpuCacheBytes,
		gpuCacheBytes:    gpuCacheBytes,
		replicas:         replicas,
		ssdsPerGPU:       ssdsPerGPU,
		demand:           dem,
	}, nil, nil
}

// epochSetup carries everything SimulateEpoch derives before touching the
// fabric: the normalized config and plan, the max-flow prediction, the
// DDAK layout, the logical flow list, and the non-I/O stage durations. A
// multi-epoch sweep (SimulateEpochs) builds it once and replays fabric
// runs against it instead of re-planning every epoch.
type epochSetup struct {
	cfg         Config
	pl          *plan
	predicted   units.Duration
	bins        []ddak.Bin
	gpuBin      []int
	dramBin     map[string]int
	ssdBin0     int
	fabricScale float64
	placeItems  []ddak.Item
	assign      *ddak.ItemAssignment
	served      []float64
	specs       []flowSpec
	hitGPU      float64
	hitCPU      float64

	computeTime float64
	sampleTime  float64
	iterPerGPU  float64
}

// epochOf assembles a pipelined epoch from its stage times (§3.1 System
// Runtime): the longest stage dominates, plus a pipeline-fill term.
func (es *epochSetup) epochOf(io, comp float64) float64 {
	stageMax := math.Max(io, math.Max(comp, es.sampleTime))
	fill := (io + comp + es.sampleTime - stageMax) / math.Max(es.iterPerGPU, 1)
	return stageMax + fill
}

// placeAndSpecs runs the epoch pipeline up to (but not including) the
// fabric simulation: workload stats → provisional tier budgets → max-flow
// prediction → fabric-fair traffic plan → DDAK/hash data placement →
// logical flow list → compute/sampling stage times. A non-nil second
// return is an OOM pseudo-result.
func placeAndSpecs(cfg Config, o *obs.Observer, epochSp *obs.Span) (*epochSetup, *Result, error) {
	scoped := o.In(epochSp)
	planSp := epochSp.Child("plan")
	pl, oom, err := buildPlan(cfg)
	planSp.End()
	if err != nil {
		return nil, nil, err
	}
	if oom != nil {
		o.Counter("trainsim_oom_total").Inc()
		return nil, oom, nil
	}
	cfg = pl.cfg
	m := cfg.Machine
	w := cfg.Workload
	d := w.Dataset
	nGPU := m.NumGPUs
	rcs := m.RootComplexes()
	stats := pl.stats
	hitGPU := pl.hitGPU
	localHit := pl.localHit
	items := pl.items
	gpuMass, cpuMass, ssdMass := pl.gpuMass, pl.cpuMass, pl.ssdMass
	fetchEpoch := pl.fetchEpoch
	cpuCacheBytes := pl.cpuCacheBytes
	gpuCacheBytes := pl.gpuCacheBytes
	gpuDistinctBytes := pl.gpuDistinctBytes
	replicas := pl.replicas
	ssdsPerGPU := pl.ssdsPerGPU

	predictSp := epochSp.Child("predict")
	net, err := flownet.Build(m, cfg.Placement, pl.demand)
	if err != nil {
		predictSp.End()
		return nil, nil, err
	}
	net.SetObserver(o)
	predicted, err := net.Solve()
	predictSp.SetFloat("predicted_io_seconds", predicted.Sec())
	predictSp.End()
	if err != nil {
		return nil, nil, err
	}

	// ---- Fabric-fair traffic plan --------------------------------------
	// Bin_traffic must reflect the service share each bin gets on the real
	// fabric under fair sharing — raw max-flow has degenerate optima that
	// concentrate traffic on arbitrary symmetric SSDs. A probe run of the
	// fabric simulator yields the max-min fair service shares instead.
	fairSp := epochSp.Child("fair-shares")
	ssdShare, _, err := fairShares(m, cfg.Placement, cfg.Mode, ssdsPerGPU)
	fairSp.End()
	if err != nil {
		return nil, nil, err
	}
	// The CPU cache's socket split follows GPU locality: caching hot
	// vertices in the DRAM of a socket with no GPUs only adds QPI
	// crossings (the Fig 17 effect), so each socket's share tracks the
	// GPUs it hosts (smoothed so an empty socket still takes overflow).
	dramShare := dramLocalityShares(m, cfg.Placement)

	// ---- Data placement over virtual vertices ---------------------------
	var bins []ddak.Bin
	gpuBin := make([]int, 0, nGPU)
	placeItems := items
	if cfg.Cache == CachePartitioned {
		for g := 0; g < nGPU; g++ {
			gpuBin = append(gpuBin, len(bins))
			bins = append(bins, ddak.Bin{
				Name: fmt.Sprintf("hbm%d", g), Tier: ddak.TierGPU,
				Capacity: gpuCacheBytes,
				Traffic:  gpuMass / float64(nGPU) * fetchEpoch,
			})
		}
	} else {
		// The replicated/paired cache head never reaches DDAK.
		placeItems = itemsAfterCache(items, gpuDistinctBytes)
	}
	if cfg.StorageShardFrac < 1 {
		// Cluster node: only a shard of each (non-cached) rank bucket
		// lives on this machine's SSDs; the access mass per local byte
		// is unchanged, so scale item sizes by the shard fraction.
		sharded := make([]ddak.Item, len(placeItems))
		for i, it := range placeItems {
			sharded[i] = ddak.Item{Hot: it.Hot, Bytes: it.Bytes * cfg.StorageShardFrac}
		}
		placeItems = sharded
	}
	dramBin := map[string]int{}
	for _, rc := range rcs {
		dramBin[rc] = len(bins)
		bins = append(bins, ddak.Bin{
			Name: "dram:" + rc, Tier: ddak.TierCPU,
			Capacity: cpuCacheBytes / float64(len(rcs)),
			Traffic:  cpuMass * fetchEpoch * dramShare[rc],
		})
	}
	ssdBin0 := len(bins)
	for j := 0; j < m.NumSSDs; j++ {
		bins = append(bins, ddak.Bin{
			Name: fmt.Sprintf("ssd%d", j), Tier: ddak.TierSSD,
			Capacity: float64(m.SSDCapacity.Int64()) / replicas,
			Traffic:  ssdMass * fetchEpoch * ssdShare[j],
		})
	}
	var assign *ddak.ItemAssignment
	switch cfg.Policy {
	case PolicyHash:
		assign, err = ddak.HashPlaceItems(placeItems, bins)
	default:
		// scoped nests the "ddak" span under this epoch's span.
		assign, err = ddak.PlaceItemsObserved(placeItems, bins, cfg.PoolN, fetchEpoch, scoped)
	}
	if err != nil {
		return nil, nil, err
	}
	if cfg.Cache == CachePartitioned {
		hitGPU = assign.HitRateItems(ddak.TierGPU)
		for g := 0; g < nGPU; g++ {
			localHit[g] = hitGPU / float64(nGPU)
		}
	}
	hitCPU := assign.HitRateItems(ddak.TierCPU) * sumHot(placeItems)

	// ---- Logical flow list ----------------------------------------------
	fabricScale := fetchEpoch
	if cfg.Cache != CachePartitioned {
		fabricScale = fetchEpoch * sumHot(placeItems)
	}
	served := assign.ServedBytesItems(fabricScale)
	specs := buildFlowSpecs(cfg, pl, served, gpuBin, dramBin, ssdBin0)

	// ---- Compute + sampling stages --------------------------------------
	iterPerGPU := math.Ceil(float64(stats.BatchesPerEpoch) / float64(nGPU))
	cost := gnn.DefaultCostModel(w.Model, d.FeatureDim, 2)
	iterSec, err := cost.IterationSeconds(int64(stats.UniquePerBatch), int64(stats.EdgesPerBatch))
	if err != nil {
		return nil, nil, err
	}
	return &epochSetup{
		cfg:         cfg,
		pl:          pl,
		predicted:   predicted,
		bins:        bins,
		gpuBin:      gpuBin,
		dramBin:     dramBin,
		ssdBin0:     ssdBin0,
		fabricScale: fabricScale,
		placeItems:  placeItems,
		assign:      assign,
		served:      served,
		specs:       specs,
		hitGPU:      hitGPU,
		hitCPU:      hitCPU,
		computeTime: iterSec * iterPerGPU,
		sampleTime:  stats.EdgesPerBatch / cfg.SampleRate * iterPerGPU,
		iterPerGPU:  iterPerGPU,
	}, nil, nil
}

// SimulateEpoch runs the full pipeline: workload stats → provisional tier
// budgets → max-flow prediction → fabric-fair traffic plan → DDAK/hash
// data placement → fabric simulation → pipelined epoch assembly.
func SimulateEpoch(cfg Config) (*Result, error) {
	o := obs.Active(cfg.Observer)
	epochSp := o.Begin("trainsim.epoch")
	if cfg.Machine != nil {
		epochSp.SetStr("machine", cfg.Machine.Name)
	}
	if cfg.Placement != nil {
		epochSp.SetStr("placement", cfg.Placement.Name)
	}
	epochSp.SetStr("policy", cfg.Policy.String())
	defer epochSp.End()
	scoped := o.In(epochSp)

	es, oom, err := placeAndSpecs(cfg, o, epochSp)
	if err != nil {
		return nil, err
	}
	if oom != nil {
		return oom, nil
	}
	cfg = es.cfg
	m := cfg.Machine
	w := cfg.Workload
	d := w.Dataset
	nGPU := m.NumGPUs
	stats := es.pl.stats
	fetchEpoch := es.pl.fetchEpoch
	ssdsPerGPU := es.pl.ssdsPerGPU
	predicted := es.predicted
	specs, bins, ssdBin0 := es.specs, es.bins, es.ssdBin0
	served := es.served
	hitGPU, hitCPU := es.hitGPU, es.hitCPU
	computeTime, sampleTime := es.computeTime, es.sampleTime

	// ---- Fabric simulation ----------------------------------------------
	fab, err := NewFabric(m, cfg.Placement)
	if err != nil {
		return nil, err
	}
	if err := addFlows(fab, specs); err != nil {
		return nil, err
	}
	fabSp := epochSp.Child("fabric-sim")
	fab.Net.SetObserver(scoped)
	runRes, err := fab.Net.Run()
	fabSp.End()
	if err != nil {
		return nil, err
	}
	ioTime := runRes.Makespan

	// ---- Pipelined epoch (§3.1 System Runtime) --------------------------
	epochOf := es.epochOf
	nomIO := ioTime
	epoch := epochOf(ioTime, computeTime)

	// ---- Graceful degradation under injected faults ----------------------
	var frep *FaultReport
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		inj, err := faults.NewInjector(cfg.Faults)
		if err != nil {
			return nil, err
		}
		if err := inj.CheckTargets(m.NumSSDs, nGPU); err != nil {
			return nil, err
		}
		// Flight-record every scheduled fault transition so a post-hoc dump
		// shows what was injected when. The FlightEnabled guard keeps the
		// disabled path free of the Sprintf allocations below.
		if scoped.FlightEnabled() {
			for _, fe := range inj.Events() {
				subject := fe.Link
				switch {
				case fe.GPU >= 0:
					subject = fmt.Sprintf("gpu%d", fe.GPU)
				case fe.SSD >= 0:
					subject = fmt.Sprintf("ssd%d", fe.SSD)
				}
				scoped.Event(obs.Event{Kind: obs.EvFault, Name: fe.Kind.String(),
					Subject: subject, V1: fe.At, V2: fe.Factor})
			}
		}
		degSp := epochSp.Child("degrade")
		nominalEpoch := epoch
		degIO, rep, err := simulateDegradedIO(degradeInput{
			cfg:        cfg,
			specs:      specs,
			inj:        inj,
			pol:        cfg.Retry.Defaults(),
			bins:       bins,
			ssdBin0:    ssdBin0,
			items:      es.placeItems,
			fetchEpoch: fetchEpoch,
			ssdsPerGPU: ssdsPerGPU,
		})
		degSp.End()
		if err != nil {
			return nil, err
		}
		degCompute := stragglerCompute(computeTime, nGPU, inj)
		ioTime, computeTime = degIO, degCompute
		epoch = epochOf(ioTime, computeTime)
		rep.NominalEpoch = units.Seconds(nominalEpoch)
		if nominalEpoch > 0 {
			rep.Inflation = epoch / nominalEpoch
		}
		rep.Injected = inj.InjectedBy(epoch)
		rep.RetriedBytes = retriedBytesEstimate(inj, served[ssdBin0:], ioTime)
		frep = rep
		if o != nil {
			o.Counter("faults_injected_total").Add(float64(rep.Injected))
			o.Counter("faults_replans_total").Add(float64(rep.Replans))
			o.Counter("faults_timeouts_total").Add(float64(rep.Timeouts))
			o.Gauge("faults_stall_seconds").Set(rep.StallSeconds)
			o.Gauge("faults_moved_bytes").Set(rep.MovedBytes)
			o.Gauge("faults_retried_bytes").Set(rep.RetriedBytes)
			o.Gauge("trainsim_epoch_inflation").Set(rep.Inflation)
		}
	}

	fabricBytes := 0.0
	perGPUBW := make([]units.Bandwidth, nGPU)
	for g := 0; g < nGPU; g++ {
		in := runRes.LinkBytes[fab.gpuIn[g]]
		for pair, l := range fab.nvl {
			if pair[1] == g {
				in += runRes.LinkBytes[l]
			}
		}
		fabricBytes += in
		if nomIO > 0 {
			// Bandwidths describe the nominal traffic plan; under faults the
			// degraded timeline is reported via Faults instead.
			perGPUBW[g] = units.Bandwidth(in / nomIO)
		}
	}

	train := float64(d.TrainVertices())
	res := &Result{
		EpochTime:    units.Seconds(epoch),
		IOTime:       units.Seconds(ioTime),
		PredictedIO:  predicted,
		ComputeTime:  units.Seconds(computeTime),
		SampleTime:   units.Seconds(sampleTime),
		PerGPUIOBW:   perGPUBW,
		QPIBytes:     fab.QPIBytes(runRes),
		FetchEpoch:   fetchEpoch,
		FabricEpoch:  fabricBytes,
		HitGPU:       hitGPU,
		HitCPU:       hitCPU,
		Stats:        stats,
		BinAssign:    es.assign,
		PreprocessOK: true,
		Faults:       frep,
	}
	if epoch > 0 {
		res.Throughput = train / epoch
	}
	if o != nil {
		o.Gauge("trainsim_stage_seconds", obs.L("stage", "io")).Set(ioTime)
		o.Gauge("trainsim_stage_seconds", obs.L("stage", "compute")).Set(computeTime)
		o.Gauge("trainsim_stage_seconds", obs.L("stage", "sample")).Set(sampleTime)
		o.Gauge("trainsim_epoch_seconds").Set(epoch)
		o.Gauge("trainsim_predicted_io_seconds").Set(predicted.Sec())
		o.Gauge("trainsim_hit_ratio", obs.L("tier", "gpu")).Set(hitGPU)
		o.Gauge("trainsim_hit_ratio", obs.L("tier", "cpu")).Set(hitCPU)
		o.Gauge("trainsim_qpi_bytes").Set(res.QPIBytes)
		o.Counter("trainsim_epochs_total").Inc()
		epochSp.SetFloat("epoch_seconds", epoch)
		epochSp.SetFloat("io_seconds", ioTime)
	}
	return res, nil
}

// fairShares probes the fabric with symmetric unit flows and returns the
// max-min fair service share of each SSD and each socket's DRAM.
func fairShares(m *topology.Machine, p *topology.Placement, mode SSDMode, ssdsPerGPU int) (ssd []float64, dram map[string]float64, err error) {
	fab, err := NewFabric(m, p)
	if err != nil {
		return nil, nil, err
	}
	type key struct {
		kind string
		idx  int
		rc   string
	}
	var keys []key
	const probeBytes = 1 << 30
	for j := 0; j < m.NumSSDs; j++ {
		for g := 0; g < m.NumGPUs; g++ {
			if mode == PartitionedSSD && j/ssdsPerGPU != g {
				continue
			}
			path, err := fab.PathSSDToGPU(j, g)
			if err != nil {
				return nil, nil, err
			}
			if _, err := fab.Net.AddFlow("probe", path, probeBytes, 0); err != nil {
				return nil, nil, err
			}
			keys = append(keys, key{kind: "ssd", idx: j})
		}
	}
	for _, rc := range m.RootComplexes() {
		for g := 0; g < m.NumGPUs; g++ {
			path, err := fab.PathDRAMToGPU(rc, g)
			if err != nil {
				return nil, nil, err
			}
			if _, err := fab.Net.AddFlow("probe", path, probeBytes, 0); err != nil {
				return nil, nil, err
			}
			keys = append(keys, key{kind: "dram", rc: rc})
		}
	}
	rates := fab.Net.InitialRates()
	ssd = make([]float64, m.NumSSDs)
	dram = map[string]float64{}
	for _, rc := range m.RootComplexes() {
		dram[rc] = 0
	}
	ssdSum, dramSum := 0.0, 0.0
	for i, k := range keys {
		r := rates[i]
		if math.IsInf(r, 1) {
			r = 0
		}
		if k.kind == "ssd" {
			ssd[k.idx] += r
			ssdSum += r
		} else {
			dram[k.rc] += r
			dramSum += r
		}
	}
	for j := range ssd {
		if ssdSum > 0 {
			ssd[j] /= ssdSum
		} else if m.NumSSDs > 0 {
			ssd[j] = 1 / float64(m.NumSSDs)
		}
	}
	for rc := range dram {
		if dramSum > 0 {
			dram[rc] /= dramSum
		} else {
			dram[rc] = 1 / float64(len(dram))
		}
	}
	return ssd, dram, nil
}

// dramLocalityShares weights each socket's CPU-cache traffic by the GPUs
// it (transitively) hosts.
func dramLocalityShares(m *topology.Machine, p *topology.Placement) map[string]float64 {
	rcs := m.RootComplexes()
	counts := map[string]float64{}
	const smooth = 0.25
	total := smooth * float64(len(rcs))
	for _, rc := range rcs {
		counts[rc] = smooth
	}
	for _, at := range p.GPUAt {
		sock, err := m.Socket(at)
		if err != nil {
			continue
		}
		counts[sock]++
		total++
	}
	for rc := range counts {
		counts[rc] /= total
	}
	return counts
}

func nvlinkPartners(m *topology.Machine) []int {
	partner := make([]int, m.NumGPUs)
	for i := range partner {
		partner[i] = -1
	}
	for _, nv := range m.NVLinks {
		if partner[nv.A] == -1 && partner[nv.B] == -1 {
			partner[nv.A] = nv.B
			partner[nv.B] = nv.A
		}
	}
	return partner
}

// tierMasses greedily fills tiers hot-first and returns the access mass
// captured by the GPU tier and CPU tier.
func tierMasses(stats *Stats, gpuCap, cpuCap float64) (gpuMass, cpuMass float64) {
	remainingGPU, remainingCPU := gpuCap, cpuCap
	for i := range stats.VirtualHot {
		b := stats.VirtualBytes[i]
		switch {
		case remainingGPU >= b:
			remainingGPU -= b
			gpuMass += stats.VirtualHot[i]
		case remainingCPU >= b:
			remainingCPU -= b
			cpuMass += stats.VirtualHot[i]
		default:
			// SSD tier; keep scanning — a smaller later bucket might
			// still fit (sizes vary between head and tail items).
		}
	}
	return gpuMass, cpuMass
}

// replicatedMass is the hotness captured by one cache's worth of the
// hottest items (items must be in hot-first order, as ComputeStats emits).
func replicatedMass(items []ddak.Item, cap float64) float64 {
	mass := 0.0
	for _, it := range items {
		if cap < it.Bytes {
			break
		}
		cap -= it.Bytes
		mass += it.Hot
	}
	return mass
}

// itemsAfterCache strips the replicated cache head from the item list.
func itemsAfterCache(items []ddak.Item, cap float64) []ddak.Item {
	i := 0
	for ; i < len(items); i++ {
		if cap < items[i].Bytes {
			break
		}
		cap -= items[i].Bytes
	}
	rest := items[i:]
	if len(rest) == 0 {
		rest = []ddak.Item{{Hot: 0, Bytes: 1}}
	}
	return rest
}

func sumHot(items []ddak.Item) float64 {
	t := 0.0
	for _, it := range items {
		t += it.Hot
	}
	return t
}
