package trainsim

import (
	"math"
	"math/rand"
	"testing"

	"moment/internal/gnn"
	"moment/internal/topology"
)

func newDriftRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func driftCfg(t *testing.T) Config {
	t.Helper()
	m := topology.MachineB()
	p, err := topology.ClassicPlacement(m, topology.LayoutC)
	if err != nil {
		t.Fatal(err)
	}
	return Config{Machine: m, Placement: p,
		Workload:        Workload{Dataset: dataset(t, "IG"), Model: gnn.KindSAGE},
		Cache:           CachePartitioned,
		VirtualVertices: 2000,
	}
}

func runDrift(t *testing.T, cfg Config, opt DriftOptions) *DriftReport {
	t.Helper()
	rep, err := SimulateDriftEpochs(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// The oracle-differential suite: for every drift scenario the closed
// adaptive loop must land within 5% of the from-scratch oracle's mean
// epoch time while migrating strictly less than half its bytes — the
// incremental re-solve plus payback billing avoid the full solver's
// label-churn migrations without giving up epoch time.
func TestDriftAdaptiveTracksOracle(t *testing.T) {
	cfg := driftCfg(t)
	cases := []struct {
		name string
		kind DriftKind
	}{
		{"gradual-rotate", DriftRotate},
		{"sudden-flip", DriftFlip},
		{"oscillation", DriftOscillate},
		{"reshuffle", DriftShuffle},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := DriftOptions{
				Epochs:   300,
				Schedule: DriftSchedule{Every: 100, Kind: tc.kind, Mag: 0.2, Seed: 7},
			}
			ad := runDrift(t, cfg, opt)
			opt.Oracle = true
			or := runDrift(t, cfg, opt)
			if ad.DriftEvents != 2 || or.DriftEvents != 2 {
				t.Fatalf("drift events: adaptive %d, oracle %d, want 2", ad.DriftEvents, or.DriftEvents)
			}
			if or.Replans != or.DriftEvents {
				t.Errorf("oracle replanned %d times for %d events", or.Replans, or.DriftEvents)
			}
			if ad.Trips == 0 {
				t.Error("adaptive loop never detected the drift")
			}
			if ratio := ad.MeanEpoch / or.MeanEpoch; ratio > 1.05 {
				t.Errorf("adaptive mean epoch %.3fs is %.1f%% over oracle %.3fs",
					ad.MeanEpoch, (ratio-1)*100, or.MeanEpoch)
			}
			if or.MovedBytes <= 0 {
				t.Fatalf("oracle migrated nothing under %s drift", tc.kind)
			}
			if ad.MovedBytes >= 0.5*or.MovedBytes {
				t.Errorf("adaptive migrated %.3g bytes, want < half of oracle's %.3g",
					ad.MovedBytes, or.MovedBytes)
			}
		})
	}
}

// The no-drift control: a steady workload must cost nothing — no trips, no
// replans, no migration, and epoch times identical to the oracle's.
func TestDriftNoDriftControl(t *testing.T) {
	cfg := driftCfg(t)
	opt := DriftOptions{Epochs: 50, Schedule: DriftSchedule{}}
	ad := runDrift(t, cfg, opt)
	opt.Oracle = true
	or := runDrift(t, cfg, opt)
	if ad.Trips != 0 || ad.Replans != 0 || ad.MovedBytes != 0 {
		t.Errorf("steady workload: trips=%d replans=%d moved=%.3g, want all zero",
			ad.Trips, ad.Replans, ad.MovedBytes)
	}
	if ad.MeanEpoch != or.MeanEpoch {
		t.Errorf("steady workload: adaptive %.6f != oracle %.6f", ad.MeanEpoch, or.MeanEpoch)
	}
	if ad.Resims != 1 || ad.CacheHits != opt.Epochs-1 {
		t.Errorf("steady workload should price one epoch and memoize the rest: resims=%d hits=%d",
			ad.Resims, ad.CacheHits)
	}
}

// The long-horizon acceptance run: 1000 epochs with the hotness reshuffled
// every 100. The adaptive loop must stay within 5% of the from-scratch
// oracle's epoch time while migrating less than half its bytes, and the
// (assignment, hotness) memo must keep the fabric bill sublinear in the
// horizon. Deterministic: seeded schedule, analytic workload.
func TestDriftLongHorizonAcceptance(t *testing.T) {
	cfg := driftCfg(t)
	opt := DriftOptions{
		Epochs:   1000,
		Schedule: DriftSchedule{Every: 100, Kind: DriftShuffle, Mag: 0.2, Seed: 42},
	}
	ad := runDrift(t, cfg, opt)
	opt.Oracle = true
	or := runDrift(t, cfg, opt)

	if ad.DriftEvents != 9 {
		t.Fatalf("drift events = %d, want 9 (epochs 100..900)", ad.DriftEvents)
	}
	if ad.Trips < ad.DriftEvents {
		t.Errorf("detector tripped %d times for %d events", ad.Trips, ad.DriftEvents)
	}
	ratio := ad.MeanEpoch / or.MeanEpoch
	if ratio > 1.05 {
		t.Errorf("adaptive mean epoch %.3fs is %.1f%% over oracle %.3fs (acceptance: <=5%%)",
			ad.MeanEpoch, (ratio-1)*100, or.MeanEpoch)
	}
	if or.MovedBytes <= 0 {
		t.Fatal("oracle migrated nothing over 9 reshuffles")
	}
	if ad.MovedBytes >= 0.5*or.MovedBytes {
		t.Errorf("adaptive migrated %.3g bytes, acceptance requires < half of oracle's %.3g",
			ad.MovedBytes, or.MovedBytes)
	}
	// 1000 epochs must not mean 1000 fabric runs: between events and
	// replans nothing the fabric sees changes.
	if ad.Resims > 100 {
		t.Errorf("adaptive run priced %d epochs on the fabric, want <=100", ad.Resims)
	}
	if ad.Resims+ad.CacheHits != opt.Epochs {
		t.Errorf("resims %d + cache hits %d != %d epochs", ad.Resims, ad.CacheHits, opt.Epochs)
	}
	if len(ad.EpochTimes) != opt.Epochs {
		t.Fatalf("%d epoch times for %d epochs", len(ad.EpochTimes), opt.Epochs)
	}
	if math.Abs(ad.Total.Sec()-ad.MeanEpoch*float64(opt.Epochs)) > 1e-6*ad.Total.Sec() {
		t.Error("Total and MeanEpoch disagree")
	}
}

func TestDriftSpecRoundTrip(t *testing.T) {
	specs := []DriftSchedule{
		{Every: 100, Kind: DriftShuffle, Mag: 0.2, Seed: 7},
		{Every: 1, Kind: DriftRotate, Mag: 1, Seed: -3},
		{Every: 50, Kind: DriftOscillate, Mag: 0.05, Seed: 0},
	}
	for _, want := range specs {
		got, err := ParseDriftSpec(FormatDriftSpec(want))
		if err != nil {
			t.Fatalf("%+v: %v", want, err)
		}
		if got != want {
			t.Errorf("round trip %+v -> %q -> %+v", want, FormatDriftSpec(want), got)
		}
	}
	for _, bad := range []string{
		"every=ten",
		"kind=meteor",
		"every=100;kind=rotate;mag=1.5",
		"every=100;kind=rotate;mag=0",
		"notakv",
		"volume=11",
	} {
		if _, err := ParseDriftSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	// Empty spec parses to a schedule that never fires.
	s, err := ParseDriftSpec("")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Empty() {
		t.Errorf("empty spec not empty: %+v", s)
	}
}

func TestApplyDriftProperties(t *testing.T) {
	base := make([]float64, 100)
	sum := 0.0
	for i := range base {
		base[i] = 1 / float64(i+1)
		sum += base[i]
	}
	for i := range base {
		base[i] /= sum
	}
	kinds := []DriftKind{DriftRotate, DriftFlip, DriftOscillate, DriftShuffle}
	for _, kind := range kinds {
		s := DriftSchedule{Every: 1, Kind: kind, Mag: 0.3, Seed: 5}
		a := append([]float64(nil), base...)
		b := append([]float64(nil), base...)
		rngA := newDriftRng(5)
		rngB := newDriftRng(5)
		applyDrift(a, s, rngA, 0)
		applyDrift(b, s, rngB, 0)
		// The first event must actually change the distribution (later
		// events may legitimately undo it: flip and oscillate are
		// involutions).
		changed := false
		for i := range a {
			if a[i] != base[i] {
				changed = true
				break
			}
		}
		if !changed {
			t.Errorf("%s: first event left the distribution untouched", kind)
		}
		for ev := 1; ev < 4; ev++ {
			applyDrift(a, s, rngA, ev)
			applyDrift(b, s, rngB, ev)
		}
		// Deterministic under the seed.
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: same seed diverged at %d", kind, i)
			}
		}
		// Mass-preserving: drift permutes hotness, never creates it.
		got := 0.0
		for _, v := range a {
			got += v
		}
		if math.Abs(got-1) > 1e-12 {
			t.Errorf("%s: drift changed total mass to %v", kind, got)
		}
	}
	// Oscillate is its own inverse: two events restore the base exactly.
	s := DriftSchedule{Every: 1, Kind: DriftOscillate, Mag: 0.3, Seed: 5}
	a := append([]float64(nil), base...)
	applyDrift(a, s, newDriftRng(5), 0)
	applyDrift(a, s, newDriftRng(5), 1)
	for i := range a {
		if a[i] != base[i] {
			t.Fatalf("oscillate did not return to base at %d", i)
		}
	}
}

func TestSimulateDriftValidation(t *testing.T) {
	cfg := driftCfg(t)
	bad := cfg
	bad.Cache = CacheReplicated
	if _, err := SimulateDriftEpochs(bad, DriftOptions{Epochs: 1}); err == nil {
		t.Error("replicated cache accepted")
	}
	bad = cfg
	bad.Policy = PolicyHash
	if _, err := SimulateDriftEpochs(bad, DriftOptions{Epochs: 1}); err == nil {
		t.Error("hash policy accepted")
	}
	if _, err := SimulateDriftEpochs(cfg, DriftOptions{
		Epochs:   1,
		Schedule: DriftSchedule{Every: 10, Kind: DriftRotate, Mag: 2},
	}); err == nil {
		t.Error("magnitude 2 accepted")
	}
	if _, err := SimulateDriftEpochs(cfg, DriftOptions{
		Epochs:   1,
		Schedule: DriftSchedule{Every: -1, Kind: DriftRotate, Mag: 0.1},
	}); err == nil {
		t.Error("negative period accepted")
	}
}
