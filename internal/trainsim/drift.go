package trainsim

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"moment/internal/adaptive"
	"moment/internal/ddak"
	"moment/internal/obs"
	"moment/internal/units"
)

// This file implements the long-horizon workload-drift harness: simulating
// thousands of back-to-back epochs while the access distribution shifts on
// a seeded schedule (the dynamic-workload scenario the paper defers in §5).
// Planning runs once; each drift event then perturbs the live hotness and
// the closed adaptive loop — Monitor EWMA → DriftDetector → incremental
// DDAK re-solve with migration billing — chases it. An oracle mode replans
// from scratch at every drift event with perfect knowledge of the new
// distribution, giving the differential the drift tests assert against:
// the adaptive loop must land within a few percent of the oracle's epoch
// time while migrating a fraction of its bytes.

// DriftKind selects how a drift event perturbs the hotness distribution.
type DriftKind int

const (
	// DriftNone leaves the distribution untouched (control scenario).
	DriftNone DriftKind = iota
	// DriftRotate shifts hotness by ⌈mag·n⌉ ranks each event — a gradual
	// moving hot set (new content going viral, old content cooling).
	DriftRotate
	// DriftFlip exchanges the hotness of the top ⌈mag·n/2⌉ ranks with the
	// bottom ranks — a sudden regime change.
	DriftFlip
	// DriftOscillate alternates a DriftRotate forward and back, returning
	// to the base distribution every second event — the thrash scenario a
	// detector cooldown and payback billing must survive.
	DriftOscillate
	// DriftShuffle applies ⌈mag·n⌉ seeded random hotness swaps per event.
	DriftShuffle
)

var driftKindNames = map[DriftKind]string{
	DriftNone:      "none",
	DriftRotate:    "rotate",
	DriftFlip:      "flip",
	DriftOscillate: "oscillate",
	DriftShuffle:   "shuffle",
}

// String names the kind as the spec grammar spells it.
func (k DriftKind) String() string {
	if s, ok := driftKindNames[k]; ok {
		return s
	}
	return "unknown"
}

// DriftSchedule describes a deterministic hotness-drift process.
type DriftSchedule struct {
	// Every is the event period in epochs (0 disables drift).
	Every int
	// Kind selects the perturbation applied at each event.
	Kind DriftKind
	// Mag in (0,1] scales the perturbation (fraction of ranks involved).
	Mag float64
	// Seed drives DriftShuffle's random swaps.
	Seed int64
}

// Empty reports a schedule that never fires.
func (s DriftSchedule) Empty() bool {
	return s.Every <= 0 || s.Kind == DriftNone
}

// Validate rejects schedules SimulateDriftEpochs cannot run.
func (s DriftSchedule) Validate() error {
	if s.Every < 0 {
		return fmt.Errorf("trainsim: negative drift period %d", s.Every)
	}
	if _, ok := driftKindNames[s.Kind]; !ok {
		return fmt.Errorf("trainsim: unknown drift kind %d", int(s.Kind))
	}
	if !s.Empty() && (s.Mag <= 0 || s.Mag > 1) {
		return fmt.Errorf("trainsim: drift magnitude %v out of (0,1]", s.Mag)
	}
	return nil
}

// ParseDriftSpec decodes the command-line drift grammar, semicolon-
// separated key=value clauses mirroring the faults spec:
//
//	every=100;kind=shuffle;mag=0.2;seed=7
//
// kind is one of none|rotate|flip|oscillate|shuffle. mag defaults to 0.2
// and seed to 0. FormatDriftSpec is the inverse.
func ParseDriftSpec(spec string) (DriftSchedule, error) {
	s := DriftSchedule{Mag: 0.2}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return DriftSchedule{}, fmt.Errorf("trainsim: drift clause %q is not key=value", clause)
		}
		var err error
		switch key {
		case "every":
			s.Every, err = strconv.Atoi(val)
		case "kind":
			found := false
			for k, name := range driftKindNames {
				if name == val {
					s.Kind = k
					found = true
					break
				}
			}
			if !found {
				err = fmt.Errorf("unknown kind %q", val)
			}
		case "mag":
			s.Mag, err = strconv.ParseFloat(val, 64)
		case "seed":
			s.Seed, err = strconv.ParseInt(val, 10, 64)
		default:
			err = fmt.Errorf("unknown key %q", key)
		}
		if err != nil {
			return DriftSchedule{}, fmt.Errorf("trainsim: drift clause %q: %v", clause, err)
		}
	}
	if err := s.Validate(); err != nil {
		return DriftSchedule{}, err
	}
	return s, nil
}

// FormatDriftSpec renders a schedule in the ParseDriftSpec grammar.
func FormatDriftSpec(s DriftSchedule) string {
	return fmt.Sprintf("every=%d;kind=%s;mag=%g;seed=%d", s.Every, s.Kind, s.Mag, s.Seed)
}

// DriftOptions tunes SimulateDriftEpochs.
type DriftOptions struct {
	// Epochs is the horizon length (default 1).
	Epochs int
	// Schedule is the hotness-drift process to chase.
	Schedule DriftSchedule
	// Oracle replaces the adaptive loop with a from-scratch full re-plan
	// at every drift event, fed the true post-event distribution — the
	// upper bound on layout quality and on migration traffic.
	Oracle bool
	// DeltaBudget is the incremental re-solve's MaxMoveFrac (default 0.5;
	// negative forces full re-solves on the adaptive path too).
	DeltaBudget float64
	// PaybackEpochs bills adaptive migrations against their projected
	// per-epoch savings (see adaptive.Replanner): a move is only taken if
	// the fast-tier bytes it saves repay its bill within the window. The
	// default is half the drift period — a migration should pay for
	// itself before the distribution likely shifts again. Negative
	// disables billing (every triggered replan commits).
	PaybackEpochs float64
	// HalfLifeEpochs is the monitor's EWMA half-life (default 2).
	HalfLifeEpochs float64
	// TVTrip and TripAfter configure the detector (defaults 0.05 and 1);
	// Cooldown suppresses re-trips for that many epochs after a replan
	// (default 3, enough for the EWMA to converge onto a new regime).
	TVTrip    float64
	TripAfter int
	Cooldown  int
	// MigrationBW is the fabric bandwidth migrations are billed at, in
	// bytes/second (default 8e9); the stall lands on the replan epoch.
	MigrationBW float64
}

// DriftReport aggregates a drift-horizon run.
type DriftReport struct {
	// Epochs is the number of epochs simulated; Oracle echoes the mode.
	Epochs int
	Oracle bool
	// Total is the horizon wall-clock including migration stalls.
	Total units.Duration
	// EpochTimes holds each epoch's duration in seconds (stalls included).
	EpochTimes []float64
	// MeanEpoch is Total/Epochs in seconds.
	MeanEpoch float64
	// DriftEvents counts schedule firings; Trips counts detector trips
	// (zero in oracle mode — the oracle needs no detector).
	DriftEvents int
	Trips       int
	// Replans counts committed re-placements; Delta/Full split them by
	// solver, and Skipped counts payback-rejected migrations.
	Replans     int
	DeltaSolves int
	FullSolves  int
	Skipped     int
	// MovedBytes is the total migration bill; StallSeconds its time cost.
	MovedBytes   float64
	StallSeconds float64
	// Resims counts epochs priced by a fresh fabric simulation; CacheHits
	// counts epochs served by the (assignment, hotness) memo.
	Resims    int
	CacheHits int
	// FinalHitFast is the fast-tier (GPU+CPU) hit rate of the final layout
	// under the final live distribution.
	FinalHitFast float64
}

// applyDrift perturbs hot in place for event number ev (0-based).
func applyDrift(hot []float64, s DriftSchedule, rng *rand.Rand, ev int) {
	n := len(hot)
	if n < 2 {
		return
	}
	k := int(s.Mag*float64(n) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > n-1 {
		k = n - 1
	}
	switch s.Kind {
	case DriftRotate:
		rotateHot(hot, k)
	case DriftFlip:
		half := k / 2
		if half < 1 {
			half = 1
		}
		for i := 0; i < half && i < n-1-i; i++ {
			hot[i], hot[n-1-i] = hot[n-1-i], hot[i]
		}
	case DriftOscillate:
		if ev%2 == 0 {
			rotateHot(hot, k)
		} else {
			rotateHot(hot, n-k) // inverse rotation: back to base
		}
	case DriftShuffle:
		for i := 0; i < k; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			hot[a], hot[b] = hot[b], hot[a]
		}
	}
}

// rotateHot shifts hot left by k in place.
func rotateHot(hot []float64, k int) {
	n := len(hot)
	k %= n
	if k == 0 {
		return
	}
	tmp := make([]float64, k)
	copy(tmp, hot[:k])
	copy(hot, hot[k:])
	copy(hot[n-k:], tmp)
}

// oracleBins re-derives the bin traffic budgets for a drifted distribution
// — the from-scratch planning pipeline restated over the fixed topology:
// the provisional greedy tier fill (which access mass the GPU, CPU, and
// SSD tiers each capture) is recomputed density-first over the live
// hotness, and every bin's Traffic budget is rescaled by its tier's mass
// ratio. The topology-driven fair shares within a tier are unchanged by
// drift, so rescaling reproduces what planning from scratch would budget.
func oracleBins(es *epochSetup, live []float64) []ddak.Bin {
	order := make([]int, len(live))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		return live[ia]*es.placeItems[ib].Bytes > live[ib]*es.placeItems[ia].Bytes
	})
	var gpuCap, cpuCap float64
	for _, b := range es.bins {
		switch b.Tier {
		case ddak.TierGPU:
			gpuCap += b.Capacity
		case ddak.TierCPU:
			cpuCap += b.Capacity
		}
	}
	var gpuMass, cpuMass float64
	remG, remC := gpuCap, cpuCap
	for _, i := range order {
		by := es.placeItems[i].Bytes
		switch {
		case remG >= by:
			remG -= by
			gpuMass += live[i]
		case remC >= by:
			remC -= by
			cpuMass += live[i]
		}
	}
	ssdMass := 1 - gpuMass - cpuMass
	if ssdMass < 0 {
		ssdMass = 0
	}
	bins := append([]ddak.Bin(nil), es.bins...)
	for bi := range bins {
		var newM, oldM float64
		switch bins[bi].Tier {
		case ddak.TierGPU:
			newM, oldM = gpuMass, es.pl.gpuMass
		case ddak.TierCPU:
			newM, oldM = cpuMass, es.pl.cpuMass
		default:
			newM, oldM = ssdMass, es.pl.ssdMass
		}
		if oldM > 1e-12 {
			bins[bi].Traffic *= newM / oldM
		}
	}
	return bins
}

// servedSig fingerprints a per-bin served-bytes vector (the only fabric
// input that changes across a drift horizon) so epochs with identical
// traffic are priced from memory.
func servedSig(served []float64) string {
	var b strings.Builder
	for _, v := range served {
		fmt.Fprintf(&b, "%.6g;", v)
	}
	return b.String()
}

// SimulateDriftEpochs simulates opt.Epochs back-to-back epochs while
// opt.Schedule perturbs the live hotness distribution, closing the adaptive
// loop around the layout (or replaying the from-scratch oracle when
// opt.Oracle is set). It requires the fully DDAK-managed configuration —
// PolicyDDAK with partitioned GPU caches — because that is the regime where
// the layout, and therefore drift, is entirely placement-driven.
func SimulateDriftEpochs(cfg Config, opt DriftOptions) (*DriftReport, error) {
	if err := opt.Schedule.Validate(); err != nil {
		return nil, err
	}
	if cfg.Policy != PolicyDDAK {
		return nil, fmt.Errorf("trainsim: drift simulation requires PolicyDDAK")
	}
	if cfg.Cache != CachePartitioned {
		return nil, fmt.Errorf("trainsim: drift simulation requires CachePartitioned")
	}
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		return nil, fmt.Errorf("trainsim: drift simulation does not compose with fault schedules")
	}
	if opt.Epochs <= 0 {
		opt.Epochs = 1
	}
	if opt.DeltaBudget == 0 {
		opt.DeltaBudget = 0.5
	}
	if opt.PaybackEpochs == 0 && !opt.Schedule.Empty() {
		opt.PaybackEpochs = float64(opt.Schedule.Every) / 2
	}
	if opt.PaybackEpochs < 0 {
		opt.PaybackEpochs = 0
	}
	if opt.HalfLifeEpochs <= 0 {
		opt.HalfLifeEpochs = 2
	}
	if opt.TVTrip <= 0 {
		opt.TVTrip = 0.05
	}
	if opt.TripAfter <= 0 {
		opt.TripAfter = 1
	}
	if opt.Cooldown == 0 {
		opt.Cooldown = 3
	}
	if opt.MigrationBW <= 0 {
		opt.MigrationBW = 8e9
	}

	o := obs.Active(cfg.Observer)
	sp := o.Begin("trainsim.drift")
	if cfg.Machine != nil {
		sp.SetStr("machine", cfg.Machine.Name)
	}
	sp.SetInt("epochs", opt.Epochs)
	sp.SetStr("schedule", FormatDriftSpec(opt.Schedule))
	defer sp.End()

	es, oom, err := placeAndSpecs(cfg, o, sp)
	if err != nil {
		return nil, err
	}
	if oom != nil {
		return nil, fmt.Errorf("trainsim: drift configuration cannot run: %s", oom.OOM)
	}
	cfg = es.cfg
	m := cfg.Machine

	n := len(es.placeItems)
	itemBytes := make([]float64, n)
	live := make([]float64, n)
	for i, it := range es.placeItems {
		itemBytes[i] = it.Bytes
		live[i] = it.Hot
	}
	assign := es.assign

	// Adaptive-loop state (unused in oracle mode).
	var (
		mon  *adaptive.Monitor
		det  *adaptive.DriftDetector
		repl *adaptive.Replanner
		ref  []float64 // distribution the current layout was planned for
	)
	if !opt.Oracle {
		mon, err = adaptive.NewMonitor(n, opt.HalfLifeEpochs)
		if err != nil {
			return nil, err
		}
		det = &adaptive.DriftDetector{
			TVTrip:    opt.TVTrip,
			TripAfter: opt.TripAfter,
			Cooldown:  opt.Cooldown,
			Observer:  o,
		}
		// Threshold is bypassed (the detector decides; replans go through
		// Replan directly), so any valid value works.
		repl, err = adaptive.NewReplanner(live, itemBytes, es.bins, cfg.PoolN, es.pl.fetchEpoch, 0.5)
		if err != nil {
			return nil, err
		}
		if opt.DeltaBudget > 0 {
			repl.DeltaBudget = opt.DeltaBudget
		}
		repl.PaybackEpochs = opt.PaybackEpochs
		repl.Observer = o
		assign = repl.Current()
		ref = append([]float64(nil), live...)
	}
	oracleItems := append([]ddak.Item(nil), es.placeItems...)

	rng := rand.New(rand.NewSource(opt.Schedule.Seed))
	rep := &DriftReport{
		Epochs:     opt.Epochs,
		Oracle:     opt.Oracle,
		EpochTimes: make([]float64, 0, opt.Epochs),
	}

	// ioOf prices one epoch's I/O for the layout in force under the live
	// distribution, memoized on the served-bytes vector: between drift
	// events and replans nothing the fabric sees changes.
	ioCache := map[string]float64{}
	served := make([]float64, len(es.bins))
	ioOf := func(a *ddak.ItemAssignment, hot []float64) (float64, error) {
		for b := range served {
			served[b] = 0
		}
		for i, b := range a.Of {
			served[b] += hot[i] * es.fabricScale
		}
		sig := servedSig(served)
		if io, ok := ioCache[sig]; ok {
			rep.CacheHits++
			return io, nil
		}
		specs := buildFlowSpecs(cfg, es.pl, served, es.gpuBin, es.dramBin, es.ssdBin0)
		fab, err := NewFabric(m, cfg.Placement)
		if err != nil {
			return 0, err
		}
		if err := addFlows(fab, specs); err != nil {
			return 0, err
		}
		run, err := fab.Net.Run()
		if err != nil {
			return 0, err
		}
		rep.Resims++
		ioCache[sig] = run.Makespan
		return run.Makespan, nil
	}

	total := 0.0
	est := make([]float64, 0, n)
	for e := 0; e < opt.Epochs; e++ {
		drifted := false
		if !opt.Schedule.Empty() && e > 0 && e%opt.Schedule.Every == 0 {
			applyDrift(live, opt.Schedule, rng, rep.DriftEvents)
			rep.DriftEvents++
			drifted = true
			if o.FlightEnabled() {
				o.Event(obs.Event{Kind: obs.EvDrift, Name: "shift",
					Reason: opt.Schedule.Kind.String(), V1: float64(e)})
			}
		}

		stall := 0.0
		if opt.Oracle {
			if drifted {
				// Perfect knowledge: full re-solve onto the true new
				// distribution the moment it changes.
				for i := range oracleItems {
					oracleItems[i].Hot = live[i]
				}
				next, err := ddak.PlaceItemsObserved(oracleItems, oracleBins(es, live), cfg.PoolN, es.pl.fetchEpoch, o)
				if err != nil {
					return nil, fmt.Errorf("trainsim: oracle re-plan at epoch %d: %w", e, err)
				}
				moved := 0.0
				for i := range next.Of {
					if next.Of[i] != assign.Of[i] {
						moved += itemBytes[i]
					}
				}
				assign = next
				rep.Replans++
				rep.FullSolves++
				rep.MovedBytes += moved
				stall = moved / opt.MigrationBW
			}
		} else {
			// The closed loop: observe the epoch's traffic, let the EWMA
			// estimate converge, check for drift, re-solve incrementally.
			if err := mon.ObserveWeights(live); err != nil {
				return nil, err
			}
			mon.Tick()
			est = mon.HotnessInto(est)
			sig, err := det.Check(ref, est)
			if err != nil {
				return nil, err
			}
			if sig.Tripped {
				rep.Trips++
				mig, err := repl.Replan(est)
				if err != nil {
					return nil, fmt.Errorf("trainsim: adaptive re-plan at epoch %d: %w", e, err)
				}
				if mig.Skipped {
					// The migration cannot pay for itself: accept the
					// drifted distribution as the new reference so the
					// detector re-arms for further drift instead of
					// re-tripping on the same shift every cooldown.
					rep.Skipped++
					ref = append(ref[:0], est...)
				}
				if mig.Triggered {
					assign = mig.Assignment
					ref = append(ref[:0], est...)
					rep.Replans++
					if mig.Incremental {
						rep.DeltaSolves++
					} else {
						rep.FullSolves++
					}
					rep.MovedBytes += mig.MovedBytes
					stall = mig.MovedBytes / opt.MigrationBW
				}
				det.Reset()
			}
		}

		io, err := ioOf(assign, live)
		if err != nil {
			return nil, fmt.Errorf("trainsim: drift epoch %d: %w", e, err)
		}
		dur := es.epochOf(io, es.computeTime) + stall
		rep.EpochTimes = append(rep.EpochTimes, dur)
		rep.StallSeconds += stall
		total += dur
	}
	rep.Total = units.Seconds(total)
	rep.MeanEpoch = total / float64(opt.Epochs)
	if hit, err := adaptive.HitRate(assign, live); err == nil {
		rep.FinalHitFast = hit
	}

	sp.SetFloat("total_seconds", total)
	sp.SetInt("drift_events", rep.DriftEvents)
	sp.SetInt("replans", rep.Replans)
	o.Counter("trainsim_drift_epochs_total").Add(float64(opt.Epochs))
	o.Counter("trainsim_drift_events_total").Add(float64(rep.DriftEvents))
	o.Counter("trainsim_drift_replans_total").Add(float64(rep.Replans))
	o.Gauge("trainsim_drift_moved_bytes").Set(rep.MovedBytes)
	o.Gauge("trainsim_drift_mean_epoch_seconds").Set(rep.MeanEpoch)
	return rep, nil
}
