// Package trainsim simulates end-to-end multi-GPU out-of-core GNN training
// epochs at paper scale: it derives the per-epoch feature-access workload
// analytically from the dataset's access skew (the stand-in for running
// pre-sampling on a terabyte graph), plans data placement with DDAK (or the
// hash baseline), predicts epoch I/O time with the max-flow network
// (flownet), measures it with the flow-level fabric simulator (simnet), and
// combines I/O with the GNN compute and sampling cost models into a
// pipelined epoch time (paper §3.1 System Runtime).
package trainsim

import (
	"fmt"
	"math"

	"moment/internal/gnn"
	"moment/internal/graph"
	"moment/internal/sample"
)

// Workload fixes the training job the paper evaluates (§4.1): a dataset,
// a model, batch size 8000, and 2-hop fan-outs [25, 10].
type Workload struct {
	Dataset   graph.Dataset
	Model     gnn.ModelKind
	BatchSize int
	Fanouts   []int
	NumGPUs   int

	// DedupFactor corrects the independent-draw assumption of the
	// analytic distinct-vertex estimator: sampled neighborhoods of a
	// batch overlap heavily on real community-structured graphs, so the
	// effective number of independent draws is DedupFactor × raw draws.
	// Calibrated to the per-batch unique counts GNNLab/Legion report for
	// 8000×[25,10] sampling (default 0.5).
	DedupFactor float64

	// EpochBatches overrides the number of mini-batches per epoch
	// (default: ceil(TrainVertices/BatchSize)). Multi-node runs use it to
	// hand each node its shard of the epoch.
	EpochBatches int
}

// Defaults fills unset fields with the paper's configuration.
func (w Workload) Defaults() Workload {
	if w.BatchSize == 0 {
		w.BatchSize = 8000
	}
	if w.Fanouts == nil {
		w.Fanouts = sample.DefaultFanouts
	}
	if w.NumGPUs == 0 {
		w.NumGPUs = 4
	}
	if w.DedupFactor == 0 {
		w.DedupFactor = 0.5
	}
	return w
}

// Stats is the analytically derived per-epoch access profile.
type Stats struct {
	BatchesPerEpoch int     // total mini-batches per epoch
	UniquePerBatch  float64 // expected distinct vertices fetched per batch
	EdgesPerBatch   float64 // sampled edges per batch (compute cost input)
	FetchBytesBatch float64 // feature bytes fetched per batch (all GPUs' share)
	FetchBytesEpoch float64 // feature bytes fetched per epoch (whole job)

	// Virtual vertices: rank buckets of the dataset's vertices, hot
	// first. Hot carries the expected per-epoch fetch mass (normalized to
	// sum 1); Bytes the embedding storage of the bucket.
	VirtualHot   []float64
	VirtualBytes []float64
}

// hotDetail is the number of head ranks modeled individually before
// bucketing; the saturation zone of 1-(1-p)^D lives here.
const hotDetail = 1 << 14

// ComputeStats derives the epoch access profile for a workload over
// nVirtual rank buckets (default 50000). The access distribution is
// Zipf(skew) over vertex ranks (what pre-sampling measures, §3.3); the
// expected number of distinct fetches of a vertex with access probability
// p after D neighbor draws is 1-(1-p)^D, which saturates for the hot head
// — exactly the effect that caps cache benefits.
func ComputeStats(w Workload, nVirtual int) (*Stats, error) {
	w = w.Defaults()
	if w.BatchSize <= 0 || w.NumGPUs <= 0 {
		return nil, fmt.Errorf("trainsim: bad workload %+v", w)
	}
	if len(w.Fanouts) == 0 {
		return nil, fmt.Errorf("trainsim: no fanouts")
	}
	if nVirtual <= 0 {
		nVirtual = 50_000
	}
	d := w.Dataset
	if d.Vertices <= 0 || d.Skew <= 0 {
		return nil, fmt.Errorf("trainsim: dataset %q lacks scale/skew parameters", d.Name)
	}
	n := d.Vertices
	s := d.Skew
	harmonic := generalizedHarmonic(n, s)

	// Draw counts per hop: hop 0 draws batch×f0 neighbors; subsequent
	// hops expand the (distinct) frontier by their fanout. Frontier
	// distinctness uses the same saturation form.
	batch := float64(w.BatchSize)
	draws := 0.0
	frontier := batch
	totalEdges := 0.0
	for _, f := range w.Fanouts {
		hopDraws := frontier * float64(f)
		totalEdges += hopDraws
		draws += hopDraws * w.DedupFactor
		frontier = distinctCount(n, s, harmonic, hopDraws*w.DedupFactor)
	}

	// Per-rank fetch probability per batch: head ranks exactly, tail in
	// geometric buckets.
	ranks, counts := rankBuckets(n, nVirtual)
	perBatch := make([]float64, len(ranks))
	uniq := 0.0
	for i, r := range ranks {
		p := math.Pow(r, -s) / harmonic
		q := saturate(p, draws)
		perBatch[i] = q * counts[i]
		uniq += perBatch[i]
	}
	// Seeds are drawn uniformly from the 1% training set and always
	// fetched; spread their mass uniformly over ranks.
	for i := range perBatch {
		perBatch[i] += batch * counts[i] / float64(n)
	}
	uniq += batch

	rowBytes := float64(d.FeatureBytesPerVertex())
	stats := &Stats{
		UniquePerBatch:  uniq,
		EdgesPerBatch:   totalEdges,
		FetchBytesBatch: uniq * rowBytes,
		VirtualHot:      make([]float64, len(ranks)),
		VirtualBytes:    make([]float64, len(ranks)),
	}
	train := float64(d.TrainVertices())
	stats.BatchesPerEpoch = int(math.Ceil(train / batch))
	if w.EpochBatches > 0 {
		stats.BatchesPerEpoch = w.EpochBatches
	}
	if stats.BatchesPerEpoch == 0 {
		stats.BatchesPerEpoch = 1
	}
	stats.FetchBytesEpoch = stats.FetchBytesBatch * float64(stats.BatchesPerEpoch)
	mass := 0.0
	for _, q := range perBatch {
		mass += q
	}
	for i := range ranks {
		stats.VirtualHot[i] = perBatch[i] / mass
		stats.VirtualBytes[i] = counts[i] * rowBytes
	}
	return stats, nil
}

// rankBuckets returns representative ranks and vertex counts: ranks
// 1..hotDetail individually, then nVirtual geometric buckets to n.
func rankBuckets(n int64, nVirtual int) (ranks, counts []float64) {
	head := int64(hotDetail)
	if head > n {
		head = n
	}
	for r := int64(1); r <= head; r++ {
		ranks = append(ranks, float64(r))
		counts = append(counts, 1)
	}
	if head == n {
		return ranks, counts
	}
	lo := float64(head)
	hi := float64(n)
	ratio := math.Pow(hi/lo, 1/float64(nVirtual))
	prev := lo
	for i := 0; i < nVirtual; i++ {
		next := prev * ratio
		if i == nVirtual-1 {
			next = hi
		}
		cnt := math.Floor(next) - math.Floor(prev)
		if cnt < 1 {
			continue
		}
		// Geometric-mean representative rank of the bucket.
		ranks = append(ranks, math.Sqrt(prev*next))
		counts = append(counts, cnt)
		prev = next
	}
	return ranks, counts
}

// saturate computes 1-(1-p)^D stably.
func saturate(p, draws float64) float64 {
	if p <= 0 || draws <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	return -math.Expm1(draws * math.Log1p(-p))
}

// distinctCount estimates the expected number of distinct vertices among
// `draws` Zipf(s) draws over n ranks.
func distinctCount(n int64, s, harmonic, draws float64) float64 {
	ranks, counts := rankBuckets(n, 2000)
	total := 0.0
	for i, r := range ranks {
		p := math.Pow(r, -s) / harmonic
		total += counts[i] * saturate(p, draws)
	}
	return total
}

// generalizedHarmonic approximates H(n, s) = Σ_{r=1..n} r^-s with exact
// head terms plus an integral tail.
func generalizedHarmonic(n int64, s float64) float64 {
	head := int64(1000)
	if head > n {
		head = n
	}
	sum := 0.0
	for r := int64(1); r <= head; r++ {
		sum += math.Pow(float64(r), -s)
	}
	if head == n {
		return sum
	}
	a, b := float64(head), float64(n)
	if s == 1 {
		sum += math.Log(b / a)
	} else {
		sum += (math.Pow(b, 1-s) - math.Pow(a, 1-s)) / (1 - s)
	}
	return sum
}
