package trainsim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"moment/internal/gnn"
	"moment/internal/topology"
)

func TestPipelineTimelineBasics(t *testing.T) {
	st := StageTimes{Sample: 1, IO: 3, Compute: 2}
	tl, err := PipelineTimeline(st, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Steady state: total = fill + rounds * max stage.
	want := 1 + 2 + 10*3.0
	if math.Abs(tl.Total-want) > 1e-9 {
		t.Errorf("total %v, want %v", tl.Total, want)
	}
	if tl.Critical != "io" {
		t.Errorf("critical = %q", tl.Critical)
	}
	if tl.IOUtil < 0.85 {
		t.Errorf("io util %.2f, want near 1", tl.IOUtil)
	}
	if len(tl.Segments) != 9 {
		t.Errorf("kept %d segments, want 9", len(tl.Segments))
	}
	// Segments of each stage never overlap (serial resource).
	for _, stage := range []string{"sample", "io", "compute"} {
		var prevEnd float64
		for _, s := range tl.Segments {
			if s.Stage != stage {
				continue
			}
			if s.Start < prevEnd-1e-12 {
				t.Errorf("%s segments overlap: start %v < prev end %v", stage, s.Start, prevEnd)
			}
			prevEnd = s.End
		}
	}
}

func TestPipelineTimelineMatchesEpochFormulaProperty(t *testing.T) {
	// SimulateEpoch assembles epochs as maxStage + fill; the exact
	// schedule must agree.
	f := func(a, b, c uint16, nRaw uint8) bool {
		st := StageTimes{
			Sample:  float64(a%1000) / 100,
			IO:      float64(b%1000) / 100,
			Compute: float64(c%1000) / 100,
		}
		rounds := int(nRaw%50) + 1
		tl, err := PipelineTimeline(st, rounds, 0)
		if err != nil {
			return false
		}
		stageMax := math.Max(st.Sample, math.Max(st.IO, st.Compute))
		closed := float64(rounds)*stageMax + (st.Sample + st.IO + st.Compute - stageMax)
		return math.Abs(tl.Total-closed) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPipelineTimelineErrors(t *testing.T) {
	if _, err := PipelineTimeline(StageTimes{}, 0, 0); err == nil {
		t.Error("zero rounds accepted")
	}
	if _, err := PipelineTimeline(StageTimes{Sample: -1}, 1, 0); err == nil {
		t.Error("negative stage accepted")
	}
}

func TestRenderEdgeCases(t *testing.T) {
	st := StageTimes{Sample: 1, IO: 3, Compute: 2}
	tl, err := PipelineTimeline(st, 10, 3)
	if err != nil {
		t.Fatal(err)
	}

	// Degenerate widths fall back to the 72-column default.
	for _, w := range []int{-5, 0, 10} {
		out := tl.Render(w)
		for _, line := range strings.Split(out, "\n") {
			if !strings.HasPrefix(line, "  sample") {
				continue
			}
			// "  %-8s " prefix is 11 columns, then the chart row.
			if got := len(line) - 11; got != 72 {
				t.Errorf("Render(%d): chart row %d columns, want default 72", w, got)
			}
		}
	}

	// Explicit width is honored.
	out := tl.Render(40)
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "  io") {
			if got := len(line) - 11; got != 40 {
				t.Errorf("Render(40): chart row %d columns", got)
			}
		}
	}

	// keep < rounds: the header reports the kept rounds, not the simulated.
	if !strings.Contains(out, "first 3 rounds") {
		t.Errorf("Render header should say kept rounds:\n%s", out)
	}

	// keep = 0 keeps no segments.
	none, err := PipelineTimeline(st, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := none.Render(72); got != "(no segments kept)\n" {
		t.Errorf("no-segment render = %q", got)
	}

	// All-zero stage times: segments exist but span zero time.
	zero, err := PipelineTimeline(StageTimes{}, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := zero.Render(72); got != "(zero-length timeline)\n" {
		t.Errorf("zero-length render = %q", got)
	}

	// keep > rounds keeps exactly rounds*3 segments and still renders.
	over, err := PipelineTimeline(st, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(over.Segments) != 2*3 {
		t.Errorf("keep>rounds kept %d segments, want 6", len(over.Segments))
	}
	if out := over.Render(30); !strings.Contains(out, "first 2 rounds") {
		t.Errorf("keep>rounds header wrong:\n%s", out)
	}

	// Round digits wrap modulo 10; round 10 is marked '0' again.
	many, err := PipelineTimeline(StageTimes{Sample: 0, IO: 1, Compute: 0}, 12, 12)
	if err != nil {
		t.Fatal(err)
	}
	wide := many.Render(120)
	if !strings.Contains(wide, "9") || !strings.Contains(wide, "0") {
		t.Errorf("12-round render missing wrapped digits:\n%s", wide)
	}
}

func TestTimelineOfEpoch(t *testing.T) {
	m := topology.MachineA()
	p, err := topology.ClassicPlacement(m, topology.LayoutC)
	if err != nil {
		t.Fatal(err)
	}
	r, err := SimulateEpoch(Config{Machine: m, Placement: p,
		Workload: Workload{Dataset: dataset(t, "IG"), Model: gnn.KindSAGE}})
	if err != nil {
		t.Fatal(err)
	}
	tl, err := TimelineOf(r, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The exact schedule should land near the closed-form epoch estimate.
	if rel := math.Abs(tl.Total-r.EpochTime.Sec()) / r.EpochTime.Sec(); rel > 0.05 {
		t.Errorf("timeline total %.2fs vs epoch %.2fs (%.1f%% apart)",
			tl.Total, r.EpochTime.Sec(), rel*100)
	}
	if tl.Critical != "io" {
		t.Errorf("IGB on A should be IO-bound, got %q", tl.Critical)
	}
	out := tl.Render(72)
	for _, want := range []string{"sample", "io", "compute", "utilization"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
	if _, err := TimelineOf(nil, 0); err == nil {
		t.Error("nil result accepted")
	}
	if _, err := TimelineOf(&Result{OOM: "x", Stats: r.Stats}, 0); err == nil {
		t.Error("OOM result accepted")
	}
}
