package trainsim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"moment/internal/faults"
	"moment/internal/obs"
	"moment/internal/topology"
)

// fourSSDCfg is the acceptance-criteria machine: MachineA trimmed to four
// SSDs, layout (c), PA dataset.
func fourSSDCfg(t *testing.T) Config {
	t.Helper()
	m := topology.MachineA()
	m.NumSSDs = 4
	cfg := classicCfg(t, m, topology.LayoutC, "PA")
	return cfg
}

func TestKillOneOfFourSSDsMidEpochCompletes(t *testing.T) {
	cfg := fourSSDCfg(t)
	nominal := simulate(t, cfg)
	if nominal.Faults != nil {
		t.Fatal("no schedule should mean no fault report")
	}
	killAt := nominal.IOTime.Sec() / 2

	o := obs.New()
	cfg.Observer = o
	cfg.Faults = &faults.Schedule{Seed: 1, Events: []faults.Event{
		faults.Kill(2, killAt),
	}}
	res := simulate(t, cfg)
	rep := res.Faults
	if rep == nil {
		t.Fatal("faulted epoch must carry a report")
	}
	if len(rep.DeadSSDs) != 1 || rep.DeadSSDs[0] != 2 {
		t.Errorf("dead SSDs %v, want [2]", rep.DeadSSDs)
	}
	if rep.Replans != 1 {
		t.Errorf("replans = %d, want 1", rep.Replans)
	}
	if rep.Timeouts != 1 || rep.StallSeconds <= 0 {
		t.Errorf("recovery stall not charged: %+v", rep)
	}
	if rep.Injected != 1 {
		t.Errorf("injected = %d, want 1", rep.Injected)
	}
	if math.Abs(rep.NominalEpoch.Sec()-nominal.EpochTime.Sec()) > 1e-9 {
		t.Errorf("nominal epoch %v, want %v", rep.NominalEpoch, nominal.EpochTime)
	}
	if rep.Inflation <= 1 {
		t.Errorf("inflation %v, want > 1 (losing a device must cost time)", rep.Inflation)
	}
	if res.EpochTime.Sec() <= nominal.EpochTime.Sec() {
		t.Errorf("degraded epoch %v not slower than nominal %v", res.EpochTime, nominal.EpochTime)
	}
	// The loss is bounded: 3 of 4 SSDs survive, so the epoch should not
	// blow up by more than a few x even with the recovery stall.
	if rep.Inflation > 5 {
		t.Errorf("inflation %v implausibly large", rep.Inflation)
	}
	// Replan + inflation are visible through obs.
	var buf bytes.Buffer
	if err := o.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"faults_injected_total", "faults_replans_total", "trainsim_epoch_inflation"} {
		if !strings.Contains(buf.String(), metric) {
			t.Errorf("metric %s missing from snapshot", metric)
		}
	}
}

// metricsSnapshot renders the observer's metrics with wall-clock planner
// timing stripped (flownet_solve_seconds measures host time, which is the
// one legitimately nondeterministic signal).
func metricsSnapshot(t *testing.T, o *obs.Observer) string {
	t.Helper()
	var buf bytes.Buffer
	if err := o.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var kept []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.Contains(line, "flownet_solve_seconds") {
			continue
		}
		kept = append(kept, line)
	}
	return strings.Join(kept, "\n")
}

func TestFaultedEpochIsDeterministic(t *testing.T) {
	run := func() (*Result, string) {
		cfg := fourSSDCfg(t)
		o := obs.New()
		cfg.Observer = o
		cfg.Faults = &faults.Schedule{Seed: 9, Events: []faults.Event{
			faults.Kill(2, 20),
			faults.ThrottleSSD(0, 5, 0.5, 30),
			faults.Burst(1, 0, 0.02, 0),
			faults.Straggle(1, 0, 0.7, 0),
		}}
		return simulate(t, cfg), metricsSnapshot(t, cfg.Observer)
	}
	r1, m1 := run()
	r2, m2 := run()
	if r1.EpochTime != r2.EpochTime || r1.IOTime != r2.IOTime || r1.ComputeTime != r2.ComputeTime {
		t.Errorf("timings drifted: %+v vs %+v", r1, r2)
	}
	if r1.Faults == nil || r2.Faults == nil {
		t.Fatal("missing fault reports")
	}
	if r1.Faults.Inflation != r2.Faults.Inflation || r1.Faults.MovedBytes != r2.Faults.MovedBytes {
		t.Errorf("fault reports drifted: %+v vs %+v", r1.Faults, r2.Faults)
	}
	if m1 != m2 {
		t.Error("metrics snapshots are not byte-identical across identical seeded runs")
	}
}

func TestEmptyScheduleMatchesPerfectRun(t *testing.T) {
	cfg := fourSSDCfg(t)
	base := simulate(t, cfg)
	cfg.Faults = &faults.Schedule{}
	same := simulate(t, cfg)
	if same.Faults != nil {
		t.Error("empty schedule should not produce a fault report")
	}
	if base.EpochTime != same.EpochTime || base.IOTime != same.IOTime {
		t.Errorf("empty schedule drifted: %v/%v vs %v/%v",
			base.EpochTime, base.IOTime, same.EpochTime, same.IOTime)
	}
}

func TestThrottleOnlyDegradesWithoutReplan(t *testing.T) {
	cfg := fourSSDCfg(t)
	cfg.Faults = &faults.Schedule{Events: []faults.Event{
		faults.ThrottleSSD(0, 0, 0.25, 0),
	}}
	res := simulate(t, cfg)
	rep := res.Faults
	if rep == nil {
		t.Fatal("throttle schedule must carry a report")
	}
	if rep.Replans != 0 || len(rep.DeadSSDs) != 0 || rep.StallSeconds != 0 {
		t.Errorf("throttle must not trigger fail-stop recovery: %+v", rep)
	}
	if rep.Inflation < 1 {
		t.Errorf("inflation %v < 1", rep.Inflation)
	}
}

func TestStragglerComputeStretch(t *testing.T) {
	in, err := faults.NewInjector(&faults.Schedule{Events: []faults.Event{
		faults.Straggle(1, 0, 0.5, 0),
	}})
	if err != nil {
		t.Fatal(err)
	}
	// GPU 1 at half speed forever: 10s of work takes 20s; GPU 0 unaffected.
	if got := stragglerCompute(10, 2, in); math.Abs(got-20) > 1e-9 {
		t.Errorf("permanent straggler stretch = %v, want 20", got)
	}
	// Transient: half speed for the first 4s costs 2 extra seconds.
	in2, err := faults.NewInjector(&faults.Schedule{Events: []faults.Event{
		faults.Straggle(0, 0, 0.5, 4),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got := stragglerCompute(10, 1, in2); math.Abs(got-12) > 1e-9 {
		t.Errorf("transient straggler stretch = %v, want 12", got)
	}
}
