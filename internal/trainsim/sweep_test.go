package trainsim

import (
	"math"
	"testing"

	"moment/internal/faults"
	"moment/internal/obs"
)

func sweep(t *testing.T, cfg Config, opt SweepOptions) *SweepResult {
	t.Helper()
	r, err := SimulateEpochs(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSweepHealthyFleetCollapsesToOneResim(t *testing.T) {
	cfg := fourSSDCfg(t)
	nominal := simulate(t, cfg)

	res := sweep(t, cfg, SweepOptions{Epochs: 50})
	if res.Resims != 1 || res.CacheHits != 49 {
		t.Errorf("healthy sweep: resims=%d hits=%d, want 1/49", res.Resims, res.CacheHits)
	}
	if math.Abs(res.Total.Sec()-50*nominal.EpochTime.Sec()) > 1e-6 {
		t.Errorf("total %v, want 50 x %v", res.Total, nominal.EpochTime)
	}
	for e, d := range res.EpochTimes {
		if math.Abs(d-nominal.EpochTime.Sec()) > 1e-9 {
			t.Fatalf("epoch %d duration %v, want nominal %v", e, d, nominal.EpochTime.Sec())
		}
	}

	base := sweep(t, cfg, SweepOptions{Epochs: 50, NoDeltaCache: true})
	if base.Resims != 50 || base.CacheHits != 0 {
		t.Errorf("baseline sweep: resims=%d hits=%d, want 50/0", base.Resims, base.CacheHits)
	}
	if math.Abs(base.Total.Sec()-res.Total.Sec()) > 1e-6 {
		t.Errorf("baseline total %v != cached total %v", base.Total, res.Total)
	}
}

func TestSweepDeltaMatchesBaselineUnderFaults(t *testing.T) {
	cfg := fourSSDCfg(t)
	nominal := simulate(t, cfg)
	ep := nominal.EpochTime.Sec()
	// Faults confined to the first few epochs: a throttle spanning epoch 1,
	// an error burst inside epoch 3, a GPU straggler inside epoch 5. From
	// epoch ~7 onward the fleet is quiet and every signature repeats.
	cfg.Faults = &faults.Schedule{Seed: 3, Events: []faults.Event{
		faults.ThrottleSSD(1, 1.2*ep, 0.5, ep),
		faults.Burst(2, 3.4*ep, 0.3, 0.5*ep),
		faults.Straggle(0, 5.2*ep, 0.6, 0.4*ep),
	}}

	delta := sweep(t, cfg, SweepOptions{Epochs: 40})
	base := sweep(t, cfg, SweepOptions{Epochs: 40, NoDeltaCache: true})
	if len(delta.EpochTimes) != 40 || len(base.EpochTimes) != 40 {
		t.Fatalf("epoch counts: delta %d, base %d", len(delta.EpochTimes), len(base.EpochTimes))
	}
	for e := range base.EpochTimes {
		if math.Abs(delta.EpochTimes[e]-base.EpochTimes[e]) > 1e-9 {
			t.Errorf("epoch %d drifted: delta %v, base %v", e, delta.EpochTimes[e], base.EpochTimes[e])
		}
	}
	if math.Abs(delta.Total.Sec()-base.Total.Sec()) > 1e-6 {
		t.Errorf("totals drifted: delta %v, base %v", delta.Total, base.Total)
	}
	if delta.CacheHits < 25 {
		t.Errorf("cache hits %d, want most of the quiet tail (>= 25)", delta.CacheHits)
	}
	if base.CacheHits != 0 || base.Resims != 40 {
		t.Errorf("baseline used the cache: %d hits, %d resims", base.CacheHits, base.Resims)
	}
	// Faulted epochs must actually cost time.
	if delta.EpochTimes[1] <= ep || delta.Total.Sec() <= 40*ep {
		t.Errorf("faults did not inflate the sweep: epoch1 %v vs nominal %v", delta.EpochTimes[1], ep)
	}
}

func TestSweepCarriesDeadSSDForward(t *testing.T) {
	cfg := fourSSDCfg(t)
	nominal := simulate(t, cfg)
	ep := nominal.EpochTime.Sec()
	cfg.Faults = &faults.Schedule{Seed: 7, Events: []faults.Event{
		faults.Kill(2, 1.5*ep),
	}}

	o := obs.New()
	cfg.Observer = o
	res := sweep(t, cfg, SweepOptions{Epochs: 10})
	if len(res.DeadSSDs) != 1 || res.DeadSSDs[0] != 2 {
		t.Fatalf("dead SSDs %v, want [2]", res.DeadSSDs)
	}
	// The failure epoch pays the stall; every epoch after it runs degraded
	// on three SSDs, slower than nominal but steady-state.
	if res.EpochTimes[1] <= res.EpochTimes[0] {
		t.Errorf("failure epoch %v not slower than healthy epoch %v", res.EpochTimes[1], res.EpochTimes[0])
	}
	for e := 3; e < 10; e++ {
		if math.Abs(res.EpochTimes[e]-res.EpochTimes[2]) > 1e-9 {
			t.Errorf("degraded steady state drifted at epoch %d: %v vs %v", e, res.EpochTimes[e], res.EpochTimes[2])
		}
		if res.EpochTimes[e] <= ep {
			t.Errorf("epoch %d on 3 SSDs (%v) not slower than nominal %v", e, res.EpochTimes[e], ep)
		}
	}
	// Steady-state degraded epochs share one signature: at most the healthy
	// epoch, the failure epoch, and one degraded epoch need fabric runs.
	if res.Resims > 3 {
		t.Errorf("resims %d, want <= 3 (healthy, failure, degraded steady-state)", res.Resims)
	}
	base := sweep(t, cfg, SweepOptions{Epochs: 10, NoDeltaCache: true})
	for e := range base.EpochTimes {
		if math.Abs(res.EpochTimes[e]-base.EpochTimes[e]) > 1e-9 {
			t.Errorf("epoch %d drifted from baseline: %v vs %v", e, res.EpochTimes[e], base.EpochTimes[e])
		}
	}
	if hits := o.Counter("sim_delta_cache_hits_total").Value(); hits != float64(res.CacheHits+base.CacheHits) {
		t.Errorf("sim_delta_cache_hits_total = %v, want %v", hits, res.CacheHits)
	}
	if epochs := o.Counter("sim_delta_epochs_total").Value(); epochs != 20 {
		t.Errorf("sim_delta_epochs_total = %v, want 20 (both sweeps)", epochs)
	}
}
