package scorecache

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestGetPutBasics(t *testing.T) {
	c := New[string, int](4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %v,%v want 1,true", v, ok)
	}
	if v, ok := c.Get("b"); !ok || v != 2 {
		t.Fatalf("Get(b) = %v,%v want 2,true", v, ok)
	}
	c.Put("a", 10) // refresh
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("refreshed Get(a) = %v want 10", v)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d want 2", c.Len())
	}
	if c.Cap() != 4 {
		t.Fatalf("Cap = %d want 4", c.Cap())
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New[int, int](3)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(3, 3)
	// Touch 1 so 2 becomes LRU.
	if _, ok := c.Get(1); !ok {
		t.Fatal("lost entry 1")
	}
	c.Put(4, 4) // evicts 2
	if _, ok := c.Get(2); ok {
		t.Fatal("2 should have been evicted")
	}
	for _, k := range []int{1, 3, 4} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%d evicted unexpectedly", k)
		}
	}
	if _, _, ev := c.Stats(); ev != 1 {
		t.Fatalf("evictions = %d want 1", ev)
	}
}

func TestEvictionRecyclesSlots(t *testing.T) {
	c := New[int, int](2)
	for i := 0; i < 100; i++ {
		c.Put(i, i)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d want 2", c.Len())
	}
	if got := len(c.entries); got > 2 {
		t.Fatalf("entries slice grew to %d despite bound 2", got)
	}
	for _, k := range []int{98, 99} {
		if v, ok := c.Get(k); !ok || v != k {
			t.Fatalf("Get(%d) = %v,%v", k, v, ok)
		}
	}
}

func TestSingleEntryCache(t *testing.T) {
	c := New[string, string](1)
	c.Put("a", "x")
	c.Put("b", "y")
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should be evicted from size-1 cache")
	}
	if v, ok := c.Get("b"); !ok || v != "y" {
		t.Fatalf("Get(b) = %q,%v", v, ok)
	}
	// Refreshing the only entry must not corrupt the list.
	c.Put("b", "z")
	if v, _ := c.Get("b"); v != "z" {
		t.Fatalf("refresh lost: %q", v)
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache[string, int]
	if _, ok := c.Get("a"); ok {
		t.Fatal("nil cache hit")
	}
	c.Put("a", 1) // must not panic
	c.Reset()
	if c.Len() != 0 || c.Cap() != 0 {
		t.Fatal("nil cache has size")
	}
	if h, m, e := c.Stats(); h+m+e != 0 {
		t.Fatal("nil cache has stats")
	}
	if c.HitRate() != 0 {
		t.Fatal("nil cache hit rate")
	}
	if v := c.GetOrCompute("a", func() int { return 7 }); v != 7 {
		t.Fatalf("nil GetOrCompute = %d want 7", v)
	}
	if New[string, int](0) != nil || New[string, int](-1) != nil {
		t.Fatal("non-positive bound should return nil cache")
	}
}

func TestGetOrCompute(t *testing.T) {
	c := New[string, int](8)
	calls := 0
	f := func() int { calls++; return 42 }
	if v := c.GetOrCompute("k", f); v != 42 {
		t.Fatalf("got %d", v)
	}
	if v := c.GetOrCompute("k", f); v != 42 {
		t.Fatalf("got %d", v)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	h, m, _ := c.Stats()
	if h != 1 || m != 1 { // first call misses, second hits
		t.Fatalf("stats h=%d m=%d want 1,1", h, m)
	}
	if got := c.HitRate(); got <= 0 || got >= 1 {
		t.Fatalf("hit rate %v out of (0,1)", got)
	}
}

func TestReset(t *testing.T) {
	c := New[int, int](4)
	c.Put(1, 1)
	c.Get(1)
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len after Reset = %d", c.Len())
	}
	if h, _, _ := c.Stats(); h != 1 {
		t.Fatal("Reset must keep cumulative stats")
	}
	c.Put(2, 2) // list must be consistent after Reset
	if v, ok := c.Get(2); !ok || v != 2 {
		t.Fatalf("post-Reset Get = %v,%v", v, ok)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int, int](64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := (seed*31 + i) % 100
				if v, ok := c.Get(k); ok && v != k {
					t.Errorf("Get(%d) = %d", k, v)
					return
				}
				c.Put(k, k)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("Len %d exceeds bound", c.Len())
	}
}

func TestScoresType(t *testing.T) {
	c := NewScores(2)
	c.Put("key", Score{Seconds: 1.5})
	c.Put("bad", Score{Infeasible: true, Err: "disconnected"})
	if s, ok := c.Get("key"); !ok || s.Seconds != 1.5 || s.Infeasible {
		t.Fatalf("Get(key) = %+v,%v", s, ok)
	}
	if s, ok := c.Get("bad"); !ok || !s.Infeasible || s.Err != "disconnected" {
		t.Fatalf("Get(bad) = %+v,%v", s, ok)
	}
}

func TestFingerprint(t *testing.T) {
	a := Fingerprint(1, 2, 3)
	if a != Fingerprint(1, 2, 3) {
		t.Fatal("fingerprint unstable")
	}
	if a == Fingerprint(1, 2, 4) {
		t.Fatal("fingerprint collision on differing input")
	}
	if Fingerprint(0) == Fingerprint() {
		t.Fatal("zero payload vs empty payload collided")
	}
	// NaN canonicalization: any NaN payload hashes equally.
	nan1 := Fingerprint(math.Float64frombits(0x7ff8000000000001))
	nan2 := Fingerprint(math.Float64frombits(0x7ff8000000000002))
	if nan1 != nan2 {
		t.Fatal("NaN payloads hash differently")
	}
	if FingerprintSlice([]float64{1}) == FingerprintSlice([]float64{}) {
		t.Fatal("slice length not mixed in")
	}
}

func TestStressListIntegrity(t *testing.T) {
	// Randomized ops against a map oracle; detects list corruption by
	// verifying every resident key is retrievable after each phase.
	c := New[int, int](7)
	oracle := map[int]int{}
	for i := 0; i < 500; i++ {
		k := i % 13
		c.Put(k, i)
		oracle[k] = i
		if v, ok := c.Get(k); !ok || v != i {
			t.Fatalf("step %d: Get(%d) = %v,%v want %d", i, k, v, ok, i)
		}
	}
	if c.Len() != 7 {
		t.Fatalf("Len = %d want 7", c.Len())
	}
	// Every hit must return the oracle value.
	for k, want := range oracle {
		if v, ok := c.Get(k); ok && v != want {
			t.Fatalf("Get(%d) = %d want %d", k, v, want)
		}
	}
}

func BenchmarkCachePutGet(b *testing.B) {
	c := New[string, Score](1024)
	keys := make([]string, 2048)
	for i := range keys {
		keys[i] = fmt.Sprintf("cand-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		if _, ok := c.Get(k); !ok {
			c.Put(k, Score{Seconds: float64(i)})
		}
	}
}
