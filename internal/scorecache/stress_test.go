package scorecache

import (
	"fmt"
	"sync"
	"testing"
)

// TestStressMultiTenantMixed hammers one shared cache from many goroutines
// acting as tenants — mixed Get/Put/GetOrCompute with a bound small enough
// to evict constantly, plus concurrent Stats/Len/HitRate readers and a
// Reset in flight. Run under -race this is the serving daemon's shared
// score cache in miniature; afterwards the structural invariants must
// still hold.
func TestStressMultiTenantMixed(t *testing.T) {
	const (
		tenants = 8
		ops     = 2000
		bound   = 64
	)
	c := New[string, Score](bound)
	var wg sync.WaitGroup
	for tn := 0; tn < tenants; tn++ {
		wg.Add(1)
		go func(tn int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				// Key space overlaps across tenants (same planning
				// problems) and exceeds the bound (constant eviction).
				key := fmt.Sprintf("cand-%d", (tn*7+i)%(4*bound))
				switch i % 4 {
				case 0:
					c.Put(key, Score{Seconds: float64(i)})
				case 1:
					if s, ok := c.Get(key); ok && s.Seconds < 0 {
						t.Errorf("negative cached score %v", s.Seconds)
					}
				case 2:
					c.GetOrCompute(key, func() Score { return Score{Seconds: 1} })
				default:
					_ = c.Len()
					_, _, _ = c.Stats()
					_ = c.HitRate()
				}
			}
		}(tn)
	}
	// One tenant resetting mid-flight must not corrupt anyone else.
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.Reset()
	}()
	wg.Wait()

	if got := c.Len(); got > bound {
		t.Fatalf("cache over bound after stress: len %d > %d", got, bound)
	}
	// The intrusive LRU list must still be a consistent chain: walking by
	// repeated eviction (Put of fresh keys) must not wedge or panic.
	for i := 0; i < 2*bound; i++ {
		c.Put(fmt.Sprintf("post-%d", i), Score{})
	}
	if got := c.Len(); got != bound {
		t.Fatalf("len %d after refill, want %d", got, bound)
	}
}

// TestValueIsolationOnReturn pins the property multi-tenant serving relies
// on: Get returns a copy for value-typed caches, so one tenant mutating
// its returned Score cannot corrupt what the next tenant reads.
func TestValueIsolationOnReturn(t *testing.T) {
	c := NewScores(8)
	c.Put("k", Score{Seconds: 3.5, Err: "original"})

	got, ok := c.Get("k")
	if !ok {
		t.Fatal("miss on fresh entry")
	}
	got.Seconds = -1
	got.Err = "corrupted"

	again, ok := c.Get("k")
	if !ok {
		t.Fatal("entry vanished")
	}
	if again.Seconds != 3.5 || again.Err != "original" {
		t.Fatalf("tenant mutation leaked into the cache: %+v", again)
	}
}

// TestReferenceIsolationCloneOnReturn documents the contract for
// reference-typed caches (the serving daemon's plan cache is
// Cache[string, *planResult]): the cache hands back the stored pointer, so
// the owner MUST treat cached values as immutable masters and clone on
// return. The test mimics that discipline across two tenants and proves a
// tenant-side mutation cannot reach the master or the other tenant.
func TestReferenceIsolationCloneOnReturn(t *testing.T) {
	type layout struct {
		GPUAt []string
	}
	clone := func(l *layout) *layout {
		return &layout{GPUAt: append([]string(nil), l.GPUAt...)}
	}
	c := New[string, *layout](4)
	c.Put("plan", &layout{GPUAt: []string{"sw0", "sw1"}})

	master, _ := c.Get("plan")
	tenantA := clone(master)
	tenantA.GPUAt[0] = "corrupted"

	master2, _ := c.Get("plan")
	tenantB := clone(master2)
	if master2.GPUAt[0] != "sw0" {
		t.Fatal("tenant mutation of a clone reached the cached master")
	}
	if tenantB.GPUAt[0] != "sw0" {
		t.Fatal("tenant mutation leaked into another tenant's copy")
	}

	// And the inverse: without cloning, the pointer IS shared — the reason
	// the discipline exists. (Guards against a future change silently
	// deep-copying values and doubling serving memory.)
	raw1, _ := c.Get("plan")
	raw2, _ := c.Get("plan")
	if raw1 != raw2 {
		t.Fatal("reference-typed cache no longer shares storage; clone-on-return assumptions changed")
	}
}
