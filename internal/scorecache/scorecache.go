// Package scorecache is a bounded, concurrency-safe LRU used to memoize
// expensive planner evaluations: max-flow placement scores keyed by
// canonical placement key (placement.Search, placement.LocalSearch) and
// DDAK layouts keyed by (hotness, bins) fingerprints (adaptive.Replanner).
//
// The planner revisits equivalent configurations constantly — local-search
// restarts walk back through earlier placements, fault-triggered replans
// re-bin into previously seen capacity sets, and repeated Search calls over
// the same machine/demand re-score identical symmetry classes — so a small
// cache converts re-solves into hash lookups.
//
// Like the obs package, a nil *Cache is a valid, fully disabled cache: every
// method no-ops (Get always misses), so call sites thread an optional cache
// without branching.
package scorecache

import (
	"hash/maphash"
	"math"
	"sync"
)

// entry is one resident key/value pair on the intrusive LRU list.
// Indices into the entries slice replace pointers so eviction can recycle
// slots without churning the allocator.
type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next int // intrusive doubly-linked list over entries indices
}

// Cache is a bounded LRU. The zero value is unusable; construct with New.
// A nil *Cache is a valid disabled cache (Get misses, Put drops).
type Cache[K comparable, V any] struct {
	mu      sync.Mutex
	max     int
	index   map[K]int
	entries []entry[K, V]
	head    int // most recently used; -1 when empty
	tail    int // least recently used; -1 when empty
	free    []int

	hits, misses, evictions uint64
}

// New returns an LRU holding at most max entries. max <= 0 disables the
// cache entirely (New returns nil, which every method accepts).
func New[K comparable, V any](max int) *Cache[K, V] {
	if max <= 0 {
		return nil
	}
	return &Cache[K, V]{
		max:   max,
		index: make(map[K]int, max),
		head:  -1,
		tail:  -1,
	}
}

// Get looks k up, promoting it to most-recently-used on a hit.
func (c *Cache[K, V]) Get(k K) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.index[k]
	if !ok {
		c.misses++
		return zero, false
	}
	c.hits++
	c.unlink(i)
	c.pushFront(i)
	return c.entries[i].val, true
}

// Put inserts or refreshes k→v, evicting the least-recently-used entry when
// the cache is full.
func (c *Cache[K, V]) Put(k K, v V) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if i, ok := c.index[k]; ok {
		c.entries[i].val = v
		c.unlink(i)
		c.pushFront(i)
		return
	}
	var i int
	switch {
	case len(c.free) > 0:
		i = c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
	case len(c.entries) < c.max:
		c.entries = append(c.entries, entry[K, V]{})
		i = len(c.entries) - 1
	default:
		// Evict the LRU tail and recycle its slot.
		i = c.tail
		c.unlink(i)
		delete(c.index, c.entries[i].key)
		c.evictions++
	}
	c.entries[i] = entry[K, V]{key: k, val: v}
	c.index[k] = i
	c.pushFront(i)
}

// GetOrCompute returns the cached value for k, computing and inserting it on
// a miss. compute runs outside the cache lock, so concurrent misses on the
// same key may compute redundantly (planner scores are deterministic, so the
// duplicates agree); the first Put wins and later ones refresh with an equal
// value.
func (c *Cache[K, V]) GetOrCompute(k K, compute func() V) V {
	if c == nil {
		return compute()
	}
	if v, ok := c.Get(k); ok {
		return v
	}
	v := compute()
	c.Put(k, v)
	return v
}

// Len returns the number of resident entries.
func (c *Cache[K, V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.index)
}

// Cap returns the configured bound (0 for a disabled cache).
func (c *Cache[K, V]) Cap() int {
	if c == nil {
		return 0
	}
	return c.max
}

// Stats reports cumulative hits, misses, and evictions.
func (c *Cache[K, V]) Stats() (hits, misses, evictions uint64) {
	if c == nil {
		return 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (c *Cache[K, V]) HitRate() float64 {
	h, m, _ := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Reset drops every entry but keeps the cumulative stats.
func (c *Cache[K, V]) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.index = make(map[K]int, c.max)
	c.entries = c.entries[:0]
	c.free = c.free[:0]
	c.head, c.tail = -1, -1
}

func (c *Cache[K, V]) unlink(i int) {
	e := &c.entries[i]
	if e.prev >= 0 {
		c.entries[e.prev].next = e.next
	} else {
		c.head = e.next
	}
	if e.next >= 0 {
		c.entries[e.next].prev = e.prev
	} else {
		c.tail = e.prev
	}
}

func (c *Cache[K, V]) pushFront(i int) {
	e := &c.entries[i]
	e.prev = -1
	e.next = c.head
	if c.head >= 0 {
		c.entries[c.head].prev = i
	}
	c.head = i
	if c.tail < 0 {
		c.tail = i
	}
}

// Score is one memoized placement evaluation: the bisection result (seconds)
// or the fact that the candidate was infeasible. Err carries the infeasible
// reason for diagnostics; feasibility, not the message, drives planning.
type Score struct {
	Seconds    float64
	Infeasible bool
	Err        string
}

// Scores is the concrete cache the placement planner threads through
// Search, LocalSearch, and replans: canonical-key strings to Score.
type Scores = Cache[string, Score]

// NewScores returns a Score LRU with the given bound (<=0 disables).
func NewScores(max int) *Scores { return New[string, Score](max) }

// Fingerprinting helpers for building cache keys from float payloads
// (demand vectors, hotness snapshots, bin capacity sets). maphash with a
// process-stable seed keeps keys cheap and collision-resistant without
// pulling in crypto.

var fpSeed = maphash.MakeSeed()

// Fingerprint hashes a sequence of float64 payloads into a compact key
// fragment. NaNs are canonicalized so equal-semantics inputs hash equally.
func Fingerprint(vals ...float64) uint64 {
	var h maphash.Hash
	h.SetSeed(fpSeed)
	var buf [8]byte
	for _, v := range vals {
		bits := math.Float64bits(v)
		if v != v { // canonicalize NaN payloads
			bits = math.Float64bits(math.NaN())
		}
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// FingerprintSlice hashes a float slice (length-prefixed, so [1],[ ] and
// [ ],[1] differ) into a compact key fragment.
func FingerprintSlice(vals []float64) uint64 {
	h := NewHasher()
	h.Floats(vals)
	return h.Sum()
}

// Hasher incrementally fingerprints mixed payloads — float vectors, map
// keys, presence markers — into one compact key fragment, for composite
// cache keys that Fingerprint's flat float list can't express (e.g. a
// flownet.Demand with its per-socket DRAM budgets). Zero value is unusable;
// construct with NewHasher. Methods return the receiver for chaining.
type Hasher struct{ h maphash.Hash }

// NewHasher returns a Hasher using the process-stable fingerprint seed, so
// its sums are comparable with Fingerprint/FingerprintSlice outputs within
// one process run.
func NewHasher() *Hasher {
	h := &Hasher{}
	h.h.SetSeed(fpSeed)
	return h
}

// Uint mixes in a raw 64-bit value (lengths, booleans, counters).
func (h *Hasher) Uint(v uint64) *Hasher {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	h.h.Write(buf[:])
	return h
}

// Float mixes in one float64, canonicalizing NaN payloads like Fingerprint.
func (h *Hasher) Float(v float64) *Hasher {
	bits := math.Float64bits(v)
	if v != v {
		bits = math.Float64bits(math.NaN())
	}
	return h.Uint(bits)
}

// Floats mixes in a float slice, length-prefixed. A nil slice hashes like an
// empty one; use Uint with an explicit marker when nil-ness is semantic.
func (h *Hasher) Floats(vs []float64) *Hasher {
	h.Uint(uint64(len(vs)))
	for _, v := range vs {
		h.Float(v)
	}
	return h
}

// String mixes in a string, length-prefixed.
func (h *Hasher) String(s string) *Hasher {
	h.Uint(uint64(len(s)))
	h.h.WriteString(s)
	return h
}

// Sum returns the fingerprint of everything mixed in so far. The Hasher
// remains usable; further writes extend the payload.
func (h *Hasher) Sum() uint64 { return h.h.Sum64() }
