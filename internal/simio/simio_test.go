package simio

import (
	"math"
	"testing"
)

func cfg2(t *testing.T) *Stack {
	t.Helper()
	s, err := New(Config{
		SSDs:         []SSDSpec{P5510(), P5510()},
		QueueDepth:   256,
		RequestBytes: 4096,
		Coalesce:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDeviceRate(t *testing.T) {
	d := P5510()
	// 4K requests, no coalescing: IOPS-bound (930K < 6GiB/4K = 1.57M).
	r := d.DeviceRate(4096, 1)
	if math.Abs(r-930_000) > 1 {
		t.Errorf("rate %v, want IOPS-bound 930000", r)
	}
	// With 2x coalescing the bandwidth ceiling binds.
	r2 := d.DeviceRate(4096, 2)
	want := 6 * float64(1<<30) / 4096
	if math.Abs(r2-want) > 1 {
		t.Errorf("rate %v, want BW-bound %v", r2, want)
	}
	if bw := d.EffectiveBandwidth(4096, 2); math.Abs(bw-6*float64(1<<30)) > 1 {
		t.Errorf("effective BW %v", bw)
	}
	if d.DeviceRate(0, 1) != 0 {
		t.Error("zero request size should yield zero rate")
	}
}

func TestSingleGPUSingleSSD(t *testing.T) {
	s := cfg2(t)
	if err := s.AttachGPU(0, []int{0}); err != nil {
		t.Fatal(err)
	}
	// 1.5M requests of 4K at ~6 GiB/s -> ~0.98s.
	n := int64(1_500_000)
	res, err := s.Run(map[[2]int]int64{{0, 0}: n})
	if err != nil {
		t.Fatal(err)
	}
	wantBytes := float64(n) * 4096
	if math.Abs(res.PerGPUBytes[0]-wantBytes) > 1 {
		t.Errorf("delivered %v bytes, want %v", res.PerGPUBytes[0], wantBytes)
	}
	wantTime := wantBytes / (6 * float64(1<<30))
	if math.Abs(res.Time-wantTime) > 0.01*wantTime+1e-3 {
		t.Errorf("time %v, want ~%v", res.Time, wantTime)
	}
	if bw := res.PerSSDBandwidth[0]; math.Abs(bw-6*float64(1<<30)) > 0.02*6*float64(1<<30) {
		t.Errorf("ssd bandwidth %.2f GiB/s", bw/(1<<30))
	}
}

func TestTwoGPUsShareOneSSDFairly(t *testing.T) {
	s := cfg2(t)
	s.AttachGPU(0, []int{0})
	s.AttachGPU(1, []int{0})
	n := int64(500_000)
	res, err := s.Run(map[[2]int]int64{{0, 0}: n, {1, 0}: n})
	if err != nil {
		t.Fatal(err)
	}
	// Shared fairly: both GPUs get equal bytes; total time doubles
	// versus one GPU alone.
	if math.Abs(res.PerGPUBytes[0]-res.PerGPUBytes[1]) > 1 {
		t.Errorf("unfair split: %v vs %v", res.PerGPUBytes[0], res.PerGPUBytes[1])
	}
	want := 2 * float64(n) * 4096 / (6 * float64(1<<30))
	if math.Abs(res.Time-want) > 0.02*want+1e-3 {
		t.Errorf("time %v, want ~%v", res.Time, want)
	}
}

func TestGPUAcrossTwoSSDsDoublesBandwidth(t *testing.T) {
	s := cfg2(t)
	s.AttachGPU(0, []int{0, 1})
	n := int64(750_000)
	res, err := s.Run(map[[2]int]int64{{0, 0}: n, {0, 1}: n})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(n) * 4096 / (6 * float64(1<<30)) // both in parallel
	if math.Abs(res.Time-want) > 0.02*want+1e-3 {
		t.Errorf("time %v, want ~%v (parallel SSDs)", res.Time, want)
	}
}

func TestShallowQueueLimitsThroughput(t *testing.T) {
	// Queue depth 1 with 90us latency caps a pair at ~11.1K req/s,
	// far below the device ceiling.
	s, err := New(Config{
		SSDs:         []SSDSpec{P5510()},
		QueueDepth:   1,
		RequestBytes: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.AttachGPU(0, []int{0})
	n := int64(11_111)
	res, err := s.Run(map[[2]int]int64{{0, 0}: n})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time < 0.9 {
		t.Errorf("time %v, want ~1s (latency-bound)", res.Time)
	}
}

func TestAsymmetricLoadReleasesShare(t *testing.T) {
	s := cfg2(t)
	s.AttachGPU(0, []int{0})
	s.AttachGPU(1, []int{0})
	// GPU1 has 3x the requests: after GPU0 drains, GPU1 gets the full
	// device. Makespan = total/deviceBW.
	res, err := s.Run(map[[2]int]int64{{0, 0}: 250_000, {1, 0}: 750_000})
	if err != nil {
		t.Fatal(err)
	}
	want := 1_000_000 * 4096 / (6 * float64(1<<30))
	if math.Abs(res.Time-want) > 0.02*want+1e-3 {
		t.Errorf("time %v, want ~%v", res.Time, want)
	}
}

func TestRunErrors(t *testing.T) {
	s := cfg2(t)
	s.AttachGPU(0, []int{0})
	if _, err := s.Run(map[[2]int]int64{{0, 1}: 10}); err == nil {
		t.Error("unattached pair accepted")
	}
	if _, err := s.Run(map[[2]int]int64{{0, 0}: -1}); err == nil {
		t.Error("negative count accepted")
	}
	res, err := s.Run(nil)
	if err != nil || res.Time != 0 {
		t.Errorf("empty workload: %v, %v", res, err)
	}
	res2, err := s.Run(map[[2]int]int64{{0, 0}: 0})
	if err != nil || res2.Time != 0 {
		t.Errorf("zero-count workload: %v, %v", res2, err)
	}
}

func TestConfigErrors(t *testing.T) {
	good := Config{SSDs: []SSDSpec{P5510()}, QueueDepth: 8, RequestBytes: 4096}
	cases := []func(Config) Config{
		func(c Config) Config { c.SSDs = nil; return c },
		func(c Config) Config { c.SSDs = []SSDSpec{{SeqBW: 0, IOPS: 1, Latency: 1}}; return c },
		func(c Config) Config { c.QueueDepth = 0; return c },
		func(c Config) Config { c.RequestBytes = 0; return c },
		func(c Config) Config { c.Coalesce = 0.5; return c },
	}
	for i, mod := range cases {
		if _, err := New(mod(good)); err == nil {
			t.Errorf("case %d: expected config error", i)
		}
	}
}

func TestAttachErrors(t *testing.T) {
	s := cfg2(t)
	if err := s.AttachGPU(-1, []int{0}); err == nil {
		t.Error("negative gpu accepted")
	}
	if err := s.AttachGPU(0, nil); err == nil {
		t.Error("no ssds accepted")
	}
	if err := s.AttachGPU(0, []int{5}); err == nil {
		t.Error("out-of-range ssd accepted")
	}
}

func TestEightSSDAggregate48GiB(t *testing.T) {
	// §2.2: 8 P5510s sustain ~48 GiB/s with the GPU-initiated stack.
	ssds := make([]SSDSpec, 8)
	ids := make([]int, 8)
	for i := range ssds {
		ssds[i] = P5510()
		ids[i] = i
	}
	s, err := New(Config{SSDs: ssds, QueueDepth: 256, RequestBytes: 4096, Coalesce: 2})
	if err != nil {
		t.Fatal(err)
	}
	reqs := map[[2]int]int64{}
	for g := 0; g < 4; g++ {
		s.AttachGPU(g, ids)
		for _, d := range ids {
			reqs[[2]int{g, d}] = 300_000
		}
	}
	res, err := s.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, bw := range res.PerSSDBandwidth {
		total += bw
	}
	if gib := total / (1 << 30); gib < 46 || gib > 48.5 {
		t.Errorf("aggregate %.1f GiB/s, want ~48", gib)
	}
}
