package simio

import (
	"container/heap"
	"fmt"
	"math"

	"moment/internal/faults"
)

// This file implements the request-granular discrete-event model of the
// GPU-initiated NVMe queue pair (paper §3.1, "Multi-GPU Disk IO Stack"):
// actual SQ/CQ ring buffers with head/tail indices, doorbell writes that
// batch submissions, a per-device service loop with bounded internal
// parallelism, and completion polling by GPU threads. The fluid model in
// simio.Stack prices epoch-scale transfers; this model answers
// microbenchmark questions — IOPS versus queue depth, doorbell batching,
// ring sizing — at per-command fidelity.

// QPairConfig sizes one submission/completion queue pair.
type QPairConfig struct {
	// Entries is the ring size (power of two, NVMe-style; default 256).
	Entries int
	// DoorbellBatch is how many commands the driver accumulates before
	// ringing the doorbell (GPU stacks batch to amortize MMIO; default 1).
	DoorbellBatch int
	// DoorbellLatency is the MMIO write + fetch latency per doorbell ring.
	DoorbellLatency float64
}

func (c QPairConfig) defaults() QPairConfig {
	if c.Entries == 0 {
		c.Entries = 256
	}
	if c.DoorbellBatch == 0 {
		c.DoorbellBatch = 1
	}
	if c.DoorbellLatency == 0 {
		c.DoorbellLatency = 2e-6
	}
	return c
}

// DeviceConfig models the SSD controller behind the queue pairs.
type DeviceConfig struct {
	SSDSpec
	// Parallelism is the controller's internal channel/die concurrency:
	// how many commands it services simultaneously (default 64).
	Parallelism int
}

func (c DeviceConfig) defaults() DeviceConfig {
	if c.Parallelism == 0 {
		c.Parallelism = 64
	}
	return c
}

// QPairSim is a request-granular simulation of one NVMe device serving
// one or more queue pairs.
type QPairSim struct {
	qp  QPairConfig
	dev DeviceConfig

	reqBytes float64
	svcTime  float64 // per-command device occupancy

	inj   *faults.Injector // nil = perfect hardware
	ssd   int              // device index the injector knows this device by
	retry faults.RetryPolicy
}

// SetFaults attaches a fault injector, identifying this device as SSD
// index ssd in the injector's schedule. Per-command transient errors are
// drawn deterministically from the injector's counter-based RNG and
// retried with exponential backoff up to the policy's MaxRetries;
// throttles stretch command service time; a fail-stop drains the run at
// the fail time plus the policy timeout. A nil injector restores the
// perfect device.
func (s *QPairSim) SetFaults(in *faults.Injector, ssd int, pol faults.RetryPolicy) {
	s.inj = in
	s.ssd = ssd
	s.retry = pol.Defaults()
}

// NewQPairSim builds the simulator for one device and request size.
func NewQPairSim(qp QPairConfig, dev DeviceConfig, requestBytes float64) (*QPairSim, error) {
	qp = qp.defaults()
	dev = dev.defaults()
	if requestBytes <= 0 {
		return nil, fmt.Errorf("simio: non-positive request size")
	}
	if qp.Entries < 2 || qp.Entries&(qp.Entries-1) != 0 {
		return nil, fmt.Errorf("simio: ring entries %d not a power of two >= 2", qp.Entries)
	}
	if qp.DoorbellBatch < 1 || qp.DoorbellBatch > qp.Entries {
		return nil, fmt.Errorf("simio: doorbell batch %d out of [1,%d]", qp.DoorbellBatch, qp.Entries)
	}
	if dev.SeqBW <= 0 || dev.IOPS <= 0 || dev.Latency <= 0 {
		return nil, fmt.Errorf("simio: bad device %+v", dev.SSDSpec)
	}
	// Per-command device occupancy: the controller sustains IOPS across
	// Parallelism lanes, and bandwidth across the transfer path.
	occupancy := float64(dev.Parallelism) / dev.IOPS
	byBW := requestBytes / dev.SeqBW * float64(dev.Parallelism)
	if byBW > occupancy {
		occupancy = byBW
	}
	return &QPairSim{qp: qp, dev: dev, reqBytes: requestBytes, svcTime: occupancy}, nil
}

// QPairResult reports a request-granular run.
type QPairResult struct {
	// Time is when the last completion was consumed.
	Time float64
	// IOPS is requests / Time.
	IOPS float64
	// Bandwidth is bytes / Time.
	Bandwidth float64
	// AvgLatency is the mean submit→completion latency.
	AvgLatency float64
	// MaxOutstanding is the peak number of in-flight commands observed.
	MaxOutstanding int
	// DoorbellRings counts MMIO doorbell writes.
	DoorbellRings int
	// Retries counts transient-error retry attempts.
	Retries int64
	// Failed counts commands abandoned: retries exhausted, or the device
	// fail-stopped with work outstanding.
	Failed int64
}

type qpEvent struct {
	at   float64
	kind int   // 0 = submit-ready, 1 = completion, 2 = service-slot free, 3 = retry-ready
	n    int   // commands in this event (kind 0)
	id   int64 // command id (kinds 1 and 3)
}

type qpEventHeap []qpEvent

func (h qpEventHeap) Len() int           { return len(h) }
func (h qpEventHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h qpEventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *qpEventHeap) Push(x any)        { *h = append(*h, x.(qpEvent)) }
func (h *qpEventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run pushes totalRequests fixed-size reads through one queue pair and
// reports achieved IOPS/bandwidth/latency. The event loop models:
// submissions gated by ring occupancy and doorbell batching; the device
// draining the SQ into at most Parallelism concurrent service slots, each
// occupied for svcTime and completing after an additional Latency;
// completions freeing ring slots.
func (s *QPairSim) Run(totalRequests int64) (*QPairResult, error) {
	if totalRequests <= 0 {
		return nil, fmt.Errorf("simio: non-positive request count")
	}
	var (
		now         float64
		submitted   int64 // handed to the ring (doorbell rung)
		started     int64 // picked up by the controller
		completed   int64 // terminated: succeeded or permanently failed
		succeeded   int64
		retries     int64
		failed      int64
		inRing      int // occupied SQ entries (submitted, not completed)
		inService   int // controller slots busy
		pendingBell int // commands accumulated before the next doorbell
		rings       int
		latencySum  float64
		maxOut      int
		events      qpEventHeap
		submitTimes = make(map[int64]float64) // first service start per command
		attempts    = make(map[int64]int64)   // retries consumed per command
		retryQ      []int64                   // backed-off commands ready to re-enter service
	)
	failTime := math.Inf(1)
	if s.inj != nil {
		failTime = s.inj.SSDFailTime(s.ssd)
	}
	// Helper: ring the doorbell for pendingBell commands.
	ring := func(at float64) {
		if pendingBell == 0 {
			return
		}
		rings++
		heap.Push(&events, qpEvent{at: at + s.qp.DoorbellLatency, kind: 0, n: pendingBell})
		pendingBell = 0
	}
	// Seed: the GPU fills the ring as far as it can at t=0.
	for submitted < totalRequests && inRing < s.qp.Entries {
		submitted++
		inRing++
		pendingBell++
		if pendingBell == s.qp.DoorbellBatch {
			ring(now)
		}
	}
	ring(now)

	sqReady := int64(0) // commands visible to the controller
	var tryStart func(at float64)
	tryStart = func(at float64) {
		for inService < s.dev.Parallelism && (len(retryQ) > 0 || sqReady > started) {
			var id int64
			if len(retryQ) > 0 {
				// Retries re-enter service ahead of fresh commands; their
				// ring slot is still held.
				id = retryQ[0]
				retryQ = retryQ[1:]
			} else {
				id = started
				started++
				submitTimes[id] = at
			}
			inService++
			svc := s.svcTime
			if s.inj != nil {
				// A throttled controller stretches per-command occupancy.
				svc /= s.inj.SSDFactor(s.ssd, at)
			}
			// The controller slot frees after the service occupancy; the
			// completion posts after the additional device latency, which
			// overlaps with the next command's service.
			heap.Push(&events, qpEvent{at: at + svc, kind: 2, n: 1})
			heap.Push(&events, qpEvent{at: at + svc + s.dev.Latency, kind: 1, n: 1, id: id})
		}
		if out := int(started - completed); out > maxOut {
			maxOut = out
		}
	}

	for completed < totalRequests {
		if events.Len() == 0 {
			return nil, fmt.Errorf("simio: deadlock at t=%.6f (%d/%d complete)", now, completed, totalRequests)
		}
		ev := heap.Pop(&events).(qpEvent)
		if ev.at >= failTime {
			// Fail-stop: everything still outstanding (or never submitted)
			// times out at the policy deadline. Not an error — the caller
			// reads Failed and re-routes at a higher level.
			res := &QPairResult{
				Time:           failTime + s.retry.Timeout,
				MaxOutstanding: maxOut,
				DoorbellRings:  rings,
				Retries:        retries,
				Failed:         totalRequests - succeeded,
			}
			if res.Time > 0 {
				res.IOPS = float64(succeeded) / res.Time
				res.Bandwidth = res.IOPS * s.reqBytes
			}
			if succeeded > 0 {
				res.AvgLatency = latencySum / float64(succeeded)
			}
			return res, nil
		}
		now = ev.at
		switch ev.kind {
		case 0: // doorbell arrival: commands become visible
			sqReady += int64(ev.n)
			tryStart(now)
		case 2: // service slot freed
			inService--
			tryStart(now)
		case 3: // backoff elapsed: command ready to retry
			retryQ = append(retryQ, ev.id)
			tryStart(now)
		case 1: // completion
			id := ev.id
			if s.inj != nil {
				p := s.inj.ErrorProb(s.ssd, now)
				if p > 0 && s.inj.Bernoulli(qpairErrStream(s.ssd), trialKey(id, attempts[id]), p) {
					retries++
					attempts[id]++
					if attempts[id] <= int64(s.retry.MaxRetries) {
						heap.Push(&events, qpEvent{
							at:   now + s.retry.Backoff(int(attempts[id])-1),
							kind: 3,
							id:   id,
						})
						tryStart(now)
						continue
					}
					failed++ // retries exhausted: command abandoned
				} else {
					succeeded++
					latencySum += now - submitTimes[id]
				}
			} else {
				succeeded++
				latencySum += now - submitTimes[id]
			}
			completed++
			inRing--
			delete(submitTimes, id)
			delete(attempts, id)
			// Free ring slot: the GPU immediately submits the next
			// command if any remain.
			if submitted < totalRequests {
				submitted++
				inRing++
				pendingBell++
				if pendingBell == s.qp.DoorbellBatch || submitted == totalRequests {
					ring(now)
				}
			}
			tryStart(now)
		}
	}
	res := &QPairResult{
		Time:           now,
		MaxOutstanding: maxOut,
		DoorbellRings:  rings,
		Retries:        retries,
		Failed:         failed,
	}
	if now > 0 {
		res.IOPS = float64(succeeded) / now
		res.Bandwidth = res.IOPS * s.reqBytes
	}
	if succeeded > 0 {
		res.AvgLatency = latencySum / float64(succeeded)
	}
	return res, nil
}

// qpairErrStream namespaces the error-coin RNG stream per device so
// multi-device experiments draw independent sequences.
func qpairErrStream(ssd int) uint64 { return 0x9a1b<<16 | uint64(ssd) }

// trialKey makes each (command, attempt) pair a distinct RNG trial; the
// retry cap is far below 64, so attempts fit in the low bits.
func trialKey(id, attempt int64) uint64 { return uint64(id)<<6 | uint64(attempt) }

// QDCurve runs the simulator across queue depths (ring sizes) and returns
// the achieved IOPS per depth — the canonical NVMe microbenchmark curve.
func QDCurve(dev DeviceConfig, requestBytes float64, depths []int, requests int64) (map[int]float64, error) {
	out := make(map[int]float64, len(depths))
	for _, d := range depths {
		sim, err := NewQPairSim(QPairConfig{Entries: d}, dev, requestBytes)
		if err != nil {
			return nil, err
		}
		r, err := sim.Run(requests)
		if err != nil {
			return nil, err
		}
		out[d] = r.IOPS
	}
	return out, nil
}
