package simio

import (
	"math"
	"testing"
)

func dev(t *testing.T) DeviceConfig {
	t.Helper()
	return DeviceConfig{SSDSpec: P5510()}
}

func TestQPairSaturatesIOPS(t *testing.T) {
	// Deep ring, small requests: the device IOPS ceiling binds.
	sim, err := NewQPairSim(QPairConfig{Entries: 1024, DoorbellBatch: 32}, dev(t), 512)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Run(200_000)
	if err != nil {
		t.Fatal(err)
	}
	want := P5510().IOPS
	if r.IOPS < want*0.9 || r.IOPS > want*1.05 {
		t.Errorf("IOPS %.0f, want ~%.0f", r.IOPS, want)
	}
	if r.MaxOutstanding > 1024 {
		t.Errorf("outstanding %d exceeded ring", r.MaxOutstanding)
	}
}

func TestQPairBandwidthBound(t *testing.T) {
	// Large requests: sequential bandwidth binds instead of IOPS.
	sim, err := NewQPairSim(QPairConfig{Entries: 256, DoorbellBatch: 16}, dev(t), 128*1024)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Run(50_000)
	if err != nil {
		t.Fatal(err)
	}
	want := P5510().SeqBW
	if r.Bandwidth < want*0.9 || r.Bandwidth > want*1.05 {
		t.Errorf("bandwidth %.2f GiB/s, want ~%.2f", r.Bandwidth/(1<<30), want/(1<<30))
	}
}

func TestQPairShallowRingLatencyBound(t *testing.T) {
	// QD=2: throughput ≈ depth / latency, far below the ceiling.
	sim, err := NewQPairSim(QPairConfig{Entries: 2}, dev(t), 4096)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Run(20_000)
	if err != nil {
		t.Fatal(err)
	}
	bound := 2 / P5510().Latency // optimistic upper bound for QD=2
	if r.IOPS > bound*1.1 {
		t.Errorf("QD=2 IOPS %.0f exceeds latency bound %.0f", r.IOPS, bound)
	}
	if r.IOPS > P5510().IOPS/4 {
		t.Errorf("QD=2 IOPS %.0f should sit far below the device ceiling", r.IOPS)
	}
}

func TestQDCurveMonotone(t *testing.T) {
	depths := []int{2, 8, 32, 128, 512}
	curve, err := QDCurve(dev(t), 4096, depths, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(depths); i++ {
		lo, hi := curve[depths[i-1]], curve[depths[i]]
		if hi < lo*0.99 {
			t.Errorf("IOPS fell with depth: qd%d=%.0f > qd%d=%.0f",
				depths[i-1], lo, depths[i], hi)
		}
	}
	// Deep end approaches the ceiling; shallow end does not.
	if curve[512] < P5510().IOPS*0.85 {
		t.Errorf("qd512 %.0f below ceiling", curve[512])
	}
	if curve[2] > P5510().IOPS*0.5 {
		t.Errorf("qd2 %.0f suspiciously near ceiling", curve[2])
	}
}

func TestDoorbellBatchingReducesRings(t *testing.T) {
	run := func(batch int) *QPairResult {
		sim, err := NewQPairSim(QPairConfig{Entries: 256, DoorbellBatch: batch}, dev(t), 4096)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sim.Run(30_000)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	one := run(1)
	batched := run(32)
	if batched.DoorbellRings >= one.DoorbellRings/8 {
		t.Errorf("batching barely reduced rings: %d vs %d", batched.DoorbellRings, one.DoorbellRings)
	}
	// Throughput should not collapse from batching (it amortizes MMIO).
	if batched.IOPS < one.IOPS*0.8 {
		t.Errorf("batching cost too much throughput: %.0f vs %.0f", batched.IOPS, one.IOPS)
	}
}

func TestQPairLatencyAccounting(t *testing.T) {
	sim, err := NewQPairSim(QPairConfig{Entries: 4}, dev(t), 4096)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Run(5_000)
	if err != nil {
		t.Fatal(err)
	}
	// Every command pays at least the device latency.
	if r.AvgLatency < P5510().Latency {
		t.Errorf("avg latency %.2e below device latency %.2e", r.AvgLatency, P5510().Latency)
	}
	if math.IsNaN(r.AvgLatency) || math.IsInf(r.AvgLatency, 0) {
		t.Error("latency accounting broken")
	}
}

func TestQPairConfigErrors(t *testing.T) {
	d := dev(t)
	if _, err := NewQPairSim(QPairConfig{}, d, 0); err == nil {
		t.Error("zero request size accepted")
	}
	if _, err := NewQPairSim(QPairConfig{Entries: 3}, d, 4096); err == nil {
		t.Error("non-power-of-two ring accepted")
	}
	if _, err := NewQPairSim(QPairConfig{Entries: 8, DoorbellBatch: 9}, d, 4096); err == nil {
		t.Error("batch > ring accepted")
	}
	bad := d
	bad.SeqBW = 0
	if _, err := NewQPairSim(QPairConfig{}, bad, 4096); err == nil {
		t.Error("zero-bandwidth device accepted")
	}
	sim, err := NewQPairSim(QPairConfig{}, d, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(0); err == nil {
		t.Error("zero requests accepted")
	}
}

func TestFluidAndEventModelsAgree(t *testing.T) {
	// At deep queue depth the request-granular model should land near the
	// fluid Stack's effective-rate prediction.
	d := dev(t)
	sim, err := NewQPairSim(QPairConfig{Entries: 1024, DoorbellBatch: 32}, d, 4096)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Run(200_000)
	if err != nil {
		t.Fatal(err)
	}
	fluid := d.DeviceRate(4096, 1)
	if rel := math.Abs(r.IOPS-fluid) / fluid; rel > 0.1 {
		t.Errorf("event model %.0f IOPS vs fluid %.0f (%.1f%% apart)", r.IOPS, fluid, rel*100)
	}
}
