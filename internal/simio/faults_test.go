package simio

import (
	"math"
	"testing"

	"moment/internal/faults"
)

func inj(t *testing.T, s *faults.Schedule) *faults.Injector {
	t.Helper()
	in, err := faults.NewInjector(s)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// simpleStack returns a stack with round-number device parameters so fault
// timelines can be computed by hand: 1000 req/s per device (BW-bound),
// deep queues, 1 KiB requests.
func simpleStack(t *testing.T, nssd int) *Stack {
	t.Helper()
	specs := make([]SSDSpec, nssd)
	for i := range specs {
		specs[i] = SSDSpec{SeqBW: 1024 * 1000, IOPS: 2000, Latency: 1e-3}
	}
	s, err := New(Config{SSDs: specs, QueueDepth: 64, RequestBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStackThrottleStretchesRun(t *testing.T) {
	// 1000 requests at 1000 req/s, throttled to 50% from t=0.5 for 0.5s:
	// 500 done by 0.5, 250 more by 1.0, remaining 250 take 0.25s → 1.25s
	// (+ latency tail).
	s := simpleStack(t, 1)
	s.AttachGPU(0, []int{0})
	s.SetFaults(inj(t, &faults.Schedule{Events: []faults.Event{
		faults.ThrottleSSD(0, 0.5, 0.5, 0.5),
	}}), faults.RetryPolicy{})
	res, err := s.Run(map[[2]int]int64{{0, 0}: 1000})
	if err != nil {
		t.Fatal(err)
	}
	want := 1.25 + 1e-3
	if math.Abs(res.Time-want) > 1e-6 {
		t.Errorf("time %v, want %v", res.Time, want)
	}
	if res.Retries != 0 || res.Dropped != 0 {
		t.Errorf("clean throttle should not retry/drop: %+v", res)
	}
}

func TestStackFailStopDropsAndDrains(t *testing.T) {
	// SSD 1 dies at t=0.5 with 500 of its 1000 requests left. Those drop;
	// the survivor finishes its own work; makespan includes the 1s drain
	// timeout of the dead queue (0.5 + 1.0 = 1.5 > survivor's 1.001).
	s := simpleStack(t, 2)
	s.AttachGPU(0, []int{0, 1})
	s.SetFaults(inj(t, &faults.Schedule{Events: []faults.Event{
		faults.Kill(1, 0.5),
	}}), faults.RetryPolicy{})
	res, err := s.Run(map[[2]int]int64{{0, 0}: 1000, {0, 1}: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Dropped-500) > 1e-6 {
		t.Errorf("dropped %v requests, want 500", res.Dropped)
	}
	if math.Abs(res.Time-1.5) > 1e-6 {
		t.Errorf("time %v, want drain-dominated 1.5", res.Time)
	}
	// The healthy device still delivered everything it was asked for.
	wantBytes := 1000*1024 + 500*1024.0
	if math.Abs(res.PerGPUBytes[0]-wantBytes) > 1 {
		t.Errorf("delivered %v, want %v", res.PerGPUBytes[0], wantBytes)
	}
}

func TestStackErrorBurstCostsRetries(t *testing.T) {
	// 10% errors for the whole run: goodput scales by 0.9, and the device
	// spent served*p/(1-p) extra attempts on retries.
	s := simpleStack(t, 1)
	s.AttachGPU(0, []int{0})
	s.SetFaults(inj(t, &faults.Schedule{Events: []faults.Event{
		faults.Burst(0, 0, 0.1, 0),
	}}), faults.RetryPolicy{})
	res, err := s.Run(map[[2]int]int64{{0, 0}: 900})
	if err != nil {
		t.Fatal(err)
	}
	want := 900/(1000*0.9) + 1e-3
	if math.Abs(res.Time-want) > 1e-6 {
		t.Errorf("time %v, want %v", res.Time, want)
	}
	wantRetries := 900 * 0.1 / 0.9
	if math.Abs(res.Retries-wantRetries) > 1e-6 {
		t.Errorf("retries %v, want %v", res.Retries, wantRetries)
	}
}

func TestStackEmptyScheduleMatchesNoInjector(t *testing.T) {
	run := func(withInjector bool) *Result {
		s := cfg2(t)
		s.AttachGPU(0, []int{0, 1})
		s.AttachGPU(1, []int{1})
		if withInjector {
			s.SetFaults(inj(t, &faults.Schedule{}), faults.RetryPolicy{})
		}
		res, err := s.Run(map[[2]int]int64{{0, 0}: 100_000, {0, 1}: 50_000, {1, 1}: 75_000})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, faulty := run(false), run(true)
	if plain.Time != faulty.Time {
		t.Errorf("time drifted: %v vs %v", plain.Time, faulty.Time)
	}
	for gpu, b := range plain.PerGPUBytes {
		if faulty.PerGPUBytes[gpu] != b {
			t.Errorf("gpu %d bytes drifted: %v vs %v", gpu, b, faulty.PerGPUBytes[gpu])
		}
	}
	for i := range plain.PerSSDBandwidth {
		if plain.PerSSDBandwidth[i] != faulty.PerSSDBandwidth[i] {
			t.Errorf("ssd %d bandwidth drifted", i)
		}
	}
	if faulty.Retries != 0 || faulty.Dropped != 0 {
		t.Errorf("empty schedule produced faults: %+v", faulty)
	}
}

func TestQPairFailStopDrains(t *testing.T) {
	sim, err := NewQPairSim(QPairConfig{}, DeviceConfig{SSDSpec: P5510()}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	pol := faults.RetryPolicy{}.Defaults()
	sim.SetFaults(inj(t, &faults.Schedule{Events: []faults.Event{
		faults.Kill(0, 0.01),
	}}), 0, pol)
	res, err := sim.Run(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Time-(0.01+pol.Timeout)) > 1e-9 {
		t.Errorf("drain time %v, want %v", res.Time, 0.01+pol.Timeout)
	}
	if res.Failed == 0 {
		t.Error("fail-stop with work outstanding should report failures")
	}
	if res.Failed == 100_000 {
		t.Error("some commands should have completed before the failure")
	}
}

func TestQPairRetriesDeterministic(t *testing.T) {
	run := func() *QPairResult {
		sim, err := NewQPairSim(QPairConfig{}, DeviceConfig{SSDSpec: P5510()}, 4096)
		if err != nil {
			t.Fatal(err)
		}
		sim.SetFaults(inj(t, &faults.Schedule{Seed: 11, Events: []faults.Event{
			faults.Burst(0, 0, 0.05, 0),
		}}), 0, faults.RetryPolicy{})
		res, err := sim.Run(20_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if *a != *b {
		t.Errorf("same seed must reproduce identical results:\n%+v\n%+v", a, b)
	}
	if a.Retries == 0 {
		t.Error("5% error burst should trigger retries")
	}
	// ~5% of attempts fail; with 4 retries permanent failure needs 5
	// consecutive errors (p^5 ~ 3e-7), so effectively everything lands.
	if a.Failed != 0 {
		t.Errorf("%d commands failed permanently under transient errors", a.Failed)
	}
	wantRetries := 0.05 * 20_000
	if ratio := float64(a.Retries) / wantRetries; ratio < 0.7 || ratio > 1.3 {
		t.Errorf("retries %d, want ~%v", a.Retries, wantRetries)
	}
}

func TestQPairEmptyScheduleMatchesNoInjector(t *testing.T) {
	run := func(withInjector bool) *QPairResult {
		sim, err := NewQPairSim(QPairConfig{}, DeviceConfig{SSDSpec: P5510()}, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if withInjector {
			sim.SetFaults(inj(t, &faults.Schedule{}), 0, faults.RetryPolicy{})
		}
		res, err := sim.Run(50_000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, faulty := run(false), run(true)
	if *plain != *faulty {
		t.Errorf("empty schedule drifted:\n%+v\n%+v", plain, faulty)
	}
}

// TestQPairConvergesToEffectiveBandwidth is the zero-fault property test:
// at saturating queue depth the request-granular model's throughput must
// land within 5% of the analytic SSDSpec.EffectiveBandwidth across request
// sizes and ring depths.
func TestQPairConvergesToEffectiveBandwidth(t *testing.T) {
	dev := DeviceConfig{SSDSpec: P5510()}
	cases := []struct {
		reqBytes float64
		entries  int
	}{
		{512, 256},
		{4096, 256},
		{4096, 1024},
		{16384, 256},
		{65536, 128},
	}
	for _, c := range cases {
		sim, err := NewQPairSim(QPairConfig{Entries: c.entries}, dev, c.reqBytes)
		if err != nil {
			t.Fatal(err)
		}
		// Attach a fault-free injector: the property must hold through the
		// fault-handling code path, not just around it.
		sim.SetFaults(inj(t, &faults.Schedule{}), 0, faults.RetryPolicy{})
		res, err := sim.Run(200_000)
		if err != nil {
			t.Fatal(err)
		}
		want := dev.EffectiveBandwidth(c.reqBytes, 1)
		if rel := math.Abs(res.Bandwidth-want) / want; rel > 0.05 {
			t.Errorf("req=%v entries=%d: bandwidth %.3g, want %.3g (off %.1f%%)",
				c.reqBytes, c.entries, res.Bandwidth, want, rel*100)
		}
	}
}
