// Package simio models Moment's multi-GPU GPU-initiated disk I/O stack
// (paper §3.1): every GPU owns NVMe submission/completion queue pairs on
// the SSDs it reads, submits fixed-size feature-page requests, and the
// device serves all its queue pairs fairly under an IOPS ceiling and a
// sequential-bandwidth ceiling. Unlike M-GIDS, which statically partitions
// SSDs across GPUs, this stack lets any number of GPUs share any SSD —
// the property Moment's data placement relies on.
//
// The simulation is fluid and event-driven: per queue pair, request
// throughput is bounded by queueDepth/latency (in-flight limit) and by the
// pair's fair share of the device rate min(IOPS, BW/requestBytes); rates
// are recomputed whenever a pair drains.
package simio

import (
	"fmt"
	"math"

	"moment/internal/faults"
	"moment/internal/obs"
)

// SSDSpec describes one NVMe device.
type SSDSpec struct {
	SeqBW   float64 // bytes/second sequential read ceiling
	IOPS    float64 // random-read requests/second ceiling
	Latency float64 // per-request service latency (seconds)
}

// DeviceRate returns the request throughput ceiling for a request size,
// optionally boosted by a coalescing factor (adjacent feature rows merged
// into one NVMe command by the GPU stack, as GIDS/BaM do).
func (s SSDSpec) DeviceRate(reqBytes, coalesce float64) float64 {
	if reqBytes <= 0 {
		return 0
	}
	if coalesce < 1 {
		coalesce = 1
	}
	byRate := s.SeqBW / reqBytes
	byIOPS := s.IOPS * coalesce
	return math.Min(byRate, byIOPS)
}

// EffectiveBandwidth is DeviceRate expressed in bytes/second.
func (s SSDSpec) EffectiveBandwidth(reqBytes, coalesce float64) float64 {
	return s.DeviceRate(reqBytes, coalesce) * reqBytes
}

// Config parameterizes a Stack.
type Config struct {
	SSDs         []SSDSpec
	QueueDepth   int     // submission-queue depth per (GPU, SSD) pair
	RequestBytes float64 // bytes per request (one feature page)
	Coalesce     float64 // command coalescing factor (>=1)
}

// Stack is a multi-GPU I/O stack over shared SSDs.
type Stack struct {
	cfg   Config
	pairs map[[2]int]bool // (gpu, ssd) -> attached
	gpus  map[int]bool
	obsrv *obs.Observer    // nil = no instrumentation
	inj   *faults.Injector // nil = perfect hardware
	retry faults.RetryPolicy
}

// SetObserver attaches an observer so each Run reports a span plus queue
// and request metrics. Nil detaches.
func (s *Stack) SetObserver(o *obs.Observer) { s.obsrv = o }

// SetFaults attaches a fault injector and the retry policy governing how
// the stack reacts: transient errors are retried (costing device
// occupancy, so goodput scales by 1-p), throttles scale device rates, and
// fail-stop devices are drained — their outstanding requests are dropped
// after the policy timeout and reported in Result.Dropped. A nil injector
// restores the perfect machine.
func (s *Stack) SetFaults(in *faults.Injector, pol faults.RetryPolicy) {
	s.inj = in
	s.retry = pol.Defaults()
}

// New validates the configuration and returns an empty stack.
func New(cfg Config) (*Stack, error) {
	if len(cfg.SSDs) == 0 {
		return nil, fmt.Errorf("simio: no SSDs")
	}
	for i, s := range cfg.SSDs {
		if s.SeqBW <= 0 || s.IOPS <= 0 || s.Latency <= 0 {
			return nil, fmt.Errorf("simio: ssd %d has non-positive parameters %+v", i, s)
		}
	}
	if cfg.QueueDepth <= 0 {
		return nil, fmt.Errorf("simio: non-positive queue depth")
	}
	if cfg.RequestBytes <= 0 {
		return nil, fmt.Errorf("simio: non-positive request size")
	}
	if cfg.Coalesce == 0 {
		cfg.Coalesce = 1
	}
	if cfg.Coalesce < 1 {
		return nil, fmt.Errorf("simio: coalesce factor %v < 1", cfg.Coalesce)
	}
	return &Stack{cfg: cfg, pairs: map[[2]int]bool{}, gpus: map[int]bool{}}, nil
}

// AttachGPU creates queue pairs between a GPU and the given SSDs.
func (s *Stack) AttachGPU(gpu int, ssds []int) error {
	if gpu < 0 {
		return fmt.Errorf("simio: negative gpu id")
	}
	if len(ssds) == 0 {
		return fmt.Errorf("simio: gpu %d attached to no SSDs", gpu)
	}
	for _, d := range ssds {
		if d < 0 || d >= len(s.cfg.SSDs) {
			return fmt.Errorf("simio: ssd %d out of range", d)
		}
		s.pairs[[2]int{gpu, d}] = true
	}
	s.gpus[gpu] = true
	return nil
}

// Result reports a completed I/O workload.
type Result struct {
	// Time is the makespan: when the last request completes (including
	// the drain timeout of any fail-stopped device).
	Time float64
	// PerGPUBytes is the bytes delivered to each GPU id present.
	PerGPUBytes map[int]float64
	// PerSSDBandwidth is each SSD's average achieved bytes/second
	// over the makespan.
	PerSSDBandwidth []float64
	// Retries counts transient-error retry attempts (zero without an
	// injected error burst).
	Retries float64
	// Dropped counts requests abandoned because their device
	// fail-stopped before serving them.
	Dropped float64
}

// Run executes a workload given as request counts per (gpu, ssd) queue
// pair. All queues start at t=0; the fluid simulation recomputes fair
// shares at every queue-drain event.
func (s *Stack) Run(requests map[[2]int]int64) (*Result, error) {
	type queue struct {
		gpu, ssd int
		remain   float64 // requests outstanding
		rate     float64
	}
	o := s.obsrv
	sp := o.Begin("simio.run")
	sp.SetInt("queue_depth", s.cfg.QueueDepth)
	defer sp.End()
	var queues []*queue
	var totalReq int64
	for key, cnt := range requests {
		if cnt < 0 {
			return nil, fmt.Errorf("simio: negative request count for %v", key)
		}
		if cnt == 0 {
			continue
		}
		if !s.pairs[key] {
			return nil, fmt.Errorf("simio: no queue pair for gpu %d on ssd %d", key[0], key[1])
		}
		queues = append(queues, &queue{gpu: key[0], ssd: key[1], remain: float64(cnt)})
		totalReq += cnt
	}
	if o != nil {
		sp.SetInt("queue_pairs", len(queues))
		o.Gauge("simio_queue_depth").Set(float64(s.cfg.QueueDepth))
		o.Gauge("simio_active_queue_pairs").Set(float64(len(queues)))
		o.Counter("simio_requests_total").Add(float64(totalReq))
	}
	res := &Result{
		PerGPUBytes:     map[int]float64{},
		PerSSDBandwidth: make([]float64, len(s.cfg.SSDs)),
	}
	if len(queues) == 0 {
		return res, nil
	}

	// Per-pair in-flight cap: queueDepth requests every Latency seconds.
	pairCap := func(ssd int) float64 {
		return float64(s.cfg.QueueDepth) / s.cfg.SSDs[ssd].Latency
	}
	deviceRate := make([]float64, len(s.cfg.SSDs))
	for i, spec := range s.cfg.SSDs {
		deviceRate[i] = spec.DeviceRate(s.cfg.RequestBytes, s.cfg.Coalesce)
	}

	ssdBytes := make([]float64, len(s.cfg.SSDs))
	now := 0.0
	drainUntil := 0.0 // when the last fail-stop drain completes
	for len(queues) > 0 {
		// Drain queues whose device has fail-stopped: their outstanding
		// requests time out and are dropped (trainsim re-routes at a
		// higher level; the raw stack just reports the loss).
		if s.inj != nil {
			live := queues[:0]
			for _, q := range queues {
				if s.inj.SSDFailed(q.ssd, now) {
					res.Dropped += q.remain
					if end := now + s.retry.Timeout; end > drainUntil {
						drainUntil = end
					}
					continue
				}
				live = append(live, q)
			}
			queues = live
			if len(queues) == 0 {
				break
			}
		}
		// Water-fill each device across its active queues, honoring the
		// per-pair in-flight cap.
		byDev := map[int][]*queue{}
		for _, q := range queues {
			byDev[q.ssd] = append(byDev[q.ssd], q)
		}
		errProb := map[int]float64{}
		for dev, qs := range byDev {
			residual := deviceRate[dev]
			if s.inj != nil {
				// Throttles scale the service rate; transient errors eat
				// goodput because retries re-occupy the device.
				p := s.inj.ErrorProb(dev, now)
				errProb[dev] = p
				residual *= s.inj.SSDFactor(dev, now) * faults.GoodputFactor(p)
			}
			capR := pairCap(dev)
			// Queues capped below the fair share are satisfied first.
			unfilled := append([]*queue(nil), qs...)
			for len(unfilled) > 0 {
				share := residual / float64(len(unfilled))
				progressed := false
				rest := unfilled[:0]
				for _, q := range unfilled {
					if capR <= share {
						q.rate = capR
						residual -= capR
						progressed = true
					} else {
						rest = append(rest, q)
					}
				}
				if !progressed {
					for _, q := range rest {
						q.rate = share
					}
					residual = 0
					rest = rest[:0]
				}
				unfilled = rest
			}
		}
		// Advance to the earliest queue drain or fault boundary.
		dt := math.Inf(1)
		for _, q := range queues {
			if q.rate <= 0 {
				return nil, fmt.Errorf("simio: queue (%d,%d) starved", q.gpu, q.ssd)
			}
			if t := q.remain / q.rate; t < dt {
				dt = t
			}
		}
		if s.inj != nil {
			if b := s.inj.NextChange(now) - now; b < dt {
				dt = b
			}
		}
		for _, q := range queues {
			served := q.rate * dt
			if served > q.remain {
				served = q.remain
			}
			q.remain -= served
			bytes := served * s.cfg.RequestBytes
			res.PerGPUBytes[q.gpu] += bytes
			ssdBytes[q.ssd] += bytes
			if p := errProb[q.ssd]; p > 0 {
				// served is goodput; each success took 1/(1-p) attempts.
				res.Retries += served * p / (1 - p)
			}
		}
		now += dt
		live := queues[:0]
		for _, q := range queues {
			if q.remain > 1e-9 {
				live = append(live, q)
			}
		}
		queues = live
	}
	// Tail latency of the final completions.
	maxLat := 0.0
	for i := range s.cfg.SSDs {
		if ssdBytes[i] > 0 && s.cfg.SSDs[i].Latency > maxLat {
			maxLat = s.cfg.SSDs[i].Latency
		}
	}
	res.Time = now + maxLat
	if drainUntil > res.Time {
		res.Time = drainUntil
	}
	for i := range ssdBytes {
		if res.Time > 0 {
			res.PerSSDBandwidth[i] = ssdBytes[i] / res.Time
		}
	}
	if o != nil {
		sp.SetFloat("drain_seconds", res.Time)
		o.Histogram("simio_drain_seconds").Observe(res.Time)
		if res.Retries > 0 {
			o.Counter("simio_retries_total").Add(res.Retries)
		}
		if res.Dropped > 0 {
			o.Counter("simio_dropped_requests_total").Add(res.Dropped)
		}
		for i, bw := range res.PerSSDBandwidth {
			o.Gauge("simio_ssd_bandwidth_bytes", obs.L("ssd", fmt.Sprintf("ssd%d", i))).Set(bw)
		}
	}
	return res, nil
}

// P5510 returns the Intel P5510 device model used throughout the
// evaluation: ~6 GiB/s effective read bandwidth, ~930K IOPS, ~90µs read
// latency.
func P5510() SSDSpec {
	return SSDSpec{SeqBW: 6 * (1 << 30), IOPS: 930_000, Latency: 90e-6}
}
