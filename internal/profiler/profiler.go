// Package profiler implements the automatic module's bandwidth-profiling
// step (§3.1): it "measures" the throughput of every link class by driving
// synthetic transfers through the fabric simulator, exactly as the real
// system measures PCIe, QPI and SSD rates with microbenchmarks before
// building the max-flow model. On real hardware this package would wrap
// fio/nvme-cli/p2p-bandwidth runs; here the measured values come from the
// simulated fabric, which keeps the downstream pipeline honest (the
// planner only ever consumes *measured* numbers, never spec constants).
package profiler

import (
	"fmt"
	"sort"
	"strings"

	"moment/internal/obs"
	"moment/internal/simio"
	"moment/internal/simnet"
	"moment/internal/topology"
	"moment/internal/units"
)

// Measurement is one profiled rate.
type Measurement struct {
	Name string
	Rate units.Bandwidth
}

// Profile is the full bandwidth table of a machine.
type Profile struct {
	Machine string
	// SSDRead is the effective per-device read rate under the GPU I/O
	// stack's request size and coalescing.
	SSDRead units.Bandwidth
	// SSDAggregate is the combined rate of all SSDs driven concurrently.
	SSDAggregate units.Bandwidth
	// Links holds per-link-class measurements (x16 slots, uplinks, QPI,
	// DRAM egress, NVLink).
	Links []Measurement
}

// Options tunes the profiling runs.
type Options struct {
	// RequestBytes is the I/O request size (default 4096, one feature
	// page of a 1024-dim float32 row).
	RequestBytes float64
	// Coalesce is the command-coalescing factor of the GPU I/O stack
	// (default 2).
	Coalesce float64
	// QueueDepth per (GPU, SSD) queue pair (default 256).
	QueueDepth int
	// Observer receives spans and metrics for the profiling runs (nil
	// falls back to the process default observer).
	Observer *obs.Observer
}

func (o Options) defaults() Options {
	if o.RequestBytes == 0 {
		o.RequestBytes = 4096
	}
	if o.Coalesce == 0 {
		o.Coalesce = 2
	}
	if o.QueueDepth == 0 {
		o.QueueDepth = 256
	}
	return o
}

// Measure profiles machine m. SSD rates come from the queue-pair I/O
// stack simulation; link rates from single-flow probes over the fabric.
func Measure(m *topology.Machine, opt Options) (*Profile, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	opt = opt.defaults()
	o := obs.Active(opt.Observer)
	sp := o.Begin("profile")
	sp.SetStr("machine", m.Name)
	defer sp.End()
	opt.Observer = o.In(sp) // ssdBench nests its simio spans here
	p := &Profile{Machine: m.Name}

	// --- SSD microbenchmark (per device, then all devices together). ---
	if m.NumSSDs > 0 {
		spec := simio.SSDSpec{
			SeqBW:   float64(m.SSDBW),
			IOPS:    m.SSDIOPS,
			Latency: 90e-6,
		}
		single, err := ssdBench([]simio.SSDSpec{spec}, 1, opt)
		if err != nil {
			return nil, err
		}
		p.SSDRead = single
		specs := make([]simio.SSDSpec, m.NumSSDs)
		for i := range specs {
			specs[i] = spec
		}
		gpus := m.NumGPUs
		if gpus == 0 {
			gpus = 1
		}
		agg, err := ssdBench(specs, gpus, opt)
		if err != nil {
			return nil, err
		}
		p.SSDAggregate = agg
	}

	// --- Link probes: one saturating flow per link class. ---
	for _, pt := range m.Points {
		if pt.Kind == topology.Switch {
			rate, err := probeLink(float64(pt.UplinkBW))
			if err != nil {
				return nil, err
			}
			p.Links = append(p.Links, Measurement{
				Name: fmt.Sprintf("uplink:%s-%s", pt.Parent, pt.ID),
				Rate: rate,
			})
		}
	}
	rcs := m.RootComplexes()
	if len(rcs) > 1 {
		rate, err := probeLink(float64(m.QPIBW))
		if err != nil {
			return nil, err
		}
		p.Links = append(p.Links, Measurement{Name: "qpi", Rate: rate})
	}
	x16, err := probeLink(float64(m.PCIeX16))
	if err != nil {
		return nil, err
	}
	p.Links = append(p.Links, Measurement{Name: "pcie-x16", Rate: x16})
	dram, err := probeLink(float64(m.DRAMBW))
	if err != nil {
		return nil, err
	}
	p.Links = append(p.Links, Measurement{Name: "dram-egress", Rate: dram})
	if len(m.NVLinks) > 0 {
		nvl, err := probeLink(float64(m.NVLinkBW))
		if err != nil {
			return nil, err
		}
		p.Links = append(p.Links, Measurement{Name: "nvlink", Rate: nvl})
	}
	sort.Slice(p.Links, func(i, j int) bool { return p.Links[i].Name < p.Links[j].Name })
	if o != nil {
		o.Gauge("profiler_ssd_read_bytes_per_second").Set(float64(p.SSDRead))
		o.Gauge("profiler_ssd_aggregate_bytes_per_second").Set(float64(p.SSDAggregate))
		for _, l := range p.Links {
			o.Gauge("profiler_link_bytes_per_second", obs.L("link", l.Name)).Set(float64(l.Rate))
		}
	}
	return p, nil
}

// ssdBench drives a saturating random-read workload through the queue-pair
// stack and reports aggregate achieved bandwidth.
func ssdBench(specs []simio.SSDSpec, gpus int, opt Options) (units.Bandwidth, error) {
	stack, err := simio.New(simio.Config{
		SSDs:         specs,
		QueueDepth:   opt.QueueDepth,
		RequestBytes: opt.RequestBytes,
		Coalesce:     opt.Coalesce,
	})
	if err != nil {
		return 0, err
	}
	stack.SetObserver(opt.Observer)
	ids := make([]int, len(specs))
	for i := range ids {
		ids[i] = i
	}
	reqs := map[[2]int]int64{}
	const perPair = 200_000
	for g := 0; g < gpus; g++ {
		if err := stack.AttachGPU(g, ids); err != nil {
			return 0, err
		}
		for _, d := range ids {
			reqs[[2]int{g, d}] = perPair
		}
	}
	res, err := stack.Run(reqs)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for _, bw := range res.PerSSDBandwidth {
		total += bw
	}
	return units.Bandwidth(total), nil
}

// probeLink saturates a single simulated link and reports the achieved
// rate (trivially the configured rate under the fluid model; the probe
// keeps the measurement path uniform with real profiling).
func probeLink(rate float64) (units.Bandwidth, error) {
	net := simnet.New()
	l, err := net.AddLink("probe", rate)
	if err != nil {
		return 0, err
	}
	const bytes = 64 << 30
	if _, err := net.AddFlow("probe", []simnet.LinkID{l}, bytes, 0); err != nil {
		return 0, err
	}
	res, err := net.Run()
	if err != nil {
		return 0, err
	}
	if res.Makespan <= 0 {
		return 0, fmt.Errorf("profiler: degenerate probe")
	}
	return units.Bandwidth(bytes / res.Makespan), nil
}

// String renders the profile as the automatic module prints it.
func (p *Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine %s bandwidth profile:\n", p.Machine)
	fmt.Fprintf(&b, "  ssd-read       %v\n", p.SSDRead)
	fmt.Fprintf(&b, "  ssd-aggregate  %v\n", p.SSDAggregate)
	for _, m := range p.Links {
		fmt.Fprintf(&b, "  %-14s %v\n", m.Name, m.Rate)
	}
	return b.String()
}
