package profiler

import (
	"math"
	"strings"
	"testing"

	"moment/internal/topology"
)

func TestMeasureMachineA(t *testing.T) {
	p, err := Measure(topology.MachineA(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Per-SSD effective read ~6 GiB/s; aggregate ~48 GiB/s (§2.2).
	if g := p.SSDRead.GiBpsf(); g < 5.5 || g > 6.5 {
		t.Errorf("ssd read %.2f GiB/s, want ~6", g)
	}
	if g := p.SSDAggregate.GiBpsf(); g < 45 || g > 49 {
		t.Errorf("ssd aggregate %.2f GiB/s, want ~48", g)
	}
	byName := map[string]float64{}
	for _, m := range p.Links {
		byName[m.Name] = m.Rate.GiBpsf()
	}
	if math.Abs(byName["pcie-x16"]-20) > 0.5 {
		t.Errorf("x16 measured %.1f, want ~20", byName["pcie-x16"])
	}
	if math.Abs(byName["qpi"]-20) > 0.5 {
		t.Errorf("qpi measured %.1f, want ~20", byName["qpi"])
	}
	if _, ok := byName["uplink:rc0-sw0"]; !ok {
		t.Errorf("missing uplink measurement: %v", byName)
	}
	s := p.String()
	for _, want := range []string{"machine A", "ssd-aggregate", "qpi"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q", want)
		}
	}
}

func TestMeasureWithNVLink(t *testing.T) {
	m := topology.MachineA().WithNVLink(topology.NVLinkBridgeBW,
		topology.NVLinkPair{A: 0, B: 1})
	p, err := Measure(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range p.Links {
		if l.Name == "nvlink" {
			found = true
			if math.Abs(l.Rate.GiBpsf()-50) > 1 {
				t.Errorf("nvlink %.1f, want ~50", l.Rate.GiBpsf())
			}
		}
	}
	if !found {
		t.Error("nvlink not profiled")
	}
}

func TestMeasureMachineCNoSSDs(t *testing.T) {
	p, err := Measure(topology.MachineC(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.SSDRead != 0 || p.SSDAggregate != 0 {
		t.Error("machine C has no SSDs to profile")
	}
}

func TestMeasureInvalidMachine(t *testing.T) {
	m := topology.MachineA()
	m.Points = nil
	if _, err := Measure(m, Options{}); err == nil {
		t.Error("invalid machine accepted")
	}
}
