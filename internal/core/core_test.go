package core

import (
	"strings"
	"testing"

	"moment/internal/gnn"
	"moment/internal/graph"
	"moment/internal/topology"
	"moment/internal/trainsim"
)

func workload(t *testing.T, name string) trainsim.Workload {
	t.Helper()
	d, err := graph.DatasetByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return trainsim.Workload{Dataset: d, Model: gnn.KindSAGE}
}

func TestCoOptimizeMachineB(t *testing.T) {
	plan, err := CoOptimize(Input{Machine: topology.MachineB(), Workload: workload(t, "IG")})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Placement == nil || plan.Epoch == nil || plan.DataPlacement == nil {
		t.Fatal("incomplete plan")
	}
	// Machine B's cascade is asymmetric, so reduction may be a no-op —
	// but it must never inflate the candidate set.
	if plan.Enumerated < plan.Evaluated {
		t.Errorf("evaluated %d > enumerated %d", plan.Evaluated, plan.Enumerated)
	}
	if plan.PredictedIO <= 0 {
		t.Errorf("predicted IO %v", plan.PredictedIO)
	}
	// The chosen placement must beat (or match) every classic layout when
	// simulated end to end.
	for _, l := range []topology.ClassicLayout{topology.LayoutA, topology.LayoutB, topology.LayoutC, topology.LayoutD} {
		p, err := topology.ClassicPlacement(topology.MachineB(), l)
		if err != nil {
			t.Fatal(err)
		}
		r, err := trainsim.SimulateEpoch(trainsim.Config{
			Machine: topology.MachineB(), Placement: p, Workload: workload(t, "IG")})
		if err != nil {
			t.Fatal(err)
		}
		if plan.Epoch.EpochTime.Sec() > r.EpochTime.Sec()*1.02 {
			t.Errorf("plan epoch %.2fs worse than classic %v %.2fs",
				plan.Epoch.EpochTime.Sec(), l, r.EpochTime.Sec())
		}
	}
	if plan.PlanningTime <= 0 {
		t.Error("no planning time recorded")
	}
}

func TestCoOptimizeMatchesPublishedPlacementShape(t *testing.T) {
	// Fig 7: the optimal B placement spreads GPUs onto the root complexes
	// and keeps SSDs split between the front board and the switch bays.
	plan, err := CoOptimize(Input{Machine: topology.MachineB(), Workload: workload(t, "IG")})
	if err != nil {
		t.Fatal(err)
	}
	gpus, _ := plan.Placement.Counts()
	onRCs := gpus["rc0"] + gpus["rc1"]
	if onRCs == 0 {
		t.Errorf("optimal placement uses no root-complex slots: %v", plan.Placement)
	}
}

func TestCoOptimizeReport(t *testing.T) {
	plan, err := CoOptimize(Input{Machine: topology.MachineA(), Workload: workload(t, "PA")})
	if err != nil {
		t.Fatal(err)
	}
	rep := plan.Report()
	for _, want := range []string{
		"automatic module", "placement search", "selected placement",
		"predicted epoch IO", "simulated epoch", "data placement bins",
		"planning time",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestCoOptimizeErrors(t *testing.T) {
	if _, err := CoOptimize(Input{}); err == nil {
		t.Error("nil machine accepted")
	}
	bad := topology.MachineA()
	bad.Points = nil
	if _, err := CoOptimize(Input{Machine: bad, Workload: workload(t, "PA")}); err == nil {
		t.Error("invalid machine accepted")
	}
}
