// Package core is Moment's automatic module (paper §3.1, Fig 8): given a
// machine's communication topology, a GNN workload, and a dataset, it
// (1) profiles hardware bandwidths, (2) formulates the augmented
// communication graph and searches hardware placements by time-bisection
// max-flow with isomorphic symmetry reduction, (3) runs the
// data-distribution-aware knapsack to lay out embeddings across the
// GPU/CPU/SSD hierarchy, and (4) reports the predicted and simulated
// training performance of the chosen configuration. This is the offline
// step the paper runs once per model/hardware pair (~14s on UK) and
// amortizes over all subsequent epochs.
package core

import (
	"fmt"
	"strings"
	"time"

	"moment/internal/ddak"
	"moment/internal/faults"
	"moment/internal/obs"
	"moment/internal/placement"
	"moment/internal/profiler"
	"moment/internal/topology"
	"moment/internal/trainsim"
	"moment/internal/units"
)

// Input configures a co-optimization run.
type Input struct {
	// Machine is the extracted communication topology (builders for the
	// evaluated machines live in the topology package; arbitrary servers
	// parse from a spec).
	Machine *topology.Machine
	// Workload names the dataset and model to optimize for.
	Workload trainsim.Workload
	// Search tunes the placement search (zero value = defaults).
	Search placement.Options
	// Sim tunes the epoch simulation knobs other than machine/placement.
	Sim trainsim.Config
	// Observer receives spans and metrics for the whole run; it is also
	// propagated into the search and simulation stages (nil falls back to
	// the process default observer).
	Observer *obs.Observer
}

// Plan is the automatic module's output.
type Plan struct {
	// Profile is the measured bandwidth table (step 2 of Fig 8).
	Profile *profiler.Profile
	// Placement is the selected hardware placement.
	Placement *topology.Placement
	// PredictedIO is the max-flow predicted epoch I/O completion time.
	PredictedIO units.Duration
	// PredictedThroughput is total demand over PredictedIO.
	PredictedThroughput units.Bandwidth
	// Enumerated / Evaluated count placement candidates before and after
	// isomorphic reduction.
	Enumerated, Evaluated int
	// Scores lists every evaluated candidate's predicted time, best first,
	// when the search ran with KeepScores (the ranked-placements surface
	// the planning service exposes). Nil otherwise.
	Scores []placement.Scored
	// CacheHits counts candidate evaluations served by Search.Cache.
	CacheHits int
	// DataPlacement is the DDAK embedding layout for the chosen placement.
	DataPlacement *ddak.ItemAssignment
	// Epoch is the simulated end-to-end epoch under the plan.
	Epoch *trainsim.Result
	// PlanningTime is the wall-clock cost of the whole offline pass
	// (§3.3 reports ~14 s on UK; it amortizes to <1% of training).
	PlanningTime time.Duration
}

// CoOptimize runs the automatic module end to end.
func CoOptimize(in Input) (*Plan, error) {
	start := time.Now()
	if in.Machine == nil {
		return nil, fmt.Errorf("core: nil machine")
	}
	if err := in.Machine.Validate(); err != nil {
		return nil, err
	}
	o := obs.Active(in.Observer)
	sp := o.Begin("co-optimize")
	sp.SetStr("machine", in.Machine.Name)
	sp.SetStr("dataset", in.Workload.Dataset.Name)
	defer sp.End()
	scoped := o.In(sp)

	// Cancellation threads in through the search options (Search.Ctx); the
	// search and its solves honor it internally, and the seams between
	// stages check it so an abandoned caller never starts the next stage.
	ctxErr := func() error {
		if in.Search.Ctx == nil {
			return nil
		}
		return in.Search.Ctx.Err()
	}

	// Step 1-2: profiling.
	prof, err := profiler.Measure(in.Machine, profiler.Options{Observer: scoped})
	if err != nil {
		return nil, err
	}
	if err := ctxErr(); err != nil {
		return nil, err
	}

	// Step 3: demand formulation + placement search. The demand depends
	// only on tier capacities and the workload, not on slot positions, so
	// one demand serves all candidates.
	simCfg := in.Sim
	simCfg.Machine = in.Machine
	simCfg.Workload = in.Workload
	// Demand construction needs *some* valid placement; use the first
	// enumerated candidate.
	cands, err := placement.Enumerate(in.Machine)
	if err != nil {
		return nil, err
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("core: machine %s has no feasible placements", in.Machine.Name)
	}
	simCfg.Placement = cands[0]
	demSp := sp.Child("demand")
	dem, _, err := trainsim.PlanDemand(simCfg)
	demSp.End()
	if err != nil {
		return nil, err
	}
	searchOpt := in.Search
	if searchOpt.Observer == nil {
		searchOpt.Observer = scoped
	}
	// Fault-aware runs score against a fault-degraded picture of the
	// machine; their memoized scores must never be served to (or taken
	// from) a healthy run sharing the same cache, so the schedule's
	// canonical spec string becomes part of the cache key.
	if searchOpt.FaultsKey == "" && !in.Sim.Faults.Empty() {
		searchOpt.FaultsKey = faults.Format(in.Sim.Faults)
	}
	res, err := placement.Search(in.Machine, dem, searchOpt)
	if err != nil {
		return nil, err
	}

	if err := ctxErr(); err != nil {
		return nil, err
	}

	// Step 4: DDAK data placement + epoch simulation under the winner.
	simCfg.Placement = res.Best
	if simCfg.Observer == nil {
		simCfg.Observer = scoped
	}
	epoch, err := trainsim.SimulateEpoch(simCfg)
	if err != nil {
		return nil, err
	}
	if epoch.OOM != "" {
		return nil, fmt.Errorf("core: chosen plan cannot run: %s", epoch.OOM)
	}

	if ex := in.Search.Explain; ex != nil {
		ddak.ExplainAssignment(ex, epoch.BinAssign)
		ex.Add(obs.ExplainStep{Seq: obs.SeqSummary, Stage: "plan",
			Reason: "predicted-io-sec", Value: res.Time.Sec()})
		ex.Add(obs.ExplainStep{Seq: obs.SeqSummary, Stage: "plan",
			Reason: "epoch-sec", Value: epoch.EpochTime.Sec()})
	}

	plan := &Plan{
		Profile:             prof,
		Placement:           res.Best,
		PredictedIO:         res.Time,
		PredictedThroughput: res.Throughput,
		Enumerated:          res.Enumerated,
		Evaluated:           res.Evaluated,
		Scores:              res.Scores,
		CacheHits:           res.CacheHits,
		DataPlacement:       epoch.BinAssign,
		Epoch:               epoch,
		PlanningTime:        time.Since(start),
	}
	sp.SetFloat("planning_seconds", plan.PlanningTime.Seconds())
	sp.SetInt("candidates_evaluated", plan.Evaluated)
	o.Gauge("core_planning_seconds").Set(plan.PlanningTime.Seconds())
	return plan, nil
}

// Report renders a human-readable summary of the plan, in the spirit of
// the artifact's automatic_module.py output.
func (p *Plan) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== Moment automatic module ===\n")
	b.WriteString(p.Profile.String())
	fmt.Fprintf(&b, "placement search: %d candidates, %d after symmetry reduction\n",
		p.Enumerated, p.Evaluated)
	fmt.Fprintf(&b, "selected placement: %s\n", p.Placement)
	fmt.Fprintf(&b, "predicted epoch IO: %v (throughput %v)\n", p.PredictedIO, p.PredictedThroughput)
	if p.Epoch != nil {
		fmt.Fprintf(&b, "simulated epoch: %v (io %v, compute %v, sample %v)\n",
			p.Epoch.EpochTime, p.Epoch.IOTime, p.Epoch.ComputeTime, p.Epoch.SampleTime)
		fmt.Fprintf(&b, "cache hit rates: gpu %.1f%%, cpu %.1f%%\n",
			p.Epoch.HitGPU*100, p.Epoch.HitCPU*100)
	}
	if p.DataPlacement != nil {
		fmt.Fprintf(&b, "data placement bins:\n")
		for i, bin := range p.DataPlacement.Bins {
			fmt.Fprintf(&b, "  %-10s used %8.1f GiB  access %.4f\n",
				bin.Name, p.DataPlacement.Used[i]/(1<<30), p.DataPlacement.Access[i])
		}
	}
	fmt.Fprintf(&b, "planning time: %v\n", p.PlanningTime.Round(time.Millisecond))
	return b.String()
}
