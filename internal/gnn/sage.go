// Package gnn implements the two sampling-based models the paper evaluates
// — GraphSAGE (mean aggregator, hidden 256) and GAT (8 heads, hidden 64) —
// with real forward and backward passes over sampled mini-batches, plain
// SGD and Adam optimizers, a training loop, and the analytic compute-cost
// model the epoch simulator uses to price model training on an A100.
package gnn

import (
	"fmt"

	"moment/internal/sample"
	"moment/internal/tensor"
)

// Model is a trainable GNN operating on sampled batches.
type Model interface {
	// Forward computes logits for the batch's seed vertices given the
	// gathered features of all batch vertices (rows follow batch.Unique).
	Forward(batch *sample.Batch, feats *tensor.Matrix) (*tensor.Matrix, error)
	// Backward propagates the loss gradient w.r.t. the logits, filling
	// parameter gradients (feature gradients are discarded — embeddings
	// are frozen inputs in the paper's setup).
	Backward(gradLogits *tensor.Matrix) error
	// Params and Grads expose parameter/gradient pairs for optimizers.
	Params() []*tensor.Matrix
	Grads() []*tensor.Matrix
	// Name identifies the model ("graphsage" or "gat").
	Name() string
}

// batchEdges flattens all hop blocks into one (dst, src) edge list over
// batch-local indices; every layer aggregates over this sampled subgraph.
func batchEdges(b *sample.Batch) (dst, src []int32) {
	total := 0
	for _, h := range b.Hops {
		total += len(h.Dst)
	}
	dst = make([]int32, 0, total)
	src = make([]int32, 0, total)
	for _, h := range b.Hops {
		dst = append(dst, h.Dst...)
		src = append(src, h.Src...)
	}
	return dst, src
}

// SAGEConfig parameterizes GraphSAGE (paper §4.1: hidden 256, 2 hops).
type SAGEConfig struct {
	InDim   int
	Hidden  int
	Classes int
	Layers  int
	Seed    int64
}

// SAGE is a GraphSAGE model with mean aggregation and concat update:
// h^l = ReLU(W^l · [h^{l-1} ‖ mean_{u∈N(v)} h_u^{l-1}] + b^l).
type SAGE struct {
	cfg SAGEConfig
	w   []*tensor.Matrix // layer weights (2*inDim_l x outDim_l)
	b   []*tensor.Matrix // layer biases (1 x outDim_l)
	gw  []*tensor.Matrix
	gb  []*tensor.Matrix

	// forward cache
	cache *sageCache
}

type sageCache struct {
	batch    *sample.Batch
	dst, src []int32
	inputs   []*tensor.Matrix // input to each layer (n x d_l)
	concats  []*tensor.Matrix // concat(self, agg) per layer
	counts   [][]int32        // segment counts per layer
	masks    [][]bool         // relu masks per layer (nil for last)
}

// NewSAGE builds a GraphSAGE model.
func NewSAGE(cfg SAGEConfig) (*SAGE, error) {
	if cfg.InDim <= 0 || cfg.Hidden <= 0 || cfg.Classes <= 1 {
		return nil, fmt.Errorf("gnn: bad SAGE config %+v", cfg)
	}
	if cfg.Layers <= 0 {
		cfg.Layers = 2
	}
	s := &SAGE{cfg: cfg}
	in := cfg.InDim
	for l := 0; l < cfg.Layers; l++ {
		out := cfg.Hidden
		if l == cfg.Layers-1 {
			out = cfg.Classes
		}
		s.w = append(s.w, tensor.Rand(2*in, out, cfg.Seed+int64(l)*31))
		s.b = append(s.b, tensor.New(1, out))
		s.gw = append(s.gw, tensor.New(2*in, out))
		s.gb = append(s.gb, tensor.New(1, out))
		in = out
	}
	return s, nil
}

// Name implements Model.
func (s *SAGE) Name() string { return "graphsage" }

// Params implements Model.
func (s *SAGE) Params() []*tensor.Matrix {
	out := append([]*tensor.Matrix(nil), s.w...)
	return append(out, s.b...)
}

// Grads implements Model.
func (s *SAGE) Grads() []*tensor.Matrix {
	out := append([]*tensor.Matrix(nil), s.gw...)
	return append(out, s.gb...)
}

// Forward implements Model.
func (s *SAGE) Forward(batch *sample.Batch, feats *tensor.Matrix) (*tensor.Matrix, error) {
	if feats.Rows != len(batch.Unique) {
		return nil, fmt.Errorf("gnn: %d feature rows for %d batch vertices", feats.Rows, len(batch.Unique))
	}
	if feats.Cols != s.cfg.InDim {
		return nil, fmt.Errorf("gnn: feature dim %d != model in-dim %d", feats.Cols, s.cfg.InDim)
	}
	dst, src := batchEdges(batch)
	c := &sageCache{batch: batch, dst: dst, src: src}
	h := feats
	n := len(batch.Unique)
	for l := range s.w {
		agg, counts, err := tensor.SegmentMean(h, dst, src, n)
		if err != nil {
			return nil, err
		}
		cat, err := tensor.Concat(h, agg)
		if err != nil {
			return nil, err
		}
		z, err := tensor.MatMul(cat, s.w[l])
		if err != nil {
			return nil, err
		}
		if err := tensor.AddBiasInPlace(z, s.b[l]); err != nil {
			return nil, err
		}
		c.inputs = append(c.inputs, h)
		c.concats = append(c.concats, cat)
		c.counts = append(c.counts, counts)
		if l < len(s.w)-1 {
			c.masks = append(c.masks, tensor.ReLUInPlace(z))
		} else {
			c.masks = append(c.masks, nil)
		}
		h = z
	}
	s.cache = c
	// Seed rows come first in Unique.
	logits := tensor.New(len(batch.Seeds), h.Cols)
	for i := range batch.Seeds {
		copy(logits.Row(i), h.Row(i))
	}
	c.inputs = append(c.inputs, h) // final activations, for backward scatter
	return logits, nil
}

// Backward implements Model.
func (s *SAGE) Backward(gradLogits *tensor.Matrix) error {
	c := s.cache
	if c == nil {
		return fmt.Errorf("gnn: Backward before Forward")
	}
	n := len(c.batch.Unique)
	// Scatter seed gradients into the full vertex set.
	grad := tensor.New(n, gradLogits.Cols)
	for i := 0; i < gradLogits.Rows; i++ {
		copy(grad.Row(i), gradLogits.Row(i))
	}
	for l := len(s.w) - 1; l >= 0; l-- {
		if c.masks[l] != nil {
			if err := tensor.ReLUBackward(grad, c.masks[l]); err != nil {
				return err
			}
		}
		gw, err := tensor.MatMulATB(c.concats[l], grad)
		if err != nil {
			return err
		}
		if err := tensor.AddInPlace(s.gw[l], gw); err != nil {
			return err
		}
		if err := tensor.AddInPlace(s.gb[l], tensor.BiasGrad(grad)); err != nil {
			return err
		}
		gcat, err := tensor.MatMulABT(grad, s.w[l])
		if err != nil {
			return err
		}
		inDim := c.inputs[l].Cols
		gSelf, gAgg, err := tensor.SplitCols(gcat, inDim)
		if err != nil {
			return err
		}
		gFromAgg, err := tensor.SegmentMeanBackward(gAgg, c.dst, c.src, c.counts[l], n)
		if err != nil {
			return err
		}
		if err := tensor.AddInPlace(gSelf, gFromAgg); err != nil {
			return err
		}
		grad = gSelf
	}
	s.cache = nil
	return nil
}

// ZeroGrads clears accumulated gradients.
func ZeroGrads(m Model) {
	for _, g := range m.Grads() {
		g.Zero()
	}
}
