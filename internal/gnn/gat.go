package gnn

import (
	"fmt"
	"math"

	"moment/internal/sample"
	"moment/internal/tensor"
)

// GATConfig parameterizes GAT (paper §4.1: hidden 64, 8 heads per layer).
type GATConfig struct {
	InDim   int
	Hidden  int // per-head hidden dimension
	Heads   int
	Classes int
	Layers  int
	Seed    int64
	// Alpha is the LeakyReLU slope for attention scores (0.2 standard).
	Alpha float32
}

// GAT is a multi-head graph attention network. Per head h of layer l:
//
//	z_i   = x_i · W_h
//	e_ij  = LeakyReLU(aL_h·z_i + aR_h·z_j)
//	α_ij  = softmax_j(e_ij)  over i's sampled in-neighbors
//	out_i = Σ_j α_ij z_j   (+ z_i self loop term)
//
// Heads are concatenated between layers and averaged at the output layer.
type GAT struct {
	cfg GATConfig
	// Per layer, per head.
	w      [][]*tensor.Matrix // inDim_l x hidden
	aL, aR [][]*tensor.Matrix // 1 x hidden attention vectors
	gw     [][]*tensor.Matrix
	gaL    [][]*tensor.Matrix
	gaR    [][]*tensor.Matrix

	cache *gatCache
}

type gatCache struct {
	batch    *sample.Batch
	dst, src []int32
	// Per layer: input activations; per head: z, alpha, scores mask,
	// group offsets.
	inputs []*tensor.Matrix
	layers []gatLayerCache
	masks  [][]bool // inter-layer ELU-ish relu masks (nil for last)
}

type gatLayerCache struct {
	z     []*tensor.Matrix // per head: n x hidden
	alpha [][]float32      // per head: per edge attention weight
	sMask [][]bool         // per head: leakyrelu mask per edge
	// edge grouping by dst
	groupStart []int32 // per vertex: offset into order
	order      []int32 // edge ids grouped by dst
}

// NewGAT builds a GAT model.
func NewGAT(cfg GATConfig) (*GAT, error) {
	if cfg.InDim <= 0 || cfg.Hidden <= 0 || cfg.Heads <= 0 || cfg.Classes <= 1 {
		return nil, fmt.Errorf("gnn: bad GAT config %+v", cfg)
	}
	if cfg.Layers <= 0 {
		cfg.Layers = 2
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.2
	}
	g := &GAT{cfg: cfg}
	in := cfg.InDim
	for l := 0; l < cfg.Layers; l++ {
		heads := cfg.Heads
		out := cfg.Hidden
		if l == cfg.Layers-1 {
			out = cfg.Classes
		}
		var ws, als, ars, gws, gals, gars []*tensor.Matrix
		for h := 0; h < heads; h++ {
			seed := cfg.Seed + int64(l*97+h)*13
			ws = append(ws, tensor.Rand(in, out, seed))
			als = append(als, tensor.Rand(1, out, seed+1))
			ars = append(ars, tensor.Rand(1, out, seed+2))
			gws = append(gws, tensor.New(in, out))
			gals = append(gals, tensor.New(1, out))
			gars = append(gars, tensor.New(1, out))
		}
		g.w = append(g.w, ws)
		g.aL = append(g.aL, als)
		g.aR = append(g.aR, ars)
		g.gw = append(g.gw, gws)
		g.gaL = append(g.gaL, gals)
		g.gaR = append(g.gaR, gars)
		if l == cfg.Layers-1 {
			in = out // averaged heads at the output layer
		} else {
			in = out * heads // concatenated heads between layers
		}
	}
	return g, nil
}

// Name implements Model.
func (g *GAT) Name() string { return "gat" }

// Params implements Model.
func (g *GAT) Params() []*tensor.Matrix {
	var out []*tensor.Matrix
	for l := range g.w {
		out = append(out, g.w[l]...)
		out = append(out, g.aL[l]...)
		out = append(out, g.aR[l]...)
	}
	return out
}

// Grads implements Model.
func (g *GAT) Grads() []*tensor.Matrix {
	var out []*tensor.Matrix
	for l := range g.gw {
		out = append(out, g.gw[l]...)
		out = append(out, g.gaL[l]...)
		out = append(out, g.gaR[l]...)
	}
	return out
}

// groupEdges buckets edge ids by destination vertex.
func groupEdges(dst []int32, n int) (groupStart, order []int32) {
	counts := make([]int32, n+1)
	for _, d := range dst {
		counts[d+1]++
	}
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}
	groupStart = counts
	order = make([]int32, len(dst))
	cursor := make([]int32, n)
	for e, d := range dst {
		order[groupStart[d]+cursor[d]] = int32(e)
		cursor[d]++
	}
	return groupStart, order
}

// Forward implements Model.
func (g *GAT) Forward(batch *sample.Batch, feats *tensor.Matrix) (*tensor.Matrix, error) {
	if feats.Rows != len(batch.Unique) {
		return nil, fmt.Errorf("gnn: %d feature rows for %d batch vertices", feats.Rows, len(batch.Unique))
	}
	if feats.Cols != g.cfg.InDim {
		return nil, fmt.Errorf("gnn: feature dim %d != model in-dim %d", feats.Cols, g.cfg.InDim)
	}
	dst, src := batchEdges(batch)
	n := len(batch.Unique)
	groupStart, order := groupEdges(dst, n)
	c := &gatCache{batch: batch, dst: dst, src: src}
	h := feats
	for l := range g.w {
		lc := gatLayerCache{groupStart: groupStart, order: order}
		lastLayer := l == len(g.w)-1
		heads := len(g.w[l])
		outDim := g.w[l][0].Cols
		var headOut []*tensor.Matrix
		for hd := 0; hd < heads; hd++ {
			z, err := tensor.MatMul(h, g.w[l][hd])
			if err != nil {
				return nil, err
			}
			// Attention scores per edge.
			sl := project(z, g.aL[l][hd]) // per-vertex left score
			sr := project(z, g.aR[l][hd]) // per-vertex right score
			scores := make([]float32, len(dst))
			mask := make([]bool, len(dst))
			for e := range dst {
				s := sl[dst[e]] + sr[src[e]]
				if s > 0 {
					mask[e] = true
				} else {
					s *= g.cfg.Alpha
				}
				scores[e] = s
			}
			alpha := softmaxGroups(scores, groupStart, order)
			out := tensor.New(n, outDim)
			for e := range dst {
				or := out.Row(int(dst[e]))
				zr := z.Row(int(src[e]))
				a := alpha[e]
				for j, v := range zr {
					or[j] += a * v
				}
			}
			// Self loop: vertices keep their own projection (vertices with
			// no sampled in-edges would otherwise vanish).
			for i := 0; i < n; i++ {
				if groupStart[i+1] == groupStart[i] {
					copy(out.Row(i), z.Row(i))
				}
			}
			lc.z = append(lc.z, z)
			lc.alpha = append(lc.alpha, alpha)
			lc.sMask = append(lc.sMask, mask)
			headOut = append(headOut, out)
		}
		var next *tensor.Matrix
		var err error
		if lastLayer {
			// Average heads.
			next = headOut[0]
			for hd := 1; hd < heads; hd++ {
				if err = tensor.AddInPlace(next, headOut[hd]); err != nil {
					return nil, err
				}
			}
			next.Scale(1 / float32(heads))
		} else {
			next = headOut[0]
			for hd := 1; hd < heads; hd++ {
				next, err = tensor.Concat(next, headOut[hd])
				if err != nil {
					return nil, err
				}
			}
		}
		c.inputs = append(c.inputs, h)
		c.layers = append(c.layers, lc)
		if !lastLayer {
			c.masks = append(c.masks, tensor.ReLUInPlace(next))
		} else {
			c.masks = append(c.masks, nil)
		}
		h = next
	}
	g.cache = c
	logits := tensor.New(len(batch.Seeds), h.Cols)
	for i := range batch.Seeds {
		copy(logits.Row(i), h.Row(i))
	}
	return logits, nil
}

// project computes z · aᵀ for a 1×d vector a, returning one score per row.
func project(z *tensor.Matrix, a *tensor.Matrix) []float32 {
	out := make([]float32, z.Rows)
	av := a.Row(0)
	for i := 0; i < z.Rows; i++ {
		var s float32
		for j, v := range z.Row(i) {
			s += v * av[j]
		}
		out[i] = s
	}
	return out
}

// softmaxGroups normalizes scores within each destination group.
func softmaxGroups(scores []float32, groupStart, order []int32) []float32 {
	alpha := make([]float32, len(scores))
	n := len(groupStart) - 1
	for i := 0; i < n; i++ {
		lo, hi := groupStart[i], groupStart[i+1]
		if lo == hi {
			continue
		}
		maxv := float32(math.Inf(-1))
		for _, e := range order[lo:hi] {
			if scores[e] > maxv {
				maxv = scores[e]
			}
		}
		var sum float64
		for _, e := range order[lo:hi] {
			v := math.Exp(float64(scores[e] - maxv))
			alpha[e] = float32(v)
			sum += v
		}
		inv := float32(1 / sum)
		for _, e := range order[lo:hi] {
			alpha[e] *= inv
		}
	}
	return alpha
}

// Backward implements Model.
func (g *GAT) Backward(gradLogits *tensor.Matrix) error {
	c := g.cache
	if c == nil {
		return fmt.Errorf("gnn: Backward before Forward")
	}
	n := len(c.batch.Unique)
	grad := tensor.New(n, gradLogits.Cols)
	for i := 0; i < gradLogits.Rows; i++ {
		copy(grad.Row(i), gradLogits.Row(i))
	}
	for l := len(g.w) - 1; l >= 0; l-- {
		if c.masks[l] != nil {
			if err := tensor.ReLUBackward(grad, c.masks[l]); err != nil {
				return err
			}
		}
		lc := c.layers[l]
		heads := len(g.w[l])
		outDim := g.w[l][0].Cols
		lastLayer := l == len(g.w)-1
		gradIn := tensor.New(n, c.inputs[l].Cols)
		for hd := 0; hd < heads; hd++ {
			// Slice this head's output gradient.
			gOut := tensor.New(n, outDim)
			for i := 0; i < n; i++ {
				gr := grad.Row(i)
				or := gOut.Row(i)
				if lastLayer {
					inv := 1 / float32(heads)
					for j := 0; j < outDim; j++ {
						or[j] = gr[j] * inv
					}
				} else {
					copy(or, gr[hd*outDim:(hd+1)*outDim])
				}
			}
			z := lc.z[hd]
			alpha := lc.alpha[hd]
			gz := tensor.New(n, outDim)
			dAlpha := make([]float32, len(c.dst))
			for e := range c.dst {
				d, s := c.dst[e], c.src[e]
				gor := gOut.Row(int(d))
				zr := z.Row(int(s))
				gzr := gz.Row(int(s))
				a := alpha[e]
				var dot float32
				for j, v := range gor {
					gzr[j] += a * v
					dot += v * zr[j]
				}
				dAlpha[e] = dot
			}
			// Self-loop rows (no in-edges) pass gradient straight to z.
			for i := 0; i < n; i++ {
				if lc.groupStart[i+1] == lc.groupStart[i] {
					gzr := gz.Row(i)
					for j, v := range gOut.Row(i) {
						gzr[j] += v
					}
				}
			}
			// Softmax backward within groups.
			dScore := make([]float32, len(c.dst))
			for i := 0; i < n; i++ {
				lo, hi := lc.groupStart[i], lc.groupStart[i+1]
				if lo == hi {
					continue
				}
				var inner float64
				for _, e := range lc.order[lo:hi] {
					inner += float64(alpha[e]) * float64(dAlpha[e])
				}
				for _, e := range lc.order[lo:hi] {
					dScore[e] = alpha[e] * (dAlpha[e] - float32(inner))
				}
			}
			// LeakyReLU backward on scores, then distribute to aL/aR/z.
			av := g.aL[l][hd].Row(0)
			bv := g.aR[l][hd].Row(0)
			gaL := g.gaL[l][hd].Row(0)
			gaR := g.gaR[l][hd].Row(0)
			for e := range c.dst {
				ds := dScore[e]
				if !lc.sMask[hd][e] {
					ds *= g.cfg.Alpha
				}
				if ds == 0 {
					continue
				}
				d, s := c.dst[e], c.src[e]
				zd := z.Row(int(d))
				zs := z.Row(int(s))
				gzd := gz.Row(int(d))
				gzs := gz.Row(int(s))
				for j := 0; j < outDim; j++ {
					gaL[j] += ds * zd[j]
					gaR[j] += ds * zs[j]
					gzd[j] += ds * av[j]
					gzs[j] += ds * bv[j]
				}
			}
			// z = input · W.
			gw, err := tensor.MatMulATB(c.inputs[l], gz)
			if err != nil {
				return err
			}
			if err := tensor.AddInPlace(g.gw[l][hd], gw); err != nil {
				return err
			}
			gin, err := tensor.MatMulABT(gz, g.w[l][hd])
			if err != nil {
				return err
			}
			if err := tensor.AddInPlace(gradIn, gin); err != nil {
				return err
			}
		}
		grad = gradIn
	}
	g.cache = nil
	return nil
}
