package gnn

import (
	"fmt"
	"math"

	"moment/internal/graph"
	"moment/internal/sample"
	"moment/internal/tensor"
)

// Optimizer updates model parameters from accumulated gradients.
type Optimizer interface {
	Step(params, grads []*tensor.Matrix) error
}

// SGD is plain stochastic gradient descent with optional weight decay.
type SGD struct {
	LR          float32
	WeightDecay float32
}

// Step implements Optimizer.
func (o *SGD) Step(params, grads []*tensor.Matrix) error {
	if len(params) != len(grads) {
		return fmt.Errorf("gnn: %d params, %d grads", len(params), len(grads))
	}
	for i, p := range params {
		g := grads[i]
		if len(p.Data) != len(g.Data) {
			return fmt.Errorf("gnn: param %d shape mismatch", i)
		}
		for j := range p.Data {
			p.Data[j] -= o.LR * (g.Data[j] + o.WeightDecay*p.Data[j])
		}
	}
	return nil
}

// Adam is the Adam optimizer with bias correction.
type Adam struct {
	LR      float32
	Beta1   float32
	Beta2   float32
	Epsilon float32

	t int
	m [][]float32
	v [][]float32
}

// NewAdam returns Adam with standard hyperparameters.
func NewAdam(lr float32) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step implements Optimizer.
func (a *Adam) Step(params, grads []*tensor.Matrix) error {
	if len(params) != len(grads) {
		return fmt.Errorf("gnn: %d params, %d grads", len(params), len(grads))
	}
	if a.m == nil {
		a.m = make([][]float32, len(params))
		a.v = make([][]float32, len(params))
		for i, p := range params {
			a.m[i] = make([]float32, len(p.Data))
			a.v[i] = make([]float32, len(p.Data))
		}
	}
	if len(a.m) != len(params) {
		return fmt.Errorf("gnn: optimizer bound to %d params, got %d", len(a.m), len(params))
	}
	a.t++
	bc1 := 1 - float32(math.Pow(float64(a.Beta1), float64(a.t)))
	bc2 := 1 - float32(math.Pow(float64(a.Beta2), float64(a.t)))
	for i, p := range params {
		g := grads[i]
		m, v := a.m[i], a.v[i]
		for j := range p.Data {
			gj := g.Data[j]
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*gj
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*gj*gj
			mHat := m[j] / bc1
			vHat := v[j] / bc2
			p.Data[j] -= a.LR * mHat / (float32(math.Sqrt(float64(vHat))) + a.Epsilon)
		}
	}
	return nil
}

// Trainer drives mini-batch node-classification training on a scaled
// dataset instance: sample → gather features → forward/backward → step.
type Trainer struct {
	Model   Model
	Opt     Optimizer
	Sampler *sample.Sampler
	Iter    *sample.BatchIterator
	Feats   *graph.Features
	Labels  []int32
}

// EpochStats summarizes one training epoch.
type EpochStats struct {
	Loss     float64
	Accuracy float64
	Batches  int
	Sampled  int // total unique vertices touched
}

// NewTrainer wires the training components together.
func NewTrainer(m Model, opt Optimizer, s *sample.Sampler, it *sample.BatchIterator,
	feats *graph.Features, labels []int32) (*Trainer, error) {
	if m == nil || opt == nil || s == nil || it == nil || feats == nil {
		return nil, fmt.Errorf("gnn: trainer missing components")
	}
	if len(labels) != feats.N() {
		return nil, fmt.Errorf("gnn: %d labels for %d vertices", len(labels), feats.N())
	}
	return &Trainer{Model: m, Opt: opt, Sampler: s, Iter: it, Feats: feats, Labels: labels}, nil
}

// Epoch runs one full pass over the training set.
func (tr *Trainer) Epoch() (*EpochStats, error) {
	stats := &EpochStats{}
	batches := tr.Iter.BatchesPerEpoch()
	for i := 0; i < batches; i++ {
		seeds, _ := tr.Iter.Next()
		b, err := tr.Sampler.Sample(seeds)
		if err != nil {
			return nil, err
		}
		feats := tensor.New(len(b.Unique), tr.Feats.Dim)
		if err := tr.Feats.Gather(b.Unique, feats.Data); err != nil {
			return nil, err
		}
		logits, err := tr.Model.Forward(b, feats)
		if err != nil {
			return nil, err
		}
		labels := make([]int32, len(b.Seeds))
		for j, v := range b.Seeds {
			labels[j] = tr.Labels[v]
		}
		loss, grad, err := tensor.SoftmaxCrossEntropy(logits, labels)
		if err != nil {
			return nil, err
		}
		acc, err := tensor.Accuracy(logits, labels)
		if err != nil {
			return nil, err
		}
		ZeroGrads(tr.Model)
		if err := tr.Model.Backward(grad); err != nil {
			return nil, err
		}
		if err := tr.Opt.Step(tr.Model.Params(), tr.Model.Grads()); err != nil {
			return nil, err
		}
		stats.Loss += loss
		stats.Accuracy += acc
		stats.Batches++
		stats.Sampled += b.TotalSampled()
	}
	if stats.Batches > 0 {
		stats.Loss /= float64(stats.Batches)
		stats.Accuracy /= float64(stats.Batches)
	}
	return stats, nil
}
