package gnn

import "fmt"

// ModelKind selects a model for the analytic cost functions below.
type ModelKind int

const (
	// KindSAGE is GraphSAGE (hidden 256).
	KindSAGE ModelKind = iota
	// KindGAT is GAT (hidden 64, 8 heads).
	KindGAT
	// KindGCN is GCN (hidden 256); §3.1 lists it among the automatic
	// module's model inputs, though §4 evaluates SAGE and GAT.
	KindGCN
)

// String names the kind.
func (k ModelKind) String() string {
	switch k {
	case KindGAT:
		return "GAT"
	case KindGCN:
		return "GCN"
	}
	return "GraphSAGE"
}

// PaperConfig returns the §4.1 hyperparameters for a model kind.
func PaperConfig(k ModelKind, inDim, classes int) (hidden, heads int) {
	if k == KindGAT {
		return 64, 8
	}
	return 256, 1
}

// CostModel prices one training iteration's GPU compute analytically —
// the simulator's stand-in for running CUDA kernels. FLOP counts follow
// the layer algebra; the A100 sustains sustainedTFLOPS on these small
// GEMMs (well below peak: mini-batch GNN layers are memory-bound).
type CostModel struct {
	Kind    ModelKind
	InDim   int
	Hidden  int
	Heads   int
	Classes int
	Layers  int

	// SustainedTFLOPS is the effective throughput of one GPU on this
	// workload (TF32 tensor-core GEMMs at modest utilization).
	SustainedTFLOPS float64
}

// DefaultCostModel returns the calibrated cost model for a paper model.
func DefaultCostModel(k ModelKind, inDim, classes int) CostModel {
	hidden, heads := PaperConfig(k, inDim, classes)
	sustained := 60.0 // A100 TF32 tensor-core GEMM at ~40% of 156 TFLOPS peak
	if k == KindGAT {
		// Attention kernels are more irregular (per-edge softmax).
		sustained = 35.0
	}
	return CostModel{
		Kind: k, InDim: inDim, Hidden: hidden, Heads: heads,
		Classes: classes, Layers: 2, SustainedTFLOPS: sustained,
	}
}

// FLOPsPerIteration estimates forward+backward FLOPs for a batch with the
// given unique-vertex and sampled-edge counts.
func (c CostModel) FLOPsPerIteration(vertices, edges int64) (float64, error) {
	if vertices <= 0 || edges < 0 {
		return 0, fmt.Errorf("gnn: bad batch shape v=%d e=%d", vertices, edges)
	}
	layers := c.Layers
	if layers <= 0 {
		layers = 2
	}
	v := float64(vertices)
	e := float64(edges)
	var fwd float64
	in := float64(c.InDim)
	for l := 0; l < layers; l++ {
		out := float64(c.Hidden)
		if l == layers-1 {
			out = float64(c.Classes)
		}
		switch c.Kind {
		case KindGAT:
			h := float64(c.Heads)
			// Per head: projection 2·v·in·out, per-edge attention ~6·out,
			// aggregation 2·e·out.
			fwd += h * (2*v*in*out + 6*e*out + 2*e*out)
			if l == layers-1 {
				in = out
			} else {
				in = out * h
			}
		case KindGCN:
			// GCN: aggregation 2·e·in + GEMM 2·v·in·out (no self concat).
			fwd += 2*e*in + 2*v*in*out
			in = out
		default:
			// SAGE: aggregation 2·e·in + GEMM 2·v·(2·in)·out.
			fwd += 2*e*in + 2*v*2*in*out
			in = out
		}
	}
	// Backward costs ~2x forward (two GEMMs per forward GEMM).
	return 3 * fwd, nil
}

// IterationSeconds converts a batch's FLOPs to GPU seconds.
func (c CostModel) IterationSeconds(vertices, edges int64) (float64, error) {
	fl, err := c.FLOPsPerIteration(vertices, edges)
	if err != nil {
		return 0, err
	}
	if c.SustainedTFLOPS <= 0 {
		return 0, fmt.Errorf("gnn: non-positive sustained TFLOPS")
	}
	return fl / (c.SustainedTFLOPS * 1e12), nil
}
