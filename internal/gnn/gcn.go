package gnn

import (
	"fmt"

	"moment/internal/sample"
	"moment/internal/tensor"
)

// GCNConfig parameterizes a GCN (Kipf & Welling), the third model family
// §3.1 names as an input to the automatic module.
type GCNConfig struct {
	InDim   int
	Hidden  int
	Classes int
	Layers  int
	Seed    int64
}

// GCN is a graph convolutional network over sampled subgraphs:
// h^l = ReLU(Â h^{l-1} W^l + b^l), where Â is the mean-normalized sampled
// adjacency with self loops (mean aggregation over {v} ∪ N(v) approximates
// the symmetric normalization on sampled blocks).
type GCN struct {
	cfg GCNConfig
	w   []*tensor.Matrix
	b   []*tensor.Matrix
	gw  []*tensor.Matrix
	gb  []*tensor.Matrix

	cache *gcnCache
}

type gcnCache struct {
	batch    *sample.Batch
	dst, src []int32 // includes self loops
	inputs   []*tensor.Matrix
	aggs     []*tensor.Matrix
	counts   [][]int32
	masks    [][]bool
}

// NewGCN builds a GCN model.
func NewGCN(cfg GCNConfig) (*GCN, error) {
	if cfg.InDim <= 0 || cfg.Hidden <= 0 || cfg.Classes <= 1 {
		return nil, fmt.Errorf("gnn: bad GCN config %+v", cfg)
	}
	if cfg.Layers <= 0 {
		cfg.Layers = 2
	}
	g := &GCN{cfg: cfg}
	in := cfg.InDim
	for l := 0; l < cfg.Layers; l++ {
		out := cfg.Hidden
		if l == cfg.Layers-1 {
			out = cfg.Classes
		}
		g.w = append(g.w, tensor.Rand(in, out, cfg.Seed+int64(l)*17))
		g.b = append(g.b, tensor.New(1, out))
		g.gw = append(g.gw, tensor.New(in, out))
		g.gb = append(g.gb, tensor.New(1, out))
		in = out
	}
	return g, nil
}

// Name implements Model.
func (g *GCN) Name() string { return "gcn" }

// Params implements Model.
func (g *GCN) Params() []*tensor.Matrix {
	out := append([]*tensor.Matrix(nil), g.w...)
	return append(out, g.b...)
}

// Grads implements Model.
func (g *GCN) Grads() []*tensor.Matrix {
	out := append([]*tensor.Matrix(nil), g.gw...)
	return append(out, g.gb...)
}

// Forward implements Model.
func (g *GCN) Forward(batch *sample.Batch, feats *tensor.Matrix) (*tensor.Matrix, error) {
	if feats.Rows != len(batch.Unique) {
		return nil, fmt.Errorf("gnn: %d feature rows for %d batch vertices", feats.Rows, len(batch.Unique))
	}
	if feats.Cols != g.cfg.InDim {
		return nil, fmt.Errorf("gnn: feature dim %d != model in-dim %d", feats.Cols, g.cfg.InDim)
	}
	dst, src := batchEdges(batch)
	n := len(batch.Unique)
	// Self loops: every vertex aggregates itself too (the +I of GCN).
	for v := int32(0); int(v) < n; v++ {
		dst = append(dst, v)
		src = append(src, v)
	}
	c := &gcnCache{batch: batch, dst: dst, src: src}
	h := feats
	for l := range g.w {
		agg, counts, err := tensor.SegmentMean(h, dst, src, n)
		if err != nil {
			return nil, err
		}
		z, err := tensor.MatMul(agg, g.w[l])
		if err != nil {
			return nil, err
		}
		if err := tensor.AddBiasInPlace(z, g.b[l]); err != nil {
			return nil, err
		}
		c.inputs = append(c.inputs, h)
		c.aggs = append(c.aggs, agg)
		c.counts = append(c.counts, counts)
		if l < len(g.w)-1 {
			c.masks = append(c.masks, tensor.ReLUInPlace(z))
		} else {
			c.masks = append(c.masks, nil)
		}
		h = z
	}
	g.cache = c
	logits := tensor.New(len(batch.Seeds), h.Cols)
	for i := range batch.Seeds {
		copy(logits.Row(i), h.Row(i))
	}
	return logits, nil
}

// Backward implements Model.
func (g *GCN) Backward(gradLogits *tensor.Matrix) error {
	c := g.cache
	if c == nil {
		return fmt.Errorf("gnn: Backward before Forward")
	}
	n := len(c.batch.Unique)
	grad := tensor.New(n, gradLogits.Cols)
	for i := 0; i < gradLogits.Rows; i++ {
		copy(grad.Row(i), gradLogits.Row(i))
	}
	for l := len(g.w) - 1; l >= 0; l-- {
		if c.masks[l] != nil {
			if err := tensor.ReLUBackward(grad, c.masks[l]); err != nil {
				return err
			}
		}
		gw, err := tensor.MatMulATB(c.aggs[l], grad)
		if err != nil {
			return err
		}
		if err := tensor.AddInPlace(g.gw[l], gw); err != nil {
			return err
		}
		if err := tensor.AddInPlace(g.gb[l], tensor.BiasGrad(grad)); err != nil {
			return err
		}
		gAgg, err := tensor.MatMulABT(grad, g.w[l])
		if err != nil {
			return err
		}
		grad, err = tensor.SegmentMeanBackward(gAgg, c.dst, c.src, c.counts[l], n)
		if err != nil {
			return err
		}
	}
	g.cache = nil
	return nil
}
