package gnn

import (
	"math"
	"testing"

	"moment/internal/graph"
	"moment/internal/sample"
	"moment/internal/tensor"
)

func tinySetup(t *testing.T) (*graph.Graph, *sample.Sampler, *sample.Batch, *tensor.Matrix, []int32) {
	t.Helper()
	g, err := graph.GenZipf(60, 5, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sample.NewSampler(g, []int{4, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Sample([]int32{0, 1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	feats := tensor.Rand(len(b.Unique), 8, 7)
	labels := []int32{0, 1, 2, 0, 1, 2}
	return g, s, b, feats, labels
}

func lossOf(t *testing.T, m Model, b *sample.Batch, feats *tensor.Matrix, labels []int32) float64 {
	t.Helper()
	logits, err := m.Forward(b, feats.Clone())
	if err != nil {
		t.Fatal(err)
	}
	loss, _, err := tensor.SoftmaxCrossEntropy(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	return loss
}

func gradientCheck(t *testing.T, m Model, b *sample.Batch, feats *tensor.Matrix, labels []int32, checks int) {
	t.Helper()
	logits, err := m.Forward(b, feats.Clone())
	if err != nil {
		t.Fatal(err)
	}
	_, grad, err := tensor.SoftmaxCrossEntropy(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	ZeroGrads(m)
	if err := m.Backward(grad); err != nil {
		t.Fatal(err)
	}
	params := m.Params()
	grads := m.Grads()
	const eps = 1e-2
	checked := 0
	for pi := range params {
		for k := 0; k < len(params[pi].Data) && checked < checks; k += 17 {
			analytic := float64(grads[pi].Data[k])
			orig := params[pi].Data[k]
			params[pi].Data[k] = orig + eps
			lp := lossOf(t, m, b, feats, labels)
			params[pi].Data[k] = orig - eps
			lm := lossOf(t, m, b, feats, labels)
			params[pi].Data[k] = orig
			numeric := (lp - lm) / (2 * eps)
			// ReLU kinks make finite differences noisy in float32;
			// allow a generous relative band.
			tol := 2e-3 + 0.15*math.Abs(numeric)
			if math.Abs(analytic-numeric) > tol {
				t.Errorf("param %d[%d]: analytic %.6f vs numeric %.6f", pi, k, analytic, numeric)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("gradient check exercised nothing")
	}
}

func TestSAGEForwardShape(t *testing.T) {
	_, _, b, feats, _ := tinySetup(t)
	m, err := NewSAGE(SAGEConfig{InDim: 8, Hidden: 16, Classes: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	logits, err := m.Forward(b, feats)
	if err != nil {
		t.Fatal(err)
	}
	if logits.Rows != len(b.Seeds) || logits.Cols != 3 {
		t.Fatalf("logits %dx%d", logits.Rows, logits.Cols)
	}
}

func TestSAGEGradientCheck(t *testing.T) {
	_, _, b, feats, labels := tinySetup(t)
	m, err := NewSAGE(SAGEConfig{InDim: 8, Hidden: 6, Classes: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	gradientCheck(t, m, b, feats, labels, 25)
}

func TestGATForwardShape(t *testing.T) {
	_, _, b, feats, _ := tinySetup(t)
	m, err := NewGAT(GATConfig{InDim: 8, Hidden: 4, Heads: 2, Classes: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	logits, err := m.Forward(b, feats)
	if err != nil {
		t.Fatal(err)
	}
	if logits.Rows != len(b.Seeds) || logits.Cols != 3 {
		t.Fatalf("logits %dx%d", logits.Rows, logits.Cols)
	}
}

func TestGATGradientCheck(t *testing.T) {
	_, _, b, feats, labels := tinySetup(t)
	m, err := NewGAT(GATConfig{InDim: 8, Hidden: 4, Heads: 2, Classes: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	gradientCheck(t, m, b, feats, labels, 25)
}

func TestConfigErrors(t *testing.T) {
	if _, err := NewSAGE(SAGEConfig{InDim: 0, Hidden: 4, Classes: 2}); err == nil {
		t.Error("bad SAGE config accepted")
	}
	if _, err := NewSAGE(SAGEConfig{InDim: 4, Hidden: 4, Classes: 1}); err == nil {
		t.Error("1-class SAGE accepted")
	}
	if _, err := NewGAT(GATConfig{InDim: 0, Hidden: 4, Heads: 2, Classes: 2}); err == nil {
		t.Error("bad GAT config accepted")
	}
	if _, err := NewGAT(GATConfig{InDim: 4, Hidden: 4, Heads: 0, Classes: 2}); err == nil {
		t.Error("0-head GAT accepted")
	}
}

func TestForwardValidatesShapes(t *testing.T) {
	_, _, b, _, _ := tinySetup(t)
	m, err := NewSAGE(SAGEConfig{InDim: 8, Hidden: 4, Classes: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forward(b, tensor.Rand(3, 8, 1)); err == nil {
		t.Error("wrong row count accepted")
	}
	if _, err := m.Forward(b, tensor.Rand(len(b.Unique), 5, 1)); err == nil {
		t.Error("wrong feature dim accepted")
	}
	if err := m.Backward(tensor.New(1, 3)); err == nil {
		t.Error("Backward before Forward accepted")
	}
}

func trainEpochs(t *testing.T, kind ModelKind, epochs int) []float64 {
	t.Helper()
	ds, err := graph.DatasetByName("PA")
	if err != nil {
		t.Fatal(err)
	}
	g, err := ds.Scaled(800, 21)
	if err != nil {
		t.Fatal(err)
	}
	const dim, classes = 16, 4
	feats, err := graph.RandomFeatures(g.N(), dim, 9)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := graph.Labels(feats, classes)
	if err != nil {
		t.Fatal(err)
	}
	var m Model
	if kind == KindGAT {
		m, err = NewGAT(GATConfig{InDim: dim, Hidden: 8, Heads: 2, Classes: classes, Seed: 3})
	} else {
		m, err = NewSAGE(SAGEConfig{InDim: dim, Hidden: 32, Classes: classes, Seed: 3})
	}
	if err != nil {
		t.Fatal(err)
	}
	smp, err := sample.NewSampler(g, []int{8, 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	it, err := sample.NewBatchIterator(g, 0.3, 64, 6)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(m, NewAdam(0.01), smp, it, feats, labels)
	if err != nil {
		t.Fatal(err)
	}
	var losses []float64
	for e := 0; e < epochs; e++ {
		st, err := tr.Epoch()
		if err != nil {
			t.Fatal(err)
		}
		if st.Batches == 0 || st.Sampled == 0 {
			t.Fatal("empty epoch")
		}
		losses = append(losses, st.Loss)
	}
	return losses
}

func TestSAGETrainingLossDecreases(t *testing.T) {
	losses := trainEpochs(t, KindSAGE, 5)
	if losses[len(losses)-1] >= losses[0]*0.9 {
		t.Errorf("loss did not decrease: %v", losses)
	}
}

func TestGATTrainingLossDecreases(t *testing.T) {
	losses := trainEpochs(t, KindGAT, 6)
	if losses[len(losses)-1] >= losses[0]*0.97 {
		t.Errorf("loss did not decrease: %v", losses)
	}
}

func TestSGDStep(t *testing.T) {
	p := tensor.Rand(2, 2, 1)
	g := p.Clone()
	orig := p.Clone()
	o := &SGD{LR: 0.1}
	if err := o.Step([]*tensor.Matrix{p}, []*tensor.Matrix{g}); err != nil {
		t.Fatal(err)
	}
	for i := range p.Data {
		want := orig.Data[i] - 0.1*g.Data[i]
		if math.Abs(float64(p.Data[i]-want)) > 1e-6 {
			t.Fatalf("sgd[%d] = %v, want %v", i, p.Data[i], want)
		}
	}
	if err := o.Step([]*tensor.Matrix{p}, nil); err == nil {
		t.Error("mismatched step accepted")
	}
	if err := o.Step([]*tensor.Matrix{p}, []*tensor.Matrix{tensor.New(1, 1)}); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(x) = ||x - target||^2 by gradient steps.
	x := tensor.Rand(1, 4, 3)
	target := []float32{1, -2, 3, 0.5}
	opt := NewAdam(0.05)
	for iter := 0; iter < 500; iter++ {
		g := tensor.New(1, 4)
		for j := range target {
			g.Data[j] = 2 * (x.Data[j] - target[j])
		}
		if err := opt.Step([]*tensor.Matrix{x}, []*tensor.Matrix{g}); err != nil {
			t.Fatal(err)
		}
	}
	for j := range target {
		if math.Abs(float64(x.Data[j]-target[j])) > 0.05 {
			t.Fatalf("adam did not converge: x[%d]=%v target %v", j, x.Data[j], target[j])
		}
	}
}

func TestCostModel(t *testing.T) {
	sage := DefaultCostModel(KindSAGE, 1024, 2)
	gat := DefaultCostModel(KindGAT, 1024, 2)
	// Paper batch: 8000 seeds, 2-hop 25/10 fanouts ~ 2M vertices, 2.2M edges.
	const v, e = 2_000_000, 2_200_000
	fs, err := sage.FLOPsPerIteration(v, e)
	if err != nil {
		t.Fatal(err)
	}
	fg, err := gat.FLOPsPerIteration(v, e)
	if err != nil {
		t.Fatal(err)
	}
	if fs <= 0 || fg <= 0 {
		t.Fatal("non-positive FLOPs")
	}
	ts, err := sage.IterationSeconds(v, e)
	if err != nil {
		t.Fatal(err)
	}
	tg, err := gat.IterationSeconds(v, e)
	if err != nil {
		t.Fatal(err)
	}
	// Compute per iteration should be O(10-300ms) on an A100 — well under
	// a second, and GAT (8 heads) must cost more than SAGE per §2.2.
	if ts <= 0 || ts > 1 {
		t.Errorf("SAGE iteration %.3fs out of plausible range", ts)
	}
	if tg <= ts {
		t.Errorf("GAT %.3fs should cost more than SAGE %.3fs", tg, ts)
	}
	if _, err := sage.FLOPsPerIteration(0, 10); err == nil {
		t.Error("zero vertices accepted")
	}
	bad := sage
	bad.SustainedTFLOPS = 0
	if _, err := bad.IterationSeconds(v, e); err == nil {
		t.Error("zero TFLOPS accepted")
	}
	if KindSAGE.String() != "GraphSAGE" || KindGAT.String() != "GAT" {
		t.Error("kind names changed")
	}
}

func TestNewTrainerErrors(t *testing.T) {
	if _, err := NewTrainer(nil, nil, nil, nil, nil, nil); err == nil {
		t.Error("nil components accepted")
	}
	g, err := graph.GenZipf(50, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	feats, err := graph.RandomFeatures(50, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewSAGE(SAGEConfig{InDim: 8, Hidden: 4, Classes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	smp, err := sample.NewSampler(g, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	it, err := sample.NewBatchIterator(g, 0.5, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTrainer(m, &SGD{LR: 0.1}, smp, it, feats, []int32{0}); err == nil {
		t.Error("label mismatch accepted")
	}
}

func TestGCNForwardShape(t *testing.T) {
	_, _, b, feats, _ := tinySetup(t)
	m, err := NewGCN(GCNConfig{InDim: 8, Hidden: 16, Classes: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	logits, err := m.Forward(b, feats)
	if err != nil {
		t.Fatal(err)
	}
	if logits.Rows != len(b.Seeds) || logits.Cols != 3 {
		t.Fatalf("logits %dx%d", logits.Rows, logits.Cols)
	}
	if m.Name() != "gcn" {
		t.Error("name changed")
	}
}

func TestGCNGradientCheck(t *testing.T) {
	_, _, b, feats, labels := tinySetup(t)
	m, err := NewGCN(GCNConfig{InDim: 8, Hidden: 6, Classes: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	gradientCheck(t, m, b, feats, labels, 25)
}

func TestGCNConfigErrors(t *testing.T) {
	if _, err := NewGCN(GCNConfig{InDim: 0, Hidden: 4, Classes: 2}); err == nil {
		t.Error("bad GCN config accepted")
	}
	if _, err := NewGCN(GCNConfig{InDim: 4, Hidden: 4, Classes: 1}); err == nil {
		t.Error("1-class GCN accepted")
	}
	m, err := NewGCN(GCNConfig{InDim: 8, Hidden: 4, Classes: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Backward(tensor.New(1, 3)); err == nil {
		t.Error("Backward before Forward accepted")
	}
}

func TestGCNTrainingLossDecreases(t *testing.T) {
	g, err := graph.GenZipf(600, 6, 0.9, 13)
	if err != nil {
		t.Fatal(err)
	}
	const dim, classes = 16, 4
	feats, err := graph.RandomFeatures(g.N(), dim, 9)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := graph.Labels(feats, classes)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewGCN(GCNConfig{InDim: dim, Hidden: 24, Classes: classes, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	smp, err := sample.NewSampler(g, []int{8, 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	it, err := sample.NewBatchIterator(g, 0.3, 64, 6)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(m, NewAdam(0.02), smp, it, feats, labels)
	if err != nil {
		t.Fatal(err)
	}
	var first, last float64
	for e := 0; e < 12; e++ {
		st, err := tr.Epoch()
		if err != nil {
			t.Fatal(err)
		}
		if e == 0 {
			first = st.Loss
		}
		last = st.Loss
	}
	// GCN smooths away the self features the synthetic labels derive
	// from, so it learns more slowly than SAGE; require a clear but
	// modest drop.
	if last >= first*0.93 {
		t.Errorf("GCN loss did not decrease: %.4f -> %.4f", first, last)
	}
}

func TestGCNCostModel(t *testing.T) {
	gcn := DefaultCostModel(KindGCN, 1024, 2)
	sage := DefaultCostModel(KindSAGE, 1024, 2)
	fg, err := gcn.FLOPsPerIteration(1_000_000, 1_200_000)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := sage.FLOPsPerIteration(1_000_000, 1_200_000)
	if err != nil {
		t.Fatal(err)
	}
	// GCN lacks the self-concat, so it costs less than SAGE.
	if fg >= fs {
		t.Errorf("GCN FLOPs %v >= SAGE %v", fg, fs)
	}
	if KindGCN.String() != "GCN" {
		t.Error("kind name changed")
	}
}
