// Package units provides the physical quantity types shared by the Moment
// simulator: byte sizes, bandwidths, and durations, with parsing and
// formatting helpers. Bandwidths are stored as bytes per second in float64;
// sizes as int64 bytes.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Common binary byte sizes.
const (
	KiB int64 = 1 << 10
	MiB int64 = 1 << 20
	GiB int64 = 1 << 30
	TiB int64 = 1 << 40
)

// Bytes is a data size in bytes.
type Bytes int64

// B constructs a Bytes value from a count of bytes.
func B(n int64) Bytes { return Bytes(n) }

// KB, MB, GB, TB construct Bytes from binary multiples (KiB/MiB/GiB/TiB).
func KB(n float64) Bytes { return Bytes(n * float64(KiB)) }
func MB(n float64) Bytes { return Bytes(n * float64(MiB)) }
func GB(n float64) Bytes { return Bytes(n * float64(GiB)) }
func TB(n float64) Bytes { return Bytes(n * float64(TiB)) }

// Int64 returns the raw byte count.
func (b Bytes) Int64() int64 { return int64(b) }

// GiBf returns the size in GiB as a float.
func (b Bytes) GiBf() float64 { return float64(b) / float64(GiB) }

// String renders the size with a binary-unit suffix.
func (b Bytes) String() string {
	abs := int64(b)
	neg := ""
	if abs < 0 {
		neg = "-"
		abs = -abs
	}
	switch {
	case abs >= TiB:
		return fmt.Sprintf("%s%.2fTiB", neg, float64(abs)/float64(TiB))
	case abs >= GiB:
		return fmt.Sprintf("%s%.2fGiB", neg, float64(abs)/float64(GiB))
	case abs >= MiB:
		return fmt.Sprintf("%s%.2fMiB", neg, float64(abs)/float64(MiB))
	case abs >= KiB:
		return fmt.Sprintf("%s%.2fKiB", neg, float64(abs)/float64(KiB))
	}
	return fmt.Sprintf("%s%dB", neg, abs)
}

// ParseBytes parses strings like "384GB", "3.84TB", "56GiB", "512", "14 GB".
// Decimal and binary suffixes are both treated as binary multiples, matching
// the paper's loose usage of GB/GiB.
func ParseBytes(s string) (Bytes, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("units: empty byte size")
	}
	i := 0
	for i < len(s) && (s[i] >= '0' && s[i] <= '9' || s[i] == '.' || s[i] == '-' || s[i] == '+') {
		i++
	}
	numPart, unitPart := s[:i], strings.TrimSpace(s[i:])
	v, err := strconv.ParseFloat(numPart, 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad byte size %q: %w", s, err)
	}
	unit := strings.ToUpper(unitPart)
	unit = strings.TrimSuffix(unit, "IB") // KiB -> K
	unit = strings.TrimSuffix(unit, "B")  // KB -> K, B -> ""
	mult := float64(1)
	switch unit {
	case "":
	case "K":
		mult = float64(KiB)
	case "M":
		mult = float64(MiB)
	case "G":
		mult = float64(GiB)
	case "T":
		mult = float64(TiB)
	default:
		return 0, fmt.Errorf("units: bad byte unit %q", unitPart)
	}
	return Bytes(v * mult), nil
}

// Bandwidth is a transfer rate in bytes per second.
type Bandwidth float64

// GiBps constructs a Bandwidth from GiB per second.
func GiBps(v float64) Bandwidth { return Bandwidth(v * float64(GiB)) }

// MiBps constructs a Bandwidth from MiB per second.
func MiBps(v float64) Bandwidth { return Bandwidth(v * float64(MiB)) }

// Gbps constructs a Bandwidth from gigabits per second (decimal, as used for
// network links like "100Gbps").
func Gbps(v float64) Bandwidth { return Bandwidth(v * 1e9 / 8) }

// GiBpsf returns the rate in GiB/s.
func (bw Bandwidth) GiBpsf() float64 { return float64(bw) / float64(GiB) }

// IsZero reports whether the bandwidth is zero (or negligibly small).
func (bw Bandwidth) IsZero() bool { return math.Abs(float64(bw)) < 1e-9 }

// String renders the bandwidth in GiB/s (or MiB/s when small).
func (bw Bandwidth) String() string {
	g := float64(bw) / float64(GiB)
	if math.Abs(g) >= 0.1 {
		return fmt.Sprintf("%.2fGiB/s", g)
	}
	return fmt.Sprintf("%.2fMiB/s", float64(bw)/float64(MiB))
}

// TimeFor returns the duration needed to move n bytes at this rate.
// A zero or negative bandwidth yields an infinite duration.
func (bw Bandwidth) TimeFor(n Bytes) Duration {
	if bw <= 0 {
		return Duration(math.Inf(1))
	}
	return Duration(float64(n) / float64(bw))
}

// Duration is simulated time in seconds. The simulator uses float seconds
// rather than time.Duration to avoid overflow and precision cliffs when
// bisection probes very long horizons.
type Duration float64

// Seconds constructs a Duration from seconds.
func Seconds(v float64) Duration { return Duration(v) }

// Sec returns the duration in seconds.
func (d Duration) Sec() float64 { return float64(d) }

// Std converts to a time.Duration (saturating on overflow/infinity).
func (d Duration) Std() time.Duration {
	s := float64(d) * float64(time.Second)
	if math.IsInf(s, 1) || s > float64(math.MaxInt64) {
		return time.Duration(math.MaxInt64)
	}
	if math.IsInf(s, -1) || s < float64(math.MinInt64) {
		return time.Duration(math.MinInt64)
	}
	return time.Duration(s)
}

// IsInf reports whether the duration is infinite (unreachable event).
func (d Duration) IsInf() bool { return math.IsInf(float64(d), 0) }

// String renders the duration with adaptive precision.
func (d Duration) String() string {
	s := float64(d)
	switch {
	case math.IsInf(s, 1):
		return "+inf"
	case math.IsInf(s, -1):
		return "-inf"
	case math.Abs(s) >= 1:
		return fmt.Sprintf("%.3fs", s)
	case math.Abs(s) >= 1e-3:
		return fmt.Sprintf("%.3fms", s*1e3)
	case s == 0:
		return "0s"
	default:
		return fmt.Sprintf("%.3fus", s*1e6)
	}
}

// Rate returns the bandwidth implied by moving n bytes over d.
func Rate(n Bytes, d Duration) Bandwidth {
	if d <= 0 {
		return Bandwidth(math.Inf(1))
	}
	return Bandwidth(float64(n) / float64(d))
}

// ParseBandwidth parses rates like "20GiB/s", "6GB/s", "100Gbps", "36GiB".
// A bare byte-size is interpreted as that size per second; "Gbps"/"Mbps"
// are decimal bits per second.
func ParseBandwidth(s string) (Bandwidth, error) {
	t := strings.TrimSpace(s)
	lower := strings.ToLower(t)
	if strings.HasSuffix(lower, "gbps") {
		v, err := strconv.ParseFloat(strings.TrimSpace(t[:len(t)-4]), 64)
		if err != nil {
			return 0, fmt.Errorf("units: bad bandwidth %q: %w", s, err)
		}
		return Gbps(v), nil
	}
	if strings.HasSuffix(lower, "mbps") {
		v, err := strconv.ParseFloat(strings.TrimSpace(t[:len(t)-4]), 64)
		if err != nil {
			return 0, fmt.Errorf("units: bad bandwidth %q: %w", s, err)
		}
		return Bandwidth(v * 1e6 / 8), nil
	}
	t = strings.TrimSuffix(t, "/s")
	b, err := ParseBytes(t)
	if err != nil {
		return 0, fmt.Errorf("units: bad bandwidth %q: %w", s, err)
	}
	return Bandwidth(b), nil
}
