package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestByteConstructors(t *testing.T) {
	cases := []struct {
		got  Bytes
		want int64
	}{
		{B(7), 7},
		{KB(1), 1 << 10},
		{MB(2), 2 << 20},
		{GB(3), 3 << 30},
		{TB(1), 1 << 40},
		{KB(0.5), 512},
	}
	for _, c := range cases {
		if c.got.Int64() != c.want {
			t.Errorf("got %d, want %d", c.got.Int64(), c.want)
		}
	}
}

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{B(512), "512B"},
		{KB(1), "1.00KiB"},
		{MB(1.5), "1.50MiB"},
		{GB(56), "56.00GiB"},
		{TB(3.2), "3.20TiB"},
		{B(-2048), "-2.00KiB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want Bytes
		err  bool
	}{
		{"512", B(512), false},
		{"512B", B(512), false},
		{"1K", KB(1), false},
		{"1KB", KB(1), false},
		{"1KiB", KB(1), false},
		{"3.84TB", TB(3.84), false},
		{"14 GB", GB(14), false},
		{"768GiB", GB(768), false},
		{"1024MB", GB(1), false},
		{"", 0, true},
		{"abc", 0, true},
		{"12XB", 0, true},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseBytes(%q): expected error, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseBytesRoundTripProperty(t *testing.T) {
	f := func(raw uint32) bool {
		b := Bytes(raw)
		parsed, err := ParseBytes(b.String())
		if err != nil {
			return false
		}
		// String() rounds to 2 decimals, so allow 1% relative slack.
		diff := math.Abs(float64(parsed - b))
		return diff <= math.Max(1, 0.01*float64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBandwidthConstructors(t *testing.T) {
	if got := GiBps(20).GiBpsf(); math.Abs(got-20) > 1e-9 {
		t.Errorf("GiBps(20).GiBpsf() = %v", got)
	}
	if got := float64(Gbps(100)); math.Abs(got-12.5e9) > 1 {
		t.Errorf("Gbps(100) = %v bytes/s, want 12.5e9", got)
	}
	if got := float64(MiBps(2048)); math.Abs(got-float64(GB(2))) > 1 {
		t.Errorf("MiBps(2048) = %v", got)
	}
}

func TestBandwidthTimeFor(t *testing.T) {
	bw := GiBps(2)
	d := bw.TimeFor(GB(4))
	if math.Abs(d.Sec()-2) > 1e-9 {
		t.Errorf("TimeFor = %v, want 2s", d)
	}
	if !Bandwidth(0).TimeFor(GB(1)).IsInf() {
		t.Error("zero bandwidth should yield infinite duration")
	}
	if !Bandwidth(-1).TimeFor(GB(1)).IsInf() {
		t.Error("negative bandwidth should yield infinite duration")
	}
}

func TestBandwidthString(t *testing.T) {
	if got := GiBps(6).String(); got != "6.00GiB/s" {
		t.Errorf("got %q", got)
	}
	if got := MiBps(5).String(); got != "5.00MiB/s" {
		t.Errorf("got %q", got)
	}
}

func TestDurationConversions(t *testing.T) {
	d := Seconds(1.5)
	if d.Std() != 1500*time.Millisecond {
		t.Errorf("Std() = %v", d.Std())
	}
	if Duration(math.Inf(1)).Std() != time.Duration(math.MaxInt64) {
		t.Error("infinite duration should saturate")
	}
	if Duration(math.Inf(-1)).Std() != time.Duration(math.MinInt64) {
		t.Error("negative infinite duration should saturate")
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		in   Duration
		want string
	}{
		{Seconds(2.5), "2.500s"},
		{Seconds(0.012), "12.000ms"},
		{Seconds(12e-6), "12.000us"},
		{Seconds(0), "0s"},
		{Duration(math.Inf(1)), "+inf"},
		{Duration(math.Inf(-1)), "-inf"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestRate(t *testing.T) {
	bw := Rate(GB(10), Seconds(5))
	if math.Abs(bw.GiBpsf()-2) > 1e-9 {
		t.Errorf("Rate = %v, want 2 GiB/s", bw)
	}
	if !math.IsInf(float64(Rate(GB(1), 0)), 1) {
		t.Error("zero time should give infinite rate")
	}
}

func TestRateTimeForInverseProperty(t *testing.T) {
	f := func(nRaw uint32, dMilli uint16) bool {
		n := Bytes(nRaw) + 1
		d := Seconds(float64(dMilli)/1e3 + 1e-3)
		bw := Rate(n, d)
		back := bw.TimeFor(n)
		return math.Abs(back.Sec()-d.Sec()) < 1e-9*math.Max(1, d.Sec())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseBandwidth(t *testing.T) {
	cases := []struct {
		in   string
		want Bandwidth
		err  bool
	}{
		{"20GiB/s", GiBps(20), false},
		{"6GB/s", GiBps(6), false},
		{"36GiB", GiBps(36), false},
		{"100Gbps", Gbps(100), false},
		{"10mbps", Bandwidth(10e6 / 8), false},
		{"512KB/s", Bandwidth(512 << 10), false},
		{"", 0, true},
		{"fast", 0, true},
	}
	for _, c := range cases {
		got, err := ParseBandwidth(c.in)
		if c.err != (err != nil) {
			t.Errorf("ParseBandwidth(%q) err=%v, want err=%v", c.in, err, c.err)
			continue
		}
		if !c.err && math.Abs(float64(got-c.want)) > 1 {
			t.Errorf("ParseBandwidth(%q) = %v, want %v", c.in, float64(got), float64(c.want))
		}
	}
}
