// POST /v1/explain: plan provenance. The endpoint re-runs the planner for
// one request with an explain trail attached and returns every decision the
// search made — candidates enumerated, pruned (and why), score-cache
// verdicts, bisector effort per candidate, the DDAK layout breakdown — as
// structured steps plus a deterministic rendering.
//
// Explain runs are deliberately isolated from the serving fast paths:
//
//   - Serial search, no score cache, no plan cache. A cache hit would
//     change the trail depending on what other tenants planned before, and
//     a parallel search interleaves nondeterministically; byte-determinism
//     for a fixed request is the endpoint's contract (golden-testable,
//     diffable across deploys).
//   - Bounded by its own semaphore (sized off Workers) instead of the
//     admission queue: explain is a forensic/debug surface and must not
//     compete with production planning for queue slots, but also must not
//     fork-bomb the process when a dashboard refreshes.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"moment/internal/core"
	"moment/internal/obs"
	"moment/internal/placement"
	"moment/internal/trainsim"
)

// ExplainResponse is the JSON body of a successful /v1/explain. It carries
// no wall-clock or cache-state fields: two responses for the same request
// are byte-identical.
type ExplainResponse struct {
	Machine string `json:"machine"`
	// Key is the request's canonical fingerprint — the coalescing/cache key
	// /v1/plan would use for the identical problem.
	Key string `json:"key"`

	Placement      PlacementOut `json:"placement"`
	PredictedIOSec float64      `json:"predicted_io_sec"`
	EpochSec       float64      `json:"epoch_sec"`
	Enumerated     int          `json:"enumerated"`
	Evaluated      int          `json:"evaluated"`

	// Steps is the structured trail (sorted deterministically);
	// DroppedSteps counts steps past the trail's bound.
	Steps        []obs.ExplainStep `json:"steps"`
	DroppedSteps int               `json:"dropped_steps,omitempty"`
	// Rendered is the human-readable rendering of the same trail (what
	// momentopt -explain prints).
	Rendered string `json:"rendered"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.replyError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req PlanRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.replyError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	label := s.tenantLabel(tenantOf(r, &req))
	cr, err := canonicalize(&req, s.cfg.DefaultDeadline, s.cfg.MaxDeadline)
	if err != nil {
		var bad errBadRequest
		if errors.As(err, &bad) {
			s.replyError(w, http.StatusBadRequest, "%v", err)
		} else {
			s.replyError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		s.replyError(w, http.StatusServiceUnavailable, "server draining")
		return
	}

	select {
	case s.explainSem <- struct{}{}:
		defer func() { <-s.explainSem }()
	case <-r.Context().Done():
		s.obs.Counter("momentd_client_gone_total").Inc()
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), cr.deadline)
	defer cancel()
	ex := obs.NewExplain()
	in := core.Input{
		Machine:  cr.machine,
		Workload: cr.wl,
		Search: placement.Options{
			Tolerance: cr.tol,
			Serial:    true,
			Explain:   ex,
			Ctx:       ctx,
		},
		Observer: s.obs,
	}
	if cr.faults != nil {
		in.Sim = trainsim.Config{Faults: cr.faults}
	}
	plan, err := core.CoOptimize(in)
	s.obs.Counter("momentd_explain_total", obs.L("tenant", label)).Inc()
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.replyError(w, http.StatusGatewayTimeout, "deadline exceeded while explaining")
		case errors.Is(err, context.Canceled):
			s.replyError(w, http.StatusServiceUnavailable, "explain run canceled")
		default:
			s.replyError(w, http.StatusUnprocessableEntity, "planner: %v", err)
		}
		return
	}

	resp := &ExplainResponse{
		Machine:        cr.name,
		Key:            cr.key,
		Placement:      placementOut(plan.Placement),
		PredictedIOSec: plan.PredictedIO.Sec(),
		Enumerated:     plan.Enumerated,
		Evaluated:      plan.Evaluated,
		Steps:          ex.Steps(),
		DroppedSteps:   ex.Dropped(),
		Rendered:       ex.Render(),
	}
	if plan.Epoch != nil {
		resp.EpochSec = plan.Epoch.EpochTime.Sec()
	}
	if resp.Steps == nil {
		resp.Steps = []obs.ExplainStep{}
	}
	s.reply(w, http.StatusOK, resp)
}
