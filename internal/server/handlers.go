package server

import (
	"fmt"
	"net/http"
	"net/http/pprof"

	"moment/internal/obs"
)

// This file is the single exposition code path for observer state over
// HTTP: momentd mounts these handlers on its mux, and one-shot CLI runs
// (obsflag -listen) mount the same ones, so the Prometheus text and trace
// JSON a dashboard scrapes are byte-identical regardless of which binary
// produced them.

// MetricsHandler serves the observer's registry in Prometheus text
// exposition format.
func MetricsHandler(o *obs.Observer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := obs.Active(o).WritePrometheus(w); err != nil {
			http.Error(w, fmt.Sprintf("write metrics: %v", err), http.StatusInternalServerError)
		}
	})
}

// TraceHandler serves the observer's span log as Chrome trace-event JSON
// (load it in chrome://tracing or Perfetto).
func TraceHandler(o *obs.Observer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := obs.Active(o).WriteTrace(w); err != nil {
			http.Error(w, fmt.Sprintf("write trace: %v", err), http.StatusInternalServerError)
		}
	})
}

// FlightHandler serves the observer's flight-recorder ring as JSON. A
// disabled recorder serves the empty dump ({"dropped":0,"events":[]})
// rather than 404ing, so forensics tooling can probe unconditionally.
func FlightHandler(o *obs.Observer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := obs.Active(o).Flight().WriteJSON(w); err != nil {
			http.Error(w, fmt.Sprintf("write flight: %v", err), http.StatusInternalServerError)
		}
	})
}

// PprofHandler serves the runtime profiling endpoints under /debug/pprof/
// on a private mux (never the package-global http.DefaultServeMux, which a
// library must not mutate).
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ObsMux bundles the observability endpoints (/metrics, /debug/trace,
// /debug/flight, /debug/pprof/, and a trivial /healthz) for processes that
// want exposition without the planning service itself.
func ObsMux(o *obs.Observer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(o))
	mux.Handle("/debug/trace", TraceHandler(o))
	mux.Handle("/debug/flight", FlightHandler(o))
	mux.Handle("/debug/pprof/", PprofHandler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}
