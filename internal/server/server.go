// Package server turns the one-shot planner into a long-running,
// multi-tenant planning service: an HTTP+JSON daemon (cmd/momentd) that
// accepts concurrent planning requests — machine spec + workload + demand
// in, ranked placements + DDAK layout + fault-degradation report out — and
// shares planner state across callers.
//
// Three mechanisms make the shared planner safe and cheap under load:
//
//   - Coalescing: requests are canonicalized and fingerprinted (see
//     request.go); identical in-flight requests join one planner run
//     (singleflight) and the result fans out to every waiter as an
//     independent deep copy.
//   - Caching: completed plans land in a bounded cross-tenant LRU keyed by
//     the same fingerprint, in front of the score cache the planner threads
//     through placement.Search. Cached entries are cloned on return, so one
//     tenant mutating its response can never corrupt another tenant's view.
//   - Admission control: a bounded worker pool (sized off GOMAXPROCS)
//     drains a bounded queue; requests past their deadline, past the queue
//     bound, or past their tenant's concurrency quota are shed with 429 and
//     a Retry-After estimate instead of queued into certain failure.
//     Graceful drain (Server.Drain) stops intake, finishes queued work, and
//     lets a supervisor restart the daemon without dropping accepted
//     requests.
//
// Everything observable — queue depth, coalesce hits, shed counts,
// per-tenant latency histograms, planner cache hit rates — flows through
// the internal/obs registry and is exposed on /metrics (Prometheus text)
// and /debug/trace (Chrome trace JSON).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sync"
	"time"

	"moment/internal/core"
	"moment/internal/obs"
	"moment/internal/placement"
	"moment/internal/scorecache"
	"moment/internal/trainsim"
)

// Config tunes the planning service. The zero value serves with defaults.
type Config struct {
	// Workers bounds concurrent planner runs (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds runs accepted but not yet started (default
	// 4x Workers). A full queue sheds with 429.
	QueueDepth int
	// TenantConcurrency bounds one tenant's outstanding (queued or
	// running, including coalesced) requests (default 8; negative
	// disables the limit).
	TenantConcurrency int
	// PlanCacheEntries bounds the cross-tenant plan cache (default 256;
	// negative disables).
	PlanCacheEntries int
	// ScoreCacheEntries bounds the score cache shared by every planner
	// run (default 16384; negative disables).
	ScoreCacheEntries int
	// DefaultDeadline applies to requests without deadline_ms (default
	// 60s); MaxDeadline caps client-supplied deadlines (default 5m).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// TenantLabelCap bounds the distinct tenant values used as metric
	// labels; tenants beyond the cap aggregate under "other" so a tenant
	// flood cannot blow up the exposition (default 32).
	TenantLabelCap int
	// FlightEvents, when > 0, attaches a flight recorder of that many
	// events to the observer: admission decisions, plan-cache hits, sheds,
	// drains and span completions land on the ring and are dumpable at
	// /debug/flight. 0 leaves flight recording to the caller (obsflag
	// -flight also enables it); recording is zero-alloc when disabled.
	FlightEvents int
	// WatchdogDir, when non-empty, starts the anomaly watchdog: on a rule
	// trip it writes a diagnostics bundle (trip + flight dump + metrics +
	// goroutine/heap profiles) under this directory. Empty disables the
	// watchdog unless WatchdogRules is set (rules without a dir trip
	// metrics and OnTrip only).
	WatchdogDir string
	// WatchdogRules overrides DefaultWatchdogRules(cfg); nil with a
	// WatchdogDir uses the defaults.
	WatchdogRules []obs.Rule
	// WatchdogInterval is the check period (default 5s); WatchdogCooldown
	// suppresses repeat bundles after a trip (default 1m).
	WatchdogInterval time.Duration
	WatchdogCooldown time.Duration
	// Observer receives the server's metrics and traces and is threaded
	// into every planner run. Nil gets a fresh enabled observer (the
	// server always meters itself — /metrics must work).
	Observer *obs.Observer
}

// DefaultWatchdogRules is the rule set a WatchdogDir-configured server runs
// with: a shed storm (sheds per check interval), queue saturation, an
// epoch-time regression against the learned baseline, and a warm-abort
// storm in the bisector.
func DefaultWatchdogRules(cfg Config) []obs.Rule {
	return []obs.Rule{
		{Name: "shed-storm", Series: "momentd_shed_total", Kind: obs.RuleDeltaMax, Max: 50},
		{Name: "queue-saturated", Series: "momentd_queue_depth", Kind: obs.RuleMax,
			Max: 0.9 * float64(cfg.QueueDepth)},
		{Name: "epoch-regress", Series: "trainsim_epoch_seconds", Kind: obs.RuleRegress,
			Factor: 2, MinSamples: 5},
		{Name: "warm-abort-storm", Series: "maxflow_warm_aborts_total", Kind: obs.RuleDeltaMax, Max: 1000},
	}
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.TenantConcurrency == 0 {
		c.TenantConcurrency = 8
	}
	if c.PlanCacheEntries == 0 {
		c.PlanCacheEntries = 256
	}
	if c.ScoreCacheEntries == 0 {
		c.ScoreCacheEntries = 16384
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 60 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.TenantLabelCap <= 0 {
		c.TenantLabelCap = 32
	}
	return c
}

// flight is one planner run plus the set of requests waiting on it.
type flight struct {
	key    string
	cr     *canonReq
	ctx    context.Context
	cancel context.CancelFunc

	done chan struct{} // closed when res/err are set
	res  *planResult
	err  error

	// Guarded by Server.mu: waiters still attached, and whether the
	// flight was abandoned (every waiter left before it ran).
	waiters int
	dead    bool
}

// Server is the planning service. Construct with New; it implements
// http.Handler (mount it or hand it to http.Server directly).
type Server struct {
	cfg    Config
	obs    *obs.Observer
	scores *scorecache.Scores
	plans  *scorecache.Cache[string, *planResult]
	mux    *http.ServeMux

	// plan executes one planner run. Overridable in tests to make
	// coalescing/shedding deterministic without paying for real solves.
	plan func(ctx context.Context, cr *canonReq) (*planResult, error)

	watchdog   *obs.Watchdog
	explainSem chan struct{} // bounds concurrent /v1/explain planner runs

	mu       sync.Mutex
	inflight map[string]*flight
	tenants  map[string]int // outstanding requests per tenant
	labels   *obs.LabelCap  // tenant -> metric label (capped)
	queued   int
	draining bool
	queue    chan *flight

	ewmaBits atomicFloat // smoothed planner run seconds (deadline shedding)
	workerWG sync.WaitGroup
}

// New starts a Server: worker goroutines are running on return. Callers
// that create servers dynamically (tests, the load-test harness) must
// Close or Drain them.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	o := cfg.Observer
	if o == nil {
		o = obs.New()
	}
	if cfg.FlightEvents > 0 {
		o.EnableFlight(cfg.FlightEvents)
	}
	s := &Server{
		cfg:        cfg,
		obs:        o,
		scores:     scorecache.NewScores(cfg.ScoreCacheEntries),
		plans:      scorecache.New[string, *planResult](cfg.PlanCacheEntries),
		inflight:   map[string]*flight{},
		tenants:    map[string]int{},
		labels:     obs.NewLabelCap(cfg.TenantLabelCap),
		queue:      make(chan *flight, cfg.QueueDepth),
		explainSem: make(chan struct{}, cfg.Workers),
	}
	s.plan = s.planReal
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/plan", s.handlePlan)
	s.mux.HandleFunc("/v1/explain", s.handleExplain)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.Handle("/metrics", MetricsHandler(o))
	s.mux.Handle("/debug/trace", TraceHandler(o))
	s.mux.Handle("/debug/flight", FlightHandler(o))
	s.mux.Handle("/debug/pprof/", PprofHandler())
	for i := 0; i < cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	if cfg.WatchdogDir != "" || cfg.WatchdogRules != nil {
		rules := cfg.WatchdogRules
		if rules == nil {
			rules = DefaultWatchdogRules(cfg)
		}
		s.watchdog = &obs.Watchdog{
			Obs:      o,
			Rules:    rules,
			Interval: cfg.WatchdogInterval,
			Dir:      cfg.WatchdogDir,
			Cooldown: cfg.WatchdogCooldown,
		}
		s.watchdog.Start()
	}
	return s
}

// Watchdog returns the server's anomaly watchdog, or nil when disabled.
func (s *Server) Watchdog() *obs.Watchdog { return s.watchdog }

// Observer returns the observer the server meters itself with.
func (s *Server) Observer() *obs.Observer { return s.obs }

// ServeHTTP dispatches to the service mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain gracefully shuts the server down: new requests are refused with
// 503, queued flights finish, and workers exit. Returns ctx's error if the
// drain does not complete in time (workers keep finishing regardless).
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	began := false
	if !s.draining {
		s.draining = true
		began = true
		close(s.queue) // enqueue checks draining under mu, so no racing send
	}
	s.mu.Unlock()
	if began {
		s.obs.Event(obs.Event{Kind: obs.EvDrain, Name: "drain-begin", V1: float64(s.plans.Len())})
	}
	s.obs.Gauge("momentd_draining").Set(1)
	done := make(chan struct{})
	go func() {
		s.workerWG.Wait()
		// One final watchdog check before the process can exit: a shed
		// storm racing the drain still produces its bundle.
		s.watchdog.Stop()
		s.obs.Event(obs.Event{Kind: obs.EvDrain, Name: "drain-end"})
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close drains with a 10-second budget (test/example convenience).
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return s.Drain(ctx)
}

// tenantOf resolves the request's tenant: header beats body beats default.
func tenantOf(r *http.Request, body *PlanRequest) string {
	if t := r.Header.Get("X-Moment-Tenant"); t != "" {
		return t
	}
	if body.Tenant != "" {
		return body.Tenant
	}
	return "default"
}

// tenantLabel maps a tenant to its metric label through the shared
// obs.LabelCap (tenants past the cap aggregate under obs.Overflow — the
// same mechanism bounding flight-recorder subjects and explain reasons).
func (s *Server) tenantLabel(tenant string) string {
	label, fresh := s.labels.Put(tenant)
	if fresh {
		s.obs.Gauge("momentd_tenants").Set(float64(s.labels.Len()))
	}
	return label
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		s.replyError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req PlanRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.replyError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	tenant := tenantOf(r, &req)
	label := s.tenantLabel(tenant)
	cr, err := canonicalize(&req, s.cfg.DefaultDeadline, s.cfg.MaxDeadline)
	if err != nil {
		var bad errBadRequest
		if errors.As(err, &bad) {
			s.replyError(w, http.StatusBadRequest, "%v", err)
		} else {
			s.replyError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	defer func() {
		s.obs.Histogram("momentd_request_seconds", obs.L("tenant", label)).
			Observe(time.Since(start).Seconds())
	}()

	// Fast path: a completed identical plan is in the cross-tenant cache.
	// Served outside admission control — a cache hit costs microseconds
	// and holds no worker.
	if res, ok := s.plans.Get(cr.key); ok {
		s.obs.Counter("momentd_plan_cache_hits_total", obs.L("tenant", label)).Inc()
		s.obs.Event(obs.Event{Kind: obs.EvCache, Name: "plan", Subject: label, Reason: "hit"})
		s.reply(w, http.StatusOK, res.response(tenant, cr.topK, false, true))
		return
	}
	s.obs.Counter("momentd_plan_cache_misses_total").Inc()
	s.obs.Event(obs.Event{Kind: obs.EvCache, Name: "plan", Subject: label, Reason: "miss"})

	fl, coalesced, err := s.admit(cr, tenant)
	if err != nil {
		var shed *shedError
		if errors.As(err, &shed) {
			s.obs.Counter("momentd_shed_total", obs.L("reason", shed.reason)).Inc()
			s.obs.Event(obs.Event{Kind: obs.EvAdmission, Name: "shed",
				Subject: label, Reason: shed.reason, V1: float64(shed.retryAfterSec)})
			w.Header().Set("Retry-After", fmt.Sprintf("%d", shed.retryAfterSec))
			s.replyError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		s.replyError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	if coalesced {
		s.obs.Counter("momentd_coalesced_total", obs.L("tenant", label)).Inc()
		s.obs.Event(obs.Event{Kind: obs.EvAdmission, Name: "coalesced", Subject: label})
	} else {
		s.obs.Event(obs.Event{Kind: obs.EvAdmission, Name: "admitted", Subject: label})
	}
	defer s.release(fl, tenant)

	select {
	case <-fl.done:
	case <-r.Context().Done():
		// Client gone: detach. release (deferred) cancels the run if this
		// was the last waiter, freeing the worker slot.
		s.obs.Counter("momentd_client_gone_total").Inc()
		return
	}
	if fl.err != nil {
		switch {
		case errors.Is(fl.err, context.DeadlineExceeded):
			s.replyError(w, http.StatusGatewayTimeout, "deadline exceeded while planning")
		case errors.Is(fl.err, context.Canceled):
			s.replyError(w, http.StatusServiceUnavailable, "planner run canceled")
		default:
			s.replyError(w, http.StatusUnprocessableEntity, "planner: %v", fl.err)
		}
		return
	}
	s.reply(w, http.StatusOK, fl.res.response(tenant, cr.topK, coalesced, false))
}

// shedError is an admission refusal with its 429 metadata.
type shedError struct {
	reason        string
	retryAfterSec int
	msg           string
}

func (e *shedError) Error() string { return e.msg }

// admit coalesces the request into an existing flight or queues a new one,
// enforcing the tenant quota, queue bound and deadline feasibility. On
// success the caller owns one waiter reference (release it via release).
func (s *Server) admit(cr *canonReq, tenant string) (*flight, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, false, errors.New("server draining")
	}
	limit := s.cfg.TenantConcurrency
	if limit > 0 && s.tenants[tenant] >= limit {
		return nil, false, &shedError{
			reason:        "tenant_limit",
			retryAfterSec: 1,
			msg:           fmt.Sprintf("tenant %q at its concurrency limit (%d)", tenant, limit),
		}
	}
	if fl, ok := s.inflight[cr.key]; ok && !fl.dead {
		fl.waiters++
		s.tenants[tenant]++
		return fl, true, nil
	}
	// New run: it must clear the queue bound and plausibly meet its
	// deadline given the queue ahead of it (deadline-aware shedding —
	// queueing a request into certain timeout helps nobody).
	if s.queued >= s.cfg.QueueDepth {
		return nil, false, &shedError{
			reason:        "queue_full",
			retryAfterSec: s.retryAfterSec(s.cfg.QueueDepth),
			msg:           fmt.Sprintf("queue full (%d waiting)", s.queued),
		}
	}
	if wait := s.estimatedWait(s.queued + 1); wait > cr.deadline {
		return nil, false, &shedError{
			reason:        "deadline",
			retryAfterSec: s.retryAfterSec(s.queued),
			msg: fmt.Sprintf("estimated wait %.1fs exceeds deadline %.1fs",
				wait.Seconds(), cr.deadline.Seconds()),
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), cr.deadline)
	fl := &flight{
		key:     cr.key,
		cr:      cr,
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		waiters: 1,
	}
	s.inflight[cr.key] = fl
	s.tenants[tenant]++
	s.queued++
	s.obs.Gauge("momentd_queue_depth").Set(float64(s.queued))
	s.queue <- fl // buffered to QueueDepth; the bound above keeps this non-blocking
	return fl, false, nil
}

// release drops one waiter reference. The last waiter to leave an
// unfinished flight cancels its run (freeing the worker slot or letting the
// queue skip it) and unmaps it so later identical requests start fresh.
func (s *Server) release(fl *flight, tenant string) {
	s.mu.Lock()
	s.tenants[tenant]--
	if s.tenants[tenant] <= 0 {
		delete(s.tenants, tenant)
	}
	fl.waiters--
	abandoned := fl.waiters == 0 && !fl.dead
	if abandoned {
		select {
		case <-fl.done: // completed normally; nothing to tear down
			abandoned = false
		default:
			fl.dead = true
			if s.inflight[fl.key] == fl {
				delete(s.inflight, fl.key)
			}
		}
	}
	s.mu.Unlock()
	if abandoned {
		fl.cancel()
	}
}

// estimatedWait predicts time-in-queue for a request entering at the given
// position, from the smoothed planner run time. Zero before the first
// completed run (no estimate — admit optimistically).
func (s *Server) estimatedWait(position int) time.Duration {
	ewma := s.ewmaBits.load()
	if ewma <= 0 {
		return 0
	}
	runsAhead := float64(position+s.cfg.Workers-1) / float64(s.cfg.Workers)
	return time.Duration(runsAhead * ewma * float64(time.Second))
}

// retryAfterSec converts the queue-wait estimate into a whole-second
// Retry-After value. The HTTP header has no sub-second resolution, so
// fractional estimates round up, and the result is clamped to >= 1: a
// Retry-After of 0 invites an immediate retry into the same full queue.
func (s *Server) retryAfterSec(position int) int {
	sec := int(math.Ceil(s.estimatedWait(position).Seconds()))
	if sec < 1 {
		return 1
	}
	return sec
}

// worker drains the queue until Drain closes it.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for fl := range s.queue {
		s.mu.Lock()
		s.queued--
		s.obs.Gauge("momentd_queue_depth").Set(float64(s.queued))
		dead := fl.dead
		s.mu.Unlock()
		if dead || fl.ctx.Err() != nil {
			// Every waiter left (or the deadline lapsed) while queued:
			// don't burn a planner run on a result nobody wants.
			s.obs.Counter("momentd_jobs_expired_total").Inc()
			s.finish(fl, nil, fl.ctx.Err())
			continue
		}
		start := time.Now()
		s.obs.Gauge("momentd_inflight_runs").Add(1)
		res, err := s.plan(fl.ctx, fl.cr)
		s.obs.Gauge("momentd_inflight_runs").Add(-1)
		elapsed := time.Since(start)
		s.obs.Counter("momentd_planner_runs_total").Inc()
		s.obs.Histogram("momentd_planner_run_seconds").Observe(elapsed.Seconds())
		s.ewmaBits.update(elapsed.Seconds())
		if err == nil {
			s.plans.Put(fl.key, res)
		} else if isCtxErr(err) {
			s.obs.Counter("momentd_runs_canceled_total").Inc()
		} else {
			s.obs.Counter("momentd_runs_failed_total").Inc()
		}
		s.finish(fl, res, err)
	}
}

// finish publishes a flight's outcome and unmaps it.
func (s *Server) finish(fl *flight, res *planResult, err error) {
	if err == nil && res == nil {
		err = errors.New("momentd: planner returned no result")
	}
	fl.res, fl.err = res, err
	s.mu.Lock()
	if s.inflight[fl.key] == fl {
		delete(s.inflight, fl.key)
	}
	s.mu.Unlock()
	close(fl.done)
	fl.cancel()
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// planReal runs the actual planner: profile, placement search (sharing the
// server's score cache, honoring the flight's context), DDAK layout, and
// the simulated epoch — optionally degraded by the request's fault
// schedule.
func (s *Server) planReal(ctx context.Context, cr *canonReq) (*planResult, error) {
	start := time.Now()
	in := core.Input{
		Machine:  cr.machine,
		Workload: cr.wl,
		Search: placement.Options{
			Tolerance:  cr.tol,
			KeepScores: true,
			Cache:      s.scores,
			Ctx:        ctx,
		},
		Observer: s.obs,
	}
	if cr.faults != nil {
		in.Sim = trainsim.Config{Faults: cr.faults}
	}
	plan, err := core.CoOptimize(in)
	if err != nil {
		return nil, err
	}
	return newPlanResult(cr, plan, time.Since(start)), nil
}

// Stats is the /v1/stats document: a quick operational snapshot (the full
// series live on /metrics).
type Stats struct {
	Draining     bool    `json:"draining"`
	Workers      int     `json:"workers"`
	QueueDepth   int     `json:"queue_depth"`
	QueuedNow    int     `json:"queued_now"`
	InflightRuns int     `json:"inflight_runs"`
	Tenants      int     `json:"tenants"`
	PlanRunEWMA  float64 `json:"plan_run_ewma_sec"`

	PlanCacheLen       int     `json:"plan_cache_len"`
	PlanCacheHitRate   float64 `json:"plan_cache_hit_rate"`
	ScoreCacheLen      int     `json:"score_cache_len"`
	ScoreCacheHitRate  float64 `json:"score_cache_hit_rate"`
	ScoreCacheEvicted  uint64  `json:"score_cache_evicted"`
	PlanCacheEvictions uint64  `json:"plan_cache_evicted"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := Stats{
		Draining:   s.draining,
		Workers:    s.cfg.Workers,
		QueueDepth: s.cfg.QueueDepth,
		QueuedNow:  s.queued,
		Tenants:    len(s.tenants),
	}
	s.mu.Unlock()
	st.InflightRuns = int(s.obs.Gauge("momentd_inflight_runs").Value())
	st.PlanRunEWMA = s.ewmaBits.load()
	st.PlanCacheLen = s.plans.Len()
	st.PlanCacheHitRate = s.plans.HitRate()
	_, _, st.PlanCacheEvictions = s.plans.Stats()
	st.ScoreCacheLen = s.scores.Len()
	st.ScoreCacheHitRate = s.scores.HitRate()
	_, _, st.ScoreCacheEvicted = s.scores.Stats()
	s.reply(w, http.StatusOK, st)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		s.obs.Counter("momentd_requests_total", obs.L("code", "503")).Inc()
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) reply(w http.ResponseWriter, code int, body any) {
	s.obs.Counter("momentd_requests_total", obs.L("code", fmt.Sprintf("%d", code))).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

func (s *Server) replyError(w http.ResponseWriter, code int, format string, args ...any) {
	s.reply(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// atomicFloat is a float64 with atomic load and EWMA update.
type atomicFloat struct {
	mu  sync.Mutex
	val float64
}

func (a *atomicFloat) load() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.val
}

// update folds one sample into the smoothed value (alpha 0.3; the first
// sample seeds it).
func (a *atomicFloat) update(v float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.val == 0 {
		a.val = v
		return
	}
	a.val = 0.7*a.val + 0.3*v
}
