// Package loadtest drives synthetic multi-tenant load against an
// in-process planning server and reports what the admission-control and
// coalescing machinery actually did: planner runs vs requests, coalesce
// and cache-hit counts, shed rate, and client-observed latency quantiles.
//
// The generator is fully deterministic for a given Config (seeded
// math/rand, zipf-skewed tenant and problem popularity), so a load-test
// record is reproducible enough to commit next to the benchmark records
// and gate in CI: the serving-path row it contributes to BENCH_*.json
// carries the *simulated* epoch time of the canonical problem — a
// deterministic planner output — never wall-clock latency, which belongs
// in the informational quantile fields only.
package loadtest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"time"

	"moment/internal/experiments"
	"moment/internal/obs"
	"moment/internal/server"
)

// Config shapes a load-test run. The zero value is a usable smoke test.
type Config struct {
	// Tenants is the synthetic tenant population (default 200).
	Tenants int
	// Requests is the total request count (default 1000).
	Requests int
	// Concurrency is the number of concurrent client workers (default 32).
	Concurrency int
	// Problems is the number of distinct planning problems in the mix
	// (default 4). Requests pick a problem zipf-skewed, so a few problems
	// dominate — the regime coalescing and the plan cache are built for.
	Problems int
	// ZipfS/ZipfV shape both skews (defaults 1.3 / 2).
	ZipfS, ZipfV float64
	// Seed makes the request schedule reproducible (default 1).
	Seed int64
	// Server overrides the server-under-test configuration. Leave the
	// Observer nil: the harness installs its own to read counters back.
	Server server.Config
}

func (c Config) withDefaults() Config {
	if c.Tenants <= 0 {
		c.Tenants = 200
	}
	if c.Requests <= 0 {
		c.Requests = 1000
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 32
	}
	if c.Problems <= 0 {
		c.Problems = 4
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.3
	}
	if c.ZipfV < 1 {
		c.ZipfV = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Record is the machine-readable result of one load-test run.
type Record struct {
	Tenants     int `json:"tenants"`
	Requests    int `json:"requests"`
	Concurrency int `json:"concurrency"`
	Problems    int `json:"problems"`

	// Server-side accounting, read from the daemon's own metrics.
	PlannerRuns   int `json:"planner_runs"`
	Coalesced     int `json:"coalesced"`
	PlanCacheHits int `json:"plan_cache_hits"`
	Shed          int `json:"shed"`
	Expired       int `json:"expired"`

	// Client-side accounting.
	OK        int     `json:"ok"`
	Rejected  int     `json:"rejected"` // 429s observed by clients
	Errors    int     `json:"errors"`   // anything else non-200
	ShedRate  float64 `json:"shed_rate"`
	P50MS     float64 `json:"p50_ms"`
	P95MS     float64 `json:"p95_ms"`
	P99MS     float64 `json:"p99_ms"`
	HitP99MS  float64 `json:"hit_p99_ms"` // p99 among plan-cache hits
	ElapsedMS float64 `json:"elapsed_ms"`

	// Canonical problem outputs (deterministic planner results, safe to
	// regression-gate).
	Machine        string  `json:"machine"`
	Dataset        string  `json:"dataset"`
	Model          string  `json:"model"`
	EpochSec       float64 `json:"epoch_sec"`
	PredictedIOSec float64 `json:"predicted_io_sec"`
}

// Check asserts the structural properties the harness exists to prove:
// coalescing/caching collapse a skewed request mix onto few planner runs,
// and nothing fell through the admission machinery unaccounted.
func (r *Record) Check() error {
	if r.OK == 0 {
		return fmt.Errorf("loadtest: no request succeeded (%d rejected, %d errors)", r.Rejected, r.Errors)
	}
	if r.Errors > 0 {
		return fmt.Errorf("loadtest: %d requests failed with non-429 errors", r.Errors)
	}
	if r.PlannerRuns > r.Problems {
		return fmt.Errorf("loadtest: %d planner runs for %d distinct problems — coalescing/caching broken",
			r.PlannerRuns, r.Problems)
	}
	if r.Coalesced+r.PlanCacheHits == 0 {
		return fmt.Errorf("loadtest: skewed mix produced no coalesce or cache hits")
	}
	if r.OK+r.Rejected+r.Errors != r.Requests {
		return fmt.Errorf("loadtest: %d+%d+%d responses != %d requests",
			r.OK, r.Rejected, r.Errors, r.Requests)
	}
	if r.EpochSec <= 0 {
		return fmt.Errorf("loadtest: canonical problem epoch %.3f, want positive", r.EpochSec)
	}
	return nil
}

// BenchRecord converts the load-test result into a benchmark row (layout
// "serve") that joins the committed BENCH_*.json set and the momentbench
// -compare gate. The gated epoch_sec is the canonical problem's simulated
// epoch, so the row is as deterministic as every other benchmark row.
func (r *Record) BenchRecord() experiments.BenchRecord {
	return experiments.BenchRecord{
		Machine:        r.Machine,
		Dataset:        r.Dataset,
		Model:          r.Model,
		Layout:         "serve",
		Policy:         "ddak",
		EpochSec:       r.EpochSec,
		PredictedIOSec: r.PredictedIOSec,
		ServeTenants:   r.Tenants,
		ServeRequests:  r.Requests,
		ServeCoalesced: r.Coalesced,
		ServeCacheHits: r.PlanCacheHits,
		ServeShed:      r.Shed,
		ServeP99MS:     r.P99MS,
		ServeHitP99MS:  r.HitP99MS,
	}
}

// problem is one distinct planning problem of the mix. Batch size is the
// only varied dimension — enough to fragment the coalescing key without
// making some problems invalid.
func problemBody(i int) []byte {
	req := server.PlanRequest{
		Machine: "B",
		Workload: server.WorkloadSpec{
			Dataset:   "PA",
			BatchSize: 8000 + 500*i,
		},
	}
	b, _ := json.Marshal(req)
	return b
}

// Run executes the load test against a fresh in-process server and returns
// the record. The server is drained before returning, so a clean run leaks
// nothing.
func Run(cfg Config) (*Record, error) {
	cfg = cfg.withDefaults()
	o := obs.New()
	scfg := cfg.Server
	scfg.Observer = o
	srv := server.New(scfg)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	// Pre-generate the schedule so client workers stay deterministic
	// regardless of scheduling order.
	rng := rand.New(rand.NewSource(cfg.Seed))
	tenantZipf := rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(cfg.Tenants-1))
	problemZipf := rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(cfg.Problems-1))
	type job struct {
		tenant string
		body   []byte
	}
	jobs := make([]job, cfg.Requests)
	bodies := make([][]byte, cfg.Problems)
	for i := range bodies {
		bodies[i] = problemBody(i)
	}
	for i := range jobs {
		jobs[i] = job{
			tenant: fmt.Sprintf("tenant-%03d", tenantZipf.Uint64()),
			body:   bodies[problemZipf.Uint64()],
		}
	}

	// Warm the canonical problem once so its deterministic outputs are
	// available even if every later identical request coalesces or sheds.
	canonical, err := postOne(ts, "loadtest-warmup", bodies[0])
	if err != nil {
		return nil, fmt.Errorf("loadtest: warmup: %w", err)
	}

	type outcome struct {
		code      int
		cached    bool
		latencyMS float64
	}
	outcomes := make([]outcome, len(jobs))
	var wg sync.WaitGroup
	next := make(chan int)
	start := time.Now()
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := ts.Client()
			for i := range next {
				j := jobs[i]
				t0 := time.Now()
				req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/plan", bytes.NewReader(j.body))
				if err != nil {
					outcomes[i] = outcome{code: -1}
					continue
				}
				req.Header.Set("X-Moment-Tenant", j.tenant)
				resp, err := client.Do(req)
				if err != nil {
					outcomes[i] = outcome{code: -1}
					continue
				}
				var pr server.PlanResponse
				cached := false
				if resp.StatusCode == http.StatusOK {
					if json.NewDecoder(resp.Body).Decode(&pr) == nil {
						cached = pr.CachedPlan
					}
				} else {
					io.Copy(io.Discard, resp.Body)
				}
				resp.Body.Close()
				outcomes[i] = outcome{
					code:      resp.StatusCode,
					cached:    cached,
					latencyMS: float64(time.Since(t0).Microseconds()) / 1e3,
				}
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)

	rec := &Record{
		Tenants:        cfg.Tenants,
		Requests:       cfg.Requests,
		Concurrency:    cfg.Concurrency,
		Problems:       cfg.Problems,
		ElapsedMS:      float64(elapsed.Microseconds()) / 1e3,
		Machine:        canonical.Machine,
		Dataset:        "PA",
		Model:          "GraphSAGE",
		EpochSec:       canonical.Epoch.EpochSec,
		PredictedIOSec: canonical.PredictedIOSec,
	}
	var all, hits []float64
	for _, oc := range outcomes {
		switch {
		case oc.code == http.StatusOK:
			rec.OK++
			all = append(all, oc.latencyMS)
			if oc.cached {
				hits = append(hits, oc.latencyMS)
			}
		case oc.code == http.StatusTooManyRequests:
			rec.Rejected++
		default:
			rec.Errors++
		}
	}
	rec.ShedRate = float64(rec.Rejected) / float64(cfg.Requests)
	rec.P50MS = quantile(all, 0.50)
	rec.P95MS = quantile(all, 0.95)
	rec.P99MS = quantile(all, 0.99)
	rec.HitP99MS = quantile(hits, 0.99)
	rec.PlannerRuns = int(o.Counter("momentd_planner_runs_total").Value()) - 1 // exclude warmup
	rec.Coalesced = int(counterTotal(o, "momentd_coalesced_total"))
	rec.PlanCacheHits = int(counterTotal(o, "momentd_plan_cache_hits_total"))
	rec.Shed = int(counterTotal(o, "momentd_shed_total"))
	rec.Expired = int(o.Counter("momentd_jobs_expired_total").Value())
	return rec, nil
}

// counterTotal sums a counter family across its label sets (the server
// splits coalesce/hit counters by tenant and shed by reason). Snapshot
// keys are full series names: `name` bare or `name{label=...}`.
func counterTotal(o *obs.Observer, name string) float64 {
	total := 0.0
	for series, v := range o.Metrics().Snapshot() {
		if series == name || strings.HasPrefix(series, name+"{") {
			total += v
		}
	}
	return total
}

// postOne issues a single plan request and decodes the response.
func postOne(ts *httptest.Server, tenant string, body []byte) (*server.PlanResponse, error) {
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/plan", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("X-Moment-Tenant", tenant)
	resp, err := ts.Client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	var pr server.PlanResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		return nil, err
	}
	return &pr, nil
}

// quantile returns the q-quantile of xs (nearest-rank), 0 when empty.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q * float64(len(s)))
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
