package loadtest

import (
	"testing"
)

// TestRunSmoke drives a small zipf-skewed mix through a real in-process
// server and checks the structural invariants: few planner runs, plenty of
// coalesce/cache hits, full request accounting, deterministic epoch.
func TestRunSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real planner runs in -short mode")
	}
	rec, err := Run(Config{Tenants: 50, Requests: 300, Concurrency: 16, Problems: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Check(); err != nil {
		t.Fatal(err)
	}
	if rec.PlanCacheHits < rec.Requests/2 {
		t.Errorf("plan cache hits = %d of %d requests; the skewed mix should mostly hit",
			rec.PlanCacheHits, rec.Requests)
	}
	if rec.HitP99MS <= 0 {
		t.Error("no cache-hit latency quantile recorded")
	}

	// Same config, same schedule, same canonical outputs.
	rec2, err := Run(Config{Tenants: 50, Requests: 300, Concurrency: 16, Problems: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.EpochSec != rec.EpochSec || rec2.PredictedIOSec != rec.PredictedIOSec {
		t.Errorf("canonical outputs not deterministic: epoch %v vs %v, predicted %v vs %v",
			rec.EpochSec, rec2.EpochSec, rec.PredictedIOSec, rec2.PredictedIOSec)
	}

	br := rec.BenchRecord()
	if br.Layout != "serve" || br.EpochSec != rec.EpochSec || br.ServeRequests != 300 {
		t.Errorf("bench record mismatch: %+v", br)
	}
}

// TestCheckRejectsBrokenRuns exercises the gate logic itself.
func TestCheckRejectsBrokenRuns(t *testing.T) {
	good := Record{
		Requests: 10, OK: 9, Rejected: 1,
		Problems: 4, PlannerRuns: 3, Coalesced: 2, EpochSec: 1.5,
	}
	if err := good.Check(); err != nil {
		t.Errorf("good record rejected: %v", err)
	}
	cases := map[string]Record{
		"no successes":      {Requests: 10, Rejected: 10, Problems: 4},
		"errors":            {Requests: 10, OK: 9, Errors: 1, Problems: 4, Coalesced: 1, EpochSec: 1},
		"too many runs":     {Requests: 10, OK: 10, Problems: 2, PlannerRuns: 5, Coalesced: 1, EpochSec: 1},
		"no sharing":        {Requests: 10, OK: 10, Problems: 4, PlannerRuns: 4, EpochSec: 1},
		"lost accounting":   {Requests: 10, OK: 5, Problems: 4, PlannerRuns: 1, Coalesced: 1, EpochSec: 1},
		"no epoch recorded": {Requests: 10, OK: 10, Problems: 4, PlannerRuns: 1, Coalesced: 1},
	}
	for name, rec := range cases {
		if err := rec.Check(); err == nil {
			t.Errorf("%s: Check passed, want failure", name)
		}
	}
}
