package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"moment/internal/obs"
)

// flightDump mirrors the /debug/flight wire document.
type flightDump struct {
	Dropped uint64 `json:"dropped"`
	Events  []struct {
		Seq     uint64  `json:"seq"`
		AtSec   float64 `json:"at_sec"`
		Kind    string  `json:"kind"`
		Name    string  `json:"name"`
		Subject string  `json:"subject"`
		Reason  string  `json:"reason"`
		V1      float64 `json:"v1"`
		V2      float64 `json:"v2"`
	} `json:"events"`
}

func getBody(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// TestFlightAndPprofEndpoints: with FlightEvents configured, request
// handling lands admission and cache events on the ring and /debug/flight
// serves them; /debug/pprof/ serves runtime profiles off the private mux.
func TestFlightAndPprofEndpoints(t *testing.T) {
	s := newTestServer(t, Config{FlightEvents: 64}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := planBody(t, 4000)
	if code, _, _ := postPlan(t, ts, body, nil); code != http.StatusOK {
		t.Fatalf("first plan: code %d", code)
	}
	if code, pr, _ := postPlan(t, ts, body, nil); code != http.StatusOK || !pr.CachedPlan {
		t.Fatalf("second plan: code %d cached %v, want cache hit", code, pr != nil && pr.CachedPlan)
	}

	code, raw := getBody(t, ts, "/debug/flight")
	if code != http.StatusOK {
		t.Fatalf("/debug/flight: code %d", code)
	}
	var dump flightDump
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("bad flight dump %q: %v", raw, err)
	}
	want := map[string]bool{"admitted": false, "hit": false, "miss": false}
	for _, ev := range dump.Events {
		switch {
		case ev.Kind == "admission" && ev.Name == "admitted":
			want["admitted"] = true
		case ev.Kind == "cache" && ev.Reason == "hit":
			want["hit"] = true
		case ev.Kind == "cache" && ev.Reason == "miss":
			want["miss"] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("flight dump missing %q event; got %d events", name, len(dump.Events))
		}
	}

	code, raw = getBody(t, ts, "/debug/pprof/goroutine?debug=1")
	if code != http.StatusOK || !strings.Contains(string(raw), "goroutine") {
		t.Errorf("/debug/pprof/goroutine: code %d body %.60q", code, raw)
	}
}

// TestFlightDisabledEndpoint: without FlightEvents the endpoint still
// answers, with the empty dump.
func TestFlightDisabledEndpoint(t *testing.T) {
	s := newTestServer(t, Config{}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()
	code, raw := getBody(t, ts, "/debug/flight")
	if code != http.StatusOK {
		t.Fatalf("/debug/flight: code %d", code)
	}
	var dump flightDump
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Dropped != 0 || len(dump.Events) != 0 {
		t.Errorf("disabled recorder dumped %d events", len(dump.Events))
	}
}

// TestWatchdogShedStorm is the watchdog end-to-end: block the single
// worker, fill the one queue slot, shed a deterministic burst past the
// rule's delta bound, and assert that exactly one diagnostics bundle
// appears — containing flight events that span the trigger (the sheds
// leading in, then the trip itself) — with repeat trips suppressed by the
// cooldown.
func TestWatchdogShedStorm(t *testing.T) {
	dir := t.TempDir()
	block := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(block) }) }
	t.Cleanup(unblock)

	cfg := Config{
		Workers:          1,
		QueueDepth:       1,
		FlightEvents:     256,
		WatchdogDir:      dir,
		WatchdogInterval: time.Hour, // checks driven by hand below
		WatchdogCooldown: time.Hour,
		WatchdogRules: []obs.Rule{
			{Name: "shed-storm", Series: "momentd_shed_total", Kind: obs.RuleDeltaMax, Max: 5},
		},
	}
	s := newTestServer(t, cfg, func(ctx context.Context, cr *canonReq) (*planResult, error) {
		select {
		case <-block:
		case <-ctx.Done():
		}
		return fakeResult(cr.name), nil
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Occupy the worker, then the queue slot, with two distinct problems.
	// Strictly in that order: the worker releases the queue slot before it
	// marks itself inflight, so waiting for inflight==1 guarantees the
	// second request lands in the queue instead of racing the first into
	// the single slot and shedding.
	var wg sync.WaitGroup
	occupy := func(batch int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/v1/plan", "application/json",
				bytes.NewReader(planBody(t, batch)))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	occupy(1000)
	waitCounter(t, s.obs.Gauge("momentd_inflight_runs"), 1)
	occupy(1001)
	waitCounter(t, s.obs.Gauge("momentd_queue_depth"), 1)

	// Six distinct requests now shed deterministically on queue_full —
	// one past the rule's Max of 5.
	for i := 0; i < 6; i++ {
		code, _, hdr := postPlan(t, ts, planBody(t, 2000+i), nil)
		if code != http.StatusTooManyRequests {
			t.Fatalf("storm request %d: code %d, want 429", i, code)
		}
		if hdr.Get("Retry-After") == "" {
			t.Errorf("storm request %d: no Retry-After", i)
		}
	}

	trip, err := s.watchdog.Check()
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if trip == nil || trip.Rule != "shed-storm" {
		t.Fatalf("trip = %+v, want shed-storm", trip)
	}
	if trip.Value != 6 || trip.Limit != 5 {
		t.Errorf("trip value/limit = %v/%v, want 6/5", trip.Value, trip.Limit)
	}
	if trip.Bundle == "" {
		t.Fatal("trip produced no bundle")
	}

	// A second storm inside the cooldown: the trip counter moves but no
	// second bundle lands.
	for i := 0; i < 6; i++ {
		if code, _, _ := postPlan(t, ts, planBody(t, 3000+i), nil); code != http.StatusTooManyRequests {
			t.Fatalf("second storm request %d: code %d, want 429", i, code)
		}
	}
	if trip2, err := s.watchdog.Check(); err != nil || trip2 != nil {
		t.Fatalf("second check = %+v, %v; want cooldown suppression", trip2, err)
	}
	if got := s.obs.Counter("watchdog_trips_total", obs.L("rule", "shed-storm")).Value(); got != 2 {
		t.Errorf("watchdog_trips_total = %v, want 2 (cooldown still counts)", got)
	}

	// Unblock the workers and drain (the drain path runs one final check).
	unblock()
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("bundles = %v, want exactly one", names)
	}
	name := entries[0].Name()
	if !strings.HasPrefix(name, "bundle-001-") || !strings.HasSuffix(name, "-shed-storm") {
		t.Errorf("bundle dir %q, want bundle-001-<stamp>-shed-storm", name)
	}
	bundle := filepath.Join(dir, name)
	for _, f := range []string{"trip.json", "flight.json", "metrics.prom", "goroutines.txt", "heap.txt"} {
		if _, err := os.Stat(filepath.Join(bundle, f)); err != nil {
			t.Errorf("bundle missing %s: %v", f, err)
		}
	}

	// trip.json round-trips and matches the returned trip.
	rawTrip, err := os.ReadFile(filepath.Join(bundle, "trip.json"))
	if err != nil {
		t.Fatal(err)
	}
	var onDisk obs.Trip
	if err := json.Unmarshal(rawTrip, &onDisk); err != nil {
		t.Fatalf("bad trip.json %q: %v", rawTrip, err)
	}
	if onDisk.Rule != "shed-storm" || onDisk.Value != 6 {
		t.Errorf("trip.json = %+v", onDisk)
	}

	// flight.json spans the trigger: shed events lead in, the watchdog
	// trip follows them.
	rawFlight, err := os.ReadFile(filepath.Join(bundle, "flight.json"))
	if err != nil {
		t.Fatal(err)
	}
	var dump flightDump
	if err := json.Unmarshal(rawFlight, &dump); err != nil {
		t.Fatalf("bad flight.json: %v", err)
	}
	var lastShed, tripSeq uint64
	sheds := 0
	for _, ev := range dump.Events {
		switch {
		case ev.Kind == "admission" && ev.Name == "shed":
			sheds++
			lastShed = ev.Seq
		case ev.Kind == "watchdog" && ev.Name == "trip":
			if tripSeq == 0 {
				tripSeq = ev.Seq
			}
		}
	}
	if sheds < 6 {
		t.Errorf("flight.json holds %d shed events, want >= 6", sheds)
	}
	if tripSeq == 0 {
		t.Fatal("flight.json holds no watchdog trip event")
	}
	if tripSeq < lastShed {
		t.Errorf("trip event (seq %d) precedes sheds (last seq %d): bundle does not span the trigger",
			tripSeq, lastShed)
	}
}

// TestExplainDeterministic: two identical /v1/explain requests return
// byte-identical bodies — the endpoint's contract — and the trail carries
// the expected stages.
func TestExplainDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("real planner runs in -short mode")
	}
	// The stubbed s.plan is irrelevant here: /v1/explain always runs the
	// real planner (serially, uncached) to produce a faithful trail.
	s := newTestServer(t, Config{}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := planBody(t, 4000)
	post := func() []byte {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/v1/explain", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("explain: code %d body %s", resp.StatusCode, raw)
		}
		return raw
	}
	b1, b2 := post(), post()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("explain responses differ:\n--- first\n%s\n--- second\n%s", b1, b2)
	}

	var er ExplainResponse
	if err := json.Unmarshal(b1, &er); err != nil {
		t.Fatal(err)
	}
	if er.Machine != "B" || !strings.HasPrefix(er.Key, "plan-") {
		t.Errorf("machine=%q key=%q", er.Machine, er.Key)
	}
	if er.PredictedIOSec <= 0 || er.EpochSec <= 0 || er.Evaluated <= 0 {
		t.Errorf("missing plan outputs: %+v", er)
	}
	stages := map[string]int{}
	for _, st := range er.Steps {
		stages[st.Stage]++
	}
	for _, want := range []string{"score", "bisect", "search", "result", "ddak", "plan"} {
		if stages[want] == 0 {
			t.Errorf("trail has no %q steps (stages: %v)", want, stages)
		}
	}
	if er.Rendered == "" || !strings.Contains(er.Rendered, "result") {
		t.Errorf("rendered trail missing result line: %q", er.Rendered)
	}

	// Method guard.
	resp, err := ts.Client().Get(ts.URL + "/v1/explain")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/explain: code %d, want 405", resp.StatusCode)
	}
}
