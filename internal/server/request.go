// Request and response schema of the planning service, plus the
// canonicalizer that turns a wire request into a planner input and a
// coalescing key.
//
// Two requests that describe the same planning problem — same machine
// (builtin name or spec text, compared after parse/re-format so formatting
// and comment differences vanish), same normalized workload, same fault
// schedule, same tolerance — canonicalize to the same fingerprint, which is
// what request coalescing and the cross-tenant plan cache key on. Fields
// that only shape the response (tenant, top_k, deadline) stay out of the
// key, so requests differing only in those still share one planner run.
package server

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"moment/internal/core"
	"moment/internal/faults"
	"moment/internal/gnn"
	"moment/internal/graph"
	"moment/internal/scorecache"
	"moment/internal/topology"
	"moment/internal/trainsim"
	"moment/internal/units"
)

// PlanRequest is the JSON body of POST /v1/plan.
type PlanRequest struct {
	// Tenant identifies the caller for quota and accounting purposes. The
	// X-Moment-Tenant header overrides it; empty means "default". Tenancy
	// never affects planning: identical problems coalesce across tenants.
	Tenant string `json:"tenant,omitempty"`

	// Machine names a builtin evaluation machine ("A", "B" or "C").
	// MachineSpec carries a full spec (the moment spec grammar; see
	// topology.ParseSpec) and wins when both are set.
	Machine     string `json:"machine,omitempty"`
	MachineSpec string `json:"machine_spec,omitempty"`

	Workload WorkloadSpec `json:"workload"`
	Search   SearchSpec   `json:"search,omitempty"`

	// Faults optionally injects a deterministic hardware-fault schedule
	// into the epoch simulation (the momentsim -faults grammar); the
	// response then carries a degradation report.
	Faults string `json:"faults,omitempty"`

	// DeadlineMS bounds the request's total time in queue + service;
	// 0 uses the server default. Requests that cannot meet their deadline
	// are shed with 429 rather than queued.
	DeadlineMS int `json:"deadline_ms,omitempty"`
}

// WorkloadSpec names the training job to plan for.
type WorkloadSpec struct {
	Dataset   string `json:"dataset"`              // PA, IG, UK or CL
	Model     string `json:"model"`                // graphsage (default), gat or gcn
	BatchSize int    `json:"batch_size,omitempty"` // default 8000
	Fanouts   []int  `json:"fanouts,omitempty"`    // default [25,10]
}

// SearchSpec tunes the placement search.
type SearchSpec struct {
	Tolerance float64 `json:"tolerance,omitempty"` // bisection tolerance, default 1e-4
	TopK      int     `json:"top_k,omitempty"`     // ranked placements to return, default 1
}

// PlanResponse is the JSON body of a successful plan.
type PlanResponse struct {
	Tenant     string `json:"tenant"`
	Machine    string `json:"machine"`
	Coalesced  bool   `json:"coalesced"`   // joined another request's in-flight run
	CachedPlan bool   `json:"cached_plan"` // served from the plan cache, no planner run

	Placement       PlacementOut `json:"placement"`
	PredictedIOSec  float64      `json:"predicted_io_sec"`
	ThroughputGiBps float64      `json:"throughput_gibps"`

	Enumerated     int `json:"enumerated"`
	Evaluated      int `json:"evaluated"`
	ScoreCacheHits int `json:"score_cache_hits"`

	Ranked []RankedPlacement `json:"ranked,omitempty"`
	Bins   []BinOut          `json:"bins,omitempty"`
	Epoch  EpochOut          `json:"epoch"`
	Faults *FaultOut         `json:"faults,omitempty"`

	PlanMS float64 `json:"plan_ms"` // planner wall time (0 for cached plans)
}

// PlacementOut is a hardware placement in wire form.
type PlacementOut struct {
	Name  string   `json:"name"`
	GPUAt []string `json:"gpu_at"`
	SSDAt []string `json:"ssd_at"`
}

// RankedPlacement is one scored candidate of the top-k ranking.
type RankedPlacement struct {
	GPUAt          []string `json:"gpu_at"`
	SSDAt          []string `json:"ssd_at"`
	PredictedIOSec float64  `json:"predicted_io_sec"`
}

// BinOut is one DDAK storage bin of the data layout.
type BinOut struct {
	Name       string  `json:"name"`
	UsedGiB    float64 `json:"used_gib"`
	AccessFrac float64 `json:"access_frac"`
}

// EpochOut summarizes the simulated epoch under the chosen plan.
type EpochOut struct {
	EpochSec      float64 `json:"epoch_sec"`
	IOSec         float64 `json:"io_sec"`
	ComputeSec    float64 `json:"compute_sec"`
	SampleSec     float64 `json:"sample_sec"`
	HitGPU        float64 `json:"hit_gpu"`
	HitCPU        float64 `json:"hit_cpu"`
	ThroughputVPS float64 `json:"throughput_vps"`
}

// FaultOut is the graceful-degradation report for a faulted request.
type FaultOut struct {
	Injected     int     `json:"injected"`
	DeadSSDs     []int   `json:"dead_ssds,omitempty"`
	Replans      int     `json:"replans"`
	MovedGiB     float64 `json:"moved_gib"`
	StallSeconds float64 `json:"stall_seconds"`
	Inflation    float64 `json:"inflation"`
}

// canonReq is a validated, canonicalized request: the planner input plus
// the coalescing key and the response-shaping fields that stay out of it.
type canonReq struct {
	key     string // coalescing / plan-cache fingerprint
	machine *topology.Machine
	name    string // display name for the machine
	wl      trainsim.Workload
	tol     float64
	faults  *faults.Schedule

	topK     int
	deadline time.Duration
}

// errBadRequest marks client errors (malformed spec, unknown dataset) so
// the handler can map them to 400 instead of 500.
type errBadRequest struct{ err error }

func (e errBadRequest) Error() string { return e.err.Error() }
func (e errBadRequest) Unwrap() error { return e.err }

func badReq(format string, args ...any) error {
	return errBadRequest{fmt.Errorf(format, args...)}
}

func parseModel(name string) (gnn.ModelKind, error) {
	switch strings.ToLower(name) {
	case "", "graphsage", "sage":
		return gnn.KindSAGE, nil
	case "gat":
		return gnn.KindGAT, nil
	case "gcn":
		return gnn.KindGCN, nil
	}
	return 0, badReq("unknown model %q (want graphsage, gat or gcn)", name)
}

func builtinMachine(name string) (*topology.Machine, error) {
	switch strings.ToUpper(name) {
	case "A":
		return topology.MachineA(), nil
	case "B":
		return topology.MachineB(), nil
	case "C":
		return topology.MachineC(), nil
	}
	return nil, badReq("unknown machine %q (want A, B or C, or a machine_spec)", name)
}

// canonicalize validates req and produces the planner input and coalescing
// key. The returned canonReq is self-contained: flights outlive the request
// that submitted them, so nothing may alias the http request.
func canonicalize(req *PlanRequest, defaultDeadline, maxDeadline time.Duration) (*canonReq, error) {
	var m *topology.Machine
	var err error
	if req.MachineSpec != "" {
		m, err = topology.ParseSpec(strings.NewReader(req.MachineSpec))
		if err != nil {
			return nil, badReq("machine_spec: %v", err)
		}
	} else {
		if m, err = builtinMachine(req.Machine); err != nil {
			return nil, err
		}
	}
	if err := m.Validate(); err != nil {
		return nil, badReq("machine: %v", err)
	}

	if req.Workload.Dataset == "" {
		return nil, badReq("workload.dataset is required")
	}
	ds, err := graph.DatasetByName(strings.ToUpper(req.Workload.Dataset))
	if err != nil {
		return nil, badReq("workload.dataset: %v", err)
	}
	model, err := parseModel(req.Workload.Model)
	if err != nil {
		return nil, err
	}
	if req.Workload.BatchSize < 0 {
		return nil, badReq("workload.batch_size must be >= 0")
	}
	for _, f := range req.Workload.Fanouts {
		if f <= 0 {
			return nil, badReq("workload.fanouts must be positive")
		}
	}
	wl := trainsim.Workload{
		Dataset:   ds,
		Model:     model,
		BatchSize: req.Workload.BatchSize,
		Fanouts:   append([]int(nil), req.Workload.Fanouts...),
	}.Defaults()

	tol := req.Search.Tolerance
	if tol < 0 || math.IsNaN(tol) || math.IsInf(tol, 0) {
		return nil, badReq("search.tolerance must be a finite value >= 0")
	}
	if tol == 0 {
		tol = 1e-4
	}
	topK := req.Search.TopK
	if topK < 0 {
		return nil, badReq("search.top_k must be >= 0")
	}
	if topK == 0 {
		topK = 1
	}

	var sched *faults.Schedule
	if req.Faults != "" {
		sched, err = faults.Parse(req.Faults)
		if err != nil {
			return nil, badReq("faults: %v", err)
		}
		if sched.Empty() {
			sched = nil
		}
	}

	deadline := defaultDeadline
	if req.DeadlineMS < 0 {
		return nil, badReq("deadline_ms must be >= 0")
	}
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if maxDeadline > 0 && deadline > maxDeadline {
		deadline = maxDeadline
	}

	cr := &canonReq{
		machine:  m,
		name:     m.Name,
		wl:       wl,
		tol:      tol,
		faults:   sched,
		topK:     topK,
		deadline: deadline,
	}
	cr.key = fingerprint(m, wl, tol, sched)
	return cr, nil
}

// fingerprint hashes everything that determines a planner run's output.
// The machine enters as its re-formatted spec (parse ∘ format is a
// canonicalizing round trip: comments, blank lines and number formatting
// vanish), the fault schedule as its formatted grammar, and the workload
// as its post-Defaults field values.
func fingerprint(m *topology.Machine, wl trainsim.Workload, tol float64, sched *faults.Schedule) string {
	h := scorecache.NewHasher()
	h.String(topology.FormatSpec(m))
	h.String(wl.Dataset.Name)
	h.String(wl.Model.String())
	h.Uint(uint64(wl.BatchSize))
	h.Uint(uint64(len(wl.Fanouts)))
	for _, f := range wl.Fanouts {
		h.Uint(uint64(f))
	}
	h.Float(wl.DedupFactor)
	h.Uint(uint64(wl.EpochBatches))
	h.Float(tol)
	if sched != nil {
		h.String(faults.Format(sched))
	}
	return fmt.Sprintf("plan-%016x", h.Sum())
}

// planResult is one completed planner run in response-template form: the
// full ranking is precomputed once, then every waiter gets a deep copy
// truncated to its own top_k (clone-on-return: tenants can mutate their
// response without corrupting the shared cache entry or other tenants'
// views).
type planResult struct {
	machine    string
	placement  PlacementOut
	predicted  float64
	throughput float64
	enumerated int
	evaluated  int
	cacheHits  int
	ranked     []RankedPlacement
	bins       []BinOut
	epoch      EpochOut
	faults     *FaultOut
	runSeconds float64
}

// placementOut converts a placement into wire form.
func placementOut(p *topology.Placement) PlacementOut {
	return PlacementOut{
		Name:  p.Name,
		GPUAt: append([]string(nil), p.GPUAt...),
		SSDAt: append([]string(nil), p.SSDAt...),
	}
}

// newPlanResult converts a finished core plan into the response template.
func newPlanResult(cr *canonReq, plan *core.Plan, runTime time.Duration) *planResult {
	res := &planResult{
		machine:    cr.name,
		placement:  placementOut(plan.Placement),
		predicted:  plan.PredictedIO.Sec(),
		throughput: plan.PredictedThroughput.GiBpsf(),
		enumerated: plan.Enumerated,
		evaluated:  plan.Evaluated,
		cacheHits:  plan.CacheHits,
		runSeconds: runTime.Seconds(),
	}
	// plan.Scores arrives sorted best-first (feasible before infeasible);
	// keep the feasible prefix as the ranking.
	for _, s := range plan.Scores {
		if s.Err != nil {
			continue
		}
		res.ranked = append(res.ranked, RankedPlacement{
			GPUAt:          append([]string(nil), s.Placement.GPUAt...),
			SSDAt:          append([]string(nil), s.Placement.SSDAt...),
			PredictedIOSec: s.Time.Sec(),
		})
	}
	sort.SliceStable(res.ranked, func(i, j int) bool {
		return res.ranked[i].PredictedIOSec < res.ranked[j].PredictedIOSec
	})
	if epoch := plan.Epoch; epoch != nil {
		res.epoch = EpochOut{
			EpochSec:      epoch.EpochTime.Sec(),
			IOSec:         epoch.IOTime.Sec(),
			ComputeSec:    epoch.ComputeTime.Sec(),
			SampleSec:     epoch.SampleTime.Sec(),
			HitGPU:        epoch.HitGPU,
			HitCPU:        epoch.HitCPU,
			ThroughputVPS: epoch.Throughput,
		}
		if fr := epoch.Faults; fr != nil {
			res.faults = &FaultOut{
				Injected:     fr.Injected,
				DeadSSDs:     append([]int(nil), fr.DeadSSDs...),
				Replans:      fr.Replans,
				MovedGiB:     fr.MovedBytes / float64(units.GiB),
				StallSeconds: fr.StallSeconds,
				Inflation:    fr.Inflation,
			}
		}
	}
	if assign := plan.DataPlacement; assign != nil {
		for i, bin := range assign.Bins {
			res.bins = append(res.bins, BinOut{
				Name:       bin.Name,
				UsedGiB:    assign.Used[i] / float64(units.GiB),
				AccessFrac: assign.Access[i],
			})
		}
	}
	return res
}

// response builds one waiter's PlanResponse from the shared template. Every
// slice is freshly allocated — the caller may mutate the response freely.
func (pr *planResult) response(tenant string, topK int, coalesced, cached bool) *PlanResponse {
	out := &PlanResponse{
		Tenant:     tenant,
		Machine:    pr.machine,
		Coalesced:  coalesced,
		CachedPlan: cached,
		Placement: PlacementOut{
			Name:  pr.placement.Name,
			GPUAt: append([]string(nil), pr.placement.GPUAt...),
			SSDAt: append([]string(nil), pr.placement.SSDAt...),
		},
		PredictedIOSec:  pr.predicted,
		ThroughputGiBps: pr.throughput,
		Enumerated:      pr.enumerated,
		Evaluated:       pr.evaluated,
		ScoreCacheHits:  pr.cacheHits,
		Epoch:           pr.epoch,
		PlanMS:          pr.runSeconds * 1e3,
	}
	if cached {
		out.PlanMS = 0
	}
	if topK > len(pr.ranked) {
		topK = len(pr.ranked)
	}
	for _, r := range pr.ranked[:topK] {
		out.Ranked = append(out.Ranked, RankedPlacement{
			GPUAt:          append([]string(nil), r.GPUAt...),
			SSDAt:          append([]string(nil), r.SSDAt...),
			PredictedIOSec: r.PredictedIOSec,
		})
	}
	for _, b := range pr.bins {
		out.Bins = append(out.Bins, b)
	}
	if pr.faults != nil {
		f := *pr.faults
		f.DeadSSDs = append([]int(nil), pr.faults.DeadSSDs...)
		out.Faults = &f
	}
	return out
}
