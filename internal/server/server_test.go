package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"moment/internal/obs"
)

// fakeResult builds a small but fully-populated planResult template.
func fakeResult(machine string) *planResult {
	return &planResult{
		machine:    machine,
		placement:  PlacementOut{Name: "fake", GPUAt: []string{"pcie0"}, SSDAt: []string{"pcie1"}},
		predicted:  1.5,
		throughput: 2.0,
		enumerated: 10,
		evaluated:  4,
		ranked: []RankedPlacement{
			{GPUAt: []string{"pcie0"}, SSDAt: []string{"pcie1"}, PredictedIOSec: 1.5},
			{GPUAt: []string{"pcie1"}, SSDAt: []string{"pcie0"}, PredictedIOSec: 1.7},
		},
		bins:       []BinOut{{Name: "gpu", UsedGiB: 4, AccessFrac: 0.9}},
		epoch:      EpochOut{EpochSec: 3, IOSec: 1.5, ComputeSec: 1, SampleSec: 0.5},
		runSeconds: 0.01,
	}
}

// newTestServer builds a server with a stubbed planner and registers drain
// cleanup. The stub defaults to an instant fake result.
func newTestServer(t *testing.T, cfg Config, plan func(ctx context.Context, cr *canonReq) (*planResult, error)) *Server {
	t.Helper()
	s := New(cfg)
	if plan == nil {
		plan = func(ctx context.Context, cr *canonReq) (*planResult, error) {
			return fakeResult(cr.name), nil
		}
	}
	s.plan = plan
	t.Cleanup(func() {
		if err := s.Close(); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return s
}

func planBody(t *testing.T, batch int) []byte {
	t.Helper()
	b, err := json.Marshal(PlanRequest{
		Machine:  "B",
		Workload: WorkloadSpec{Dataset: "PA", BatchSize: batch},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func postPlan(t *testing.T, ts *httptest.Server, body []byte, hdr map[string]string) (int, *PlanResponse, http.Header) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/plan", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil, resp.Header
	}
	var pr PlanResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		t.Fatalf("bad response body %q: %v", raw, err)
	}
	return resp.StatusCode, &pr, resp.Header
}

// waitCounter polls an obs counter until it reaches want.
func waitCounter(t *testing.T, c interface{ Value() float64 }, want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Value() >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("counter stuck at %v, want >= %v", c.Value(), want)
}

// TestCoalesceIdenticalRequests is the tentpole property: N identical
// concurrent requests execute exactly one planner run, and the coalesce
// counter reads N-1.
func TestCoalesceIdenticalRequests(t *testing.T) {
	const n = 8
	var runs atomic.Int64
	release := make(chan struct{})
	s := newTestServer(t, Config{Workers: 2}, func(ctx context.Context, cr *canonReq) (*planResult, error) {
		runs.Add(1)
		<-release
		return fakeResult(cr.name), nil
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := planBody(t, 4000)
	var wg sync.WaitGroup
	codes := make([]int, n)
	resps := make([]*PlanResponse, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], resps[i], _ = postPlan(t, ts, body, nil)
		}(i)
	}
	// All n requests must be attached (1 owner + n-1 coalesced) before the
	// planner is released, or stragglers would hit the plan cache instead.
	waitCounter(t, s.obs.Counter("momentd_coalesced_total", obs.L("tenant", "default")), n-1)
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("planner ran %d times for %d identical requests, want 1", got, n)
	}
	coalesced := 0
	for i := range codes {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200", i, codes[i])
		}
		if resps[i].Coalesced {
			coalesced++
		}
		if resps[i].CachedPlan {
			t.Errorf("request %d reported cached_plan while attached to the live flight", i)
		}
	}
	if coalesced != n-1 {
		t.Fatalf("%d responses marked coalesced, want %d", coalesced, n-1)
	}

	// An identical request after completion is a pure plan-cache hit.
	code, pr, _ := postPlan(t, ts, body, nil)
	if code != http.StatusOK || !pr.CachedPlan {
		t.Fatalf("follow-up: code=%d cached=%v, want 200/true", code, pr.CachedPlan)
	}
	if pr.PlanMS != 0 {
		t.Errorf("cached plan reports plan_ms=%v, want 0", pr.PlanMS)
	}
}

// TestShedQueueFull overloads a 1-worker, depth-1 server and checks the
// overflow request is shed with 429 + Retry-After while everything admitted
// still completes — and that the overload leaks no goroutines.
func TestShedQueueFull(t *testing.T) {
	release := make(chan struct{})
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1, TenantConcurrency: -1},
		func(ctx context.Context, cr *canonReq) (*planResult, error) {
			<-release
			return fakeResult(cr.name), nil
		})
	ts := httptest.NewServer(s)
	defer ts.Close()
	before := runtime.NumGoroutine()

	// Occupy the worker, then the queue slot — strictly in that order. The
	// worker frees the queue slot before marking itself inflight, so waiting
	// for inflight==1 guarantees the second request queues instead of racing
	// the first into the single slot and shedding (which would leave the
	// "overflow" request below to be admitted and deadlock against release).
	var wg sync.WaitGroup
	codes := make([]int, 2)
	occupy := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes[i], _, _ = postPlan(t, ts, planBody(t, 1000+i), nil)
		}()
	}
	occupy(0)
	waitCounter(t, s.obs.Gauge("momentd_inflight_runs"), 1)
	occupy(1)
	waitCounter(t, s.obs.Gauge("momentd_queue_depth"), 1)

	code, _, hdr := postPlan(t, ts, planBody(t, 9999), nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After header")
	}
	if got := s.obs.Counter("momentd_shed_total", obs.L("reason", "queue_full")).Value(); got != 1 {
		t.Errorf("shed_total{queue_full} = %v, want 1", got)
	}

	close(release)
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("admitted request %d: status %d, want 200", i, c)
		}
	}
	waitGoroutinesAtMost(t, ts, before)
}

// waitGoroutinesAtMost polls until the goroutine count settles. Idle
// keep-alive client connections are closed each round so only genuinely
// leaked goroutines (stuck handlers, orphaned flights) can fail the test.
func waitGoroutinesAtMost(t *testing.T, ts *httptest.Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ts.Client().CloseIdleConnections()
		if runtime.NumGoroutine() <= want {
			return
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines did not settle: %d running, want <= %d", runtime.NumGoroutine(), want)
}

// TestShedTenantLimit pins one tenant at its concurrency quota and checks
// its next request is shed while another tenant is still admitted.
func TestShedTenantLimit(t *testing.T) {
	release := make(chan struct{})
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 8, TenantConcurrency: 2},
		func(ctx context.Context, cr *canonReq) (*planResult, error) {
			<-release
			return fakeResult(cr.name), nil
		})
	ts := httptest.NewServer(s)
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			postPlan(t, ts, planBody(t, 2000+i), map[string]string{"X-Moment-Tenant": "alpha"})
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		n := s.tenants["alpha"]
		s.mu.Unlock()
		if n >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	code, _, _ := postPlan(t, ts, planBody(t, 7777), map[string]string{"X-Moment-Tenant": "alpha"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("tenant over quota: status %d, want 429", code)
	}
	if got := s.obs.Counter("momentd_shed_total", obs.L("reason", "tenant_limit")).Value(); got != 1 {
		t.Errorf("shed_total{tenant_limit} = %v, want 1", got)
	}

	// Another tenant is unaffected by alpha's quota.
	done := make(chan int, 1)
	go func() {
		code, _, _ := postPlan(t, ts, planBody(t, 3000), map[string]string{"X-Moment-Tenant": "beta"})
		done <- code
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if code := <-done; code != http.StatusOK {
		t.Errorf("other tenant: status %d, want 200", code)
	}
}

// TestShedDeadline: with a long smoothed run time, a request whose deadline
// cannot be met is shed up front instead of queued into certain timeout.
func TestShedDeadline(t *testing.T) {
	release := make(chan struct{})
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 8, TenantConcurrency: -1},
		func(ctx context.Context, cr *canonReq) (*planResult, error) {
			<-release
			return fakeResult(cr.name), nil
		})
	ts := httptest.NewServer(s)
	defer ts.Close()
	s.ewmaBits.update(10) // pretend runs take 10s

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // occupy the worker so the next request has to queue
		defer wg.Done()
		postPlan(t, ts, planBody(t, 5000), nil)
	}()
	waitCounter(t, s.obs.Gauge("momentd_inflight_runs"), 1)

	body, _ := json.Marshal(PlanRequest{
		Machine:    "B",
		Workload:   WorkloadSpec{Dataset: "PA", BatchSize: 5001},
		DeadlineMS: 100, // cannot wait out a 10s run
	})
	code, _, hdr := postPlan(t, ts, body, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("infeasible deadline: status %d, want 429", code)
	}
	if ra := hdr.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive estimate", ra)
	}
	if got := s.obs.Counter("momentd_shed_total", obs.L("reason", "deadline")).Value(); got != 1 {
		t.Errorf("shed_total{deadline} = %v, want 1", got)
	}
	close(release)
	wg.Wait()
}

// TestRetryAfterSubSecondEWMA: a shed with a sub-second smoothed run time
// must still advertise Retry-After >= 1 — the header has whole-second
// resolution, and 0 invites an immediate retry into the same full queue.
func TestRetryAfterSubSecondEWMA(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 2)
	s := newTestServer(t, Config{Workers: 1, QueueDepth: 1, TenantConcurrency: -1},
		func(ctx context.Context, cr *canonReq) (*planResult, error) {
			started <- struct{}{}
			<-release
			return fakeResult(cr.name), nil
		})
	ts := httptest.NewServer(s)
	defer ts.Close()
	// A Fatal below must still unblock the planner, or the deferred
	// ts.Close() waits forever on the in-flight handlers.
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	defer unblock()
	s.ewmaBits.update(0.05) // runs "take" 50ms: every wait estimate is sub-second

	for _, pos := range []int{0, 1, 3, 100} {
		if sec := s.retryAfterSec(pos); sec < 1 {
			t.Errorf("retryAfterSec(%d) = %d with 50ms EWMA, want >= 1", pos, sec)
		}
	}

	// Occupy the worker, then the queue slot — strictly in that order. The
	// two posts must not race each other: if both arrived before the worker
	// dequeued the first, the second would be shed by the depth-1 queue
	// instead of occupying it.
	var wg sync.WaitGroup
	codes := make([]int, 2)
	post := func(i int) {
		defer wg.Done()
		codes[i], _, _ = postPlan(t, ts, planBody(t, 4000+i), nil)
	}
	wg.Add(1)
	go post(0)
	select { // worker has dequeued #0 and is blocked in the planner
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never started a flight")
	}
	wg.Add(1)
	go post(1) // with the worker pinned, #1 can only sit in the queue
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		queued := s.queued
		s.mu.Unlock()
		if queued >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second request never reached the queue")
		}
		time.Sleep(2 * time.Millisecond)
	}

	code, _, hdr := postPlan(t, ts, planBody(t, 9998), nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429", code)
	}
	ra, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", hdr.Get("Retry-After"), err)
	}
	if ra < 1 {
		t.Errorf("Retry-After = %d with sub-second EWMA, want >= 1", ra)
	}

	unblock()
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("admitted request %d: status %d, want 200", i, c)
		}
	}
}

// TestClientDisconnectReleasesWorker: when every waiter abandons a flight,
// its context is canceled, the planner unblocks, and the worker slot is
// free for the next request.
func TestClientDisconnectReleasesWorker(t *testing.T) {
	started := make(chan struct{}, 1)
	s := newTestServer(t, Config{Workers: 1}, func(ctx context.Context, cr *canonReq) (*planResult, error) {
		if cr.wl.BatchSize == 1111 { // the request that will be abandoned
			started <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return fakeResult(cr.name), nil
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/plan",
		bytes.NewReader(planBody(t, 1111)))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-started // planner is holding the only worker
	cancel()  // client walks away
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("client error = %v, want context.Canceled", err)
	}

	// The abandoned flight's cancellation must free the worker: a fresh
	// request completes promptly.
	done := make(chan int, 1)
	go func() {
		code, _, _ := postPlan(t, ts, planBody(t, 2222), nil)
		done <- code
	}()
	select {
	case code := <-done:
		if code != http.StatusOK {
			t.Fatalf("follow-up after disconnect: status %d, want 200", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follow-up request hung: abandoned flight did not release its worker")
	}
	waitCounter(t, s.obs.Counter("momentd_runs_canceled_total"), 1)
}

// TestTenantIsolationCloneOnReturn mutates one tenant's response in place
// and checks neither the shared template nor another tenant's response
// moves — the in-process contract the HTTP layer builds on.
func TestTenantIsolationCloneOnReturn(t *testing.T) {
	pr := fakeResult("B")
	a := pr.response("alpha", 2, false, true)
	b := pr.response("beta", 2, false, true)

	a.Placement.GPUAt[0] = "corrupted"
	a.Ranked[0].SSDAt[0] = "corrupted"
	a.Bins[0].Name = "corrupted"
	a.Ranked[0].PredictedIOSec = -1

	if pr.placement.GPUAt[0] != "pcie0" {
		t.Error("mutating a response corrupted the cached template's placement")
	}
	if pr.ranked[0].SSDAt[0] != "pcie1" {
		t.Error("mutating a response corrupted the cached template's ranking")
	}
	if pr.bins[0].Name != "gpu" {
		t.Error("mutating a response corrupted the cached template's bins")
	}
	if b.Placement.GPUAt[0] != "pcie0" || b.Ranked[0].SSDAt[0] != "pcie1" || b.Bins[0].Name != "gpu" {
		t.Error("one tenant's mutation leaked into another tenant's response")
	}
	if b.Ranked[0].PredictedIOSec != 1.5 {
		t.Error("scalar mutation leaked across tenants")
	}
}

// TestTopKTruncation: top_k shapes only the response, not the coalescing
// key — a top_k=1 and top_k=2 request share one cache entry.
func TestTopKTruncation(t *testing.T) {
	var runs atomic.Int64
	s := newTestServer(t, Config{}, func(ctx context.Context, cr *canonReq) (*planResult, error) {
		runs.Add(1)
		return fakeResult(cr.name), nil
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	mk := func(topK int) []byte {
		b, _ := json.Marshal(PlanRequest{
			Machine:  "B",
			Workload: WorkloadSpec{Dataset: "PA"},
			Search:   SearchSpec{TopK: topK},
		})
		return b
	}
	_, r1, _ := postPlan(t, ts, mk(1), nil)
	_, r2, _ := postPlan(t, ts, mk(2), nil)
	if len(r1.Ranked) != 1 || len(r2.Ranked) != 2 {
		t.Fatalf("ranked lengths = %d/%d, want 1/2", len(r1.Ranked), len(r2.Ranked))
	}
	if !r2.CachedPlan {
		t.Error("top_k=2 request missed the cache entry the top_k=1 request created")
	}
	if runs.Load() != 1 {
		t.Errorf("planner ran %d times, want 1 (top_k must not fragment the key)", runs.Load())
	}
}

// TestEndpoints exercises /metrics, /debug/trace, /healthz and /v1/stats.
func TestEndpoints(t *testing.T) {
	s := newTestServer(t, Config{}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()
	postPlan(t, ts, planBody(t, 100), nil)
	postPlan(t, ts, planBody(t, 100), nil) // plan-cache hit

	get := func(path string) (int, string, http.Header) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw), resp.Header
	}

	code, metrics, hdr := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	if !strings.Contains(hdr.Get("Content-Type"), "text/plain") {
		t.Errorf("/metrics content type = %q", hdr.Get("Content-Type"))
	}
	for _, want := range []string{
		"momentd_requests_total", "momentd_planner_runs_total",
		"momentd_plan_cache_hits_total", "momentd_queue_depth",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	code, trace, _ := get("/debug/trace")
	if code != http.StatusOK {
		t.Fatalf("/debug/trace: status %d", code)
	}
	var traceDoc any
	if err := json.Unmarshal([]byte(trace), &traceDoc); err != nil {
		t.Errorf("/debug/trace is not valid JSON: %v", err)
	}

	code, body, _ := get("/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}

	code, statsBody, _ := get("/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("/v1/stats: status %d", code)
	}
	var st Stats
	if err := json.Unmarshal([]byte(statsBody), &st); err != nil {
		t.Fatalf("/v1/stats: %v", err)
	}
	if st.Workers <= 0 || st.PlanCacheLen != 1 || st.PlanCacheHitRate <= 0 {
		t.Errorf("stats = %+v: want workers>0, plan_cache_len=1, hit rate>0", st)
	}
}

// TestBadRequests maps malformed input to 400 and wrong methods to 405.
func TestBadRequests(t *testing.T) {
	s := newTestServer(t, Config{}, nil)
	ts := httptest.NewServer(s)
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"not json", "{", http.StatusBadRequest},
		{"unknown field", `{"machne":"B"}`, http.StatusBadRequest},
		{"unknown machine", `{"machine":"Z","workload":{"dataset":"PA"}}`, http.StatusBadRequest},
		{"missing dataset", `{"machine":"B","workload":{}}`, http.StatusBadRequest},
		{"unknown dataset", `{"machine":"B","workload":{"dataset":"XX"}}`, http.StatusBadRequest},
		{"bad model", `{"machine":"B","workload":{"dataset":"PA","model":"rnn"}}`, http.StatusBadRequest},
		{"bad fanout", `{"machine":"B","workload":{"dataset":"PA","fanouts":[0]}}`, http.StatusBadRequest},
		{"bad faults", `{"machine":"B","workload":{"dataset":"PA"},"faults":"nonsense"}`, http.StatusBadRequest},
		{"bad spec", `{"machine_spec":"gibberish","workload":{"dataset":"PA"}}`, http.StatusBadRequest},
		{"negative deadline", `{"machine":"B","workload":{"dataset":"PA"},"deadline_ms":-5}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, _ := postPlan(t, ts, []byte(tc.body), nil)
			if code != tc.want {
				t.Errorf("status %d, want %d", code, tc.want)
			}
		})
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/plan: status %d, want 405", resp.StatusCode)
	}
}

// TestDrain: a draining server refuses new work with 503, reports draining
// on /healthz, and Drain returns once queued flights finish.
func TestDrain(t *testing.T) {
	s := New(Config{Workers: 1})
	s.plan = func(ctx context.Context, cr *canonReq) (*planResult, error) {
		return fakeResult(cr.name), nil
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	if code, _, _ := postPlan(t, ts, planBody(t, 100), nil); code != http.StatusOK {
		t.Fatalf("pre-drain request failed with %d", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := s.Drain(ctx); err != nil { // idempotent
		t.Fatalf("second drain: %v", err)
	}

	code, _, _ := postPlan(t, ts, planBody(t, 200), nil)
	if code != http.StatusServiceUnavailable {
		t.Errorf("post-drain plan: status %d, want 503", code)
	}
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain healthz: status %d, want 503", resp.StatusCode)
	}
}

// TestPlannerErrorMapping: planner failures surface as 422, flight deadline
// expiry as 504.
func TestPlannerErrorMapping(t *testing.T) {
	s := newTestServer(t, Config{}, func(ctx context.Context, cr *canonReq) (*planResult, error) {
		switch cr.wl.BatchSize {
		case 1:
			return nil, fmt.Errorf("machine has no feasible placements")
		case 2:
			<-ctx.Done() // flight deadline fires
			return nil, ctx.Err()
		}
		return fakeResult(cr.name), nil
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	if code, _, _ := postPlan(t, ts, planBody(t, 1), nil); code != http.StatusUnprocessableEntity {
		t.Errorf("planner failure: status %d, want 422", code)
	}
	body, _ := json.Marshal(PlanRequest{
		Machine:    "B",
		Workload:   WorkloadSpec{Dataset: "PA", BatchSize: 2},
		DeadlineMS: 50,
	})
	if code, _, _ := postPlan(t, ts, body, nil); code != http.StatusGatewayTimeout {
		t.Errorf("deadline expiry: status %d, want 504", code)
	}
}

// TestEndToEndRealPlanner runs one request through the real planner stack:
// profile, placement search, DDAK, epoch simulation, fault degradation.
func TestEndToEndRealPlanner(t *testing.T) {
	if testing.Short() {
		t.Skip("real planner run in -short mode")
	}
	s := New(Config{Workers: 2})
	t.Cleanup(func() { _ = s.Close() })
	ts := httptest.NewServer(s)
	defer ts.Close()

	body, _ := json.Marshal(PlanRequest{
		Machine:  "B",
		Workload: WorkloadSpec{Dataset: "PA"},
		Search:   SearchSpec{TopK: 3},
		Faults:   "kill:ssd0@0.25",
	})
	code, pr, _ := postPlan(t, ts, body, map[string]string{"X-Moment-Tenant": "e2e"})
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200", code)
	}
	if pr.PredictedIOSec <= 0 || pr.Epoch.EpochSec <= 0 {
		t.Errorf("predicted=%v epoch=%v, want positive", pr.PredictedIOSec, pr.Epoch.EpochSec)
	}
	if len(pr.Placement.GPUAt) == 0 {
		t.Error("placement has no GPU slots")
	}
	if len(pr.Ranked) == 0 || len(pr.Ranked) > 3 {
		t.Errorf("ranked has %d entries, want 1..3", len(pr.Ranked))
	}
	for i := 1; i < len(pr.Ranked); i++ {
		if pr.Ranked[i].PredictedIOSec < pr.Ranked[i-1].PredictedIOSec {
			t.Errorf("ranking out of order at %d: %v < %v", i,
				pr.Ranked[i].PredictedIOSec, pr.Ranked[i-1].PredictedIOSec)
		}
	}
	if len(pr.Bins) == 0 {
		t.Error("response has no data-placement bins")
	}
	if pr.Faults == nil || pr.Faults.Injected == 0 {
		t.Errorf("faulted request returned no degradation report: %+v", pr.Faults)
	}
	if pr.PlanMS <= 0 {
		t.Error("plan_ms not reported for a live run")
	}

	// Identical problem from another tenant: plan-cache hit, isolated copy.
	code, pr2, _ := postPlan(t, ts, body, map[string]string{"X-Moment-Tenant": "e2e-b"})
	if code != http.StatusOK || !pr2.CachedPlan {
		t.Fatalf("second tenant: code=%d cached=%v, want 200/true", code, pr2.CachedPlan)
	}
	if pr2.Tenant != "e2e-b" || pr2.PredictedIOSec != pr.PredictedIOSec {
		t.Errorf("cached response mismatch: tenant=%q predicted=%v vs %v",
			pr2.Tenant, pr2.PredictedIOSec, pr.PredictedIOSec)
	}
}

// TestTenantLabelCap: tenants beyond the cap aggregate under "other" so a
// tenant flood cannot explode metric cardinality.
func TestTenantLabelCap(t *testing.T) {
	s := newTestServer(t, Config{TenantLabelCap: 2}, nil)
	if got := s.tenantLabel("a"); got != "a" {
		t.Errorf("first tenant label = %q", got)
	}
	if got := s.tenantLabel("b"); got != "b" {
		t.Errorf("second tenant label = %q", got)
	}
	for i := 0; i < 100; i++ {
		if got := s.tenantLabel(fmt.Sprintf("flood-%d", i)); got != "other" {
			t.Fatalf("over-cap tenant label = %q, want other", got)
		}
	}
	if n := s.labels.Len(); n != 2 {
		t.Errorf("label map grew to %d entries under flood, want 2", n)
	}
	if got := s.tenantLabel("a"); got != "a" {
		t.Errorf("pre-cap tenant lost its label: %q", got)
	}
}
