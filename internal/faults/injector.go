package faults

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Injector answers the simulators' time-indexed fault queries for one
// schedule. All factors are piecewise constant between event boundaries;
// NextChange exposes the boundaries so event-driven simulators can segment
// time exactly. An Injector is immutable and safe for concurrent readers.
//
// WithBase shifts the injector's clock: queries at local time t read the
// schedule at absolute time base+t, which lets a simulation that restarts
// its clock mid-epoch (e.g. the post-failure fabric re-run in trainsim)
// keep consuming one absolute schedule.
type Injector struct {
	seed   int64
	events []Event // sorted by At
	bounds []float64
	base   float64
}

// NewInjector validates and indexes a schedule. A nil schedule yields an
// injector that reports a perfect machine.
func NewInjector(s *Schedule) (*Injector, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{}
	if s != nil {
		in.seed = s.Seed
		in.events = s.sorted()
	}
	seen := map[float64]bool{}
	for _, e := range in.events {
		if !seen[e.At] {
			seen[e.At] = true
			in.bounds = append(in.bounds, e.At)
		}
		if end := e.end(); !math.IsInf(end, 1) && !seen[end] {
			seen[end] = true
			in.bounds = append(in.bounds, end)
		}
	}
	sortFloats(in.bounds)
	return in, nil
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// WithBase returns a view whose local time 0 is absolute time base.
func (in *Injector) WithBase(base float64) *Injector {
	if in == nil {
		return nil
	}
	cp := *in
	cp.base = in.base + base
	return &cp
}

// Base returns the injector's absolute-clock offset.
func (in *Injector) Base() float64 {
	if in == nil {
		return 0
	}
	return in.base
}

// Events returns the schedule's events sorted by start time.
func (in *Injector) Events() []Event {
	if in == nil {
		return nil
	}
	return in.events
}

// abs converts a local query time to schedule time.
func (in *Injector) abs(t float64) float64 { return in.base + t }

// SSDFailed reports whether a fail-stop event has hit the SSD by time t.
func (in *Injector) SSDFailed(ssd int, t float64) bool {
	if in == nil {
		return false
	}
	at := in.abs(t)
	for _, e := range in.events {
		if e.Kind == FailStop && e.SSD == ssd && at >= e.At {
			return true
		}
	}
	return false
}

// SSDFailTime returns the absolute time the SSD fail-stops, or +Inf.
func (in *Injector) SSDFailTime(ssd int) float64 {
	if in == nil {
		return math.Inf(1)
	}
	for _, e := range in.events {
		if e.Kind == FailStop && e.SSD == ssd {
			return e.At
		}
	}
	return math.Inf(1)
}

// SSDFactor returns the SSD's remaining service-rate fraction at time t:
// 0 when failed, otherwise the product of all active throttles.
func (in *Injector) SSDFactor(ssd int, t float64) float64 {
	if in == nil {
		return 1
	}
	at := in.abs(t)
	f := 1.0
	for _, e := range in.events {
		if e.SSD != ssd {
			continue
		}
		switch e.Kind {
		case FailStop:
			if at >= e.At {
				return 0
			}
		case Throttle:
			if e.activeAt(at) {
				f *= e.Factor
			}
		}
	}
	return f
}

// ErrorProb returns the per-request transient-error probability on the
// SSD at time t (overlapping bursts compose independently).
func (in *Injector) ErrorProb(ssd int, t float64) float64 {
	if in == nil {
		return 0
	}
	at := in.abs(t)
	ok := 1.0 // probability a request sees no error
	for _, e := range in.events {
		if e.Kind == ErrorBurst && e.SSD == ssd && e.activeAt(at) {
			ok *= 1 - e.Prob
		}
	}
	return 1 - ok
}

// GPUFactor returns the GPU's remaining compute-rate fraction at time t.
func (in *Injector) GPUFactor(gpu int, t float64) float64 {
	if in == nil {
		return 1
	}
	at := in.abs(t)
	f := 1.0
	for _, e := range in.events {
		if e.Kind == Straggler && e.GPU == gpu && e.activeAt(at) {
			f *= e.Factor
		}
	}
	return f
}

// LinkFactor returns the capacity fraction of a named fabric link at time
// t. Two event classes apply: LinkDowntrain events naming the link
// exactly, and — because the fabric registers each SSD's egress link as
// "ssdN" — SSD fail/throttle/error-burst events for that device (an error
// burst scales capacity by its goodput factor, modeling retried requests
// re-occupying the link). This is the single query simnet needs to see
// every device-level fault.
func (in *Injector) LinkFactor(name string, t float64) float64 {
	if in == nil {
		return 1
	}
	f := 1.0
	at := in.abs(t)
	for _, e := range in.events {
		if e.Kind == LinkDowntrain && e.Link == name && e.activeAt(at) {
			f *= e.Factor
		}
	}
	if ssd, ok := ssdLinkIndex(name); ok {
		f *= in.SSDFactor(ssd, t) * GoodputFactor(in.ErrorProb(ssd, t))
	}
	return f
}

// ssdLinkIndex parses the fabric's SSD egress link naming ("ssd3" → 3).
func ssdLinkIndex(name string) (int, bool) {
	rest, ok := strings.CutPrefix(name, "ssd")
	if !ok || rest == "" {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// NextChange returns the earliest local time strictly after t at which any
// factor may change (+Inf when none remain). Event loops advance at most
// to this boundary so piecewise-constant factors are sampled exactly.
func (in *Injector) NextChange(t float64) float64 {
	if in == nil {
		return math.Inf(1)
	}
	at := in.abs(t)
	for _, b := range in.bounds {
		if b > at+1e-12 {
			return b - in.base
		}
	}
	return math.Inf(1)
}

// InjectedBy counts events whose start time is <= local time t.
func (in *Injector) InjectedBy(t float64) int {
	if in == nil {
		return 0
	}
	at := in.abs(t)
	n := 0
	for _, e := range in.events {
		if e.At <= at {
			n++
		}
	}
	return n
}

// Bernoulli draws a deterministic error coin: true with probability p,
// as a pure function of (seed, stream, trial). Streams separate devices;
// trials separate (request, attempt) pairs. The generator is a
// splitmix64-style counter hash, so coins are independent across trials
// and identical across runs with the same seed.
func (in *Injector) Bernoulli(stream, trial uint64, p float64) bool {
	if in == nil || p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	x := uint64(in.seed)
	x ^= stream * 0x9e3779b97f4a7c15
	x ^= trial * 0xbf58476d1ce4e5b9
	x = splitmix64(x)
	// 53-bit uniform in [0,1).
	u := float64(x>>11) / (1 << 53)
	return u < p
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// CheckTargets validates the schedule's device indices against a machine
// shape (numSSDs, numGPUs). Link names cannot be validated here — the
// fabric owns the namespace — so they are checked at simulation time.
func (in *Injector) CheckTargets(numSSDs, numGPUs int) error {
	if in == nil {
		return nil
	}
	for _, e := range in.events {
		if e.SSD >= numSSDs && (e.Kind == FailStop || e.Kind == Throttle || e.Kind == ErrorBurst) {
			return fmt.Errorf("faults: %s targets ssd%d but machine has %d SSDs", e.Kind, e.SSD, numSSDs)
		}
		if e.Kind == Straggler && e.GPU >= numGPUs {
			return fmt.Errorf("faults: straggle targets gpu%d but machine has %d GPUs", e.GPU, numGPUs)
		}
	}
	return nil
}
