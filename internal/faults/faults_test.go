package faults

import (
	"math"
	"testing"
)

func mustInjector(t *testing.T, s *Schedule) *Injector {
	t.Helper()
	in, err := NewInjector(s)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNilInjectorIsPerfectMachine(t *testing.T) {
	var in *Injector
	if f := in.SSDFactor(0, 5); f != 1 {
		t.Errorf("nil SSDFactor = %v, want 1", f)
	}
	if f := in.LinkFactor("ssd0", 5); f != 1 {
		t.Errorf("nil LinkFactor = %v, want 1", f)
	}
	if f := in.GPUFactor(0, 5); f != 1 {
		t.Errorf("nil GPUFactor = %v, want 1", f)
	}
	if p := in.ErrorProb(0, 5); p != 0 {
		t.Errorf("nil ErrorProb = %v, want 0", p)
	}
	if n := in.NextChange(0); !math.IsInf(n, 1) {
		t.Errorf("nil NextChange = %v, want +Inf", n)
	}
	if in.Bernoulli(1, 2, 0.5) {
		t.Error("nil Bernoulli must be false")
	}
}

func TestFactorsPiecewise(t *testing.T) {
	s := &Schedule{Events: []Event{
		ThrottleSSD(1, 10, 0.5, 20),
		Kill(2, 30),
		Straggle(0, 5, 0.8, 0),
		Downtrain("gpu0:in", 15, 0.25, 10),
		Burst(1, 12, 0.1, 4),
	}}
	in := mustInjector(t, s)

	if f := in.SSDFactor(1, 9.9); f != 1 {
		t.Errorf("before throttle: %v", f)
	}
	if f := in.SSDFactor(1, 10); f != 0.5 {
		t.Errorf("during throttle: %v", f)
	}
	if f := in.SSDFactor(1, 30); f != 1 {
		t.Errorf("after throttle: %v", f)
	}
	if !in.SSDFailed(2, 30) || in.SSDFailed(2, 29.9) {
		t.Error("fail-stop boundary wrong")
	}
	if f := in.SSDFactor(2, 31); f != 0 {
		t.Errorf("failed SSD factor = %v, want 0", f)
	}
	if ft := in.SSDFailTime(2); ft != 30 {
		t.Errorf("SSDFailTime = %v", ft)
	}
	if ft := in.SSDFailTime(0); !math.IsInf(ft, 1) {
		t.Errorf("healthy SSDFailTime = %v", ft)
	}
	if f := in.GPUFactor(0, 6); f != 0.8 {
		t.Errorf("straggler factor = %v", f)
	}
	if f := in.GPUFactor(0, 1e9); f != 0.8 {
		t.Error("permanent straggler should not expire")
	}
	if f := in.LinkFactor("gpu0:in", 16); f != 0.25 {
		t.Errorf("downtrain factor = %v", f)
	}
	if f := in.LinkFactor("gpu0:in", 26); f != 1 {
		t.Errorf("downtrain should expire: %v", f)
	}
	// SSD egress link sees throttle x goodput.
	want := 0.5 * (1 - 0.1)
	if f := in.LinkFactor("ssd1", 13); math.Abs(f-want) > 1e-12 {
		t.Errorf("ssd1 link factor = %v, want %v", f, want)
	}
	if p := in.ErrorProb(1, 13); math.Abs(p-0.1) > 1e-12 {
		t.Errorf("error prob = %v", p)
	}
}

func TestNextChangeWalksBoundaries(t *testing.T) {
	s := &Schedule{Events: []Event{
		ThrottleSSD(0, 10, 0.5, 20), // bounds 10, 30
		Kill(1, 25),                 // bound 25
	}}
	in := mustInjector(t, s)
	var got []float64
	t0 := 0.0
	for {
		nxt := in.NextChange(t0)
		if math.IsInf(nxt, 1) {
			break
		}
		got = append(got, nxt)
		t0 = nxt
	}
	want := []float64{10, 25, 30}
	if len(got) != len(want) {
		t.Fatalf("boundaries %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("boundaries %v, want %v", got, want)
		}
	}
}

func TestWithBaseShiftsClock(t *testing.T) {
	s := &Schedule{Events: []Event{ThrottleSSD(0, 10, 0.5, 0)}}
	in := mustInjector(t, s)
	shifted := in.WithBase(8)
	if f := shifted.SSDFactor(0, 1); f != 1 {
		t.Errorf("shifted t=1 (abs 9) = %v, want 1", f)
	}
	if f := shifted.SSDFactor(0, 2); f != 0.5 {
		t.Errorf("shifted t=2 (abs 10) = %v, want 0.5", f)
	}
	if n := shifted.NextChange(0); n != 2 {
		t.Errorf("shifted NextChange = %v, want 2", n)
	}
	// Stacking shifts composes.
	twice := shifted.WithBase(1)
	if f := twice.SSDFactor(0, 1); f != 0.5 {
		t.Errorf("double-shifted factor = %v", f)
	}
}

func TestBernoulliDeterministicAndCalibrated(t *testing.T) {
	inA := mustInjector(t, &Schedule{Seed: 42})
	inB := mustInjector(t, &Schedule{Seed: 42})
	inC := mustInjector(t, &Schedule{Seed: 43})
	const n = 20000
	hits, diff := 0, 0
	for i := uint64(0); i < n; i++ {
		a := inA.Bernoulli(3, i, 0.1)
		if a != inB.Bernoulli(3, i, 0.1) {
			t.Fatal("same seed must reproduce identical coins")
		}
		if a != inC.Bernoulli(3, i, 0.1) {
			diff++
		}
		if a {
			hits++
		}
	}
	if rate := float64(hits) / n; math.Abs(rate-0.1) > 0.01 {
		t.Errorf("empirical rate %v, want ~0.1", rate)
	}
	if diff == 0 {
		t.Error("different seeds should produce different coin sequences")
	}
}

func TestValidateRejectsBadEvents(t *testing.T) {
	bad := []Event{
		{Kind: Throttle, SSD: 0, At: 1, Factor: 1.5},
		{Kind: Throttle, SSD: 0, At: 1, Factor: 0},
		{Kind: FailStop, SSD: -1, At: 1},
		{Kind: ErrorBurst, SSD: 0, At: 1, Prob: 0},
		{Kind: LinkDowntrain, At: 1, Factor: 0.5},
		{Kind: Straggler, GPU: -1, At: 1, Factor: 0.5},
		{Kind: Throttle, SSD: 0, At: -1, Factor: 0.5},
		{Kind: Throttle, SSD: 0, At: math.NaN(), Factor: 0.5},
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("event %d (%+v) should not validate", i, e)
		}
	}
}

func TestCheckTargets(t *testing.T) {
	in := mustInjector(t, &Schedule{Events: []Event{Kill(5, 1)}})
	if err := in.CheckTargets(4, 4); err == nil {
		t.Error("ssd5 on a 4-SSD machine should fail")
	}
	if err := in.CheckTargets(8, 4); err != nil {
		t.Errorf("ssd5 on an 8-SSD machine: %v", err)
	}
	in = mustInjector(t, &Schedule{Events: []Event{Straggle(4, 1, 0.5, 0)}})
	if err := in.CheckTargets(8, 4); err == nil {
		t.Error("gpu4 on a 4-GPU machine should fail")
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	spec := "seed=7;kill:ssd2@30;throttle:ssd1@10x0.5+20;downtrain:gpu0:in@5x0.25;straggle:gpu3@0x0.8;errburst:ssd0@2p0.01+1"
	s, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != 7 || len(s.Events) != 5 {
		t.Fatalf("parsed %+v", s)
	}
	if e := s.Events[0]; e.Kind != FailStop || e.SSD != 2 || e.At != 30 {
		t.Errorf("kill event %+v", e)
	}
	if e := s.Events[1]; e.Kind != Throttle || e.Factor != 0.5 || e.Duration != 20 {
		t.Errorf("throttle event %+v", e)
	}
	if e := s.Events[2]; e.Kind != LinkDowntrain || e.Link != "gpu0:in" || e.Factor != 0.25 {
		t.Errorf("downtrain event %+v", e)
	}
	if e := s.Events[4]; e.Kind != ErrorBurst || e.Prob != 0.01 || e.Duration != 1 {
		t.Errorf("errburst event %+v", e)
	}
	if got := Format(s); got != spec {
		t.Errorf("Format round trip:\n got %q\nwant %q", got, spec)
	}
	// Re-parsing the formatted form is identical.
	s2, err := Parse(Format(s))
	if err != nil {
		t.Fatal(err)
	}
	if Format(s2) != spec {
		t.Error("second round trip drifted")
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"boom:ssd0@1",
		"kill:ssd0",
		"kill:hdd0@1",
		"throttle:ssd0@1x2",
		"kill:ssd0@x",
		"seed=abc",
		"straggle:gpu@1x0.5",
		"errburst:ssd0@1p0.5x2junk",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) should fail", spec)
		}
	}
	// Empty and whitespace specs are valid empty schedules.
	s, err := Parse(" ; ")
	if err != nil || !s.Empty() {
		t.Errorf("blank spec: %v %+v", err, s)
	}
}

func TestRetryPolicy(t *testing.T) {
	p := RetryPolicy{}.Defaults()
	if p.MaxRetries != 4 || p.BaseBackoff != 100e-6 || p.Timeout != 1 {
		t.Fatalf("defaults %+v", p)
	}
	if b := p.Backoff(2); math.Abs(b-400e-6) > 1e-12 {
		t.Errorf("Backoff(2) = %v", b)
	}
	want := (1 + 2 + 4 + 8) * 100e-6
	if tot := p.BackoffTotal(); math.Abs(tot-want) > 1e-12 {
		t.Errorf("BackoffTotal = %v, want %v", tot, want)
	}
	if g := GoodputFactor(0.25); g != 0.75 {
		t.Errorf("GoodputFactor = %v", g)
	}
	if g := GoodputFactor(0); g != 1 {
		t.Errorf("GoodputFactor(0) = %v", g)
	}
}
