// Package faults is the deterministic, seedable fault-injection subsystem
// for Moment's simulated I/O stack. Real multi-GPU storage servers lose
// SSDs, thermally throttle, downtrain PCIe links and develop straggler
// GPUs; the planner's max-flow prediction is only trustworthy if the
// runtime degrades gracefully when the machine stops matching the model.
// This package provides the shared vocabulary for those experiments:
//
//   - Schedule: a timed list of fault events (fail-stop, bandwidth
//     degradation, link downtraining, GPU slowdown, transient-error
//     bursts), fully determined by its literal contents plus a seed;
//   - Injector: the query interface the simulators consume — piecewise-
//     constant capacity factors per device/link/GPU, per-request error
//     probabilities, and the next time any factor changes (so event loops
//     can segment time exactly at fault boundaries);
//   - RetryPolicy: the retry/backoff/timeout semantics the I/O stack
//     applies to transient errors and dead devices;
//   - a spec grammar (Parse/Format) so whole degradation experiments can
//     be described on a command line.
//
// Determinism guarantee: every Injector query is a pure function of the
// schedule and its arguments. Per-request error coins are drawn from a
// counter-based hash of (seed, stream, trial) — no global RNG, no
// iteration-order dependence — so the same seed reproduces the same run
// byte for byte.
package faults

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind classifies a fault event.
type Kind int

const (
	// FailStop kills an SSD permanently at Event.At (device drained and
	// excluded; its data must be re-routed to survivors).
	FailStop Kind = iota
	// Throttle degrades an SSD's service rate to Factor of spec (thermal
	// throttling, background GC) for Duration seconds (0 = permanent).
	Throttle
	// LinkDowntrain degrades a named fabric link to Factor of its trained
	// width (e.g. x16→x4 is Factor 0.25) for Duration seconds.
	LinkDowntrain
	// Straggler slows a GPU's compute to Factor of spec for Duration
	// seconds (0 = permanent).
	Straggler
	// ErrorBurst makes each request on an SSD fail independently with
	// probability Prob for Duration seconds; failed requests are retried
	// under the RetryPolicy.
	ErrorBurst
)

// String names the kind (also the spec-grammar verb).
func (k Kind) String() string {
	switch k {
	case FailStop:
		return "kill"
	case Throttle:
		return "throttle"
	case LinkDowntrain:
		return "downtrain"
	case Straggler:
		return "straggle"
	case ErrorBurst:
		return "errburst"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one timed fault.
type Event struct {
	Kind Kind
	// At is the event start time in seconds from the start of the run.
	At float64
	// Duration bounds transient events; 0 means "until the end of the
	// run". FailStop is always permanent regardless of Duration.
	Duration float64
	// SSD is the target device index for FailStop/Throttle/ErrorBurst
	// (-1 when the kind targets something else).
	SSD int
	// GPU is the target for Straggler (-1 otherwise).
	GPU int
	// Link is the target simnet link name for LinkDowntrain (the fabric
	// registers SSD egress as "ssdN", GPU slot ingress as "gpuN:in",
	// switch uplinks as "up:swN"/"down:swN").
	Link string
	// Factor is the remaining-throughput multiplier in (0,1) for
	// Throttle/LinkDowntrain/Straggler.
	Factor float64
	// Prob is the per-request error probability in (0,1) for ErrorBurst.
	Prob float64
}

// end returns the absolute end time of the event's effect.
func (e Event) end() float64 {
	if e.Kind == FailStop || e.Duration <= 0 {
		return math.Inf(1)
	}
	return e.At + e.Duration
}

// activeAt reports whether the event's effect covers time t.
func (e Event) activeAt(t float64) bool {
	return t >= e.At && t < e.end()
}

// Validate checks one event's fields.
func (e Event) Validate() error {
	if math.IsNaN(e.At) || e.At < 0 {
		return fmt.Errorf("faults: %s event at invalid time %v", e.Kind, e.At)
	}
	if math.IsNaN(e.Duration) || e.Duration < 0 {
		return fmt.Errorf("faults: %s event has invalid duration %v", e.Kind, e.Duration)
	}
	switch e.Kind {
	case FailStop:
		if e.SSD < 0 {
			return fmt.Errorf("faults: kill event targets no SSD")
		}
	case Throttle:
		if e.SSD < 0 {
			return fmt.Errorf("faults: throttle event targets no SSD")
		}
		if !(e.Factor > 0 && e.Factor < 1) {
			return fmt.Errorf("faults: throttle factor %v out of (0,1)", e.Factor)
		}
	case LinkDowntrain:
		if e.Link == "" {
			return fmt.Errorf("faults: downtrain event names no link")
		}
		if !(e.Factor > 0 && e.Factor < 1) {
			return fmt.Errorf("faults: downtrain factor %v out of (0,1)", e.Factor)
		}
	case Straggler:
		if e.GPU < 0 {
			return fmt.Errorf("faults: straggle event targets no GPU")
		}
		if !(e.Factor > 0 && e.Factor < 1) {
			return fmt.Errorf("faults: straggle factor %v out of (0,1)", e.Factor)
		}
	case ErrorBurst:
		if e.SSD < 0 {
			return fmt.Errorf("faults: errburst event targets no SSD")
		}
		if !(e.Prob > 0 && e.Prob < 1) {
			return fmt.Errorf("faults: errburst probability %v out of (0,1)", e.Prob)
		}
	default:
		return fmt.Errorf("faults: unknown event kind %d", int(e.Kind))
	}
	return nil
}

// Schedule is a seeded, time-ordered fault plan. The zero value (and nil)
// is a valid empty schedule: a perfect machine.
type Schedule struct {
	// Seed feeds the per-request error coins (and nothing else — event
	// times and targets are literal).
	Seed int64
	// Events need not be sorted; consumers order by At.
	Events []Event
}

// Validate checks every event.
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for i, e := range s.Events {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("%w (event %d)", err, i)
		}
	}
	return nil
}

// Empty reports whether the schedule injects nothing.
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// sorted returns the events ordered by start time (stable, input intact).
func (s *Schedule) sorted() []Event {
	out := append([]Event(nil), s.Events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Kill builds a fail-stop event.
func Kill(ssd int, at float64) Event {
	return Event{Kind: FailStop, SSD: ssd, GPU: -1, At: at}
}

// ThrottleSSD builds a bandwidth-degradation event (dur 0 = permanent).
func ThrottleSSD(ssd int, at, factor, dur float64) Event {
	return Event{Kind: Throttle, SSD: ssd, GPU: -1, At: at, Factor: factor, Duration: dur}
}

// Downtrain builds a link-degradation event (dur 0 = permanent).
func Downtrain(link string, at, factor, dur float64) Event {
	return Event{Kind: LinkDowntrain, SSD: -1, GPU: -1, Link: link, At: at, Factor: factor, Duration: dur}
}

// Straggle builds a GPU-slowdown event (dur 0 = permanent).
func Straggle(gpu int, at, factor, dur float64) Event {
	return Event{Kind: Straggler, SSD: -1, GPU: gpu, At: at, Factor: factor, Duration: dur}
}

// Burst builds a transient-error burst event.
func Burst(ssd int, at, prob, dur float64) Event {
	return Event{Kind: ErrorBurst, SSD: ssd, GPU: -1, At: at, Prob: prob, Duration: dur}
}

// RetryPolicy is the I/O stack's reaction to transient errors and dead
// devices: failed requests are retried with exponential backoff up to
// MaxRetries times; a request (or a whole device) that stays unresponsive
// for Timeout is declared dead and drained.
type RetryPolicy struct {
	// MaxRetries is the retry budget per request beyond the first attempt
	// (default 4).
	MaxRetries int
	// BaseBackoff is the delay before the first retry, doubling per
	// subsequent retry (default 100µs).
	BaseBackoff float64
	// Timeout is the per-request (and fail-stop detection) timeout in
	// seconds (default 1s).
	Timeout float64
}

// Defaults fills zero fields with the documented defaults.
func (p RetryPolicy) Defaults() RetryPolicy {
	if p.MaxRetries == 0 {
		p.MaxRetries = 4
	}
	if p.BaseBackoff == 0 {
		p.BaseBackoff = 100e-6
	}
	if p.Timeout == 0 {
		p.Timeout = 1
	}
	return p
}

// Backoff returns the delay before the given retry (0-indexed:
// Backoff(0) = BaseBackoff, doubling after).
func (p RetryPolicy) Backoff(retry int) float64 {
	return p.BaseBackoff * math.Pow(2, float64(retry))
}

// BackoffTotal sums the backoff delays across the whole retry budget —
// the worst-case stall one request can accumulate before being declared
// failed.
func (p RetryPolicy) BackoffTotal() float64 {
	total := 0.0
	for i := 0; i < p.MaxRetries; i++ {
		total += p.Backoff(i)
	}
	return total
}

// GoodputFactor is the fluid-model throughput multiplier under a
// per-request error probability: each attempt succeeds with probability
// 1-prob, so sustained goodput scales by 1-prob (retries occupy the
// device just like first attempts).
func GoodputFactor(prob float64) float64 {
	if prob <= 0 {
		return 1
	}
	if prob >= 1 {
		return 0
	}
	return 1 - prob
}

// Format renders a schedule in the spec grammar accepted by Parse.
func Format(s *Schedule) string {
	if s == nil {
		return ""
	}
	var parts []string
	if s.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	}
	for _, e := range s.Events {
		var b strings.Builder
		fmt.Fprintf(&b, "%s:", e.Kind)
		switch e.Kind {
		case LinkDowntrain:
			b.WriteString(e.Link)
		case Straggler:
			fmt.Fprintf(&b, "gpu%d", e.GPU)
		default:
			fmt.Fprintf(&b, "ssd%d", e.SSD)
		}
		fmt.Fprintf(&b, "@%g", e.At)
		switch e.Kind {
		case Throttle, LinkDowntrain, Straggler:
			fmt.Fprintf(&b, "x%g", e.Factor)
		case ErrorBurst:
			fmt.Fprintf(&b, "p%g", e.Prob)
		}
		if e.Duration > 0 && e.Kind != FailStop {
			fmt.Fprintf(&b, "+%g", e.Duration)
		}
		parts = append(parts, b.String())
	}
	return strings.Join(parts, ";")
}
