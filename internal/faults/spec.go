package faults

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse decodes the command-line fault-spec grammar into a Schedule.
// Clauses are semicolon-separated:
//
//	seed=42                     error-coin seed (default 0)
//	kill:ssd2@30                SSD 2 fail-stops at t=30s
//	throttle:ssd1@10x0.5+20     SSD 1 at 50% for 20s starting t=10s
//	downtrain:gpu0:in@5x0.25    link "gpu0:in" at x4 width from t=5s
//	straggle:gpu3@0x0.8         GPU 3 at 80% compute from t=0
//	errburst:ssd0@2p0.01+1      1% request errors on SSD 0 for 1s at t=2s
//
// The general clause shape is kind:target@start[x factor|p prob][+duration];
// omitting +duration makes the event permanent. Format is the inverse.
func Parse(spec string) (*Schedule, error) {
	s := &Schedule{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q: %v", rest, err)
			}
			s.Seed = seed
			continue
		}
		ev, err := parseEvent(clause)
		if err != nil {
			return nil, err
		}
		s.Events = append(s.Events, ev)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

func parseEvent(clause string) (Event, error) {
	verb, rest, ok := strings.Cut(clause, ":")
	if !ok {
		return Event{}, fmt.Errorf("faults: clause %q has no kind (want kind:target@time...)", clause)
	}
	var kind Kind
	switch verb {
	case "kill":
		kind = FailStop
	case "throttle":
		kind = Throttle
	case "downtrain":
		kind = LinkDowntrain
	case "straggle":
		kind = Straggler
	case "errburst":
		kind = ErrorBurst
	default:
		return Event{}, fmt.Errorf("faults: unknown event kind %q in %q", verb, clause)
	}
	// The target may itself contain ':' (link names like "gpu0:in"), so
	// split on the last '@'.
	at := strings.LastIndex(rest, "@")
	if at < 0 {
		return Event{}, fmt.Errorf("faults: clause %q has no @time", clause)
	}
	target, timing := rest[:at], rest[at+1:]
	if target == "" {
		return Event{}, fmt.Errorf("faults: clause %q has an empty target", clause)
	}
	ev := Event{Kind: kind, SSD: -1, GPU: -1}
	switch kind {
	case LinkDowntrain:
		ev.Link = target
	case Straggler:
		g, err := indexedTarget(target, "gpu")
		if err != nil {
			return Event{}, fmt.Errorf("faults: %v in %q", err, clause)
		}
		ev.GPU = g
	default:
		d, err := indexedTarget(target, "ssd")
		if err != nil {
			return Event{}, fmt.Errorf("faults: %v in %q", err, clause)
		}
		ev.SSD = d
	}
	// timing: start[x factor|p prob][+duration]
	if plus := strings.IndexByte(timing, '+'); plus >= 0 {
		dur, err := strconv.ParseFloat(timing[plus+1:], 64)
		if err != nil {
			return Event{}, fmt.Errorf("faults: bad duration in %q: %v", clause, err)
		}
		ev.Duration = dur
		timing = timing[:plus]
	}
	numEnd := len(timing)
	if x := strings.IndexAny(timing, "xp"); x >= 0 {
		val, err := strconv.ParseFloat(timing[x+1:], 64)
		if err != nil {
			return Event{}, fmt.Errorf("faults: bad %c value in %q: %v", timing[x], clause, err)
		}
		if timing[x] == 'x' {
			ev.Factor = val
		} else {
			ev.Prob = val
		}
		numEnd = x
	}
	start, err := strconv.ParseFloat(timing[:numEnd], 64)
	if err != nil {
		return Event{}, fmt.Errorf("faults: bad start time in %q: %v", clause, err)
	}
	ev.At = start
	return ev, nil
}

// indexedTarget parses "ssd3" / "gpu0" style targets.
func indexedTarget(target, prefix string) (int, error) {
	rest, ok := strings.CutPrefix(target, prefix)
	if !ok {
		return 0, fmt.Errorf("target %q must start with %q", target, prefix)
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("target %q has no valid index", target)
	}
	return n, nil
}
