package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary CSR serialization — the on-disk format the dataset-preparation
// step writes after reorganizing a graph for training (the paper's
// prepare_datasets.sh stage). Layout: magic, version, vertex count, edge
// count, offsets (int64 LE), targets (int32 LE).

const (
	csrMagic   = uint32(0x4d4f4d47) // "MOMG"
	csrVersion = uint32(1)
)

// WriteCSR streams the graph to w.
func WriteCSR(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{csrMagic, csrVersion}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("graph: write header: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(g.n)); err != nil {
		return fmt.Errorf("graph: write vertex count: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, g.M()); err != nil {
		return fmt.Errorf("graph: write edge count: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, g.offsets); err != nil {
		return fmt.Errorf("graph: write offsets: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, g.targets); err != nil {
		return fmt.Errorf("graph: write targets: %w", err)
	}
	return bw.Flush()
}

// ReadCSR parses a graph written by WriteCSR, validating all invariants.
func ReadCSR(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic, version uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("graph: read magic: %w", err)
	}
	if magic != csrMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, fmt.Errorf("graph: read version: %w", err)
	}
	if version != csrVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", version)
	}
	var n, m int64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("graph: read vertex count: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("graph: read edge count: %w", err)
	}
	if n < 0 || m < 0 || n > 1<<31 || m > 1<<33 {
		return nil, fmt.Errorf("graph: implausible sizes n=%d m=%d", n, m)
	}
	offsets := make([]int64, n+1)
	if err := binary.Read(br, binary.LittleEndian, offsets); err != nil {
		return nil, fmt.Errorf("graph: read offsets: %w", err)
	}
	targets := make([]int32, m)
	if err := binary.Read(br, binary.LittleEndian, targets); err != nil {
		return nil, fmt.Errorf("graph: read targets: %w", err)
	}
	return NewCSR(offsets, targets)
}

// WriteFeatures streams a feature matrix to w (n, dim, float32 rows LE).
func WriteFeatures(w io.Writer, f *Features) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, int64(f.N())); err != nil {
		return fmt.Errorf("graph: write feature rows: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(f.Dim)); err != nil {
		return fmt.Errorf("graph: write feature dim: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, f.data); err != nil {
		return fmt.Errorf("graph: write feature data: %w", err)
	}
	return bw.Flush()
}

// ReadFeatures parses a feature matrix written by WriteFeatures.
func ReadFeatures(r io.Reader) (*Features, error) {
	br := bufio.NewReader(r)
	var n, dim int64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("graph: read feature rows: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &dim); err != nil {
		return nil, fmt.Errorf("graph: read feature dim: %w", err)
	}
	if n < 0 || dim <= 0 || n*dim > 1<<33 {
		return nil, fmt.Errorf("graph: implausible feature shape %dx%d", n, dim)
	}
	f, err := NewFeatures(int(n), int(dim))
	if err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, f.data); err != nil {
		return nil, fmt.Errorf("graph: read feature data: %w", err)
	}
	return f, nil
}
