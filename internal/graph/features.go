package graph

import (
	"fmt"
	"math/rand"
)

// Features is a dense row-major vertex feature matrix (the in-memory
// feature store for the functional training path; terabyte-scale feature
// stores are modeled analytically by the simulator instead).
type Features struct {
	Dim  int
	data []float32
}

// NewFeatures allocates an n×dim zero matrix.
func NewFeatures(n, dim int) (*Features, error) {
	if n < 0 || dim <= 0 {
		return nil, fmt.Errorf("graph: bad feature shape %dx%d", n, dim)
	}
	return &Features{Dim: dim, data: make([]float32, n*dim)}, nil
}

// RandomFeatures fills an n×dim matrix with N(0,1)-ish values, mirroring
// the paper's synthetic 1024-dim features for UK/CL (§4.1).
func RandomFeatures(n, dim int, seed int64) (*Features, error) {
	f, err := NewFeatures(n, dim)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	for i := range f.data {
		f.data[i] = float32(r.NormFloat64())
	}
	return f, nil
}

// N returns the number of rows.
func (f *Features) N() int { return len(f.data) / f.Dim }

// Row returns vertex v's feature row (aliases internal storage).
func (f *Features) Row(v int32) []float32 {
	return f.data[int(v)*f.Dim : (int(v)+1)*f.Dim]
}

// SetRow copies vals into vertex v's row.
func (f *Features) SetRow(v int32, vals []float32) error {
	if len(vals) != f.Dim {
		return fmt.Errorf("graph: row length %d != dim %d", len(vals), f.Dim)
	}
	copy(f.Row(v), vals)
	return nil
}

// Gather copies the rows of the given vertices into a dense batch matrix
// (len(vs)×Dim), the feature-extraction step of mini-batch training.
func (f *Features) Gather(vs []int32, out []float32) error {
	if len(out) != len(vs)*f.Dim {
		return fmt.Errorf("graph: gather buffer %d != %d", len(out), len(vs)*f.Dim)
	}
	for i, v := range vs {
		copy(out[i*f.Dim:(i+1)*f.Dim], f.Row(v))
	}
	return nil
}

// Labels assigns a synthetic class per vertex for node classification.
// Classes follow the vertex's hottest neighbor group so they are learnable
// from structure+features rather than pure noise: class = hash of the
// leading feature signs.
func Labels(f *Features, classes int) ([]int32, error) {
	if classes <= 1 {
		return nil, fmt.Errorf("graph: need at least 2 classes")
	}
	n := f.N()
	out := make([]int32, n)
	k := 4
	if f.Dim < k {
		k = f.Dim
	}
	for v := 0; v < n; v++ {
		row := f.Row(int32(v))
		h := 0
		for j := 0; j < k; j++ {
			h <<= 1
			if row[j] > 0 {
				h |= 1
			}
		}
		out[v] = int32(h % classes)
	}
	return out, nil
}
