// Package graph provides the graph substrate for GNN training: a compact
// CSR adjacency structure, synthetic skewed-graph generators (the stand-in
// for the paper's terabyte-scale datasets), the Table 2 dataset catalog at
// paper scale, and an in-memory feature store for the functional training
// path.
package graph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Graph is an immutable directed graph in CSR form. Vertex ids are dense
// [0, N). For GNN sampling we store the *incoming* neighbor lists
// (a vertex aggregates from its in-neighbors), which for the symmetric
// generators below equals the out view.
type Graph struct {
	n       int
	offsets []int64 // len n+1
	targets []int32 // len = #edges
}

// NewCSR wraps pre-built CSR arrays after validating their invariants.
func NewCSR(offsets []int64, targets []int32) (*Graph, error) {
	if len(offsets) == 0 {
		return nil, fmt.Errorf("graph: empty offsets")
	}
	n := len(offsets) - 1
	if offsets[0] != 0 {
		return nil, fmt.Errorf("graph: offsets[0] = %d, want 0", offsets[0])
	}
	for i := 0; i < n; i++ {
		if offsets[i] > offsets[i+1] {
			return nil, fmt.Errorf("graph: offsets not monotone at %d", i)
		}
	}
	if offsets[n] != int64(len(targets)) {
		return nil, fmt.Errorf("graph: offsets[n]=%d != len(targets)=%d", offsets[n], len(targets))
	}
	for _, t := range targets {
		if t < 0 || int(t) >= n {
			return nil, fmt.Errorf("graph: target %d out of range [0,%d)", t, n)
		}
	}
	return &Graph{n: n, offsets: offsets, targets: targets}, nil
}

// FromEdges builds a CSR graph from (src, dst) pairs: dst's neighbor list
// gains src (in-neighbor orientation). Duplicate edges are kept.
func FromEdges(n int, edges [][2]int32) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count")
	}
	deg := make([]int64, n+1)
	for _, e := range edges {
		if e[0] < 0 || int(e[0]) >= n || e[1] < 0 || int(e[1]) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e[0], e[1], n)
		}
		deg[e[1]+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	targets := make([]int32, len(edges))
	cursor := make([]int64, n)
	copy(cursor, deg[:n])
	for _, e := range edges {
		targets[cursor[e[1]]] = e[0]
		cursor[e[1]]++
	}
	return &Graph{n: n, offsets: deg, targets: targets}, nil
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of directed edges.
func (g *Graph) M() int64 { return g.offsets[g.n] }

// Degree returns vertex v's in-neighbor count.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns vertex v's in-neighbor list. The slice aliases the
// graph's storage and must not be mutated.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.targets[g.offsets[v]:g.offsets[v+1]]
}

// MaxDegree returns the largest in-degree.
func (g *Graph) MaxDegree() int {
	best := 0
	for v := int32(0); int(v) < g.n; v++ {
		if d := g.Degree(v); d > best {
			best = d
		}
	}
	return best
}

// GenZipf builds a skewed random graph by the configuration model: vertex
// v's expected degree follows a Zipf law with exponent s (vertex 0
// hottest), and each edge endpoint is drawn from that distribution. This
// mirrors the power-law degree skew of web/social graphs (UK, CL) that
// makes DDAK's hotness-aware placement matter (§3.3, footnote 2).
func GenZipf(n int, avgDeg int, s float64, seed int64) (*Graph, error) {
	if n <= 0 || avgDeg <= 0 {
		return nil, fmt.Errorf("graph: GenZipf wants positive n and avgDeg (got %d, %d)", n, avgDeg)
	}
	if s <= 0 {
		return nil, fmt.Errorf("graph: GenZipf wants positive skew exponent, got %v", s)
	}
	r := rand.New(rand.NewSource(seed))
	// Cumulative Zipf weights for endpoint sampling.
	cum := make([]float64, n+1)
	for i := 0; i < n; i++ {
		cum[i+1] = cum[i] + 1/math.Pow(float64(i+1), s)
	}
	total := cum[n]
	draw := func() int32 {
		x := r.Float64() * total
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int32(lo)
	}
	m := n * avgDeg
	edges := make([][2]int32, 0, m)
	for i := 0; i < m; i++ {
		u, v := draw(), int32(r.Intn(n))
		if u == v {
			continue
		}
		edges = append(edges, [2]int32{u, v})
	}
	return FromEdges(n, edges)
}

// GenRMAT builds a Graph500-style R-MAT graph with 2^scale vertices and
// edgefactor*2^scale edges using the standard (0.57, 0.19, 0.19, 0.05)
// partition probabilities.
func GenRMAT(scale, edgefactor int, seed int64) (*Graph, error) {
	if scale <= 0 || scale > 28 || edgefactor <= 0 {
		return nil, fmt.Errorf("graph: GenRMAT scale %d / edgefactor %d out of range", scale, edgefactor)
	}
	const a, b, c = 0.57, 0.19, 0.19
	r := rand.New(rand.NewSource(seed))
	n := 1 << scale
	m := n * edgefactor
	edges := make([][2]int32, 0, m)
	for i := 0; i < m; i++ {
		var u, v int32
		for bit := scale - 1; bit >= 0; bit-- {
			x := r.Float64()
			switch {
			case x < a:
			case x < a+b:
				v |= 1 << bit
			case x < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		edges = append(edges, [2]int32{u, v})
	}
	return FromEdges(n, edges)
}

// DegreeHistogram returns sorted descending degrees (skew diagnostics).
func (g *Graph) DegreeHistogram() []int {
	out := make([]int, g.n)
	for v := 0; v < g.n; v++ {
		out[v] = g.Degree(int32(v))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}

// GiniSkew computes the Gini coefficient of the degree distribution —
// 0 for uniform, →1 for extreme skew. Used to verify generated graphs
// exhibit the access skew the paper's DDAK exploits.
func (g *Graph) GiniSkew() float64 {
	deg := g.DegreeHistogram() // descending
	n := len(deg)
	if n == 0 {
		return 0
	}
	sum := 0.0
	weighted := 0.0
	// Ascending order for the standard formula.
	for i := n - 1; i >= 0; i-- {
		rank := float64(n - i) // 1..n ascending
		weighted += rank * float64(deg[i])
		sum += float64(deg[i])
	}
	if sum == 0 {
		return 0
	}
	return (2*weighted/(float64(n)*sum) - float64(n+1)/float64(n))
}

// AppearanceCounts returns, per vertex, how many neighbor-list slots
// reference it — the frequency with which sampling would touch the vertex,
// i.e. its access hotness proxy. (A vertex with many in-list appearances
// is fetched often during neighbor expansion regardless of its own
// in-degree.)
func (g *Graph) AppearanceCounts() []int64 {
	out := make([]int64, g.n)
	for _, t := range g.targets {
		out[t]++
	}
	return out
}

// AccessGini computes the Gini coefficient of the appearance-count
// distribution — the skew that DDAK exploits.
func (g *Graph) AccessGini() float64 {
	app := g.AppearanceCounts()
	return giniOf(app)
}

func giniOf(vals []int64) float64 {
	n := len(vals)
	if n == 0 {
		return 0
	}
	sorted := make([]int64, n)
	copy(sorted, vals)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	sum := 0.0
	weighted := 0.0
	for i, v := range sorted {
		weighted += float64(i+1) * float64(v)
		sum += float64(v)
	}
	if sum == 0 {
		return 0
	}
	return 2*weighted/(float64(n)*sum) - float64(n+1)/float64(n)
}
