package graph

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFromEdgesBasic(t *testing.T) {
	g, err := FromEdges(4, [][2]int32{{0, 1}, {2, 1}, {3, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if g.Degree(1) != 3 {
		t.Errorf("deg(1) = %d, want 3", g.Degree(1))
	}
	nbrs := g.Neighbors(1)
	seen := map[int32]bool{}
	for _, u := range nbrs {
		seen[u] = true
	}
	for _, want := range []int32{0, 2, 3} {
		if !seen[want] {
			t.Errorf("neighbors(1) missing %d: %v", want, nbrs)
		}
	}
	if g.Degree(2) != 0 {
		t.Errorf("deg(2) = %d", g.Degree(2))
	}
}

func TestFromEdgesErrors(t *testing.T) {
	if _, err := FromEdges(-1, nil); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := FromEdges(2, [][2]int32{{0, 5}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := FromEdges(2, [][2]int32{{-1, 0}}); err == nil {
		t.Error("negative vertex accepted")
	}
}

func TestNewCSRValidation(t *testing.T) {
	if _, err := NewCSR(nil, nil); err == nil {
		t.Error("empty offsets accepted")
	}
	if _, err := NewCSR([]int64{1, 2}, []int32{0}); err == nil {
		t.Error("offsets[0]!=0 accepted")
	}
	if _, err := NewCSR([]int64{0, 2, 1}, []int32{0}); err == nil {
		t.Error("non-monotone offsets accepted")
	}
	if _, err := NewCSR([]int64{0, 1}, []int32{}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewCSR([]int64{0, 1}, []int32{7}); err == nil {
		t.Error("target out of range accepted")
	}
	g, err := NewCSR([]int64{0, 1, 1}, []int32{1})
	if err != nil || g.N() != 2 {
		t.Errorf("valid CSR rejected: %v", err)
	}
}

func TestCSRInvariantsProperty(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%50) + 2
		m := int(mRaw) * 4
		r := rand.New(rand.NewSource(seed))
		edges := make([][2]int32, m)
		for i := range edges {
			edges[i] = [2]int32{int32(r.Intn(n)), int32(r.Intn(n))}
		}
		g, err := FromEdges(n, edges)
		if err != nil {
			return false
		}
		// Degrees sum to edge count; every neighbor in range.
		sum := int64(0)
		for v := int32(0); int(v) < n; v++ {
			sum += int64(g.Degree(v))
			for _, u := range g.Neighbors(v) {
				if u < 0 || int(u) >= n {
					return false
				}
			}
		}
		return sum == g.M() && g.M() == int64(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGenZipfSkewed(t *testing.T) {
	g, err := GenZipf(5000, 8, 1.0, 42)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5000 {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() < int64(5000*8*8/10) {
		t.Errorf("too few edges: %d", g.M())
	}
	gini := g.AccessGini()
	if gini < 0.3 {
		t.Errorf("access Gini %.2f too uniform for a Zipf graph", gini)
	}
	// Hot vertices should dominate: the top 1%% of vertices by appearance
	// count should hold a disproportionate share of neighbor-list slots
	// (paper footnote 2).
	app := g.AppearanceCounts()
	sort.Slice(app, func(i, j int) bool { return app[i] > app[j] })
	top := int64(0)
	for i := 0; i < len(app)/100; i++ {
		top += app[i]
	}
	if frac := float64(top) / float64(g.M()); frac < 0.15 {
		t.Errorf("top-1%% access share %.3f, want skew > 0.15", frac)
	}
}

func TestGenZipfErrors(t *testing.T) {
	if _, err := GenZipf(0, 4, 1, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := GenZipf(10, 0, 1, 1); err == nil {
		t.Error("avgDeg=0 accepted")
	}
	if _, err := GenZipf(10, 4, 0, 1); err == nil {
		t.Error("skew=0 accepted")
	}
}

func TestGenZipfDeterministic(t *testing.T) {
	g1, err := GenZipf(500, 4, 0.9, 7)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := GenZipf(500, 4, 0.9, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g1.M() != g2.M() {
		t.Fatalf("same seed, different edge counts: %d vs %d", g1.M(), g2.M())
	}
	for v := int32(0); int(v) < g1.N(); v++ {
		if g1.Degree(v) != g2.Degree(v) {
			t.Fatalf("same seed, different degree at %d", v)
		}
	}
}

func TestGenRMAT(t *testing.T) {
	g, err := GenRMAT(10, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1024 {
		t.Fatalf("N = %d", g.N())
	}
	if g.AccessGini() < 0.3 {
		t.Errorf("RMAT access Gini %.2f too uniform", g.AccessGini())
	}
	if _, err := GenRMAT(0, 8, 1); err == nil {
		t.Error("scale=0 accepted")
	}
	if _, err := GenRMAT(30, 8, 1); err == nil {
		t.Error("scale=30 accepted")
	}
	if _, err := GenRMAT(5, 0, 1); err == nil {
		t.Error("edgefactor=0 accepted")
	}
}

func TestGiniBounds(t *testing.T) {
	// Uniform ring: every vertex degree 1 -> Gini 0.
	edges := make([][2]int32, 100)
	for i := range edges {
		edges[i] = [2]int32{int32(i), int32((i + 1) % 100)}
	}
	g, err := FromEdges(100, edges)
	if err != nil {
		t.Fatal(err)
	}
	if gini := g.GiniSkew(); gini > 0.01 || gini < -0.01 {
		t.Errorf("uniform graph Gini = %.3f, want ~0", gini)
	}
	// Star: all mass at one vertex -> Gini near 1.
	star := make([][2]int32, 99)
	for i := range star {
		star[i] = [2]int32{int32(i + 1), 0}
	}
	sg, err := FromEdges(100, star)
	if err != nil {
		t.Fatal(err)
	}
	if gini := sg.GiniSkew(); gini < 0.9 {
		t.Errorf("star graph Gini = %.3f, want ~1", gini)
	}
	empty, err := FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.GiniSkew() != 0 {
		t.Error("empty graph Gini != 0")
	}
}

func TestCatalogMatchesTable2(t *testing.T) {
	cat := Catalog()
	if len(cat) != 4 {
		t.Fatalf("catalog has %d datasets", len(cat))
	}
	pa, err := DatasetByName("PA")
	if err != nil {
		t.Fatal(err)
	}
	if pa.Vertices != 111_000_000 || pa.Edges != 1_600_000_000 {
		t.Errorf("PA stats %+v", pa)
	}
	cl, err := DatasetByName("CL")
	if err != nil {
		t.Fatal(err)
	}
	if cl.Vertices != 1_000_000_000 {
		t.Errorf("CL vertices %d", cl.Vertices)
	}
	for _, d := range cat {
		if d.FeatureDim != 1024 {
			t.Errorf("%s feature dim %d, want 1024", d.Name, d.FeatureDim)
		}
		if d.FeatureBytesPerVertex() != 4096 {
			t.Errorf("%s row bytes %d, want 4096", d.Name, d.FeatureBytesPerVertex())
		}
		if d.TrainFrac != 0.01 {
			t.Errorf("%s train frac %v", d.Name, d.TrainFrac)
		}
		if d.TrainVertices() != int64(float64(d.Vertices)*0.01) {
			t.Errorf("%s train vertices %d", d.Name, d.TrainVertices())
		}
		if d.AvgDegree() <= 1 {
			t.Errorf("%s avg degree %.1f", d.Name, d.AvgDegree())
		}
	}
	if _, err := DatasetByName("XX"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestDatasetScaled(t *testing.T) {
	uk, err := DatasetByName("UK")
	if err != nil {
		t.Fatal(err)
	}
	g, err := uk.Scaled(2000, 11)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2000 {
		t.Fatalf("N = %d", g.N())
	}
	if g.AccessGini() < 0.3 {
		t.Errorf("scaled UK not skewed: %.2f", g.AccessGini())
	}
	if _, err := uk.Scaled(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestFeatures(t *testing.T) {
	f, err := RandomFeatures(10, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.N() != 10 {
		t.Fatalf("N = %d", f.N())
	}
	if err := f.SetRow(2, make([]float32, 8)); err != nil {
		t.Fatal(err)
	}
	for _, v := range f.Row(2) {
		if v != 0 {
			t.Fatal("SetRow did not overwrite")
		}
	}
	if err := f.SetRow(0, make([]float32, 3)); err == nil {
		t.Error("short row accepted")
	}
	out := make([]float32, 2*8)
	if err := f.Gather([]int32{2, 3}, out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if out[i] != 0 {
			t.Error("gather row 0 should be the zeroed row 2")
			break
		}
	}
	if err := f.Gather([]int32{1}, out); err == nil {
		t.Error("wrong buffer size accepted")
	}
	if _, err := NewFeatures(-1, 4); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := NewFeatures(4, 0); err == nil {
		t.Error("dim=0 accepted")
	}
}

func TestLabels(t *testing.T) {
	f, err := RandomFeatures(100, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := Labels(f, 4)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int32]int{}
	for _, l := range labels {
		if l < 0 || l >= 4 {
			t.Fatalf("label %d out of range", l)
		}
		counts[l]++
	}
	if len(counts) < 2 {
		t.Errorf("labels degenerate: %v", counts)
	}
	if _, err := Labels(f, 1); err == nil {
		t.Error("classes=1 accepted")
	}
}

func TestCSRRoundTrip(t *testing.T) {
	g, err := GenZipf(3000, 6, 0.9, 17)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != g.N() || back.M() != g.M() {
		t.Fatalf("shape lost: %dx%d vs %dx%d", back.N(), back.M(), g.N(), g.M())
	}
	for v := int32(0); int(v) < g.N(); v += 37 {
		a, b := g.Neighbors(v), back.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("vertex %d degree lost", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d neighbor %d changed", v, i)
			}
		}
	}
}

func TestCSRReadRejectsCorruption(t *testing.T) {
	g, err := GenZipf(100, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte{1, 2, 3, 4}, good[4:]...),
		"bad version": append(append([]byte{}, good[:4]...), append([]byte{9, 0, 0, 0}, good[8:]...)...),
		"truncated":   good[:len(good)/2],
	}
	for name, data := range cases {
		if _, err := ReadCSR(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Corrupt a target id beyond range.
	bad := append([]byte{}, good...)
	bad[len(bad)-1] = 0x7f
	bad[len(bad)-2] = 0x7f
	bad[len(bad)-3] = 0x7f
	if _, err := ReadCSR(bytes.NewReader(bad)); err == nil {
		t.Error("out-of-range target accepted")
	}
}

func TestFeaturesRoundTrip(t *testing.T) {
	f, err := RandomFeatures(50, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFeatures(&buf, f); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFeatures(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 50 || back.Dim != 16 {
		t.Fatalf("shape lost: %dx%d", back.N(), back.Dim)
	}
	for i := 0; i < 16; i++ {
		if back.Row(7)[i] != f.Row(7)[i] {
			t.Fatal("feature values changed")
		}
	}
	if _, err := ReadFeatures(bytes.NewReader(nil)); err == nil {
		t.Error("empty features accepted")
	}
}
