package graph

import (
	"fmt"
	"math"

	"moment/internal/units"
)

// Dataset describes a paper-scale dataset (Table 2) plus the parameters of
// its scaled-down synthetic stand-in. The simulator consumes the
// paper-scale statistics; the functional training path consumes a scaled
// instance with the same skew shape.
type Dataset struct {
	Name     string // "PA", "IG", "UK", "CL"
	FullName string

	Vertices int64
	Edges    int64

	TopologyStorage units.Bytes
	FeatureDim      int
	FeatureStorage  units.Bytes

	// TrainFrac is the fraction of vertices used as training targets
	// (1% following GNNLab's setup, §4.1).
	TrainFrac float64

	// Skew is the Zipf exponent of the access distribution observed by
	// pre-sampling; web graphs (UK, CL) are more skewed than citation
	// graphs (PA).
	Skew float64
}

// Catalog returns the Table 2 datasets at paper scale.
func Catalog() []Dataset {
	return []Dataset{
		{
			Name: "PA", FullName: "ogbn-papers100M",
			Vertices: 111_000_000, Edges: 1_600_000_000,
			TopologyStorage: units.GB(14), FeatureDim: 1024, FeatureStorage: units.GB(56),
			TrainFrac: 0.01, Skew: 0.8,
		},
		{
			Name: "IG", FullName: "IGB-HOM",
			Vertices: 269_000_000, Edges: 4_000_000_000,
			TopologyStorage: units.GB(34), FeatureDim: 1024, FeatureStorage: units.TB(1.1),
			TrainFrac: 0.01, Skew: 0.75,
		},
		{
			Name: "UK", FullName: "UK-2014",
			Vertices: 790_000_000, Edges: 47_200_000_000,
			TopologyStorage: units.GB(384), FeatureDim: 1024, FeatureStorage: units.TB(3.2),
			TrainFrac: 0.01, Skew: 0.95,
		},
		{
			Name: "CL", FullName: "ClueWeb",
			Vertices: 1_000_000_000, Edges: 42_500_000_000,
			TopologyStorage: units.GB(348), FeatureDim: 1024, FeatureStorage: units.TB(4.1),
			TrainFrac: 0.01, Skew: 0.95,
		},
	}
}

// DatasetByName looks up a catalog entry ("PA", "IG", "UK", "CL").
func DatasetByName(name string) (Dataset, error) {
	for _, d := range Catalog() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("graph: unknown dataset %q", name)
}

// FeatureBytesPerVertex is the feature row size (dim × float32).
func (d Dataset) FeatureBytesPerVertex() int64 {
	return int64(d.FeatureDim) * 4
}

// AvgDegree is the mean in-degree at paper scale.
func (d Dataset) AvgDegree() float64 {
	if d.Vertices == 0 {
		return 0
	}
	return float64(d.Edges) / float64(d.Vertices)
}

// TrainVertices is the number of training targets at paper scale.
func (d Dataset) TrainVertices() int64 {
	return int64(math.Round(float64(d.Vertices) * d.TrainFrac))
}

// Scaled generates a laptop-scale instance with the dataset's skew and a
// proportional average degree (capped so tests stay fast). The functional
// training path runs on these instances.
func (d Dataset) Scaled(n int, seed int64) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("graph: scaled size must be positive")
	}
	avg := int(math.Min(d.AvgDegree(), 16))
	if avg < 2 {
		avg = 2
	}
	return GenZipf(n, avg, d.Skew, seed)
}
