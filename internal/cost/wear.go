package cost

import "fmt"

// SSD wear accounting (paper §5, "SSD Wear Consideration"): NVMe wear only
// accrues from the one-time dataset reorganization writes when DDAK lays
// embeddings out across drives; training itself is read-only. Modern
// drives offer petabyte-class write endurance, so the reorganization
// consumes a negligible fraction of device life even when repeated per
// model/hardware configuration.

// EnduranceModel describes a drive's rated write endurance.
type EnduranceModel struct {
	// CapacityBytes is the drive capacity.
	CapacityBytes float64
	// DWPD is the rated drive-writes-per-day over the warranty window.
	DWPD float64
	// WarrantyYears is the endurance rating window.
	WarrantyYears float64
}

// P5510Endurance is the Intel P5510 3.84 TB rating (1 DWPD, 5 years).
func P5510Endurance() EnduranceModel {
	return EnduranceModel{CapacityBytes: 3.84e12, DWPD: 1, WarrantyYears: 5}
}

// TotalBytesWritable is the drive's rated lifetime write volume (TBW).
func (e EnduranceModel) TotalBytesWritable() float64 {
	return e.CapacityBytes * e.DWPD * 365 * e.WarrantyYears
}

// WearReport quantifies reorganization wear for one deployment.
type WearReport struct {
	// BytesWrittenPerReorg is the write volume of one DDAK layout pass
	// (every embedding lands on some SSD exactly once).
	BytesWrittenPerReorg float64
	// ReorgsToExhaustion is how many full reorganizations the SSD fleet
	// endures before hitting its rated write limit.
	ReorgsToExhaustion float64
	// LifeFractionPerReorg is the endurance consumed by one pass.
	LifeFractionPerReorg float64
}

// ReorganizationWear computes the §5 wear claim: featureBytes of
// embeddings spread across numSSDs drives with the given endurance.
func ReorganizationWear(featureBytes float64, numSSDs int, e EnduranceModel) (*WearReport, error) {
	if featureBytes <= 0 {
		return nil, fmt.Errorf("cost: non-positive feature bytes")
	}
	if numSSDs <= 0 {
		return nil, fmt.Errorf("cost: non-positive SSD count")
	}
	fleet := e.TotalBytesWritable() * float64(numSSDs)
	if fleet <= 0 {
		return nil, fmt.Errorf("cost: endurance model has no write budget")
	}
	return &WearReport{
		BytesWrittenPerReorg: featureBytes,
		ReorgsToExhaustion:   fleet / featureBytes,
		LifeFractionPerReorg: featureBytes / fleet,
	}, nil
}
