package cost

import (
	"math"
	"testing"
)

func TestTCOMatchesPaper(t *testing.T) {
	m := DefaultTCO()
	a := float64(m.TCO(MachineASpec()))
	c := float64(m.TCO(ClusterCSpec()))
	// §4.2: 5-year TCO of $90,270 for Machine A/B vs $181,100 for Cluster C.
	if math.Abs(a-90_270) > 5 {
		t.Errorf("Machine A TCO = %.0f, want 90270", a)
	}
	if math.Abs(c-181_100) > 5 {
		t.Errorf("Cluster C TCO = %.0f, want 181100", c)
	}
	if ratio := a / c; ratio < 0.45 || ratio > 0.55 {
		t.Errorf("TCO ratio %.2f, want ~0.5", ratio)
	}
}

func TestCloudCostRatio(t *testing.T) {
	r := DefaultCloudRates()
	ratio := r.CostRatio(8*3.84, 4)
	// §4.2: Moment at about 50% of DistDGL's monetary cost.
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("cloud cost ratio %.2f, want ~0.5", ratio)
	}
	if r.DistDGLHourly(0) != 0 {
		t.Error("zero nodes should cost nothing")
	}
	if r.CostRatio(1, 0) != 0 {
		t.Error("ratio with zero cluster cost should be 0")
	}
}

func TestUSDString(t *testing.T) {
	cases := map[USD]string{
		0:         "$0",
		999:       "$999",
		1_000:     "$1,000",
		90_270:    "$90,270",
		181_100:   "$181,100",
		1_234_567: "$1,234,567",
		-5_000:    "-$5,000",
		90_269.6:  "$90,270", // rounds
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("USD(%v).String() = %q, want %q", float64(in), got, want)
		}
	}
}

func TestReorganizationWearNegligible(t *testing.T) {
	// §5: even ClueWeb (4.1 TiB of features) consumes a vanishing slice
	// of an 8x P5510 fleet's PB-class endurance per reorganization.
	rep, err := ReorganizationWear(4.1*(1<<40), 8, P5510Endurance())
	if err != nil {
		t.Fatal(err)
	}
	if rep.LifeFractionPerReorg > 0.001 {
		t.Errorf("one reorg consumes %.4f%% of fleet endurance, want < 0.1%%",
			rep.LifeFractionPerReorg*100)
	}
	if rep.ReorgsToExhaustion < 1000 {
		t.Errorf("only %.0f reorgs to exhaustion, want thousands", rep.ReorgsToExhaustion)
	}
}

func TestEnduranceModel(t *testing.T) {
	e := P5510Endurance()
	// 3.84 TB x 1 DWPD x 5y = 7.0 PB.
	tbw := e.TotalBytesWritable()
	if tbw < 6.9e15 || tbw > 7.1e15 {
		t.Errorf("P5510 TBW = %.2e, want ~7e15", tbw)
	}
}

func TestReorganizationWearErrors(t *testing.T) {
	if _, err := ReorganizationWear(0, 8, P5510Endurance()); err == nil {
		t.Error("zero bytes accepted")
	}
	if _, err := ReorganizationWear(1, 0, P5510Endurance()); err == nil {
		t.Error("zero SSDs accepted")
	}
	if _, err := ReorganizationWear(1, 1, EnduranceModel{}); err == nil {
		t.Error("empty endurance accepted")
	}
}
