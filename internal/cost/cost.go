// Package cost implements the monetary-cost comparison of §4.2: cloud
// rental cost of a single 4-GPU machine versus four 1-GPU machines, and
// the 5-year total cost of ownership (TCO) of Machine A/B versus the
// 4-node Cluster C (paper: $90,270 vs $181,100, i.e. Moment runs at about
// half the cost).
package cost

import "fmt"

// USD is a dollar amount.
type USD float64

// String renders with a dollar sign and thousands grouping.
func (u USD) String() string {
	neg := u < 0
	if neg {
		u = -u
	}
	v := int64(u + 0.5)
	s := fmt.Sprintf("%d", v)
	for i := len(s) - 3; i > 0; i -= 3 {
		s = s[:i] + "," + s[i:]
	}
	if neg {
		return "-$" + s
	}
	return "$" + s
}

// CloudRates holds on-demand hourly prices (AWS-style, §4.2 references
// multi-GPU instances for the single machine and single-GPU instances for
// the cluster nodes).
type CloudRates struct {
	// MultiGPUHourly is a 4xA100-class instance with local NVMe.
	MultiGPUHourly USD
	// SingleGPUHourly is a 1xA100-class instance.
	SingleGPUHourly USD
	// NVMePerTBHourly prices attached NVMe (negligible per §4.2).
	NVMePerTBHourly USD
}

// DefaultCloudRates reflects the on-demand price structure the paper cites:
// one 4-GPU box costs roughly half of four 1-GPU boxes because single-GPU
// instances carry fixed host overheads.
func DefaultCloudRates() CloudRates {
	return CloudRates{
		MultiGPUHourly:  16.30,
		SingleGPUHourly: 8.14,
		NVMePerTBHourly: 0.012,
	}
}

// MomentHourly is the hourly cost of Moment's single machine with the
// given NVMe terabytes attached.
func (r CloudRates) MomentHourly(nvmeTB float64) USD {
	return r.MultiGPUHourly + USD(nvmeTB)*r.NVMePerTBHourly
}

// DistDGLHourly is the hourly cost of the n-node single-GPU cluster.
func (r CloudRates) DistDGLHourly(nodes int) USD {
	return USD(nodes) * r.SingleGPUHourly
}

// CostRatio returns Moment's hourly cost as a fraction of the cluster's
// (paper: ~50%).
func (r CloudRates) CostRatio(nvmeTB float64, nodes int) float64 {
	c := r.DistDGLHourly(nodes)
	if c == 0 {
		return 0
	}
	return float64(r.MomentHourly(nvmeTB) / c)
}

// TCOModel is the 5-year total-cost-of-ownership estimation of [Hyperion],
// which §4.2 reuses: capital expenditure plus five years of power and
// hosting.
type TCOModel struct {
	Years           int
	ServerBase      USD // chassis + CPUs + DRAM
	GPUEach         USD
	SSDEach         USD
	NICEach         USD
	PowerBaseYear   USD // power + hosting per server per year
	PowerPerGPUYear USD // additional power per GPU per year
}

// DefaultTCO returns the component prices that reproduce the paper's
// published 5-year numbers: $90,270 for Machine A/B (1 server, 4 GPUs,
// 8 SSDs) and $181,100 for Cluster C (4 servers, 1 GPU + NIC each).
func DefaultTCO() TCOModel {
	return TCOModel{
		Years:           5,
		ServerBase:      15_000,
		GPUEach:         12_500,
		SSDEach:         600,
		NICEach:         1_800,
		PowerBaseYear:   USD(43430.0 / 15), // ≈ $2,895.33
		PowerPerGPUYear: USD(4495.0 / 15),  // ≈ $299.67
	}
}

// ServerSpec describes one purchasable server.
type ServerSpec struct {
	Servers int
	GPUs    int // per server
	SSDs    int // per server
	NICs    int // per server
}

// MachineASpec is the Moment single-machine build (Table 1).
func MachineASpec() ServerSpec { return ServerSpec{Servers: 1, GPUs: 4, SSDs: 8} }

// ClusterCSpec is the DistDGL 4-node cluster (Table 1).
func ClusterCSpec() ServerSpec { return ServerSpec{Servers: 4, GPUs: 1, NICs: 1} }

// TCO computes the total cost of ownership of a deployment.
func (m TCOModel) TCO(s ServerSpec) USD {
	perServer := m.ServerBase +
		USD(s.GPUs)*m.GPUEach +
		USD(s.SSDs)*m.SSDEach +
		USD(s.NICs)*m.NICEach +
		USD(m.Years)*(m.PowerBaseYear+USD(s.GPUs)*m.PowerPerGPUYear)
	return USD(s.Servers) * perServer
}
