// Cluster construction: the multi-node extension of the §3.2 communication
// graph. Every node's PCIe tree is instantiated as a full single-machine
// subgraph (same node classes, name-prefixed), and the inter-server network
// joins them as capacity-bounded units — NIC→leaf→spine→leaf→NIC — so one
// time-bisection prices intra-PCIe and cross-node traffic together instead
// of composing two models.
//
// Cross-node traffic is kept truthful with a portal formulation instead of
// flow lower bounds: each node's per-epoch import bytes are a fixed-budget
// sink (the "import portal") reachable ONLY through that node's NIC
// ingress, and its export bytes are a fixed-budget source that can only
// leave through the NIC egress. Because imports cannot be served by local
// storage, exactly the configured byte volume crosses the network at every
// feasible horizon; the solver is left to choose routes, not volumes.
//
// Two NIC attachments are supported (cluster.Config.NICOnGPUSocket):
//
//   - Detached (the analytical model's documented simplification): the NIC
//     hangs off the socket opposite the GPUs and its traffic never contends
//     with the fabric. Export supply feeds the NIC egress directly, and the
//     per-node subgraph carries the full local-equivalent load (each node's
//     SSDs serve their shard to local GPUs and, symmetrically, the same
//     volume on behalf of remote peers).
//   - On the GPU socket: the NIC becomes a fabric citizen. Export bytes
//     enter at the node's storage devices, traverse bay links and the
//     PCIe/QPI fabric to the NIC's attach point, and cross its x16 slot
//     before reaching the wire — contending with local traffic on every
//     shared link. The node's own SSD budget and GPU demand are reduced by
//     the exported/imported volume so total storage service stays physical.
//     (Ingress-side fabric delivery of imports remains uncharged: pricing
//     it would let local supply impersonate imports. DESIGN.md §15.)
package flownet

import (
	"fmt"
	"math"

	"moment/internal/maxflow"
	"moment/internal/topology"
	"moment/internal/units"
)

// ClusterDemand carries every node's local byte budgets plus the
// cross-node volumes the network must move.
type ClusterDemand struct {
	// Node is each node's intra-machine demand (see Demand).
	Node []*Demand
	// Import is each node's per-epoch bytes arriving from remote peers —
	// a fixed sink fed only through the node's NIC ingress.
	Import []float64
	// Export is each node's per-epoch bytes served to remote peers — a
	// fixed source that can only leave through the node's NIC egress.
	Export []float64
}

// ClusterOptions selects the NIC attachment model.
type ClusterOptions struct {
	// NICOnGPUSocket models NIC↔PCIe contention: the NIC joins the fabric
	// at ClusterSpec.NICAt (default: the socket of GPU 0) and export
	// traffic traverses storage bays, the fabric, and the NIC's x16 slot.
	NICOnGPUSocket bool
}

// ClusterEdge is one constructed edge, for golden tests and debugging.
type ClusterEdge struct {
	From, To string
	Kind     string  // "rate" or "fixed"
	Value    float64 // bytes/second for rate edges, bytes for fixed edges
}

// ClusterNetwork is the built multi-node flow network.
type ClusterNetwork struct {
	G    *maxflow.Graph
	S, T int

	Machine   *topology.Machine
	Placement *topology.Placement
	Spec      topology.ClusterSpec

	bis     *maxflow.TimeBisector
	demand  *ClusterDemand
	solvedT float64

	nicOutEdge [][]maxflow.EdgeID // per node, per NIC: egress into the leaf
	nicInEdge  [][]maxflow.EdgeID // per node, per NIC: ingress from the leaf
	importEdge []maxflow.EdgeID   // per node: import portal -> t
	exportEdge []maxflow.EdgeID   // per node: s -> export source
	leafUp     []maxflow.EdgeID   // per leaf: leaf -> spine
	leafDown   []maxflow.EdgeID   // per leaf: spine -> leaf
	netRate    map[maxflow.EdgeID]float64

	edges []ClusterEdge
}

// addEdge adds a rate or fixed edge with golden bookkeeping.
func (cn *ClusterNetwork) addRate(g *maxflow.Graph, from, to int, rate float64) maxflow.EdgeID {
	e := g.AddEdge(from, to, 0)
	cn.bis.AddRateEdge(e, rate)
	cn.edges = append(cn.edges, ClusterEdge{g.Label(from), g.Label(to), "rate", rate})
	return e
}

func (cn *ClusterNetwork) addFixed(g *maxflow.Graph, from, to int, bytes float64) maxflow.EdgeID {
	e := g.AddEdge(from, to, 0)
	cn.bis.AddFixedEdge(e, bytes)
	cn.edges = append(cn.edges, ClusterEdge{g.Label(from), g.Label(to), "fixed", bytes})
	return e
}

// BuildCluster constructs the multi-node communication graph: spec.Nodes
// copies of machine m under placement p (homogeneous cluster), joined by
// the spec's NIC/leaf/spine hierarchy, routing demand d.
func BuildCluster(m *topology.Machine, p *topology.Placement, spec topology.ClusterSpec, d *ClusterDemand, opts ClusterOptions) (*ClusterNetwork, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(m); err != nil {
		return nil, err
	}
	spec = spec.Defaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(d.Node) != spec.Nodes || len(d.Import) != spec.Nodes || len(d.Export) != spec.Nodes {
		return nil, fmt.Errorf("flownet: cluster demand for %d/%d/%d nodes, spec has %d",
			len(d.Node), len(d.Import), len(d.Export), spec.Nodes)
	}
	totalDemand := 0.0
	imports, exports := 0.0, 0.0
	for j, nd := range d.Node {
		if nd == nil {
			return nil, fmt.Errorf("flownet: nil demand for node %d", j)
		}
		if len(nd.PerGPU) != m.NumGPUs {
			return nil, fmt.Errorf("flownet: node %d demand for %d GPUs, machine has %d", j, len(nd.PerGPU), m.NumGPUs)
		}
		if nd.HBMPeer != nil && len(nd.HBMPeer) != m.NumGPUs {
			return nil, fmt.Errorf("flownet: node %d HBMPeer for %d GPUs, machine has %d", j, len(nd.HBMPeer), m.NumGPUs)
		}
		if nd.SSDPer != nil && len(nd.SSDPer) != m.NumSSDs {
			return nil, fmt.Errorf("flownet: node %d SSDPer for %d SSDs, machine has %d", j, len(nd.SSDPer), m.NumSSDs)
		}
		supply, dem := nd.TotalSupply(), nd.TotalDemand()
		if supply < dem-1e-6-1e-9*dem {
			return nil, fmt.Errorf("flownet: node %d storage supply %.0f < GPU demand %.0f", j, supply, dem)
		}
		if d.Import[j] < 0 || d.Export[j] < 0 {
			return nil, fmt.Errorf("flownet: node %d negative import/export", j)
		}
		totalDemand += dem + d.Import[j]
		imports += d.Import[j]
		exports += d.Export[j]
	}
	if exports < imports-1e-6-1e-9*imports {
		return nil, fmt.Errorf("flownet: cluster exports %.0f < imports %.0f", exports, imports)
	}
	nicAt := spec.NICAt
	if opts.NICOnGPUSocket {
		if nicAt == "" {
			if m.NumGPUs > 0 {
				sock, err := m.Socket(p.GPUAt[0])
				if err != nil {
					return nil, err
				}
				nicAt = sock
			} else {
				nicAt = m.RootComplexes()[0]
			}
		}
		if _, err := m.Point(nicAt); err != nil {
			return nil, fmt.Errorf("flownet: cluster NIC attach point: %w", err)
		}
	}

	cn := &ClusterNetwork{
		G:         maxflow.New(0),
		Machine:   m,
		Placement: p,
		Spec:      spec,
		demand:    d,
		netRate:   map[maxflow.EdgeID]float64{},
	}
	g := cn.G
	cn.S = g.AddNode("s")
	cn.T = g.AddNode("t")
	cn.bis = maxflow.NewTimeBisector(g, cn.S, cn.T, totalDemand)

	// The shared core: leaves split into an up and a down stage so every
	// inter-node byte crosses the spine (see topology.ClusterSpec).
	uplink := float64(spec.LeafUplinkBW)
	if spec.NonBlocking() {
		uplink = maxflow.Inf
	}
	spine := g.AddNode("spine")
	leafUpN := make([]int, spec.Leaves)
	leafDownN := make([]int, spec.Leaves)
	cn.leafUp = make([]maxflow.EdgeID, spec.Leaves)
	cn.leafDown = make([]maxflow.EdgeID, spec.Leaves)
	for l := 0; l < spec.Leaves; l++ {
		leafUpN[l] = g.AddNode(fmt.Sprintf("leaf%d:up", l))
		leafDownN[l] = g.AddNode(fmt.Sprintf("leaf%d:down", l))
		cn.leafUp[l] = cn.addRate(g, leafUpN[l], spine, uplink)
		cn.leafDown[l] = cn.addRate(g, spine, leafDownN[l], uplink)
		cn.netRate[cn.leafUp[l]] = uplink
		cn.netRate[cn.leafDown[l]] = uplink
	}

	cn.nicOutEdge = make([][]maxflow.EdgeID, spec.Nodes)
	cn.nicInEdge = make([][]maxflow.EdgeID, spec.Nodes)
	cn.importEdge = make([]maxflow.EdgeID, spec.Nodes)
	cn.exportEdge = make([]maxflow.EdgeID, spec.Nodes)

	for j := 0; j < spec.Nodes; j++ {
		prefix := fmt.Sprintf("n%d/", j)
		sub, err := cn.addNodeSub(m, p, d.Node[j], prefix)
		if err != nil {
			return nil, err
		}
		leaf := spec.LeafOf(j)

		// Export source and import portal.
		expN := g.AddNode(prefix + "export")
		impN := g.AddNode(prefix + "import")
		cn.exportEdge[j] = cn.addFixed(g, cn.S, expN, d.Export[j])
		cn.importEdge[j] = cn.addFixed(g, impN, cn.T, d.Import[j])

		if opts.NICOnGPUSocket {
			// Export bytes start at the node's storage devices and cross
			// the fabric to the NIC's attach point.
			entries := sub.ssdNodes
			if len(entries) == 0 {
				entries = sub.dramNodes
			}
			for _, dev := range entries {
				cn.addRate(g, expN, dev, maxflow.Inf)
			}
		}
		for k := 0; k < spec.NICsPerNode; k++ {
			outN := g.AddNode(fmt.Sprintf("%snic%d:out", prefix, k))
			inN := g.AddNode(fmt.Sprintf("%snic%d:in", prefix, k))
			if opts.NICOnGPUSocket {
				// The NIC's own x16 slot, shared with nothing but sized
				// like any device link.
				cn.addRate(g, sub.apNode[nicAt], outN, float64(m.PCIeX16))
			} else {
				cn.addRate(g, expN, outN, maxflow.Inf)
			}
			oe := cn.addRate(g, outN, leafUpN[leaf], float64(spec.NICBW))
			ie := cn.addRate(g, leafDownN[leaf], inN, float64(spec.NICBW))
			cn.addRate(g, inN, impN, maxflow.Inf)
			cn.nicOutEdge[j] = append(cn.nicOutEdge[j], oe)
			cn.nicInEdge[j] = append(cn.nicInEdge[j], ie)
			cn.netRate[oe] = float64(spec.NICBW)
			cn.netRate[ie] = float64(spec.NICBW)
		}
	}
	return cn, nil
}

// nodeSub is the bookkeeping of one node's subgraph.
type nodeSub struct {
	apNode    map[string]int
	ssdNodes  []int
	dramNodes []int
}

// addNodeSub instantiates one node's single-machine subgraph under a name
// prefix — the same node classes and links Build constructs, sharing the
// cluster's source, sink, and bisector.
func (cn *ClusterNetwork) addNodeSub(m *topology.Machine, p *topology.Placement, d *Demand, prefix string) (*nodeSub, error) {
	g := cn.G
	sub := &nodeSub{apNode: make(map[string]int, len(m.Points))}

	for _, pt := range m.Points {
		sub.apNode[pt.ID] = g.AddNode(prefix + pt.ID)
	}
	rcs := m.RootComplexes()
	for i := 0; i < len(rcs); i++ {
		for j := i + 1; j < len(rcs); j++ {
			a, b := sub.apNode[rcs[i]], sub.apNode[rcs[j]]
			cn.addRate(g, a, b, float64(m.QPIBW))
			cn.addRate(g, b, a, float64(m.QPIBW))
		}
	}
	for _, pt := range m.Points {
		if pt.Kind != topology.Switch {
			continue
		}
		up, down := sub.apNode[pt.Parent], sub.apNode[pt.ID]
		cn.addRate(g, up, down, float64(pt.UplinkBW))
		cn.addRate(g, down, up, float64(pt.UplinkBW))
	}

	gpuNode := make([]int, m.NumGPUs)
	for i := 0; i < m.NumGPUs; i++ {
		gpuNode[i] = g.AddNode(fmt.Sprintf("%sgpu%d", prefix, i))
		cn.addRate(g, sub.apNode[p.GPUAt[i]], gpuNode[i], float64(m.PCIeX16))
		cn.addFixed(g, gpuNode[i], cn.T, d.PerGPU[i])
	}

	if d.HBMPeer != nil {
		hbmNode := make([]int, m.NumGPUs)
		for i := 0; i < m.NumGPUs; i++ {
			hbmNode[i] = g.AddNode(fmt.Sprintf("%shbm%d", prefix, i))
			cn.addFixed(g, cn.S, hbmNode[i], d.HBMPeer[i])
			cn.addRate(g, hbmNode[i], sub.apNode[p.GPUAt[i]], float64(m.PCIeX16))
		}
		for _, nv := range m.NVLinks {
			cn.addRate(g, hbmNode[nv.A], gpuNode[nv.B], float64(m.NVLinkBW))
			cn.addRate(g, hbmNode[nv.B], gpuNode[nv.A], float64(m.NVLinkBW))
		}
	}

	for _, rc := range rcs {
		budget := 0.0
		if d.DRAM != nil {
			budget = d.DRAM[rc]
		}
		dn := g.AddNode(prefix + "dram:" + rc)
		sub.dramNodes = append(sub.dramNodes, dn)
		cn.addFixed(g, cn.S, dn, budget)
		cn.addRate(g, dn, sub.apNode[rc], float64(m.DRAMBW))
	}
	if d.DRAM != nil {
		for rc := range d.DRAM {
			if _, ok := sub.apNode[rc]; !ok {
				return nil, fmt.Errorf("flownet: DRAM budget for unknown socket %q", rc)
			}
		}
	}

	ssdRate := math.Min(float64(m.SSDBW), float64(m.PCIeX4))
	pool := -1
	if d.SSDPer == nil && m.NumSSDs > 0 {
		pool = g.AddNode(prefix + "ssdpool")
		cn.addFixed(g, cn.S, pool, d.SSDTotal)
	}
	for i := 0; i < m.NumSSDs; i++ {
		sn := g.AddNode(fmt.Sprintf("%sssd%d", prefix, i))
		sub.ssdNodes = append(sub.ssdNodes, sn)
		if d.SSDPer != nil {
			cn.addFixed(g, cn.S, sn, d.SSDPer[i])
		} else {
			cn.addRate(g, pool, sn, maxflow.Inf)
		}
		cn.addRate(g, sn, sub.apNode[p.SSDAt[i]], ssdRate)
	}
	return sub, nil
}

// Solve runs the time-bisection over the whole cluster and returns the
// minimum horizon that routes every local demand and every import.
func (cn *ClusterNetwork) Solve() (units.Duration, error) { return cn.SolveTol(1e-4) }

// SolveTol is Solve with an explicit relative bisection tolerance.
func (cn *ClusterNetwork) SolveTol(tol float64) (units.Duration, error) {
	t, err := cn.bis.MinTime(tol)
	if err != nil {
		return 0, fmt.Errorf("flownet: cluster %s/%s: %w", cn.Machine.Name, cn.Placement.Name, err)
	}
	cn.solvedT = t
	return units.Seconds(t), nil
}

// SolvedHorizon returns the horizon (seconds) of the last successful
// Solve, or 0 if the network is unsolved.
func (cn *ClusterNetwork) SolvedHorizon() float64 { return cn.solvedT }

// NetworkTime returns the network stage's standalone critical path: the
// busiest inter-server link's solved bytes divided by its rate. It is the
// cluster analogue of the analytical model's NIC stage — equal to
// remote bytes / NIC bandwidth on a non-blocking core — and reflects
// spine oversubscription when uplinks bind.
func (cn *ClusterNetwork) NetworkTime() (units.Duration, error) {
	if cn.solvedT == 0 {
		if _, err := cn.Solve(); err != nil {
			return 0, err
		}
	}
	worst := 0.0
	for e, rate := range cn.netRate {
		if math.IsInf(rate, 1) || rate <= 0 {
			continue
		}
		if t := cn.G.Flow(e) / rate; t > worst {
			worst = t
		}
	}
	return units.Seconds(worst), nil
}

// NICBytes returns each node's solved egress and ingress wire bytes.
func (cn *ClusterNetwork) NICBytes() (egress, ingress []float64, err error) {
	if cn.solvedT == 0 {
		if _, err := cn.Solve(); err != nil {
			return nil, nil, err
		}
	}
	egress = make([]float64, cn.Spec.Nodes)
	ingress = make([]float64, cn.Spec.Nodes)
	for j := range egress {
		for _, e := range cn.nicOutEdge[j] {
			egress[j] += cn.G.Flow(e)
		}
		for _, e := range cn.nicInEdge[j] {
			ingress[j] += cn.G.Flow(e)
		}
	}
	return egress, ingress, nil
}

// SpineBytes returns the solved bytes crossing the spine.
func (cn *ClusterNetwork) SpineBytes() (float64, error) {
	if cn.solvedT == 0 {
		if _, err := cn.Solve(); err != nil {
			return 0, err
		}
	}
	total := 0.0
	for _, e := range cn.leafUp {
		total += cn.G.Flow(e)
	}
	return total, nil
}

// EdgeList returns every constructed edge in deterministic construction
// order — the golden-test surface for hierarchical topology construction.
func (cn *ClusterNetwork) EdgeList() []ClusterEdge {
	out := make([]ClusterEdge, len(cn.edges))
	copy(out, cn.edges)
	return out
}
