// Package flownet converts a physical topology plus a hardware placement
// into the augmented single-source single-sink capacity-constrained directed
// graph of paper §3.2, and answers the questions Moment's planner asks of
// it: the minimum epoch I/O completion time (via time-bisection max-flow),
// per-GPU inlet bandwidth, per-storage-bin traffic (DDAK's Bin_traffic
// input), and per-link utilization (QPI contention analysis, Fig 17).
//
// Node classes follow the paper: storage nodes (SSDs, per-socket DRAM
// feature caches, per-GPU HBM caches serving peers), interconnect nodes
// (root complexes and PCIe switches), computation nodes (GPUs), and the
// virtual source/sink. Physical links are rate edges (bytes/second, scaled
// by the bisection horizon); virtual source/sink arcs are fixed byte
// budgets. PCIe and QPI are full duplex, so each physical link contributes
// one directed edge per direction with independent capacity.
//
// Local HBM cache hits never touch the fabric, so callers subtract them
// from per-GPU demand before building a Demand; only the peer-served share
// of each GPU cache enters the network as a storage node.
package flownet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"moment/internal/maxflow"
	"moment/internal/obs"
	"moment/internal/scorecache"
	"moment/internal/topology"
	"moment/internal/units"
)

// Demand carries the per-epoch byte budgets the network must route.
// All quantities are bytes per epoch (or per whatever window the caller
// scores; only ratios matter for throughput).
type Demand struct {
	// PerGPU is the fabric-delivered byte demand of each GPU (local HBM
	// hits already excluded). len == Machine.NumGPUs.
	PerGPU []float64

	// HBMPeer is the byte budget each GPU cache serves to *other* GPUs.
	// len == Machine.NumGPUs. May be nil (no GPU caching).
	HBMPeer []float64

	// DRAM is the byte budget served by each socket's CPU-memory cache,
	// keyed by root-complex ID. May be nil.
	DRAM map[string]float64

	// SSDTotal is the byte budget served by the SSD tier as a whole; the
	// max-flow solution decides the per-SSD split (which DDAK then
	// realizes in the data layout).
	SSDTotal float64

	// SSDPer optionally pins per-SSD byte budgets (post-DDAK evaluation
	// of a concrete data placement). When non-nil it overrides SSDTotal.
	SSDPer []float64
}

// TotalDemand sums the per-GPU demands.
func (d *Demand) TotalDemand() float64 {
	t := 0.0
	for _, v := range d.PerGPU {
		t += v
	}
	return t
}

// TotalSupply sums all storage budgets.
func (d *Demand) TotalSupply() float64 {
	t := 0.0
	for _, v := range d.HBMPeer {
		t += v
	}
	for _, v := range d.DRAM {
		t += v
	}
	if d.SSDPer != nil {
		for _, v := range d.SSDPer {
			t += v
		}
	} else {
		t += d.SSDTotal
	}
	return t
}

// Fingerprint hashes the demand into a compact cache-key fragment: two
// demands with equal fingerprints route the same byte budgets (up to hash
// collision), so a placement score computed for one is valid for the other.
// Nil-ness of HBMPeer and SSDPer is part of the fingerprint — it changes
// the network structure (GPU cache nodes, SSD pool aggregator), not just
// edge budgets. DRAM keys are visited in sorted order for stability.
func (d *Demand) Fingerprint() uint64 {
	h := scorecache.NewHasher()
	h.Floats(d.PerGPU)
	h.Uint(nilMark(d.HBMPeer == nil))
	h.Floats(d.HBMPeer)
	keys := make([]string, 0, len(d.DRAM))
	for k := range d.DRAM {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h.Uint(uint64(len(keys)))
	for _, k := range keys {
		h.String(k)
		h.Float(d.DRAM[k])
	}
	h.Float(d.SSDTotal)
	h.Uint(nilMark(d.SSDPer == nil))
	h.Floats(d.SSDPer)
	return h.Sum()
}

func nilMark(isNil bool) uint64 {
	if isNil {
		return 1
	}
	return 0
}

// Network is the built flow network with node bookkeeping.
type Network struct {
	G    *maxflow.Graph
	S, T int

	Machine   *topology.Machine
	Placement *topology.Placement

	GPUNode  []int          // computation node per GPU index
	HBMNode  []int          // peer-serving storage node per GPU index (-1 if absent)
	DRAMNode map[string]int // storage node per socket
	SSDNode  []int          // storage node per SSD index
	PoolNode int            // SSD-tier aggregator (-1 when SSDPer pins budgets)
	APNode   map[string]int // interconnect node per attach point

	demand  *Demand
	bis     *maxflow.TimeBisector
	solvedT float64       // horizon of the last Solve; 0 if unsolved
	obsrv   *obs.Observer // nil = no instrumentation

	// Edge bookkeeping for metrics.
	demandEdge []maxflow.EdgeID            // gpu -> t
	supplyHBM  []maxflow.EdgeID            // s -> hbm_i
	supplyDRAM map[string]maxflow.EdgeID   // s -> dram_k
	supplySSD  []maxflow.EdgeID            // s -> ssd_i (or pool -> ssd_i)
	supplyPool maxflow.EdgeID              // s -> ssdpool (-1 when SSDPer pins budgets)
	qpiEdges   []maxflow.EdgeID            // both directions
	linkEdges  map[string][]maxflow.EdgeID // named physical links -> edges
	linkRate   map[string]float64          // named physical links -> per-direction rate sum
}

// Build constructs the augmented communication graph for machine m under
// placement p with demand d. The placement must validate against m.
func Build(m *topology.Machine, p *topology.Placement, d *Demand) (*Network, error) {
	return BuildReuse(m, p, d, nil)
}

// BuildReuse is Build with an arena: when scratch is non-nil its graph,
// bisector, maps, and bookkeeping slices are cleared and rebuilt in place
// instead of reallocated, and scratch itself is returned. The planner's
// scoring loop builds thousands of networks that differ only in placement;
// threading one scratch Network per worker through BuildReuse keeps those
// rebuilds out of the allocator (see maxflow.Graph.Clear and
// TimeBisector.Reinit). Passing nil scratch is exactly Build. On error the
// scratch is left in an unusable, partially-reset state and must not be
// Solved, but may be passed to BuildReuse again.
func BuildReuse(m *topology.Machine, p *topology.Placement, d *Demand, scratch *Network) (*Network, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(m); err != nil {
		return nil, err
	}
	if len(d.PerGPU) != m.NumGPUs {
		return nil, fmt.Errorf("flownet: demand for %d GPUs, machine has %d", len(d.PerGPU), m.NumGPUs)
	}
	if d.HBMPeer != nil && len(d.HBMPeer) != m.NumGPUs {
		return nil, fmt.Errorf("flownet: HBMPeer for %d GPUs, machine has %d", len(d.HBMPeer), m.NumGPUs)
	}
	if d.SSDPer != nil && len(d.SSDPer) != m.NumSSDs {
		return nil, fmt.Errorf("flownet: SSDPer for %d SSDs, machine has %d", len(d.SSDPer), m.NumSSDs)
	}
	supply, dem := d.TotalSupply(), d.TotalDemand()
	if supply < dem-1e-6-1e-9*dem {
		return nil, fmt.Errorf("flownet: storage supply %.0f < GPU demand %.0f", supply, dem)
	}

	n := scratch
	if n == nil {
		n = &Network{
			G:          maxflow.New(0),
			DRAMNode:   map[string]int{},
			APNode:     map[string]int{},
			supplyDRAM: map[string]maxflow.EdgeID{},
			linkEdges:  map[string][]maxflow.EdgeID{},
			linkRate:   map[string]float64{},
		}
	} else {
		n.G.Clear()
		clear(n.DRAMNode)
		clear(n.APNode)
		clear(n.supplyDRAM)
		clear(n.linkEdges)
		clear(n.linkRate)
		n.qpiEdges = n.qpiEdges[:0] // observer (n.obsrv) survives reuse
	}
	n.Machine, n.Placement, n.demand = m, p, d
	n.PoolNode, n.supplyPool = -1, -1
	n.solvedT = 0
	g := n.G
	n.S = g.AddNode("s")
	n.T = g.AddNode("t")
	if n.bis == nil {
		n.bis = maxflow.NewTimeBisector(g, n.S, n.T, dem)
	} else {
		n.bis.Reinit(g, n.S, n.T, dem)
	}
	bis := n.bis

	// Interconnect nodes.
	for _, pt := range m.Points {
		n.APNode[pt.ID] = g.AddNode(pt.ID)
	}
	// Interconnect links: QPI full mesh between root complexes (two
	// sockets in practice), and switch uplinks; one rate edge per
	// direction, tracked for utilization metrics.
	rcs := m.RootComplexes()
	for i := 0; i < len(rcs); i++ {
		for j := i + 1; j < len(rcs); j++ {
			name := fmt.Sprintf("qpi:%s-%s", rcs[i], rcs[j])
			a, b := n.APNode[rcs[i]], n.APNode[rcs[j]]
			e1 := g.AddEdge(a, b, 0)
			e2 := g.AddEdge(b, a, 0)
			bis.AddRateEdge(e1, float64(m.QPIBW))
			bis.AddRateEdge(e2, float64(m.QPIBW))
			n.qpiEdges = append(n.qpiEdges, e1, e2)
			n.trackLink(name, float64(m.QPIBW), e1, e2)
		}
	}
	for _, pt := range m.Points {
		if pt.Kind != topology.Switch {
			continue
		}
		name := fmt.Sprintf("uplink:%s-%s", pt.Parent, pt.ID)
		up, down := n.APNode[pt.Parent], n.APNode[pt.ID]
		e1 := g.AddEdge(up, down, 0)
		e2 := g.AddEdge(down, up, 0)
		bis.AddRateEdge(e1, float64(pt.UplinkBW))
		bis.AddRateEdge(e2, float64(pt.UplinkBW))
		n.trackLink(name, float64(pt.UplinkBW), e1, e2)
	}

	// Computation nodes and their ingress links.
	n.GPUNode = resize(n.GPUNode, m.NumGPUs)
	n.demandEdge = resize(n.demandEdge, m.NumGPUs)
	for i := 0; i < m.NumGPUs; i++ {
		n.GPUNode[i] = g.AddNode(fmt.Sprintf("gpu%d", i))
		ap := n.APNode[p.GPUAt[i]]
		in := g.AddEdge(ap, n.GPUNode[i], 0)
		bis.AddRateEdge(in, float64(m.PCIeX16))
		n.trackLink(fmt.Sprintf("slot:%s-gpu%d", p.GPUAt[i], i), float64(m.PCIeX16), in)
		de := g.AddEdge(n.GPUNode[i], n.T, 0)
		bis.AddFixedEdge(de, d.PerGPU[i])
		n.demandEdge[i] = de
	}

	// HBM peer-serving storage nodes: egress over the GPU's own x16 link
	// (duplex: independent of its ingress), plus NVLink shortcuts.
	n.HBMNode = resize(n.HBMNode, m.NumGPUs)
	n.supplyHBM = resize(n.supplyHBM, m.NumGPUs)
	for i := range n.HBMNode {
		n.HBMNode[i] = -1
		n.supplyHBM[i] = -1
	}
	if d.HBMPeer != nil {
		for i := 0; i < m.NumGPUs; i++ {
			h := g.AddNode(fmt.Sprintf("hbm%d", i))
			n.HBMNode[i] = h
			se := g.AddEdge(n.S, h, 0)
			bis.AddFixedEdge(se, d.HBMPeer[i])
			n.supplyHBM[i] = se
			out := g.AddEdge(h, n.APNode[p.GPUAt[i]], 0)
			bis.AddRateEdge(out, float64(m.PCIeX16))
			n.trackLink(fmt.Sprintf("p2p-egress:gpu%d", i), float64(m.PCIeX16), out)
		}
		for _, nv := range m.NVLinks {
			// NVLink lets each side's cache feed the other directly.
			e1 := g.AddEdge(n.HBMNode[nv.A], n.GPUNode[nv.B], 0)
			e2 := g.AddEdge(n.HBMNode[nv.B], n.GPUNode[nv.A], 0)
			bis.AddRateEdge(e1, float64(m.NVLinkBW))
			bis.AddRateEdge(e2, float64(m.NVLinkBW))
			n.trackLink(fmt.Sprintf("nvlink:gpu%d-gpu%d", nv.A, nv.B), float64(m.NVLinkBW), e1, e2)
		}
	}

	// DRAM storage nodes (per socket).
	for _, rc := range rcs {
		budget := 0.0
		if d.DRAM != nil {
			budget = d.DRAM[rc]
		}
		dn := g.AddNode("dram:" + rc)
		n.DRAMNode[rc] = dn
		se := g.AddEdge(n.S, dn, 0)
		bis.AddFixedEdge(se, budget)
		n.supplyDRAM[rc] = se
		out := g.AddEdge(dn, n.APNode[rc], 0)
		bis.AddRateEdge(out, float64(m.DRAMBW))
		n.trackLink("dram-egress:"+rc, float64(m.DRAMBW), out)
	}
	if d.DRAM != nil {
		for rc := range d.DRAM {
			if _, ok := n.DRAMNode[rc]; !ok {
				return nil, fmt.Errorf("flownet: DRAM budget for unknown socket %q", rc)
			}
		}
	}

	// SSD storage nodes. Each SSD's service rate is min(device BW, bay
	// link); with a free tier budget an aggregator pool lets max-flow
	// choose the per-SSD split.
	n.SSDNode = resize(n.SSDNode, m.NumSSDs)
	n.supplySSD = resize(n.supplySSD, m.NumSSDs)
	ssdRate := math.Min(float64(m.SSDBW), float64(m.PCIeX4))
	if d.SSDPer == nil && m.NumSSDs > 0 {
		n.PoolNode = g.AddNode("ssdpool")
		se := g.AddEdge(n.S, n.PoolNode, 0)
		bis.AddFixedEdge(se, d.SSDTotal)
		n.supplyPool = se
	}
	for i := 0; i < m.NumSSDs; i++ {
		sn := g.AddNode(fmt.Sprintf("ssd%d", i))
		n.SSDNode[i] = sn
		if d.SSDPer != nil {
			se := g.AddEdge(n.S, sn, 0)
			bis.AddFixedEdge(se, d.SSDPer[i])
			n.supplySSD[i] = se
		} else {
			se := g.AddEdge(n.PoolNode, sn, 0)
			bis.AddRateEdge(se, maxflow.Inf)
			n.supplySSD[i] = se
		}
		out := g.AddEdge(sn, n.APNode[p.SSDAt[i]], 0)
		bis.AddRateEdge(out, ssdRate)
		n.trackLink(fmt.Sprintf("bay:%s-ssd%d", p.SSDAt[i], i), ssdRate, out)
	}
	return n, nil
}

// resize returns s truncated or regrown to length n, reusing the backing
// array when it is large enough — the slice half of the BuildReuse arena.
func resize[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

func (n *Network) trackLink(name string, rate float64, edges ...maxflow.EdgeID) {
	n.linkEdges[name] = append(n.linkEdges[name], edges...)
	n.linkRate[name] += rate * float64(len(edges))
}

// PatchDemand reprices every byte-budget (fixed) edge of an already built
// network to demand d without rebuilding the graph — the fast path for
// re-scoring one placement under many demand vectors (hotness drift,
// fault-triggered re-bins). The new demand must be structurally compatible
// with the network: same GPU/SSD counts, same HBMPeer and SSDPer nil-ness
// (those toggle nodes, not budgets), and DRAM budgets only on sockets the
// machine has. Rate increases since the last solve keep the bisector's
// warm start valid; budget decreases are self-detected and force a cold
// probe (see TimeBisector.SetFixed). The network is left unsolved.
func (n *Network) PatchDemand(d *Demand) error {
	m := n.Machine
	if len(d.PerGPU) != m.NumGPUs {
		return fmt.Errorf("flownet: patch demand for %d GPUs, machine has %d", len(d.PerGPU), m.NumGPUs)
	}
	if (d.HBMPeer == nil) != (n.demand.HBMPeer == nil) {
		return fmt.Errorf("flownet: patch cannot toggle HBM peer serving (rebuild required)")
	}
	if d.HBMPeer != nil && len(d.HBMPeer) != m.NumGPUs {
		return fmt.Errorf("flownet: patch HBMPeer for %d GPUs, machine has %d", len(d.HBMPeer), m.NumGPUs)
	}
	if (d.SSDPer == nil) != (n.demand.SSDPer == nil) {
		return fmt.Errorf("flownet: patch cannot toggle per-SSD pinning (rebuild required)")
	}
	if d.SSDPer != nil && len(d.SSDPer) != m.NumSSDs {
		return fmt.Errorf("flownet: patch SSDPer for %d SSDs, machine has %d", len(d.SSDPer), m.NumSSDs)
	}
	for rc := range d.DRAM {
		if _, ok := n.DRAMNode[rc]; !ok {
			return fmt.Errorf("flownet: DRAM budget for unknown socket %q", rc)
		}
	}
	supply, dem := d.TotalSupply(), d.TotalDemand()
	if supply < dem-1e-6-1e-9*dem {
		return fmt.Errorf("flownet: storage supply %.0f < GPU demand %.0f", supply, dem)
	}

	for i, e := range n.demandEdge {
		if err := n.bis.SetFixed(e, d.PerGPU[i]); err != nil {
			return err
		}
	}
	if d.HBMPeer != nil {
		for i, e := range n.supplyHBM {
			if e < 0 {
				continue
			}
			if err := n.bis.SetFixed(e, d.HBMPeer[i]); err != nil {
				return err
			}
		}
	}
	for rc, e := range n.supplyDRAM {
		budget := 0.0
		if d.DRAM != nil {
			budget = d.DRAM[rc]
		}
		if err := n.bis.SetFixed(e, budget); err != nil {
			return err
		}
	}
	if d.SSDPer != nil {
		for i, e := range n.supplySSD {
			if err := n.bis.SetFixed(e, d.SSDPer[i]); err != nil {
				return err
			}
		}
	} else if n.supplyPool >= 0 {
		if err := n.bis.SetFixed(n.supplyPool, d.SSDTotal); err != nil {
			return err
		}
	}
	n.bis.Demand = dem
	n.demand = d
	n.solvedT = 0
	return nil
}

// Check, when non-nil, audits every solved network before Solve returns
// (flow certificate, supply/utilization invariants). It is installed by
// internal/verify when self-verification is enabled; declared here rather
// than imported so flownet does not depend on the verification subsystem.
var Check func(*Network) error

// Solve runs the time-bisection and returns the minimum time to deliver all
// per-GPU demand. The flow for that horizon stays on the graph for the
// metric accessors below.
func (n *Network) Solve() (units.Duration, error) {
	return n.SolveTol(1e-4)
}

// SetObserver attaches an observer so each Solve reports solver work
// (augmenting paths, bisection iterations, wall time). Nil detaches.
func (n *Network) SetObserver(o *obs.Observer) { n.obsrv = o }

// SetContext attaches a cancellation context to subsequent Solves: an
// abandoned caller (e.g. a disconnected planning request) stops the
// bisection at the next probe instead of running it to completion. Nil
// detaches; BuildReuse detaches automatically (via TimeBisector.Reinit), so
// a recycled scratch network never inherits a stale context.
func (n *Network) SetContext(ctx context.Context) { n.bis.Ctx = ctx }

// SolveTol is Solve with an explicit relative bisection tolerance.
func (n *Network) SolveTol(tol float64) (units.Duration, error) {
	o := n.obsrv
	var before maxflow.SolveStats
	var warmS, warmA int
	var wall time.Time
	if o != nil {
		before = n.G.Stats()
		warmS, warmA = n.bis.WarmStarts, n.bis.WarmAborts
		wall = time.Now()
	}
	t, err := n.bis.MinTime(tol)
	if o != nil {
		after := n.G.Stats()
		o.Counter("maxflow_solves_total").Add(float64(after.Solves - before.Solves))
		o.Counter("maxflow_augmenting_paths_total").Add(float64(after.AugmentingPaths - before.AugmentingPaths))
		o.Counter("maxflow_relabels_total").Add(float64(after.Relabels - before.Relabels))
		// Warm counters are cumulative on the bisector, so report deltas.
		o.Counter("maxflow_warm_starts_total").Add(float64(n.bis.WarmStarts - warmS))
		o.Counter("maxflow_warm_aborts_total").Add(float64(n.bis.WarmAborts - warmA))
		o.Histogram("maxflow_bisection_iterations").Observe(float64(n.bis.Iterations))
		o.Histogram("maxflow_bisection_probes").Observe(float64(n.bis.Probes))
		o.Histogram("flownet_solve_seconds").Observe(time.Since(wall).Seconds())
	}
	if err != nil {
		if o != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			o.Counter("flownet_infeasible_total").Inc()
		}
		return 0, fmt.Errorf("flownet: %s/%s: %w", n.Machine.Name, n.Placement.Name, err)
	}
	n.solvedT = t
	if Check != nil {
		if err := Check(n); err != nil {
			return 0, fmt.Errorf("flownet: %s/%s: self-check failed: %w",
				n.Machine.Name, n.Placement.Name, err)
		}
	}
	return units.Seconds(t), nil
}

// SolveCounters reports the bisection work of the most recent inline solve:
// Probes and Iterations cover that solve alone (the bisector resets them per
// MinTime), while WarmStarts and WarmAborts accumulate across the network's
// lifetime. Pooled solves report the same counters on their ProbeResult
// instead — the network stays unsolved on that path.
func (n *Network) SolveCounters() (probes, iterations, warmStarts, warmAborts int) {
	return n.bis.Probes, n.bis.Iterations, n.bis.WarmStarts, n.bis.WarmAborts
}

// Probe packages this network's bisection as a maxflow.ProbePool job.
// The pool clones the graph and schedule onto a worker arena inside
// Submit, so the network — including an arena scratch recycled through
// BuildReuse — is free for the next candidate the moment Submit returns.
// The solved flow stays on the pool arena: the network itself remains
// unsolved, so flow-reading accessors (Traffic, QPIBytes, ...) are not
// served by this path; meter the eventual result with MeterProbe.
func (n *Network) Probe(seq int, tag any, tol float64) maxflow.Probe {
	if tol <= 0 {
		tol = 1e-4
	}
	return maxflow.Probe{Seq: seq, Tag: tag, Bis: n.bis, Tol: tol}
}

// MeterProbe accounts a pooled solve to o under the same metric names an
// inline SolveTol reports, and returns the outcome shaped exactly like
// SolveTol's: the solved horizon on success, the flownet-wrapped error
// otherwise. It is a package function, not a method: by the time a pool
// result arrives, the prototype network has typically been rebuilt for a
// different candidate, so the caller supplies the machine/placement names
// captured at submission.
func MeterProbe(o *obs.Observer, machine, placement string, r maxflow.ProbeResult) (units.Duration, error) {
	if o != nil {
		o.Counter("maxflow_solves_total").Add(float64(r.Stats.Solves))
		o.Counter("maxflow_augmenting_paths_total").Add(float64(r.Stats.AugmentingPaths))
		o.Counter("maxflow_relabels_total").Add(float64(r.Stats.Relabels))
		// ProbeResult counters cover the probe alone (the pool rebinds a
		// fresh bisector per job), so they are already deltas.
		o.Counter("maxflow_warm_starts_total").Add(float64(r.WarmStarts))
		o.Counter("maxflow_warm_aborts_total").Add(float64(r.WarmAborts))
		o.Histogram("maxflow_bisection_iterations").Observe(float64(r.Iterations))
		o.Histogram("maxflow_bisection_probes").Observe(float64(r.Probes))
		o.Histogram("flownet_solve_seconds").Observe(r.WallSeconds)
	}
	if r.Err != nil {
		if o != nil && !errors.Is(r.Err, context.Canceled) && !errors.Is(r.Err, context.DeadlineExceeded) {
			o.Counter("flownet_infeasible_total").Inc()
		}
		return 0, fmt.Errorf("flownet: %s/%s: %w", machine, placement, r.Err)
	}
	return units.Seconds(r.Time), nil
}

// Demand returns the demand the network was built for.
func (n *Network) Demand() *Demand { return n.demand }

// SolvedHorizon returns the horizon (seconds) of the last successful Solve,
// or 0 if the network is unsolved.
func (n *Network) SolvedHorizon() float64 { return n.solvedT }

// Throughput returns aggregate delivered bytes/second at the solved horizon.
func (n *Network) Throughput() (units.Bandwidth, error) {
	if n.solvedT == 0 {
		if _, err := n.Solve(); err != nil {
			return 0, err
		}
	}
	if n.solvedT == 0 {
		return units.Bandwidth(math.Inf(1)), nil
	}
	return units.Bandwidth(n.demand.TotalDemand() / n.solvedT), nil
}

// PerGPUInletBW returns each GPU's average inlet bandwidth at the solved
// horizon (§4.3 reports 15.61 GB/s for Moment vs 10.92 GB/s for layout (c)).
func (n *Network) PerGPUInletBW() ([]units.Bandwidth, error) {
	if n.solvedT == 0 {
		if _, err := n.Solve(); err != nil {
			return nil, err
		}
	}
	out := make([]units.Bandwidth, len(n.demandEdge))
	for i, e := range n.demandEdge {
		if n.solvedT > 0 {
			out[i] = units.Bandwidth(n.G.Flow(e) / n.solvedT)
		}
	}
	return out, nil
}

// QPIBytes returns the total bytes crossing the socket interconnect in the
// solved flow (Fig 17's contention metric).
func (n *Network) QPIBytes() (float64, error) {
	if n.solvedT == 0 {
		if _, err := n.Solve(); err != nil {
			return 0, err
		}
	}
	total := 0.0
	for _, e := range n.qpiEdges {
		total += n.G.Flow(e)
	}
	return total, nil
}

// BinTraffic reports the bytes served by each storage bin in the solved
// flow: per-GPU HBM peer service, per-socket DRAM, per-SSD. These are the
// Bin_traffic inputs of the DDAK priority formula (§3.3 Eq. 2).
type BinTraffic struct {
	HBMPeer []float64
	DRAM    map[string]float64
	SSD     []float64
}

// Traffic extracts per-bin served bytes from the solved flow.
func (n *Network) Traffic() (*BinTraffic, error) {
	if n.solvedT == 0 {
		if _, err := n.Solve(); err != nil {
			return nil, err
		}
	}
	bt := &BinTraffic{
		HBMPeer: make([]float64, len(n.supplyHBM)),
		DRAM:    map[string]float64{},
		SSD:     make([]float64, len(n.supplySSD)),
	}
	for i, e := range n.supplyHBM {
		if e >= 0 {
			bt.HBMPeer[i] = n.G.Flow(e)
		}
	}
	for rc, e := range n.supplyDRAM {
		bt.DRAM[rc] = n.G.Flow(e)
	}
	for i, e := range n.supplySSD {
		bt.SSD[i] = n.G.Flow(e)
	}
	return bt, nil
}

// LinkUtilization returns, per named physical link, the fraction of its
// byte-capacity (rate × horizon, summed over directions) used by the solved
// flow. Values near 1.0 identify the bottlenecks the paper narrates (Bus 9,
// Bus 16, QPI).
func (n *Network) LinkUtilization() (map[string]float64, error) {
	if n.solvedT == 0 {
		if _, err := n.Solve(); err != nil {
			return nil, err
		}
	}
	out := make(map[string]float64, len(n.linkEdges))
	for name, edges := range n.linkEdges {
		used := 0.0
		for _, e := range edges {
			used += n.G.Flow(e)
		}
		capBytes := n.linkRate[name] * n.solvedT
		if math.IsInf(capBytes, 1) || capBytes == 0 {
			out[name] = 0
			continue
		}
		out[name] = used / capBytes
	}
	return out, nil
}
