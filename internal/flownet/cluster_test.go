package flownet

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"moment/internal/topology"
	"moment/internal/units"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// loadClusterSpec reads a combined machine+cluster testdata file and builds
// the deterministic placement the goldens assume (everything on sw0).
func loadClusterSpec(t *testing.T, name string) (*topology.Machine, *topology.Placement, topology.ClusterSpec) {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, cs, err := topology.ParseClusterFile(f)
	if err != nil {
		t.Fatalf("ParseClusterFile(%s): %v", name, err)
	}
	if cs == nil {
		t.Fatalf("%s has no cluster line", name)
	}
	p := &topology.Placement{Name: "mini-all-sw0"}
	for i := 0; i < m.NumGPUs; i++ {
		p.GPUAt = append(p.GPUAt, "sw0")
	}
	for i := 0; i < m.NumSSDs; i++ {
		p.SSDAt = append(p.SSDAt, "sw0")
	}
	if err := p.Validate(m); err != nil {
		t.Fatalf("placement: %v", err)
	}
	return m, p, *cs
}

// miniDemand builds a small deterministic cluster demand: node j's GPU i
// wants (10+i) GiB served by 4 GiB per DRAM cache plus the SSD tier, and
// every node exchanges 2 GiB with its peers.
func miniDemand(m *topology.Machine, nodes int) *ClusterDemand {
	const GiB = 1 << 30
	d := &ClusterDemand{}
	for j := 0; j < nodes; j++ {
		nd := &Demand{DRAM: map[string]float64{}}
		for i := 0; i < m.NumGPUs; i++ {
			nd.PerGPU = append(nd.PerGPU, float64(10+i)*GiB)
		}
		for _, rc := range m.RootComplexes() {
			nd.DRAM[rc] = 4 * GiB
		}
		nd.SSDTotal = 16 * GiB
		d.Node = append(d.Node, nd)
		d.Import = append(d.Import, 2*GiB)
		d.Export = append(d.Export, 2*GiB)
	}
	return d
}

func formatEdges(edges []ClusterEdge) string {
	var b strings.Builder
	for _, e := range edges {
		fmt.Fprintf(&b, "%-5s %-16s -> %-16s %g\n", e.Kind, e.From, e.To, e.Value)
	}
	return b.String()
}

// TestClusterGoldens pins the hierarchical construction: testdata spec in,
// exact flow-graph edge list out. Regenerate with -update after deliberate
// wiring changes.
func TestClusterGoldens(t *testing.T) {
	cases := []struct {
		spec, golden string
		opts         ClusterOptions
	}{
		{"cluster_nonblocking.spec", "cluster_nonblocking.golden", ClusterOptions{}},
		{"cluster_oversub.spec", "cluster_oversub.golden", ClusterOptions{}},
		{"cluster_oversub.spec", "cluster_oversub_nicfabric.golden", ClusterOptions{NICOnGPUSocket: true}},
	}
	for _, tc := range cases {
		t.Run(tc.golden, func(t *testing.T) {
			m, p, cs := loadClusterSpec(t, tc.spec)
			cn, err := BuildCluster(m, p, cs, miniDemand(m, cs.Nodes), tc.opts)
			if err != nil {
				t.Fatalf("BuildCluster: %v", err)
			}
			got := formatEdges(cn.EdgeList())
			path := filepath.Join("testdata", tc.golden)
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("edge list drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}

// TestClusterSolveNonBlocking checks the solved flow against the closed
// form: on a non-blocking core the network stage is exactly
// export bytes / NIC bandwidth, every NIC carries exactly its node's
// configured import/export volume, and all inter-node bytes cross the spine.
func TestClusterSolveNonBlocking(t *testing.T) {
	m, p, cs := loadClusterSpec(t, "cluster_nonblocking.spec")
	d := miniDemand(m, cs.Nodes)
	cn, err := BuildCluster(m, p, cs, d, ClusterOptions{})
	if err != nil {
		t.Fatalf("BuildCluster: %v", err)
	}
	if _, err := cn.Solve(); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	nt, err := cn.NetworkTime()
	if err != nil {
		t.Fatal(err)
	}
	want := d.Export[0] / float64(cs.NICBW)
	if got := nt.Sec(); math.Abs(got-want) > 0.02*want {
		t.Errorf("NetworkTime = %vs, want %vs (export/NICBW)", got, want)
	}
	eg, in, err := cn.NICBytes()
	if err != nil {
		t.Fatal(err)
	}
	for j := range eg {
		if math.Abs(eg[j]-d.Export[j]) > 1e-3*d.Export[j] {
			t.Errorf("node %d egress %v, want %v", j, eg[j], d.Export[j])
		}
		if math.Abs(in[j]-d.Import[j]) > 1e-3*d.Import[j] {
			t.Errorf("node %d ingress %v, want %v", j, in[j], d.Import[j])
		}
	}
	sp, err := cn.SpineBytes()
	if err != nil {
		t.Fatal(err)
	}
	wantSpine := 0.0
	for _, v := range d.Import {
		wantSpine += v
	}
	if math.Abs(sp-wantSpine) > 1e-3*wantSpine {
		t.Errorf("SpineBytes = %v, want %v", sp, wantSpine)
	}
}

// TestClusterOversubscribedUplink checks that a binding leaf uplink, not
// the NICs, sets the network time once per-leaf traffic exceeds it.
func TestClusterOversubscribedUplink(t *testing.T) {
	m, p, cs := loadClusterSpec(t, "cluster_oversub.spec")
	d := miniDemand(m, cs.Nodes)
	// Push each node's exchange to 12 GiB: a leaf's two nodes then offer
	// 24 GiB to a 15 GiB/s uplink, while each 10 GiB/s NIC only needs
	// 1.2 s for its own 12 GiB.
	const GiB = 1 << 30
	for j := range d.Import {
		d.Import[j], d.Export[j] = 12*GiB, 12*GiB
	}
	cn, err := BuildCluster(m, p, cs, d, ClusterOptions{})
	if err != nil {
		t.Fatalf("BuildCluster: %v", err)
	}
	nt, err := cn.NetworkTime()
	if err != nil {
		t.Fatal(err)
	}
	want := 24 * GiB / float64(cs.LeafUplinkBW)
	if got := nt.Sec(); math.Abs(got-want) > 0.02*want {
		t.Errorf("NetworkTime = %vs, want %vs (leaf uplink bound)", got, want)
	}
	osub := cs.Oversubscription()
	if osub <= 1 {
		t.Fatalf("testdata spec no longer oversubscribed: %v", osub)
	}
}

// TestClusterNICOnGPUSocket checks the contention knob: attaching the NIC
// to the fabric can only slow a solve down, and exports still cross the
// wire in full.
func TestClusterNICOnGPUSocket(t *testing.T) {
	m, p, cs := loadClusterSpec(t, "cluster_oversub.spec")
	d := miniDemand(m, cs.Nodes)
	base, err := BuildCluster(m, p, cs, d, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tBase, err := base.SolveTol(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	fab, err := BuildCluster(m, p, cs, d, ClusterOptions{NICOnGPUSocket: true})
	if err != nil {
		t.Fatal(err)
	}
	tFab, err := fab.SolveTol(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if tFab.Sec() < tBase.Sec()*(1-1e-3) {
		t.Errorf("fabric-attached NIC solved faster: %v < %v", tFab, tBase)
	}
	eg, _, err := fab.NICBytes()
	if err != nil {
		t.Fatal(err)
	}
	for j := range eg {
		if math.Abs(eg[j]-d.Export[j]) > 1e-3*d.Export[j] {
			t.Errorf("node %d egress %v, want %v", j, eg[j], d.Export[j])
		}
	}
}

// TestClusterSingleNode degenerates to the single-machine model: no
// imports, no exports, and the solved horizon matches Build+Solve on the
// same demand.
func TestClusterSingleNode(t *testing.T) {
	m, p, _ := loadClusterSpec(t, "cluster_nonblocking.spec")
	cs := topology.ClusterSpec{Nodes: 1}
	d := miniDemand(m, 1)
	d.Import[0], d.Export[0] = 0, 0
	cn, err := BuildCluster(m, p, cs, d, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tc, err := cn.Solve()
	if err != nil {
		t.Fatal(err)
	}
	single, err := Build(m, p, d.Node[0])
	if err != nil {
		t.Fatal(err)
	}
	ts, err := single.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(tc.Sec()-ts.Sec()) / ts.Sec(); rel > 2e-3 {
		t.Errorf("cluster(1) = %v, single-machine = %v (rel %v)", tc, ts, rel)
	}
	nt, err := cn.NetworkTime()
	if err != nil {
		t.Fatal(err)
	}
	if nt != 0 {
		t.Errorf("single node with no exchange has network time %v", nt)
	}
}

// TestClusterValidation exercises the construction error paths.
func TestClusterValidation(t *testing.T) {
	m, p, cs := loadClusterSpec(t, "cluster_nonblocking.spec")
	ok := miniDemand(m, cs.Nodes)

	bad := miniDemand(m, cs.Nodes)
	bad.Node = bad.Node[:1]
	if _, err := BuildCluster(m, p, cs, bad, ClusterOptions{}); err == nil {
		t.Error("accepted mismatched node demand count")
	}

	bad = miniDemand(m, cs.Nodes)
	bad.Export[0] = 0
	if _, err := BuildCluster(m, p, cs, bad, ClusterOptions{}); err == nil {
		t.Error("accepted exports < imports")
	}

	bad = miniDemand(m, cs.Nodes)
	bad.Import[1] = -1
	if _, err := BuildCluster(m, p, cs, bad, ClusterOptions{}); err == nil {
		t.Error("accepted negative import")
	}

	bad = miniDemand(m, cs.Nodes)
	bad.Node[0].SSDTotal = 0
	bad.Node[0].DRAM = nil
	if _, err := BuildCluster(m, p, cs, bad, ClusterOptions{}); err == nil {
		t.Error("accepted starved node")
	}

	csBad := cs
	csBad.NICAt = "nosuch"
	if _, err := BuildCluster(m, p, csBad, ok, ClusterOptions{NICOnGPUSocket: true}); err == nil {
		t.Error("accepted unknown NIC attach point")
	}

	// Infeasible at any horizon: import with no matching export capacity is
	// caught up front, but a NIC-less spec sneaking past Validate is not
	// constructible — exports over a zero-rate NIC never drain.
	csZero := cs
	csZero.NICBW = units.Bandwidth(1) // 1 B/s: feasible but absurdly slow
	cn, err := BuildCluster(m, p, csZero, ok, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	horizon, err := cn.Solve()
	if err != nil {
		t.Fatalf("1 B/s NIC should still be feasible: %v", err)
	}
	if horizon.Sec() < 1e9 {
		t.Errorf("2 GiB over 1 B/s solved in %v", horizon)
	}
}

// TestClusterEdgeBudget sanity-checks the bisector bookkeeping: the sum of
// fixed sink budgets equals the bisector's demand.
func TestClusterEdgeBudget(t *testing.T) {
	m, p, cs := loadClusterSpec(t, "cluster_oversub.spec")
	d := miniDemand(m, cs.Nodes)
	cn, err := BuildCluster(m, p, cs, d, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sinkBudget := 0.0
	for _, e := range cn.EdgeList() {
		if e.Kind == "fixed" && e.To == "t" {
			sinkBudget += e.Value
		}
	}
	want := 0.0
	for j, nd := range d.Node {
		want += nd.TotalDemand() + d.Import[j]
	}
	if math.Abs(sinkBudget-want) > 1 {
		t.Errorf("sink budgets %v, bisector demand %v", sinkBudget, want)
	}
	// Rate edges into the leaves exist for every NIC.
	nics := 0
	for _, e := range cn.EdgeList() {
		if e.Kind == "rate" && strings.Contains(e.From, "nic") && strings.Contains(e.To, "leaf") {
			nics++
		}
	}
	if want := cs.Nodes * cs.Defaults().NICsPerNode; nics != want {
		t.Errorf("%d NIC egress edges, want %d", nics, want)
	}
}
