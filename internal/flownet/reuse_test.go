package flownet

import (
	"math"
	"testing"

	"moment/internal/topology"
)

// TestBuildReuseMatchesBuild rebuilds the same machine/placement/demand
// combinations through one scratch Network and checks every solve agrees
// with a fresh Build — the scratch must carry no state between occupants.
func TestBuildReuseMatchesBuild(t *testing.T) {
	type combo struct {
		m *topology.Machine
		l topology.ClassicLayout
	}
	combos := []combo{
		{topology.MachineA(), topology.LayoutA},
		{topology.MachineB(), topology.LayoutC},
		{topology.MachineA(), topology.LayoutB},
		{topology.MachineB(), topology.LayoutD},
		{topology.MachineA(), topology.LayoutA}, // revisit after larger machine
	}
	var scratch *Network
	for i, c := range combos {
		d := demandA(c.m.NumGPUs)
		p, err := topology.ClassicPlacement(c.m, c.l)
		if err != nil {
			t.Fatal(err)
		}
		reused, err := BuildReuse(c.m, p, d, scratch)
		if err != nil {
			t.Fatalf("combo %d: BuildReuse: %v", i, err)
		}
		if scratch != nil && reused != scratch {
			t.Fatalf("combo %d: BuildReuse allocated a new Network despite scratch", i)
		}
		scratch = reused
		fresh := build(t, c.m, c.l, d)
		tr, tf := epochTime(t, reused), epochTime(t, fresh)
		if math.Abs(tr-tf) > 1e-3*tf {
			t.Fatalf("combo %d: reused solve %v, fresh %v", i, tr, tf)
		}
		// Metrics read the same flow.
		br, _ := reused.Traffic()
		bf, _ := fresh.Traffic()
		var sr, sf float64
		for i := range br.SSD {
			sr += br.SSD[i]
			sf += bf.SSD[i]
		}
		if math.Abs(sr-sf) > 1 {
			t.Fatalf("combo %d: SSD traffic %v reused vs %v fresh", i, sr, sf)
		}
	}
}

// TestBuildReuseAfterError ensures a scratch that went through a failed
// build (validation error) is still accepted and produces correct results.
func TestBuildReuseAfterError(t *testing.T) {
	m := topology.MachineA()
	p, err := topology.ClassicPlacement(m, topology.LayoutA)
	if err != nil {
		t.Fatal(err)
	}
	d := demandA(m.NumGPUs)
	scratch, err := BuildReuse(m, p, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := &Demand{PerGPU: []float64{1}} // wrong GPU count
	if _, err := BuildReuse(m, p, bad, scratch); err == nil {
		t.Fatal("expected demand-shape error")
	}
	n, err := BuildReuse(m, p, d, scratch)
	if err != nil {
		t.Fatalf("reuse after error: %v", err)
	}
	want := epochTime(t, build(t, m, topology.LayoutA, d))
	if got := epochTime(t, n); math.Abs(got-want) > 1e-3*want {
		t.Fatalf("solve %v after failed build, want %v", got, want)
	}
}

// TestPatchDemandMatchesRebuild reprices budgets on a built network and
// checks the solve agrees with a from-scratch Build of the new demand.
func TestPatchDemandMatchesRebuild(t *testing.T) {
	m := topology.MachineB()
	n := build(t, m, topology.LayoutC, demandA(m.NumGPUs))
	if _, err := n.Solve(); err != nil {
		t.Fatal(err)
	}

	// Scale the whole demand up (warm-friendly), then down (forces cold).
	for _, factor := range []float64{1.5, 0.4} {
		d2 := demandA(m.NumGPUs)
		for i := range d2.PerGPU {
			d2.PerGPU[i] *= factor
			d2.HBMPeer[i] *= factor
		}
		for k := range d2.DRAM {
			d2.DRAM[k] *= factor
		}
		d2.SSDTotal *= factor
		if err := n.PatchDemand(d2); err != nil {
			t.Fatal(err)
		}
		if n.SolvedHorizon() != 0 {
			t.Fatal("PatchDemand left network marked solved")
		}
		got := epochTime(t, n)
		want := epochTime(t, build(t, m, topology.LayoutC, d2))
		if math.Abs(got-want) > 1e-3*want {
			t.Fatalf("factor %v: patched solve %v, rebuilt %v", factor, got, want)
		}
	}
}

// TestPatchDemandRejectsStructuralChanges covers every rebuild-required
// mismatch: GPU count, HBM toggling, SSD pinning toggling, bad socket.
func TestPatchDemandRejectsStructuralChanges(t *testing.T) {
	m := topology.MachineA()
	base := demandA(m.NumGPUs)
	n := build(t, m, topology.LayoutA, base)
	for name, d := range map[string]*Demand{
		"gpu-count":   {PerGPU: []float64{1, 2}},
		"hbm-toggle":  {PerGPU: base.PerGPU, SSDTotal: base.TotalDemand()},
		"ssd-pinning": {PerGPU: base.PerGPU, HBMPeer: base.HBMPeer, SSDPer: make([]float64, m.NumSSDs)},
		"bad-socket": {PerGPU: base.PerGPU, HBMPeer: base.HBMPeer,
			DRAM: map[string]float64{"rc9": 1}, SSDTotal: base.SSDTotal},
		"undersupply": {PerGPU: base.PerGPU, HBMPeer: base.HBMPeer, SSDTotal: 1},
	} {
		if err := n.PatchDemand(d); err == nil {
			t.Errorf("%s: patch accepted incompatible demand", name)
		}
	}
	// The network must still solve correctly after rejected patches.
	want := epochTime(t, build(t, m, topology.LayoutA, base))
	if got := epochTime(t, n); math.Abs(got-want) > 1e-3*want {
		t.Fatalf("solve %v after rejected patches, want %v", got, want)
	}
}

// TestPatchDemandPinnedSSDs exercises the SSDPer branch of PatchDemand.
func TestPatchDemandPinnedSSDs(t *testing.T) {
	m := topology.MachineA()
	base := demandA(m.NumGPUs)
	per := make([]float64, m.NumSSDs)
	for i := range per {
		per[i] = base.SSDTotal / float64(m.NumSSDs)
	}
	d := &Demand{PerGPU: base.PerGPU, HBMPeer: base.HBMPeer, DRAM: base.DRAM, SSDPer: per}
	n := build(t, m, topology.LayoutA, d)

	skew := make([]float64, m.NumSSDs)
	copy(skew, per)
	if m.NumSSDs >= 2 {
		skew[0] += per[1] / 2
		skew[1] -= per[1] / 2
	}
	d2 := &Demand{PerGPU: base.PerGPU, HBMPeer: base.HBMPeer, DRAM: base.DRAM, SSDPer: skew}
	if err := n.PatchDemand(d2); err != nil {
		t.Fatal(err)
	}
	got := epochTime(t, n)
	want := epochTime(t, build(t, m, topology.LayoutA, d2))
	if math.Abs(got-want) > 1e-3*want {
		t.Fatalf("patched pinned solve %v, rebuilt %v", got, want)
	}
}

// TestDemandFingerprint checks the equality/inequality contract: equal
// demands collide, any budget or structural change separates.
func TestDemandFingerprint(t *testing.T) {
	base := func() *Demand { return demandA(4) }
	fp := base().Fingerprint()
	if fp != base().Fingerprint() {
		t.Fatal("equal demands fingerprint differently")
	}
	mutations := map[string]func(*Demand){
		"per-gpu":    func(d *Demand) { d.PerGPU[2]++ },
		"hbm":        func(d *Demand) { d.HBMPeer[0]++ },
		"hbm-nil":    func(d *Demand) { d.HBMPeer = nil },
		"dram-value": func(d *Demand) { d.DRAM["rc0"]++ },
		"dram-key":   func(d *Demand) { delete(d.DRAM, "rc1"); d.DRAM["rc2"] = 25 * gb },
		"ssd-total":  func(d *Demand) { d.SSDTotal++ },
		"ssd-pinned": func(d *Demand) { d.SSDPer = []float64{d.SSDTotal}; d.SSDTotal = 0 },
	}
	for name, mut := range mutations {
		d := base()
		// deep-copy the map demandA shares nothing across calls except DRAM literals
		dram := map[string]float64{}
		for k, v := range d.DRAM {
			dram[k] = v
		}
		d.DRAM = dram
		mut(d)
		if d.Fingerprint() == fp {
			t.Errorf("%s: mutation did not change fingerprint", name)
		}
	}
	// Map iteration order must not matter.
	a := base()
	a.DRAM = map[string]float64{"rc0": 1, "rc1": 2, "rc2": 3}
	b := base()
	b.DRAM = map[string]float64{"rc2": 3, "rc1": 2, "rc0": 1}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("DRAM map order changed fingerprint")
	}
}

// TestBuildReuseAllocs bounds steady-state allocations of the arena path:
// after warm-up, rebuilding the same-shaped network must stay far below a
// fresh Build (which allocates the graph, maps, and slices every time).
func TestBuildReuseAllocs(t *testing.T) {
	m := topology.MachineA()
	p, err := topology.ClassicPlacement(m, topology.LayoutA)
	if err != nil {
		t.Fatal(err)
	}
	d := demandA(m.NumGPUs)
	scratch, err := BuildReuse(m, p, d, nil)
	if err != nil {
		t.Fatal(err)
	}
	reuse := testing.AllocsPerRun(100, func() {
		if _, err := BuildReuse(m, p, d, scratch); err != nil {
			t.Fatal(err)
		}
	})
	fresh := testing.AllocsPerRun(100, func() {
		if _, err := Build(m, p, d); err != nil {
			t.Fatal(err)
		}
	})
	if reuse > fresh/2 {
		t.Errorf("BuildReuse allocates %.0f/run vs fresh %.0f/run; want < half", reuse, fresh)
	}
}
