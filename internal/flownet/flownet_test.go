package flownet

import (
	"math"
	"testing"

	"moment/internal/topology"
	"moment/internal/units"
)

const gb = 1 << 30

// demandA is a representative IGB-like epoch demand: 100 GB per GPU, with
// 25 GB/socket from CPU cache, 10 GB/GPU peer-served HBM, rest from SSDs.
func demandA(numGPU int) *Demand {
	per := make([]float64, numGPU)
	hbm := make([]float64, numGPU)
	for i := range per {
		per[i] = 100 * gb
		hbm[i] = 10 * gb
	}
	total := float64(numGPU) * 100 * gb
	dram := map[string]float64{"rc0": 25 * gb, "rc1": 25 * gb}
	ssd := total - 50*gb - float64(numGPU)*10*gb
	return &Demand{PerGPU: per, HBMPeer: hbm, DRAM: dram, SSDTotal: ssd}
}

func build(t *testing.T, m *topology.Machine, l topology.ClassicLayout, d *Demand) *Network {
	t.Helper()
	p, err := topology.ClassicPlacement(m, l)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(m, p, d)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func epochTime(t *testing.T, n *Network) float64 {
	t.Helper()
	d, err := n.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return d.Sec()
}

func TestMachineALayoutOrdering(t *testing.T) {
	m := topology.MachineA()
	d := demandA(4)
	times := map[topology.ClassicLayout]float64{}
	for _, l := range []topology.ClassicLayout{topology.LayoutA, topology.LayoutB, topology.LayoutC, topology.LayoutD} {
		times[l] = epochTime(t, build(t, m, l, d))
	}
	// Paper Fig 1: (c) 14.9 < (a) 15.9 < (d) 24.1 < (b) 26.7.
	if !(times[topology.LayoutC] <= times[topology.LayoutA]) {
		t.Errorf("want (c) <= (a): %v", times)
	}
	if !(times[topology.LayoutA] < times[topology.LayoutD]) {
		t.Errorf("want (a) < (d): %v", times)
	}
	if !(times[topology.LayoutD] <= times[topology.LayoutB]) {
		t.Errorf("want (d) <= (b): %v", times)
	}
	// Packed-GPU layouts should be markedly worse (paper: ~1.6-1.8x).
	if ratio := times[topology.LayoutB] / times[topology.LayoutC]; ratio < 1.3 {
		t.Errorf("(b)/(c) ratio %.2f too small: %v", ratio, times)
	}
}

func TestMachineBLayoutOrdering(t *testing.T) {
	m := topology.MachineB()
	d := demandA(4)
	times := map[topology.ClassicLayout]float64{}
	for _, l := range []topology.ClassicLayout{topology.LayoutA, topology.LayoutB, topology.LayoutC, topology.LayoutD} {
		times[l] = epochTime(t, build(t, m, l, d))
	}
	// Paper Fig 2: (c) 18.6 < (d) 24.0 < (a) 28.4 < (b) 29.7.
	if !(times[topology.LayoutC] < times[topology.LayoutD]) {
		t.Errorf("want (c) < (d): %v", times)
	}
	if !(times[topology.LayoutD] <= times[topology.LayoutA]) {
		t.Errorf("want (d) <= (a): %v", times)
	}
	if !(times[topology.LayoutA] <= times[topology.LayoutB]) {
		t.Errorf("want (a) <= (b): %v", times)
	}
}

func TestMomentPlacementBeatsClassicsOnB(t *testing.T) {
	m := topology.MachineB()
	d := demandA(4)
	p, err := topology.MomentPlacementB(m)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Build(m, p, d)
	if err != nil {
		t.Fatal(err)
	}
	moment := epochTime(t, n)
	for _, l := range []topology.ClassicLayout{topology.LayoutA, topology.LayoutB, topology.LayoutC, topology.LayoutD} {
		classic := epochTime(t, build(t, m, l, d))
		if moment > classic*1.0001 {
			t.Errorf("moment %.2fs slower than %v %.2fs", moment, l, classic)
		}
	}
}

func TestPerGPUInletSumsToThroughput(t *testing.T) {
	m := topology.MachineA()
	d := demandA(4)
	n := build(t, m, topology.LayoutC, d)
	tm := epochTime(t, n)
	inlets, err := n.PerGPUInletBW()
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, bw := range inlets {
		sum += float64(bw)
	}
	want := d.TotalDemand() / tm
	if math.Abs(sum-want) > 0.01*want {
		t.Errorf("inlet sum %.2f GiB/s, want %.2f", sum/gb, want/gb)
	}
}

func TestLoadImbalanceVisibleOnMachineB(t *testing.T) {
	// Fig 2c narrative: sw0 GPUs see ~40 GiB/s paths, sw1 GPUs ~30 GiB/s.
	// With a straggler-bound completion time, the sw0 GPUs finish their
	// demand easily, so per-GPU inlet BW differences show up only if
	// demand is uneven; instead check the solved time exceeds the ideal
	// balanced time (total demand / aggregate supply rate).
	m := topology.MachineB()
	d := demandA(4)
	n := build(t, m, topology.LayoutC, d)
	tm := epochTime(t, n)
	perGPU := 100.0 * gb
	idealPerGPU := perGPU / float64(topology.PCIe4x16) // x16-limited best case
	if tm < idealPerGPU {
		t.Errorf("time %.2fs beats per-GPU x16 limit %.2fs", tm, idealPerGPU)
	}
}

func TestQPITrafficHigherWhenGPUsPacked(t *testing.T) {
	m := topology.MachineA()
	d := demandA(4)
	nC := build(t, m, topology.LayoutC, d)
	nD := build(t, m, topology.LayoutD, d)
	qC, err := nC.QPIBytes()
	if err != nil {
		t.Fatal(err)
	}
	qD, err := nD.QPIBytes()
	if err != nil {
		t.Fatal(err)
	}
	// Layout (d) packs all GPUs on socket 0 while half the SSDs sit on
	// socket 1, so it must push more bytes across QPI than (c).
	if qD <= qC {
		t.Errorf("QPI bytes: packed %.1f GB <= spread %.1f GB", qD/gb, qC/gb)
	}
}

func TestTrafficAccountsForAllSupply(t *testing.T) {
	m := topology.MachineA()
	d := demandA(4)
	n := build(t, m, topology.LayoutC, d)
	if _, err := n.Solve(); err != nil {
		t.Fatal(err)
	}
	bt, err := n.Traffic()
	if err != nil {
		t.Fatal(err)
	}
	served := 0.0
	for _, v := range bt.HBMPeer {
		served += v
	}
	for _, v := range bt.DRAM {
		served += v
	}
	for _, v := range bt.SSD {
		served += v
	}
	if math.Abs(served-d.TotalDemand()) > 1e-3*d.TotalDemand() {
		t.Errorf("served %.1f GB != demand %.1f GB", served/gb, d.TotalDemand()/gb)
	}
	// Per-SSD service must respect the device rate over the horizon.
	maxPerSSD := math.Min(float64(m.SSDBW), float64(m.PCIeX4)) * n.solvedT
	for i, v := range bt.SSD {
		if v > maxPerSSD*1.001 {
			t.Errorf("ssd%d served %.1f GB > rate limit %.1f GB", i, v/gb, maxPerSSD/gb)
		}
	}
}

func TestSSDPerPinnedBudgets(t *testing.T) {
	m := topology.MachineA()
	d := demandA(4)
	// Pin an uneven split: SSD0 gets everything the tier must serve.
	per := make([]float64, m.NumSSDs)
	per[0] = d.SSDTotal
	dd := *d
	dd.SSDPer = per
	dd.SSDTotal = 0
	p, err := topology.ClassicPlacement(m, topology.LayoutC)
	if err != nil {
		t.Fatal(err)
	}
	nPinned, err := Build(m, p, &dd)
	if err != nil {
		t.Fatal(err)
	}
	tPinned := epochTime(t, nPinned)
	tFree := epochTime(t, build(t, m, topology.LayoutC, d))
	// A single SSD serving the whole tier budget must be slower than the
	// free split (6 GiB/s vs 48 GiB/s tier).
	if tPinned <= tFree*1.5 {
		t.Errorf("pinned-on-one-SSD %.2fs should be much slower than free %.2fs", tPinned, tFree)
	}
	bt, err := nPinned.Traffic()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bt.SSD[0]-dd.SSDPer[0]) > 1e-3*dd.SSDPer[0] {
		t.Errorf("ssd0 served %.1f GB, want %.1f GB", bt.SSD[0]/gb, dd.SSDPer[0]/gb)
	}
	for i := 1; i < len(bt.SSD); i++ {
		if bt.SSD[i] != 0 {
			t.Errorf("ssd%d served %.1f GB, want 0", i, bt.SSD[i]/gb)
		}
	}
}

func TestNVLinkImprovesPeerHeavyWorkload(t *testing.T) {
	// A peer-HBM-heavy demand should profit from NVLink shortcuts (Fig 18).
	mkDemand := func() *Demand {
		per := []float64{60 * gb, 60 * gb, 60 * gb, 60 * gb}
		hbm := []float64{40 * gb, 40 * gb, 40 * gb, 40 * gb}
		return &Demand{
			PerGPU:   per,
			HBMPeer:  hbm,
			DRAM:     map[string]float64{"rc0": 20 * gb, "rc1": 20 * gb},
			SSDTotal: 240*gb - 160*gb - 40*gb,
		}
	}
	base := topology.MachineA()
	nv := base.WithNVLink(topology.NVLinkBridgeBW,
		topology.NVLinkPair{A: 0, B: 1}, topology.NVLinkPair{A: 2, B: 3})
	tBase := epochTime(t, build(t, base, topology.LayoutC, mkDemand()))
	tNV := epochTime(t, build(t, nv, topology.LayoutC, mkDemand()))
	if tNV >= tBase {
		t.Errorf("NVLink time %.3fs >= base %.3fs", tNV, tBase)
	}
}

func TestBuildErrors(t *testing.T) {
	m := topology.MachineA()
	p, err := topology.ClassicPlacement(m, topology.LayoutC)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		d    *Demand
	}{
		{"wrong gpu count", &Demand{PerGPU: []float64{1}}},
		{"supply<demand", &Demand{PerGPU: []float64{gb, gb, gb, gb}, SSDTotal: gb}},
		{"wrong hbm len", &Demand{PerGPU: []float64{1, 1, 1, 1}, HBMPeer: []float64{1}, SSDTotal: 10}},
		{"wrong ssdper len", &Demand{PerGPU: []float64{1, 1, 1, 1}, SSDPer: []float64{10}}},
		{"unknown socket", &Demand{PerGPU: []float64{1, 1, 1, 1}, DRAM: map[string]float64{"rc9": 100}}},
	}
	for _, c := range cases {
		if _, err := Build(m, p, c.d); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Invalid placement.
	bad := &topology.Placement{GPUAt: []string{"rc0", "rc0", "rc0", "rc0"}, SSDAt: p.SSDAt}
	if _, err := Build(m, bad, demandA(4)); err == nil {
		t.Error("invalid placement: expected error")
	}
}

func TestLinkUtilizationIdentifiesBottleneck(t *testing.T) {
	m := topology.MachineA()
	d := demandA(4)
	n := build(t, m, topology.LayoutB, d)
	if _, err := n.Solve(); err != nil {
		t.Fatal(err)
	}
	util, err := n.LinkUtilization()
	if err != nil {
		t.Fatal(err)
	}
	// Fig 1b narrative: Bus 9 (rc0->sw0 uplink) is the primary contention
	// point when SSDs prioritize the front board and GPUs pack on sw0.
	up := util["uplink:rc0-sw0"]
	if up < 0.45 {
		t.Errorf("uplink:rc0-sw0 utilization %.2f, want high (bottleneck)", up)
	}
	for name, u := range util {
		if u < -1e-9 || u > 1.001 {
			t.Errorf("link %s utilization %.3f out of range", name, u)
		}
	}
}

func TestThroughputMatchesSolve(t *testing.T) {
	m := topology.MachineA()
	d := demandA(4)
	n := build(t, m, topology.LayoutC, d)
	thr, err := n.Throughput()
	if err != nil {
		t.Fatal(err)
	}
	tm := n.solvedT
	want := units.Bandwidth(d.TotalDemand() / tm)
	if math.Abs(float64(thr-want)) > 0.01*float64(want) {
		t.Errorf("throughput %v, want %v", thr, want)
	}
}

func TestDemandTotals(t *testing.T) {
	d := demandA(4)
	if got := d.TotalDemand(); math.Abs(got-400*gb) > 1 {
		t.Errorf("TotalDemand = %v", got)
	}
	if got := d.TotalSupply(); math.Abs(got-400*gb) > 1 {
		t.Errorf("TotalSupply = %v", got)
	}
	d2 := &Demand{PerGPU: []float64{1}, SSDPer: []float64{5, 5}}
	if got := d2.TotalSupply(); got != 10 {
		t.Errorf("pinned TotalSupply = %v", got)
	}
}

func TestMirrorPlacementsSolveIdentically(t *testing.T) {
	// Cross-validation of the placement package's canonical key: two
	// placements that are mirrors across machine A's symmetric sockets
	// must produce identical predicted epoch times — the justification
	// for pruning one of them during search.
	m := topology.MachineA()
	d := demandA(4)
	p1 := &topology.Placement{
		GPUAt: []string{"sw0", "sw0", "sw0", "sw1"},
		SSDAt: []string{"rc0", "rc0", "rc0", "rc0", "rc0", "rc1", "rc1", "rc1"},
	}
	p2 := &topology.Placement{
		GPUAt: []string{"sw1", "sw1", "sw1", "sw0"},
		SSDAt: []string{"rc1", "rc1", "rc1", "rc1", "rc1", "rc0", "rc0", "rc0"},
	}
	n1, err := Build(m, p1, d)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := Build(m, p2, d)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := n1.Solve()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := n2.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs((t1 - t2).Sec()) / t1.Sec(); rel > 1e-3 {
		t.Errorf("mirror placements differ: %.4fs vs %.4fs", t1.Sec(), t2.Sec())
	}
}

func TestDevicePermutationInvariance(t *testing.T) {
	// Reordering the device arrays (same counts per point) never changes
	// the solved time: devices of a kind are interchangeable.
	m := topology.MachineB()
	d := demandA(4)
	base, err := topology.MomentPlacementB(m)
	if err != nil {
		t.Fatal(err)
	}
	nb, err := Build(m, base, d)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := nb.Solve()
	if err != nil {
		t.Fatal(err)
	}
	perm := base.Clone()
	perm.SSDAt[0], perm.SSDAt[7] = perm.SSDAt[7], perm.SSDAt[0]
	perm.GPUAt[1], perm.GPUAt[2] = perm.GPUAt[2], perm.GPUAt[1]
	np, err := Build(m, perm, d)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := np.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs((tb - tp).Sec()) / tb.Sec(); rel > 1e-3 {
		t.Errorf("device permutation changed time: %.4fs vs %.4fs", tb.Sec(), tp.Sec())
	}
}
