// Package tensor provides the dense float32 linear algebra the functional
// GNN training path runs on: row-major matrices, goroutine-parallel matmul
// kernels, activation and loss primitives, and the segment operations GNN
// aggregation needs. It stands in for the CUDA kernels of the paper's
// training backend; correctness (not device speed) is the point, though
// kernels do parallelize across GOMAXPROCS workers.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Matrix is a row-major dense float32 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New allocates a zero matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: bad shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// FromSlice wraps data (len rows*cols) without copying.
func FromSlice(rows, cols int, data []float32) (*Matrix, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("tensor: data length %d != %dx%d", len(data), rows, cols)
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}, nil
}

// Rand fills a new matrix with scaled uniform values (Glorot-style range).
func Rand(rows, cols int, seed int64) *Matrix {
	m := New(rows, cols)
	r := rand.New(rand.NewSource(seed))
	scale := float32(math.Sqrt(6.0 / float64(rows+cols)))
	for i := range m.Data {
		m.Data[i] = (r.Float32()*2 - 1) * scale
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns row i (aliasing the matrix storage).
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	c := New(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero clears the matrix in place.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// parallelFor splits [0, n) across GOMAXPROCS workers.
func parallelFor(n int, body func(start, end int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul computes a×b, parallelized over rows of a.
func MatMul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("tensor: matmul shape %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := New(a.Rows, b.Cols)
	parallelFor(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for k, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Row(k)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out, nil
}

// MatMulATB computes aᵀ×b (used for weight gradients).
func MatMulATB(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows {
		return nil, fmt.Errorf("tensor: matmulATB shape %dx%d ᵀ× %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := New(a.Cols, b.Cols)
	// Parallelize over output rows (a's columns) to avoid write races.
	parallelFor(a.Cols, func(lo, hi int) {
		for i := 0; i < a.Rows; i++ {
			arow := a.Row(i)
			brow := b.Row(i)
			for k := lo; k < hi; k++ {
				av := arow[k]
				if av == 0 {
					continue
				}
				orow := out.Row(k)
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
	return out, nil
}

// MatMulABT computes a×bᵀ (used for input gradients).
func MatMulABT(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Cols {
		return nil, fmt.Errorf("tensor: matmulABT shape %dx%d × %dx%dᵀ", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := New(a.Rows, b.Rows)
	parallelFor(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			orow := out.Row(i)
			for j := 0; j < b.Rows; j++ {
				brow := b.Row(j)
				var s float32
				for k, av := range arow {
					s += av * brow[k]
				}
				orow[j] = s
			}
		}
	})
	return out, nil
}

// AddInPlace accumulates src into dst.
func AddInPlace(dst, src *Matrix) error {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		return fmt.Errorf("tensor: add shape %dx%d += %dx%d", dst.Rows, dst.Cols, src.Rows, src.Cols)
	}
	for i, v := range src.Data {
		dst.Data[i] += v
	}
	return nil
}

// Scale multiplies the matrix by s in place.
func (m *Matrix) Scale(s float32) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// AddBiasInPlace adds a 1×Cols bias row to every row.
func AddBiasInPlace(m *Matrix, bias *Matrix) error {
	if bias.Rows != 1 || bias.Cols != m.Cols {
		return fmt.Errorf("tensor: bias shape %dx%d for %dx%d", bias.Rows, bias.Cols, m.Rows, m.Cols)
	}
	parallelFor(m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.Row(i)
			for j, b := range bias.Row(0) {
				row[j] += b
			}
		}
	})
	return nil
}

// BiasGrad sums gradient rows into a 1×Cols bias gradient.
func BiasGrad(grad *Matrix) *Matrix {
	out := New(1, grad.Cols)
	o := out.Row(0)
	for i := 0; i < grad.Rows; i++ {
		for j, v := range grad.Row(i) {
			o[j] += v
		}
	}
	return out
}

// ReLUInPlace applies max(0, x) and returns a mask for the backward pass.
func ReLUInPlace(m *Matrix) []bool {
	mask := make([]bool, len(m.Data))
	for i, v := range m.Data {
		if v > 0 {
			mask[i] = true
		} else {
			m.Data[i] = 0
		}
	}
	return mask
}

// ReLUBackward zeroes gradient entries where the forward activation was
// clipped.
func ReLUBackward(grad *Matrix, mask []bool) error {
	if len(mask) != len(grad.Data) {
		return fmt.Errorf("tensor: relu mask length %d != %d", len(mask), len(grad.Data))
	}
	for i := range grad.Data {
		if !mask[i] {
			grad.Data[i] = 0
		}
	}
	return nil
}

// LeakyReLUInPlace applies x>0 ? x : alpha*x and records the mask
// (GAT's attention nonlinearity).
func LeakyReLUInPlace(m *Matrix, alpha float32) []bool {
	mask := make([]bool, len(m.Data))
	for i, v := range m.Data {
		if v > 0 {
			mask[i] = true
		} else {
			m.Data[i] = v * alpha
		}
	}
	return mask
}

// SoftmaxCrossEntropy computes mean cross-entropy loss over rows and the
// gradient w.r.t. logits. labels[i] is the class of row i.
func SoftmaxCrossEntropy(logits *Matrix, labels []int32) (float64, *Matrix, error) {
	if len(labels) != logits.Rows {
		return 0, nil, fmt.Errorf("tensor: %d labels for %d rows", len(labels), logits.Rows)
	}
	for i, l := range labels {
		if l < 0 || int(l) >= logits.Cols {
			return 0, nil, fmt.Errorf("tensor: label %d at row %d out of range [0,%d)", l, i, logits.Cols)
		}
	}
	grad := New(logits.Rows, logits.Cols)
	losses := make([]float64, logits.Rows)
	parallelFor(logits.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := logits.Row(i)
			maxv := row[0]
			for _, v := range row[1:] {
				if v > maxv {
					maxv = v
				}
			}
			var sum float64
			g := grad.Row(i)
			for j, v := range row {
				e := math.Exp(float64(v - maxv))
				g[j] = float32(e)
				sum += e
			}
			inv := float32(1 / sum)
			for j := range g {
				g[j] *= inv
			}
			p := g[labels[i]]
			losses[i] = -math.Log(math.Max(float64(p), 1e-12))
			g[labels[i]] -= 1
		}
	})
	total := 0.0
	for _, l := range losses {
		total += l
	}
	n := float32(logits.Rows)
	grad.Scale(1 / n)
	return total / float64(logits.Rows), grad, nil
}

// Accuracy returns the fraction of rows whose argmax matches the label.
func Accuracy(logits *Matrix, labels []int32) (float64, error) {
	if len(labels) != logits.Rows {
		return 0, fmt.Errorf("tensor: %d labels for %d rows", len(labels), logits.Rows)
	}
	correct := 0
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		if int32(best) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(max(1, logits.Rows)), nil
}

// SegmentMean averages src rows into dst rows: for every edge e,
// in.Row(srcIdx[e]) contributes to out.Row(dstIdx[e]); each output row is
// divided by its contribution count. Rows with no contributions stay zero.
// This is the AGGREGATE (mean) operator of Eq. 1.
func SegmentMean(in *Matrix, dstIdx, srcIdx []int32, outRows int) (*Matrix, []int32, error) {
	if len(dstIdx) != len(srcIdx) {
		return nil, nil, fmt.Errorf("tensor: segment index length mismatch %d vs %d", len(dstIdx), len(srcIdx))
	}
	out := New(outRows, in.Cols)
	counts := make([]int32, outRows)
	for e := range dstIdx {
		d, s := dstIdx[e], srcIdx[e]
		if d < 0 || int(d) >= outRows || s < 0 || int(s) >= in.Rows {
			return nil, nil, fmt.Errorf("tensor: segment edge %d (%d<-%d) out of range", e, d, s)
		}
		orow := out.Row(int(d))
		irow := in.Row(int(s))
		for j, v := range irow {
			orow[j] += v
		}
		counts[d]++
	}
	for i := 0; i < outRows; i++ {
		if counts[i] > 1 {
			inv := 1 / float32(counts[i])
			row := out.Row(i)
			for j := range row {
				row[j] *= inv
			}
		}
	}
	return out, counts, nil
}

// SegmentMeanBackward scatters output gradients back to inputs:
// gradIn.Row(src) += gradOut.Row(dst) / count[dst].
func SegmentMeanBackward(gradOut *Matrix, dstIdx, srcIdx []int32, counts []int32, inRows int) (*Matrix, error) {
	if len(dstIdx) != len(srcIdx) {
		return nil, fmt.Errorf("tensor: segment index length mismatch")
	}
	gradIn := New(inRows, gradOut.Cols)
	for e := range dstIdx {
		d, s := dstIdx[e], srcIdx[e]
		if d < 0 || int(d) >= gradOut.Rows || s < 0 || int(s) >= inRows {
			return nil, fmt.Errorf("tensor: segment edge %d out of range", e)
		}
		c := counts[d]
		if c == 0 {
			continue
		}
		inv := 1 / float32(c)
		grow := gradIn.Row(int(s))
		orow := gradOut.Row(int(d))
		for j, v := range orow {
			grow[j] += v * inv
		}
	}
	return gradIn, nil
}

// GatherRows copies in.Row(idx[i]) into out row i.
func GatherRows(in *Matrix, idx []int32) (*Matrix, error) {
	out := New(len(idx), in.Cols)
	for i, v := range idx {
		if v < 0 || int(v) >= in.Rows {
			return nil, fmt.Errorf("tensor: gather index %d out of range", v)
		}
		copy(out.Row(i), in.Row(int(v)))
	}
	return out, nil
}

// Concat joins a and b column-wise.
func Concat(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows {
		return nil, fmt.Errorf("tensor: concat rows %d vs %d", a.Rows, b.Rows)
	}
	out := New(a.Rows, a.Cols+b.Cols)
	parallelFor(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			copy(out.Row(i)[:a.Cols], a.Row(i))
			copy(out.Row(i)[a.Cols:], b.Row(i))
		}
	})
	return out, nil
}

// SplitCols splits m into the first k columns and the rest (inverse of
// Concat for the backward pass).
func SplitCols(m *Matrix, k int) (*Matrix, *Matrix, error) {
	if k <= 0 || k >= m.Cols {
		return nil, nil, fmt.Errorf("tensor: split at %d of %d cols", k, m.Cols)
	}
	a := New(m.Rows, k)
	b := New(m.Rows, m.Cols-k)
	for i := 0; i < m.Rows; i++ {
		copy(a.Row(i), m.Row(i)[:k])
		copy(b.Row(i), m.Row(i)[k:])
	}
	return a, b, nil
}

// L2Norm returns the Frobenius norm.
func (m *Matrix) L2Norm() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
