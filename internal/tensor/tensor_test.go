package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatMulSmall(t *testing.T) {
	a, _ := FromSlice(2, 3, []float32{1, 2, 3, 4, 5, 6})
	b, _ := FromSlice(3, 2, []float32{7, 8, 9, 10, 11, 12})
	c, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{58, 64, 139, 154}
	for i, v := range want {
		if c.Data[i] != v {
			t.Errorf("c[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
	if _, err := MatMul(a, a); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestMatMulIdentity(t *testing.T) {
	a := Rand(7, 7, 1)
	id := New(7, 7)
	for i := 0; i < 7; i++ {
		id.Set(i, i, 1)
	}
	c, err := MatMul(a, id)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if !approxEq(float64(c.Data[i]), float64(a.Data[i]), 1e-6) {
			t.Fatalf("A*I != A at %d", i)
		}
	}
}

func TestMatMulTransposesAgree(t *testing.T) {
	// MatMulATB(a, b) == MatMul(aᵀ, b) and MatMulABT(a, b) == MatMul(a, bᵀ).
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		m, k, n := 2+r.Intn(6), 2+r.Intn(6), 2+r.Intn(6)
		a := Rand(k, m, int64(trial))
		b := Rand(k, n, int64(trial+100))
		at := New(m, k)
		for i := 0; i < k; i++ {
			for j := 0; j < m; j++ {
				at.Set(j, i, a.At(i, j))
			}
		}
		want, err := MatMul(at, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MatMulATB(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if !approxEq(float64(got.Data[i]), float64(want.Data[i]), 1e-4) {
				t.Fatalf("ATB mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
			}
		}
		c := Rand(n, k, int64(trial+200))
		ct := New(k, n)
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				ct.Set(j, i, c.At(i, j))
			}
		}
		wantABT, err := MatMul(at, ct)
		if err != nil {
			t.Fatal(err)
		}
		gotABT, err := MatMulABT(at, c)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantABT.Data {
			if !approxEq(float64(gotABT.Data[i]), float64(wantABT.Data[i]), 1e-4) {
				t.Fatalf("ABT mismatch at %d", i)
			}
		}
	}
	a := Rand(2, 3, 1)
	if _, err := MatMulATB(a, Rand(4, 2, 1)); err == nil {
		t.Error("ATB shape mismatch accepted")
	}
	if _, err := MatMulABT(a, Rand(2, 4, 1)); err == nil {
		t.Error("ABT shape mismatch accepted")
	}
}

func TestAddBiasAndGrad(t *testing.T) {
	m, _ := FromSlice(2, 3, []float32{1, 1, 1, 2, 2, 2})
	bias, _ := FromSlice(1, 3, []float32{10, 20, 30})
	if err := AddBiasInPlace(m, bias); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 11 || m.At(1, 2) != 32 {
		t.Errorf("bias add wrong: %v", m.Data)
	}
	bg := BiasGrad(m)
	if bg.At(0, 0) != 11+12 || bg.At(0, 2) != 31+32 {
		t.Errorf("bias grad %v", bg.Data)
	}
	if err := AddBiasInPlace(m, New(1, 2)); err == nil {
		t.Error("bias shape mismatch accepted")
	}
}

func TestReLU(t *testing.T) {
	m, _ := FromSlice(1, 4, []float32{-1, 0, 2, -3})
	mask := ReLUInPlace(m)
	want := []float32{0, 0, 2, 0}
	for i, v := range want {
		if m.Data[i] != v {
			t.Errorf("relu[%d] = %v", i, m.Data[i])
		}
	}
	grad, _ := FromSlice(1, 4, []float32{5, 5, 5, 5})
	if err := ReLUBackward(grad, mask); err != nil {
		t.Fatal(err)
	}
	if grad.Data[0] != 0 || grad.Data[2] != 5 {
		t.Errorf("relu grad %v", grad.Data)
	}
	if err := ReLUBackward(grad, mask[:2]); err == nil {
		t.Error("mask length mismatch accepted")
	}
}

func TestLeakyReLU(t *testing.T) {
	m, _ := FromSlice(1, 3, []float32{-2, 0, 4})
	LeakyReLUInPlace(m, 0.1)
	if !approxEq(float64(m.Data[0]), -0.2, 1e-6) || m.Data[2] != 4 {
		t.Errorf("leaky relu %v", m.Data)
	}
}

func TestSoftmaxCrossEntropyGradientCheck(t *testing.T) {
	logits := Rand(4, 5, 9)
	labels := []int32{0, 3, 2, 4}
	loss, grad, err := SoftmaxCrossEntropy(logits, labels)
	if err != nil {
		t.Fatal(err)
	}
	if loss <= 0 {
		t.Fatalf("loss %v", loss)
	}
	// Numerical gradient check on a handful of entries.
	const eps = 1e-3
	for _, idx := range []int{0, 3, 7, 12, 19} {
		orig := logits.Data[idx]
		logits.Data[idx] = orig + eps
		lp, _, err := SoftmaxCrossEntropy(logits, labels)
		if err != nil {
			t.Fatal(err)
		}
		logits.Data[idx] = orig - eps
		lm, _, err := SoftmaxCrossEntropy(logits, labels)
		if err != nil {
			t.Fatal(err)
		}
		logits.Data[idx] = orig
		numeric := (lp - lm) / (2 * eps)
		if !approxEq(numeric, float64(grad.Data[idx]), 1e-3) {
			t.Errorf("grad[%d] analytic %v vs numeric %v", idx, grad.Data[idx], numeric)
		}
	}
	if _, _, err := SoftmaxCrossEntropy(logits, []int32{0}); err == nil {
		t.Error("label length mismatch accepted")
	}
	if _, _, err := SoftmaxCrossEntropy(logits, []int32{9, 0, 0, 0}); err == nil {
		t.Error("label out of range accepted")
	}
}

func TestSoftmaxGradSumsToZeroProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(6), 2+r.Intn(6)
		logits := Rand(rows, cols, seed)
		labels := make([]int32, rows)
		for i := range labels {
			labels[i] = int32(r.Intn(cols))
		}
		_, grad, err := SoftmaxCrossEntropy(logits, labels)
		if err != nil {
			return false
		}
		// Each row's gradient sums to zero (softmax simplex constraint).
		for i := 0; i < rows; i++ {
			var s float64
			for _, v := range grad.Row(i) {
				s += float64(v)
			}
			if math.Abs(s) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAccuracy(t *testing.T) {
	logits, _ := FromSlice(3, 2, []float32{1, 0, 0, 1, 1, 0})
	acc, err := Accuracy(logits, []int32{0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(acc, 2.0/3, 1e-9) {
		t.Errorf("accuracy %v", acc)
	}
	if _, err := Accuracy(logits, []int32{0}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSegmentMeanAndBackward(t *testing.T) {
	in, _ := FromSlice(3, 2, []float32{1, 2, 3, 4, 5, 6})
	dst := []int32{0, 0, 1}
	src := []int32{0, 1, 2}
	out, counts, err := SegmentMean(in, dst, src, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0) != 2 || out.At(0, 1) != 3 { // mean of rows 0,1
		t.Errorf("segment mean row0 %v", out.Row(0))
	}
	if out.At(1, 0) != 5 {
		t.Errorf("segment mean row1 %v", out.Row(1))
	}
	if counts[0] != 2 || counts[1] != 1 {
		t.Errorf("counts %v", counts)
	}
	gradOut, _ := FromSlice(2, 2, []float32{2, 2, 6, 6})
	gradIn, err := SegmentMeanBackward(gradOut, dst, src, counts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if gradIn.At(0, 0) != 1 || gradIn.At(1, 0) != 1 || gradIn.At(2, 0) != 6 {
		t.Errorf("grad in %v", gradIn.Data)
	}
	if _, _, err := SegmentMean(in, dst, src[:1], 2); err == nil {
		t.Error("index length mismatch accepted")
	}
	if _, _, err := SegmentMean(in, []int32{5}, []int32{0}, 2); err == nil {
		t.Error("dst out of range accepted")
	}
}

func TestSegmentMeanGradientCheck(t *testing.T) {
	// d/dx of sum(SegmentMean(x)) must match numeric estimate.
	r := rand.New(rand.NewSource(4))
	in := Rand(5, 3, 11)
	dst := []int32{0, 0, 1, 2, 2, 2}
	src := []int32{0, 1, 2, 3, 4, 0}
	lossOf := func(m *Matrix) float64 {
		out, _, err := SegmentMean(m, dst, src, 3)
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for _, v := range out.Data {
			s += float64(v)
		}
		return s
	}
	_, counts, err := SegmentMean(in, dst, src, 3)
	if err != nil {
		t.Fatal(err)
	}
	ones := New(3, 3)
	for i := range ones.Data {
		ones.Data[i] = 1
	}
	grad, err := SegmentMeanBackward(ones, dst, src, counts, 5)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-2
	for trial := 0; trial < 8; trial++ {
		idx := r.Intn(len(in.Data))
		orig := in.Data[idx]
		in.Data[idx] = orig + eps
		lp := lossOf(in)
		in.Data[idx] = orig - eps
		lm := lossOf(in)
		in.Data[idx] = orig
		numeric := (lp - lm) / (2 * eps)
		if !approxEq(numeric, float64(grad.Data[idx]), 1e-3) {
			t.Errorf("segment grad[%d] analytic %v vs numeric %v", idx, grad.Data[idx], numeric)
		}
	}
}

func TestGatherRows(t *testing.T) {
	in, _ := FromSlice(3, 2, []float32{1, 2, 3, 4, 5, 6})
	out, err := GatherRows(in, []int32{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0) != 5 || out.At(1, 1) != 2 {
		t.Errorf("gather %v", out.Data)
	}
	if _, err := GatherRows(in, []int32{9}); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestConcatSplit(t *testing.T) {
	a, _ := FromSlice(2, 2, []float32{1, 2, 3, 4})
	b, _ := FromSlice(2, 1, []float32{9, 8})
	c, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cols != 3 || c.At(0, 2) != 9 || c.At(1, 0) != 3 {
		t.Errorf("concat %v", c.Data)
	}
	a2, b2, err := SplitCols(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a2.Data[i] != a.Data[i] {
			t.Fatal("split != original a")
		}
	}
	for i := range b.Data {
		if b2.Data[i] != b.Data[i] {
			t.Fatal("split != original b")
		}
	}
	if _, err := Concat(a, New(3, 1)); err == nil {
		t.Error("row mismatch accepted")
	}
	if _, _, err := SplitCols(c, 0); err == nil {
		t.Error("bad split accepted")
	}
}

func TestCloneScaleZeroNorm(t *testing.T) {
	m := Rand(3, 3, 5)
	c := m.Clone()
	c.Scale(2)
	if approxEq(m.L2Norm(), c.L2Norm(), 1e-9) {
		t.Error("clone aliases original")
	}
	if !approxEq(c.L2Norm(), 2*m.L2Norm(), 1e-4) {
		t.Errorf("scale norm %v vs %v", c.L2Norm(), m.L2Norm())
	}
	c.Zero()
	if c.L2Norm() != 0 {
		t.Error("zero failed")
	}
}

func TestFromSliceAndNewPanics(t *testing.T) {
	if _, err := FromSlice(2, 2, []float32{1}); err == nil {
		t.Error("bad data length accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad shape")
		}
	}()
	New(-1, 3)
}

func TestAddInPlace(t *testing.T) {
	a, _ := FromSlice(1, 2, []float32{1, 2})
	b, _ := FromSlice(1, 2, []float32{10, 20})
	if err := AddInPlace(a, b); err != nil {
		t.Fatal(err)
	}
	if a.Data[0] != 11 || a.Data[1] != 22 {
		t.Errorf("add %v", a.Data)
	}
	if err := AddInPlace(a, New(2, 2)); err == nil {
		t.Error("shape mismatch accepted")
	}
}
