package topology

import (
	"strings"
	"testing"

	"moment/internal/units"
)

func TestMachinesValidate(t *testing.T) {
	for _, m := range []*Machine{MachineA(), MachineB(), MachineC()} {
		if err := m.Validate(); err != nil {
			t.Errorf("machine %s: %v", m.Name, err)
		}
	}
}

func TestMachineAInventory(t *testing.T) {
	m := MachineA()
	if m.NumGPUs != 4 || m.NumSSDs != 8 {
		t.Fatalf("inventory %d GPUs %d SSDs", m.NumGPUs, m.NumSSDs)
	}
	if got := m.TotalGPUSlots(); got != 8 {
		t.Errorf("gpu slots = %d, want 8", got)
	}
	if got := m.TotalBays(); got != 16 {
		t.Errorf("bays = %d, want 16", got)
	}
	// Aggregate SSD bandwidth should be 48 GiB/s (§2.2).
	if got := m.AggregateSSDBW().GiBpsf(); got < 47.9 || got > 48.1 {
		t.Errorf("aggregate SSD BW = %.1f GiB/s, want 48", got)
	}
	if m.DRAMPerSocket != units.GB(384) {
		t.Errorf("dram/socket = %v", m.DRAMPerSocket)
	}
}

func TestMachineBCascade(t *testing.T) {
	m := MachineB()
	d0, err := m.Depth("sw0")
	if err != nil || d0 != 1 {
		t.Errorf("depth(sw0) = %d, %v", d0, err)
	}
	d1, err := m.Depth("sw1")
	if err != nil || d1 != 2 {
		t.Errorf("depth(sw1) = %d, %v (cascaded switch should be depth 2)", d1, err)
	}
	sock, err := m.Socket("sw1")
	if err != nil || sock != "rc0" {
		t.Errorf("socket(sw1) = %q, %v", sock, err)
	}
}

func TestSocketOfRoot(t *testing.T) {
	m := MachineA()
	s, err := m.Socket("rc1")
	if err != nil || s != "rc1" {
		t.Errorf("Socket(rc1) = %q, %v", s, err)
	}
	if _, err := m.Socket("nope"); err == nil {
		t.Error("expected error for unknown point")
	}
}

func TestValidateRejectsBadMachines(t *testing.T) {
	bad := []func() *Machine{
		func() *Machine { m := MachineA(); m.Points = nil; return m },
		func() *Machine { m := MachineA(); m.Points[1].ID = "rc0"; return m }, // dup
		func() *Machine { m := MachineA(); m.Points[0].Parent = "sw0"; return m },
		func() *Machine { m := MachineA(); m.Points[2].Parent = ""; return m },
		func() *Machine { m := MachineA(); m.Points[2].Parent = "ghost"; return m },
		func() *Machine { m := MachineA(); m.Points[2].UplinkBW = 0; return m },
		func() *Machine { m := MachineA(); m.Points[2].Bays = -1; return m },
		func() *Machine { m := MachineA(); m.NumGPUs = 100; return m },
		func() *Machine { m := MachineA(); m.NumSSDs = -1; return m },
		func() *Machine { m := MachineA(); m.NVLinks = []NVLinkPair{{0, 9}}; return m },
		func() *Machine { m := MachineA(); m.NVLinks = []NVLinkPair{{2, 2}}; return m },
		func() *Machine { // switch cycle
			m := MachineB()
			m.Points[2].Parent = "sw1"
			return m
		},
	}
	for i, f := range bad {
		if err := f().Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestClassicPlacementsA(t *testing.T) {
	m := MachineA()
	for _, l := range []ClassicLayout{LayoutA, LayoutB, LayoutC, LayoutD} {
		p, err := ClassicPlacement(m, l)
		if err != nil {
			t.Fatalf("%v: %v", l, err)
		}
		if err := p.Validate(m); err != nil {
			t.Errorf("%v: %v", l, err)
		}
		gpus, ssds := p.Counts()
		switch l {
		case LayoutA:
			if gpus["sw0"] != 2 || gpus["sw1"] != 2 {
				t.Errorf("(a) gpus %v", gpus)
			}
			if ssds["rc0"] != 8 {
				t.Errorf("(a) ssds %v", ssds)
			}
		case LayoutB:
			if gpus["sw0"] != 4 {
				t.Errorf("(b) gpus %v", gpus)
			}
		case LayoutC:
			if ssds["rc0"] != 4 || ssds["rc1"] != 4 {
				t.Errorf("(c) ssds %v", ssds)
			}
			if gpus["sw0"] != 2 || gpus["sw1"] != 2 {
				t.Errorf("(c) gpus %v", gpus)
			}
		case LayoutD:
			if gpus["sw0"] != 4 || ssds["rc0"] != 4 || ssds["rc1"] != 4 {
				t.Errorf("(d) gpus %v ssds %v", gpus, ssds)
			}
		}
	}
}

func TestClassicPlacementsB(t *testing.T) {
	m := MachineB()
	for _, l := range []ClassicLayout{LayoutA, LayoutB, LayoutC, LayoutD} {
		p, err := ClassicPlacement(m, l)
		if err != nil {
			t.Fatalf("%v: %v", l, err)
		}
		gpus, ssds := p.Counts()
		switch l {
		case LayoutA:
			if ssds["rc1"] != 8 {
				t.Errorf("(a) ssds %v", ssds)
			}
			if gpus["sw0"] != 2 || gpus["sw1"] != 2 {
				t.Errorf("(a) gpus %v", gpus)
			}
		case LayoutB:
			if gpus["sw1"] != 4 {
				t.Errorf("(b) gpus %v (want all on the nested P2P switch)", gpus)
			}
		case LayoutC:
			if ssds["sw0"] != 2 || ssds["sw1"] != 2 || ssds["rc1"] != 4 {
				t.Errorf("(c) ssds %v", ssds)
			}
		case LayoutD:
			if gpus["sw1"] != 4 || ssds["sw0"] != 2 || ssds["sw1"] != 2 {
				t.Errorf("(d) gpus %v ssds %v", gpus, ssds)
			}
		}
	}
}

func TestClassicPlacementUnknownMachine(t *testing.T) {
	m := MachineC()
	if _, err := ClassicPlacement(m, LayoutA); err == nil {
		t.Error("expected error for machine C")
	}
}

func TestClassicPlacementReducedGPUs(t *testing.T) {
	for _, mk := range []func() *Machine{MachineA, MachineB} {
		for n := 1; n <= 4; n++ {
			m := mk().WithGPUs(n)
			for _, l := range []ClassicLayout{LayoutA, LayoutB, LayoutC, LayoutD} {
				p, err := ClassicPlacement(m, l)
				if err != nil {
					t.Fatalf("%s %v n=%d: %v", m.Name, l, n, err)
				}
				if len(p.GPUAt) != n {
					t.Errorf("%s %v n=%d: %d GPUs placed", m.Name, l, n, len(p.GPUAt))
				}
			}
		}
	}
}

func TestMomentPlacementB(t *testing.T) {
	m := MachineB()
	p, err := MomentPlacementB(m)
	if err != nil {
		t.Fatal(err)
	}
	gpus, ssds := p.Counts()
	// Fig 7: GPU0 on rc0; GPU3 + 4 SSDs on rc1; 2 SSDs on sw0; 2 SSDs + 2
	// GPUs on sw1.
	if gpus["rc0"] != 1 || gpus["rc1"] != 1 || gpus["sw1"] != 2 {
		t.Errorf("gpus %v", gpus)
	}
	if ssds["rc1"] != 4 || ssds["sw0"] != 2 || ssds["sw1"] != 2 {
		t.Errorf("ssds %v", ssds)
	}
	if _, err := MomentPlacementB(MachineA()); err == nil {
		t.Error("expected error for machine A")
	}
}

func TestPlacementValidateRejects(t *testing.T) {
	m := MachineA()
	cases := []*Placement{
		{GPUAt: []string{"sw0"}, SSDAt: fill(nil, "rc0", 8)},                       // wrong gpu count
		{GPUAt: fill(nil, "sw0", 4), SSDAt: fill(nil, "rc0", 5)},                   // wrong ssd count
		{GPUAt: fill(nil, "rc0", 4), SSDAt: fill(fill(nil, "rc0", 4), "rc1", 4)},   // no gpu slots at rc0
		{GPUAt: fill(nil, "sw0", 4), SSDAt: fill(nil, "sw0", 8)},                   // sw0 has no bays on A
		{GPUAt: fill(nil, "ghost", 4), SSDAt: fill(fill(nil, "rc0", 4), "rc1", 4)}, // unknown point
	}
	for i, p := range cases {
		if err := p.Validate(m); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPlacementStringAndClone(t *testing.T) {
	m := MachineB()
	p, err := MomentPlacementB(m)
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{"B(moment)", "rc1:4", "sw0:2", "sw1:2"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	c := p.Clone()
	c.GPUAt[0] = "sw0"
	if p.GPUAt[0] != "rc0" {
		t.Error("Clone shares GPUAt")
	}
}

func TestWithGPUsDropsNVLinks(t *testing.T) {
	m := MachineA().WithNVLink(NVLinkBridgeBW, NVLinkPair{0, 1}, NVLinkPair{2, 3})
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	m2 := m.WithGPUs(2)
	if len(m2.NVLinks) != 1 || m2.NVLinks[0] != (NVLinkPair{0, 1}) {
		t.Errorf("NVLinks after WithGPUs(2): %v", m2.NVLinks)
	}
	if err := m2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, mk := range []func() *Machine{MachineA, MachineB, MachineC} {
		m := mk()
		if m.NumGPUs >= 2 {
			m = m.WithNVLink(NVLinkBridgeBW, NVLinkPair{0, 1})
		}
		spec := FormatSpec(m)
		got, err := ParseSpec(strings.NewReader(spec))
		if err != nil {
			t.Fatalf("%s: parse: %v\nspec:\n%s", m.Name, err, spec)
		}
		if got.Name != m.Name || got.NumGPUs != m.NumGPUs || got.NumSSDs != m.NumSSDs {
			t.Errorf("%s: identity lost: %+v", m.Name, got)
		}
		if len(got.Points) != len(m.Points) {
			t.Fatalf("%s: point count %d != %d", m.Name, len(got.Points), len(m.Points))
		}
		for i := range m.Points {
			a, b := m.Points[i], got.Points[i]
			if a.ID != b.ID || a.Kind != b.Kind || a.Parent != b.Parent ||
				a.Bays != b.Bays || a.GPUSlots != b.GPUSlots {
				t.Errorf("%s: point %d mismatch: %+v vs %+v", m.Name, i, a, b)
			}
			if d := (a.UplinkBW - b.UplinkBW).GiBpsf(); d > 0.01 || d < -0.01 {
				t.Errorf("%s: point %d uplink %v vs %v", m.Name, i, a.UplinkBW, b.UplinkBW)
			}
		}
		if len(got.NVLinks) != len(m.NVLinks) {
			t.Errorf("%s: nvlinks %v vs %v", m.Name, got.NVLinks, m.NVLinks)
		}
		if d := got.QPIBW.GiBpsf() - m.QPIBW.GiBpsf(); d > 0.01 || d < -0.01 {
			t.Errorf("%s: qpi %v vs %v", m.Name, got.QPIBW, m.QPIBW)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"bogus directive",
		"machine",
		"qpi",
		"qpi fast",
		"dram 1GiB",
		"gpus x",
		"gpus 4 weird=1",
		"ssds 8 cap=big",
		"pcie x16=?",
		"pcie y8=1GiB",
		"point sw0",
		"point sw0 transistor",
		"point sw0 switch parent=rc0 uplink=bad",
		"nvlink 0",
		"nvlink 0 x",
		"nodes",
		"machine X\npoint rc0 root bays=0 gpuslots=0\npoint sw0 switch parent=ghost uplink=1GiB bays=0 gpuslots=0",
	}
	for i, s := range bad {
		if _, err := ParseSpec(strings.NewReader(s)); err == nil {
			t.Errorf("case %d (%q): expected error", i, s)
		}
	}
}

func TestParseSpecCommentsAndBlank(t *testing.T) {
	spec := "# a comment\n\n" + FormatSpec(MachineA())
	if _, err := ParseSpec(strings.NewReader(spec)); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		RootComplex: "root-complex", Switch: "switch", GPUDev: "gpu",
		SSDDev: "ssd", NICDev: "nic", Kind(42): "kind(42)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	if LayoutA.String() != "(a)" || LayoutD.String() != "(d)" || ClassicLayout(9).String() != "layout(9)" {
		t.Error("layout names changed")
	}
}

func TestVendorMachinesValid(t *testing.T) {
	for _, m := range MachineCatalog() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	if len(MachineCatalog()) != 5 {
		t.Errorf("catalog size %d", len(MachineCatalog()))
	}
	// The Falcon cascade is three switches deep.
	f := H3Falcon4016()
	d, err := f.Depth("sw2")
	if err != nil || d != 3 {
		t.Errorf("falcon sw2 depth %d, %v", d, err)
	}
	// The Supermicro chassis is balanced: mirrored sockets.
	sm := Supermicro420GP()
	if sm.TotalGPUSlots() != 8 || sm.TotalBays() != 16 {
		t.Errorf("supermicro slots %d bays %d", sm.TotalGPUSlots(), sm.TotalBays())
	}
	// Spec round trip covers the vendor machines too.
	for _, m := range []*Machine{sm, f} {
		back, err := ParseSpec(strings.NewReader(FormatSpec(m)))
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if back.Name != m.Name || len(back.Points) != len(m.Points) {
			t.Errorf("%s spec round trip lost structure", m.Name)
		}
	}
}
