package topology

import (
	"fmt"

	"moment/internal/units"
)

// Calibrated link rates. The paper quotes PCIe 4.0 x16 at "around 20 GiB/s"
// and 8× P5510 at a 48 GiB/s aggregate (§2.2); QPI/UPI per-direction rates
// come from the profiling step (§3.1) and are set to the commonly measured
// value for Ice-Lake-era Xeon interconnects.
var (
	// PCIe4x16 is usable bandwidth of a PCIe 4.0 x16 link, per direction.
	PCIe4x16 = units.GiBps(20)
	// PCIe4x4 is usable bandwidth of a PCIe 4.0 x4 U.2 bay link.
	PCIe4x4 = units.GiBps(7)
	// PCIe3x16 is usable bandwidth of a PCIe 3.0 x16 link (Machine C).
	PCIe3x16 = units.GiBps(12)
	// QPIRate is the effective per-direction socket-interconnect rate for
	// cross-socket PCIe peer traffic. The wire rate of 3x UPI links is
	// higher, but profiled DMA throughput across sockets lands near this
	// value, which is what the paper's profiling step would record.
	QPIRate = units.GiBps(20)
	// P5510BW is the sustained read bandwidth of one Intel P5510 SSD.
	P5510BW = units.GiBps(6)
	// P5510IOPS is the 4K random-read IOPS ceiling of one P5510.
	P5510IOPS = 930_000.0
	// DRAMServeBW is the effective rate at which one socket's DRAM can
	// serve feature reads onto the PCIe fabric.
	DRAMServeBW = units.GiBps(36)
	// NVLinkBridgeBW is the per-direction rate of an A100 NVLink bridge.
	NVLinkBridgeBW = units.GiBps(50)
)

// MachineA returns the balanced-topology server of Table 1 / Figure 1:
// two sockets joined by QPI; each root complex exposes eight U.2 bays
// (Buses 1–8) and one PCIe switch (Bus 9) carrying four x16 dual-width
// slots. 4× A100-40G, 8× P5510, 768 GB DRAM.
func MachineA() *Machine {
	return &Machine{
		Name: "A",
		Points: []AttachPoint{
			{ID: "rc0", Kind: RootComplex, Bays: 8},
			{ID: "rc1", Kind: RootComplex, Bays: 8},
			{ID: "sw0", Kind: Switch, Parent: "rc0", UplinkBW: PCIe4x16, GPUSlots: 4},
			{ID: "sw1", Kind: Switch, Parent: "rc1", UplinkBW: PCIe4x16, GPUSlots: 4},
		},
		QPIBW:         QPIRate,
		DRAMPerSocket: units.GB(384), // 768 GB total across 2 sockets
		DRAMBW:        DRAMServeBW,
		NumGPUs:       4,
		NumSSDs:       8,
		GPUMemory:     units.GB(40),
		GPUCacheFrac:  0.15,
		SSDCapacity:   units.TB(3.84),
		SSDBW:         P5510BW,
		SSDIOPS:       P5510IOPS,
		PCIeX16:       PCIe4x16,
		PCIeX4:        PCIe4x4,
		NVLinkBW:      NVLinkBridgeBW,
		NumNodes:      1,
	}
}

// MachineB returns the cascaded-topology server of Table 1 / Figure 2:
// root complex 0 reaches PCIe switch 0 via Bus 11, and switch 1 cascades
// off switch 0 via Bus 16 (the H3 Falcon-style nesting of footnote 1).
// Each switch carries two U.2 bays (Buses 12–13 and 17–18); the front
// board's eight hot-swap bays hang off root complex 1, which also has an
// x16 slot of its own.
func MachineB() *Machine {
	return &Machine{
		Name: "B",
		Points: []AttachPoint{
			{ID: "rc0", Kind: RootComplex, GPUSlots: 1},
			{ID: "rc1", Kind: RootComplex, Bays: 8, GPUSlots: 1},
			{ID: "sw0", Kind: Switch, Parent: "rc0", UplinkBW: PCIe4x16, Bays: 2, GPUSlots: 4},
			{ID: "sw1", Kind: Switch, Parent: "sw0", UplinkBW: PCIe4x16, Bays: 2, GPUSlots: 4},
		},
		QPIBW:         QPIRate,
		DRAMPerSocket: units.GB(256), // 512 GB total
		DRAMBW:        DRAMServeBW,
		NumGPUs:       4,
		NumSSDs:       8,
		GPUMemory:     units.GB(40),
		GPUCacheFrac:  0.15,
		SSDCapacity:   units.TB(3.84),
		SSDBW:         P5510BW,
		SSDIOPS:       P5510IOPS,
		PCIeX16:       PCIe4x16,
		PCIeX4:        PCIe4x4,
		NVLinkBW:      NVLinkBridgeBW,
		NumNodes:      1,
	}
}

// MachineC returns one node of the four-node DistDGL cluster of Table 1:
// one A100 per node, no local SSDs, 256 GB DRAM, PCIe 3.0 x16, 100 Gbps NIC.
func MachineC() *Machine {
	return &Machine{
		Name: "C",
		Points: []AttachPoint{
			{ID: "rc0", Kind: RootComplex, GPUSlots: 1},
			{ID: "rc1", Kind: RootComplex, GPUSlots: 1},
		},
		QPIBW:         QPIRate,
		DRAMPerSocket: units.GB(128), // 256 GB total
		DRAMBW:        DRAMServeBW,
		NumGPUs:       1,
		NumSSDs:       0,
		GPUMemory:     units.GB(40),
		GPUCacheFrac:  0.15,
		PCIeX16:       PCIe3x16,
		PCIeX4:        units.GiBps(3.5),
		NumNodes:      4,
		NICBW:         units.Gbps(100),
	}
}

// WithGPUs returns a copy of the machine restricted to n GPUs (scalability
// experiments vary GPU count from 1 to 4, Fig 16).
func (m *Machine) WithGPUs(n int) *Machine {
	c := m.Clone()
	c.NumGPUs = n
	var nv []NVLinkPair
	for _, p := range c.NVLinks {
		if p.A < n && p.B < n {
			nv = append(nv, p)
		}
	}
	c.NVLinks = nv
	return c
}

// ClassicLayout identifies the four hardware layouts of §2.3 (Figures 1–2):
// SSDs either prioritize the "front board" or spread evenly, crossed with
// GPUs either packed on one PCIe switch (P2P-prioritized) or spread evenly.
type ClassicLayout int

const (
	// LayoutA: front-board SSDs, GPUs spread across switches.
	LayoutA ClassicLayout = iota
	// LayoutB: front-board SSDs, GPUs packed on one switch.
	LayoutB
	// LayoutC: SSDs spread evenly, GPUs spread evenly.
	LayoutC
	// LayoutD: SSDs spread evenly, GPUs packed on one switch.
	LayoutD
)

// String names the layout as the paper does.
func (l ClassicLayout) String() string {
	switch l {
	case LayoutA:
		return "(a)"
	case LayoutB:
		return "(b)"
	case LayoutC:
		return "(c)"
	case LayoutD:
		return "(d)"
	}
	return fmt.Sprintf("layout(%d)", int(l))
}

// ClassicPlacement constructs one of the four §2.3 layouts for a machine,
// honoring a reduced GPU count (2..4) for the scaling studies. Supported
// machines are A and B; other machines return an error.
func ClassicPlacement(m *Machine, l ClassicLayout) (*Placement, error) {
	switch m.Name {
	case "A":
		return classicA(m, l)
	case "B":
		return classicB(m, l)
	}
	return nil, fmt.Errorf("topology: no classic layouts defined for machine %q", m.Name)
}

func classicA(m *Machine, l ClassicLayout) (*Placement, error) {
	p := &Placement{Name: "A" + l.String()}
	// SSDs: the "front board" hot-swap bays are wired to root complex 0
	// (Buses 1-8), so front-prioritized placement funnels all SSD traffic
	// through Bus 9 / QPI toward the GPUs (the Fig 1a/1b contention);
	// "even" splits the bays across the two sockets.
	switch l {
	case LayoutA, LayoutB:
		p.SSDAt = fill(nil, "rc0", m.NumSSDs)
	case LayoutC, LayoutD:
		h := m.NumSSDs / 2
		p.SSDAt = fill(nil, "rc0", h)
		p.SSDAt = fill(p.SSDAt, "rc1", m.NumSSDs-h)
	default:
		return nil, fmt.Errorf("topology: unknown layout %v", l)
	}
	// GPUs: packed on sw0, or split sw0/sw1.
	switch l {
	case LayoutB, LayoutD:
		p.GPUAt = fill(nil, "sw0", m.NumGPUs)
	default:
		h := (m.NumGPUs + 1) / 2
		p.GPUAt = fill(nil, "sw0", h)
		p.GPUAt = fill(p.GPUAt, "sw1", m.NumGPUs-h)
	}
	return p, p.Validate(m)
}

func classicB(m *Machine, l ClassicLayout) (*Placement, error) {
	p := &Placement{Name: "B" + l.String()}
	// SSDs: the "front board" hot-swap bays hang off root complex 1, so
	// front-prioritized placement forces SSD traffic across QPI and Bus 11
	// toward the GPU cascade (the contention Fig 2a/2b reports); "even"
	// spreads the SSDs across the two PLX switches (Fig 2c/2d, where the
	// contended links become Bus 11 and Bus 16).
	switch l {
	case LayoutA, LayoutB:
		p.SSDAt = fill(nil, "rc1", m.NumSSDs)
	case LayoutC, LayoutD:
		p.SSDAt = fill(nil, "sw0", min(2, m.NumSSDs))
		p.SSDAt = fill(p.SSDAt, "sw1", min(2, max(0, m.NumSSDs-2)))
		p.SSDAt = fill(p.SSDAt, "rc1", max(0, m.NumSSDs-4))
	default:
		return nil, fmt.Errorf("topology: unknown layout %v", l)
	}
	// GPUs: packed on sw1 (the all-to-all P2P switch, footnote 3), or
	// split sw0/sw1 (Fig 2c: GPU0,1 on sw0; GPU2,3 on sw1).
	switch l {
	case LayoutB, LayoutD:
		p.GPUAt = fill(nil, "sw1", m.NumGPUs)
	default:
		h := (m.NumGPUs + 1) / 2
		p.GPUAt = fill(nil, "sw0", h)
		p.GPUAt = fill(p.GPUAt, "sw1", m.NumGPUs-h)
	}
	return p, p.Validate(m)
}

// MomentPlacementB is the published optimal layout for Machine B with 4
// GPUs and 8 SSDs (Fig 7): GPU0 on rc0; GPU3 plus four SSDs on rc1; two
// SSDs on switch 0; two SSDs and two GPUs on switch 1.
func MomentPlacementB(m *Machine) (*Placement, error) {
	if m.Name != "B" {
		return nil, fmt.Errorf("topology: MomentPlacementB wants machine B, got %q", m.Name)
	}
	p := &Placement{
		Name:  "B(moment)",
		GPUAt: []string{"rc0", "sw1", "sw1", "rc1"},
		SSDAt: []string{"rc1", "rc1", "rc1", "rc1", "sw0", "sw0", "sw1", "sw1"},
	}
	p.GPUAt = p.GPUAt[:m.NumGPUs]
	return p, p.Validate(m)
}

func fill(s []string, id string, n int) []string {
	for i := 0; i < n; i++ {
		s = append(s, id)
	}
	return s
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
