package topology

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"moment/internal/units"
)

// ClusterSpec describes the hierarchical inter-server network joining N
// identical machines: per-node NICs feed leaf switches whose uplinks meet
// at a spine. A single leaf with no uplink cap is the non-blocking core
// switch of the paper's §5 sketch; multiple leaves with finite uplinks
// model the oversubscribed two-tier fabrics real clusters run.
//
// All inter-node traffic is routed leaf→spine→leaf (no local turnaround at
// the leaf), so a finite uplink prices oversubscription against the full
// all-to-all traffic matrix rather than only the cross-leaf share — the
// conservative reading of a leaf/spine fabric under uniform partitioning.
type ClusterSpec struct {
	// Nodes is the cluster size.
	Nodes int
	// NICsPerNode is each node's NIC count (0 defaults to 1).
	NICsPerNode int
	// NICBW is each NIC's full-duplex bandwidth.
	NICBW units.Bandwidth
	// Leaves is the leaf-switch count (0 defaults to 1). Nodes spread
	// over leaves in contiguous blocks.
	Leaves int
	// LeafUplinkBW is each leaf's uplink into the spine, per direction;
	// <= 0 means non-blocking (unbounded uplink).
	LeafUplinkBW units.Bandwidth
	// NICAt names the attach point each node's NIC hangs off when the
	// planner models NIC↔PCIe contention (cluster.Config.NICOnGPUSocket);
	// empty picks the socket of the node's first GPU.
	NICAt string
}

// Defaults fills the zero-value conveniences.
func (c ClusterSpec) Defaults() ClusterSpec {
	if c.NICsPerNode <= 0 {
		c.NICsPerNode = 1
	}
	if c.Leaves <= 0 {
		c.Leaves = 1
	}
	return c
}

// Validate rejects malformed specs.
func (c ClusterSpec) Validate() error {
	c = c.Defaults()
	if c.Nodes <= 0 {
		return fmt.Errorf("topology: cluster with %d nodes", c.Nodes)
	}
	if c.NICBW <= 0 && c.Nodes > 1 {
		return fmt.Errorf("topology: multi-node cluster needs NIC bandwidth")
	}
	if c.Leaves > c.Nodes {
		return fmt.Errorf("topology: %d leaves exceed %d nodes", c.Leaves, c.Nodes)
	}
	return nil
}

// NonBlocking reports whether the core never constrains traffic beyond the
// NICs themselves.
func (c ClusterSpec) NonBlocking() bool {
	return c.Defaults().LeafUplinkBW <= 0
}

// LeafOf returns the leaf switch node j connects to (contiguous blocks).
func (c ClusterSpec) LeafOf(node int) int {
	d := c.Defaults()
	return node * d.Leaves / d.Nodes
}

// Oversubscription is the worst-case ratio of a leaf's downlink capacity
// (its nodes' NICs) to its spine uplink; 1.0 or less means the uplink
// never binds, 0 means non-blocking.
func (c ClusterSpec) Oversubscription() float64 {
	d := c.Defaults()
	if d.NonBlocking() || d.NICBW <= 0 {
		return 0
	}
	maxNodes := 0
	counts := make([]int, d.Leaves)
	for j := 0; j < d.Nodes; j++ {
		counts[d.LeafOf(j)]++
	}
	for _, n := range counts {
		if n > maxNodes {
			maxNodes = n
		}
	}
	return float64(maxNodes*d.NICsPerNode) * float64(d.NICBW) / float64(d.LeafUplinkBW)
}

// FormatClusterSpec serializes the cluster line of the textual spec format:
//
//	cluster nodes=4 nics=1 nic=11.642GiB/s leaves=2 uplink=23.283GiB/s nicat=rc1
//
// Append it to a machine spec (FormatSpec) to describe a full deployment;
// ParseClusterFile reads the combined document.
func FormatClusterSpec(c ClusterSpec) string {
	d := c.Defaults()
	var b strings.Builder
	fmt.Fprintf(&b, "cluster nodes=%d nics=%d nic=%.3fGiB/s leaves=%d", d.Nodes, d.NICsPerNode, d.NICBW.GiBpsf(), d.Leaves)
	if !d.NonBlocking() {
		fmt.Fprintf(&b, " uplink=%.3fGiB/s", d.LeafUplinkBW.GiBpsf())
	}
	if d.NICAt != "" {
		fmt.Fprintf(&b, " nicat=%s", d.NICAt)
	}
	b.WriteString("\n")
	return b.String()
}

// ParseClusterLine parses one "cluster ..." directive.
func ParseClusterLine(fields []string) (ClusterSpec, error) {
	c := ClusterSpec{}
	if len(fields) == 0 || fields[0] != "cluster" {
		return c, fmt.Errorf("topology: not a cluster line")
	}
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return c, fmt.Errorf("topology: cluster field %q wants key=value", f)
		}
		var err error
		switch key {
		case "nodes":
			c.Nodes, err = strconv.Atoi(val)
		case "nics":
			c.NICsPerNode, err = strconv.Atoi(val)
		case "nic":
			c.NICBW, err = units.ParseBandwidth(val)
		case "leaves":
			c.Leaves, err = strconv.Atoi(val)
		case "uplink":
			c.LeafUplinkBW, err = units.ParseBandwidth(val)
		case "nicat":
			c.NICAt = val
		default:
			err = fmt.Errorf("unknown field %q", key)
		}
		if err != nil {
			return c, fmt.Errorf("topology: cluster %s: %w", key, err)
		}
	}
	if err := c.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// ParseClusterFile reads a combined deployment spec: the machine grammar of
// ParseSpec plus one "cluster ..." line. The cluster line may appear
// anywhere; a document without one returns a nil ClusterSpec.
func ParseClusterFile(r io.Reader) (*Machine, *ClusterSpec, error) {
	var machineLines strings.Builder
	var cs *ClusterSpec
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) > 0 && fields[0] == "cluster" {
			if cs != nil {
				return nil, nil, fmt.Errorf("topology: spec line %d: duplicate cluster line", lineNo)
			}
			c, err := ParseClusterLine(fields)
			if err != nil {
				return nil, nil, fmt.Errorf("topology: spec line %d: %w", lineNo, err)
			}
			cs = &c
			continue
		}
		machineLines.WriteString(line)
		machineLines.WriteString("\n")
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("topology: reading spec: %w", err)
	}
	m, err := ParseSpec(strings.NewReader(machineLines.String()))
	if err != nil {
		return nil, nil, err
	}
	return m, cs, nil
}
