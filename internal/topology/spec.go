package topology

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"moment/internal/units"
)

// FormatSpec serializes a machine to the textual spec format, the offline
// stand-in for live lspci/dmidecode extraction. The format is line-based:
//
//	machine A
//	qpi 26GiB/s
//	dram 384GiB 36GiB/s
//	gpus 4 mem=40GiB cachefrac=0.50
//	ssds 8 cap=3.84TiB bw=6GiB/s iops=930000
//	pcie x16=20GiB/s x4=7GiB/s
//	nodes 1 nic=0Gbps
//	point rc0 root bays=4 gpuslots=0
//	point sw0 switch parent=rc0 uplink=20GiB/s bays=4 gpuslots=4
//	nvlink 0 1 bw=50GiB/s
func FormatSpec(m *Machine) string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine %s\n", m.Name)
	fmt.Fprintf(&b, "qpi %.3fGiB/s\n", m.QPIBW.GiBpsf())
	fmt.Fprintf(&b, "dram %.3fGiB %.3fGiB/s\n", m.DRAMPerSocket.GiBf(), m.DRAMBW.GiBpsf())
	fmt.Fprintf(&b, "gpus %d mem=%.3fGiB cachefrac=%.4f\n", m.NumGPUs, m.GPUMemory.GiBf(), m.GPUCacheFrac)
	fmt.Fprintf(&b, "ssds %d cap=%.3fGiB bw=%.3fGiB/s iops=%.0f\n",
		m.NumSSDs, m.SSDCapacity.GiBf(), m.SSDBW.GiBpsf(), m.SSDIOPS)
	fmt.Fprintf(&b, "pcie x16=%.3fGiB/s x4=%.3fGiB/s\n", m.PCIeX16.GiBpsf(), m.PCIeX4.GiBpsf())
	fmt.Fprintf(&b, "nodes %d nic=%.3fGiB/s\n", m.NumNodes, m.NICBW.GiBpsf())
	for _, p := range m.Points {
		switch p.Kind {
		case RootComplex:
			fmt.Fprintf(&b, "point %s root bays=%d gpuslots=%d\n", p.ID, p.Bays, p.GPUSlots)
		case Switch:
			fmt.Fprintf(&b, "point %s switch parent=%s uplink=%.3fGiB/s bays=%d gpuslots=%d\n",
				p.ID, p.Parent, p.UplinkBW.GiBpsf(), p.Bays, p.GPUSlots)
		}
	}
	for _, nv := range m.NVLinks {
		fmt.Fprintf(&b, "nvlink %d %d bw=%.3fGiB/s\n", nv.A, nv.B, m.NVLinkBW.GiBpsf())
	}
	return b.String()
}

// ParseSpec reads a machine spec produced by FormatSpec (or hand-written).
// Unknown directives are rejected so typos surface early.
func ParseSpec(r io.Reader) (*Machine, error) {
	m := &Machine{NumNodes: 1}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if err := parseSpecLine(m, fields); err != nil {
			return nil, fmt.Errorf("topology: spec line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topology: reading spec: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

func parseSpecLine(m *Machine, fields []string) error {
	kv := func(s, key string) (string, bool) {
		if strings.HasPrefix(s, key+"=") {
			return s[len(key)+1:], true
		}
		return "", false
	}
	switch fields[0] {
	case "machine":
		if len(fields) != 2 {
			return fmt.Errorf("machine wants one name")
		}
		m.Name = fields[1]
	case "qpi":
		if len(fields) != 2 {
			return fmt.Errorf("qpi wants one rate")
		}
		bw, err := units.ParseBandwidth(fields[1])
		if err != nil {
			return err
		}
		m.QPIBW = bw
	case "dram":
		if len(fields) != 3 {
			return fmt.Errorf("dram wants size and rate")
		}
		sz, err := units.ParseBytes(fields[1])
		if err != nil {
			return err
		}
		bw, err := units.ParseBandwidth(fields[2])
		if err != nil {
			return err
		}
		m.DRAMPerSocket, m.DRAMBW = sz, bw
	case "gpus":
		if len(fields) < 2 {
			return fmt.Errorf("gpus wants a count")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		m.NumGPUs = n
		for _, f := range fields[2:] {
			if v, ok := kv(f, "mem"); ok {
				if m.GPUMemory, err = units.ParseBytes(v); err != nil {
					return err
				}
			} else if v, ok := kv(f, "cachefrac"); ok {
				if m.GPUCacheFrac, err = strconv.ParseFloat(v, 64); err != nil {
					return err
				}
			} else {
				return fmt.Errorf("gpus: unknown field %q", f)
			}
		}
	case "ssds":
		if len(fields) < 2 {
			return fmt.Errorf("ssds wants a count")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		m.NumSSDs = n
		for _, f := range fields[2:] {
			if v, ok := kv(f, "cap"); ok {
				if m.SSDCapacity, err = units.ParseBytes(v); err != nil {
					return err
				}
			} else if v, ok := kv(f, "bw"); ok {
				if m.SSDBW, err = units.ParseBandwidth(v); err != nil {
					return err
				}
			} else if v, ok := kv(f, "iops"); ok {
				if m.SSDIOPS, err = strconv.ParseFloat(v, 64); err != nil {
					return err
				}
			} else {
				return fmt.Errorf("ssds: unknown field %q", f)
			}
		}
	case "pcie":
		for _, f := range fields[1:] {
			if v, ok := kv(f, "x16"); ok {
				bw, err := units.ParseBandwidth(v)
				if err != nil {
					return err
				}
				m.PCIeX16 = bw
			} else if v, ok := kv(f, "x4"); ok {
				bw, err := units.ParseBandwidth(v)
				if err != nil {
					return err
				}
				m.PCIeX4 = bw
			} else {
				return fmt.Errorf("pcie: unknown field %q", f)
			}
		}
	case "nodes":
		if len(fields) < 2 {
			return fmt.Errorf("nodes wants a count")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		m.NumNodes = n
		for _, f := range fields[2:] {
			if v, ok := kv(f, "nic"); ok {
				if m.NICBW, err = units.ParseBandwidth(v); err != nil {
					return err
				}
			} else {
				return fmt.Errorf("nodes: unknown field %q", f)
			}
		}
	case "point":
		if len(fields) < 3 {
			return fmt.Errorf("point wants id and kind")
		}
		p := AttachPoint{ID: fields[1]}
		switch fields[2] {
		case "root":
			p.Kind = RootComplex
		case "switch":
			p.Kind = Switch
		default:
			return fmt.Errorf("point: unknown kind %q", fields[2])
		}
		for _, f := range fields[3:] {
			if v, ok := kv(f, "parent"); ok {
				p.Parent = v
			} else if v, ok := kv(f, "uplink"); ok {
				bw, err := units.ParseBandwidth(v)
				if err != nil {
					return err
				}
				p.UplinkBW = bw
			} else if v, ok := kv(f, "bays"); ok {
				n, err := strconv.Atoi(v)
				if err != nil {
					return err
				}
				p.Bays = n
			} else if v, ok := kv(f, "gpuslots"); ok {
				n, err := strconv.Atoi(v)
				if err != nil {
					return err
				}
				p.GPUSlots = n
			} else {
				return fmt.Errorf("point: unknown field %q", f)
			}
		}
		m.Points = append(m.Points, p)
	case "nvlink":
		if len(fields) < 3 {
			return fmt.Errorf("nvlink wants two gpu indices")
		}
		a, err := strconv.Atoi(fields[1])
		if err != nil {
			return err
		}
		b, err := strconv.Atoi(fields[2])
		if err != nil {
			return err
		}
		for _, f := range fields[3:] {
			if v, ok := kv(f, "bw"); ok {
				bw, err := units.ParseBandwidth(v)
				if err != nil {
					return err
				}
				m.NVLinkBW = bw
			} else {
				return fmt.Errorf("nvlink: unknown field %q", f)
			}
		}
		m.NVLinks = append(m.NVLinks, NVLinkPair{A: a, B: b})
	default:
		return fmt.Errorf("unknown directive %q", fields[0])
	}
	return nil
}
