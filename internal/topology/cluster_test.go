package topology

import (
	"strings"
	"testing"

	"moment/internal/units"
)

func TestClusterSpecRoundTrip(t *testing.T) {
	for _, cs := range []ClusterSpec{
		{Nodes: 4, NICBW: units.Gbps(100)},
		{Nodes: 8, NICsPerNode: 2, NICBW: units.Gbps(100), Leaves: 2, LeafUplinkBW: units.Gbps(400)},
		{Nodes: 3, NICBW: units.Gbps(25), NICAt: "rc1"},
	} {
		line := FormatClusterSpec(cs)
		got, err := ParseClusterLine(strings.Fields(strings.TrimSpace(line)))
		if err != nil {
			t.Fatalf("ParseClusterLine(%q): %v", line, err)
		}
		want := cs.Defaults()
		got = got.Defaults()
		if got.Nodes != want.Nodes || got.NICsPerNode != want.NICsPerNode ||
			got.Leaves != want.Leaves || got.NICAt != want.NICAt {
			t.Errorf("round trip %q: got %+v want %+v", line, got, want)
		}
		if diff := float64(got.NICBW - want.NICBW); diff > 1e6 || diff < -1e6 {
			t.Errorf("NICBW drifted: got %v want %v", got.NICBW, want.NICBW)
		}
	}
}

func TestClusterSpecValidate(t *testing.T) {
	bad := []ClusterSpec{
		{Nodes: 0},
		{Nodes: 4}, // multi-node without NIC bandwidth
		{Nodes: 2, NICBW: units.Gbps(100), Leaves: 3},
	}
	for _, cs := range bad {
		if err := cs.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted", cs)
		}
	}
	if err := (ClusterSpec{Nodes: 1}).Validate(); err != nil {
		t.Errorf("single node without NIC rejected: %v", err)
	}
}

func TestClusterSpecTopologyHelpers(t *testing.T) {
	cs := ClusterSpec{Nodes: 6, NICBW: units.Gbps(100), Leaves: 2, LeafUplinkBW: units.Gbps(200)}
	// Contiguous blocks: nodes 0-2 on leaf 0, nodes 3-5 on leaf 1.
	for j, want := range []int{0, 0, 0, 1, 1, 1} {
		if got := cs.LeafOf(j); got != want {
			t.Errorf("LeafOf(%d) = %d, want %d", j, got, want)
		}
	}
	// 3 nodes x 100 Gbps into a 200 Gbps uplink = 1.5x oversubscribed.
	if got := cs.Oversubscription(); got < 1.49 || got > 1.51 {
		t.Errorf("Oversubscription = %v, want 1.5", got)
	}
	if !(ClusterSpec{Nodes: 4, NICBW: units.Gbps(100)}).NonBlocking() {
		t.Error("single unbounded leaf should be non-blocking")
	}
	if (ClusterSpec{Nodes: 4, NICBW: units.Gbps(100)}).Oversubscription() != 0 {
		t.Error("non-blocking spec reports nonzero oversubscription")
	}
}

func TestParseClusterFile(t *testing.T) {
	m := MachineB()
	doc := FormatSpec(m) + FormatClusterSpec(ClusterSpec{
		Nodes: 4, NICBW: units.Gbps(100), Leaves: 2, LeafUplinkBW: units.Gbps(150),
	})
	gm, cs, err := ParseClusterFile(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("ParseClusterFile: %v", err)
	}
	if gm.Name != m.Name || gm.NumGPUs != m.NumGPUs || gm.NumSSDs != m.NumSSDs {
		t.Errorf("machine did not round trip: %+v", gm)
	}
	if cs == nil || cs.Nodes != 4 || cs.Defaults().Leaves != 2 {
		t.Errorf("cluster spec did not round trip: %+v", cs)
	}
	// No cluster line -> nil spec, machine still parses.
	gm, cs, err = ParseClusterFile(strings.NewReader(FormatSpec(m)))
	if err != nil || cs != nil || gm == nil {
		t.Errorf("machine-only doc: m=%v cs=%v err=%v", gm, cs, err)
	}
	// Duplicate cluster lines are rejected.
	dup := doc + FormatClusterSpec(ClusterSpec{Nodes: 2, NICBW: units.Gbps(10)})
	if _, _, err := ParseClusterFile(strings.NewReader(dup)); err == nil {
		t.Error("duplicate cluster line accepted")
	}
}
