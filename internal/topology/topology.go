// Package topology models the physical communication topology of a
// multi-GPU, multi-SSD server: root complexes, PCIe switches, slots, and
// the links (PCIe, QPI/UPI, NVLink) between them (paper §2.3, Figures 1–2).
//
// In the paper this information is extracted from a live machine with
// lspci/dmidecode; here a Machine is either built programmatically (the
// evaluated Machines A, B and C of Table 1 ship as constructors) or parsed
// from a textual spec (see spec.go), which substitutes for hardware
// extraction while exercising the same downstream pipeline.
package topology

import (
	"fmt"
	"sort"

	"moment/internal/units"
)

// Kind classifies a topology node.
type Kind int

const (
	// RootComplex is a CPU socket's PCIe root complex (with attached DRAM).
	RootComplex Kind = iota
	// Switch is a PCIe switch (PLX).
	Switch
	// GPUDev is a GPU placed in an x16 dual-width slot.
	GPUDev
	// SSDDev is an NVMe SSD placed in an x4 U.2 bay.
	SSDDev
	// NICDev is a network interface card (occupies a slot; used by Machine C).
	NICDev
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case RootComplex:
		return "root-complex"
	case Switch:
		return "switch"
	case GPUDev:
		return "gpu"
	case SSDDev:
		return "ssd"
	case NICDev:
		return "nic"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// AttachPoint is a place devices can be plugged into: a root complex or a
// PCIe switch, with a fixed uplink into the tree and a slot inventory.
type AttachPoint struct {
	ID     string // unique, e.g. "rc0", "sw1"
	Kind   Kind   // RootComplex or Switch
	Parent string // parent attach point ID; "" for root complexes

	// UplinkBW is the per-direction bandwidth of the link to Parent
	// (the PCIe bus the paper numbers, e.g. Bus 9, Bus 11, Bus 16).
	// Unused for root complexes, which peer over QPI.
	UplinkBW units.Bandwidth

	// Bays is the number of x4 U.2 bays (SSD-capable).
	Bays int
	// GPUSlots is the number of x16 dual-width slots (GPU-capable).
	GPUSlots int
}

// NVLinkPair connects two GPU indices with a point-to-point NVLink bridge.
type NVLinkPair struct {
	A, B int
}

// Machine describes a server's fixed infrastructure plus its device
// inventory. Device positions are NOT part of Machine — they live in
// Placement — because choosing them is exactly Moment's job.
type Machine struct {
	Name   string
	Points []AttachPoint // root complexes first, then switches

	// QPIBW is the per-direction bandwidth of the socket interconnect
	// (QPI/UPI) joining the root complexes.
	QPIBW units.Bandwidth

	// Per-socket CPU memory used as a feature cache, and its effective
	// egress bandwidth toward the root complex.
	DRAMPerSocket units.Bytes
	DRAMBW        units.Bandwidth

	// Device inventory.
	NumGPUs int
	NumSSDs int

	// GPUMemory is per-GPU HBM; GPUCacheFrac of it is usable as a feature
	// cache (the rest holds model state, buffers, sampling frontier).
	GPUMemory    units.Bytes
	GPUCacheFrac float64

	// SSD characteristics (per device).
	SSDCapacity units.Bytes
	SSDBW       units.Bandwidth // sequential-ish read bandwidth
	SSDIOPS     float64         // 4K random read IOPS ceiling

	// Link generation bandwidths (per direction).
	PCIeX16 units.Bandwidth // GPU slots and switch uplinks
	PCIeX4  units.Bandwidth // U.2 bays

	// NVLink bridges between GPU indices (optional; Fig 18).
	NVLinks  []NVLinkPair
	NVLinkBW units.Bandwidth

	// Cluster parameters (Machine C): when NumNodes > 1 the machine is one
	// node of a cluster joined by NICBW links.
	NumNodes int
	NICBW    units.Bandwidth
}

// Point returns the attach point with the given ID.
func (m *Machine) Point(id string) (*AttachPoint, error) {
	for i := range m.Points {
		if m.Points[i].ID == id {
			return &m.Points[i], nil
		}
	}
	return nil, fmt.Errorf("topology: no attach point %q on %s", id, m.Name)
}

// RootComplexes returns the IDs of the machine's root complexes in order.
func (m *Machine) RootComplexes() []string {
	var ids []string
	for _, p := range m.Points {
		if p.Kind == RootComplex {
			ids = append(ids, p.ID)
		}
	}
	return ids
}

// Socket returns the root complex ID a point ultimately hangs off.
func (m *Machine) Socket(id string) (string, error) {
	seen := 0
	for {
		p, err := m.Point(id)
		if err != nil {
			return "", err
		}
		if p.Kind == RootComplex {
			return p.ID, nil
		}
		id = p.Parent
		if seen++; seen > len(m.Points) {
			return "", fmt.Errorf("topology: cycle at %q on %s", id, m.Name)
		}
	}
}

// Depth returns how many uplinks separate the point from its root complex.
func (m *Machine) Depth(id string) (int, error) {
	d := 0
	for {
		p, err := m.Point(id)
		if err != nil {
			return 0, err
		}
		if p.Kind == RootComplex {
			return d, nil
		}
		id = p.Parent
		if d++; d > len(m.Points) {
			return 0, fmt.Errorf("topology: cycle at %q on %s", id, m.Name)
		}
	}
}

// Validate checks structural invariants: unique IDs, valid parents, at least
// one root complex, acyclic switch tree, sane inventory.
func (m *Machine) Validate() error {
	if len(m.Points) == 0 {
		return fmt.Errorf("topology: %s has no attach points", m.Name)
	}
	ids := make(map[string]bool, len(m.Points))
	rcs := 0
	for _, p := range m.Points {
		if p.ID == "" {
			return fmt.Errorf("topology: %s has an unnamed attach point", m.Name)
		}
		if ids[p.ID] {
			return fmt.Errorf("topology: duplicate attach point %q", p.ID)
		}
		ids[p.ID] = true
		switch p.Kind {
		case RootComplex:
			rcs++
			if p.Parent != "" {
				return fmt.Errorf("topology: root complex %q has a parent", p.ID)
			}
		case Switch:
			if p.Parent == "" {
				return fmt.Errorf("topology: switch %q has no parent", p.ID)
			}
			if p.UplinkBW <= 0 {
				return fmt.Errorf("topology: switch %q has no uplink bandwidth", p.ID)
			}
		default:
			return fmt.Errorf("topology: attach point %q has device kind %v", p.ID, p.Kind)
		}
		if p.Bays < 0 || p.GPUSlots < 0 {
			return fmt.Errorf("topology: %q has negative slot counts", p.ID)
		}
	}
	if rcs == 0 {
		return fmt.Errorf("topology: %s has no root complex", m.Name)
	}
	for _, p := range m.Points {
		if p.Kind != Switch {
			continue
		}
		if !ids[p.Parent] {
			return fmt.Errorf("topology: switch %q parent %q unknown", p.ID, p.Parent)
		}
		if _, err := m.Socket(p.ID); err != nil {
			return err
		}
	}
	if m.NumGPUs < 0 || m.NumSSDs < 0 {
		return fmt.Errorf("topology: %s has negative device counts", m.Name)
	}
	if g, s := m.TotalGPUSlots(), m.TotalBays(); m.NumGPUs > g || m.NumSSDs > s {
		return fmt.Errorf("topology: %s inventory (%d GPUs, %d SSDs) exceeds slots (%d, %d)",
			m.Name, m.NumGPUs, m.NumSSDs, g, s)
	}
	for _, nv := range m.NVLinks {
		if nv.A < 0 || nv.B < 0 || nv.A >= m.NumGPUs || nv.B >= m.NumGPUs || nv.A == nv.B {
			return fmt.Errorf("topology: bad NVLink pair (%d,%d)", nv.A, nv.B)
		}
	}
	return nil
}

// TotalGPUSlots sums x16 dual-width slots across attach points.
func (m *Machine) TotalGPUSlots() int {
	n := 0
	for _, p := range m.Points {
		n += p.GPUSlots
	}
	return n
}

// TotalBays sums U.2 bays across attach points.
func (m *Machine) TotalBays() int {
	n := 0
	for _, p := range m.Points {
		n += p.Bays
	}
	return n
}

// AggregateSSDBW is the peak combined SSD read bandwidth (e.g. 48 GiB/s for
// 8× P5510 on Machine A, §2.2).
func (m *Machine) AggregateSSDBW() units.Bandwidth {
	return units.Bandwidth(float64(m.SSDBW) * float64(m.NumSSDs))
}

// Clone deep-copies the machine.
func (m *Machine) Clone() *Machine {
	c := *m
	c.Points = append([]AttachPoint(nil), m.Points...)
	c.NVLinks = append([]NVLinkPair(nil), m.NVLinks...)
	return &c
}

// WithNVLink returns a copy with NVLink bridges between the given GPU pairs
// (Fig 18 adds GPU0–GPU1 and GPU2–GPU3 bridges).
func (m *Machine) WithNVLink(bw units.Bandwidth, pairs ...NVLinkPair) *Machine {
	c := m.Clone()
	c.NVLinkBW = bw
	c.NVLinks = append(c.NVLinks, pairs...)
	return c
}

// Placement assigns every GPU and SSD to an attach point. Devices of the
// same kind are interchangeable, so a placement is fully described by the
// attach point of each device index.
type Placement struct {
	Name  string
	GPUAt []string // len == Machine.NumGPUs
	SSDAt []string // len == Machine.NumSSDs
}

// Clone deep-copies the placement.
func (p *Placement) Clone() *Placement {
	return &Placement{
		Name:  p.Name,
		GPUAt: append([]string(nil), p.GPUAt...),
		SSDAt: append([]string(nil), p.SSDAt...),
	}
}

// Counts returns the number of GPUs and SSDs placed at each attach point.
func (p *Placement) Counts() (gpus, ssds map[string]int) {
	gpus = make(map[string]int)
	ssds = make(map[string]int)
	for _, at := range p.GPUAt {
		gpus[at]++
	}
	for _, at := range p.SSDAt {
		ssds[at]++
	}
	return gpus, ssds
}

// Validate checks the placement against the machine's slot inventory.
func (p *Placement) Validate(m *Machine) error {
	if len(p.GPUAt) != m.NumGPUs {
		return fmt.Errorf("topology: placement has %d GPUs, machine %s has %d",
			len(p.GPUAt), m.Name, m.NumGPUs)
	}
	if len(p.SSDAt) != m.NumSSDs {
		return fmt.Errorf("topology: placement has %d SSDs, machine %s has %d",
			len(p.SSDAt), m.Name, m.NumSSDs)
	}
	gpus, ssds := p.Counts()
	for at, n := range gpus {
		pt, err := m.Point(at)
		if err != nil {
			return err
		}
		if n > pt.GPUSlots {
			return fmt.Errorf("topology: %d GPUs at %q but only %d x16 slots", n, at, pt.GPUSlots)
		}
	}
	for at, n := range ssds {
		pt, err := m.Point(at)
		if err != nil {
			return err
		}
		if n > pt.Bays {
			return fmt.Errorf("topology: %d SSDs at %q but only %d bays", n, at, pt.Bays)
		}
	}
	return nil
}

// String renders the placement compactly, e.g.
// "moment: gpu[rc0 sw1 sw1 rc1] ssd[rc1:4 sw0:2 sw1:2]".
func (p *Placement) String() string {
	_, ssds := p.Counts()
	keys := make([]string, 0, len(ssds))
	for k := range ssds {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := p.Name + ": gpu["
	for i, at := range p.GPUAt {
		if i > 0 {
			s += " "
		}
		s += at
	}
	s += "] ssd["
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s:%d", k, ssds[k])
	}
	return s + "]"
}
