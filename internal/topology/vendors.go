package topology

import "moment/internal/units"

// Vendor-inspired chassis the paper points at: §2.3 cites build-to-order
// servers (Dell custom servers, the Supermicro SYS-420GP-TNR 4U
// SuperServer) and footnote 1 cites the H3 Falcon 4016's cascaded-switch
// PCIe expansion as a real-world asymmetric topology. These builders give
// the placement search richer, larger search spaces than Machines A/B and
// back the "wide applicability to various server topologies" claim of
// §3.3.

// Supermicro420GP models a SYS-420GP-TNR-class 4U dual-socket chassis:
// each socket drives two PLX switches, each switch carrying two x16
// dual-width slots and two U.2 bays, plus four direct bays per socket —
// a balanced topology with a much larger slot inventory than Machine A.
func Supermicro420GP() *Machine {
	return &Machine{
		Name: "SM420GP",
		Points: []AttachPoint{
			{ID: "rc0", Kind: RootComplex, Bays: 4},
			{ID: "rc1", Kind: RootComplex, Bays: 4},
			{ID: "sw0", Kind: Switch, Parent: "rc0", UplinkBW: PCIe4x16, Bays: 2, GPUSlots: 2},
			{ID: "sw1", Kind: Switch, Parent: "rc0", UplinkBW: PCIe4x16, Bays: 2, GPUSlots: 2},
			{ID: "sw2", Kind: Switch, Parent: "rc1", UplinkBW: PCIe4x16, Bays: 2, GPUSlots: 2},
			{ID: "sw3", Kind: Switch, Parent: "rc1", UplinkBW: PCIe4x16, Bays: 2, GPUSlots: 2},
		},
		QPIBW:         QPIRate,
		DRAMPerSocket: units.GB(512),
		DRAMBW:        DRAMServeBW,
		NumGPUs:       4,
		NumSSDs:       8,
		GPUMemory:     units.GB(40),
		GPUCacheFrac:  0.15,
		SSDCapacity:   units.TB(3.84),
		SSDBW:         P5510BW,
		SSDIOPS:       P5510IOPS,
		PCIeX16:       PCIe4x16,
		PCIeX4:        PCIe4x4,
		NVLinkBW:      NVLinkBridgeBW,
		NumNodes:      1,
	}
}

// H3Falcon4016 models an H3 Falcon 4016-style PCIe expansion chassis
// (footnote 1): a deep cascade of switches below one root complex — sw0
// feeds sw1 feeds sw2 — giving all-to-all GPU P2P at the price of a
// heavily shared trunk, the most asymmetric topology in the catalog.
func H3Falcon4016() *Machine {
	return &Machine{
		Name: "Falcon4016",
		Points: []AttachPoint{
			{ID: "rc0", Kind: RootComplex, GPUSlots: 1},
			{ID: "rc1", Kind: RootComplex, Bays: 8, GPUSlots: 1},
			{ID: "sw0", Kind: Switch, Parent: "rc0", UplinkBW: PCIe4x16, Bays: 2, GPUSlots: 2},
			{ID: "sw1", Kind: Switch, Parent: "sw0", UplinkBW: PCIe4x16, Bays: 2, GPUSlots: 2},
			{ID: "sw2", Kind: Switch, Parent: "sw1", UplinkBW: PCIe4x16, Bays: 2, GPUSlots: 2},
		},
		QPIBW:         QPIRate,
		DRAMPerSocket: units.GB(256),
		DRAMBW:        DRAMServeBW,
		NumGPUs:       4,
		NumSSDs:       8,
		GPUMemory:     units.GB(40),
		GPUCacheFrac:  0.15,
		SSDCapacity:   units.TB(3.84),
		SSDBW:         P5510BW,
		SSDIOPS:       P5510IOPS,
		PCIeX16:       PCIe4x16,
		PCIeX4:        PCIe4x4,
		NVLinkBW:      NVLinkBridgeBW,
		NumNodes:      1,
	}
}

// Catalog lists every built-in machine, evaluation platforms and vendor
// chassis alike.
func MachineCatalog() []*Machine {
	return []*Machine{MachineA(), MachineB(), MachineC(), Supermicro420GP(), H3Falcon4016()}
}
