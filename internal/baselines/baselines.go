// Package baselines models the comparison systems of §4.1: M-GIDS (the
// multi-GPU extension of GIDS with PyTorch DDP and statically partitioned
// SSDs), M-Hyperion (Hyperion's single-GPU I/O stack extended to multiple
// GPUs sharing SSDs), and DistDGL (the four-machine distributed baseline
// with CPU sampling and network feature fetch). The single-machine
// baselines drive the same epoch simulator as Moment with the constraints
// the paper describes; DistDGL is an analytic cluster model.
package baselines

import (
	"fmt"
	"math"

	"moment/internal/gnn"
	"moment/internal/topology"
	"moment/internal/trainsim"
	"moment/internal/units"
)

// BaMMetadataRatio is the GPU-memory page-cache metadata overhead of the
// BaM-based GIDS I/O stack, as a fraction of the on-SSD feature store.
// Calibrated so that M-GIDS fits IGB-HOM (1.1 TiB -> ~17 GiB of metadata
// in a 40 GiB A100) but runs out of GPU memory on UK (3.2 TiB) and CL
// (4.1 TiB), matching §4.2.
const BaMMetadataRatio = 1.0 / 64

// BaMBudgetFrac is the fraction of GPU memory BaM may use for its page
// cache plus metadata (the remainder holds model state and buffers).
const BaMBudgetFrac = 0.75

// MGIDS simulates the M-GIDS baseline on machine m under placement p:
// hash data placement (GIDS does not plan placement), statically
// partitioned SSDs (each GPU owns NumSSDs/NumGPUs drives holding a full
// dataset replica), and a BaM page cache whose metadata consumes GPU
// memory before any feature caching happens.
func MGIDS(m *topology.Machine, p *topology.Placement, w trainsim.Workload) (*trainsim.Result, error) {
	if m.NumGPUs <= 0 {
		return nil, fmt.Errorf("baselines: M-GIDS needs GPUs")
	}
	meta := float64(w.Dataset.FeatureStorage.Int64()) * BaMMetadataRatio
	gpuBytes := float64(m.GPUMemory.Int64())
	// BaM can devote most of the GPU beyond model state to its page cache
	// and metadata; metadata is charged first.
	budget := gpuBytes * BaMBudgetFrac
	usable := budget - meta
	if usable <= 0 {
		return &trainsim.Result{OOM: fmt.Sprintf(
			"gpu memory: BaM page-cache metadata %.1f GiB exceeds the %.1f GiB budget of a %.0f GiB GPU",
			meta/(1<<30), budget/(1<<30), gpuBytes/(1<<30))}, nil
	}
	mm := m.Clone()
	// The page cache is reactive (LRU over 4K pages) rather than
	// hotness-planned; cap its effective size at the machine's planned
	// cache fraction so M-GIDS never benefits from a larger cache than
	// Moment's own conservative budget.
	mm.GPUCacheFrac = math.Min(usable/gpuBytes, m.GPUCacheFrac)
	// GIDS issues one 4 KiB NVMe command per feature row from CUDA
	// threads, without Moment's command coalescing, so its SSDs are
	// IOPS-bound: effective per-device bandwidth = IOPS x 4 KiB.
	iopsBound := mm.SSDIOPS * 4096
	if iopsBound > 0 && iopsBound < float64(mm.SSDBW) {
		mm.SSDBW = units.Bandwidth(iopsBound)
	}
	return trainsim.SimulateEpoch(trainsim.Config{
		Machine:   mm,
		Placement: p,
		Workload:  w,
		Policy:    trainsim.PolicyHash,
		Mode:      trainsim.PartitionedSSD,
	})
}

// MHyperion simulates the M-Hyperion baseline: Hyperion's GPU-initiated
// I/O stack extended to multiple GPUs with shared SSD access and
// replicated hot caches, but no topology-aware placement planning — the
// hardware placement is whatever the operator chose (Figs 3–6 sweep the
// four classic layouts through this entry point).
func MHyperion(m *topology.Machine, p *topology.Placement, w trainsim.Workload) (*trainsim.Result, error) {
	return trainsim.SimulateEpoch(trainsim.Config{
		Machine:   m,
		Placement: p,
		Workload:  w,
		Policy:    trainsim.PolicyDDAK, // Hyperion caches hot vertices...
		Mode:      trainsim.SharedSSD,
		Cache:     trainsim.CacheReplicated,
	})
}

// DistDGLConfig calibrates the distributed baseline.
type DistDGLConfig struct {
	// Machines is the cluster size (Table 1: 4).
	Machines int
	// CPUSampleRate is sampled edges/second/machine for CPU-based
	// sampling (the paper's core DistDGL bottleneck, §2.2).
	CPUSampleRate float64
	// NetGoodput is the effective network goodput per machine including
	// request pipelining; the paper observed DistDGL peaking near 20 Gbps
	// on the wire despite 100 Gbps NICs.
	NetGoodput units.Bandwidth
	// MemExpansion is DistDGL's working-set multiplier over the raw
	// dataset size (§2.2: "up to 5x").
	MemExpansion float64
}

// DefaultDistDGL returns the Cluster C configuration.
func DefaultDistDGL() DistDGLConfig {
	return DistDGLConfig{
		Machines:      4,
		CPUSampleRate: 2.5e7,
		NetGoodput:    units.Gbps(25),
		MemExpansion:  5,
	}
}

// DistDGLResult mirrors the relevant subset of trainsim.Result.
type DistDGLResult struct {
	OOM        string
	EpochTime  units.Duration
	SampleTime units.Duration
	NetTime    units.Duration
	ComputeT   units.Duration
	Throughput float64 // training vertices per second
}

// DistDGL analytically models an epoch of DistDGL on cluster machine cm
// (Table 1 column C). Graph data is partitioned across machines; each
// trainer samples on the CPU, fetches ~ (Machines-1)/Machines of features
// remotely, and trains on its local GPU.
func DistDGL(cm *topology.Machine, cfg DistDGLConfig, w trainsim.Workload) (*DistDGLResult, error) {
	if cfg.Machines <= 0 || cfg.CPUSampleRate <= 0 || cfg.NetGoodput <= 0 {
		return nil, fmt.Errorf("baselines: bad DistDGL config %+v", cfg)
	}
	w = w.Defaults()
	w.NumGPUs = cfg.Machines * cm.NumGPUs
	d := w.Dataset

	// Memory feasibility: the partitioned dataset plus framework expansion
	// must fit the cluster's aggregate CPU memory (§4.2: DistDGL OOMs on
	// IG, UK and CL).
	datasetBytes := float64(d.TopologyStorage.Int64() + d.FeatureStorage.Int64())
	clusterMem := float64(cm.DRAMPerSocket.Int64()) * float64(len(cm.RootComplexes())) * float64(cfg.Machines)
	if need := datasetBytes * cfg.MemExpansion; need > clusterMem {
		return &DistDGLResult{OOM: fmt.Sprintf(
			"cluster memory: %.1f TiB working set (%.0fx expansion) exceeds %.1f TiB across %d machines",
			need/(1<<40), cfg.MemExpansion, clusterMem/(1<<40), cfg.Machines)}, nil
	}

	stats, err := trainsim.ComputeStats(w, 0)
	if err != nil {
		return nil, err
	}
	iters := math.Ceil(float64(stats.BatchesPerEpoch) / float64(w.NumGPUs))

	// Per-iteration stage costs per trainer.
	sample := stats.EdgesPerBatch / cfg.CPUSampleRate
	remoteFrac := float64(cfg.Machines-1) / float64(cfg.Machines)
	netBytes := stats.FetchBytesBatch * remoteFrac
	net := netBytes / float64(cfg.NetGoodput)
	cost := gnn.DefaultCostModel(w.Model, d.FeatureDim, 2)
	comp, err := cost.IterationSeconds(int64(stats.UniquePerBatch), int64(stats.EdgesPerBatch))
	if err != nil {
		return nil, err
	}
	// DistDGL pipelines sampling with training, but CPU sampling and
	// network fetch share the host and tend to serialize in practice;
	// the epoch follows the dominant stage plus pipeline fill.
	stageMax := math.Max(sample, math.Max(net, comp))
	fill := sample + net + comp - stageMax
	epoch := stageMax*iters + fill

	res := &DistDGLResult{
		EpochTime:  units.Seconds(epoch),
		SampleTime: units.Seconds(sample * iters),
		NetTime:    units.Seconds(net * iters),
		ComputeT:   units.Seconds(comp * iters),
	}
	if epoch > 0 {
		res.Throughput = float64(d.TrainVertices()) / epoch
	}
	return res, nil
}
