package baselines

import (
	"strings"
	"testing"

	"moment/internal/gnn"
	"moment/internal/graph"
	"moment/internal/topology"
	"moment/internal/trainsim"
)

func ds(t *testing.T, name string) graph.Dataset {
	t.Helper()
	d, err := graph.DatasetByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func momentEpoch(t *testing.T, m *topology.Machine, p *topology.Placement, w trainsim.Workload) *trainsim.Result {
	t.Helper()
	r, err := trainsim.SimulateEpoch(trainsim.Config{Machine: m, Placement: p, Workload: w})
	if err != nil {
		t.Fatal(err)
	}
	if r.OOM != "" {
		t.Fatalf("moment OOM: %s", r.OOM)
	}
	return r
}

func TestMGIDSOOMOnLargeDatasets(t *testing.T) {
	// §4.2: M-GIDS runs out of GPU memory on UK and CL (BaM page-cache
	// metadata), but runs PA and IG.
	m := topology.MachineA()
	p, err := topology.ClassicPlacement(m, topology.LayoutC)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"UK", "CL"} {
		r, err := MGIDS(m, p, trainsim.Workload{Dataset: ds(t, name), Model: gnn.KindSAGE})
		if err != nil {
			t.Fatal(err)
		}
		if r.OOM == "" {
			t.Errorf("%s: expected M-GIDS GPU-memory OOM", name)
		}
		if r.OOM != "" && !strings.Contains(r.OOM, "gpu memory") {
			t.Errorf("%s: OOM reason %q not GPU memory", name, r.OOM)
		}
	}
	for _, name := range []string{"PA", "IG"} {
		r, err := MGIDS(m, p, trainsim.Workload{Dataset: ds(t, name), Model: gnn.KindSAGE})
		if err != nil {
			t.Fatal(err)
		}
		if r.OOM != "" {
			t.Errorf("%s: unexpected M-GIDS OOM: %s", name, r.OOM)
		}
	}
}

func TestMomentOutperformsMGIDS(t *testing.T) {
	// Fig 10: Moment beats M-GIDS on every dataset it can run.
	m := topology.MachineA()
	p, err := topology.ClassicPlacement(m, topology.LayoutC)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"PA", "IG"} {
		w := trainsim.Workload{Dataset: ds(t, name), Model: gnn.KindSAGE}
		gids, err := MGIDS(m, p, w)
		if err != nil {
			t.Fatal(err)
		}
		moment := momentEpoch(t, m, p, w)
		ratio := gids.EpochTime.Sec() / moment.EpochTime.Sec()
		if ratio < 1.1 {
			t.Errorf("%s: M-GIDS/Moment ratio %.2f, want > 1.1 (paper up to 6.51x)", name, ratio)
		}
	}
}

func TestMHyperionPlacementSensitivity(t *testing.T) {
	// Figs 3-4: M-Hyperion under layout (c) beats layout (b) by ~1.9x.
	for _, mk := range []func() *topology.Machine{topology.MachineA, topology.MachineB} {
		m := mk()
		w := trainsim.Workload{Dataset: ds(t, "IG"), Model: gnn.KindSAGE}
		pb, err := topology.ClassicPlacement(m, topology.LayoutB)
		if err != nil {
			t.Fatal(err)
		}
		pc, err := topology.ClassicPlacement(m, topology.LayoutC)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := MHyperion(m, pb, w)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := MHyperion(m, pc, w)
		if err != nil {
			t.Fatal(err)
		}
		ratio := rb.EpochTime.Sec() / rc.EpochTime.Sec()
		if ratio < 1.4 {
			t.Errorf("machine %s: (b)/(c) = %.2f, want > 1.4 (paper 1.86/1.96)", m.Name, ratio)
		}
	}
}

func TestMHyperionPackedScalingFlat(t *testing.T) {
	// Figs 5-6: scaling 2->4 GPUs under placement (d) yields little or
	// negative throughput gain for the out-of-core baselines.
	epoch := func(n int) float64 {
		m := topology.MachineA().WithGPUs(n)
		p, err := topology.ClassicPlacement(m, topology.LayoutD)
		if err != nil {
			t.Fatal(err)
		}
		r, err := MHyperion(m, p, trainsim.Workload{Dataset: ds(t, "IG"), Model: gnn.KindSAGE})
		if err != nil {
			t.Fatal(err)
		}
		return r.EpochTime.Sec()
	}
	speedup := epoch(2) / epoch(4)
	if speedup > 1.25 {
		t.Errorf("packed layout 2->4 GPU speedup %.2fx, want flat (<1.25x)", speedup)
	}
}

func TestDistDGLOOM(t *testing.T) {
	// §4.2: DistDGL runs out of cluster CPU memory on IG, UK and CL.
	cm := topology.MachineC()
	for _, name := range []string{"IG", "UK", "CL"} {
		r, err := DistDGL(cm, DefaultDistDGL(), trainsim.Workload{Dataset: ds(t, name), Model: gnn.KindSAGE})
		if err != nil {
			t.Fatal(err)
		}
		if r.OOM == "" {
			t.Errorf("%s: expected DistDGL OOM", name)
		}
	}
	r, err := DistDGL(cm, DefaultDistDGL(), trainsim.Workload{Dataset: ds(t, "PA"), Model: gnn.KindSAGE})
	if err != nil {
		t.Fatal(err)
	}
	if r.OOM != "" {
		t.Errorf("PA: unexpected DistDGL OOM: %s", r.OOM)
	}
	if r.EpochTime <= 0 || r.Throughput <= 0 {
		t.Errorf("PA: degenerate result %+v", r)
	}
}

func TestMomentOutperformsDistDGL(t *testing.T) {
	// Fig 10: Moment beats DistDGL (paper: up to 3.02x on PA) while using
	// a single machine.
	w := trainsim.Workload{Dataset: ds(t, "PA"), Model: gnn.KindSAGE}
	dgl, err := DistDGL(topology.MachineC(), DefaultDistDGL(), w)
	if err != nil {
		t.Fatal(err)
	}
	m := topology.MachineA()
	p, err := topology.ClassicPlacement(m, topology.LayoutC)
	if err != nil {
		t.Fatal(err)
	}
	moment := momentEpoch(t, m, p, w)
	ratio := dgl.EpochTime.Sec() / moment.EpochTime.Sec()
	if ratio < 1.5 || ratio > 6 {
		t.Errorf("DistDGL/Moment = %.2f, want in [1.5, 6] (paper up to 3.02)", ratio)
	}
}

func TestDistDGLCPUSamplingBound(t *testing.T) {
	// The paper identifies CPU sampling as DistDGL's bottleneck.
	r, err := DistDGL(topology.MachineC(), DefaultDistDGL(), trainsim.Workload{Dataset: ds(t, "PA"), Model: gnn.KindSAGE})
	if err != nil {
		t.Fatal(err)
	}
	if r.SampleTime.Sec() < r.ComputeT.Sec() {
		t.Errorf("CPU sampling (%.1fs) should dominate GPU compute (%.1fs)",
			r.SampleTime.Sec(), r.ComputeT.Sec())
	}
}

func TestDistDGLConfigErrors(t *testing.T) {
	cm := topology.MachineC()
	w := trainsim.Workload{Dataset: ds(t, "PA")}
	bad := DefaultDistDGL()
	bad.Machines = 0
	if _, err := DistDGL(cm, bad, w); err == nil {
		t.Error("zero machines accepted")
	}
	bad = DefaultDistDGL()
	bad.CPUSampleRate = 0
	if _, err := DistDGL(cm, bad, w); err == nil {
		t.Error("zero sample rate accepted")
	}
}

func TestMGIDSNeedsGPUs(t *testing.T) {
	m := topology.MachineA().WithGPUs(0)
	p := &topology.Placement{SSDAt: make([]string, 8)}
	for i := range p.SSDAt {
		p.SSDAt[i] = "rc0"
	}
	if _, err := MGIDS(m, p, trainsim.Workload{Dataset: ds(t, "PA")}); err == nil {
		t.Error("0 GPUs accepted")
	}
}
