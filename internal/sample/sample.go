// Package sample implements mini-batch graph sampling for GNN training:
// k-hop random neighbor sampling with per-hop fan-outs (the paper uses
// 2-hop [25, 10]), batch iteration over training vertices, and the
// pre-sampling hotness profiler whose output drives DDAK (§3.3). In the
// paper this runs as CUDA kernels; here it runs on goroutine workers,
// preserving the access pattern the I/O simulator and DDAK consume.
package sample

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"moment/internal/graph"
)

// DefaultFanouts is the paper's 2-hop random neighbor sampling setting.
var DefaultFanouts = []int{25, 10}

// Batch is one sampled mini-batch: the seed vertices, the deduplicated
// set of all vertices whose features must be fetched, and the per-hop
// frontier structure (block edges) for message passing.
type Batch struct {
	Seeds []int32
	// Unique lists every distinct vertex in the sampled subgraph
	// (seeds first). Feature extraction fetches exactly these rows.
	Unique []int32
	// Hops[i] holds the sampled edges of hop i as (dst, src) index pairs
	// into Unique: dst aggregates from src.
	Hops []HopBlock
}

// HopBlock is the bipartite edge block of one sampling hop.
type HopBlock struct {
	Dst []int32 // indices into Batch.Unique (aggregating vertices)
	Src []int32 // indices into Batch.Unique (their sampled neighbors)
}

// TotalSampled returns the number of unique vertices in the batch.
func (b *Batch) TotalSampled() int { return len(b.Unique) }

// Sampler draws k-hop neighborhood samples from a graph.
type Sampler struct {
	G       *graph.Graph
	Fanouts []int
	rng     *rand.Rand

	// Locality-aware draw state, installed by SetLocality (locality.go).
	tierOf  []uint8
	locBias float64
}

// NewSampler builds a sampler with the given fan-outs (nil = DefaultFanouts).
func NewSampler(g *graph.Graph, fanouts []int, seed int64) (*Sampler, error) {
	if g == nil {
		return nil, fmt.Errorf("sample: nil graph")
	}
	if fanouts == nil {
		fanouts = DefaultFanouts
	}
	for _, f := range fanouts {
		if f <= 0 {
			return nil, fmt.Errorf("sample: non-positive fanout %d", f)
		}
	}
	return &Sampler{G: g, Fanouts: fanouts, rng: rand.New(rand.NewSource(seed))}, nil
}

// Sample draws the k-hop neighborhood of the given seeds with random
// neighbor sampling: at hop i every frontier vertex samples up to
// Fanouts[i] of its neighbors (without replacement when the neighborhood
// is small, with replacement above the fanout as GPU samplers do).
func (s *Sampler) Sample(seeds []int32) (*Batch, error) {
	n := int32(s.G.N())
	for _, v := range seeds {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("sample: seed %d out of range [0,%d)", v, n)
		}
	}
	b := &Batch{Seeds: append([]int32(nil), seeds...)}
	index := make(map[int32]int32, len(seeds)*4)
	intern := func(v int32) int32 {
		if id, ok := index[v]; ok {
			return id
		}
		id := int32(len(b.Unique))
		index[v] = id
		b.Unique = append(b.Unique, v)
		return id
	}
	frontier := make([]int32, 0, len(seeds))
	for _, v := range seeds {
		intern(v)
		frontier = append(frontier, v)
	}
	for _, fanout := range s.Fanouts {
		var hop HopBlock
		next := make([]int32, 0, len(frontier)*fanout/2)
		seenNext := make(map[int32]bool, len(frontier)*fanout/2)
		for _, v := range frontier {
			nbrs := s.G.Neighbors(v)
			if len(nbrs) == 0 {
				continue
			}
			dstIdx := index[v]
			if len(nbrs) <= fanout {
				for _, u := range nbrs {
					hop.Dst = append(hop.Dst, dstIdx)
					hop.Src = append(hop.Src, intern(u))
					if !seenNext[u] {
						seenNext[u] = true
						next = append(next, u)
					}
				}
				continue
			}
			for k := 0; k < fanout; k++ {
				u := s.draw(nbrs)
				hop.Dst = append(hop.Dst, dstIdx)
				hop.Src = append(hop.Src, intern(u))
				if !seenNext[u] {
					seenNext[u] = true
					next = append(next, u)
				}
			}
		}
		b.Hops = append(b.Hops, hop)
		frontier = next
	}
	return b, nil
}

// BatchIterator partitions training vertices into mini-batches, shuffling
// each epoch — the data-parallel partitioner of §3.1 splits these batches
// evenly across GPUs.
type BatchIterator struct {
	train     []int32
	batchSize int
	rng       *rand.Rand
	cursor    int
}

// NewBatchIterator selects ⌈frac·N⌉ training vertices (the paper trains on
// a random 1%) and iterates them in mini-batches of batchSize.
func NewBatchIterator(g *graph.Graph, frac float64, batchSize int, seed int64) (*BatchIterator, error) {
	if frac <= 0 || frac > 1 {
		return nil, fmt.Errorf("sample: train fraction %v out of (0,1]", frac)
	}
	if batchSize <= 0 {
		return nil, fmt.Errorf("sample: non-positive batch size")
	}
	r := rand.New(rand.NewSource(seed))
	n := g.N()
	k := int(float64(n)*frac + 0.5)
	if k == 0 {
		k = 1
	}
	perm := r.Perm(n)
	train := make([]int32, k)
	for i := 0; i < k; i++ {
		train[i] = int32(perm[i])
	}
	return &BatchIterator{train: train, batchSize: batchSize, rng: r}, nil
}

// NumTrain returns the number of training vertices.
func (it *BatchIterator) NumTrain() int { return len(it.train) }

// BatchesPerEpoch returns the number of mini-batches per epoch.
func (it *BatchIterator) BatchesPerEpoch() int {
	return (len(it.train) + it.batchSize - 1) / it.batchSize
}

// Next returns the next batch of seeds, reshuffling at epoch boundaries.
// The second result is false exactly at an epoch boundary (the returned
// batch is the first of the new epoch).
func (it *BatchIterator) Next() ([]int32, bool) {
	sameEpoch := true
	if it.cursor >= len(it.train) {
		it.rng.Shuffle(len(it.train), func(i, j int) {
			it.train[i], it.train[j] = it.train[j], it.train[i]
		})
		it.cursor = 0
		sameEpoch = false
	}
	end := it.cursor + it.batchSize
	if end > len(it.train) {
		end = len(it.train)
	}
	out := it.train[it.cursor:end]
	it.cursor = end
	return out, sameEpoch
}

// Shard splits the training set across numGPU data-parallel workers
// (even partitioning of training vertices, §3.1 System Runtime).
func (it *BatchIterator) Shard(numGPU int) ([][]int32, error) {
	if numGPU <= 0 {
		return nil, fmt.Errorf("sample: non-positive GPU count")
	}
	shards := make([][]int32, numGPU)
	for i, v := range it.train {
		shards[i%numGPU] = append(shards[i%numGPU], v)
	}
	return shards, nil
}

// Hotness is the per-vertex access-frequency estimate produced by
// pre-sampling. Values sum to 1.
type Hotness []float64

// ProfileHotness runs the offline pre-sampling pass of §3.3: it samples
// rounds×batches mini-batches and counts how often each vertex's feature
// would be fetched. Work fans out over min(GOMAXPROCS, rounds) goroutines,
// each with an independent RNG stream.
func ProfileHotness(g *graph.Graph, fanouts []int, trainFrac float64, batchSize, rounds int, seed int64) (Hotness, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("sample: non-positive rounds")
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > rounds {
		workers = rounds
	}
	countsPer := make([][]int64, workers)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		countsPer[w] = make([]int64, g.N())
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := NewSampler(g, fanouts, seed+int64(w)*7919)
			if err != nil {
				errs[w] = err
				return
			}
			it, err := NewBatchIterator(g, trainFrac, batchSize, seed+int64(w)*104729)
			if err != nil {
				errs[w] = err
				return
			}
			myRounds := rounds / workers
			if w < rounds%workers {
				myRounds++
			}
			batches := it.BatchesPerEpoch() * myRounds
			for i := 0; i < batches; i++ {
				seeds, _ := it.Next()
				b, err := s.Sample(seeds)
				if err != nil {
					errs[w] = err
					return
				}
				for _, v := range b.Unique {
					countsPer[w][v]++
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	h := make(Hotness, g.N())
	total := 0.0
	for _, counts := range countsPer {
		for v, c := range counts {
			h[v] += float64(c)
			total += float64(c)
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("sample: profiling observed no accesses")
	}
	for v := range h {
		h[v] /= total
	}
	return h, nil
}

// ZipfHotness returns the analytic Zipf(s) access distribution over n
// ranked vertices — the paper-scale stand-in for pre-sampling when the
// graph itself is synthetic (simulated experiments on Table 2 datasets).
func ZipfHotness(n int, s float64) (Hotness, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sample: non-positive n")
	}
	if s <= 0 {
		return nil, fmt.Errorf("sample: non-positive skew")
	}
	h := make(Hotness, n)
	total := 0.0
	for i := range h {
		h[i] = 1 / pow(float64(i+1), s)
		total += h[i]
	}
	for i := range h {
		h[i] /= total
	}
	return h, nil
}

func pow(base, exp float64) float64 {
	// math.Pow is the dominant cost for large n; special-case exp==1.
	if exp == 1 {
		return base
	}
	return math.Pow(base, exp)
}
