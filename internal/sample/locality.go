package sample

import "fmt"

// Locality-aware sampling (the adaptive loop's demand-side lever): when the
// layout already holds part of the graph on fast tiers, biasing random
// neighbor selection toward currently-resident vertices converts sampler
// randomness into cache hits without changing the sampled subgraph's shape.
// Only the with-replacement draw path is biased — neighborhoods at or below
// the fanout are always taken whole, so small-degree statistics and the
// message-passing structure are untouched, and because every biased draw
// starts from a uniform candidate, full support is preserved: any neighbor
// can still be sampled at any bias.

// SetLocality installs a tier map and a bias for locality-aware neighbor
// draws. tierOf maps each vertex to its storage-tier rank (0 = fastest;
// adaptive.TierOf produces this from a DDAK layout) and must cover every
// vertex of the graph. bias in [0,1] is the probability a draw is a
// best-of-two tier comparison instead of a single uniform pick: bias 0
// restores exact uniform sampling, bias 1 makes every over-fanout draw
// prefer the faster-tier of two uniform candidates. Pass (nil, 0) to
// disable. The map is retained, not copied — callers re-planning a layout
// update tiers in place or call SetLocality again.
func (s *Sampler) SetLocality(tierOf []uint8, bias float64) error {
	if bias < 0 || bias > 1 {
		return fmt.Errorf("sample: locality bias %v out of [0,1]", bias)
	}
	if bias > 0 {
		if tierOf == nil {
			return fmt.Errorf("sample: locality bias %v with nil tier map", bias)
		}
		if len(tierOf) != s.G.N() {
			return fmt.Errorf("sample: tier map covers %d vertices, graph has %d",
				len(tierOf), s.G.N())
		}
	}
	s.tierOf = tierOf
	s.locBias = bias
	return nil
}

// draw picks one neighbor for a with-replacement sample. Unbiased draws are
// a single uniform pick; biased draws (probability locBias) compare two
// uniform candidates and keep the one on the faster tier, which doubles the
// selection pressure toward resident vertices while keeping every neighbor
// reachable.
func (s *Sampler) draw(nbrs []int32) int32 {
	u := nbrs[s.rng.Intn(len(nbrs))]
	if s.locBias <= 0 || s.rng.Float64() >= s.locBias {
		return u
	}
	v := nbrs[s.rng.Intn(len(nbrs))]
	if s.tierOf[v] < s.tierOf[u] {
		return v
	}
	return u
}
