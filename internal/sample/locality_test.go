package sample

import (
	"testing"

	"moment/internal/graph"
)

// fastFrac runs batches through a sampler and reports what fraction of
// sampled subgraph vertices sit on tier 0.
func fastFrac(t *testing.T, s *Sampler, tierOf []uint8, batches int) float64 {
	t.Helper()
	fast, total := 0, 0
	for i := 0; i < batches; i++ {
		seeds := []int32{int32(i % s.G.N()), int32((i * 7) % s.G.N())}
		b, err := s.Sample(seeds)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range b.Unique {
			total++
			if tierOf[v] == 0 {
				fast++
			}
		}
	}
	if total == 0 {
		t.Fatal("no vertices sampled")
	}
	return float64(fast) / float64(total)
}

// hotTiers places the lowest-numbered 10% of vertices on tier 0, the next
// 20% on tier 1, the rest on tier 2 — a stand-in for a DDAK layout.
func hotTiers(n int) []uint8 {
	tiers := make([]uint8, n)
	for v := range tiers {
		switch {
		case v < n/10:
			tiers[v] = 0
		case v < 3*n/10:
			tiers[v] = 1
		default:
			tiers[v] = 2
		}
	}
	return tiers
}

func TestSetLocalityValidation(t *testing.T) {
	g := testGraph(t)
	s, err := NewSampler(g, []int{4, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetLocality(hotTiers(g.N()), -0.1); err == nil {
		t.Error("negative bias accepted")
	}
	if err := s.SetLocality(hotTiers(g.N()), 1.1); err == nil {
		t.Error("bias > 1 accepted")
	}
	if err := s.SetLocality(nil, 0.5); err == nil {
		t.Error("nil tier map with positive bias accepted")
	}
	if err := s.SetLocality(make([]uint8, g.N()-1), 0.5); err == nil {
		t.Error("short tier map accepted")
	}
	if err := s.SetLocality(nil, 0); err != nil {
		t.Errorf("disable rejected: %v", err)
	}
	if err := s.SetLocality(hotTiers(g.N()), 0.5); err != nil {
		t.Errorf("valid install rejected: %v", err)
	}
}

func TestZeroBiasIsExactlyUniform(t *testing.T) {
	g := testGraph(t)
	plain, err := NewSampler(g, []int{6, 4}, 99)
	if err != nil {
		t.Fatal(err)
	}
	biased, err := NewSampler(g, []int{6, 4}, 99)
	if err != nil {
		t.Fatal(err)
	}
	if err := biased.SetLocality(hotTiers(g.N()), 0); err != nil {
		t.Fatal(err)
	}
	// Zero bias must not even consume extra randomness: the two samplers'
	// draw sequences stay identical batch after batch.
	for i := 0; i < 20; i++ {
		seeds := []int32{int32(i), int32(i + 100)}
		a, err := plain.Sample(seeds)
		if err != nil {
			t.Fatal(err)
		}
		b, err := biased.Sample(seeds)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Unique) != len(b.Unique) {
			t.Fatalf("batch %d: %d vs %d unique vertices", i, len(a.Unique), len(b.Unique))
		}
		for j := range a.Unique {
			if a.Unique[j] != b.Unique[j] {
				t.Fatalf("batch %d diverges at vertex %d", i, j)
			}
		}
	}
}

func TestLocalityBiasShiftsMassToFastTiers(t *testing.T) {
	g := testGraph(t)
	tiers := hotTiers(g.N())
	frac := make([]float64, 0, 3)
	for _, bias := range []float64{0, 0.5, 1} {
		s, err := NewSampler(g, []int{10, 5}, 7)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SetLocality(tiers, bias); err != nil {
			t.Fatal(err)
		}
		frac = append(frac, fastFrac(t, s, tiers, 200))
	}
	if !(frac[0] < frac[1] && frac[1] < frac[2]) {
		t.Errorf("tier-0 fraction not increasing with bias: %v", frac)
	}
	// The shift must be material, not a rounding artifact.
	if frac[2] < frac[0]*1.1 {
		t.Errorf("full bias lifts tier-0 fraction only %.4f -> %.4f", frac[0], frac[2])
	}
}

func TestLocalityPreservesFullSupport(t *testing.T) {
	// A star graph: vertex 0 has 40 neighbors, fanout 8 forces the
	// with-replacement path. Even at bias 1 every neighbor must remain
	// reachable — biased draws start from uniform candidates.
	const deg = 40
	edges := make([][2]int32, 0, deg)
	for v := int32(1); v <= deg; v++ {
		edges = append(edges, [2]int32{v, 0}) // in-neighbor orientation
	}
	g, err := graph.FromEdges(deg+1, edges)
	if err != nil {
		t.Fatal(err)
	}
	tiers := make([]uint8, deg+1)
	for v := range tiers {
		if v%2 == 0 {
			tiers[v] = 2 // half the leaves are on the slow tier
		}
	}
	s, err := NewSampler(g, []int{8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetLocality(tiers, 1); err != nil {
		t.Fatal(err)
	}
	seen := map[int32]bool{}
	for i := 0; i < 2000; i++ {
		b, err := s.Sample([]int32{0})
		if err != nil {
			t.Fatal(err)
		}
		for _, hop := range b.Hops {
			for _, src := range hop.Src {
				seen[b.Unique[src]] = true
			}
		}
	}
	for v := int32(1); v <= deg; v++ {
		if !seen[v] {
			t.Errorf("neighbor %d never sampled at bias 1 — support lost", v)
		}
	}
}

func TestLocalityKeepsSmallNeighborhoodsWhole(t *testing.T) {
	// Neighborhoods at or below the fanout are taken whole regardless of
	// bias: locality must not drop structural edges.
	const deg = 5
	edges := make([][2]int32, 0, deg)
	for v := int32(1); v <= deg; v++ {
		edges = append(edges, [2]int32{v, 0}) // in-neighbor orientation
	}
	g, err := graph.FromEdges(deg+1, edges)
	if err != nil {
		t.Fatal(err)
	}
	tiers := make([]uint8, deg+1)
	for v := 1; v < len(tiers); v++ {
		tiers[v] = 2
	}
	s, err := NewSampler(g, []int{deg + 3}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetLocality(tiers, 1); err != nil {
		t.Fatal(err)
	}
	b, err := s.Sample([]int32{0})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(b.Hops[0].Src); got != deg {
		t.Errorf("small neighborhood sampled %d of %d edges", got, deg)
	}
}
