package sample

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"moment/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.GenZipf(2000, 8, 0.9, 42)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSampleShape(t *testing.T) {
	g := testGraph(t)
	s, err := NewSampler(g, []int{5, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int32{0, 1, 2, 3}
	b, err := s.Sample(seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Hops) != 2 {
		t.Fatalf("hops = %d", len(b.Hops))
	}
	if len(b.Seeds) != 4 {
		t.Fatalf("seeds = %d", len(b.Seeds))
	}
	// Seeds come first in Unique.
	for i, v := range seeds {
		if b.Unique[i] != v {
			t.Errorf("Unique[%d] = %d, want seed %d", i, b.Unique[i], v)
		}
	}
	// Unique really is unique, and hop indices are in range.
	seen := map[int32]bool{}
	for _, v := range b.Unique {
		if seen[v] {
			t.Fatalf("duplicate vertex %d in Unique", v)
		}
		seen[v] = true
	}
	for hi, hop := range b.Hops {
		if len(hop.Dst) != len(hop.Src) {
			t.Fatalf("hop %d: |dst|=%d |src|=%d", hi, len(hop.Dst), len(hop.Src))
		}
		for i := range hop.Dst {
			if int(hop.Dst[i]) >= len(b.Unique) || int(hop.Src[i]) >= len(b.Unique) {
				t.Fatalf("hop %d edge %d indexes outside Unique", hi, i)
			}
		}
	}
	// Fanout bound: hop edges <= frontier * fanout.
	if len(b.Hops[0].Dst) > 4*5 {
		t.Errorf("hop0 edges %d > 20", len(b.Hops[0].Dst))
	}
}

func TestSampleEdgesAreRealEdges(t *testing.T) {
	g := testGraph(t)
	s, err := NewSampler(g, []int{4, 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Sample([]int32{5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, hop := range b.Hops {
		for i := range hop.Dst {
			dst := b.Unique[hop.Dst[i]]
			src := b.Unique[hop.Src[i]]
			found := false
			for _, u := range g.Neighbors(dst) {
				if u == src {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("sampled edge (%d<-%d) not in graph", dst, src)
			}
		}
	}
}

func TestSampleErrors(t *testing.T) {
	g := testGraph(t)
	if _, err := NewSampler(nil, nil, 1); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewSampler(g, []int{0}, 1); err == nil {
		t.Error("zero fanout accepted")
	}
	s, err := NewSampler(g, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Fanouts) != 2 || s.Fanouts[0] != 25 {
		t.Errorf("default fanouts %v", s.Fanouts)
	}
	if _, err := s.Sample([]int32{-1}); err == nil {
		t.Error("negative seed accepted")
	}
	if _, err := s.Sample([]int32{99999}); err == nil {
		t.Error("out-of-range seed accepted")
	}
}

func TestBatchIterator(t *testing.T) {
	g := testGraph(t)
	it, err := NewBatchIterator(g, 0.1, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	if it.NumTrain() != 200 {
		t.Fatalf("train = %d, want 200", it.NumTrain())
	}
	if it.BatchesPerEpoch() != 7 { // ceil(200/32)
		t.Fatalf("batches/epoch = %d", it.BatchesPerEpoch())
	}
	seenPerEpoch := map[int32]int{}
	total := 0
	for i := 0; i < it.BatchesPerEpoch(); i++ {
		seeds, same := it.Next()
		if i == 0 && !same {
			// First call may reshuffle only at later boundaries.
			t.Log("first batch flagged as boundary")
		}
		total += len(seeds)
		for _, v := range seeds {
			seenPerEpoch[v]++
		}
	}
	if total != 200 {
		t.Fatalf("epoch visited %d vertices", total)
	}
	for v, c := range seenPerEpoch {
		if c != 1 {
			t.Fatalf("vertex %d visited %d times in one epoch", v, c)
		}
	}
	// Next call starts a new epoch.
	_, same := it.Next()
	if same {
		t.Error("epoch boundary not flagged")
	}
}

func TestBatchIteratorErrors(t *testing.T) {
	g := testGraph(t)
	if _, err := NewBatchIterator(g, 0, 8, 1); err == nil {
		t.Error("frac=0 accepted")
	}
	if _, err := NewBatchIterator(g, 1.5, 8, 1); err == nil {
		t.Error("frac>1 accepted")
	}
	if _, err := NewBatchIterator(g, 0.1, 0, 1); err == nil {
		t.Error("batch=0 accepted")
	}
}

func TestShard(t *testing.T) {
	g := testGraph(t)
	it, err := NewBatchIterator(g, 0.1, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := it.Shard(4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range shards {
		total += len(s)
	}
	if total != it.NumTrain() {
		t.Fatalf("shards cover %d of %d", total, it.NumTrain())
	}
	// Even split within 1.
	for _, s := range shards {
		if d := len(s) - len(shards[0]); d > 1 || d < -1 {
			t.Errorf("uneven shards: %d vs %d", len(s), len(shards[0]))
		}
	}
	if _, err := it.Shard(0); err == nil {
		t.Error("0 GPUs accepted")
	}
}

func TestProfileHotness(t *testing.T) {
	g := testGraph(t)
	h, err := ProfileHotness(g, []int{5, 3}, 0.1, 64, 4, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != g.N() {
		t.Fatalf("hotness len %d", len(h))
	}
	sum := 0.0
	for _, v := range h {
		if v < 0 {
			t.Fatal("negative hotness")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("hotness sums to %v", sum)
	}
	// Hot (low-id, Zipf-popular) vertices should rank above the median:
	// compare mean hotness of the first 1% of ids vs the last 50%.
	firstPct := 0.0
	for v := 0; v < g.N()/100; v++ {
		firstPct += h[v]
	}
	tail := 0.0
	for v := g.N() / 2; v < g.N(); v++ {
		tail += h[v]
	}
	firstPct /= float64(g.N() / 100)
	tail /= float64(g.N() - g.N()/2)
	if firstPct < 5*tail {
		t.Errorf("profiling lost skew: head %.2e vs tail %.2e", firstPct, tail)
	}
	if _, err := ProfileHotness(g, nil, 0.1, 64, 0, 1); err == nil {
		t.Error("rounds=0 accepted")
	}
}

func TestZipfHotness(t *testing.T) {
	h, err := ZipfHotness(1000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i, v := range h {
		sum += v
		if i > 0 && v > h[i-1]+1e-12 {
			t.Fatal("ZipfHotness not monotone decreasing")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sums to %v", sum)
	}
	if _, err := ZipfHotness(0, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := ZipfHotness(10, 0); err == nil {
		t.Error("s=0 accepted")
	}
}

func TestZipfHotnessNormalizedProperty(t *testing.T) {
	f := func(nRaw uint16, sRaw uint8) bool {
		n := int(nRaw%5000) + 1
		s := float64(sRaw%30)/10 + 0.1
		h, err := ZipfHotness(n, s)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range h {
			sum += v
		}
		return math.Abs(sum-1) < 1e-9 && sort.SliceIsSorted(h, func(i, j int) bool { return h[i] > h[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSamplerDeterministicPerSeed(t *testing.T) {
	g := testGraph(t)
	run := func() []int32 {
		s, err := NewSampler(g, []int{6, 4}, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Sample([]int32{10, 20, 30})
		if err != nil {
			t.Fatal(err)
		}
		return b.Unique
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different samples")
		}
	}
}
