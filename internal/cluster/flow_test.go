package cluster

import (
	"math"
	"math/rand"
	"testing"

	"moment/internal/baselines"
	"moment/internal/gnn"
	"moment/internal/graph"
	"moment/internal/partition"
	"moment/internal/topology"
	"moment/internal/trainsim"
	"moment/internal/units"
)

// TestFlowMatchesAnalyticalGrid is the differential wall for the flow
// planner: on a non-blocking core switch with the detached-NIC model, the
// whole-cluster max-flow must reproduce the analytical composition across
// the node-count × NIC-bandwidth × replication grid — same wire volume
// bit-for-bit, same network stage and epoch within solver tolerance.
func TestFlowMatchesAnalyticalGrid(t *testing.T) {
	for _, nodes := range []int{1, 2, 4} {
		for _, nic := range []units.Bandwidth{units.Gbps(25), units.Gbps(100)} {
			for _, r := range []float64{0, 0.5, 1} {
				ana := cfg(t, nodes, nic)
				ana.Replication = r
				ra, err := Simulate(ana)
				if err != nil {
					t.Fatalf("nodes=%d nic=%v r=%v analytical: %v", nodes, nic, r, err)
				}
				flow := cfg(t, nodes, nic)
				flow.Replication = r
				flow.Flow = true
				rf, err := Simulate(flow)
				if err != nil {
					t.Fatalf("nodes=%d nic=%v r=%v flow: %v", nodes, nic, r, err)
				}
				if ra.OOM != "" || rf.OOM != "" {
					t.Fatalf("nodes=%d nic=%v r=%v: OOM %q / %q", nodes, nic, r, ra.OOM, rf.OOM)
				}
				if ra.Mode != "analytical" || rf.Mode != "flow" {
					t.Fatalf("modes %q / %q", ra.Mode, rf.Mode)
				}
				if ra.RemoteBytes != rf.RemoteBytes {
					t.Errorf("nodes=%d nic=%v r=%v: remote bytes diverge %v vs %v",
						nodes, nic, r, ra.RemoteBytes, rf.RemoteBytes)
				}
				if d := relDiff(ra.NICTime.Sec(), rf.NICTime.Sec()); d > 0.01 {
					t.Errorf("nodes=%d nic=%v r=%v: NIC stage %vs vs %vs (rel %.4f)",
						nodes, nic, r, ra.NICTime.Sec(), rf.NICTime.Sec(), d)
				}
				if d := relDiff(ra.EpochTime.Sec(), rf.EpochTime.Sec()); d > 0.02 {
					t.Errorf("nodes=%d nic=%v r=%v: epoch %v vs %v (rel %.4f)",
						nodes, nic, r, ra.EpochTime, rf.EpochTime, d)
				}
				if r == 1 && ra.RemoteBytes != 0 {
					t.Errorf("nodes=%d: full replication still shipped %v bytes", nodes, ra.RemoteBytes)
				}
			}
		}
	}
}

func relDiff(a, b float64) float64 {
	if a == 0 && b == 0 {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

// TestReplicationAxisMonotoneEpoch sweeps r on a network-bound cluster:
// wire volume must fall monotonically, and with a slow NIC the epoch
// should improve as the hot head is localized.
func TestReplicationAxisMonotoneEpoch(t *testing.T) {
	prevRemote := math.Inf(1)
	for _, r := range []float64{0, 0.25, 0.5, 0.75, 1} {
		c := cfg(t, 4, units.Gbps(10))
		c.Replication = r
		res, err := Simulate(c)
		if err != nil {
			t.Fatal(err)
		}
		if res.OOM != "" {
			t.Fatalf("r=%v: %s", r, res.OOM)
		}
		if res.RemoteBytes > prevRemote+1 {
			t.Errorf("r=%v: remote bytes rose to %v", r, res.RemoteBytes)
		}
		prevRemote = res.RemoteBytes
		if res.Replication == nil || res.Replication.R != r {
			t.Errorf("r=%v: plan not reported: %+v", r, res.Replication)
		}
	}
	if prevRemote != 0 {
		t.Errorf("r=1 still remote: %v bytes", prevRemote)
	}
}

// TestReplicationNeedsReplicateHot pins the config contract.
func TestReplicationNeedsReplicateHot(t *testing.T) {
	off := false
	c := cfg(t, 4, units.Gbps(100))
	c.ReplicateHot = &off
	c.Replication = 0.5
	if _, err := Simulate(c); err == nil {
		t.Error("Replication with ReplicateHot=false accepted")
	}
	c = cfg(t, 4, units.Gbps(100))
	c.Replication = 1.5
	if _, err := Simulate(c); err == nil {
		t.Error("replication factor 1.5 accepted")
	}
}

// TestFlowNICOnGPUSocket verifies the contention knob that replaces the
// documented detached-NIC simplification: attaching the NIC to the GPU
// socket's fabric can only slow the flow-planned epoch down.
func TestFlowNICOnGPUSocket(t *testing.T) {
	base := cfg(t, 4, units.Gbps(100))
	base.Flow = true
	rb, err := Simulate(base)
	if err != nil {
		t.Fatal(err)
	}
	knob := cfg(t, 4, units.Gbps(100))
	knob.Flow = true
	knob.NICOnGPUSocket = true
	rk, err := Simulate(knob)
	if err != nil {
		t.Fatal(err)
	}
	if rk.EpochTime.Sec() < rb.EpochTime.Sec()*(1-1e-3) {
		t.Errorf("fabric-attached NIC epoch %v faster than detached %v", rk.EpochTime, rb.EpochTime)
	}
	if rk.FlowTime.Sec() < rb.FlowTime.Sec()*(1-1e-3) {
		t.Errorf("fabric-attached NIC horizon %v faster than detached %v", rk.FlowTime, rb.FlowTime)
	}
	// The analytical mode cannot express the knob; flow mode must accept it.
	if rk.Mode != "flow" {
		t.Errorf("mode %q", rk.Mode)
	}
}

// TestFlowOversubscribedSpine prices what the analytical model cannot: a
// 2-leaf core whose uplinks are slower than the aggregate NIC demand must
// stretch the network stage beyond the non-blocking solution.
func TestFlowOversubscribedSpine(t *testing.T) {
	nb := cfg(t, 4, units.Gbps(25))
	nb.Flow = true
	rNB, err := Simulate(nb)
	if err != nil {
		t.Fatal(err)
	}
	over := cfg(t, 4, units.Gbps(25))
	over.Flow = true
	over.Cluster = &topology.ClusterSpec{
		Nodes: 4, NICBW: units.Gbps(25), Leaves: 2, LeafUplinkBW: units.Gbps(10),
	}
	rOver, err := Simulate(over)
	if err != nil {
		t.Fatal(err)
	}
	// Each leaf funnels 2 x 25 Gbps of NICs into a 10 Gbps uplink: the
	// spine is 5x oversubscribed and must dominate the NIC stage.
	if rOver.NICTime.Sec() <= rNB.NICTime.Sec()*2 {
		t.Errorf("oversubscribed spine NIC stage %v vs non-blocking %v — uplink did not bind",
			rOver.NICTime, rNB.NICTime)
	}
	if rOver.EpochTime.Sec() < rNB.EpochTime.Sec() {
		t.Errorf("oversubscription sped the epoch up: %v < %v", rOver.EpochTime, rNB.EpochTime)
	}
}

// TestClusterSpecMismatch pins spec/config agreement errors.
func TestClusterSpecMismatch(t *testing.T) {
	c := cfg(t, 4, units.Gbps(25))
	c.Cluster = &topology.ClusterSpec{Nodes: 8, NICBW: units.Gbps(25)}
	if _, err := Simulate(c); err == nil {
		t.Error("node-count mismatch accepted")
	}
	c = cfg(t, 4, units.Gbps(25))
	c.Cluster = &topology.ClusterSpec{Nodes: 4, NICBW: units.Gbps(100)}
	if _, err := Simulate(c); err == nil {
		t.Error("NIC-bandwidth mismatch accepted")
	}
}

// localityGraph builds a block-local random graph: most edges stay inside
// a contiguous node-sized block, so a range-partitioned 1D layout keeps
// them local while hashing scatters them.
func localityGraph(t *testing.T, n, nodes int) *graph.Graph {
	t.Helper()
	r := rand.New(rand.NewSource(7))
	block := n / nodes
	var edges [][2]int32
	for v := 0; v < n; v++ {
		base := (v / block) * block
		for k := 0; k < 4; k++ {
			w := base + r.Intn(block) // intra-block
			edges = append(edges, [2]int32{int32(v), int32(w)})
		}
		if r.Intn(10) == 0 {
			edges = append(edges, [2]int32{int32(v), int32(r.Intn(n))}) // rare long-range
		}
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPartitionScoredCrossTraffic wires the CAGNET partition scoring into
// the cluster planner: a locality-friendly range partition must beat both
// the uniform (N-1)/N assumption and the hashed variant on remote traffic.
func TestPartitionScoredCrossTraffic(t *testing.T) {
	const nodes = 4
	g := localityGraph(t, 4096, nodes)

	uniform := cfg(t, nodes, units.Gbps(25))
	rUni, err := Simulate(uniform)
	if err != nil {
		t.Fatal(err)
	}

	ranged := cfg(t, nodes, units.Gbps(25))
	ranged.Partition = &partition.Spec{Layout: partition.Layout1D, Nodes: nodes}
	ranged.PartitionGraph = g
	rRange, err := Simulate(ranged)
	if err != nil {
		t.Fatal(err)
	}

	hashed := cfg(t, nodes, units.Gbps(25))
	hashed.Partition = &partition.Spec{Layout: partition.Layout1D, Nodes: nodes, Hashed: true}
	hashed.PartitionGraph = g
	rHash, err := Simulate(hashed)
	if err != nil {
		t.Fatal(err)
	}

	if rRange.RemoteFraction >= rUni.RemoteFraction {
		t.Errorf("range partition remote %.4f >= uniform %.4f", rRange.RemoteFraction, rUni.RemoteFraction)
	}
	if rRange.RemoteFraction >= rHash.RemoteFraction {
		t.Errorf("range partition remote %.4f >= hashed %.4f", rRange.RemoteFraction, rHash.RemoteFraction)
	}
	// Hashed 1D approaches the uniform assumption on a scattered graph.
	if d := relDiff(rHash.RemoteFraction, rUni.RemoteFraction); d > 0.15 {
		t.Errorf("hashed remote %.4f far from uniform %.4f", rHash.RemoteFraction, rUni.RemoteFraction)
	}

	// Spec/graph contract errors.
	c := cfg(t, nodes, units.Gbps(25))
	c.Partition = &partition.Spec{Layout: partition.Layout1D, Nodes: nodes}
	if _, err := Simulate(c); err == nil {
		t.Error("Partition without PartitionGraph accepted")
	}
	c = cfg(t, nodes, units.Gbps(25))
	c.Partition = &partition.Spec{Layout: partition.Layout1D, Nodes: 8}
	c.PartitionGraph = g
	if _, err := Simulate(c); err == nil {
		t.Error("partition/cluster node mismatch accepted")
	}
}

// TestFlowBeatsDistDGL is the acceptance comparison: the flow-planned
// 4-node cluster on the PA reference (the dataset DistDGL survives without
// OOM) must out-train the calibrated DistDGL baseline.
func TestFlowBeatsDistDGL(t *testing.T) {
	d, err := graph.DatasetByName("PA")
	if err != nil {
		t.Fatal(err)
	}
	m := topology.MachineB()
	p, err := topology.MomentPlacementB(m)
	if err != nil {
		t.Fatal(err)
	}
	w := trainsim.Workload{Dataset: d, Model: gnn.KindSAGE}

	flow := Config{
		Node: m, Nodes: 4, NICBW: units.Gbps(100),
		Workload: w, Placement: p, Flow: true, Replication: 0.25,
	}
	rf, err := Simulate(flow)
	if err != nil {
		t.Fatal(err)
	}
	if rf.OOM != "" {
		t.Fatal(rf.OOM)
	}

	dgl, err := baselines.DistDGL(m, baselines.DefaultDistDGL(), w)
	if err != nil {
		t.Fatal(err)
	}
	if dgl.OOM != "" {
		t.Fatalf("DistDGL OOM on PA: %s", dgl.OOM)
	}
	if rf.Throughput <= dgl.Throughput {
		t.Errorf("flow planner %.0f v/s does not beat DistDGL %.0f v/s", rf.Throughput, dgl.Throughput)
	}
	if rf.EpochTime.Sec() >= dgl.EpochTime.Sec() {
		t.Errorf("flow planner epoch %v not faster than DistDGL %v", rf.EpochTime, dgl.EpochTime)
	}
}
