// Package cluster implements the multi-node generalization the paper
// sketches in §5 ("Generalization to Multi-node"): NICs join the hardware
// units of the topology graph, network links between NICs become edges,
// and Moment's optimization extends across machines by (1) replicating the
// hot head of the access distribution into every node's caches and SSDs —
// "prioritizing local SSD/memory access" — and (2) partitioning the cold
// remainder across the nodes' SSD fleets, so only the partitioned tail
// crosses the network.
//
// Two planners share one workload model. The analytical mode composes the
// single-machine simulation with a closed-form network stage (remote bytes
// over NIC bandwidth, non-blocking core switch). The flow mode (Config.Flow)
// promotes the whole cluster to the flow network: flownet.BuildCluster
// instantiates every node's PCIe tree and the hierarchical NIC→leaf→spine
// fabric in one graph, so a single time-bisection prices intra-PCIe and
// cross-node traffic together — and prices what the analytical mode cannot:
// oversubscribed leaf/spine cores and NIC↔PCIe contention
// (Config.NICOnGPUSocket). On a non-blocking core with a detached NIC the
// two modes agree (the differential tests pin this).
//
// Cross-node volume comes from the replication axis (Config.Replication):
// the hot head of the SSD tier is pinned into every node and billed against
// per-node capacity, while tail accesses cross the network with a
// probability that is either the uniform (Nodes-1)/Nodes or a CAGNET
// partition layout's scored mirror fraction (Config.Partition).
package cluster

import (
	"fmt"
	"math"

	"moment/internal/core"
	"moment/internal/ddak"
	"moment/internal/flownet"
	"moment/internal/graph"
	"moment/internal/partition"
	"moment/internal/topology"
	"moment/internal/trainsim"
	"moment/internal/units"
)

// Config describes a homogeneous cluster running one data-parallel job.
type Config struct {
	// Node is the per-node machine (GPUs, SSDs, topology).
	Node *topology.Machine
	// Nodes is the cluster size.
	Nodes int
	// NICBW is each node's full-duplex network bandwidth.
	NICBW units.Bandwidth
	// Workload is the cluster-wide training job.
	Workload trainsim.Workload

	// Placement fixes each node's hardware placement; nil runs the
	// automatic module once and replicates the winner (nodes are
	// homogeneous).
	Placement *topology.Placement
	// ReplicateHot disables/enables the §5 locality optimization: when
	// false, all non-cached data is partitioned and (Nodes-1)/Nodes of
	// every fetch crosses the network (the naive extension).
	// Default true.
	ReplicateHot *bool
	// Sim forwards per-node simulation knobs.
	Sim trainsim.Config

	// Flow selects the flow-based planner: one max-flow solve over the
	// whole cluster graph instead of the analytical network stage.
	Flow bool
	// Cluster optionally describes the full hierarchical network (NIC
	// count, leaves, spine uplinks, NIC attach point). Nil derives a
	// single non-blocking core switch from Nodes/NICBW. Its Nodes and
	// NICBW must agree with the fields above when set.
	Cluster *topology.ClusterSpec
	// Replication is the cross-node data-placement axis: the fraction
	// r ∈ [0,1] of SSD-tier bytes whose hot head is replicated into every
	// node (billed against per-node SSD capacity via the shard fraction
	// r + (1-r)/Nodes). 0 is plain 1/Nodes partitioning. Requires
	// ReplicateHot (the default).
	Replication float64
	// Partition optionally scores the cold tail's cross-node layout: the
	// CAGNET-style spec's mirror fraction on PartitionGraph replaces the
	// uniform (Nodes-1)/Nodes cross-node probability.
	Partition *partition.Spec
	// PartitionGraph is the graph Partition is scored on (required when
	// Partition is set).
	PartitionGraph *graph.Graph
	// NICOnGPUSocket (flow mode only) attaches each node's NIC to the
	// PCIe fabric at the cluster spec's attach point instead of the
	// contention-free detached model, so export traffic fights local
	// traffic on shared links.
	NICOnGPUSocket bool
}

// Result is one simulated cluster epoch.
type Result struct {
	OOM string

	// Mode names the planner that produced the result: "analytical" or
	// "flow".
	Mode string

	EpochTime units.Duration
	// LocalIO is the per-node intra-machine I/O critical path.
	LocalIO units.Duration
	// NICTime is the per-node network stage. Analytical: remote bytes over
	// NIC bandwidth. Flow: the busiest inter-server link's solved time
	// (reflects leaf/spine oversubscription).
	NICTime units.Duration
	// FlowTime (flow mode only) is the joint horizon of the whole-cluster
	// solve: local fabric and network demand priced together.
	FlowTime units.Duration
	// ComputeTime and SampleTime are per-node per-epoch stage totals.
	ComputeTime units.Duration
	SampleTime  units.Duration

	// RemoteFraction is the share of fetched bytes that crossed the
	// network.
	RemoteFraction float64
	// RemoteBytes is the per-node per-epoch wire volume (each direction).
	RemoteBytes float64
	// PerNodeFetch is the feature bytes each node consumed.
	PerNodeFetch float64
	// Throughput is cluster-wide training vertices per second.
	Throughput float64
	// Replication describes the replication-axis split used (nil when the
	// naive no-replication extension ran).
	Replication *ddak.ReplicationPlan
	// Placement is the per-node hardware placement used.
	Placement *topology.Placement
	// Node is the per-node epoch detail.
	Node *trainsim.Result
}

// Simulate runs one cluster epoch.
func Simulate(cfg Config) (*Result, error) {
	if cfg.Node == nil {
		return nil, fmt.Errorf("cluster: nil node machine")
	}
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: non-positive node count")
	}
	if cfg.NICBW <= 0 && cfg.Nodes > 1 {
		return nil, fmt.Errorf("cluster: multi-node cluster needs NIC bandwidth")
	}
	replicateHot := true
	if cfg.ReplicateHot != nil {
		replicateHot = *cfg.ReplicateHot
	}
	if cfg.Replication < 0 || cfg.Replication > 1 || math.IsNaN(cfg.Replication) {
		return nil, fmt.Errorf("cluster: replication factor %v outside [0,1]", cfg.Replication)
	}
	if cfg.Replication > 0 && !replicateHot {
		return nil, fmt.Errorf("cluster: Replication needs ReplicateHot (the naive extension partitions everything)")
	}
	spec, err := clusterSpec(cfg)
	if err != nil {
		return nil, err
	}

	// Cross-node probability for a partitioned-tail access: uniform, or a
	// scored CAGNET layout's mirror fraction.
	crossFrac := float64(cfg.Nodes-1) / float64(cfg.Nodes)
	if cfg.Partition != nil {
		if cfg.PartitionGraph == nil {
			return nil, fmt.Errorf("cluster: Partition set without PartitionGraph")
		}
		if cfg.Partition.Nodes != cfg.Nodes {
			return nil, fmt.Errorf("cluster: partition spec for %d nodes, cluster has %d",
				cfg.Partition.Nodes, cfg.Nodes)
		}
		crossFrac, err = partition.RemoteFraction(cfg.PartitionGraph, *cfg.Partition)
		if err != nil {
			return nil, err
		}
	}

	w := cfg.Workload.Defaults()
	w.NumGPUs = cfg.Node.NumGPUs

	// Per-node epoch share: training vertices split evenly across nodes.
	totalBatches := int(math.Ceil(float64(w.Dataset.TrainVertices()) / float64(w.BatchSize)))
	w.EpochBatches = (totalBatches + cfg.Nodes - 1) / cfg.Nodes

	// Per-node storage bill along the replication axis: the replicated
	// head in full plus a 1/Nodes shard of the tail.
	shardFrac := 1 / float64(cfg.Nodes)
	if replicateHot {
		shardFrac = cfg.Replication + (1-cfg.Replication)/float64(cfg.Nodes)
	}
	shardBytes := float64(w.Dataset.FeatureStorage.Int64()) * shardFrac
	nodeSSD := float64(cfg.Node.SSDCapacity.Int64()) * float64(cfg.Node.NumSSDs)
	if shardBytes > nodeSSD {
		return &Result{OOM: fmt.Sprintf(
			"ssd capacity: %.1f TiB shard (r=%.2f) exceeds %.1f TiB per node",
			shardBytes/(1<<40), cfg.Replication, nodeSSD/(1<<40))}, nil
	}

	// Hardware placement: search once, replicate (homogeneous nodes).
	placement := cfg.Placement
	if placement == nil {
		plan, err := core.CoOptimize(core.Input{Machine: cfg.Node, Workload: w})
		if err != nil {
			return nil, err
		}
		placement = plan.Placement
	}

	// Intra-node epoch: the node behaves like a single machine consuming
	// its batch share; its SSD tier serves the node's own shard locally
	// and, symmetrically, the same byte volume on behalf of remote peers,
	// so local fabric load matches the single-machine simulation.
	simCfg := cfg.Sim
	simCfg.Machine = cfg.Node
	simCfg.Placement = placement
	simCfg.Workload = w
	simCfg.StorageShardFrac = shardFrac
	node, err := trainsim.SimulateEpoch(simCfg)
	if err != nil {
		return nil, err
	}
	if node.OOM != "" {
		return &Result{OOM: node.OOM}, nil
	}

	// Network volume: the SSD-tier tail of the access distribution,
	// minus the replicated head, times the cross-node probability.
	remoteFrac, replPlan, err := remoteTraffic(node, cfg.Replication, cfg.Nodes, crossFrac, replicateHot)
	if err != nil {
		return nil, err
	}
	remoteBytes := node.FetchEpoch * remoteFrac
	if cfg.Nodes == 1 {
		remoteBytes = 0
	}

	res := &Result{
		Mode:           "analytical",
		LocalIO:        node.IOTime,
		ComputeTime:    node.ComputeTime,
		SampleTime:     node.SampleTime,
		RemoteFraction: remoteFrac,
		RemoteBytes:    remoteBytes,
		PerNodeFetch:   node.FetchEpoch,
		Replication:    replPlan,
		Placement:      placement,
		Node:           node,
	}

	iters := math.Max(1, math.Ceil(float64(w.EpochBatches)/float64(cfg.Node.NumGPUs)))
	var epoch float64
	if cfg.Flow {
		res.Mode = "flow"
		netTime, horizon, err := solveFlow(cfg, spec, placement, simCfg, remoteBytes)
		if err != nil {
			return nil, err
		}
		res.NICTime = units.Seconds(netTime)
		res.FlowTime = units.Seconds(horizon)
		// The network overlaps the local pipeline like any other stage;
		// the joint solve bounds the epoch from below when shared links
		// make local I/O and network traffic non-separable.
		pipe1 := pipeline([]float64{node.IOTime.Sec(), netTime, node.ComputeTime.Sec(), node.SampleTime.Sec()}, iters)
		pipe2 := pipeline([]float64{horizon, node.ComputeTime.Sec(), node.SampleTime.Sec()}, iters)
		epoch = math.Max(pipe1, pipe2)
	} else {
		nicTime := 0.0
		if cfg.Nodes > 1 {
			nicTime = remoteBytes / float64(cfg.NICBW)
		}
		res.NICTime = units.Seconds(nicTime)
		epoch = pipeline([]float64{node.IOTime.Sec(), nicTime, node.ComputeTime.Sec(), node.SampleTime.Sec()}, iters)
	}

	res.EpochTime = units.Seconds(epoch)
	if epoch > 0 {
		res.Throughput = float64(w.Dataset.TrainVertices()) / epoch
	}
	return res, nil
}

// clusterSpec resolves the hierarchical network description, deriving a
// non-blocking single-switch core when none is given.
func clusterSpec(cfg Config) (topology.ClusterSpec, error) {
	if cfg.Cluster == nil {
		return topology.ClusterSpec{Nodes: cfg.Nodes, NICBW: cfg.NICBW}, nil
	}
	spec := cfg.Cluster.Defaults()
	if err := spec.Validate(); err != nil {
		return spec, err
	}
	if spec.Nodes != cfg.Nodes {
		return spec, fmt.Errorf("cluster: spec for %d nodes, config has %d", spec.Nodes, cfg.Nodes)
	}
	if cfg.NICBW > 0 && spec.NICBW != cfg.NICBW {
		return spec, fmt.Errorf("cluster: spec NIC %v disagrees with config NIC %v", spec.NICBW, cfg.NICBW)
	}
	return spec, nil
}

// pipeline is the per-node stage-overlap model shared with trainsim: the
// longest stage hides the others except on the fill/drain iterations.
func pipeline(stages []float64, iters float64) float64 {
	stageMax, stageSum := 0.0, 0.0
	for _, s := range stages {
		stageSum += s
		if s > stageMax {
			stageMax = s
		}
	}
	return stageMax + (stageSum-stageMax)/iters
}

// remoteTraffic derives the fraction of fetched bytes that cross the
// network. With ReplicateHot, the cached head (GPU+CPU hits) never leaves
// the node, and the replication axis pins a further hot head of the SSD
// tier into every node; only the remaining tail rolls crossFrac. Without
// it, cache contents are partitioned too and remote peers' requests for
// them also cross the wire (the legacy naive extension).
func remoteTraffic(node *trainsim.Result, r float64, nodes int, crossFrac float64, replicateHot bool) (float64, *ddak.ReplicationPlan, error) {
	if !replicateHot {
		frac := (1 - node.HitGPU/float64(nodes) - node.HitCPU/float64(nodes)) * float64(nodes-1) / float64(nodes)
		return frac, nil, nil
	}
	plan, err := ddak.PlanReplication(tailItems(node), r, nodes, crossFrac)
	if err != nil {
		return 0, nil, err
	}
	return plan.RemoteMass, &plan, nil
}

// tailItems extracts the SSD-tier remainder of the virtual access
// distribution: the cached mass (GPU + CPU hits) is skipped hot-first with
// a fractional boundary bucket, so the tail's total mass is exactly
// 1 - HitGPU - HitCPU and PlanReplication's r=0 endpoint reproduces the
// analytical remote base.
func tailItems(node *trainsim.Result) []ddak.Item {
	cached := node.HitGPU + node.HitCPU
	if node.Stats == nil {
		return nil
	}
	var items []ddak.Item
	acc := 0.0
	for i, h := range node.Stats.VirtualHot {
		b := node.Stats.VirtualBytes[i]
		switch {
		case acc+h <= cached:
			acc += h
		case acc < cached:
			// Boundary bucket: hotness density is uniform inside a
			// virtual bucket, so split bytes with the mass.
			keep := 1 - (cached-acc)/h
			items = append(items, ddak.Item{Hot: h * keep, Bytes: b * keep})
			acc = cached
		default:
			items = append(items, ddak.Item{Hot: h, Bytes: b})
		}
	}
	return items
}

// solveFlow builds and solves the whole-cluster flow network for the
// symmetric data-parallel epoch: every node re-imports its remote bytes
// through its NIC and serves the same volume to its peers. It returns the
// busiest network link's standalone time and the joint solve horizon.
func solveFlow(cfg Config, spec topology.ClusterSpec, placement *topology.Placement, simCfg trainsim.Config, remoteBytes float64) (netTime, horizon float64, err error) {
	demand, _, err := trainsim.PlanDemand(simCfg)
	if err != nil {
		return 0, 0, err
	}
	if cfg.NICOnGPUSocket && remoteBytes > 0 {
		// The fabric-attached NIC delivers imports through the portal
		// (uncharged on the ingress fabric) and drains exports from the
		// local SSD tier, so the node's own demand drops by the imported
		// volume and its storage budget by the exported one — totals stay
		// physical while every export byte fights local traffic on the
		// shared links it crosses.
		adj := *demand
		adj.PerGPU = append([]float64(nil), demand.PerGPU...)
		perGPU := remoteBytes / float64(len(adj.PerGPU))
		for i := range adj.PerGPU {
			adj.PerGPU[i] = math.Max(0, adj.PerGPU[i]-perGPU)
		}
		if adj.SSDPer != nil {
			adj.SSDPer = append([]float64(nil), demand.SSDPer...)
			left := remoteBytes
			for i := range adj.SSDPer {
				take := math.Min(adj.SSDPer[i], left/float64(len(adj.SSDPer)-i))
				adj.SSDPer[i] -= take
				left -= take
			}
		} else {
			adj.SSDTotal = math.Max(0, demand.SSDTotal-remoteBytes)
		}
		demand = &adj
	}
	cd := &flownet.ClusterDemand{
		Node:   make([]*flownet.Demand, spec.Nodes),
		Import: make([]float64, spec.Nodes),
		Export: make([]float64, spec.Nodes),
	}
	for j := 0; j < spec.Nodes; j++ {
		cd.Node[j] = demand
		cd.Import[j] = remoteBytes
		cd.Export[j] = remoteBytes
	}
	cn, err := flownet.BuildCluster(cfg.Node, placement, spec, cd, flownet.ClusterOptions{NICOnGPUSocket: cfg.NICOnGPUSocket})
	if err != nil {
		return 0, 0, err
	}
	h, err := cn.Solve()
	if err != nil {
		return 0, 0, err
	}
	nt, err := cn.NetworkTime()
	if err != nil {
		return 0, 0, err
	}
	return nt.Sec(), h.Sec(), nil
}

// Sweep simulates the cluster at every size in nodes and returns the
// results in order — the scaling study of the §5 extension.
func Sweep(cfg Config, nodes []int) ([]*Result, error) {
	var out []*Result
	for _, n := range nodes {
		c := cfg
		c.Nodes = n
		if c.Cluster != nil && c.Cluster.Nodes != n {
			// Re-derive the core for each size; a pinned spec only fits
			// its own node count.
			c.Cluster = nil
		}
		r, err := Simulate(c)
		if err != nil {
			return nil, fmt.Errorf("cluster: %d nodes: %w", n, err)
		}
		out = append(out, r)
	}
	return out, nil
}
