// Package cluster implements the multi-node generalization the paper
// sketches in §5 ("Generalization to Multi-node"): NICs join the hardware
// units of the topology graph, network links between NICs become edges,
// and Moment's optimization extends across machines by (1) replicating the
// hot head of the access distribution into every node's caches —
// "prioritizing local SSD/memory access" — and (2) partitioning the cold
// remainder across the nodes' SSD fleets, so only the partitioned tail
// crosses the network.
//
// Each node's intra-machine behaviour reuses the single-machine pipeline
// (placement search, DDAK, fabric simulation); the cross-node stage models
// each NIC as a full-duplex link into a non-blocking core switch. NIC↔PCIe
// contention inside a node is not modeled (the NIC hangs off the socket
// opposite the GPUs on the evaluated machines), which this package notes as
// its main simplification.
package cluster

import (
	"fmt"
	"math"

	"moment/internal/core"
	"moment/internal/topology"
	"moment/internal/trainsim"
	"moment/internal/units"
)

// Config describes a homogeneous cluster running one data-parallel job.
type Config struct {
	// Node is the per-node machine (GPUs, SSDs, topology).
	Node *topology.Machine
	// Nodes is the cluster size.
	Nodes int
	// NICBW is each node's full-duplex network bandwidth.
	NICBW units.Bandwidth
	// Workload is the cluster-wide training job.
	Workload trainsim.Workload

	// Placement fixes each node's hardware placement; nil runs the
	// automatic module once and replicates the winner (nodes are
	// homogeneous).
	Placement *topology.Placement
	// ReplicateHot disables/enables the §5 locality optimization: when
	// false, all non-cached data is partitioned and (Nodes-1)/Nodes of
	// every fetch crosses the network (the naive extension).
	// Default true.
	ReplicateHot *bool
	// Sim forwards per-node simulation knobs.
	Sim trainsim.Config
}

// Result is one simulated cluster epoch.
type Result struct {
	OOM string

	EpochTime units.Duration
	// LocalIO is the per-node intra-machine I/O critical path.
	LocalIO units.Duration
	// NICTime is the per-node network stage (ingress-bound, full duplex).
	NICTime units.Duration
	// ComputeTime and SampleTime are per-node per-epoch stage totals.
	ComputeTime units.Duration
	SampleTime  units.Duration

	// RemoteFraction is the share of fetched bytes that crossed the
	// network.
	RemoteFraction float64
	// PerNodeFetch is the feature bytes each node consumed.
	PerNodeFetch float64
	// Throughput is cluster-wide training vertices per second.
	Throughput float64
	// Placement is the per-node hardware placement used.
	Placement *topology.Placement
	// Node is the per-node epoch detail.
	Node *trainsim.Result
}

// Simulate runs one cluster epoch.
func Simulate(cfg Config) (*Result, error) {
	if cfg.Node == nil {
		return nil, fmt.Errorf("cluster: nil node machine")
	}
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: non-positive node count")
	}
	if cfg.NICBW <= 0 && cfg.Nodes > 1 {
		return nil, fmt.Errorf("cluster: multi-node cluster needs NIC bandwidth")
	}
	replicateHot := true
	if cfg.ReplicateHot != nil {
		replicateHot = *cfg.ReplicateHot
	}
	w := cfg.Workload.Defaults()
	w.NumGPUs = cfg.Node.NumGPUs

	// Per-node epoch share: training vertices split evenly across nodes.
	totalBatches := int(math.Ceil(float64(w.Dataset.TrainVertices()) / float64(w.BatchSize)))
	w.EpochBatches = (totalBatches + cfg.Nodes - 1) / cfg.Nodes

	// Storage feasibility: each node's SSDs hold its 1/Nodes shard of the
	// cold features plus (with replication) nothing extra — the hot head
	// lives in caches, not on disk twice.
	shardBytes := float64(w.Dataset.FeatureStorage.Int64()) / float64(cfg.Nodes)
	nodeSSD := float64(cfg.Node.SSDCapacity.Int64()) * float64(cfg.Node.NumSSDs)
	if shardBytes > nodeSSD {
		return &Result{OOM: fmt.Sprintf(
			"ssd capacity: %.1f TiB shard exceeds %.1f TiB per node",
			shardBytes/(1<<40), nodeSSD/(1<<40))}, nil
	}

	// Hardware placement: search once, replicate (homogeneous nodes).
	placement := cfg.Placement
	if placement == nil {
		plan, err := core.CoOptimize(core.Input{Machine: cfg.Node, Workload: w})
		if err != nil {
			return nil, err
		}
		placement = plan.Placement
	}

	// Intra-node epoch: the node behaves like a single machine consuming
	// its batch share; its SSD tier serves the node's own shard locally
	// and, symmetrically, the same byte volume on behalf of remote peers,
	// so local fabric load matches the single-machine simulation.
	simCfg := cfg.Sim
	simCfg.Machine = cfg.Node
	simCfg.Placement = placement
	simCfg.Workload = w
	simCfg.StorageShardFrac = 1 / float64(cfg.Nodes)
	node, err := trainsim.SimulateEpoch(simCfg)
	if err != nil {
		return nil, err
	}
	if node.OOM != "" {
		return &Result{OOM: node.OOM}, nil
	}

	// Network stage: of the SSD-tier bytes a node fetches, (Nodes-1)/Nodes
	// live on remote shards. With ReplicateHot, the cached head (GPU+CPU
	// hits) never leaves the node; without it, cache contents are
	// partitioned too and remote peers' requests for them also cross the
	// wire.
	remoteBase := 1 - node.HitGPU - node.HitCPU // SSD-tier share of fetches
	if remoteBase < 0 {
		remoteBase = 0
	}
	if !replicateHot {
		remoteBase = 1 - node.HitGPU/float64(cfg.Nodes) - node.HitCPU/float64(cfg.Nodes)
	}
	remoteFrac := remoteBase * float64(cfg.Nodes-1) / float64(cfg.Nodes)
	remoteBytes := node.FetchEpoch * remoteFrac
	nicTime := 0.0
	if cfg.Nodes > 1 {
		nicTime = remoteBytes / float64(cfg.NICBW)
	}

	// Pipelined cluster epoch per node: the network stage overlaps the
	// local pipeline like any other stage.
	stages := []float64{node.IOTime.Sec(), nicTime, node.ComputeTime.Sec(), node.SampleTime.Sec()}
	stageMax, stageSum := 0.0, 0.0
	for _, s := range stages {
		stageSum += s
		if s > stageMax {
			stageMax = s
		}
	}
	iters := math.Max(1, math.Ceil(float64(w.EpochBatches)/float64(cfg.Node.NumGPUs)))
	epoch := stageMax + (stageSum-stageMax)/iters

	res := &Result{
		EpochTime:      units.Seconds(epoch),
		LocalIO:        node.IOTime,
		NICTime:        units.Seconds(nicTime),
		ComputeTime:    node.ComputeTime,
		SampleTime:     node.SampleTime,
		RemoteFraction: remoteFrac,
		PerNodeFetch:   node.FetchEpoch,
		Placement:      placement,
		Node:           node,
	}
	if epoch > 0 {
		res.Throughput = float64(w.Dataset.TrainVertices()) / epoch
	}
	return res, nil
}

// Sweep simulates the cluster at every size in nodes and returns the
// results in order — the scaling study of the §5 extension.
func Sweep(cfg Config, nodes []int) ([]*Result, error) {
	var out []*Result
	for _, n := range nodes {
		c := cfg
		c.Nodes = n
		r, err := Simulate(c)
		if err != nil {
			return nil, fmt.Errorf("cluster: %d nodes: %w", n, err)
		}
		out = append(out, r)
	}
	return out, nil
}
