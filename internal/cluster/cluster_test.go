package cluster

import (
	"testing"

	"moment/internal/gnn"
	"moment/internal/graph"
	"moment/internal/topology"
	"moment/internal/trainsim"
	"moment/internal/units"
)

func cfg(t *testing.T, nodes int, nic units.Bandwidth) Config {
	t.Helper()
	d, err := graph.DatasetByName("UK")
	if err != nil {
		t.Fatal(err)
	}
	m := topology.MachineB()
	p, err := topology.MomentPlacementB(m)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Node:      m,
		Nodes:     nodes,
		NICBW:     nic,
		Workload:  trainsim.Workload{Dataset: d, Model: gnn.KindSAGE},
		Placement: p,
	}
}

func TestSingleNodeMatchesSingleMachine(t *testing.T) {
	c := cfg(t, 1, units.Gbps(100))
	r, err := Simulate(c)
	if err != nil {
		t.Fatal(err)
	}
	if r.OOM != "" {
		t.Fatal(r.OOM)
	}
	if r.RemoteFraction != 0 || r.NICTime != 0 {
		t.Errorf("1-node cluster has network traffic: %v / %v", r.RemoteFraction, r.NICTime)
	}
	single, err := trainsim.SimulateEpoch(trainsim.Config{
		Machine: c.Node, Placement: c.Placement, Workload: c.Workload})
	if err != nil {
		t.Fatal(err)
	}
	rel := (r.EpochTime - single.EpochTime).Sec() / single.EpochTime.Sec()
	if rel > 0.01 || rel < -0.01 {
		t.Errorf("1-node epoch %v != single machine %v", r.EpochTime, single.EpochTime)
	}
}

func TestScalingImprovesThroughput(t *testing.T) {
	results, err := Sweep(cfg(t, 0, units.Gbps(100)), []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Throughput <= results[i-1].Throughput {
			t.Errorf("throughput did not grow: %d nodes %.0f <= previous %.0f",
				1<<i, results[i].Throughput, results[i-1].Throughput)
		}
	}
	// Sublinear: network and fixed per-node costs eat into scaling.
	if s := results[2].Throughput / results[0].Throughput; s > 4 {
		t.Errorf("4-node speedup %.2f superlinear", s)
	}
}

func TestSlowNICBindsEpoch(t *testing.T) {
	fast, err := Simulate(cfg(t, 4, units.Gbps(200)))
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Simulate(cfg(t, 4, units.Gbps(10)))
	if err != nil {
		t.Fatal(err)
	}
	if slow.EpochTime.Sec() <= fast.EpochTime.Sec() {
		t.Errorf("slow NIC epoch %v <= fast %v", slow.EpochTime, fast.EpochTime)
	}
	if slow.NICTime.Sec() <= slow.LocalIO.Sec() {
		t.Errorf("10 Gbps NIC should dominate: nic %v vs io %v", slow.NICTime, slow.LocalIO)
	}
}

func TestHotReplicationReducesNetwork(t *testing.T) {
	// §5: prioritizing local SSD/memory access mitigates network cost.
	off := false
	naive := cfg(t, 4, units.Gbps(50))
	naive.ReplicateHot = &off
	rNaive, err := Simulate(naive)
	if err != nil {
		t.Fatal(err)
	}
	rLocal, err := Simulate(cfg(t, 4, units.Gbps(50)))
	if err != nil {
		t.Fatal(err)
	}
	if rLocal.RemoteFraction >= rNaive.RemoteFraction {
		t.Errorf("replication did not cut remote traffic: %.3f vs %.3f",
			rLocal.RemoteFraction, rNaive.RemoteFraction)
	}
	if rLocal.EpochTime.Sec() > rNaive.EpochTime.Sec() {
		t.Errorf("locality made things slower: %v vs %v", rLocal.EpochTime, rNaive.EpochTime)
	}
}

func TestAutoPlacementWhenNil(t *testing.T) {
	c := cfg(t, 2, units.Gbps(100))
	c.Placement = nil
	r, err := Simulate(c)
	if err != nil {
		t.Fatal(err)
	}
	if r.Placement == nil {
		t.Fatal("no placement chosen")
	}
	if err := r.Placement.Validate(c.Node); err != nil {
		t.Fatal(err)
	}
}

func TestShardOOM(t *testing.T) {
	c := cfg(t, 1, units.Gbps(100))
	m := c.Node.Clone()
	m.SSDCapacity = 1 << 38 // 256 GiB per SSD: UK's 3.2 TiB shard won't fit
	c.Node = m
	r, err := Simulate(c)
	if err != nil {
		t.Fatal(err)
	}
	if r.OOM == "" {
		t.Error("expected shard OOM")
	}
	// More nodes shrink the shard until it fits.
	c.Nodes = 4
	r4, err := Simulate(c)
	if err != nil {
		t.Fatal(err)
	}
	if r4.OOM != "" {
		t.Errorf("4-node shard should fit: %s", r4.OOM)
	}
}

func TestConfigErrors(t *testing.T) {
	if _, err := Simulate(Config{}); err == nil {
		t.Error("nil node accepted")
	}
	c := cfg(t, 0, units.Gbps(100))
	if _, err := Simulate(c); err == nil {
		t.Error("zero nodes accepted")
	}
	c = cfg(t, 2, 0)
	if _, err := Simulate(c); err == nil {
		t.Error("multi-node without NIC accepted")
	}
}
