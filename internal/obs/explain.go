package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Explain is a per-request provenance trail: the planner appends one step
// per decision it makes — candidates enumerated and pruned (with reasons),
// score-cache and warm-start hits, bisector work, knapsack fills, the final
// score breakdown — and the caller renders or serializes the collected
// trail. It answers "why this plan" the way the flight recorder answers
// "what just happened": per-decision rather than aggregate.
//
// A nil *Explain ignores Add without allocating, so planner hot paths
// record steps unconditionally. Rendering is deterministic: steps sort on
// (Seq, Stage, Subject, Reason, Count, Value) and floats format with
// strconv's shortest round-trip form, so a fixed request renders
// byte-identically across runs — the property the golden tests and the
// /v1/explain endpoint rely on.
type Explain struct {
	mu      sync.Mutex
	limit   int
	reasons *LabelCap
	steps   []ExplainStep
	dropped int
}

// ExplainStep is one recorded decision.
type ExplainStep struct {
	// Seq orders steps: per-candidate steps carry the candidate's
	// enumeration index, run-level summary steps carry SeqSummary so they
	// sort last.
	Seq int `json:"seq"`
	// Stage names the decision point: "prune", "score", "bisect",
	// "restart", "move", "replan", "ddak", "search", "result", "plan".
	Stage   string  `json:"stage"`
	Subject string  `json:"subject,omitempty"` // candidate/bin/device name
	Reason  string  `json:"reason,omitempty"`  // why, capped cardinality
	Value   float64 `json:"value,omitempty"`   // stage-specific scalar
	Count   int     `json:"count,omitempty"`   // stage-specific count
}

// SeqSummary is the Seq for run-level summary steps; larger than any
// enumeration index, so summaries render after per-candidate steps.
const SeqSummary = 1 << 30

// NewExplain returns a trail holding up to 4096 steps with reason
// cardinality capped at 64.
func NewExplain() *Explain { return NewExplainLimit(0, 0) }

// NewExplainLimit is NewExplain with explicit bounds (<= 0 picks the
// defaults).
func NewExplainLimit(maxSteps, reasonCap int) *Explain {
	if maxSteps <= 0 {
		maxSteps = 4096
	}
	if reasonCap <= 0 {
		reasonCap = 64
	}
	return &Explain{limit: maxSteps, reasons: NewLabelCap(reasonCap)}
}

// Add records one step. Steps past the limit are counted as dropped rather
// than stored; reasons pass through the trail's LabelCap. No-op (and
// alloc-free) on a nil trail.
func (e *Explain) Add(step ExplainStep) {
	if e == nil {
		return
	}
	e.mu.Lock()
	if len(e.steps) >= e.limit {
		e.dropped++
		e.mu.Unlock()
		return
	}
	step.Reason = e.reasons.Get(step.Reason)
	e.steps = append(e.steps, step)
	e.mu.Unlock()
}

// Len reports the number of recorded steps.
func (e *Explain) Len() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.steps)
}

// Dropped reports steps discarded past the limit.
func (e *Explain) Dropped() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dropped
}

// Steps returns the trail in deterministic order: (Seq, Stage, Subject,
// Reason, Count, Value). Concurrent recorders (the streaming search) append
// in arrival order, so the sort — not insertion — defines the canonical
// order.
func (e *Explain) Steps() []ExplainStep {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	out := make([]ExplainStep, len(e.steps))
	copy(out, e.steps)
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		if a.Stage != b.Stage {
			return a.Stage < b.Stage
		}
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		if a.Reason != b.Reason {
			return a.Reason < b.Reason
		}
		if a.Count != b.Count {
			return a.Count < b.Count
		}
		return a.Value < b.Value
	})
	return out
}

// fmtFloat renders v in the shortest form that round-trips — the
// deterministic float formatting every explain surface shares.
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Render writes the trail as deterministic plain text, one step per line.
func (e *Explain) Render() string {
	if e == nil {
		return ""
	}
	var b strings.Builder
	for _, s := range e.Steps() {
		if s.Seq == SeqSummary {
			fmt.Fprintf(&b, "[  sum] %s", s.Stage)
		} else {
			fmt.Fprintf(&b, "[%5d] %s", s.Seq, s.Stage)
		}
		if s.Subject != "" {
			b.WriteByte(' ')
			b.WriteString(s.Subject)
		}
		if s.Reason != "" {
			b.WriteString(" reason=")
			b.WriteString(s.Reason)
		}
		if s.Count != 0 {
			b.WriteString(" count=")
			b.WriteString(strconv.Itoa(s.Count))
		}
		if s.Value != 0 {
			b.WriteString(" value=")
			b.WriteString(fmtFloat(s.Value))
		}
		b.WriteByte('\n')
	}
	if d := e.Dropped(); d > 0 {
		fmt.Fprintf(&b, "[  sum] truncated dropped=%d\n", d)
	}
	return b.String()
}

// explainDumpJSON is the wire form of a trail.
type explainDumpJSON struct {
	Dropped int           `json:"dropped"`
	Steps   []ExplainStep `json:"steps"`
}

// WriteJSON dumps the trail as JSON in the same deterministic order Render
// uses.
func (e *Explain) WriteJSON(w io.Writer) error {
	dump := explainDumpJSON{Steps: []ExplainStep{}}
	if e != nil {
		dump.Dropped = e.Dropped()
		dump.Steps = e.Steps()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}
