package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestWatchdogRuleMax(t *testing.T) {
	o := New()
	w := &Watchdog{Obs: o, Rules: []Rule{
		{Name: "queue-depth", Series: "queue_depth", Kind: RuleMax, Max: 10},
	}}
	o.Gauge("queue_depth").Set(5)
	if trip, err := w.Check(); err != nil || trip != nil {
		t.Fatalf("below threshold tripped: %+v, %v", trip, err)
	}
	o.Gauge("queue_depth").Set(11)
	trip, err := w.Check()
	if err != nil || trip == nil {
		t.Fatalf("above threshold did not trip: %v", err)
	}
	if trip.Rule != "queue-depth" || trip.Value != 11 || trip.Limit != 10 {
		t.Fatalf("trip = %+v", trip)
	}
}

func TestWatchdogRuleDeltaMax(t *testing.T) {
	o := New()
	w := &Watchdog{Obs: o, Cooldown: time.Nanosecond, Rules: []Rule{
		{Name: "shed-storm", Series: "shed_total", Kind: RuleDeltaMax, Max: 3},
	}}
	// Labeled series sum into the rule's value.
	o.Counter("shed_total", L("reason", "queue")).Add(2)
	o.Counter("shed_total", L("reason", "mem")).Add(1)
	if trip, _ := w.Check(); trip != nil {
		t.Fatalf("delta 3 <= max 3 tripped: %+v", trip)
	}
	o.Counter("shed_total", L("reason", "queue")).Add(4)
	trip, _ := w.Check()
	if trip == nil || trip.Value != 4 {
		t.Fatalf("delta 4 should trip with value 4: %+v", trip)
	}
	// Counter flat since last check: delta 0, no trip.
	if trip, _ := w.Check(); trip != nil {
		t.Fatalf("flat counter tripped: %+v", trip)
	}
}

func TestWatchdogRuleRegress(t *testing.T) {
	o := New()
	w := &Watchdog{Obs: o, Cooldown: time.Nanosecond, Rules: []Rule{
		{Name: "epoch-regress", Series: "epoch_sec", Kind: RuleRegress, Factor: 1.5, MinSamples: 3},
	}}
	// Warmup: a big value during warmup must not trip.
	for _, v := range []float64{1.0, 1.1, 0.9} {
		o.Gauge("epoch_sec").Set(v)
		if trip, _ := w.Check(); trip != nil {
			t.Fatalf("tripped during warmup at %v: %+v", v, trip)
		}
	}
	o.Gauge("epoch_sec").Set(1.05)
	if trip, _ := w.Check(); trip != nil {
		t.Fatalf("normal sample tripped: %+v", trip)
	}
	o.Gauge("epoch_sec").Set(5)
	trip, _ := w.Check()
	if trip == nil {
		t.Fatal("5x baseline did not trip")
	}
	// The tripping sample must not fold into the baseline: a second
	// anomalous sample still trips.
	o.Gauge("epoch_sec").Set(5)
	if trip, _ := w.Check(); trip == nil {
		t.Fatal("anomaly normalized itself into the baseline")
	}
}

func TestWatchdogCooldownOneBundle(t *testing.T) {
	dir := t.TempDir()
	o := New()
	o.EnableFlight(256)
	o.Event(Event{Kind: EvAdmission, Name: "shed", Reason: "queue-full"})
	var trips []Trip
	w := &Watchdog{Obs: o, Dir: dir, Cooldown: time.Hour,
		OnTrip: func(tr Trip) { trips = append(trips, tr) },
		Rules: []Rule{
			{Name: "shed-storm", Series: "shed_total", Kind: RuleMax, Max: 0},
		}}
	o.Counter("shed_total").Add(7)
	for i := 0; i < 5; i++ {
		if _, err := w.Check(); err != nil {
			t.Fatal(err)
		}
	}
	w.Stop() // final check, still inside cooldown
	if w.Trips() != 1 || len(trips) != 1 {
		t.Fatalf("trips = %d (hook %d), want exactly 1", w.Trips(), len(trips))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("bundles = %d, want exactly 1", len(entries))
	}
	bundle := filepath.Join(dir, entries[0].Name())
	if !strings.Contains(entries[0].Name(), "shed-storm") {
		t.Fatalf("bundle name %q missing rule name", entries[0].Name())
	}
	for _, f := range []string{"trip.json", "flight.json", "metrics.prom", "goroutines.txt", "heap.txt"} {
		if _, err := os.Stat(filepath.Join(bundle, f)); err != nil {
			t.Fatalf("bundle missing %s: %v", f, err)
		}
	}
	// flight.json must span the trigger: the pre-trip shed event AND the
	// watchdog trip event itself.
	raw, err := os.ReadFile(filepath.Join(bundle, "flight.json"))
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Events []struct {
			Kind string `json:"kind"`
			Name string `json:"name"`
		} `json:"events"`
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatal(err)
	}
	var sawShed, sawTrip bool
	for _, ev := range dump.Events {
		if ev.Kind == "admission" && ev.Name == "shed" {
			sawShed = true
		}
		if ev.Kind == "watchdog" && ev.Name == "trip" {
			sawTrip = true
		}
	}
	if !sawShed || !sawTrip {
		t.Fatalf("flight.json must span the trigger: shed=%v trip=%v", sawShed, sawTrip)
	}
	// trip.json round-trips and names its bundle.
	raw, _ = os.ReadFile(filepath.Join(bundle, "trip.json"))
	var tr Trip
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Rule != "shed-storm" || tr.Bundle != "" { // Bundle set after write
		t.Fatalf("trip.json = %+v", tr)
	}
	// The trips counter is still visible in metrics even during cooldown.
	snap := o.Metrics().Snapshot()
	if got := seriesSum(snap, "watchdog_trips_total"); got != 5+1 { // 5 checks + final
		t.Fatalf("watchdog_trips_total = %v, want 6", got)
	}
}

func TestWatchdogStartStop(t *testing.T) {
	o := New()
	w := &Watchdog{Obs: o, Interval: time.Millisecond, Cooldown: time.Hour, Rules: []Rule{
		{Name: "g", Series: "g", Kind: RuleMax, Max: 0},
	}}
	w.Start()
	o.Gauge("g").Set(1)
	deadline := time.Now().Add(2 * time.Second)
	for w.Trips() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	w.Stop()
	w.Stop() // idempotent
	if w.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", w.Trips())
	}
}

func TestWatchdogNilSafe(t *testing.T) {
	var w *Watchdog
	if trip, err := w.Check(); trip != nil || err != nil {
		t.Fatal("nil watchdog Check should no-op")
	}
	w.Start()
	w.Stop()
	if w.Trips() != 0 {
		t.Fatal("nil watchdog Trips != 0")
	}
	// Watchdog with no observer is also inert.
	w2 := &Watchdog{}
	if trip, err := w2.Check(); trip != nil || err != nil {
		t.Fatal("observer-less watchdog Check should no-op")
	}
}

func TestSeriesSum(t *testing.T) {
	snap := map[string]float64{
		"shed_total":                 1,
		`shed_total{reason="queue"}`: 2,
		`shed_total{reason="mem"}`:   3,
		"shed_total_other":           100, // different metric, not summed
	}
	if got := seriesSum(snap, "shed_total"); got != 6 {
		t.Fatalf("seriesSum = %v, want 6", got)
	}
}
