// Package obs is Moment's dependency-free observability layer: a
// hierarchical span tracer exporting Chrome trace_event JSON (viewable in
// Perfetto or chrome://tracing), a metrics registry (counters, gauges,
// histograms) with Prometheus-text and JSON exposition, and an injectable
// leveled logger so library code never writes to stdout unconditionally.
//
// The layer is built around a nil-receiver fast path: a nil *Observer (the
// disabled state) makes every call a no-op with zero allocations, so hot
// paths — max-flow solves, DDAK pool steps, candidate scoring — can be
// instrumented unconditionally. Enabling costs one span allocation per
// Begin and atomic adds per metric update.
//
//	o := obs.New()
//	sp := o.Begin("placement.search")
//	o.Counter("candidates_scored_total").Add(float64(n))
//	sp.End()
//	o.WriteTrace(f)       // Chrome trace-event JSON
//	o.WritePrometheus(os.Stdout)
//
// Spans nest two ways: Child keeps the parent's track (sequential work,
// rendered nested by time containment), Fork opens a new track (concurrent
// work, e.g. one per placement-search worker). Observer.In(span) scopes an
// observer so subsequent Begin calls become children of span, which lets a
// caller thread hierarchy through packages that only accept an *Observer.
package obs

import (
	"io"
	"sync/atomic"
)

// Observer bundles a tracer, a metrics registry, a logger and (optionally)
// a flight recorder. The zero value and the nil pointer are both valid,
// fully disabled observers.
type Observer struct {
	tracer   *Tracer
	metrics  *Registry
	logger   *Logger
	recorder *FlightRecorder // nil until EnableFlight
	parent   *Span           // non-nil for scoped observers created by In
}

// New returns an enabled observer with a fresh tracer and registry and a
// discarding logger (route it with SetLogOutput).
func New() *Observer {
	return &Observer{tracer: NewTracer(), metrics: NewRegistry(), logger: NewLogger(nil)}
}

// Tracer returns the observer's tracer (nil when disabled).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// Metrics returns the observer's registry (nil when disabled).
func (o *Observer) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.metrics
}

// Begin opens a span. Scoped observers (see In) open a child of their
// scope span; otherwise the span starts a new track. Nil-safe: returns a
// nil span, whose methods are all no-ops, without allocating.
func (o *Observer) Begin(name string) *Span {
	if o == nil || o.tracer == nil {
		return nil
	}
	if o.parent != nil {
		return o.parent.Child(name)
	}
	return o.tracer.Begin(name)
}

// In returns a copy of the observer scoped under span: its Begin calls
// produce children of span. Nil observer or nil span pass through
// unchanged (a nil span leaves the observer unscoped rather than silently
// disabling metrics).
func (o *Observer) In(span *Span) *Observer {
	if o == nil || span == nil {
		return o
	}
	scoped := *o
	scoped.parent = span
	return &scoped
}

// Counter returns the named counter, creating it on first use. Nil-safe:
// a disabled observer returns a nil counter whose methods no-op.
func (o *Observer) Counter(name string, labels ...Label) *Counter {
	if o == nil || o.metrics == nil {
		return nil
	}
	return o.metrics.Counter(name, labels...)
}

// Gauge returns the named gauge, creating it on first use.
func (o *Observer) Gauge(name string, labels ...Label) *Gauge {
	if o == nil || o.metrics == nil {
		return nil
	}
	return o.metrics.Gauge(name, labels...)
}

// Histogram returns the named histogram, creating it on first use.
func (o *Observer) Histogram(name string, labels ...Label) *Histogram {
	if o == nil || o.metrics == nil {
		return nil
	}
	return o.metrics.Histogram(name, labels...)
}

// EnableFlight attaches a flight recorder holding the most recent `size`
// events (see NewFlightRecorder for defaults) and points the tracer at it so
// span completions land on the ring too. Idempotent: a second call returns
// the existing recorder. Call before sharing the observer across goroutines.
func (o *Observer) EnableFlight(size int) *FlightRecorder {
	if o == nil {
		return nil
	}
	if o.recorder == nil {
		o.recorder = NewFlightRecorder(size)
		o.tracer.SetFlight(o.recorder)
	}
	return o.recorder
}

// Flight returns the attached flight recorder, or nil when disabled.
func (o *Observer) Flight() *FlightRecorder {
	if o == nil {
		return nil
	}
	return o.recorder
}

// FlightEnabled reports whether a flight recorder is attached. Call sites
// that must build event strings (fmt.Sprintf) check this first so the
// disabled path stays alloc-free.
func (o *Observer) FlightEnabled() bool {
	return o != nil && o.recorder != nil
}

// Event records ev on the flight recorder. No-op (and alloc-free: ev is a
// value copy) when the observer or recorder is disabled.
func (o *Observer) Event(ev Event) {
	if o == nil {
		return
	}
	o.recorder.Record(ev)
}

// Logf writes one formatted diagnostic line through the observer's logger.
// Disabled observers and loggers without an output discard it.
func (o *Observer) Logf(format string, args ...any) {
	if o == nil {
		return
	}
	o.logger.Printf(format, args...)
}

// SetLogOutput routes the observer's diagnostic log to w (nil discards).
func (o *Observer) SetLogOutput(w io.Writer) {
	if o == nil || o.logger == nil {
		return
	}
	o.logger.SetOutput(w)
}

// WriteTrace writes the collected spans as Chrome trace-event JSON.
func (o *Observer) WriteTrace(w io.Writer) error {
	if o == nil || o.tracer == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	return o.tracer.WriteTrace(w)
}

// WritePrometheus writes the registry in Prometheus text exposition format.
func (o *Observer) WritePrometheus(w io.Writer) error {
	if o == nil || o.metrics == nil {
		return nil
	}
	return o.metrics.WritePrometheus(w)
}

// WriteMetricsJSON writes the registry as a JSON document.
func (o *Observer) WriteMetricsJSON(w io.Writer) error {
	if o == nil || o.metrics == nil {
		_, err := io.WriteString(w, "{}")
		return err
	}
	return o.metrics.WriteJSON(w)
}

// defaultObserver is the process-wide fallback used by entry points whose
// callers did not inject an observer (e.g. experiments regenerated through
// momentbench). It stays nil — fully disabled — unless SetDefault is
// called, so the fallback costs one atomic load.
var defaultObserver atomic.Pointer[Observer]

// SetDefault installs the process-wide fallback observer (nil disables).
func SetDefault(o *Observer) { defaultObserver.Store(o) }

// Default returns the process-wide fallback observer, or nil.
func Default() *Observer { return defaultObserver.Load() }

// Active returns o when non-nil, the process default otherwise. Library
// entry points call this once so explicit injection wins over the global.
func Active(o *Observer) *Observer {
	if o != nil {
		return o
	}
	return Default()
}
