package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderBasics(t *testing.T) {
	r := NewFlightRecorder(8)
	if got := r.Len(); got != 0 {
		t.Fatalf("empty ring Len = %d, want 0", got)
	}
	r.Record(Event{Kind: EvAdmission, Name: "shed", Subject: "tenant-a", Reason: "queue-full", V1: 1})
	r.Record(Event{Kind: EvCache, Name: "plan-cache-hit", Subject: "tenant-a"})
	if got := r.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	evs := r.Events()
	if len(evs) != 2 || evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Fatalf("Events = %+v, want seq 1,2", evs)
	}
	if evs[0].Name != "shed" || evs[0].Reason != "queue-full" {
		t.Fatalf("first event = %+v", evs[0])
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", r.Dropped())
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	r := NewFlightRecorder(4) // power of two already
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: EvSpan, Name: "s"})
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len after wrap = %d, want 4", got)
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("Dropped = %d, want 6", got)
	}
	evs := r.Events()
	want := uint64(7)
	for _, ev := range evs {
		if ev.Seq != want {
			t.Fatalf("got seq %d, want %d (events %+v)", ev.Seq, want, evs)
		}
		want++
	}
}

func TestFlightRecorderSizeRounding(t *testing.T) {
	r := NewFlightRecorder(5)
	if len(r.slots) != 8 {
		t.Fatalf("size 5 rounds to %d slots, want 8", len(r.slots))
	}
	r = NewFlightRecorder(0)
	if len(r.slots) != 4096 {
		t.Fatalf("size 0 defaults to %d slots, want 4096", len(r.slots))
	}
}

func TestFlightRecorderLabelCaps(t *testing.T) {
	r := NewFlightRecorder(4096)
	// Subjects cap at 128 distinct values, reasons at 64.
	for i := 0; i < 200; i++ {
		r.Record(Event{Name: "e", Subject: "s" + string(rune('0'+i%10)) + string(rune('a'+i/10)), Reason: "r" + string(rune('0'+i%10)) + string(rune('a'+i/10))})
	}
	subjects, reasons := map[string]bool{}, map[string]bool{}
	for _, ev := range r.Events() {
		subjects[ev.Subject] = true
		reasons[ev.Reason] = true
	}
	if !subjects[Overflow] {
		t.Fatalf("expected overflow subject after 200 distinct values; got %d subjects", len(subjects))
	}
	if !reasons[Overflow] {
		t.Fatalf("expected overflow reason after 200 distinct values; got %d reasons", len(reasons))
	}
	if len(subjects) > 129 { // 128 kept + overflow
		t.Fatalf("subject cardinality %d exceeds cap", len(subjects))
	}
	if len(reasons) > 65 {
		t.Fatalf("reason cardinality %d exceeds cap", len(reasons))
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	r := NewFlightRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(Event{Kind: EvCache, Name: "hit"})
			}
		}()
	}
	// Concurrent reader: dumps must not block or corrupt.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			r.Events()
			r.WriteJSON(&bytes.Buffer{})
		}
	}()
	wg.Wait()
	if got := r.next.Load(); got != 4000 {
		t.Fatalf("recorded %d events, want 4000", got)
	}
	evs := r.Events()
	if len(evs) != 64 {
		t.Fatalf("ring holds %d events, want 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestFlightRecorderWriteJSON(t *testing.T) {
	r := NewFlightRecorder(8)
	r.Record(Event{Kind: EvWatchdog, Name: "trip", Subject: "shed-storm", Reason: "momentd_shed_total", V1: 12, V2: 1})
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Dropped uint64 `json:"dropped"`
		Events  []struct {
			Seq     uint64  `json:"seq"`
			Kind    string  `json:"kind"`
			Name    string  `json:"name"`
			Subject string  `json:"subject"`
			V1      float64 `json:"v1"`
		} `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(dump.Events) != 1 || dump.Events[0].Kind != "watchdog" || dump.Events[0].V1 != 12 {
		t.Fatalf("dump = %+v", dump)
	}

	// Nil recorder still writes a well-formed empty dump.
	buf.Reset()
	var nilr *FlightRecorder
	if err := nilr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"events": []`) {
		t.Fatalf("nil dump = %s", buf.String())
	}
}

func TestNilFlightRecorderNoops(t *testing.T) {
	var r *FlightRecorder
	r.Record(Event{Name: "x"})
	if r.Len() != 0 || r.Dropped() != 0 || r.Events() != nil {
		t.Fatal("nil recorder should report empty")
	}
}

func TestObserverFlightWiring(t *testing.T) {
	o := New()
	if o.FlightEnabled() {
		t.Fatal("flight enabled before EnableFlight")
	}
	if o.Flight() != nil {
		t.Fatal("Flight() non-nil before EnableFlight")
	}
	o.Event(Event{Name: "dropped-on-floor"}) // must not panic

	r := o.EnableFlight(16)
	if r == nil || !o.FlightEnabled() || o.Flight() != r {
		t.Fatal("EnableFlight wiring broken")
	}
	if again := o.EnableFlight(32); again != r {
		t.Fatal("EnableFlight not idempotent")
	}
	o.Event(Event{Kind: EvAdmission, Name: "admit"})
	if r.Len() != 1 {
		t.Fatalf("ring Len = %d, want 1", r.Len())
	}

	// Span completions mirror onto the ring.
	sp := o.Begin("solve")
	sp.End()
	evs := r.Events()
	if len(evs) != 2 || evs[1].Kind != EvSpan || evs[1].Name != "solve" {
		t.Fatalf("span event missing: %+v", evs)
	}

	// Nil observer paths.
	var nilo *Observer
	nilo.Event(Event{Name: "x"})
	if nilo.EnableFlight(8) != nil || nilo.Flight() != nil || nilo.FlightEnabled() {
		t.Fatal("nil observer flight methods should no-op")
	}
}

func TestDisabledFlightZeroAllocs(t *testing.T) {
	var r *FlightRecorder
	allocs := testing.AllocsPerRun(100, func() {
		r.Record(Event{Kind: EvCache, Name: "hit", Subject: "t", Reason: "warm", V1: 1, V2: 2})
	})
	if allocs != 0 {
		t.Fatalf("nil FlightRecorder.Record allocates %v/op, want 0", allocs)
	}
	var o *Observer
	allocs = testing.AllocsPerRun(100, func() {
		o.Event(Event{Kind: EvCache, Name: "hit"})
	})
	if allocs != 0 {
		t.Fatalf("nil Observer.Event allocates %v/op, want 0", allocs)
	}
	enabled := New() // enabled observer without a recorder: still zero
	allocs = testing.AllocsPerRun(100, func() {
		enabled.Event(Event{Kind: EvCache, Name: "hit"})
	})
	if allocs != 0 {
		t.Fatalf("recorder-less Observer.Event allocates %v/op, want 0", allocs)
	}
}

func TestEventKindString(t *testing.T) {
	want := map[EventKind]string{
		EvSpan: "span", EvAdmission: "admission", EvFault: "fault",
		EvCache: "cache", EvProbeAbort: "probe_abort", EvWatchdog: "watchdog",
		EvDrain: "drain", EventKind(200): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("EventKind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
}

func BenchmarkFlightRecord(b *testing.B) {
	r := NewFlightRecorder(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(Event{Kind: EvCache, Name: "hit", Subject: "tenant", Reason: "warm"})
	}
}
