package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total")
	c.Add(2)
	c.Inc()
	c.Add(-5) // ignored: counters are monotone
	c.Add(math.NaN())
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %v, want 3", got)
	}
	if r.Counter("hits_total") != c {
		t.Error("same name should return the same counter")
	}
	g := r.Gauge("fill", L("bin", "ssd0"))
	g.Set(0.5)
	g.Add(0.25)
	if got := g.Value(); got != 0.75 {
		t.Errorf("gauge = %v, want 0.75", got)
	}
	if r.Gauge("fill", L("bin", "ssd1")) == g {
		t.Error("different labels should be distinct series")
	}
	if r.Gauge("fill", L("bin", "ssd0")) != g {
		t.Error("same labels should return the same gauge")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds")
	for _, v := range []float64{1e-5, 1e-3, 0.5, 2, 1e9} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	cum, count, sum, min, max := h.snapshot()
	if count != 5 || min != 1e-5 || max != 1e9 {
		t.Errorf("count=%d min=%v max=%v", count, min, max)
	}
	if math.Abs(sum-(1e-5+1e-3+0.5+2+1e9)) > 1 {
		t.Errorf("sum = %v", sum)
	}
	if cum[len(cum)-1] != 5 {
		t.Errorf("+Inf cumulative = %d, want 5", cum[len(cum)-1])
	}
	// Cumulative counts are monotone.
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative not monotone at %d: %v", i, cum)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("candidates_pruned_total").Add(17)
	r.Gauge("ddak_bin_fill_ratio", L("bin", "hbm0")).Set(0.9)
	r.Gauge("ddak_bin_fill_ratio", L("bin", "ssd3")).Set(0.1)
	r.Histogram("maxflow_bisection_iterations").Observe(14)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE candidates_pruned_total counter",
		"candidates_pruned_total 17",
		"# TYPE ddak_bin_fill_ratio gauge",
		`ddak_bin_fill_ratio{bin="hbm0"} 0.9`,
		`ddak_bin_fill_ratio{bin="ssd3"} 0.1`,
		"# TYPE maxflow_bisection_iterations histogram",
		`maxflow_bisection_iterations_bucket{le="+Inf"} 1`,
		"maxflow_bisection_iterations_sum 14",
		"maxflow_bisection_iterations_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
	// TYPE header appears once per metric name even with multiple series.
	if n := strings.Count(out, "# TYPE ddak_bin_fill_ratio"); n != 1 {
		t.Errorf("TYPE header repeated %d times", n)
	}
}

func TestJSONExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("solves_total").Add(3)
	r.Gauge("util", L("link", "qpi")).Set(0.42)
	r.Histogram("paths").Observe(7)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]float64 `json:"counters"`
		Gauges     map[string]float64 `json:"gauges"`
		Histograms map[string]struct {
			Count uint64  `json:"count"`
			Sum   float64 `json:"sum"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("metrics JSON invalid: %v\n%s", err, buf.String())
	}
	if doc.Counters["solves_total"] != 3 {
		t.Errorf("counters = %v", doc.Counters)
	}
	if doc.Gauges[`util{link="qpi"}`] != 0.42 {
		t.Errorf("gauges = %v", doc.Gauges)
	}
	if h := doc.Histograms["paths"]; h.Count != 1 || h.Sum != 7 {
		t.Errorf("histograms = %v", doc.Histograms)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(1)
	r.Gauge("b").Set(2)
	r.Histogram("c").Observe(3)
	snap := r.Snapshot()
	if snap["a"] != 1 || snap["b"] != 2 || snap["c_count"] != 1 || snap["c_sum"] != 3 {
		t.Errorf("snapshot = %v", snap)
	}
	var nilReg *Registry
	if len(nilReg.Snapshot()) != 0 {
		t.Error("nil registry snapshot should be empty")
	}
	if err := nilReg.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Error(err)
	}
}

func TestKindMismatchDoesNotPanic(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(1)
	g := r.Gauge("x") // same series name, different kind
	g.Set(5)          // lands on a disconnected gauge; no panic, no corruption
	if r.Counter("x").Value() != 1 {
		t.Error("counter corrupted by kind mismatch")
	}
}
