package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"sync"
	"time"
)

// The anomaly watchdog closes the forensics loop: EWMA/threshold rules
// evaluated over the metrics registry (shed rate, queue depth, epoch-time
// regression against a learned baseline, warm-abort rate) that, on trip,
// snapshot the flight recorder plus goroutine/heap profiles into a
// timestamped diagnostics bundle. By the time an operator looks, the
// evidence — the last few thousand flight events *spanning* the trigger —
// is already on disk.

// RuleKind selects how a Rule evaluates its metric series.
type RuleKind int

const (
	// RuleMax trips when the series' current value exceeds Max (gauges:
	// queue depth, inflight runs).
	RuleMax RuleKind = iota
	// RuleDeltaMax trips when the series grew by more than Max since the
	// previous Check (counters: sheds, warm aborts — a per-interval rate).
	RuleDeltaMax
	// RuleRegress trips when the series exceeds Factor times its own EWMA
	// baseline after MinSamples observations (gauges with a learned normal:
	// epoch time). Tripping samples are excluded from the baseline so an
	// anomaly cannot normalize itself.
	RuleRegress
)

// Rule is one anomaly condition over the metrics registry. Series names a
// metric; labeled series sharing the name are summed, so a rule over
// "momentd_shed_total" covers every shed reason at once.
type Rule struct {
	Name       string   // rule identity, used in bundle names and trip events
	Series     string   // metric name to watch
	Kind       RuleKind // evaluation mode
	Max        float64  // RuleMax / RuleDeltaMax threshold
	Factor     float64  // RuleRegress multiple of baseline (e.g. 1.5)
	MinSamples int      // RuleRegress warmup before it can trip (default 3)
}

// Trip describes one watchdog firing.
type Trip struct {
	Rule     string  `json:"rule"`
	Series   string  `json:"series"`
	Value    float64 `json:"value"`
	Limit    float64 `json:"limit"`
	AtUnixMS int64   `json:"at_unix_ms"`
	Bundle   string  `json:"bundle,omitempty"` // bundle directory, if written
}

// Watchdog evaluates Rules over an Observer's registry, periodically
// (Start) or on demand (Check, which tests drive for determinism). At most
// one bundle is written per Check, and Cooldown suppresses further bundles
// after a trip, so a sustained storm yields one bundle, not hundreds.
// Configure the exported fields before Start/Check; they are read-only
// afterwards.
type Watchdog struct {
	Obs      *Observer
	Rules    []Rule
	Interval time.Duration // Start's check period (default 5s)
	Dir      string        // bundle directory ("" disables bundle writing)
	Cooldown time.Duration // min time between bundles (default 1m)
	OnTrip   func(Trip)    // optional notification hook

	mu       sync.Mutex
	prev     map[string]float64 // per-rule previous sum (RuleDeltaMax)
	ewma     map[string]float64 // per-rule baseline (RuleRegress)
	samples  map[string]int
	lastTrip time.Time
	trips    int

	stopOnce sync.Once
	stopc    chan struct{}
	done     chan struct{}
}

// seriesSum sums every series of the snapshot carrying the metric name —
// the bare series plus any labeled variants ("name{...}").
func seriesSum(snap map[string]float64, name string) float64 {
	v, sum := snap[name], 0.0
	sum += v
	prefix := name + "{"
	for k, sv := range snap {
		if strings.HasPrefix(k, prefix) {
			sum += sv
		}
	}
	return sum
}

// Check evaluates every rule against the registry once. The first rule that
// trips (outside the cooldown window) produces a diagnostics bundle and is
// returned; nil means no trip. Rule state (deltas, baselines) updates on
// every call regardless.
func (w *Watchdog) Check() (*Trip, error) {
	if w == nil || w.Obs == nil {
		return nil, nil
	}
	snap := w.Obs.Metrics().Snapshot()
	now := time.Now()

	w.mu.Lock()
	if w.prev == nil {
		w.prev, w.ewma, w.samples = map[string]float64{}, map[string]float64{}, map[string]int{}
	}
	var fired *Trip
	for _, r := range w.Rules {
		v := seriesSum(snap, r.Series)
		tripped, limit := false, r.Max
		switch r.Kind {
		case RuleMax:
			tripped = v > r.Max
		case RuleDeltaMax:
			delta := v - w.prev[r.Name]
			w.prev[r.Name] = v
			v, tripped = delta, delta > r.Max
		case RuleRegress:
			minSamples := r.MinSamples
			if minSamples <= 0 {
				minSamples = 3
			}
			if v <= 0 {
				continue // no sample yet
			}
			base, n := w.ewma[r.Name], w.samples[r.Name]
			limit = r.Factor * base
			if n >= minSamples && v > limit {
				tripped = true
			} else {
				if n == 0 {
					base = v
				} else {
					base = 0.7*base + 0.3*v
				}
				w.ewma[r.Name], w.samples[r.Name] = base, n+1
			}
		}
		if tripped && fired == nil {
			fired = &Trip{Rule: r.Name, Series: r.Series, Value: v, Limit: limit, AtUnixMS: now.UnixMilli()}
		}
	}
	if fired == nil {
		w.mu.Unlock()
		return nil, nil
	}
	cooldown := w.Cooldown
	if cooldown <= 0 {
		cooldown = time.Minute
	}
	inCooldown := !w.lastTrip.IsZero() && now.Sub(w.lastTrip) < cooldown
	if !inCooldown {
		w.lastTrip = now
		w.trips++
	}
	tripNo := w.trips
	w.mu.Unlock()

	w.Obs.Counter("watchdog_trips_total", L("rule", fired.Rule)).Inc()
	if inCooldown {
		return nil, nil
	}
	// Record the trip on the flight ring *before* dumping it, so the bundle
	// contains flight events spanning the trigger — the evidence leading up
	// to the anomaly plus the trip itself.
	w.Obs.Event(Event{Kind: EvWatchdog, Name: "trip", Subject: fired.Rule,
		Reason: fired.Series, V1: fired.Value, V2: fired.Limit})
	if w.Dir != "" {
		dir, err := w.writeBundle(tripNo, fired, now)
		if err != nil {
			return fired, err
		}
		fired.Bundle = dir
		w.Obs.Logf("watchdog: rule %s tripped (%s = %g > %g), bundle %s",
			fired.Rule, fired.Series, fired.Value, fired.Limit, dir)
	}
	if w.OnTrip != nil {
		w.OnTrip(*fired)
	}
	return fired, nil
}

// writeBundle snapshots the observer into a timestamped diagnostics
// directory: trip.json (what fired), flight.json (the ring), metrics.prom,
// goroutines.txt and heap.txt.
func (w *Watchdog) writeBundle(tripNo int, trip *Trip, now time.Time) (string, error) {
	stamp := now.UTC().Format("20060102T150405.000Z")
	dir := filepath.Join(w.Dir, fmt.Sprintf("bundle-%03d-%s-%s", tripNo, stamp, trip.Rule))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	write := func(name string, fn func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := write("trip.json", func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(trip)
	}); err != nil {
		return "", err
	}
	if err := write("flight.json", func(f *os.File) error {
		return w.Obs.Flight().WriteJSON(f)
	}); err != nil {
		return "", err
	}
	if err := write("metrics.prom", func(f *os.File) error {
		return w.Obs.WritePrometheus(f)
	}); err != nil {
		return "", err
	}
	if err := write("goroutines.txt", func(f *os.File) error {
		return pprof.Lookup("goroutine").WriteTo(f, 1)
	}); err != nil {
		return "", err
	}
	if err := write("heap.txt", func(f *os.File) error {
		return pprof.Lookup("heap").WriteTo(f, 1)
	}); err != nil {
		return "", err
	}
	return dir, nil
}

// Trips reports how many bundles (cooldown-admitted trips) have fired.
func (w *Watchdog) Trips() int {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.trips
}

// Start launches the periodic checker. Stop it with Stop.
func (w *Watchdog) Start() {
	if w == nil {
		return
	}
	interval := w.Interval
	if interval <= 0 {
		interval = 5 * time.Second
	}
	w.stopc = make(chan struct{})
	w.done = make(chan struct{})
	go func() {
		defer close(w.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if _, err := w.Check(); err != nil {
					w.Obs.Logf("watchdog: bundle write failed: %v", err)
				}
			case <-w.stopc:
				return
			}
		}
	}()
}

// Stop halts the periodic checker after one final Check, so anomalies that
// developed since the last tick — a shed storm racing a drain — still
// produce their bundle before the process exits. Idempotent; safe without
// a prior Start.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	w.stopOnce.Do(func() {
		if w.stopc != nil {
			close(w.stopc)
			<-w.done
		}
		if _, err := w.Check(); err != nil {
			w.Obs.Logf("watchdog: bundle write failed: %v", err)
		}
	})
}
