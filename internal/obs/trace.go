package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer collects completed spans and exports them as Chrome trace-event
// JSON. It is safe for concurrent use: spans may be begun and ended from
// any goroutine. Chrome's trace model nests events on the same track
// (pid/tid pair) by time containment, so sequential children created with
// Span.Child render nested under their parent, while concurrent work
// should use Span.Fork (or a fresh Begin) to get its own track.
type Tracer struct {
	start   time.Time
	nextTID atomic.Int64
	flight  atomic.Pointer[FlightRecorder] // mirrors span completions

	mu     sync.Mutex
	events []spanEvent
}

// SetFlight mirrors every subsequent span completion onto r as an EvSpan
// flight event (nil detaches). Nil-safe on a nil tracer.
func (t *Tracer) SetFlight(r *FlightRecorder) {
	if t == nil {
		return
	}
	t.flight.Store(r)
}

type spanEvent struct {
	name  string
	tid   int64
	start time.Duration // since tracer start
	dur   time.Duration
	attrs []Attr
}

// Attr is one span attribute. Values are either numeric or string; typed
// constructors avoid interface boxing on the disabled path.
type Attr struct {
	Key   string
	Str   string
	Num   float64
	IsNum bool
}

// Str builds a string attribute.
func Str(key, value string) Attr { return Attr{Key: key, Str: value} }

// Int builds a numeric attribute from an int.
func Int(key string, value int) Attr {
	return Attr{Key: key, Num: float64(value), IsNum: true}
}

// F64 builds a numeric attribute from a float64.
func F64(key string, value float64) Attr {
	return Attr{Key: key, Num: value, IsNum: true}
}

// NewTracer returns an empty tracer whose clock starts now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// Span is one in-flight traced operation. The nil span (what a disabled
// observer hands out) ignores every call without allocating.
type Span struct {
	tracer *Tracer
	name   string
	tid    int64
	start  time.Duration
	attrs  []Attr
}

// Begin opens a root span on a fresh track.
func (t *Tracer) Begin(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		tracer: t,
		name:   name,
		tid:    t.nextTID.Add(1),
		start:  time.Since(t.start),
	}
}

// Child opens a sub-span on the same track; it renders nested under the
// receiver as long as it ends before the receiver does.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tracer: s.tracer,
		name:   name,
		tid:    s.tid,
		start:  time.Since(s.tracer.start),
	}
}

// Fork opens a sub-span on a new track, for work that runs concurrently
// with the receiver (e.g. a scoring worker inside a search span).
func (s *Span) Fork(name string) *Span {
	if s == nil {
		return nil
	}
	sp := s.tracer.Begin(name)
	return sp
}

// SetStr attaches a string attribute. No-op (and alloc-free) on nil spans.
func (s *Span) SetStr(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Str(key, value))
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, value int) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Int(key, value))
}

// SetFloat attaches a float attribute.
func (s *Span) SetFloat(key string, value float64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, F64(key, value))
}

// End completes the span and records it on the tracer. Ending a span twice
// records it twice; don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	ev := spanEvent{
		name:  s.name,
		tid:   s.tid,
		start: s.start,
		dur:   time.Since(s.tracer.start) - s.start,
		attrs: s.attrs,
	}
	s.tracer.mu.Lock()
	s.tracer.events = append(s.tracer.events, ev)
	s.tracer.mu.Unlock()
	if r := s.tracer.flight.Load(); r != nil {
		r.Record(Event{Kind: EvSpan, Name: s.name, V1: ev.dur.Seconds()})
	}
}

// Len reports the number of completed spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// chromeEvent is one trace_event entry ("X" = complete event, timestamps
// and durations in microseconds), the format Perfetto and chrome://tracing
// ingest directly.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteTrace exports every completed span as Chrome trace-event JSON.
// Events are sorted by start time; in-flight (un-Ended) spans are omitted.
func (t *Tracer) WriteTrace(w io.Writer) error {
	t.mu.Lock()
	events := make([]spanEvent, len(t.events))
	copy(events, t.events)
	t.mu.Unlock()
	sort.SliceStable(events, func(i, j int) bool { return events[i].start < events[j].start })

	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(events)), DisplayTimeUnit: "ms"}
	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.name,
			Ph:   "X",
			Ts:   float64(ev.start) / float64(time.Microsecond),
			Dur:  float64(ev.dur) / float64(time.Microsecond),
			Pid:  1,
			Tid:  ev.tid,
		}
		if len(ev.attrs) > 0 {
			ce.Args = make(map[string]any, len(ev.attrs))
			for _, a := range ev.attrs {
				if a.IsNum {
					ce.Args[a.Key] = a.Num
				} else {
					ce.Args[a.Key] = a.Str
				}
			}
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// SpanNames returns the multiset of completed span names, for tests and
// trace summaries.
func (t *Tracer) SpanNames() map[string]int {
	out := map[string]int{}
	if t == nil {
		return out
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, ev := range t.events {
		out[ev.name]++
	}
	return out
}
