package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension, rendered Prometheus-style:
// name{key="value"}.
type Label struct{ Key, Value string }

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing float64, safe for concurrent use.
// The nil counter (from a disabled observer) ignores updates.
type Counter struct{ bits atomic.Uint64 }

// Add increases the counter. Negative deltas are ignored (counters are
// monotone by contract).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 || math.IsNaN(v) {
		return
	}
	atomicAddFloat(&c.bits, v)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a settable float64, safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by v (may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil || math.IsNaN(v) {
		return
	}
	atomicAddFloat(&g.bits, v)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func atomicAddFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// histBuckets are the default upper bounds: factor-4 exponential from 1µs
// to ~10^6, covering both sub-millisecond solve times (seconds) and
// iteration counts (unitless) without configuration.
var histBuckets = func() []float64 {
	var b []float64
	for v := 1e-6; v < 2e6; v *= 4 {
		b = append(b, v)
	}
	return b
}()

// Histogram is a fixed-bucket exponential histogram with sum/count/min/max,
// safe for concurrent use.
type Histogram struct {
	mu       sync.Mutex
	counts   []uint64
	count    uint64
	sum      float64
	min, max float64
}

func newHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, len(histBuckets)+1), min: math.Inf(1), max: math.Inf(-1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	idx := sort.SearchFloat64s(histBuckets, v) // first bucket with bound >= v
	h.mu.Lock()
	h.counts[idx]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count returns the number of samples (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of samples (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns bucket cumulative counts, count, sum, min, max.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum, min, max float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cum[i] = acc
	}
	return cum, h.count, h.sum, h.min, h.max
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metricEntry struct {
	kind   metricKind
	name   string // base name, no labels
	series string // full series key incl. labels
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds named metrics. Lookup creates on first use; handles are
// cached by callers for hot paths. Safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*metricEntry
	order   []string // series keys in creation order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*metricEntry{}}
}

func seriesKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) lookup(kind metricKind, name string, labels []Label) *metricEntry {
	key := seriesKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok {
		return e
	}
	e := &metricEntry{kind: kind, name: name, series: key, labels: append([]Label(nil), labels...)}
	switch kind {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	case kindHistogram:
		e.h = newHistogram()
	}
	r.entries[key] = e
	r.order = append(r.order, key)
	return e
}

// Counter returns the named counter series, creating it on first use.
// Asking for an existing series under a different kind returns a fresh
// disconnected metric rather than panicking (the mismatch shows up as a
// missing series in the dump).
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	e := r.lookup(kindCounter, name, labels)
	if e.c == nil {
		return &Counter{}
	}
	return e.c
}

// Gauge returns the named gauge series, creating it on first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	e := r.lookup(kindGauge, name, labels)
	if e.g == nil {
		return &Gauge{}
	}
	return e.g
}

// Histogram returns the named histogram series, creating it on first use.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	e := r.lookup(kindHistogram, name, labels)
	if e.h == nil {
		return newHistogram()
	}
	return e.h
}

// Snapshot returns every scalar series value (counters and gauges) keyed
// by its full series name, plus histogram counts as name+"_count". Useful
// for tests and quick assertions.
func (r *Registry) Snapshot() map[string]float64 {
	out := map[string]float64{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	entries := make([]*metricEntry, 0, len(r.order))
	for _, key := range r.order {
		entries = append(entries, r.entries[key])
	}
	r.mu.Unlock()
	for _, e := range entries {
		switch e.kind {
		case kindCounter:
			out[e.series] = e.c.Value()
		case kindGauge:
			out[e.series] = e.g.Value()
		case kindHistogram:
			out[e.series+"_count"] = float64(e.h.Count())
			out[e.series+"_sum"] = e.h.Sum()
		}
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (one # TYPE header per metric name, histogram _bucket/_sum/_count
// series with cumulative le bounds).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	entries := make([]*metricEntry, 0, len(r.order))
	for _, key := range r.order {
		entries = append(entries, r.entries[key])
	}
	r.mu.Unlock()
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return entries[i].series < entries[j].series
	})
	var b strings.Builder
	lastTyped := ""
	for _, e := range entries {
		if e.name != lastTyped {
			fmt.Fprintf(&b, "# TYPE %s %s\n", e.name, map[metricKind]string{
				kindCounter: "counter", kindGauge: "gauge", kindHistogram: "histogram",
			}[e.kind])
			lastTyped = e.name
		}
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s %s\n", e.series, formatVal(e.c.Value()))
		case kindGauge:
			fmt.Fprintf(&b, "%s %s\n", e.series, formatVal(e.g.Value()))
		case kindHistogram:
			cum, count, sum, _, _ := e.h.snapshot()
			for i, bound := range histBuckets {
				fmt.Fprintf(&b, "%s %d\n", histSeries(e.name, e.labels, fmt.Sprintf("%g", bound)), cum[i])
			}
			fmt.Fprintf(&b, "%s %d\n", histSeries(e.name, e.labels, "+Inf"), cum[len(cum)-1])
			fmt.Fprintf(&b, "%s %s\n", seriesKey(e.name+"_sum", e.labels), formatVal(sum))
			fmt.Fprintf(&b, "%s %d\n", seriesKey(e.name+"_count", e.labels), count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func histSeries(name string, labels []Label, le string) string {
	ls := append(append([]Label(nil), labels...), L("le", le))
	return seriesKey(name+"_bucket", ls)
}

func formatVal(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// jsonHistogram is the JSON exposition of one histogram series.
type jsonHistogram struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Bounds  []string `json:"bounds"`
	Buckets []uint64 `json:"cumulative"`
}

// WriteJSON renders the registry as one JSON object:
// {"counters":{series:value}, "gauges":{...}, "histograms":{series:{...}}}.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, "{}")
		return err
	}
	r.mu.Lock()
	entries := make([]*metricEntry, 0, len(r.order))
	for _, key := range r.order {
		entries = append(entries, r.entries[key])
	}
	r.mu.Unlock()
	doc := struct {
		Counters   map[string]float64       `json:"counters"`
		Gauges     map[string]float64       `json:"gauges"`
		Histograms map[string]jsonHistogram `json:"histograms"`
	}{map[string]float64{}, map[string]float64{}, map[string]jsonHistogram{}}
	for _, e := range entries {
		switch e.kind {
		case kindCounter:
			doc.Counters[e.series] = e.c.Value()
		case kindGauge:
			doc.Gauges[e.series] = e.g.Value()
		case kindHistogram:
			cum, count, sum, min, max := e.h.snapshot()
			jh := jsonHistogram{Count: count, Sum: sum, Buckets: cum}
			if count > 0 {
				jh.Min, jh.Max = min, max
			}
			for _, bnd := range histBuckets {
				jh.Bounds = append(jh.Bounds, fmt.Sprintf("%g", bnd))
			}
			jh.Bounds = append(jh.Bounds, "+Inf")
			doc.Histograms[e.series] = jh
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
