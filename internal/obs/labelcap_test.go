package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestLabelCapAdmission(t *testing.T) {
	c := NewLabelCap(2)
	if l, fresh := c.Put("a"); l != "a" || !fresh {
		t.Fatalf("Put(a) = %q,%v", l, fresh)
	}
	if l, fresh := c.Put("a"); l != "a" || fresh {
		t.Fatalf("second Put(a) = %q,%v, want a,false", l, fresh)
	}
	if l, _ := c.Put("b"); l != "b" {
		t.Fatalf("Put(b) = %q", l)
	}
	if l, fresh := c.Put("c"); l != Overflow || fresh {
		t.Fatalf("Put(c) past cap = %q,%v, want %q,false", l, fresh, Overflow)
	}
	// Known values keep their identity even past the cap.
	if got := c.Get("a"); got != "a" {
		t.Fatalf("Get(a) = %q", got)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestLabelCapEmptyAndNil(t *testing.T) {
	c := NewLabelCap(1)
	if l, fresh := c.Put(""); l != "" || fresh {
		t.Fatalf("empty value should pass through: %q,%v", l, fresh)
	}
	var nilc *LabelCap
	if l, fresh := nilc.Put("x"); l != "x" || fresh {
		t.Fatalf("nil cap should pass through: %q,%v", l, fresh)
	}
	if nilc.Get("y") != "y" || nilc.Len() != 0 {
		t.Fatal("nil cap Get/Len broken")
	}
}

func TestLabelCapDefaultMax(t *testing.T) {
	c := NewLabelCap(0)
	for i := 0; i < 32; i++ {
		if l := c.Get(fmt.Sprintf("v%d", i)); l == Overflow {
			t.Fatalf("value %d overflowed below default cap", i)
		}
	}
	if c.Get("v32") != Overflow {
		t.Fatal("33rd value should overflow with default cap 32")
	}
}

func TestLabelCapConcurrent(t *testing.T) {
	c := NewLabelCap(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.Get(fmt.Sprintf("g%d-v%d", g, i%5))
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("Len = %d exceeds cap 16", c.Len())
	}
}
