package obs

import (
	"fmt"
	"io"
	"sync"
)

// Logger is the injectable diagnostic sink for library code: packages
// under internal/ must never write to stdout (or any global stream)
// unconditionally, so anything they want to say goes through a Logger
// whose output the caller chooses. A Logger with no output — including
// the nil Logger — discards everything.
type Logger struct {
	mu     sync.Mutex
	w      io.Writer
	prefix string
}

// NewLogger returns a logger writing to w (nil discards).
func NewLogger(w io.Writer) *Logger { return &Logger{w: w} }

// SetOutput redirects the logger (nil discards).
func (l *Logger) SetOutput(w io.Writer) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.w = w
	l.mu.Unlock()
}

// SetPrefix sets a per-line prefix (e.g. "moment: ").
func (l *Logger) SetPrefix(p string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.prefix = p
	l.mu.Unlock()
}

// Printf writes one formatted line, appending a newline when missing.
// No-op (and format args unevaluated beyond the call itself) when the
// logger is nil or has no output.
func (l *Logger) Printf(format string, args ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	w := l.w
	prefix := l.prefix
	l.mu.Unlock()
	if w == nil {
		return
	}
	msg := fmt.Sprintf(format, args...)
	if len(msg) == 0 || msg[len(msg)-1] != '\n' {
		msg += "\n"
	}
	fmt.Fprint(w, prefix+msg)
}
