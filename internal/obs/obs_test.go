package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledObserverIsNoop(t *testing.T) {
	var o *Observer
	sp := o.Begin("x")
	if sp != nil {
		t.Fatal("disabled Begin returned non-nil span")
	}
	sp.SetInt("k", 1)
	sp.SetStr("s", "v")
	sp.SetFloat("f", 2.5)
	sp.Child("c").End()
	sp.Fork("f").End()
	sp.End()
	o.Counter("c").Add(3)
	o.Counter("c").Inc()
	o.Gauge("g").Set(1)
	o.Histogram("h").Observe(1)
	o.Logf("nothing %d", 1)
	if o.In(nil) != nil {
		t.Error("nil observer In(nil) should stay nil")
	}
	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("disabled trace is not valid JSON: %v", err)
	}
}

func TestDisabledSpanZeroAllocs(t *testing.T) {
	var o *Observer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := o.Begin("hot")
		sp.SetInt("iterations", 12)
		sp.SetFloat("seconds", 0.5)
		child := sp.Child("inner")
		child.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f per op, want 0", allocs)
	}
}

func TestDisabledMetricsZeroAllocs(t *testing.T) {
	var o *Observer
	c := o.Counter("c") // handle fetched once, as hot paths do
	g := o.Gauge("g")
	h := o.Histogram("h")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Set(2)
		h.Observe(3)
	})
	if allocs != 0 {
		t.Fatalf("disabled metric path allocates %.1f per op, want 0", allocs)
	}
}

// BenchmarkDisabledSpan measures the instrumented-but-unobserved hot path:
// with a nil observer the whole span lifecycle must stay at 0 allocs/op.
func BenchmarkDisabledSpan(b *testing.B) {
	var o *Observer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := o.Begin("hot")
		sp.SetInt("iterations", i)
		sp.Child("inner").End()
		sp.End()
	}
}

func BenchmarkDisabledMetrics(b *testing.B) {
	var o *Observer
	c := o.Counter("c")
	g := o.Gauge("g")
	h := o.Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		g.Set(float64(i))
		h.Observe(1)
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	o := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := o.Begin("hot")
		sp.SetInt("iterations", i)
		sp.End()
	}
}

func TestSpanHierarchyAndTraceJSON(t *testing.T) {
	o := New()
	root := o.Begin("search")
	root.SetStr("machine", "B")
	enum := root.Child("enumerate")
	time.Sleep(time.Millisecond)
	enum.SetInt("candidates", 42)
	enum.End()
	work := root.Fork("maxflow-score")
	work.End()
	root.End()

	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3", len(doc.TraceEvents))
	}
	byName := map[string]int{}
	for i, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %d has phase %q, want X", i, ev.Ph)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Errorf("event %d has negative ts/dur: %+v", i, ev)
		}
		byName[ev.Name] = i
	}
	rootEv := doc.TraceEvents[byName["search"]]
	enumEv := doc.TraceEvents[byName["enumerate"]]
	forkEv := doc.TraceEvents[byName["maxflow-score"]]
	if enumEv.Tid != rootEv.Tid {
		t.Error("Child span should share the parent's track")
	}
	if forkEv.Tid == rootEv.Tid {
		t.Error("Fork span should get its own track")
	}
	// Time containment: the child nests inside the root.
	if enumEv.Ts < rootEv.Ts || enumEv.Ts+enumEv.Dur > rootEv.Ts+rootEv.Dur+1 {
		t.Errorf("child [%f,%f] not contained in root [%f,%f]",
			enumEv.Ts, enumEv.Ts+enumEv.Dur, rootEv.Ts, rootEv.Ts+rootEv.Dur)
	}
	if got := enumEv.Args["candidates"]; got != 42.0 {
		t.Errorf("child args = %v, want candidates=42", enumEv.Args)
	}
	if got := rootEv.Args["machine"]; got != "B" {
		t.Errorf("root args = %v, want machine=B", rootEv.Args)
	}
}

func TestScopedObserverNestsUnderSpan(t *testing.T) {
	o := New()
	root := o.Begin("epoch")
	scoped := o.In(root)
	child := scoped.Begin("ddak")
	child.End()
	root.End()
	names := o.Tracer().SpanNames()
	if names["ddak"] != 1 || names["epoch"] != 1 {
		t.Fatalf("span names = %v", names)
	}
	// Scoping through a nil span must not disable the observer.
	if o.In(nil) != o {
		t.Error("In(nil) should return the observer unchanged")
	}
}

func TestConcurrentSpansAndMetrics(t *testing.T) {
	o := New()
	root := o.Begin("root")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				sp := root.Fork("work")
				o.Counter("ops_total").Inc()
				o.Gauge("last").Set(float64(j))
				o.Histogram("lat").Observe(float64(j) * 1e-4)
				sp.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if got := o.Counter("ops_total").Value(); got != 1600 {
		t.Errorf("ops_total = %v, want 1600", got)
	}
	if got := o.Histogram("lat").Count(); got != 1600 {
		t.Errorf("lat count = %v, want 1600", got)
	}
	if got := o.Tracer().Len(); got != 1601 {
		t.Errorf("span count = %d, want 1601", got)
	}
}

func TestLoggerInjectableWriter(t *testing.T) {
	var buf bytes.Buffer
	o := New()
	o.Logf("discarded before routing %d", 1)
	o.SetLogOutput(&buf)
	o.Logf("hello %s", "world")
	if got := buf.String(); got != "hello world\n" {
		t.Errorf("log output = %q", got)
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Error("log line missing trailing newline")
	}
	// nil logger and nil observer paths.
	var l *Logger
	l.Printf("nope")
	l.SetOutput(&buf)
	var no *Observer
	no.SetLogOutput(&buf)
	no.Logf("nope")
}

func TestDefaultObserverFallback(t *testing.T) {
	if Default() != nil {
		t.Fatal("default observer should start nil")
	}
	o := New()
	SetDefault(o)
	defer SetDefault(nil)
	if Active(nil) != o {
		t.Error("Active(nil) should return the default")
	}
	other := New()
	if Active(other) != other {
		t.Error("explicit observer should win over the default")
	}
}
