package obs

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
)

// lockedBuffer is a goroutine-safe sink for the concurrency test; Logger
// serializes its own state but not the writer it hands lines to.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestLoggerConcurrentMutation drives SetOutput, SetPrefix and Printf from
// concurrent goroutines; run under -race this is the regression test for the
// logger's internal locking.
func TestLoggerConcurrentMutation(t *testing.T) {
	l := NewLogger(nil)
	sinks := []*lockedBuffer{{}, {}}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			l.SetOutput(sinks[i%2])
			if i%7 == 0 {
				l.SetOutput(nil) // discard windows interleave too
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			if i%2 == 0 {
				l.SetPrefix("a: ")
			} else {
				l.SetPrefix("b: ")
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			l.Printf("line %d", i)
		}
	}()
	wg.Wait()

	l.SetOutput(sinks[0])
	l.SetPrefix("final: ")
	l.Printf("done")
	if !strings.Contains(sinks[0].String(), "final: done\n") {
		t.Fatal("logger lost its final line")
	}
	// Every captured line is whole: prefix + "line N" or "done", one per row.
	for _, s := range sinks {
		for _, line := range strings.Split(strings.TrimRight(s.String(), "\n"), "\n") {
			if line == "" {
				continue
			}
			trimmed := strings.TrimPrefix(strings.TrimPrefix(strings.TrimPrefix(line, "a: "), "b: "), "final: ")
			if !strings.HasPrefix(trimmed, "line ") && trimmed != "done" {
				t.Fatalf("torn log line: %q", line)
			}
		}
	}
}

func TestLoggerNilAndDiscard(t *testing.T) {
	var l *Logger
	l.SetOutput(io.Discard)
	l.SetPrefix("x")
	l.Printf("ignored %d", 1) // must not panic

	l2 := NewLogger(nil)
	l2.Printf("discarded")
	var buf bytes.Buffer
	l2.SetOutput(&buf)
	l2.Printf("kept")
	if buf.String() != "kept\n" {
		t.Fatalf("got %q", buf.String())
	}
}
