package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

func TestExplainDeterministicUnderShuffle(t *testing.T) {
	steps := []ExplainStep{
		{Seq: 2, Stage: "prune", Subject: "ring-4", Reason: "isomorphic-duplicate"},
		{Seq: 0, Stage: "score", Subject: "mesh-2x2", Value: 1.25},
		{Seq: 1, Stage: "score", Subject: "ring-2", Value: 3.5},
		{Seq: SeqSummary, Stage: "search", Reason: "enumerated", Count: 3},
		{Seq: 0, Stage: "bisect", Subject: "mesh-2x2", Reason: "probes", Count: 7},
		{Seq: SeqSummary, Stage: "result", Subject: "mesh-2x2", Value: 1.25},
	}
	rng := rand.New(rand.NewSource(1))
	var first string
	for trial := 0; trial < 5; trial++ {
		e := NewExplain()
		perm := rng.Perm(len(steps))
		for _, i := range perm {
			e.Add(steps[i])
		}
		got := e.Render()
		if trial == 0 {
			first = got
			continue
		}
		if got != first {
			t.Fatalf("render differs across insertion orders:\n%s\nvs\n%s", first, got)
		}
	}
	if !strings.Contains(first, "[  sum] result mesh-2x2 value=1.25") {
		t.Fatalf("summary line malformed:\n%s", first)
	}
	if !strings.Contains(first, "[    0] bisect mesh-2x2 reason=probes count=7") {
		t.Fatalf("bisect line malformed:\n%s", first)
	}
}

func TestExplainStepLimitAndDropped(t *testing.T) {
	e := NewExplainLimit(4, 0)
	for i := 0; i < 10; i++ {
		e.Add(ExplainStep{Seq: i, Stage: "score"})
	}
	if e.Len() != 4 {
		t.Fatalf("Len = %d, want 4", e.Len())
	}
	if e.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", e.Dropped())
	}
	if !strings.Contains(e.Render(), "truncated dropped=6") {
		t.Fatalf("render missing truncation marker:\n%s", e.Render())
	}
}

func TestExplainReasonCap(t *testing.T) {
	e := NewExplainLimit(100, 2)
	e.Add(ExplainStep{Stage: "prune", Reason: "a"})
	e.Add(ExplainStep{Stage: "prune", Reason: "b"})
	e.Add(ExplainStep{Stage: "prune", Reason: "c"})
	reasons := map[string]bool{}
	for _, s := range e.Steps() {
		reasons[s.Reason] = true
	}
	if !reasons["a"] || !reasons["b"] || !reasons[Overflow] || reasons["c"] {
		t.Fatalf("reason capping wrong: %v", reasons)
	}
}

func TestExplainWriteJSON(t *testing.T) {
	e := NewExplain()
	e.Add(ExplainStep{Seq: 0, Stage: "score", Subject: "ring-2", Value: 2.5})
	var buf bytes.Buffer
	if err := e.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Dropped int           `json:"dropped"`
		Steps   []ExplainStep `json:"steps"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(dump.Steps) != 1 || dump.Steps[0].Subject != "ring-2" {
		t.Fatalf("dump = %+v", dump)
	}

	// Nil trail still writes a well-formed empty dump.
	buf.Reset()
	var nile *Explain
	if err := nile.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"steps": []`) {
		t.Fatalf("nil dump = %s", buf.String())
	}
}

func TestNilExplainNoops(t *testing.T) {
	var e *Explain
	e.Add(ExplainStep{Stage: "score"})
	if e.Len() != 0 || e.Dropped() != 0 || e.Steps() != nil || e.Render() != "" {
		t.Fatal("nil Explain should be empty")
	}
}

func TestDisabledExplainZeroAllocs(t *testing.T) {
	var e *Explain
	allocs := testing.AllocsPerRun(100, func() {
		e.Add(ExplainStep{Seq: 1, Stage: "score", Subject: "c", Reason: "r", Value: 1, Count: 2})
	})
	if allocs != 0 {
		t.Fatalf("nil Explain.Add allocates %v/op, want 0", allocs)
	}
}

func TestFmtFloatShortestRoundTrip(t *testing.T) {
	cases := map[float64]string{
		1.25:   "1.25",
		0.1:    "0.1",
		3:      "3",
		1e21:   "1e+21",
		0.0001: "0.0001",
	}
	for v, want := range cases {
		if got := fmtFloat(v); got != want {
			t.Fatalf("fmtFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func BenchmarkExplainAdd(b *testing.B) {
	e := NewExplainLimit(1<<20, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Add(ExplainStep{Seq: i, Stage: "score", Subject: "c", Value: 1})
	}
}
