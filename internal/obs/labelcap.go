package obs

import "sync"

// LabelCap bounds the distinct values admitted into a label-like keyspace —
// metric label values, flight-recorder subjects, explain-trail reasons.
// Values beyond the cap map to the overflow bucket ("other") and, crucially,
// do not grow the internal map either: the values are typically
// caller-controlled (tenant names, error strings), so a hostile caller must
// not be able to balloon the keyspace. The first Cap distinct values keep
// their identity; everyone later aggregates.
//
// A nil *LabelCap passes values through uncapped (the disabled state).
type LabelCap struct {
	mu   sync.Mutex
	cap  int
	kept map[string]struct{}
}

// NewLabelCap returns a capper admitting up to max distinct values
// (max <= 0 defaults to 32).
func NewLabelCap(max int) *LabelCap {
	if max <= 0 {
		max = 32
	}
	return &LabelCap{cap: max, kept: make(map[string]struct{}, max)}
}

// Overflow is the bucket values beyond the cap collapse into.
const Overflow = "other"

// Put admits v, returning the label to use for it ("other" past the cap)
// and whether v was newly admitted. Alloc-free once v is known (map read).
func (c *LabelCap) Put(v string) (string, bool) {
	if c == nil || v == "" {
		return v, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.kept[v]; ok {
		return v, false
	}
	if len(c.kept) >= c.cap {
		return Overflow, false
	}
	c.kept[v] = struct{}{}
	return v, true
}

// Get is Put without the admission report.
func (c *LabelCap) Get(v string) string {
	l, _ := c.Put(v)
	return l
}

// Len reports the number of admitted distinct values.
func (c *LabelCap) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.kept)
}
