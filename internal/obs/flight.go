package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder is the forensic third of the obs layer (traces →
// metrics → flight/explain): a fixed-size ring of structured wide events —
// span completions, admission decisions, fault transitions, cache hits and
// misses, probe aborts — cheap enough to leave on in production and dumped
// as JSON on demand (/debug/flight, obsflag -flight, watchdog bundles).
// Aggregate counters say *that* a shed storm happened; the flight ring says
// what the last few thousand decisions leading into it were.

// EventKind classifies a flight-recorder event.
type EventKind uint8

const (
	// EvSpan is a completed trace span (recorded automatically by the
	// tracer once a recorder is attached).
	EvSpan EventKind = iota
	// EvAdmission is an admission-control decision (admit, coalesce, shed).
	EvAdmission
	// EvFault is a hardware-fault transition entering a simulation.
	EvFault
	// EvCache is a cache hit or miss (plan cache, score cache, layouts).
	EvCache
	// EvProbeAbort is a bisection probe abandoned by cancellation.
	EvProbeAbort
	// EvWatchdog is an anomaly-watchdog rule trip.
	EvWatchdog
	// EvDrain is a lifecycle transition (drain begin/end, flush).
	EvDrain
	// EvDrift is a workload-drift event: a detector trip, an incremental
	// re-solve, or a scheduled hotness shift entering a simulation.
	EvDrift
)

var eventKindNames = [...]string{
	EvSpan:       "span",
	EvAdmission:  "admission",
	EvFault:      "fault",
	EvCache:      "cache",
	EvProbeAbort: "probe_abort",
	EvWatchdog:   "watchdog",
	EvDrain:      "drain",
	EvDrift:      "drift",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// Event is one wide flight-recorder event. Fields are flat scalars so a
// recorded event is a value copy — no per-event allocation. Subject and
// Reason pass through the recorder's LabelCap, so caller-controlled values
// (tenants, error strings) cannot balloon the ring's keyspace.
type Event struct {
	At      time.Duration // since recorder start; stamped by Record
	Seq     uint64        // 1-based global order; stamped by Record
	Kind    EventKind
	Name    string  // what happened, e.g. "shed", "plan-cache-hit"
	Subject string  // who/what it happened to (tenant, candidate, device)
	Reason  string  // why (shed reason, error class)
	V1, V2  float64 // kind-specific scalars (seconds, counts, ...)
}

// FlightRecorder is a fixed-size, lock-light ring of Events. Writers claim
// a slot with one atomic add and take only that slot's mutex — writers on
// different slots never contend, and readers (Events, WriteJSON) lock one
// slot at a time, so a dump cannot stall recording. A nil *FlightRecorder
// ignores Record without allocating, which is the disabled state every
// instrumented call site relies on.
type FlightRecorder struct {
	start    time.Time
	next     atomic.Uint64
	mask     uint64
	subjects *LabelCap
	reasons  *LabelCap
	slots    []flightSlot
}

type flightSlot struct {
	mu sync.Mutex
	ev Event // Seq == 0 means never written
}

// NewFlightRecorder returns a ring holding the most recent `size` events
// (rounded up to a power of two; size <= 0 defaults to 4096).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = 4096
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &FlightRecorder{
		start:    time.Now(),
		mask:     uint64(n - 1),
		subjects: NewLabelCap(128),
		reasons:  NewLabelCap(64),
		slots:    make([]flightSlot, n),
	}
}

// Record stamps ev with a sequence number and relative timestamp and writes
// it into the ring, overwriting the oldest event once full. Safe for
// concurrent use; no-op on a nil recorder.
func (r *FlightRecorder) Record(ev Event) {
	if r == nil {
		return
	}
	ev.Seq = r.next.Add(1)
	ev.At = time.Since(r.start)
	ev.Subject = r.subjects.Get(ev.Subject)
	ev.Reason = r.reasons.Get(ev.Reason)
	s := &r.slots[(ev.Seq-1)&r.mask]
	s.mu.Lock()
	s.ev = ev
	s.mu.Unlock()
}

// Len reports how many events the ring currently holds.
func (r *FlightRecorder) Len() int {
	if r == nil {
		return 0
	}
	n := r.next.Load()
	if n > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(n)
}

// Dropped reports how many events have been overwritten by newer ones.
func (r *FlightRecorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	n := r.next.Load()
	if n <= uint64(len(r.slots)) {
		return 0
	}
	return n - uint64(len(r.slots))
}

// Events returns a snapshot of the ring in sequence order (oldest first).
// Slots are read one at a time, so an in-flight writer delays the snapshot
// by at most one slot copy.
func (r *FlightRecorder) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		s.mu.Lock()
		ev := s.ev
		s.mu.Unlock()
		if ev.Seq != 0 {
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// flightEventJSON is the wire form of one event.
type flightEventJSON struct {
	Seq     uint64  `json:"seq"`
	AtSec   float64 `json:"at_sec"`
	Kind    string  `json:"kind"`
	Name    string  `json:"name"`
	Subject string  `json:"subject,omitempty"`
	Reason  string  `json:"reason,omitempty"`
	V1      float64 `json:"v1,omitempty"`
	V2      float64 `json:"v2,omitempty"`
}

type flightDumpJSON struct {
	Dropped uint64            `json:"dropped"`
	Events  []flightEventJSON `json:"events"`
}

// WriteJSON dumps the ring as a JSON document: {"dropped":N,"events":[...]}
// with events oldest-first. A nil recorder writes an empty dump, so dump
// endpoints work whether or not flight recording is enabled.
func (r *FlightRecorder) WriteJSON(w io.Writer) error {
	dump := flightDumpJSON{Events: []flightEventJSON{}}
	if r != nil {
		dump.Dropped = r.Dropped()
		for _, ev := range r.Events() {
			dump.Events = append(dump.Events, flightEventJSON{
				Seq:     ev.Seq,
				AtSec:   ev.At.Seconds(),
				Kind:    ev.Kind.String(),
				Name:    ev.Name,
				Subject: ev.Subject,
				Reason:  ev.Reason,
				V1:      ev.V1,
				V2:      ev.V2,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(dump)
}
