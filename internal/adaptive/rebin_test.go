package adaptive

import (
	"math"
	"testing"

	"moment/internal/ddak"
)

func ones(n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	return b
}

// TestMaybeHysteresis walks the drift across the threshold: strictly below
// never replans, at or above always does, and the replan counter only moves
// when a migration actually triggered.
func TestMaybeHysteresis(t *testing.T) {
	const n = 400
	hot := zipf(t, n)
	r, err := NewReplanner(hot, ones(n), bins(), 10, 1, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	// blend(eps) has TV distance exactly eps from hot: move eps of mass
	// from the hot head's share onto a uniform spread over the cold tail.
	blend := func(eps float64) []float64 {
		out := append([]float64(nil), hot...)
		moved := 0.0
		for i := 0; i < n && moved < eps; i++ {
			take := math.Min(eps-moved, out[i]*0.5)
			out[i] -= take
			moved += take
		}
		for i := n / 2; i < n; i++ {
			out[i] += moved / float64(n/2)
		}
		return out
	}
	for _, eps := range []float64{0, 0.05, 0.149} {
		mig, err := r.Maybe(blend(eps))
		if err != nil {
			t.Fatal(err)
		}
		if mig.Triggered {
			t.Errorf("drift %.3f (< threshold 0.15) triggered a replan", mig.Drift)
		}
		if math.Abs(mig.Drift-eps) > 0.02 {
			t.Errorf("drift = %.3f, want ~%.3f", mig.Drift, eps)
		}
	}
	if r.Replans() != 0 {
		t.Fatalf("replans = %d after sub-threshold probes", r.Replans())
	}
	mig, err := r.Maybe(blend(0.25))
	if err != nil {
		t.Fatal(err)
	}
	if !mig.Triggered {
		t.Fatalf("drift %.3f (>= threshold) did not trigger", mig.Drift)
	}
	if r.Replans() != 1 {
		t.Fatalf("replans = %d, want 1", r.Replans())
	}
	// Hysteresis: the snapshot moved to the new distribution, so the same
	// input is now drift-free and replans stays put.
	mig, err = r.Maybe(blend(0.25))
	if err != nil {
		t.Fatal(err)
	}
	if mig.Triggered || mig.Drift > 1e-9 || r.Replans() != 1 {
		t.Errorf("post-replan probe: drift %.3f, triggered %v, replans %d",
			mig.Drift, mig.Triggered, r.Replans())
	}
}

func TestHitRateEdgeCases(t *testing.T) {
	hot := zipf(t, 50)
	r, err := NewReplanner(hot, ones(50), bins(), 5, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// All-zero hotness: no accesses means no hits, not a division by zero.
	h, err := HitRate(r.Current(), make([]float64, 50))
	if err != nil {
		t.Fatal(err)
	}
	if h != 0 {
		t.Errorf("zero-traffic hit rate = %v", h)
	}
	// All-cold layout: with only SSD bins nothing lands in a fast tier.
	ssdOnly := []ddak.Bin{
		{Name: "ssd0", Tier: ddak.TierSSD, Capacity: 5000, Traffic: 0.5},
		{Name: "ssd1", Tier: ddak.TierSSD, Capacity: 5000, Traffic: 0.5},
	}
	rc, err := NewReplanner(hot, ones(50), ssdOnly, 5, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	h, err = HitRate(rc.Current(), hot)
	if err != nil {
		t.Fatal(err)
	}
	if h != 0 {
		t.Errorf("SSD-only layout hit rate = %v, want 0", h)
	}
	// Sanity bound: hit rate is a fraction.
	h, err = HitRate(r.Current(), hot)
	if err != nil {
		t.Fatal(err)
	}
	if h < 0 || h > 1 {
		t.Errorf("hit rate %v out of [0,1]", h)
	}
}

// TestRebinAfterFailure drives the graceful-degradation path: killing one
// of the two SSD bins forces the planned layout into the survivors and the
// migration bill covers exactly the items that changed bins.
func TestRebinAfterFailure(t *testing.T) {
	const n = 600
	hot := zipf(t, n)
	r, err := NewReplanner(hot, ones(n), bins(), 10, 1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	before := r.Current()
	deadCount := 0
	for _, bin := range before.Of {
		if before.Bins[bin].Name == "ssd0" {
			deadCount++
		}
	}
	if deadCount == 0 {
		t.Fatal("test premise broken: nothing planned onto ssd0")
	}
	degraded, err := ddak.DegradeBins(bins(), map[string]bool{"ssd0": true})
	if err != nil {
		t.Fatal(err)
	}
	mig, err := r.Rebin(degraded)
	if err != nil {
		t.Fatal(err)
	}
	if !mig.Triggered || r.Replans() != 1 {
		t.Fatalf("rebin did not count as a replan: %+v, replans %d", mig, r.Replans())
	}
	if mig.MovedItems < deadCount {
		t.Errorf("moved %d items but %d lived on the dead bin", mig.MovedItems, deadCount)
	}
	if mig.MovedBytes != float64(mig.MovedItems) {
		t.Errorf("moved bytes %v != moved items %d with unit-size items", mig.MovedBytes, mig.MovedItems)
	}
	for i, bin := range mig.Assignment.Of {
		if mig.Assignment.Bins[bin].Name == "ssd0" {
			t.Fatalf("item %d still assigned to the dead bin", i)
		}
	}
}
