package adaptive

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"moment/internal/ddak"
)

func unitBytes(n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	return b
}

func TestDetectorTripsOnTV(t *testing.T) {
	d := &DriftDetector{TVTrip: 0.2}
	ref := []float64{0.5, 0.5, 0, 0}
	sig, err := d.Check(ref, ref)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Over || sig.Tripped {
		t.Errorf("identical distributions tripped: %+v", sig)
	}
	far := []float64{0, 0, 0.5, 0.5}
	sig, err = d.Check(ref, far)
	if err != nil {
		t.Fatal(err)
	}
	if sig.TV != 1 || !sig.Tripped {
		t.Errorf("disjoint distributions: %+v", sig)
	}
	if d.Checks() != 2 || d.Trips() != 1 {
		t.Errorf("counters: checks=%d trips=%d", d.Checks(), d.Trips())
	}
	if _, err := d.Check(ref, far[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestDetectorHysteresis(t *testing.T) {
	d := &DriftDetector{TVTrip: 0.1, TripAfter: 3}
	ref := []float64{1, 0}
	drift := []float64{0.7, 0.3} // TV = 0.3, over threshold
	for i := 1; i <= 2; i++ {
		sig, err := d.Check(ref, drift)
		if err != nil {
			t.Fatal(err)
		}
		if !sig.Over {
			t.Fatalf("check %d not over", i)
		}
		if sig.Tripped {
			t.Fatalf("tripped after %d consecutive checks, want 3", i)
		}
	}
	// A clean check in between resets the streak.
	if sig, _ := d.Check(ref, ref); sig.Over || sig.Tripped {
		t.Fatal("clean check misjudged")
	}
	for i := 1; i <= 3; i++ {
		sig, err := d.Check(ref, drift)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := sig.Tripped, i == 3; got != want {
			t.Fatalf("streak restart check %d: tripped=%v", i, got)
		}
	}
}

func TestDetectorCooldown(t *testing.T) {
	d := &DriftDetector{TVTrip: 0.1, Cooldown: 2}
	ref := []float64{1, 0}
	drift := []float64{0.5, 0.5}
	sig, err := d.Check(ref, drift)
	if err != nil {
		t.Fatal(err)
	}
	if !sig.Tripped {
		t.Fatal("first over check did not trip")
	}
	d.Reset()
	// Two checks suppressed, the third trips again.
	for i := 1; i <= 3; i++ {
		sig, err = d.Check(ref, drift)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := sig.Tripped, i == 3; got != want {
			t.Fatalf("cooldown check %d: tripped=%v, want %v", i, got, want)
		}
	}
}

// A few swapped cache residents barely move TV but swap the identity of
// the hottest items — the rank-churn signal must catch what TV misses.
func TestDetectorRankChurnCatchesIdentitySwap(t *testing.T) {
	// A nearly-flat ranked profile: rank order is well defined, but any
	// pairwise swap exchanges almost no probability mass.
	n := 100
	ref := make([]float64, n)
	for i := range ref {
		ref[i] = 1 + float64(n-i)*1e-3
	}
	sum := 0.0
	for _, v := range ref {
		sum += v
	}
	for i := range ref {
		ref[i] /= sum
	}
	// Swap the top-4 with ranks 50..53: each pair exchanges similar mass.
	live := append([]float64(nil), ref...)
	for k := 0; k < 4; k++ {
		live[k], live[50+k] = live[50+k], live[k]
	}
	tvOnly := &DriftDetector{TVTrip: 0.25}
	sig, err := tvOnly.Check(ref, live)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Over {
		t.Fatalf("TV %.3f unexpectedly over 0.25 — premise broken", sig.TV)
	}
	ranked := &DriftDetector{TVTrip: 0.25, RankTopK: 8, RankTrip: 0.4}
	sig, err = ranked.Check(ref, live)
	if err != nil {
		t.Fatal(err)
	}
	if sig.RankChurn < 0.4 || !sig.Tripped {
		t.Errorf("rank churn %.3f did not trip: %+v", sig.RankChurn, sig)
	}
}

func TestTopKAndChurn(t *testing.T) {
	v := []float64{0.1, 0.9, 0.3, 0.9, 0.05}
	got := topK(v, 3, nil)
	want := []int32{1, 2, 3} // ties at 0.9 keep lower indices; 0.3 third
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("topK = %v, want %v", got, want)
	}
	if k := topK(v, 99, nil); len(k) != len(v) {
		t.Errorf("k>n returned %d entries", len(k))
	}
	if c := churn([]int32{1, 2, 3}, []int32{1, 2, 3}); c != 0 {
		t.Errorf("identical churn %v", c)
	}
	if c := churn([]int32{1, 2, 3}, []int32{4, 5, 6}); c != 1 {
		t.Errorf("disjoint churn %v", c)
	}
	if c := churn([]int32{1, 2, 3, 4}, []int32{3, 4, 5, 6}); c != 0.5 {
		t.Errorf("half churn %v", c)
	}
	if c := churn(nil, nil); c != 0 {
		t.Errorf("empty churn %v", c)
	}
}

// topK must agree with a full sort for arbitrary inputs.
func TestTopKMatchesSortProperty(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw)%200 + 1
		k := int(kRaw)%(n+5) + 1
		v := make([]float64, n)
		for i := range v {
			v[i] = math.Floor(r.Float64()*10) / 10 // coarse values force ties
		}
		got := topK(v, k, nil)
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(i)
		}
		sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] > v[idx[b]] })
		if k > n {
			k = n
		}
		want := append([]int32(nil), idx[:k]...)
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Monitor hotness stays a normalized distribution under any
// interleaving of Observe and Tick, and Gen moves exactly on observation.
func TestMonitorNormalizationProperty(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(20)
		m, err := NewMonitor(n, 1+r.Float64()*30)
		if err != nil {
			return false
		}
		observed := false
		for s := 0; s < int(steps)%120+5; s++ {
			switch r.Intn(3) {
			case 0:
				if err := m.Observe(int32(r.Intn(n)), r.Float64()*5); err != nil {
					return false
				}
				observed = true
			case 1:
				w := make([]float64, n)
				for i := range w {
					w[i] = r.Float64()
				}
				if err := m.ObserveWeights(w); err != nil {
					return false
				}
				observed = true
			case 2:
				gen := m.Gen()
				before := m.Hotness()
				m.Tick()
				if m.Gen() != gen {
					return false // Tick must not advance the generation
				}
				after := m.Hotness()
				for i := range before {
					if math.Abs(before[i]-after[i]) > 1e-9 {
						return false // Tick must not change normalized hotness
					}
				}
			}
		}
		h := m.Hotness()
		sum := 0.0
		for _, v := range h {
			if v < 0 {
				return false
			}
			sum += v
		}
		if !observed {
			return sum == 0
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: TV is a metric on distributions — symmetric, zero on self,
// bounded by [0,1], and triangle-bounded.
func TestTVMetricProperty(t *testing.T) {
	gen := func(r *rand.Rand, n int) []float64 {
		v := make([]float64, n)
		sum := 0.0
		for i := range v {
			v[i] = r.Float64()
			sum += v[i]
		}
		for i := range v {
			v[i] /= sum
		}
		return v
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(50)
		a, b, c := gen(r, n), gen(r, n), gen(r, n)
		ab, _ := TV(a, b)
		ba, _ := TV(b, a)
		aa, _ := TV(a, a)
		ac, _ := TV(a, c)
		cb, _ := TV(c, b)
		if aa != 0 {
			return false
		}
		if math.Abs(ab-ba) > 1e-12 {
			return false
		}
		if ab < 0 || ab > 1+1e-12 {
			return false
		}
		return ab <= ac+cb+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReplanDeltaPath(t *testing.T) {
	const n = 1000
	hot := zipf(t, n)
	r, err := NewReplanner(hot, unitBytes(n), bins(), 10, 1, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	r.DeltaBudget = 0.5
	// Mild drift: swap two boundary-crossing ranks.
	live := append([]float64(nil), hot...)
	live[5], live[800] = live[800], live[5]
	mig, err := r.Replan(live)
	if err != nil {
		t.Fatal(err)
	}
	if !mig.Triggered || !mig.Incremental || mig.FellBack {
		t.Fatalf("mild drift: %+v", mig)
	}
	if mig.MovedItems == 0 || mig.MovedItems > 10 {
		t.Errorf("delta moved %d items for a two-rank swap", mig.MovedItems)
	}
	if r.Replans() != 1 {
		t.Errorf("replans = %d", r.Replans())
	}
	// Severe drift blows the budget and falls back to a full solve.
	rev := make([]float64, n)
	for i := range rev {
		rev[i] = hot[n-1-i]
	}
	mig, err = r.Replan(rev)
	if err != nil {
		t.Fatal(err)
	}
	if !mig.Triggered || mig.Incremental || !mig.FellBack {
		t.Fatalf("reversal: %+v", mig)
	}
	// The fallback layout must match what a fresh replanner would plan.
	fresh, err := NewReplanner(rev, unitBytes(n), bins(), 10, 1, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range fresh.Current().Of {
		if r.Current().Of[i] != b {
			t.Fatalf("fallback layout differs from scratch plan at item %d", i)
		}
	}
}

func TestReplanPaybackSkipsUnprofitableMigration(t *testing.T) {
	const n = 1000
	hot := zipf(t, n)
	r, err := NewReplanner(hot, unitBytes(n), bins(), 10, 1, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	r.DeltaBudget = 0.9
	// TrafficScale 1 byte/epoch and a half-epoch payback window: even a
	// perfect hit-rate recovery saves < 1 byte, so any real migration is
	// unprofitable.
	r.PaybackEpochs = 0.5
	live := rotate(hot, n/2)
	mig, err := r.Replan(live)
	if err != nil {
		t.Fatal(err)
	}
	if !mig.Skipped || mig.Triggered {
		t.Fatalf("unprofitable migration not skipped: %+v", mig)
	}
	if mig.MovedItems != 0 || mig.MovedBytes != 0 {
		t.Errorf("skipped migration still bills moves: %+v", mig)
	}
	if r.Replans() != 0 {
		t.Errorf("skipped replan counted: %d", r.Replans())
	}
	// A generous window lets the same migration through.
	r.PaybackEpochs = 1e6
	mig, err = r.Replan(live)
	if err != nil {
		t.Fatal(err)
	}
	if mig.Skipped || !mig.Triggered {
		t.Fatalf("profitable migration skipped: %+v", mig)
	}
	if mig.ProjectedSavedBytes <= 0 {
		t.Errorf("no projected savings recorded: %+v", mig)
	}
}

func TestMaybeMonitorSteadyStateIsFree(t *testing.T) {
	const n = 500
	hot := zipf(t, n)
	r, err := NewReplanner(hot, unitBytes(n), bins(), 10, 1, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewMonitor(n, 50)
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.ObserveWeights(hot); err != nil {
		t.Fatal(err)
	}
	first, err := r.MaybeMonitor(mon)
	if err != nil {
		t.Fatal(err)
	}
	if first.Triggered {
		t.Fatalf("planning distribution triggered: %+v", first)
	}
	// Steady state: ticks without observations must not hash, not
	// recompute hotness, not allocate — the generation check short-
	// circuits everything.
	allocs := testing.AllocsPerRun(100, func() {
		mon.Tick()
		mig, err := r.MaybeMonitor(mon)
		if err != nil || mig.Triggered {
			t.Fatal("steady state misjudged")
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state MaybeMonitor allocates %v/op, want 0", allocs)
	}
	// A new observation invalidates the memo and is acted upon.
	shifted := rotate(hot, n/2)
	for i := 0; i < 40; i++ {
		if err := mon.ObserveWeights(shifted); err != nil {
			t.Fatal(err)
		}
		mon.Tick()
	}
	mig, err := r.MaybeMonitor(mon)
	if err != nil {
		t.Fatal(err)
	}
	if !mig.Triggered {
		t.Fatalf("regime change not acted on: drift %.3f", mig.Drift)
	}
}

func TestTierOf(t *testing.T) {
	const n = 300
	hot := zipf(t, n)
	r, err := NewReplanner(hot, unitBytes(n), bins(), 10, 1, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	tiers, err := TierOf(r.Current())
	if err != nil {
		t.Fatal(err)
	}
	if len(tiers) != n {
		t.Fatalf("%d tiers for %d items", len(tiers), n)
	}
	if tiers[0] != uint8(ddak.TierGPU) {
		t.Errorf("hottest item on tier %d, want GPU", tiers[0])
	}
	seen := map[uint8]bool{}
	for _, tr := range tiers {
		seen[tr] = true
	}
	if !seen[0] || !seen[2] {
		t.Errorf("tier spread missing tiers: %v", seen)
	}
	if _, err := TierOf(nil); err == nil {
		t.Error("nil assignment accepted")
	}
}
