package adaptive

import (
	"testing"

	"moment/internal/ddak"
)

func sameAssignment(t *testing.T, got, want *ddak.ItemAssignment) {
	t.Helper()
	if len(got.Of) != len(want.Of) {
		t.Fatalf("assignment lengths %d vs %d", len(got.Of), len(want.Of))
	}
	for i := range got.Of {
		if got.Of[i] != want.Of[i] {
			t.Fatalf("item %d in bin %d, want %d", i, got.Of[i], want.Of[i])
		}
	}
}

// TestRebinCacheFaultCycle drives the graceful-degradation loop the cache
// is for: fault → Rebin(degraded) → recovery → Rebin(healthy) → same fault
// again. The third replan must be a cache hit and produce the same layout
// as an uncached replanner walking the same cycle.
func TestRebinCacheFaultCycle(t *testing.T) {
	hot := zipf(t, 400)
	bytes := make([]float64, 400)
	for i := range bytes {
		bytes[i] = 10
	}
	mk := func(cache *Layouts) *Replanner {
		r, err := NewReplanner(hot, bytes, bins(), 10, 1, 0.15)
		if err != nil {
			t.Fatal(err)
		}
		r.Cache = cache
		return r
	}
	healthy := bins()
	degraded, err := ddak.DegradeBins(healthy, map[string]bool{"ssd0": true})
	if err != nil {
		t.Fatal(err)
	}

	cached := mk(NewLayouts(64))
	plain := mk(nil)
	for cycle, binSet := range [][]ddak.Bin{degraded, healthy, degraded, healthy} {
		mc, err := cached.Rebin(binSet)
		if err != nil {
			t.Fatal(err)
		}
		mp, err := plain.Rebin(binSet)
		if err != nil {
			t.Fatal(err)
		}
		sameAssignment(t, mc.Assignment, mp.Assignment)
		if mc.MovedItems != mp.MovedItems || mc.MovedBytes != mp.MovedBytes {
			t.Errorf("cycle %d: migration bill %d/%v cached vs %d/%v plain",
				cycle, mc.MovedItems, mc.MovedBytes, mp.MovedItems, mp.MovedBytes)
		}
	}
	if cached.CacheHits() != 2 {
		t.Errorf("cache hits = %d, want 2 (second visits to each bin set)", cached.CacheHits())
	}
	if plain.CacheHits() != 0 {
		t.Errorf("uncached replanner reported %d hits", plain.CacheHits())
	}
}

// TestScheduleKeyIsolatesSharedCache: two replanners under different fault
// schedules share one Layouts cache. Their bin sets fingerprint
// identically, so without the ScheduleKey salt the second replanner would
// be served the first one's layouts; with it, each schedule plans its own
// and only same-schedule revisits hit.
func TestScheduleKeyIsolatesSharedCache(t *testing.T) {
	hot := zipf(t, 200)
	bytes := make([]float64, 200)
	for i := range bytes {
		bytes[i] = 10
	}
	shared := NewLayouts(64)
	mk := func(scheduleKey string) *Replanner {
		r, err := NewReplanner(hot, bytes, bins(), 10, 1, 0.15)
		if err != nil {
			t.Fatal(err)
		}
		r.Cache = shared
		r.ScheduleKey = scheduleKey
		return r
	}
	degraded, err := ddak.DegradeBins(bins(), map[string]bool{"ssd0": true})
	if err != nil {
		t.Fatal(err)
	}

	a := mk("kill:ssd0@5")
	b := mk("kill:ssd0@90")
	if _, err := a.Rebin(degraded); err != nil {
		t.Fatal(err)
	}
	// Same bins, different schedule: must not be served a's entry.
	if _, err := b.Rebin(degraded); err != nil {
		t.Fatal(err)
	}
	if b.CacheHits() != 0 {
		t.Errorf("schedule B hit schedule A's layout (%d hits)", b.CacheHits())
	}
	// Same schedule revisiting the same bins still hits.
	if _, err := a.Rebin(bins()); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Rebin(degraded); err != nil {
		t.Fatal(err)
	}
	if a.CacheHits() != 1 {
		t.Errorf("schedule A revisit: %d hits, want 1", a.CacheHits())
	}
	// And the layouts themselves agree with an uncached run — isolation
	// must not change what gets planned.
	plain := mk("")
	plain.Cache = nil
	mp, err := plain.Rebin(degraded)
	if err != nil {
		t.Fatal(err)
	}
	mb := b.Current()
	sameAssignment(t, mb, mp.Assignment)
}

// TestMaybeCacheOnHotnessReturn checks drift-triggered replans hit when the
// workload swings back to a previously planned distribution.
func TestMaybeCacheOnHotnessReturn(t *testing.T) {
	hot := zipf(t, 300)
	bytes := make([]float64, 300)
	for i := range bytes {
		bytes[i] = 10
	}
	r, err := NewReplanner(hot, bytes, bins(), 10, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	r.Cache = NewLayouts(64)
	shifted := rotate(hot, 150)
	if mig, err := r.Maybe(shifted); err != nil || !mig.Triggered {
		t.Fatalf("first drift: mig=%+v err=%v", mig, err)
	}
	if mig, err := r.Maybe(hot); err != nil || !mig.Triggered {
		t.Fatalf("return drift: mig=%+v err=%v", mig, err)
	}
	// hot was planned at construction time — before the cache was attached
	// — so only a second full swing can hit.
	if mig, err := r.Maybe(shifted); err != nil || !mig.Triggered {
		t.Fatalf("second swing: mig=%+v err=%v", mig, err)
	}
	if r.CacheHits() == 0 {
		t.Error("no cache hits after returning to a cached distribution")
	}
}

// TestCacheIsolation mutates a cache-served assignment and verifies the
// cached copy is unaffected (entries are cloned on insert and hit).
func TestCacheIsolation(t *testing.T) {
	hot := zipf(t, 100)
	bytes := make([]float64, 100)
	for i := range bytes {
		bytes[i] = 10
	}
	r, err := NewReplanner(hot, bytes, bins(), 10, 1, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	r.Cache = NewLayouts(8)
	degraded, err := ddak.DegradeBins(bins(), map[string]bool{"ssd0": true})
	if err != nil {
		t.Fatal(err)
	}
	m1, err := r.Rebin(degraded)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]int32(nil), m1.Assignment.Of...)
	for i := range m1.Assignment.Of { // caller scribbles on the result
		m1.Assignment.Of[i] = -1
	}
	if _, err := r.Rebin(bins()); err != nil {
		t.Fatal(err)
	}
	m3, err := r.Rebin(degraded) // cache hit
	if err != nil {
		t.Fatal(err)
	}
	if r.CacheHits() == 0 {
		t.Fatal("expected a cache hit on the repeated bin set")
	}
	for i := range want {
		if m3.Assignment.Of[i] != want[i] {
			t.Fatalf("cached layout poisoned at item %d: %d want %d", i, m3.Assignment.Of[i], want[i])
		}
	}
}
