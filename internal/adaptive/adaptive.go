// Package adaptive implements the future-work extension the paper commits
// to in §5 ("Limitations"): lightweight online profiling and adaptive
// placement for dynamic workloads. Offline pre-sampling assumes a static
// access distribution; under drift (online inference, streaming updates)
// the planned layout's cache hit rate decays. This package provides
//
//   - Monitor: exponentially-decayed access counters — the "lightweight
//     online profiling" — cheap enough to update on every mini-batch;
//   - drift detection via total-variation distance between the layout's
//     planning-time distribution and the live estimate;
//   - Replanner: re-runs DDAK when drift exceeds a threshold and reports
//     the migration bill (which items moved, how many bytes cross the
//     fabric to re-shuffle them).
package adaptive

import (
	"fmt"
	"math"

	"moment/internal/ddak"
	"moment/internal/obs"
	"moment/internal/scorecache"
)

// Monitor keeps exponentially-decayed per-item access counts.
type Monitor struct {
	counts []float64
	factor float64 // per-tick decay multiplier
	total  float64
	gen    uint64 // bumped whenever an observation lands
}

// NewMonitor tracks n items with the given half-life (in ticks; a tick is
// typically one mini-batch).
func NewMonitor(n int, halfLifeTicks float64) (*Monitor, error) {
	if n <= 0 {
		return nil, fmt.Errorf("adaptive: non-positive item count")
	}
	if halfLifeTicks <= 0 {
		return nil, fmt.Errorf("adaptive: non-positive half life")
	}
	return &Monitor{
		counts: make([]float64, n),
		factor: math.Exp(-math.Ln2 / halfLifeTicks),
	}, nil
}

// Observe credits one access of the given weight to an item.
func (m *Monitor) Observe(item int32, weight float64) error {
	if item < 0 || int(item) >= len(m.counts) {
		return fmt.Errorf("adaptive: item %d out of range [0,%d)", item, len(m.counts))
	}
	if weight < 0 || math.IsNaN(weight) {
		return fmt.Errorf("adaptive: bad weight %v", weight)
	}
	m.counts[item] += weight
	m.total += weight
	m.gen++
	return nil
}

// ObserveWeights credits every item its per-index weight in one call (an
// epoch's expected access masses, or a histogram of a batch). The slice
// must cover every item.
func (m *Monitor) ObserveWeights(weights []float64) error {
	if len(weights) != len(m.counts) {
		return fmt.Errorf("adaptive: %d weights for %d items", len(weights), len(m.counts))
	}
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return fmt.Errorf("adaptive: bad weight %v", w)
		}
	}
	for i, w := range weights {
		m.counts[i] += w
		m.total += w
	}
	m.gen++
	return nil
}

// Gen returns the observation generation: it changes exactly when an
// observation lands (Observe/ObserveBatch/ObserveWeights) and NOT on
// Tick — decay multiplies every count and the total by the same factor,
// so the normalized Hotness distribution is unchanged by Tick alone.
// Callers that act on Hotness (drift checks, replanning) can therefore
// skip all work while Gen is stable.
func (m *Monitor) Gen() uint64 { return m.gen }

// ObserveBatch credits one access per listed item (one mini-batch's
// fetches) and then advances the decay clock by one tick.
func (m *Monitor) ObserveBatch(items []int32) error {
	for _, it := range items {
		if err := m.Observe(it, 1); err != nil {
			return err
		}
	}
	m.Tick()
	return nil
}

// Tick applies one decay step.
func (m *Monitor) Tick() {
	for i := range m.counts {
		m.counts[i] *= m.factor
	}
	m.total *= m.factor
}

// Hotness returns the normalized access distribution estimate (sums to 1;
// all-zero if nothing was observed).
func (m *Monitor) Hotness() []float64 {
	return m.HotnessInto(nil)
}

// HotnessInto is Hotness writing into dst (grown if needed) so steady
// callers do not allocate. Returns the filled slice.
func (m *Monitor) HotnessInto(dst []float64) []float64 {
	if cap(dst) < len(m.counts) {
		dst = make([]float64, len(m.counts))
	}
	dst = dst[:len(m.counts)]
	if m.total <= 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	for i, c := range m.counts {
		dst[i] = c / m.total
	}
	return dst
}

// TV computes the total-variation distance ½·Σ|a−b| between two
// distributions of equal length (0 = identical, 1 = disjoint).
func TV(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("adaptive: distribution lengths %d != %d", len(a), len(b))
	}
	d := 0.0
	for i := range a {
		d += math.Abs(a[i] - b[i])
	}
	return d / 2, nil
}

// Migration reports one adaptive re-placement.
type Migration struct {
	// Drift is the TV distance that triggered (or failed to trigger) it.
	Drift float64
	// Triggered reports whether a re-placement happened.
	Triggered bool
	// MovedItems is the number of items whose bin changed.
	MovedItems int
	// MovedBytes is the embedding volume that must cross the fabric.
	MovedBytes float64
	// Incremental reports the layout came from ddak.PlaceItemsDelta
	// (only boundary-crossers moved) rather than a full re-solve.
	Incremental bool
	// FellBack reports an attempted incremental re-solve that exceeded
	// DeltaBudget and completed as a full PlaceItems instead.
	FellBack bool
	// Skipped reports a replan whose migration bill exceeded its
	// projected payback (PaybackEpochs), so the old layout was kept.
	Skipped bool
	// ProjectedSavedBytes is the payback estimate the billing compared
	// MovedBytes against: (new hit − current hit) · TrafficScale ·
	// PaybackEpochs. Zero when payback billing is disabled.
	ProjectedSavedBytes float64
	// Assignment is the layout in force after the call.
	Assignment *ddak.ItemAssignment
}

// Layouts is a bounded LRU of memoized DDAK layouts keyed by a fingerprint
// of everything that determines one: hotness, item sizes, the bin set, and
// the pooling/traffic parameters. Fault-recovery cycles rotate among a
// small set of bin configurations (healthy, ssd0-dead, link-degraded, ...),
// so Rebin replans into a previously seen configuration become lookups.
type Layouts = scorecache.Cache[uint64, *ddak.ItemAssignment]

// NewLayouts returns a layout LRU with the given bound (<=0 disables).
func NewLayouts(max int) *Layouts {
	return scorecache.New[uint64, *ddak.ItemAssignment](max)
}

// Replanner owns a DDAK layout and refreshes it when the observed access
// distribution drifts beyond Threshold.
type Replanner struct {
	Bins         []ddak.Bin
	PoolN        int
	TrafficScale float64
	// Threshold is the TV drift that triggers re-placement (e.g. 0.1).
	Threshold float64
	// Cache, when non-nil, memoizes layouts across replans (and across
	// Replanners sharing it). Entries are cloned on both insert and hit, so
	// callers may mutate returned assignments freely.
	Cache *Layouts
	// ScheduleKey salts the layout fingerprint with the fault schedule the
	// replanner is operating under (e.g. faults.Format output). Replanners
	// for different schedules can then share one Layouts cache without a
	// degraded run's layouts leaking into a healthy one whose bins happen
	// to fingerprint identically. Set it together with Cache, before the
	// first cached place().
	ScheduleKey string
	// Explain, when non-nil, receives one provenance step per replanning
	// decision: drift checks (tripped or not), forced rebins, and layout
	// cache hits. Seq is the replanner's decision counter.
	Explain *obs.Explain
	// DeltaBudget, when positive, routes drift replans through
	// ddak.PlaceItemsDelta: only items whose hotness rank crossed a bin
	// boundary move, and the delta falls back to a full re-solve when it
	// would migrate more than this fraction of total item bytes. Zero
	// keeps the full-re-solve behavior.
	DeltaBudget float64
	// PaybackEpochs, when positive, bills every drift replan against its
	// projected savings the way Rebin bills fault migrations: moving
	// MovedBytes is only worth it if the layout's fast-tier improvement
	// times TrafficScale (bytes saved per epoch) repays it within this
	// many epochs. Replans that don't pay for themselves are skipped
	// (Migration.Skipped).
	PaybackEpochs float64
	// Observer receives adaptive_* counters and EvDrift flight events.
	Observer *obs.Observer

	itemBytes []float64
	current   *ddak.ItemAssignment
	curItems  []ddak.Item // items that produced current (delta's prev)
	planned   []float64   // hotness snapshot at last re-placement
	replans   int
	cacheHits int
	decisions int // explain step counter (one per Maybe/Rebin)

	// Steady-state memo for MaybeMonitor: while the monitor's generation
	// is unchanged no hotness is recomputed, no TV taken, no key hashed.
	lastGen uint64
	haveGen bool
	lastMig Migration
	liveBuf []float64
}

// NewReplanner plans the initial layout from the offline hotness estimate.
func NewReplanner(hot, itemBytes []float64, bins []ddak.Bin, poolN int, trafficScale, threshold float64) (*Replanner, error) {
	if len(hot) != len(itemBytes) {
		return nil, fmt.Errorf("adaptive: hotness/bytes length mismatch %d vs %d", len(hot), len(itemBytes))
	}
	if threshold <= 0 || threshold >= 1 {
		return nil, fmt.Errorf("adaptive: threshold %v out of (0,1)", threshold)
	}
	r := &Replanner{
		Bins:         bins,
		PoolN:        poolN,
		TrafficScale: trafficScale,
		Threshold:    threshold,
		itemBytes:    append([]float64(nil), itemBytes...),
	}
	a, err := r.place(hot)
	if err != nil {
		return nil, err
	}
	r.current = a
	r.curItems = r.buildItems(hot)
	r.planned = append([]float64(nil), hot...)
	return r, nil
}

// buildItems materializes the ddak item slice for a hotness vector.
func (r *Replanner) buildItems(hot []float64) []ddak.Item {
	items := make([]ddak.Item, len(hot))
	for i := range items {
		items[i] = ddak.Item{Hot: hot[i], Bytes: r.itemBytes[i]}
	}
	return items
}

func (r *Replanner) place(hot []float64) (*ddak.ItemAssignment, error) {
	var key uint64
	if r.Cache != nil {
		key = r.layoutKey(hot)
		if a, ok := r.Cache.Get(key); ok {
			r.cacheHits++
			r.Explain.Add(obs.ExplainStep{Seq: r.decisions, Stage: "replan", Reason: "layout-cache-hit"})
			return cloneAssignment(a), nil
		}
	}
	items := make([]ddak.Item, len(hot))
	for i := range items {
		items[i] = ddak.Item{Hot: hot[i], Bytes: r.itemBytes[i]}
	}
	a, err := ddak.PlaceItems(items, r.Bins, r.PoolN, r.TrafficScale)
	if err != nil {
		return nil, err
	}
	if r.Cache != nil {
		r.Cache.Put(key, cloneAssignment(a))
	}
	return a, nil
}

// layoutKey fingerprints everything place() depends on.
func (r *Replanner) layoutKey(hot []float64) uint64 {
	h := scorecache.NewHasher()
	h.Floats(hot).Floats(r.itemBytes)
	h.Uint(uint64(len(r.Bins)))
	for _, b := range r.Bins {
		h.String(b.Name)
		h.Uint(uint64(b.Tier))
		h.Float(b.Capacity).Float(b.Traffic)
	}
	h.Uint(uint64(r.PoolN)).Float(r.TrafficScale)
	h.String(r.ScheduleKey)
	return h.Sum()
}

// cloneAssignment deep-copies an assignment so cached layouts stay isolated
// from caller mutation.
func cloneAssignment(a *ddak.ItemAssignment) *ddak.ItemAssignment {
	return &ddak.ItemAssignment{
		Bins:   append([]ddak.Bin(nil), a.Bins...),
		Of:     append([]int32(nil), a.Of...),
		Used:   append([]float64(nil), a.Used...),
		Access: append([]float64(nil), a.Access...),
		Pools:  a.Pools,
	}
}

// Current returns the layout in force.
func (r *Replanner) Current() *ddak.ItemAssignment { return r.current }

// Replans counts completed re-placements.
func (r *Replanner) Replans() int { return r.replans }

// CacheHits counts place() calls served from the layout cache.
func (r *Replanner) CacheHits() int { return r.cacheHits }

// Maybe checks the live hotness estimate against the planning-time
// snapshot and re-places when drift exceeds the threshold.
func (r *Replanner) Maybe(live []float64) (*Migration, error) {
	drift, err := TV(r.planned, live)
	if err != nil {
		return nil, err
	}
	if drift < r.Threshold {
		r.decisions++
		mig := &Migration{Drift: drift, Assignment: r.current}
		r.Explain.Add(obs.ExplainStep{Seq: r.decisions, Stage: "replan", Reason: "below-threshold", Value: drift})
		return mig, nil
	}
	return r.Replan(live)
}

// MaybeMonitor is Maybe fed straight from a Monitor, with a generation
// dirty check: while the monitor has observed nothing since the last
// call, the previous decision is returned as-is — no hotness vector is
// materialized, no TV distance computed, no layout key hashed, nothing
// allocated. Tick-only epochs qualify (decay rescales counts and total
// together, leaving the normalized distribution untouched), so a
// no-drift steady state is completely free.
func (r *Replanner) MaybeMonitor(m *Monitor) (*Migration, error) {
	if m == nil {
		return nil, fmt.Errorf("adaptive: nil monitor")
	}
	if r.haveGen && m.Gen() == r.lastGen {
		return &r.lastMig, nil
	}
	r.liveBuf = m.HotnessInto(r.liveBuf)
	mig, err := r.Maybe(r.liveBuf)
	if err != nil {
		return nil, err
	}
	r.lastGen = m.Gen()
	r.haveGen = true
	r.lastMig = *mig
	return mig, nil
}

// Replan forces a re-placement onto the live distribution regardless of
// drift. With DeltaBudget set it runs the incremental DDAK re-solve
// (only rank-boundary crossers move, full-solve fallback over budget);
// with PaybackEpochs set the migration is billed against its projected
// per-epoch savings and skipped when it cannot pay for itself within
// the window — the same billing discipline Rebin applies to fault
// migrations, applied to traffic drift.
func (r *Replanner) Replan(live []float64) (*Migration, error) {
	drift, err := TV(r.planned, live)
	if err != nil {
		return nil, err
	}
	r.decisions++
	mig := &Migration{Drift: drift, Assignment: r.current}
	items := r.buildItems(live)
	var next *ddak.ItemAssignment
	if r.DeltaBudget > 0 {
		// Delta results depend on the previous layout, so they bypass
		// the fingerprint-keyed layout cache entirely.
		res, err := ddak.PlaceItemsDelta(r.curItems, r.current, items, r.Bins, r.PoolN, r.TrafficScale,
			ddak.DeltaOptions{MaxMoveFrac: r.DeltaBudget, Observer: r.Observer})
		if err != nil {
			return nil, err
		}
		next = res.Assignment
		mig.Incremental = !res.FellBack
		mig.FellBack = res.FellBack
		mig.MovedItems = res.MovedItems
		mig.MovedBytes = res.MovedBytes
	} else {
		next, err = r.place(live)
		if err != nil {
			return nil, err
		}
		for i := range next.Of {
			if next.Of[i] != r.current.Of[i] {
				mig.MovedItems++
				mig.MovedBytes += r.itemBytes[i]
			}
		}
	}
	if r.PaybackEpochs > 0 && r.TrafficScale > 0 && mig.MovedItems > 0 {
		curHit, err := HitRate(r.current, live)
		if err != nil {
			return nil, err
		}
		nextHit, err := HitRate(next, live)
		if err != nil {
			return nil, err
		}
		// Every point of fast-tier hit rate is TrafficScale bytes per
		// epoch that no longer come off SSD; the migration must repay
		// its one-time bill within PaybackEpochs of those savings.
		mig.ProjectedSavedBytes = (nextHit - curHit) * r.TrafficScale * r.PaybackEpochs
		if mig.MovedBytes > mig.ProjectedSavedBytes {
			mig.Skipped = true
			mig.MovedItems = 0
			mig.MovedBytes = 0
			mig.Incremental = false
			mig.FellBack = false
			mig.Assignment = r.current
			r.Explain.Add(obs.ExplainStep{Seq: r.decisions, Stage: "replan", Reason: "payback-skip", Value: mig.ProjectedSavedBytes})
			if o := r.Observer; o != nil {
				o.Counter("adaptive_replans_skipped_total").Add(1)
			}
			return mig, nil
		}
	}
	mig.Triggered = true
	mig.Assignment = next
	r.current = next
	r.curItems = items
	r.planned = append(r.planned[:0], live...)
	r.replans++
	r.Explain.Add(obs.ExplainStep{Seq: r.decisions, Stage: "replan", Reason: "drift-replanned", Value: drift, Count: mig.MovedItems})
	if o := r.Observer; o != nil {
		mode := "full"
		if mig.Incremental {
			mode = "delta"
		}
		o.Counter("adaptive_drift_replans_total", obs.L("mode", mode)).Add(1)
		if o.FlightEnabled() {
			o.Event(obs.Event{Kind: obs.EvDrift, Name: "replan", Reason: mode,
				V1: drift, V2: mig.MovedBytes})
		}
	}
	return mig, nil
}

// Rebin forces a re-placement into a new bin set regardless of drift — the
// graceful-degradation path: when hardware fails mid-epoch, the surviving
// bins' capacities and traffic budgets change even though the access
// distribution did not. The bin list must be index-compatible with the old
// one (as ddak.DegradeBins produces) so the migration bill is meaningful.
func (r *Replanner) Rebin(bins []ddak.Bin) (*Migration, error) {
	old := r.current
	r.Bins = bins
	r.decisions++
	next, err := r.place(r.planned)
	if err != nil {
		return nil, err
	}
	mig := &Migration{Triggered: true, Assignment: next}
	for i := range next.Of {
		if next.Of[i] != old.Of[i] {
			mig.MovedItems++
			mig.MovedBytes += r.itemBytes[i]
		}
	}
	r.current = next
	r.replans++
	r.Explain.Add(obs.ExplainStep{Seq: r.decisions, Stage: "replan", Reason: "rebin", Count: mig.MovedItems, Value: mig.MovedBytes})
	return mig, nil
}

// HitRate evaluates a layout's fast-tier (GPU+CPU) hit fraction under an
// access distribution — the quality metric drift erodes and re-placement
// restores.
func HitRate(a *ddak.ItemAssignment, hot []float64) (float64, error) {
	if len(hot) != len(a.Of) {
		return 0, fmt.Errorf("adaptive: hotness length %d != assignment %d", len(hot), len(a.Of))
	}
	total, fast := 0.0, 0.0
	for i, bin := range a.Of {
		total += hot[i]
		if a.Bins[bin].Tier != ddak.TierSSD {
			fast += hot[i]
		}
	}
	if total == 0 {
		return 0, nil
	}
	return fast / total, nil
}
