package adaptive

import (
	"fmt"
	"sort"

	"moment/internal/ddak"
	"moment/internal/obs"
)

// DriftSignal is one drift check's verdict.
type DriftSignal struct {
	// TV is the total-variation distance between reference and live.
	TV float64
	// RankChurn is the fraction of the live top-K items absent from the
	// reference top-K (0 when rank tracking is disabled).
	RankChurn float64
	// Over reports this single check exceeded a trip threshold.
	Over bool
	// Tripped reports the hysteresis is satisfied: TripAfter consecutive
	// over-threshold checks outside the cooldown window. Act on this,
	// not on Over — isolated noisy batches stay below it.
	Tripped bool
}

// DriftDetector decides when live sampler traffic has drifted far enough
// from the distribution a layout was planned for to be worth replanning.
// It trips on either signal:
//
//   - total-variation distance (mass moved anywhere in the distribution);
//   - top-K rank displacement (the identity of the hottest items changed,
//     which crosses bin boundaries even when TV is modest — a handful of
//     swapped cache-resident vertices barely moves TV but invalidates the
//     cache contents).
//
// Hysteresis (TripAfter consecutive over-threshold checks) filters
// single-batch noise, and Cooldown suppresses re-trips while a fresh
// replan's EWMA estimate is still converging. The zero value is usable:
// TV threshold 0.1, rank tracking off, trip on the first over check, no
// cooldown.
type DriftDetector struct {
	// TVTrip is the TV distance considered drifted (<=0 means 0.1).
	TVTrip float64
	// RankTopK enables rank-displacement tracking over the hottest K
	// items (0 disables).
	RankTopK int
	// RankTrip is the churn fraction considered drifted when rank
	// tracking is on (<=0 means 0.5).
	RankTrip float64
	// TripAfter is how many consecutive over-threshold checks arm a trip
	// (<=0 means 1 — trip immediately).
	TripAfter int
	// Cooldown is how many checks after a trip are ignored (<=0 none).
	Cooldown int
	// Observer receives adaptive_drift_* counters and EvDrift events.
	Observer *obs.Observer

	over   int // consecutive over-threshold checks
	cool   int // remaining cooldown checks
	checks int
	trips  int

	refTop, liveTop []int32 // top-K scratch, reused across checks
}

// Check compares the live distribution against the reference the current
// layout was planned for. ref and live must have equal length.
func (d *DriftDetector) Check(ref, live []float64) (DriftSignal, error) {
	tv, err := TV(ref, live)
	if err != nil {
		return DriftSignal{}, err
	}
	sig := DriftSignal{TV: tv}
	tvTrip := d.TVTrip
	if tvTrip <= 0 {
		tvTrip = 0.1
	}
	sig.Over = tv >= tvTrip
	if d.RankTopK > 0 {
		rankTrip := d.RankTrip
		if rankTrip <= 0 {
			rankTrip = 0.5
		}
		d.refTop = topK(ref, d.RankTopK, d.refTop)
		d.liveTop = topK(live, d.RankTopK, d.liveTop)
		sig.RankChurn = churn(d.refTop, d.liveTop)
		if sig.RankChurn >= rankTrip {
			sig.Over = true
		}
	}
	d.checks++
	if d.cool > 0 {
		d.cool--
		d.over = 0
		sig.Tripped = false
	} else {
		if sig.Over {
			d.over++
		} else {
			d.over = 0
		}
		tripAfter := d.TripAfter
		if tripAfter <= 0 {
			tripAfter = 1
		}
		sig.Tripped = d.over >= tripAfter
	}
	if sig.Tripped {
		d.trips++
	}
	if o := d.Observer; o != nil {
		o.Counter("adaptive_drift_checks_total").Add(1)
		if sig.Tripped {
			o.Counter("adaptive_drift_trips_total").Add(1)
			if o.FlightEnabled() {
				o.Event(obs.Event{Kind: obs.EvDrift, Name: "trip",
					V1: sig.TV, V2: sig.RankChurn})
			}
		}
	}
	return sig, nil
}

// Reset clears the hysteresis and starts the cooldown window; call it
// after acting on a trip (i.e. after replanning).
func (d *DriftDetector) Reset() {
	d.over = 0
	d.cool = d.Cooldown
}

// Checks counts Check calls; Trips counts checks that tripped.
func (d *DriftDetector) Checks() int { return d.checks }

// Trips counts checks whose hysteresis fired.
func (d *DriftDetector) Trips() int { return d.trips }

// topK writes the indices of the k largest values of v (ties broken by
// lower index) into scratch and returns it sorted by index for cheap
// intersection.
func topK(v []float64, k int, scratch []int32) []int32 {
	if k > len(v) {
		k = len(v)
	}
	scratch = scratch[:0]
	// Selection via a small min-heap laid out in scratch: O(n log k),
	// no allocation once scratch has capacity k.
	less := func(a, b int32) bool {
		// Min-heap order: smaller value first; among equal values the
		// higher index is "smaller" so ties resolve to lower indices.
		if v[a] != v[b] {
			return v[a] < v[b]
		}
		return a > b
	}
	push := func(x int32) {
		scratch = append(scratch, x)
		i := len(scratch) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !less(scratch[i], scratch[p]) {
				break
			}
			scratch[i], scratch[p] = scratch[p], scratch[i]
			i = p
		}
	}
	replaceMin := func(x int32) {
		scratch[0] = x
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			min := i
			if l < len(scratch) && less(scratch[l], scratch[min]) {
				min = l
			}
			if r < len(scratch) && less(scratch[r], scratch[min]) {
				min = r
			}
			if min == i {
				break
			}
			scratch[i], scratch[min] = scratch[min], scratch[i]
			i = min
		}
	}
	for i := range v {
		x := int32(i)
		if len(scratch) < k {
			push(x)
		} else if k > 0 && less(scratch[0], x) {
			replaceMin(x)
		}
	}
	sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
	return scratch
}

// churn is the fraction of live entries absent from ref; both must be
// sorted ascending.
func churn(ref, live []int32) float64 {
	if len(live) == 0 {
		return 0
	}
	common := 0
	i, j := 0, 0
	for i < len(ref) && j < len(live) {
		switch {
		case ref[i] == live[j]:
			common++
			i++
			j++
		case ref[i] < live[j]:
			i++
		default:
			j++
		}
	}
	return 1 - float64(common)/float64(len(live))
}

// TierOf maps every item of a layout to its storage tier rank (0 = GPU,
// 1 = CPU, 2 = SSD) — the form sample.Sampler.SetLocality consumes, kept
// as raw uint8 so the sample package needs no ddak dependency.
func TierOf(a *ddak.ItemAssignment) ([]uint8, error) {
	if a == nil {
		return nil, fmt.Errorf("adaptive: nil assignment")
	}
	out := make([]uint8, len(a.Of))
	for i, b := range a.Of {
		if b < 0 || int(b) >= len(a.Bins) {
			return nil, fmt.Errorf("adaptive: item %d in bin %d out of range", i, b)
		}
		out[i] = uint8(a.Bins[b].Tier)
	}
	return out, nil
}
