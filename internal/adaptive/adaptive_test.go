package adaptive

import (
	"math"
	"math/rand"
	"testing"

	"moment/internal/ddak"
	"moment/internal/sample"
)

func bins() []ddak.Bin {
	return []ddak.Bin{
		{Name: "hbm", Tier: ddak.TierGPU, Capacity: 100, Traffic: 0.5},
		{Name: "dram", Tier: ddak.TierCPU, Capacity: 200, Traffic: 0.2},
		{Name: "ssd0", Tier: ddak.TierSSD, Capacity: 5000, Traffic: 0.15},
		{Name: "ssd1", Tier: ddak.TierSSD, Capacity: 5000, Traffic: 0.15},
	}
}

func zipf(t *testing.T, n int) []float64 {
	t.Helper()
	h, err := sample.ZipfHotness(n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// rotate shifts the hot ranking by k positions: the former hot head cools,
// formerly cold vertices heat up (a drifting workload).
func rotate(hot []float64, k int) []float64 {
	out := make([]float64, len(hot))
	for i := range hot {
		out[(i+k)%len(hot)] = hot[i]
	}
	return out
}

func TestMonitorTracksDistribution(t *testing.T) {
	m, err := NewMonitor(10, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Feed a 70/30 split between items 0 and 1.
	r := rand.New(rand.NewSource(1))
	for batch := 0; batch < 200; batch++ {
		var items []int32
		for k := 0; k < 10; k++ {
			if r.Float64() < 0.7 {
				items = append(items, 0)
			} else {
				items = append(items, 1)
			}
		}
		if err := m.ObserveBatch(items); err != nil {
			t.Fatal(err)
		}
	}
	h := m.Hotness()
	if math.Abs(h[0]-0.7) > 0.08 || math.Abs(h[1]-0.3) > 0.08 {
		t.Errorf("estimate %v, want ~[0.7 0.3 ...]", h[:3])
	}
	sum := 0.0
	for _, v := range h {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("hotness sums to %v", sum)
	}
}

func TestMonitorDecayForgetsOldRegime(t *testing.T) {
	m, err := NewMonitor(4, 10) // short half-life
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		m.ObserveBatch([]int32{0})
	}
	for i := 0; i < 100; i++ {
		m.ObserveBatch([]int32{3})
	}
	h := m.Hotness()
	if h[3] < 0.99 {
		t.Errorf("monitor still remembers stale item: %v", h)
	}
}

func TestMonitorErrors(t *testing.T) {
	if _, err := NewMonitor(0, 10); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewMonitor(5, 0); err == nil {
		t.Error("half-life 0 accepted")
	}
	m, err := NewMonitor(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Observe(9, 1); err == nil {
		t.Error("out-of-range item accepted")
	}
	if err := m.Observe(0, -1); err == nil {
		t.Error("negative weight accepted")
	}
	if h := m.Hotness(); h[0] != 0 {
		t.Error("empty monitor should report zeros")
	}
}

func TestTV(t *testing.T) {
	a := []float64{0.5, 0.5, 0}
	b := []float64{0, 0.5, 0.5}
	d, err := TV(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.5) > 1e-9 {
		t.Errorf("TV = %v, want 0.5", d)
	}
	if d, _ := TV(a, a); d != 0 {
		t.Errorf("TV(a,a) = %v", d)
	}
	if _, err := TV(a, b[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestReplannerTriggersOnDrift(t *testing.T) {
	const n = 1000
	hot := zipf(t, n)
	bytes := make([]float64, n)
	for i := range bytes {
		bytes[i] = 1
	}
	r, err := NewReplanner(hot, bytes, bins(), 10, 1, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	// No drift: nothing happens.
	mig, err := r.Maybe(hot)
	if err != nil {
		t.Fatal(err)
	}
	if mig.Triggered || mig.Drift > 1e-9 {
		t.Errorf("spurious trigger: %+v", mig)
	}
	// Rotate the hot set hard: must trigger and move items.
	shifted := rotate(hot, n/2)
	mig, err = r.Maybe(shifted)
	if err != nil {
		t.Fatal(err)
	}
	if !mig.Triggered {
		t.Fatalf("drift %.3f did not trigger", mig.Drift)
	}
	if mig.MovedItems == 0 || mig.MovedBytes == 0 {
		t.Error("migration moved nothing")
	}
	if r.Replans() != 1 {
		t.Errorf("replans = %d", r.Replans())
	}
	// After re-planning, the same distribution no longer triggers.
	mig, err = r.Maybe(shifted)
	if err != nil {
		t.Fatal(err)
	}
	if mig.Triggered {
		t.Error("re-triggered without new drift")
	}
}

func TestAdaptiveRestoresHitRate(t *testing.T) {
	// The §5 scenario end to end: plan offline, drift the workload,
	// show the static layout's hit rate collapsing and the adaptive one
	// recovering.
	const n = 2000
	offline := zipf(t, n)
	bytes := make([]float64, n)
	for i := range bytes {
		bytes[i] = 1
	}
	r, err := NewReplanner(offline, bytes, bins(), 10, 1, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	static := r.Current()

	h0, err := HitRate(static, offline)
	if err != nil {
		t.Fatal(err)
	}
	if h0 < 0.3 {
		t.Fatalf("offline hit rate %.3f suspiciously low", h0)
	}

	drifted := rotate(offline, n/2)
	hStaticDrift, err := HitRate(static, drifted)
	if err != nil {
		t.Fatal(err)
	}
	if hStaticDrift > h0*0.5 {
		t.Fatalf("drift did not hurt the static layout: %.3f vs %.3f", hStaticDrift, h0)
	}

	mig, err := r.Maybe(drifted)
	if err != nil {
		t.Fatal(err)
	}
	if !mig.Triggered {
		t.Fatal("replanner missed the drift")
	}
	hAdaptive, err := HitRate(r.Current(), drifted)
	if err != nil {
		t.Fatal(err)
	}
	if hAdaptive < h0*0.95 {
		t.Errorf("adaptive hit rate %.3f did not recover to ~%.3f", hAdaptive, h0)
	}
}

func TestReplannerWithMonitorLoop(t *testing.T) {
	// Integration: a monitor feeds the replanner while batches arrive
	// from a shifted regime.
	const n = 500
	offline := zipf(t, n)
	bytes := make([]float64, n)
	for i := range bytes {
		bytes[i] = 1
	}
	r, err := NewReplanner(offline, bytes, bins(), 10, 1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := NewMonitor(n, 20)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	shifted := rotate(offline, n/2)
	// Draw batches from the shifted distribution.
	cum := make([]float64, n+1)
	for i, h := range shifted {
		cum[i+1] = cum[i] + h
	}
	draw := func() int32 {
		x := rng.Float64() * cum[n]
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int32(lo)
	}
	triggered := false
	for batch := 0; batch < 150 && !triggered; batch++ {
		items := make([]int32, 64)
		for k := range items {
			items[k] = draw()
		}
		if err := mon.ObserveBatch(items); err != nil {
			t.Fatal(err)
		}
		mig, err := r.Maybe(mon.Hotness())
		if err != nil {
			t.Fatal(err)
		}
		triggered = mig.Triggered
	}
	if !triggered {
		t.Fatal("online profiling never detected the regime change")
	}
}

func TestReplannerErrors(t *testing.T) {
	hot := zipf(t, 10)
	bytes := make([]float64, 10)
	for i := range bytes {
		bytes[i] = 1
	}
	if _, err := NewReplanner(hot, bytes[:5], bins(), 10, 1, 0.1); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewReplanner(hot, bytes, bins(), 10, 1, 0); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := NewReplanner(hot, bytes, bins(), 10, 1, 1); err == nil {
		t.Error("threshold 1 accepted")
	}
	r, err := NewReplanner(hot, bytes, bins(), 10, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Maybe(hot[:5]); err == nil {
		t.Error("short live distribution accepted")
	}
	if _, err := HitRate(r.Current(), hot[:5]); err == nil {
		t.Error("short hotness accepted")
	}
}
