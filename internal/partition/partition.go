// Package partition scores cross-node data partitions of a graph's feature
// matrix by mirror/communication volume, in the style of CAGNET's
// communication-avoiding 1D/1.5D/2D layouts (Tripathy et al.) and MG-GCN.
//
// The unit of account is the *feature row*: one vertex's embedding crossing
// one inter-node boundary once. Volumes are deduplicated per (vertex,
// destination) — a destination that needs a row for many of its edges still
// receives it once per epoch — which is exactly the broadcast/reduce volume
// the CAGNET algorithms realize. All counts are brute-force checkable by a
// per-edge scan, which the property and fuzz tests exploit.
//
// Layouts (P cluster nodes, aggregation at u reads the features of its
// in-neighbors g.Neighbors(u)):
//
//   - 1D: vertices are split into P blocks; node owner(u) computes row u and
//     holds the features of its own block. A row w is mirrored to every
//     other node that owns at least one out-neighbor of w.
//   - 1.5D: P = G×c; vertices split into G groups, each replicated on c
//     nodes. Replica k of group g holds the feature rows of group g and
//     processes only the edges whose *source* vertex falls in column slice
//     k, so a remote row travels to exactly one replica of each needing
//     group (mirror volume shrinks as c grows). The per-replica partial
//     results are then combined inside the group (reduce volume grows with
//     c): each active replica ships its partial row to the group's
//     designated root replica for that row.
//   - 2D: P = q×q grid; processor (i,j) owns the edges from source block j
//     to destination block i, and row v lives on the diagonal (b(v), b(v)).
//     Rows broadcast down their source column (mirror) and partials reduce
//     across the destination row (reduce); per-vertex traffic is capped at
//     2(q-1) rows versus 1D's (P-1).
//
// Hashed assignment (round-robin instead of contiguous range blocks) is the
// quality baseline: range blocks exploit locality in the vertex order,
// hashing destroys it.
package partition

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"moment/internal/graph"
)

// Layout selects a CAGNET-style distribution of the feature matrix.
type Layout int

const (
	// Layout1D is the row-block distribution: P blocks, one per node.
	Layout1D Layout = iota
	// Layout15D replicates each of P/c vertex groups on c nodes.
	Layout15D
	// Layout2D arranges the P = q×q nodes as a processor grid.
	Layout2D
)

// String names the layout.
func (l Layout) String() string {
	switch l {
	case Layout15D:
		return "1.5d"
	case Layout2D:
		return "2d"
	}
	return "1d"
}

// Spec is one concrete cross-node partition of the feature matrix.
type Spec struct {
	Layout Layout
	// Nodes is the cluster size P.
	Nodes int
	// Repl is the replication width c of the 1.5D layout (ignored
	// otherwise). 0 defaults to 1, which degenerates to 1D.
	Repl int
	// Hashed assigns vertices round-robin instead of by contiguous range
	// block — the locality-destroying baseline.
	Hashed bool
}

// Validate rejects malformed specs (non-positive sizes, a 1.5D replication
// width that does not divide the node count, a non-square 2D grid).
func (s Spec) Validate() error {
	if s.Nodes <= 0 {
		return fmt.Errorf("partition: non-positive node count %d", s.Nodes)
	}
	switch s.Layout {
	case Layout1D:
	case Layout15D:
		c := s.replWidth()
		if c <= 0 || s.Nodes%c != 0 {
			return fmt.Errorf("partition: 1.5d replication width %d does not divide %d nodes", c, s.Nodes)
		}
	case Layout2D:
		q := s.grid()
		if q*q != s.Nodes {
			return fmt.Errorf("partition: 2d layout needs a square node count, got %d", s.Nodes)
		}
	default:
		return fmt.Errorf("partition: unknown layout %d", s.Layout)
	}
	return nil
}

func (s Spec) replWidth() int {
	if s.Repl <= 0 {
		return 1
	}
	return s.Repl
}

func (s Spec) grid() int {
	return int(math.Round(math.Sqrt(float64(s.Nodes))))
}

// String renders the spec in the grammar ParseSpec reads.
func (s Spec) String() string {
	var b strings.Builder
	b.WriteString(s.Layout.String())
	if s.Layout == Layout15D {
		fmt.Fprintf(&b, ":%d", s.replWidth())
	}
	if s.Hashed {
		b.WriteString("/hash")
	}
	return b.String()
}

// ParseSpec parses "1d", "1.5d:2", "2d", each optionally suffixed "/hash"
// (round-robin assignment), into a spec over the given node count.
func ParseSpec(text string, nodes int) (Spec, error) {
	s := Spec{Nodes: nodes}
	t := strings.ToLower(strings.TrimSpace(text))
	if rest, ok := strings.CutSuffix(t, "/hash"); ok {
		s.Hashed = true
		t = rest
	}
	if rest, ok := strings.CutPrefix(t, "1.5d"); ok {
		s.Layout = Layout15D
		s.Repl = 1
		if c, ok := strings.CutPrefix(rest, ":"); ok {
			v, err := strconv.Atoi(c)
			if err != nil {
				return Spec{}, fmt.Errorf("partition: bad replication width %q", c)
			}
			s.Repl = v
		} else if rest != "" {
			return Spec{}, fmt.Errorf("partition: unknown spec %q", text)
		}
	} else {
		switch t {
		case "1d":
			s.Layout = Layout1D
		case "2d":
			s.Layout = Layout2D
		default:
			return Spec{}, fmt.Errorf("partition: unknown spec %q", text)
		}
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// blockOf assigns vertex v to one of parts contiguous range blocks.
func blockOf(v int32, n, parts int) int {
	return int(int64(v) * int64(parts) / int64(n))
}

// assign maps vertex v to its block under the spec's assignment mode.
func assign(v int32, n, parts int, hashed bool) int {
	if parts <= 1 {
		return 0
	}
	if hashed {
		return int(v) % parts
	}
	return blockOf(v, n, parts)
}

// Owner returns the node that holds vertex v's feature row. For 1.5D the
// row is replicated across the whole group; Owner reports the group's
// first replica.
func (s Spec) Owner(v int32, n int) int {
	switch s.Layout {
	case Layout15D:
		c := s.replWidth()
		return assign(v, n, s.Nodes/c, s.Hashed) * c
	case Layout2D:
		q := s.grid()
		b := assign(v, n, q, s.Hashed)
		return b*q + b
	default:
		return assign(v, n, s.Nodes, s.Hashed)
	}
}

// Volume is the deduplicated per-epoch communication bill of one partition.
type Volume struct {
	// Mirror is the feature rows delivered across node boundaries during
	// the broadcast stage.
	Mirror float64
	// Reduce is the partial-result rows combined across node boundaries
	// (2D row reduction, 1.5D replica sync; zero for 1D).
	Reduce float64
	// Local is the feature rows served without leaving their owner node.
	Local float64
	// PerNodeMax is the rows received by the busiest node (mirror plus
	// reduce) — the network bottleneck under uniform link speeds.
	PerNodeMax float64
}

// Rows is the total cross-node rows (mirror + reduce).
func (v Volume) Rows() float64 { return v.Mirror + v.Reduce }

// RemoteFrac is the fraction of broadcast-stage feature-row needs that
// cross nodes: Mirror / (Mirror + Local). Zero when the graph has no edges.
func (v Volume) RemoteFrac() float64 {
	if v.Mirror+v.Local == 0 {
		return 0
	}
	return v.Mirror / (v.Mirror + v.Local)
}

// Score computes the communication volume of spec over g. The fast path
// dedups (vertex, destination) pairs with per-vertex bitsets when the
// destination index space fits 64 bits, falling back to hash sets on wider
// clusters; either way the result matches a brute-force per-edge count.
func Score(g *graph.Graph, spec Spec) (Volume, error) {
	if err := spec.Validate(); err != nil {
		return Volume{}, err
	}
	if g == nil || g.N() == 0 {
		return Volume{}, nil
	}
	switch spec.Layout {
	case Layout15D:
		return score15D(g, spec)
	case Layout2D:
		return score2D(g, spec)
	default:
		return score1D(g, spec)
	}
}

// RemoteFraction is Score reduced to the cross-node share of feature
// fetches — the crossFrac input of the cluster planner's replication axis.
func RemoteFraction(g *graph.Graph, spec Spec) (float64, error) {
	vol, err := Score(g, spec)
	if err != nil {
		return 0, err
	}
	return vol.RemoteFrac(), nil
}

// destSet dedups destination indices per vertex: a bitset when the index
// space fits in one word, a hash set beyond that.
type destSet struct {
	bits  []uint64
	wide  []map[int]struct{}
	width int
}

func newDestSet(n, width int) *destSet {
	d := &destSet{width: width}
	if width <= 64 {
		d.bits = make([]uint64, n)
	} else {
		d.wide = make([]map[int]struct{}, n)
	}
	return d
}

// add marks destination k for vertex v, reporting whether it was new.
func (d *destSet) add(v int32, k int) bool {
	if d.bits != nil {
		m := uint64(1) << uint(k)
		if d.bits[v]&m != 0 {
			return false
		}
		d.bits[v] |= m
		return true
	}
	s := d.wide[v]
	if s == nil {
		s = make(map[int]struct{}, 4)
		d.wide[v] = s
	}
	if _, ok := s[k]; ok {
		return false
	}
	s[k] = struct{}{}
	return true
}

func score1D(g *graph.Graph, spec Spec) (Volume, error) {
	n, p := g.N(), spec.Nodes
	seen := newDestSet(n, p)
	perNode := make([]float64, p)
	var vol Volume
	for u := int32(0); u < int32(n); u++ {
		dest := assign(u, n, p, spec.Hashed)
		for _, w := range g.Neighbors(u) {
			if !seen.add(w, dest) {
				continue
			}
			if assign(w, n, p, spec.Hashed) == dest {
				vol.Local++
			} else {
				vol.Mirror++
				perNode[dest]++
			}
		}
	}
	vol.PerNodeMax = maxOf(perNode)
	return vol, nil
}

func score15D(g *graph.Graph, spec Spec) (Volume, error) {
	n := g.N()
	c := spec.replWidth()
	groups := spec.Nodes / c
	// Broadcast: dedup (source vertex, destination group); the row lands
	// on the one replica whose column slice holds the source.
	seenMirror := newDestSet(n, groups)
	// Reduce: dedup (destination vertex, active replica slice).
	seenActive := newDestSet(n, c)
	active := make([]int, n)   // replicas holding a partial of row u
	rootHit := make([]bool, n) // does u's root replica hold a partial?
	perNode := make([]float64, spec.Nodes)
	var vol Volume
	for u := int32(0); u < int32(n); u++ {
		destGroup := assign(u, n, groups, spec.Hashed)
		rootSlice := assign(u, n, c, spec.Hashed)
		for _, w := range g.Neighbors(u) {
			slice := assign(w, n, c, spec.Hashed)
			if seenActive.add(u, slice) {
				active[u]++
				if slice == rootSlice {
					rootHit[u] = true
				}
			}
			if !seenMirror.add(w, destGroup) {
				continue
			}
			if assign(w, n, groups, spec.Hashed) == destGroup {
				vol.Local++
			} else {
				vol.Mirror++
				perNode[destGroup*c+slice]++
			}
		}
	}
	// Replica sync: every active replica except the root ships its partial
	// row to the root replica of u's group.
	for u := 0; u < n; u++ {
		if active[u] == 0 {
			continue
		}
		senders := active[u]
		if rootHit[u] {
			senders--
		}
		if senders > 0 && c > 1 {
			vol.Reduce += float64(senders)
			destGroup := assign(int32(u), n, groups, spec.Hashed)
			rootSlice := assign(int32(u), n, c, spec.Hashed)
			perNode[destGroup*c+rootSlice] += float64(senders)
		}
	}
	vol.PerNodeMax = maxOf(perNode)
	return vol, nil
}

func score2D(g *graph.Graph, spec Spec) (Volume, error) {
	n := g.N()
	q := spec.grid()
	// Broadcast: dedup (source vertex, destination row block) — the row
	// travels from its diagonal owner (j,j) down column j to (i,j).
	seenMirror := newDestSet(n, q)
	// Reduce: dedup (destination vertex, source column block) — partials
	// at (i,j) reduce across row i to the diagonal (i,i).
	seenReduce := newDestSet(n, q)
	perNode := make([]float64, spec.Nodes)
	var vol Volume
	for u := int32(0); u < int32(n); u++ {
		i := assign(u, n, q, spec.Hashed)
		for _, w := range g.Neighbors(u) {
			j := assign(w, n, q, spec.Hashed)
			if seenMirror.add(w, i) {
				if i == j {
					vol.Local++
				} else {
					vol.Mirror++
					perNode[i*q+j]++
				}
			}
			if seenReduce.add(u, j) && j != i {
				vol.Reduce++
				perNode[i*q+i]++
			}
		}
	}
	vol.PerNodeMax = maxOf(perNode)
	return vol, nil
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
