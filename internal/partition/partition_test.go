package partition

import (
	"math/rand"
	"testing"

	"moment/internal/graph"
)

// bruteScore recomputes the communication volume of spec over g straight
// from the package-comment definitions with per-edge scans and hash-set
// dedup — deliberately sharing no code with Score.
func bruteScore(t *testing.T, g *graph.Graph, spec Spec) Volume {
	t.Helper()
	n := g.N()
	var vol Volume
	type pair struct {
		v int32
		k int
	}
	perNode := map[int]float64{}
	switch spec.Layout {
	case Layout1D:
		seen := map[pair]bool{}
		for u := int32(0); u < int32(n); u++ {
			dest := assign(u, n, spec.Nodes, spec.Hashed)
			for _, w := range g.Neighbors(u) {
				if seen[pair{w, dest}] {
					continue
				}
				seen[pair{w, dest}] = true
				if assign(w, n, spec.Nodes, spec.Hashed) == dest {
					vol.Local++
				} else {
					vol.Mirror++
					perNode[dest]++
				}
			}
		}
	case Layout15D:
		c := spec.replWidth()
		groups := spec.Nodes / c
		mirror := map[pair]bool{}
		activeSlices := make([]map[int]bool, n)
		for u := int32(0); u < int32(n); u++ {
			destGroup := assign(u, n, groups, spec.Hashed)
			for _, w := range g.Neighbors(u) {
				slice := assign(w, n, c, spec.Hashed)
				if activeSlices[u] == nil {
					activeSlices[u] = map[int]bool{}
				}
				activeSlices[u][slice] = true
				if mirror[pair{w, destGroup}] {
					continue
				}
				mirror[pair{w, destGroup}] = true
				if assign(w, n, groups, spec.Hashed) == destGroup {
					vol.Local++
				} else {
					vol.Mirror++
					perNode[destGroup*c+slice]++
				}
			}
		}
		for u := 0; u < n; u++ {
			if len(activeSlices[u]) == 0 {
				continue
			}
			destGroup := assign(int32(u), n, groups, spec.Hashed)
			rootSlice := assign(int32(u), n, c, spec.Hashed)
			senders := len(activeSlices[u])
			if activeSlices[u][rootSlice] {
				senders--
			}
			if senders > 0 {
				vol.Reduce += float64(senders)
				perNode[destGroup*c+rootSlice] += float64(senders)
			}
		}
	case Layout2D:
		q := spec.grid()
		mirror := map[pair]bool{}
		reduce := map[pair]bool{}
		for u := int32(0); u < int32(n); u++ {
			i := assign(u, n, q, spec.Hashed)
			for _, w := range g.Neighbors(u) {
				j := assign(w, n, q, spec.Hashed)
				if !mirror[pair{w, i}] {
					mirror[pair{w, i}] = true
					if i == j {
						vol.Local++
					} else {
						vol.Mirror++
						perNode[i*q+j]++
					}
				}
				if !reduce[pair{u, j}] && j != i {
					reduce[pair{u, j}] = true
					vol.Reduce++
					perNode[i*q+i]++
				}
			}
		}
	}
	for _, v := range perNode {
		if v > vol.PerNodeMax {
			vol.PerNodeMax = v
		}
	}
	return vol
}

func eqVol(a, b Volume) bool {
	return a.Mirror == b.Mirror && a.Reduce == b.Reduce &&
		a.Local == b.Local && a.PerNodeMax == b.PerNodeMax
}

func randomGraph(t *testing.T, n, edges int, seed int64) *graph.Graph {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	es := make([][2]int32, edges)
	for i := range es {
		es[i] = [2]int32{int32(r.Intn(n)), int32(r.Intn(n))}
	}
	g, err := graph.FromEdges(n, es)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

func allSpecs(nodes int) []Spec {
	specs := []Spec{{Layout: Layout1D, Nodes: nodes}}
	for c := 1; c <= nodes; c++ {
		if nodes%c == 0 {
			specs = append(specs, Spec{Layout: Layout15D, Nodes: nodes, Repl: c})
		}
	}
	if q := (Spec{Nodes: nodes}).grid(); q*q == nodes {
		specs = append(specs, Spec{Layout: Layout2D, Nodes: nodes})
	}
	base := specs
	for _, s := range base {
		s.Hashed = true
		specs = append(specs, s)
	}
	return specs
}

// TestScoreMatchesBruteForce is the acceptance property: every CAGNET
// layout's scored communication volume equals an independent brute-force
// per-edge count, across a grid of random graphs, node counts, replication
// widths, and both assignment modes.
func TestScoreMatchesBruteForce(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 40} {
		for _, nodes := range []int{1, 2, 3, 4, 6, 9, 16} {
			for seed := int64(0); seed < 3; seed++ {
				g := randomGraph(t, n, 4*n, seed)
				for _, spec := range allSpecs(nodes) {
					got, err := Score(g, spec)
					if err != nil {
						t.Fatalf("Score(n=%d, %v): %v", n, spec, err)
					}
					want := bruteScore(t, g, spec)
					if !eqVol(got, want) {
						t.Errorf("n=%d seed=%d spec=%v: Score=%+v brute=%+v", n, seed, spec, got, want)
					}
				}
			}
		}
	}
}

// TestScoreWideCluster pins the map fallback (destination space > 64) to
// the brute force too.
func TestScoreWideCluster(t *testing.T) {
	g := randomGraph(t, 300, 900, 11)
	for _, spec := range []Spec{
		{Layout: Layout1D, Nodes: 100},
		{Layout: Layout15D, Nodes: 100, Repl: 1}, // 100 groups > 64
		{Layout: Layout1D, Nodes: 100, Hashed: true},
	} {
		got, err := Score(g, spec)
		if err != nil {
			t.Fatalf("Score: %v", err)
		}
		if want := bruteScore(t, g, spec); !eqVol(got, want) {
			t.Errorf("spec=%v: Score=%+v brute=%+v", spec, got, want)
		}
	}
}

// TestLayoutInvariants checks structural identities: a single node moves
// nothing, 1.5D at c=1 degenerates to 1D, and 2D per-vertex traffic stays
// within the 2(q-1) CAGNET cap.
func TestLayoutInvariants(t *testing.T) {
	g := randomGraph(t, 64, 256, 3)
	for _, spec := range allSpecs(1) {
		v, err := Score(g, spec)
		if err != nil {
			t.Fatalf("Score: %v", err)
		}
		if v.Mirror != 0 || v.Reduce != 0 || v.PerNodeMax != 0 {
			t.Errorf("single node %v moved bytes: %+v", spec, v)
		}
	}
	for _, nodes := range []int{2, 4, 8} {
		d1, err := Score(g, Spec{Layout: Layout1D, Nodes: nodes})
		if err != nil {
			t.Fatal(err)
		}
		d15, err := Score(g, Spec{Layout: Layout15D, Nodes: nodes, Repl: 1})
		if err != nil {
			t.Fatal(err)
		}
		if !eqVol(d1, d15) {
			t.Errorf("%d nodes: 1.5d(c=1)=%+v != 1d=%+v", nodes, d15, d1)
		}
	}
	// 2D cap: per-vertex rows <= 2(q-1); totals are bounded accordingly.
	q := 4
	v2, err := Score(g, Spec{Layout: Layout2D, Nodes: q * q})
	if err != nil {
		t.Fatal(err)
	}
	if cap := float64(g.N()) * 2 * float64(q-1); v2.Rows() > cap {
		t.Errorf("2d rows %.0f exceed the 2(q-1) cap %.0f", v2.Rows(), cap)
	}
	if rf := v2.RemoteFrac(); rf < 0 || rf > 1 {
		t.Errorf("RemoteFrac out of range: %v", rf)
	}
	// More 1.5D replication never increases mirror volume (bigger groups
	// own more of each node's neighborhood).
	prev := -1.0
	for _, c := range []int{1, 2, 4, 8} {
		v, err := Score(g, Spec{Layout: Layout15D, Nodes: 8, Repl: c})
		if err != nil && 8%c == 0 {
			t.Fatal(err)
		}
		if err != nil {
			continue
		}
		if prev >= 0 && v.Mirror > prev {
			t.Errorf("1.5d c=%d mirror %.0f grew past %.0f", c, v.Mirror, prev)
		}
		prev = v.Mirror
	}
}

func TestSpecParseRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		in    string
		nodes int
		want  Spec
	}{
		{"1d", 4, Spec{Layout: Layout1D, Nodes: 4}},
		{"1.5d:2", 4, Spec{Layout: Layout15D, Nodes: 4, Repl: 2}},
		{"1.5d", 4, Spec{Layout: Layout15D, Nodes: 4, Repl: 1}},
		{"2d", 9, Spec{Layout: Layout2D, Nodes: 9}},
		{"1d/hash", 3, Spec{Layout: Layout1D, Nodes: 3, Hashed: true}},
		{"2D/HASH", 4, Spec{Layout: Layout2D, Nodes: 4, Hashed: true}},
	} {
		got, err := ParseSpec(tc.in, tc.nodes)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		back, err := ParseSpec(got.String(), tc.nodes)
		if err != nil || back != got {
			t.Errorf("round trip %q -> %q -> %+v (%v)", tc.in, got.String(), back, err)
		}
	}
	for _, bad := range []struct {
		in    string
		nodes int
	}{
		{"3d", 4}, {"1.5d:3", 4}, {"2d", 6}, {"1d", 0}, {"1.5d:x", 4}, {"1dextra", 4},
	} {
		if _, err := ParseSpec(bad.in, bad.nodes); err == nil {
			t.Errorf("ParseSpec(%q, %d) accepted", bad.in, bad.nodes)
		}
	}
}

func TestOwner(t *testing.T) {
	n := 16
	// 1D range blocks: owners are nondecreasing and span all nodes.
	s := Spec{Layout: Layout1D, Nodes: 4}
	last := 0
	seen := map[int]bool{}
	for v := int32(0); v < int32(n); v++ {
		o := s.Owner(v, n)
		if o < last || o >= 4 {
			t.Fatalf("1d owner(%d)=%d after %d", v, o, last)
		}
		last = o
		seen[o] = true
	}
	if len(seen) != 4 {
		t.Errorf("1d owners covered %d of 4 nodes", len(seen))
	}
	// 1.5D owner is the group's first replica; 2D owner is diagonal.
	if o := (Spec{Layout: Layout15D, Nodes: 4, Repl: 2}).Owner(15, n); o != 2 {
		t.Errorf("1.5d owner = %d, want 2", o)
	}
	if o := (Spec{Layout: Layout2D, Nodes: 4}).Owner(15, n); o != 3 {
		t.Errorf("2d owner = %d, want 3 (diagonal of block 1)", o)
	}
}
