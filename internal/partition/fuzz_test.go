package partition

import (
	"testing"

	"moment/internal/graph"
)

// FuzzPartitionVolume throws arbitrary small graphs and specs at Score and
// cross-checks every layout against the brute-force per-edge count, plus
// the range invariants that hold for any input. The committed corpus under
// testdata/fuzz seeds the CI smoke run.
func FuzzPartitionVolume(f *testing.F) {
	f.Add([]byte{4, 0, 1, 2, 3, 0, 1, 1, 2})
	f.Add([]byte{9, 3, 0, 8, 8, 0, 1, 2, 3, 4, 5, 6, 7, 8, 7})
	f.Add([]byte{16, 7, 0, 15, 3, 9, 2, 11, 5, 1, 14, 6, 10, 4, 12, 8, 13, 7, 0, 15})
	f.Add([]byte{2, 1, 0, 1, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		n := int(data[0])%16 + 1
		pick := int(data[1])
		edges := make([][2]int32, 0, (len(data)-2)/2)
		for i := 2; i+1 < len(data); i += 2 {
			edges = append(edges, [2]int32{int32(int(data[i]) % n), int32(int(data[i+1]) % n)})
		}
		g, err := graph.FromEdges(n, edges)
		if err != nil {
			t.Fatalf("FromEdges: %v", err)
		}
		nodes := []int{1, 2, 3, 4, 6, 9, 16}[pick%7]
		for _, spec := range allSpecs(nodes) {
			got, err := Score(g, spec)
			if err != nil {
				t.Fatalf("Score(%v): %v", spec, err)
			}
			want := bruteScore(t, g, spec)
			if !eqVol(got, want) {
				t.Fatalf("spec=%v: Score=%+v brute=%+v", spec, got, want)
			}
			if got.Mirror < 0 || got.Reduce < 0 || got.Local < 0 {
				t.Fatalf("spec=%v: negative volume %+v", spec, got)
			}
			if rf := got.RemoteFrac(); rf < 0 || rf > 1 {
				t.Fatalf("spec=%v: RemoteFrac %v out of [0,1]", spec, rf)
			}
			if got.PerNodeMax > got.Mirror+got.Reduce {
				t.Fatalf("spec=%v: PerNodeMax %v exceeds total rows", spec, got.PerNodeMax)
			}
			if spec.Nodes == 1 && got.Rows() != 0 {
				t.Fatalf("spec=%v: single node moved %v rows", spec, got.Rows())
			}
		}
	})
}
