package placement

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"moment/internal/scorecache"
	"moment/internal/topology"
)

// waitGoroutines polls until the goroutine count settles back to at most
// want, failing the test if it never does (a leaked pipeline stage).
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= want {
			return
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutines did not settle: %d running, want <= %d", runtime.NumGoroutine(), want)
}

func TestSearchCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Search(topology.MachineB(), demand(4), Options{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSearchCancelMidStream cancels the context from inside a candidate
// evaluation: the streaming pipeline must abort promptly, return the
// context's error, leak no stage goroutines, and leave nothing poisoned in
// a shared score cache (a later uncanceled search over the same cache must
// match a cache-free reference exactly).
func TestSearchCancelMidStream(t *testing.T) {
	for _, mode := range []string{"stream", "serial"} {
		t.Run(mode, func(t *testing.T) {
			m := topology.MachineB()
			d := demand(4)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var evals atomic.Int64
			evalHook = func() {
				if evals.Add(1) == 2 {
					cancel()
				}
			}
			defer func() { evalHook = nil }()

			cache := scorecache.NewScores(256)
			before := runtime.NumGoroutine()
			_, err := Search(m, d, Options{
				Ctx:    ctx,
				Cache:  cache,
				Serial: mode == "serial",
			})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			waitGoroutines(t, before)

			// The cache must hold only completed evaluations, never a
			// canceled solve recorded as infeasible: a warm re-search must
			// agree with a cache-free reference.
			evalHook = nil
			warm, err := Search(m, d, Options{Cache: cache})
			if err != nil {
				t.Fatal(err)
			}
			ref, err := Search(m, d, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if warm.Time != ref.Time {
				t.Errorf("post-cancel cached search time %v, reference %v", warm.Time, ref.Time)
			}
			if warm.Evaluated != ref.Evaluated {
				t.Errorf("post-cancel cached search evaluated %d, reference %d", warm.Evaluated, ref.Evaluated)
			}
		})
	}
}

// TestSearchCancelReleasesWorkers makes sure cancellation mid-search frees
// the scoring pool quickly enough for a follow-up search to run normally —
// the property the serving daemon's worker accounting relies on.
func TestSearchCancelReleasesWorkers(t *testing.T) {
	m := topology.MachineB()
	d := demand(4)
	ctx, cancel := context.WithCancel(context.Background())
	evalHook = func() { cancel() }
	if _, err := Search(m, d, Options{Ctx: ctx, Parallelism: 4}); !errors.Is(err, context.Canceled) {
		evalHook = nil
		t.Fatalf("first search: err = %v, want context.Canceled", err)
	}
	evalHook = nil
	res, err := Search(m, d, Options{Parallelism: 4})
	if err != nil {
		t.Fatalf("follow-up search after cancel: %v", err)
	}
	if res.Best == nil {
		t.Fatal("follow-up search returned no placement")
	}
}
