package placement

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"moment/internal/topology"
)

// decodePlacement turns fuzz bytes into a slot-feasible placement on m:
// each device is steered by one byte to an attach point, falling forward
// cyclically when the chosen point's slots are full. Every byte string
// decodes to a valid placement, so the fuzzer explores the placement space
// rather than the validator's error paths.
func decodePlacement(m *topology.Machine, data []byte) *topology.Placement {
	gpuFree := make([]int, len(m.Points))
	ssdFree := make([]int, len(m.Points))
	for i, pt := range m.Points {
		gpuFree[i] = pt.GPUSlots
		ssdFree[i] = pt.Bays
	}
	at := func(free []int, b byte) int {
		i := int(b) % len(m.Points)
		for free[i] == 0 {
			i = (i + 1) % len(m.Points)
		}
		free[i]--
		return i
	}
	byteAt := func(k int) byte {
		if len(data) == 0 {
			return 0
		}
		return data[k%len(data)]
	}
	p := &topology.Placement{Name: "fuzz"}
	for g := 0; g < m.NumGPUs; g++ {
		p.GPUAt = append(p.GPUAt, m.Points[at(gpuFree, byteAt(g))].ID)
	}
	for s := 0; s < m.NumSSDs; s++ {
		p.SSDAt = append(p.SSDAt, m.Points[at(ssdFree, byteAt(m.NumGPUs+s))].ID)
	}
	return p
}

// countSignature is the physical content of a placement independent of
// subtree naming: the sorted multiset of per-point (kind, uplink, slots,
// placed-GPU, placed-SSD) tuples. Two placements the canonical key calls
// equal must agree on it — a canonical key that merged placements with
// different signatures would silently discard a genuinely distinct
// hardware configuration from the search space.
func countSignature(m *topology.Machine, p *topology.Placement) string {
	gpus, ssds := p.Counts()
	var parts []string
	for _, pt := range m.Points {
		parts = append(parts, fmt.Sprintf("%d/%v/%d/%d:g%d,s%d",
			pt.Kind, pt.UplinkBW, pt.Bays, pt.GPUSlots, gpus[pt.ID], ssds[pt.ID]))
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

func FuzzDedupe(f *testing.F) {
	f.Add([]byte{0}, []byte{1})
	f.Add([]byte{2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1}, []byte{3, 2, 1, 0, 3, 2, 1, 0, 3, 2, 1, 0})
	f.Add([]byte("\x00\x01\x02\x03\x04\x05\x06\x07"), []byte("\x07\x06\x05\x04\x03\x02\x01\x00"))
	f.Add([]byte{255, 254, 253}, []byte{128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, a, b []byte) {
		m := topology.MachineA()
		pa := decodePlacement(m, a)
		pb := decodePlacement(m, b)
		keyA, err := CanonicalKey(m, pa)
		if err != nil {
			t.Fatalf("decoded placement invalid: %v", err)
		}
		keyB, err := CanonicalKey(m, pb)
		if err != nil {
			t.Fatalf("decoded placement invalid: %v", err)
		}
		// Canonical equality must never merge physically different
		// placements. (Symmetric subtrees may give different signatures the
		// same key only on machines with identical subtrees, which is
		// exactly what the sorted signature tolerates: MachineA's sw0/sw1
		// are identical, so sorting absorbs the swap.)
		if keyA == keyB && countSignature(m, pa) != countSignature(m, pb) {
			t.Fatalf("key %q merges placements with different count vectors:\n%v\n%v", keyA, pa, pb)
		}
		out, err := Dedupe(m, []*topology.Placement{pa, pb, pa})
		if err != nil {
			t.Fatal(err)
		}
		want := 1
		if keyA != keyB {
			want = 2
		}
		if len(out) != want {
			t.Fatalf("dedupe kept %d of [a b a], want %d (keys equal: %v)", len(out), want, keyA == keyB)
		}
		if out[0] != pa {
			t.Fatal("dedupe must keep the first representative")
		}
		// Idempotence: a second pass changes nothing.
		again, err := Dedupe(m, out)
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != len(out) {
			t.Fatalf("dedupe not idempotent: %d -> %d", len(out), len(again))
		}
		for i := range again {
			if again[i] != out[i] {
				t.Fatal("dedupe reordered an already-deduped list")
			}
		}
	})
}
