package placement

import (
	"fmt"
	"runtime"
	"testing"

	"moment/internal/flownet"
	"moment/internal/obs"
	"moment/internal/scorecache"
	"moment/internal/topology"
)

// scaledDemand is demand(n) with every budget multiplied by f, a second
// demand point for the differential grid.
func scaledDemand(n int, f float64) *flownet.Demand {
	d := demand(n)
	for i := range d.PerGPU {
		d.PerGPU[i] *= f
		d.HBMPeer[i] *= f
	}
	for k := range d.DRAM {
		d.DRAM[k] *= f
	}
	d.SSDTotal *= f
	return d
}

func degradedB() *topology.Machine {
	m := topology.MachineB()
	m.QPIBW = topology.QPIRate / 4
	return m
}

// TestStreamingMatchesSerial is the differential satellite: across seeded
// machines × demands and several GOMAXPROCS values, the streaming pipeline
// must return the identical best score, identical enumeration and
// evaluation counts, and identical enumerated/pruned observability counters
// as the serial reference pipeline. Run under -race this also exercises the
// pipeline's synchronization.
func TestStreamingMatchesSerial(t *testing.T) {
	machines := map[string]func() *topology.Machine{
		"A":          topology.MachineA,
		"B":          topology.MachineB,
		"B-degraded": degradedB,
		"A-3gpu":     func() *topology.Machine { return topology.MachineA().WithGPUs(3) },
	}
	demands := map[string]func(*topology.Machine) *flownet.Demand{
		"base":   func(m *topology.Machine) *flownet.Demand { return demand(m.NumGPUs) },
		"scaled": func(m *topology.Machine) *flownet.Demand { return scaledDemand(m.NumGPUs, 1.7) },
	}
	counters := []string{
		"placement_candidates_enumerated_total",
		"placement_candidates_pruned_total",
		"placement_candidates_scored_total",
		"placement_candidates_infeasible_total",
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for mName, mk := range machines {
		for dName, dk := range demands {
			m := mk()
			d := dk(m)
			serialObs := obs.New()
			serial, err := Search(m, d, Options{Serial: true, KeepScores: true, Observer: serialObs})
			if err != nil {
				t.Fatalf("%s/%s serial: %v", mName, dName, err)
			}
			for _, procs := range []int{2, 4, 8} {
				runtime.GOMAXPROCS(procs)
				name := fmt.Sprintf("%s/%s/procs=%d", mName, dName, procs)
				streamObs := obs.New()
				stream, err := Search(m, d, Options{KeepScores: true, Observer: streamObs})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if stream.Time != serial.Time {
					t.Errorf("%s: best %v streaming vs %v serial", name, stream.Time, serial.Time)
				}
				if stream.Enumerated != serial.Enumerated || stream.Evaluated != serial.Evaluated {
					t.Errorf("%s: counts %d/%d streaming vs %d/%d serial", name,
						stream.Enumerated, stream.Evaluated, serial.Enumerated, serial.Evaluated)
				}
				if stream.Best.Name != serial.Best.Name {
					t.Errorf("%s: winner %q vs %q", name, stream.Best.Name, serial.Best.Name)
				}
				if len(stream.Scores) != len(serial.Scores) {
					t.Errorf("%s: %d scores vs %d", name, len(stream.Scores), len(serial.Scores))
				} else {
					for i := range stream.Scores {
						if stream.Scores[i].Time != serial.Scores[i].Time {
							t.Errorf("%s: score[%d] %v vs %v", name, i,
								stream.Scores[i].Time, serial.Scores[i].Time)
							break
						}
					}
				}
				for _, c := range counters {
					if sv, cv := streamObs.Counter(c).Value(), serialObs.Counter(c).Value(); sv != cv {
						t.Errorf("%s: counter %s = %v streaming vs %v serial", name, c, sv, cv)
					}
				}
			}
		}
	}
}

// TestStreamingMatchesSerialSkipDedupe covers the ablation path where the
// dedupe stage forwards everything.
func TestStreamingMatchesSerialSkipDedupe(t *testing.T) {
	m := topology.MachineA()
	d := demand(4)
	serial, err := Search(m, d, Options{Serial: true, SkipDedupe: true})
	if err != nil {
		t.Fatal(err)
	}
	stream, err := Search(m, d, Options{SkipDedupe: true})
	if err != nil {
		t.Fatal(err)
	}
	if stream.Time != serial.Time || stream.Evaluated != serial.Evaluated {
		t.Errorf("skip-dedupe: %v/%d streaming vs %v/%d serial",
			stream.Time, stream.Evaluated, serial.Time, serial.Evaluated)
	}
	if stream.Evaluated != stream.Enumerated {
		t.Errorf("skip-dedupe evaluated %d != enumerated %d", stream.Evaluated, stream.Enumerated)
	}
}

// TestSearchCacheShortCircuits reruns an identical search through a shared
// cache: the second run must hit on every evaluation and agree exactly.
func TestSearchCacheShortCircuits(t *testing.T) {
	m := topology.MachineB()
	d := demand(4)
	cache := scorecache.NewScores(4096)
	cold, err := Search(m, d, Options{Cache: cache, KeepScores: true})
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHits != 0 {
		t.Fatalf("cold search reported %d hits", cold.CacheHits)
	}
	warm, err := Search(m, d, Options{Cache: cache, KeepScores: true})
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != warm.Evaluated {
		t.Errorf("warm search hit %d of %d evaluations", warm.CacheHits, warm.Evaluated)
	}
	if warm.Time != cold.Time || warm.Best.Name != cold.Best.Name {
		t.Errorf("cache changed result: %v/%q vs %v/%q",
			warm.Time, warm.Best.Name, cold.Time, cold.Best.Name)
	}
	for i := range warm.Scores {
		if warm.Scores[i].Time != cold.Scores[i].Time {
			t.Errorf("score[%d] %v warm vs %v cold", i, warm.Scores[i].Time, cold.Scores[i].Time)
			break
		}
	}
	// Serial mode shares the same keys.
	serialWarm, err := Search(m, d, Options{Cache: cache, Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	if serialWarm.CacheHits != serialWarm.Evaluated {
		t.Errorf("serial warm search hit %d of %d", serialWarm.CacheHits, serialWarm.Evaluated)
	}
}

// TestSearchCacheKeySeparation shares one cache across a healthy and a
// QPI-degraded machine (same attach-point structure, different fabric
// rates) and across two demands: nothing may cross-hit, and every result
// must match its cache-free baseline.
func TestSearchCacheKeySeparation(t *testing.T) {
	cache := scorecache.NewScores(4096)
	type run struct {
		m *topology.Machine
		d *flownet.Demand
	}
	runs := []run{
		{topology.MachineB(), demand(4)},
		{degradedB(), demand(4)},                  // same keys structurally, different QPI rate
		{topology.MachineB(), scaledDemand(4, 2)}, // same machine, different demand
	}
	for i, r := range runs {
		cached, err := Search(r.m, r.d, Options{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		if cached.CacheHits != 0 {
			t.Errorf("run %d: %d cross-hits from a different machine/demand", i, cached.CacheHits)
		}
		plain, err := Search(r.m, r.d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if cached.Time != plain.Time {
			t.Errorf("run %d: cached %v vs plain %v", i, cached.Time, plain.Time)
		}
	}
}

// TestFaultsKeyIsolatesSharedCache shares one cache between a healthy
// search (empty FaultsKey) and a fault-aware one over the *same* machine
// and demand. The fault schedule degrades the scoring picture outside the
// machine/demand fingerprint, so without the FaultsKey component the
// second search would be served the first one's scores wholesale.
func TestFaultsKeyIsolatesSharedCache(t *testing.T) {
	m := topology.MachineB()
	d := demand(4)
	cache := scorecache.NewScores(4096)
	healthy, err := Search(m, d, Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if healthy.CacheHits != 0 {
		t.Fatalf("cold healthy search reported %d hits", healthy.CacheHits)
	}
	faulted, err := Search(m, d, Options{Cache: cache, FaultsKey: "kill:ssd0@5"})
	if err != nil {
		t.Fatal(err)
	}
	if faulted.CacheHits != 0 {
		t.Errorf("fault-aware search took %d hits from the healthy run", faulted.CacheHits)
	}
	// Same schedule revisiting is still fully memoized...
	again, err := Search(m, d, Options{Cache: cache, FaultsKey: "kill:ssd0@5"})
	if err != nil {
		t.Fatal(err)
	}
	if again.CacheHits != again.Evaluated {
		t.Errorf("same-schedule rerun hit %d of %d evaluations", again.CacheHits, again.Evaluated)
	}
	// ...and a different schedule is isolated again.
	other, err := Search(m, d, Options{Cache: cache, FaultsKey: "kill:ssd0@90"})
	if err != nil {
		t.Fatal(err)
	}
	if other.CacheHits != 0 {
		t.Errorf("schedule B search took %d hits from schedule A", other.CacheHits)
	}
	// Isolation must not change what gets planned.
	plain, err := Search(m, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range []*Result{healthy, faulted, again, other} {
		if r.Time != plain.Time || r.Best.Name != plain.Best.Name {
			t.Errorf("run %d: %v/%q vs cache-free %v/%q",
				i, r.Time, r.Best.Name, plain.Time, plain.Best.Name)
		}
	}
	// LocalSearch shares the key space, FaultsKey included: warmed by the
	// same-schedule exhaustive search it hits, across schedules it must not.
	lsSame, err := LocalSearch(m, d, LocalSearchOptions{Seed: 7, Cache: cache, FaultsKey: "kill:ssd0@5"})
	if err != nil {
		t.Fatal(err)
	}
	if lsSame.CacheHits == 0 {
		t.Error("same-schedule local search got no hits from a Search-warmed cache")
	}
	// A local search's revisit-heavy walk hits its own entries within one
	// run, so cross-schedule isolation shows as "no more hits than the same
	// walk against a fresh cache".
	lsFresh, err := LocalSearch(m, d, LocalSearchOptions{Seed: 7, Cache: scorecache.NewScores(4096), FaultsKey: "throttle:ssd1@2"})
	if err != nil {
		t.Fatal(err)
	}
	lsOther, err := LocalSearch(m, d, LocalSearchOptions{Seed: 7, Cache: cache, FaultsKey: "throttle:ssd1@2"})
	if err != nil {
		t.Fatal(err)
	}
	if lsOther.CacheHits != lsFresh.CacheHits {
		t.Errorf("cross-schedule local search took %d hits, fresh-cache walk %d",
			lsOther.CacheHits, lsFresh.CacheHits)
	}
}

// TestProbePoolMatchesInline is the pooled-vs-inline differential: with the
// ProbePool on (default) and off (NoProbePool, the pre-pool reference), the
// search must agree on the best score, the winner, every kept score, the
// placement pipeline counters, and the maxflow solver-work counters that
// MeterProbe mirrors from SolveTol. Run under -race this also exercises the
// pool's arena recycling and merge synchronization.
func TestProbePoolMatchesInline(t *testing.T) {
	machines := map[string]func() *topology.Machine{
		"A":          topology.MachineA,
		"B-degraded": degradedB,
	}
	counters := []string{
		"placement_candidates_enumerated_total",
		"placement_candidates_pruned_total",
		"placement_candidates_scored_total",
		"placement_candidates_infeasible_total",
		"maxflow_solves_total",
		"maxflow_augmenting_paths_total",
		"maxflow_relabels_total",
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for mName, mk := range machines {
		m := mk()
		d := demand(m.NumGPUs)
		inlineObs := obs.New()
		inline, err := Search(m, d, Options{NoProbePool: true, KeepScores: true, Observer: inlineObs})
		if err != nil {
			t.Fatalf("%s inline: %v", mName, err)
		}
		if v := inlineObs.Counter("probe_pool_probes_total").Value(); v != 0 {
			t.Errorf("%s: inline path submitted %v pool probes", mName, v)
		}
		for _, procs := range []int{2, 4, 8} {
			runtime.GOMAXPROCS(procs)
			name := fmt.Sprintf("%s/procs=%d", mName, procs)
			pooledObs := obs.New()
			pooled, err := Search(m, d, Options{KeepScores: true, Observer: pooledObs})
			if err != nil {
				t.Fatalf("%s pooled: %v", name, err)
			}
			if pooled.Time != inline.Time || pooled.Best.Name != inline.Best.Name {
				t.Errorf("%s: pooled %v/%q vs inline %v/%q", name,
					pooled.Time, pooled.Best.Name, inline.Time, inline.Best.Name)
			}
			if pooled.Enumerated != inline.Enumerated || pooled.Evaluated != inline.Evaluated {
				t.Errorf("%s: counts %d/%d pooled vs %d/%d inline", name,
					pooled.Enumerated, pooled.Evaluated, inline.Enumerated, inline.Evaluated)
			}
			if len(pooled.Scores) != len(inline.Scores) {
				t.Errorf("%s: %d scores vs %d", name, len(pooled.Scores), len(inline.Scores))
			} else {
				for i := range pooled.Scores {
					if pooled.Scores[i].Time != inline.Scores[i].Time {
						t.Errorf("%s: score[%d] %v pooled vs %v inline", name, i,
							pooled.Scores[i].Time, inline.Scores[i].Time)
						break
					}
				}
			}
			for _, c := range counters {
				if pv, iv := pooledObs.Counter(c).Value(), inlineObs.Counter(c).Value(); pv != iv {
					t.Errorf("%s: counter %s = %v pooled vs %v inline", name, c, pv, iv)
				}
			}
			submitted := pooledObs.Counter("probe_pool_probes_total").Value()
			solved := pooledObs.Counter("probe_pool_solved_total").Value()
			if submitted != float64(pooled.Evaluated) {
				t.Errorf("%s: %v pool probes for %d evaluations", name, submitted, pooled.Evaluated)
			}
			if solved != submitted {
				t.Errorf("%s: solved %v of %v submitted probes", name, solved, submitted)
			}
			if v := pooledObs.Counter("probe_pool_canceled_total").Value(); v != 0 {
				t.Errorf("%s: %v probes canceled in an uncanceled search", name, v)
			}
		}
	}
}

// TestSearchCacheInfeasibleMemoized ensures infeasible candidates are
// remembered too — a warm search repeats the infeasibility verdict without
// re-solving, and a fully infeasible search still errors.
func TestSearchCacheInfeasibleMemoized(t *testing.T) {
	m := topology.MachineA()
	d := &flownet.Demand{PerGPU: []float64{gb, gb, gb, gb}, SSDTotal: gb}
	cache := scorecache.NewScores(1024)
	if _, err := Search(m, d, Options{Cache: cache}); err == nil {
		t.Fatal("expected infeasible search to fail")
	}
	if cache.Len() == 0 {
		t.Fatal("infeasible scores not cached")
	}
	if _, err := Search(m, d, Options{Cache: cache}); err == nil {
		t.Fatal("warm infeasible search must still fail")
	}
	h, _, _ := cache.Stats()
	if h == 0 {
		t.Error("warm infeasible search did not use the cache")
	}
}

// TestLocalSearchCache reruns a seeded local search through a shared cache;
// the revisit-heavy walk must hit and agree with the cache-free run.
func TestLocalSearchCache(t *testing.T) {
	m := topology.MachineB()
	d := demand(4)
	opt := LocalSearchOptions{Seed: 11}
	plain, err := LocalSearch(m, d, opt)
	if err != nil {
		t.Fatal(err)
	}
	cache := scorecache.NewScores(8192)
	opt.Cache = cache
	first, err := LocalSearch(m, d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if first.Time != plain.Time {
		t.Errorf("cache changed local search: %v vs %v", first.Time, plain.Time)
	}
	second, err := LocalSearch(m, d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if second.CacheHits != second.Evaluated {
		t.Errorf("second run hit %d of %d evaluations", second.CacheHits, second.Evaluated)
	}
	if second.Time != plain.Time {
		t.Errorf("warm local search %v vs plain %v", second.Time, plain.Time)
	}
}

// TestSearchAndLocalSearchShareCache verifies the two planners use the same
// key space: a local search warmed by an exhaustive search gets hits.
func TestSearchAndLocalSearchShareCache(t *testing.T) {
	m := topology.MachineA()
	d := demand(4)
	cache := scorecache.NewScores(8192)
	if _, err := Search(m, d, Options{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	ls, err := LocalSearch(m, d, LocalSearchOptions{Seed: 7, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if ls.CacheHits == 0 {
		t.Error("local search got no hits from a Search-warmed cache")
	}
}

// TestCacheKeyExported sanity-checks the exported key constructor against
// the keys Search writes.
func TestCacheKeyExported(t *testing.T) {
	m := topology.MachineA()
	d := demand(4)
	cache := scorecache.NewScores(1024)
	res, err := Search(m, d, Options{Cache: cache, Tolerance: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	key, err := CacheKey(m, res.Best, d, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := cache.Get(key)
	if !ok {
		t.Fatal("winner's CacheKey not present in cache")
	}
	if s.Infeasible {
		t.Fatal("winner cached as infeasible")
	}
	got := s.Seconds
	want := res.Time.Sec()
	if got != want {
		t.Errorf("cached %v, result %v", got, want)
	}
}
