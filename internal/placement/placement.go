// Package placement enumerates feasible hardware placements (which slots
// hold the GPUs and SSDs), prunes symmetry- and rotation-equivalent
// candidates by isomorphic reduction, and searches for the placement whose
// max-flow-predicted epoch I/O time is minimal (paper §3.2, Problem
// Solving).
//
// Devices of the same kind are interchangeable, so a candidate is a count
// vector (GPUs and SSDs per attach point) — PCIe-switch symmetry (devices
// on the same switch are equivalent) is therefore structural. Topological
// symmetry (mirrored subtrees, as in Machine A's two sockets) and
// rotation-invariant re-orderings are removed by canonical tree encoding:
// two candidates whose rooted-forest encodings coincide after sorting
// equivalent subtrees are the same physical configuration.
package placement

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"moment/internal/flownet"
	"moment/internal/obs"
	"moment/internal/topology"
	"moment/internal/units"
)

// Enumerate lists every slot-feasible placement of m's device inventory,
// honoring physical slot constraints (x16 dual-width for GPUs, U.2 bays
// for SSDs). The result is not symmetry-reduced; see Dedupe.
func Enumerate(m *topology.Machine) ([]*topology.Placement, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	gpuCaps := make([]int, len(m.Points))
	ssdCaps := make([]int, len(m.Points))
	for i, p := range m.Points {
		gpuCaps[i] = p.GPUSlots
		ssdCaps[i] = p.Bays
	}
	gpuDists := compositions(m.NumGPUs, gpuCaps)
	ssdDists := compositions(m.NumSSDs, ssdCaps)
	var out []*topology.Placement
	for _, gd := range gpuDists {
		for _, sd := range ssdDists {
			p := &topology.Placement{}
			for i, pt := range m.Points {
				for k := 0; k < gd[i]; k++ {
					p.GPUAt = append(p.GPUAt, pt.ID)
				}
				for k := 0; k < sd[i]; k++ {
					p.SSDAt = append(p.SSDAt, pt.ID)
				}
			}
			p.Name = fmt.Sprintf("cand%d", len(out))
			out = append(out, p)
		}
	}
	return out, nil
}

// compositions returns all ways to write total as a sum over len(caps)
// non-negative parts with parts[i] <= caps[i].
func compositions(total int, caps []int) [][]int {
	var out [][]int
	cur := make([]int, len(caps))
	var rec func(i, left int)
	rec = func(i, left int) {
		if i == len(caps) {
			if left == 0 {
				out = append(out, append([]int(nil), cur...))
			}
			return
		}
		maxHere := caps[i]
		if left < maxHere {
			maxHere = left
		}
		for v := 0; v <= maxHere; v++ {
			cur[i] = v
			rec(i+1, left-v)
		}
		cur[i] = 0
	}
	rec(0, total)
	return out
}

// CanonicalKey computes an isomorphism-invariant encoding of a placed
// machine. Each attach point is encoded as
// (kind, uplinkGiBps, bays, gpuSlots, placedGPUs, placedSSDs, children...)
// with children sorted by their encodings; the forest of root complexes is
// sorted likewise (root complexes peer symmetrically over QPI). Placements
// that differ only by swapping equivalent subtrees share a key.
func CanonicalKey(m *topology.Machine, p *topology.Placement) (string, error) {
	if err := p.Validate(m); err != nil {
		return "", err
	}
	gpus, ssds := p.Counts()
	children := map[string][]string{}
	for _, pt := range m.Points {
		if pt.Kind == topology.Switch {
			children[pt.Parent] = append(children[pt.Parent], pt.ID)
		}
	}
	var encode func(id string) string
	encode = func(id string) string {
		pt, _ := m.Point(id)
		var kids []string
		for _, c := range children[id] {
			kids = append(kids, encode(c))
		}
		sort.Strings(kids)
		return fmt.Sprintf("(%d,%.3f,%d,%d,g%d,s%d;%s)",
			int(pt.Kind), pt.UplinkBW.GiBpsf(), pt.Bays, pt.GPUSlots,
			gpus[id], ssds[id], strings.Join(kids, ""))
	}
	var roots []string
	for _, rc := range m.RootComplexes() {
		roots = append(roots, encode(rc))
	}
	sort.Strings(roots)
	return strings.Join(roots, "|"), nil
}

// Dedupe removes symmetry-equivalent placements, keeping the first
// representative of each canonical class (the isomorphic graph reduction
// of §3.2).
func Dedupe(m *topology.Machine, ps []*topology.Placement) ([]*topology.Placement, error) {
	seen := make(map[string]bool, len(ps))
	var out []*topology.Placement
	for _, p := range ps {
		key, err := CanonicalKey(m, p)
		if err != nil {
			return nil, err
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, p)
	}
	return out, nil
}

// Options tunes the placement search.
type Options struct {
	// Tolerance is the relative bisection tolerance (default 1e-4).
	Tolerance float64
	// Parallelism bounds concurrent candidate evaluations
	// (default GOMAXPROCS).
	Parallelism int
	// SkipDedupe disables isomorphic reduction (ablation).
	SkipDedupe bool
	// KeepScores records every candidate's predicted time in the result.
	KeepScores bool
	// Observer receives spans and metrics for the search (nil falls back
	// to the process default observer; both nil = no instrumentation).
	Observer *obs.Observer
}

// Scored pairs a candidate with its predicted epoch I/O time.
type Scored struct {
	Placement *topology.Placement
	Time      units.Duration
	Err       error
}

// Result summarizes a search.
type Result struct {
	Best       *topology.Placement
	Time       units.Duration  // predicted epoch I/O completion time
	Throughput units.Bandwidth // total demand / Time
	Enumerated int             // candidates before reduction
	Evaluated  int             // candidates scored after reduction
	Scores     []Scored        // per-candidate results when KeepScores
	Demand     *flownet.Demand // the demand the search optimized for
	Machine    *topology.Machine
}

// Search enumerates placements, reduces symmetry, scores every survivor by
// time-bisection max-flow under demand d, and returns the fastest. Scoring
// runs on a bounded worker pool; candidates whose networks are infeasible
// (disconnected demand) are skipped.
func Search(m *topology.Machine, d *flownet.Demand, opt Options) (*Result, error) {
	if opt.Tolerance <= 0 {
		opt.Tolerance = 1e-4
	}
	if opt.Parallelism <= 0 {
		opt.Parallelism = runtime.GOMAXPROCS(0)
	}
	o := obs.Active(opt.Observer)
	sp := o.Begin("placement.search")
	sp.SetStr("machine", m.Name)
	defer sp.End()

	enumSp := sp.Child("enumerate")
	all, err := Enumerate(m)
	if err != nil {
		enumSp.End()
		return nil, err
	}
	enumSp.SetInt("candidates", len(all))
	enumSp.End()
	o.Counter("placement_candidates_enumerated_total").Add(float64(len(all)))

	cands := all
	if !opt.SkipDedupe {
		pruneSp := sp.Child("prune")
		cands, err = Dedupe(m, all)
		if err != nil {
			pruneSp.End()
			return nil, err
		}
		pruneSp.SetInt("kept", len(cands))
		pruneSp.SetInt("pruned", len(all)-len(cands))
		pruneSp.End()
	}
	o.Counter("placement_candidates_pruned_total").Add(float64(len(all) - len(cands)))
	if len(cands) == 0 {
		return nil, fmt.Errorf("placement: no feasible candidates for machine %s", m.Name)
	}

	// Fixed-size worker pool: exactly min(Parallelism, len(cands)) scoring
	// goroutines pull candidate indices from a channel. (A previous version
	// spawned one goroutine per candidate before acquiring a semaphore,
	// bursting thousands of goroutines on large enumerations.)
	scores := make([]Scored, len(cands))
	workers := opt.Parallelism
	if workers > len(cands) {
		workers = len(cands)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if evalHook != nil {
					evalHook()
				}
				scores[i] = score(m, cands[i], d, opt.Tolerance, o, sp)
			}
		}()
	}
	for i := range cands {
		idx <- i
	}
	close(idx)
	wg.Wait()

	res := &Result{
		Enumerated: len(all),
		Evaluated:  len(cands),
		Demand:     d,
		Machine:    m,
	}
	for _, s := range scores {
		if s.Err != nil {
			continue
		}
		if res.Best == nil || s.Time < res.Time {
			res.Best = s.Placement
			res.Time = s.Time
		}
	}
	if res.Best == nil {
		return nil, fmt.Errorf("placement: every candidate infeasible on machine %s", m.Name)
	}
	if res.Time > 0 {
		res.Throughput = units.Bandwidth(d.TotalDemand() / res.Time.Sec())
	}
	if opt.KeepScores {
		sort.Slice(scores, func(a, b int) bool {
			if (scores[a].Err == nil) != (scores[b].Err == nil) {
				return scores[a].Err == nil
			}
			return scores[a].Time < scores[b].Time
		})
		res.Scores = scores
	}
	best := res.Best.Clone()
	best.Name = fmt.Sprintf("%s(moment)", m.Name)
	res.Best = best
	sp.SetInt("evaluated", res.Evaluated)
	sp.SetFloat("best_seconds", res.Time.Sec())
	if Check != nil {
		if err := Check(m, d, opt, res); err != nil {
			return nil, fmt.Errorf("placement: self-check failed: %w", err)
		}
	}
	return res, nil
}

// Check, when non-nil, audits every Search result before it is returned
// (winner re-scores to the reported time, throughput consistent, placement
// valid). Installed by internal/verify when self-verification is enabled;
// declared here rather than imported so placement does not depend on the
// verification subsystem.
var Check func(m *topology.Machine, d *flownet.Demand, opt Options, res *Result) error

// evalHook, when non-nil, is invoked by each worker at the start of every
// candidate evaluation (test instrumentation for the concurrency bound).
var evalHook func()

func score(m *topology.Machine, cand *topology.Placement, d *flownet.Demand, tol float64,
	o *obs.Observer, parent *obs.Span) Scored {
	sp := parent.Fork("maxflow-score")
	sp.SetStr("candidate", cand.Name)
	defer sp.End()
	n, err := flownet.Build(m, cand, d)
	if err != nil {
		sp.SetStr("error", err.Error())
		o.Counter("placement_candidates_infeasible_total").Inc()
		o.Logf("placement: candidate %s infeasible: %v", cand.Name, err)
		return Scored{Placement: cand, Err: err}
	}
	n.SetObserver(o)
	t, err := n.SolveTol(tol)
	if err != nil {
		sp.SetStr("error", err.Error())
		o.Counter("placement_candidates_infeasible_total").Inc()
		o.Logf("placement: candidate %s unsolvable: %v", cand.Name, err)
		return Scored{Placement: cand, Err: err}
	}
	sp.SetFloat("predicted_seconds", t.Sec())
	o.Counter("placement_candidates_scored_total").Inc()
	return Scored{Placement: cand, Time: t}
}
