// Package placement enumerates feasible hardware placements (which slots
// hold the GPUs and SSDs), prunes symmetry- and rotation-equivalent
// candidates by isomorphic reduction, and searches for the placement whose
// max-flow-predicted epoch I/O time is minimal (paper §3.2, Problem
// Solving).
//
// Devices of the same kind are interchangeable, so a candidate is a count
// vector (GPUs and SSDs per attach point) — PCIe-switch symmetry (devices
// on the same switch are equivalent) is therefore structural. Topological
// symmetry (mirrored subtrees, as in Machine A's two sockets) and
// rotation-invariant re-orderings are removed by canonical tree encoding:
// two candidates whose rooted-forest encodings coincide after sorting
// equivalent subtrees are the same physical configuration.
package placement

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"moment/internal/flownet"
	"moment/internal/maxflow"
	"moment/internal/obs"
	"moment/internal/scorecache"
	"moment/internal/topology"
	"moment/internal/units"
)

// Enumerate lists every slot-feasible placement of m's device inventory,
// honoring physical slot constraints (x16 dual-width for GPUs, U.2 bays
// for SSDs). The result is not symmetry-reduced; see Dedupe.
func Enumerate(m *topology.Machine) ([]*topology.Placement, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	gpuCaps := make([]int, len(m.Points))
	ssdCaps := make([]int, len(m.Points))
	for i, p := range m.Points {
		gpuCaps[i] = p.GPUSlots
		ssdCaps[i] = p.Bays
	}
	gpuDists := compositions(m.NumGPUs, gpuCaps)
	ssdDists := compositions(m.NumSSDs, ssdCaps)
	var out []*topology.Placement
	for _, gd := range gpuDists {
		for _, sd := range ssdDists {
			p := &topology.Placement{}
			for i, pt := range m.Points {
				for k := 0; k < gd[i]; k++ {
					p.GPUAt = append(p.GPUAt, pt.ID)
				}
				for k := 0; k < sd[i]; k++ {
					p.SSDAt = append(p.SSDAt, pt.ID)
				}
			}
			p.Name = fmt.Sprintf("cand%d", len(out))
			out = append(out, p)
		}
	}
	return out, nil
}

// compositions returns all ways to write total as a sum over len(caps)
// non-negative parts with parts[i] <= caps[i].
func compositions(total int, caps []int) [][]int {
	var out [][]int
	cur := make([]int, len(caps))
	var rec func(i, left int)
	rec = func(i, left int) {
		if i == len(caps) {
			if left == 0 {
				out = append(out, append([]int(nil), cur...))
			}
			return
		}
		maxHere := caps[i]
		if left < maxHere {
			maxHere = left
		}
		for v := 0; v <= maxHere; v++ {
			cur[i] = v
			rec(i+1, left-v)
		}
		cur[i] = 0
	}
	rec(0, total)
	return out
}

// CanonicalKey computes an isomorphism-invariant encoding of a placed
// machine. Each attach point is encoded as
// (kind, uplinkGiBps, bays, gpuSlots, placedGPUs, placedSSDs, children...)
// with children sorted by their encodings; the forest of root complexes is
// sorted likewise (root complexes peer symmetrically over QPI). Placements
// that differ only by swapping equivalent subtrees share a key.
func CanonicalKey(m *topology.Machine, p *topology.Placement) (string, error) {
	if err := p.Validate(m); err != nil {
		return "", err
	}
	gpus, ssds := p.Counts()
	children := map[string][]string{}
	for _, pt := range m.Points {
		if pt.Kind == topology.Switch {
			children[pt.Parent] = append(children[pt.Parent], pt.ID)
		}
	}
	var encode func(id string) string
	encode = func(id string) string {
		pt, _ := m.Point(id)
		var kids []string
		for _, c := range children[id] {
			kids = append(kids, encode(c))
		}
		sort.Strings(kids)
		return fmt.Sprintf("(%d,%.3f,%d,%d,g%d,s%d;%s)",
			int(pt.Kind), pt.UplinkBW.GiBpsf(), pt.Bays, pt.GPUSlots,
			gpus[id], ssds[id], strings.Join(kids, ""))
	}
	var roots []string
	for _, rc := range m.RootComplexes() {
		roots = append(roots, encode(rc))
	}
	sort.Strings(roots)
	return strings.Join(roots, "|"), nil
}

// Dedupe removes symmetry-equivalent placements, keeping the first
// representative of each canonical class (the isomorphic graph reduction
// of §3.2).
func Dedupe(m *topology.Machine, ps []*topology.Placement) ([]*topology.Placement, error) {
	seen := make(map[string]bool, len(ps))
	var out []*topology.Placement
	for _, p := range ps {
		key, err := CanonicalKey(m, p)
		if err != nil {
			return nil, err
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, p)
	}
	return out, nil
}

// Options tunes the placement search.
type Options struct {
	// Tolerance is the relative bisection tolerance (default 1e-4).
	Tolerance float64
	// Parallelism bounds concurrent candidate evaluations
	// (default GOMAXPROCS).
	Parallelism int
	// SkipDedupe disables isomorphic reduction (ablation).
	SkipDedupe bool
	// KeepScores records every candidate's predicted time in the result.
	KeepScores bool
	// Serial runs the single-goroutine reference pipeline instead of the
	// streaming one: enumerate, dedupe, and score sequentially in
	// enumeration order. It produces identical results and counters — the
	// differential baseline the streaming path is tested (and benchmarked)
	// against.
	Serial bool
	// Cache, when non-nil, memoizes candidate scores across searches,
	// local searches, and fault-triggered replans. Keys combine the
	// canonical placement class with machine-rate and demand fingerprints,
	// so a shared cache is safe across machines and demands.
	Cache *scorecache.Scores
	// FaultsKey folds an injected fault schedule into the score-cache key
	// (callers pass faults.Format output). Two searches over identical
	// machine/demand fingerprints but different fault schedules must not
	// share memoized scores: leave it empty only when scores are
	// schedule-independent (the healthy-machine planner).
	FaultsKey string
	// NoProbePool makes the streaming pipeline solve bisections inline in
	// its scoring workers instead of submitting them to the shared
	// maxflow.ProbePool — the pre-pool behavior, kept as the differential
	// reference (and escape hatch). Serial mode never uses the pool. The
	// pool is also bypassed while flownet self-checks are installed, since
	// those audit the solved flow on the network itself.
	NoProbePool bool
	// Observer receives spans and metrics for the search (nil falls back
	// to the process default observer; both nil = no instrumentation).
	Observer *obs.Observer
	// Explain, when non-nil, receives a per-decision provenance trail:
	// candidates pruned (with reasons), score-cache hits, per-candidate
	// bisection work, and run-level summaries. Steps carry the candidate's
	// enumeration index, so the rendered trail is deterministic for a fixed
	// machine/demand even under the streaming pipeline. Nil (the default)
	// costs nothing on the hot path.
	Explain *obs.Explain
	// Ctx, when non-nil, cancels an in-flight search: enumeration stops,
	// scoring workers abandon their current bisection at the next probe
	// (see maxflow.TimeBisector.Ctx), and Search returns the context's
	// error. An abandoned caller — a disconnected planning request, a
	// timed-out RPC — therefore stops consuming CPU instead of running the
	// search to completion. Canceled evaluations are never written to
	// Cache, so a shared cache cannot be poisoned with partial results.
	Ctx context.Context
}

// Scored pairs a candidate with its predicted epoch I/O time.
type Scored struct {
	Placement *topology.Placement
	Time      units.Duration
	Err       error
}

// Result summarizes a search.
type Result struct {
	Best       *topology.Placement
	Time       units.Duration  // predicted epoch I/O completion time
	Throughput units.Bandwidth // total demand / Time
	Enumerated int             // candidates before reduction
	Evaluated  int             // candidates scored after reduction
	CacheHits  int             // evaluations short-circuited by Options.Cache
	Scores     []Scored        // per-candidate results when KeepScores
	Demand     *flownet.Demand // the demand the search optimized for
	Machine    *topology.Machine
}

// cand is one enumerated placement flowing through the search pipeline.
// seq is its enumeration index (also its "cand%d" name); key is filled by
// the dedupe stage when canonicalization ran.
type cand struct {
	seq int
	p   *topology.Placement
	key string
}

// scoredSeq is a scored candidate tagged with its enumeration index (the
// deterministic tiebreaker) and whether the score came from the cache.
type scoredSeq struct {
	Scored
	seq int
	hit bool
}

// CacheKey returns the score-cache key under which Search, LocalSearch, and
// replans memoize candidate p's predicted time: the canonical placement
// class prefixed with machine-rate and demand fingerprints plus the
// bisection tolerance, so one shared cache serves different machines,
// demands, and tolerances without collisions.
func CacheKey(m *topology.Machine, p *topology.Placement, d *flownet.Demand, tol float64) (string, error) {
	return CacheKeyFaults(m, p, d, tol, "")
}

// CacheKeyFaults is CacheKey for searches run under an injected fault
// schedule: faultsKey (Options.FaultsKey, typically faults.Format output)
// joins the prefix so schedules with identical machine/demand fingerprints
// occupy disjoint cache keyspaces.
func CacheKeyFaults(m *topology.Machine, p *topology.Placement, d *flownet.Demand, tol float64, faultsKey string) (string, error) {
	key, err := CanonicalKey(m, p)
	if err != nil {
		return "", err
	}
	return cachePrefix(m, d, tol, faultsKey) + key, nil
}

// cachePrefix fingerprints everything that determines a candidate's score
// besides its canonical placement class: the machine's link rates and
// device counts (CanonicalKey covers attach-point structure but not fabric
// bandwidths — two machines can differ only in QPIBW), the demand vector,
// the tolerance, and the fault schedule the scores were computed under.
func cachePrefix(m *topology.Machine, d *flownet.Demand, tol float64, faultsKey string) string {
	h := scorecache.NewHasher()
	h.Float(float64(m.QPIBW)).Float(float64(m.DRAMBW))
	h.Float(float64(m.PCIeX16)).Float(float64(m.PCIeX4))
	h.Float(float64(m.SSDBW)).Float(float64(m.NVLinkBW))
	h.Uint(uint64(m.NumGPUs)).Uint(uint64(m.NumSSDs))
	h.Uint(uint64(len(m.NVLinks)))
	for _, nv := range m.NVLinks {
		h.Uint(uint64(nv.A)).Uint(uint64(nv.B))
	}
	h.Float(tol)
	h.String(faultsKey)
	return fmt.Sprintf("%x|%x|", h.Sum(), d.Fingerprint())
}

// searchState carries the per-search context shared by the pipeline stages.
type searchState struct {
	m      *topology.Machine
	d      *flownet.Demand
	opt    Options
	o      *obs.Observer
	sp     *obs.Span
	ex     *obs.Explain // nil when the caller asked for no provenance
	prefix string       // cache key prefix; "" when no cache

	enumerated atomic.Int64
	pruned     atomic.Int64
}

// collector folds scored candidates into a Result deterministically: the
// best is the minimum (time, enumeration index) pair, so arrival order —
// which the streaming pipeline does not guarantee — never shows through.
type collector struct {
	best    *Scored
	bestSeq int
	count   int
	hits    int
	scores  []scoredSeq
	keep    bool
}

func (c *collector) add(s scoredSeq) {
	c.count++
	if s.hit {
		c.hits++
	}
	if c.keep {
		c.scores = append(c.scores, s)
	}
	if s.Err != nil {
		return
	}
	if c.best == nil || s.Time < c.best.Time || (s.Time == c.best.Time && s.seq < c.bestSeq) {
		sc := s.Scored
		c.best, c.bestSeq = &sc, s.seq
	}
}

// Search enumerates placements, reduces symmetry, scores every survivor by
// time-bisection max-flow under demand d, and returns the fastest.
//
// The three stages — enumerate, dedupe (canonical-key isomorphic
// reduction), and score — run as a streaming channel pipeline: candidates
// are scored while later ones are still being enumerated, and a bounded
// worker pool (min(Parallelism, enumeration size) goroutines, each holding
// a reusable scratch network) drains the dedupe stage. Options.Serial runs
// the same stages in a single goroutine as the differential reference.
// Candidates whose networks are infeasible (disconnected demand) are
// skipped; with Options.Cache, previously seen candidates skip the max-flow
// solve entirely.
func Search(m *topology.Machine, d *flownet.Demand, opt Options) (*Result, error) {
	if opt.Tolerance <= 0 {
		opt.Tolerance = 1e-4
	}
	if opt.Parallelism <= 0 {
		opt.Parallelism = runtime.GOMAXPROCS(0)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if opt.Ctx != nil {
		if err := opt.Ctx.Err(); err != nil {
			return nil, err
		}
	}
	o := obs.Active(opt.Observer)
	sp := o.Begin("placement.search")
	sp.SetStr("machine", m.Name)
	if opt.Serial {
		sp.SetStr("mode", "serial")
	}
	defer sp.End()

	// The composition lists are tiny (one entry per attach point each);
	// their product is the enumeration size, known before any candidate is
	// built — it bounds the worker pool without materializing candidates.
	gpuCaps := make([]int, len(m.Points))
	ssdCaps := make([]int, len(m.Points))
	for i, p := range m.Points {
		gpuCaps[i] = p.GPUSlots
		ssdCaps[i] = p.Bays
	}
	gpuDists := compositions(m.NumGPUs, gpuCaps)
	ssdDists := compositions(m.NumSSDs, ssdCaps)
	total := len(gpuDists) * len(ssdDists)
	if total == 0 {
		return nil, fmt.Errorf("placement: no feasible candidates for machine %s", m.Name)
	}

	st := &searchState{m: m, d: d, opt: opt, o: o, sp: sp, ex: opt.Explain}
	if opt.Cache != nil {
		st.prefix = cachePrefix(m, d, opt.Tolerance, opt.FaultsKey)
	}

	var col collector
	col.keep = opt.KeepScores
	var err error
	if opt.Serial {
		err = searchSerial(st, gpuDists, ssdDists, &col)
	} else {
		err = searchStream(st, gpuDists, ssdDists, total, &col)
	}
	if err != nil {
		return nil, err
	}

	enumerated := int(st.enumerated.Load())
	o.Counter("placement_candidates_enumerated_total").Add(float64(enumerated))
	o.Counter("placement_candidates_pruned_total").Add(float64(st.pruned.Load()))

	res := &Result{
		Enumerated: enumerated,
		Evaluated:  col.count,
		CacheHits:  col.hits,
		Demand:     d,
		Machine:    m,
	}
	if col.best == nil {
		return nil, fmt.Errorf("placement: every candidate infeasible on machine %s", m.Name)
	}
	res.Time = col.best.Time
	if res.Time > 0 {
		res.Throughput = units.Bandwidth(d.TotalDemand() / res.Time.Sec())
	}
	st.ex.Add(obs.ExplainStep{Seq: obs.SeqSummary, Stage: "search", Reason: "enumerated", Count: enumerated})
	st.ex.Add(obs.ExplainStep{Seq: obs.SeqSummary, Stage: "search", Reason: "pruned", Count: int(st.pruned.Load())})
	st.ex.Add(obs.ExplainStep{Seq: obs.SeqSummary, Stage: "search", Reason: "evaluated", Count: col.count})
	st.ex.Add(obs.ExplainStep{Seq: obs.SeqSummary, Stage: "search", Reason: "score-cache-hits", Count: col.hits})
	st.ex.Add(obs.ExplainStep{Seq: obs.SeqSummary, Stage: "result", Subject: col.best.Placement.Name, Value: res.Time.Sec()})
	if opt.KeepScores {
		sort.Slice(col.scores, func(a, b int) bool {
			sa, sb := col.scores[a], col.scores[b]
			if (sa.Err == nil) != (sb.Err == nil) {
				return sa.Err == nil
			}
			if sa.Time != sb.Time {
				return sa.Time < sb.Time
			}
			return sa.seq < sb.seq
		})
		res.Scores = make([]Scored, len(col.scores))
		for i, s := range col.scores {
			res.Scores[i] = s.Scored
		}
	}
	best := col.best.Placement.Clone()
	best.Name = fmt.Sprintf("%s(moment)", m.Name)
	res.Best = best
	sp.SetInt("evaluated", res.Evaluated)
	sp.SetInt("cache_hits", res.CacheHits)
	sp.SetFloat("best_seconds", res.Time.Sec())
	if Check != nil {
		if err := Check(m, d, opt, res); err != nil {
			return nil, fmt.Errorf("placement: self-check failed: %w", err)
		}
	}
	return res, nil
}

// emit streams the candidate cross product in enumeration order, calling
// yield for each; a false return stops the walk. Names match the historical
// Enumerate order ("cand<seq>").
func emit(m *topology.Machine, gpuDists, ssdDists [][]int, yield func(c cand) bool) {
	seq := 0
	for _, gd := range gpuDists {
		for _, sd := range ssdDists {
			p := &topology.Placement{Name: fmt.Sprintf("cand%d", seq)}
			for i, pt := range m.Points {
				for k := 0; k < gd[i]; k++ {
					p.GPUAt = append(p.GPUAt, pt.ID)
				}
				for k := 0; k < sd[i]; k++ {
					p.SSDAt = append(p.SSDAt, pt.ID)
				}
			}
			if !yield(cand{seq: seq, p: p}) {
				return
			}
			seq++
		}
	}
}

// searchSerial is the single-goroutine reference pipeline: the same
// enumerate → dedupe → score stages run inline, in enumeration order.
func searchSerial(st *searchState, gpuDists, ssdDists [][]int, col *collector) error {
	// The stages are interleaved in one loop, so the enumerate and prune
	// spans both cover it; their attributes carry the per-stage counts.
	esp := st.sp.Fork("enumerate")
	psp := st.sp.Fork("prune")
	needKey := !st.opt.SkipDedupe || st.opt.Cache != nil
	seen := make(map[string]struct{})
	var scratch *flownet.Network
	var keyErr error
	kept := 0
	emit(st.m, gpuDists, ssdDists, func(c cand) bool {
		st.enumerated.Add(1)
		if st.opt.Ctx != nil {
			if err := st.opt.Ctx.Err(); err != nil {
				keyErr = err
				return false
			}
		}
		if needKey {
			c.key, keyErr = CanonicalKey(st.m, c.p)
			if keyErr != nil {
				return false
			}
			if !st.opt.SkipDedupe {
				if _, dup := seen[c.key]; dup {
					st.pruned.Add(1)
					st.ex.Add(obs.ExplainStep{Seq: c.seq, Stage: "prune", Subject: c.p.Name, Reason: "isomorphic-duplicate"})
					return true
				}
				seen[c.key] = struct{}{}
			}
		}
		kept++
		if evalHook != nil {
			evalHook()
		}
		var s scoredSeq
		s, scratch = scoreCached(st, c, scratch)
		col.add(s)
		return true
	})
	esp.SetInt("candidates", int(st.enumerated.Load()))
	esp.End()
	psp.SetInt("kept", kept)
	psp.SetInt("pruned", int(st.pruned.Load()))
	psp.End()
	return keyErr
}

// searchStream is the concurrent pipeline: an enumerator goroutine feeds a
// dedupe goroutine feeds a scoring stage; the caller's goroutine collects.
// The scoring stage has two modes: by default, builder goroutines construct
// candidate networks and hand the bisections to a shared maxflow.ProbePool
// whose workers solve them on warm graph arenas (build and solve overlap,
// see streamPoolScore); with Options.NoProbePool — or while flownet
// self-checks are installed — a bounded worker pool builds and solves
// inline, the pre-pool reference behavior. A closed done channel aborts
// every stage early (canonicalization failure — enumerated candidates are
// valid by construction, but the guard keeps the pipeline from deadlocking
// if that invariant ever breaks).
func searchStream(st *searchState, gpuDists, ssdDists [][]int, total int, col *collector) error {
	workers := st.opt.Parallelism
	if workers > total {
		workers = total
	}
	usePool := !st.opt.NoProbePool && flownet.Check == nil
	candc := make(chan cand, workers)
	keyc := make(chan cand, workers)
	resc := make(chan scoredSeq, workers)
	done := make(chan struct{})
	// The pool context fans an abort out to in-flight bisections and
	// blocked pool operations; deriving it from the caller's context makes
	// external cancellation reach pooled solves without a channel receive.
	baseCtx := st.opt.Ctx
	if baseCtx == nil {
		baseCtx = context.Background()
	}
	poolCtx, poolCancel := context.WithCancel(baseCtx)
	defer poolCancel()
	var failErr error
	var failOnce sync.Once
	fail := func(err error) {
		failOnce.Do(func() {
			failErr = err
			poolCancel()
			close(done)
		})
	}
	if st.opt.Ctx != nil {
		// Abort every stage when the caller abandons the search. Workers
		// mid-solve also see the context through the network (score passes
		// it to the bisector), so cancellation is not gated on the next
		// channel receive.
		stop := context.AfterFunc(st.opt.Ctx, func() { fail(st.opt.Ctx.Err()) })
		defer stop()
	}

	go func() { // stage 1: enumerate
		esp := st.sp.Fork("enumerate")
		defer func() {
			esp.SetInt("candidates", int(st.enumerated.Load()))
			esp.End()
			close(candc)
		}()
		emit(st.m, gpuDists, ssdDists, func(c cand) bool {
			st.enumerated.Add(1)
			select {
			case candc <- c:
				return true
			case <-done:
				return false
			}
		})
	}()

	go func() { // stage 2: canonicalize + dedupe
		psp := st.sp.Fork("prune")
		kept := 0
		defer func() {
			psp.SetInt("kept", kept)
			psp.SetInt("pruned", int(st.pruned.Load()))
			psp.End()
			close(keyc)
		}()
		needKey := !st.opt.SkipDedupe || st.opt.Cache != nil
		seen := make(map[string]struct{})
		for c := range candc {
			if needKey {
				key, err := CanonicalKey(st.m, c.p)
				if err != nil {
					fail(err)
					return
				}
				if !st.opt.SkipDedupe {
					if _, dup := seen[key]; dup {
						st.pruned.Add(1)
						st.ex.Add(obs.ExplainStep{Seq: c.seq, Stage: "prune", Subject: c.p.Name, Reason: "isomorphic-duplicate"})
						continue
					}
					seen[key] = struct{}{}
				}
				c.key = key
			}
			select {
			case keyc <- c:
				kept++
			case <-done:
				return
			}
		}
	}()

	var pool *maxflow.ProbePool
	if usePool {
		pool = streamPoolScore(st, keyc, resc, done, poolCtx, workers)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ { // stage 3: inline scoring pool
			wg.Add(1)
			go func() {
				defer wg.Done()
				var scratch *flownet.Network
				for c := range keyc {
					if evalHook != nil {
						evalHook()
					}
					var s scoredSeq
					s, scratch = scoreCached(st, c, scratch)
					select {
					case resc <- s:
					case <-done:
						return
					}
				}
			}()
		}
		go func() {
			wg.Wait()
			close(resc)
		}()
	}

	for s := range resc { // stage 4: collect (caller's goroutine)
		col.add(s)
	}
	if st.opt.Ctx != nil {
		// Cancellation reaches the pipeline through context parentage
		// (poolCtx derives from the caller's context), which can drain every
		// stage before the AfterFunc goroutine — the failErr writer — gets
		// scheduled. Routing the context error through fail() here closes
		// that race: the Once both makes the call idempotent and
		// synchronizes the failErr read below with any concurrent writer.
		if err := st.opt.Ctx.Err(); err != nil {
			fail(err)
		}
	}
	if pool != nil {
		// resc only closes after ProbePool.Close returned (streamPoolScore's
		// shutdown sequence), so the snapshot is final.
		ps := pool.Stats()
		st.o.Counter("probe_pool_probes_total").Add(float64(ps.Submitted))
		st.o.Counter("probe_pool_solved_total").Add(float64(ps.Solved))
		st.o.Counter("probe_pool_canceled_total").Add(float64(ps.Canceled))
		st.o.Counter("probe_pool_arena_reuses_total").Add(float64(ps.ArenaReuses))
		st.o.Gauge("probe_pool_workers").Set(float64(pool.NumWorkers()))
	}
	return failErr
}

// streamPoolScore is the pooled scoring stage: `workers` builder goroutines
// consume deduped candidates, serve cache hits and build failures directly,
// and submit everything else to a shared maxflow.ProbePool that solves the
// bisections concurrently on its own warm graph arenas. Submit clones the
// candidate's network synchronously, so a builder starts constructing its
// next network (into the same recycled scratch) while the pool is still
// solving the previous one — construction overlaps solving instead of
// queueing behind it. A finisher goroutine meters pool results exactly as
// an inline SolveTol would (flownet.MeterProbe) and forwards them; the
// collector's (time, seq) rule makes the merge deterministic regardless of
// completion order. Shutdown is sequenced builders → pool → finisher →
// resc, so when resc closes the pool's counters are final.
func streamPoolScore(st *searchState, keyc <-chan cand, resc chan<- scoredSeq, done <-chan struct{}, poolCtx context.Context, workers int) *maxflow.ProbePool {
	pool := &maxflow.ProbePool{Workers: workers, Ctx: poolCtx}
	pool.Start()
	var bwg, fwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		bwg.Add(1)
		go func() {
			defer bwg.Done()
			var scratch *flownet.Network
			for c := range keyc {
				if evalHook != nil {
					evalHook()
				}
				if s, ok := cacheGet(st, c); ok {
					select {
					case resc <- s:
						continue
					case <-done:
						return
					}
				}
				n, err := flownet.BuildReuse(st.m, c.p, st.d, scratch)
				if err != nil {
					sp := st.sp.Fork("maxflow-score")
					sp.SetStr("candidate", c.p.Name)
					sp.SetStr("error", err.Error())
					sp.End()
					st.o.Counter("placement_candidates_infeasible_total").Inc()
					st.o.Logf("placement: candidate %s infeasible: %v", c.p.Name, err)
					st.ex.Add(obs.ExplainStep{Seq: c.seq, Stage: "score", Subject: c.p.Name, Reason: "infeasible-build"})
					s := scoredSeq{Scored: Scored{Placement: c.p, Err: err}, seq: c.seq}
					cachePut(st, c, s.Scored)
					select {
					case resc <- s:
						continue
					case <-done:
						return
					}
				}
				scratch = n
				if err := pool.Submit(n.Probe(c.seq, c, st.opt.Tolerance)); err != nil {
					// Pool context canceled: the context AfterFunc (or the
					// failing stage) already routed the error to fail().
					return
				}
			}
		}()
	}
	fwg.Add(1)
	go func() {
		defer fwg.Done()
		for r := range pool.Results() {
			c := r.Tag.(cand)
			sp := st.sp.Fork("maxflow-score")
			sp.SetStr("candidate", c.p.Name)
			t, err := flownet.MeterProbe(st.o, st.m.Name, c.p.Name, r)
			s := scoredSeq{seq: c.seq}
			s.Placement = c.p
			if err != nil {
				sp.SetStr("error", err.Error())
				s.Err = err
				if r.Canceled() {
					st.o.Event(obs.Event{Kind: obs.EvProbeAbort, Name: "probe-abort",
						Subject: c.p.Name, V1: float64(r.Probes)})
				} else {
					st.o.Counter("placement_candidates_infeasible_total").Inc()
					st.o.Logf("placement: candidate %s unsolvable: %v", c.p.Name, err)
					st.ex.Add(obs.ExplainStep{Seq: c.seq, Stage: "score", Subject: c.p.Name, Reason: "unsolvable"})
				}
			} else {
				sp.SetFloat("predicted_seconds", t.Sec())
				s.Time = t
				st.o.Counter("placement_candidates_scored_total").Inc()
				st.ex.Add(obs.ExplainStep{Seq: c.seq, Stage: "score", Subject: c.p.Name, Reason: "solved", Value: t.Sec()})
				st.ex.Add(obs.ExplainStep{Seq: c.seq, Stage: "bisect", Subject: c.p.Name, Reason: "probes", Count: r.Probes})
				st.ex.Add(obs.ExplainStep{Seq: c.seq, Stage: "bisect", Subject: c.p.Name, Reason: "iterations", Count: r.Iterations})
			}
			sp.End()
			cachePut(st, c, s.Scored)
			select {
			case resc <- s:
			case <-done:
				return
			}
		}
	}()
	go func() {
		bwg.Wait()
		pool.Close()
		fwg.Wait()
		close(resc)
	}()
	return pool
}

// Check, when non-nil, audits every Search result before it is returned
// (winner re-scores to the reported time, throughput consistent, placement
// valid). Installed by internal/verify when self-verification is enabled;
// declared here rather than imported so placement does not depend on the
// verification subsystem.
var Check func(m *topology.Machine, d *flownet.Demand, opt Options, res *Result) error

// evalHook, when non-nil, is invoked at the start of every candidate
// evaluation (test instrumentation for the concurrency bound).
var evalHook func()

// cacheGet consults the score cache for candidate c, accounting the hit or
// miss. It is the shared fast path of every scoring mode (serial, inline
// streaming, pooled streaming), so hit/miss/scored/infeasible counters are
// identical across them by construction.
func cacheGet(st *searchState, c cand) (scoredSeq, bool) {
	if st.opt.Cache == nil || c.key == "" {
		return scoredSeq{}, false
	}
	s, ok := st.opt.Cache.Get(st.prefix + c.key)
	if !ok {
		st.o.Counter("placement_cache_misses_total").Inc()
		return scoredSeq{}, false
	}
	st.o.Counter("placement_cache_hits_total").Inc()
	out := scoredSeq{seq: c.seq, hit: true}
	out.Placement = c.p
	if s.Infeasible {
		out.Err = errors.New(s.Err)
		st.o.Counter("placement_candidates_infeasible_total").Inc()
		st.ex.Add(obs.ExplainStep{Seq: c.seq, Stage: "score", Subject: c.p.Name, Reason: "cache-hit-infeasible"})
	} else {
		out.Time = units.Seconds(s.Seconds)
		st.o.Counter("placement_candidates_scored_total").Inc()
		st.ex.Add(obs.ExplainStep{Seq: c.seq, Stage: "score", Subject: c.p.Name, Reason: "cache-hit", Value: s.Seconds})
	}
	return out, true
}

// cachePut memoizes a scored candidate unless the result reflects caller
// cancellation rather than a property of the candidate.
func cachePut(st *searchState, c cand, s Scored) {
	if st.opt.Cache == nil || c.key == "" || isCanceled(s.Err) {
		return
	}
	entry := scorecache.Score{Seconds: s.Time.Sec()}
	if s.Err != nil {
		entry = scorecache.Score{Infeasible: true, Err: s.Err.Error()}
	}
	st.opt.Cache.Put(st.prefix+c.key, entry)
}

// scoreCached scores one candidate inline, consulting the cache first when
// the search has one, and returns the (possibly newly built) scratch
// network for the worker to reuse on its next candidate.
func scoreCached(st *searchState, c cand, scratch *flownet.Network) (scoredSeq, *flownet.Network) {
	if out, ok := cacheGet(st, c); ok {
		return out, scratch
	}
	var s Scored
	s, scratch = score(st, c, scratch)
	cachePut(st, c, s)
	return scoredSeq{Scored: s, seq: c.seq}, scratch
}

// isCanceled reports whether err stems from caller cancellation rather than
// a property of the candidate — such scores are transient and must not be
// cached as infeasible or reported as candidate failures.
func isCanceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// score evaluates one candidate by time-bisection max-flow, rebuilding into
// the worker's scratch network (flownet.BuildReuse) to keep the hot loop
// out of the allocator. It returns the network used so the caller can
// thread it into the next evaluation.
func score(st *searchState, c cand, scratch *flownet.Network) (Scored, *flownet.Network) {
	candP, o := c.p, st.o
	sp := st.sp.Fork("maxflow-score")
	sp.SetStr("candidate", candP.Name)
	defer sp.End()
	n, err := flownet.BuildReuse(st.m, candP, st.d, scratch)
	if err != nil {
		sp.SetStr("error", err.Error())
		o.Counter("placement_candidates_infeasible_total").Inc()
		o.Logf("placement: candidate %s infeasible: %v", candP.Name, err)
		st.ex.Add(obs.ExplainStep{Seq: c.seq, Stage: "score", Subject: candP.Name, Reason: "infeasible-build"})
		return Scored{Placement: candP, Err: err}, scratch
	}
	n.SetObserver(o)
	n.SetContext(st.opt.Ctx)
	t, err := n.SolveTol(st.opt.Tolerance)
	probes, iters, _, _ := n.SolveCounters()
	if err != nil {
		sp.SetStr("error", err.Error())
		if !isCanceled(err) {
			o.Counter("placement_candidates_infeasible_total").Inc()
			o.Logf("placement: candidate %s unsolvable: %v", candP.Name, err)
			st.ex.Add(obs.ExplainStep{Seq: c.seq, Stage: "score", Subject: candP.Name, Reason: "unsolvable"})
		}
		return Scored{Placement: candP, Err: err}, n
	}
	sp.SetFloat("predicted_seconds", t.Sec())
	o.Counter("placement_candidates_scored_total").Inc()
	st.ex.Add(obs.ExplainStep{Seq: c.seq, Stage: "score", Subject: candP.Name, Reason: "solved", Value: t.Sec()})
	st.ex.Add(obs.ExplainStep{Seq: c.seq, Stage: "bisect", Subject: candP.Name, Reason: "probes", Count: probes})
	st.ex.Add(obs.ExplainStep{Seq: c.seq, Stage: "bisect", Subject: candP.Name, Reason: "iterations", Count: iters})
	return Scored{Placement: candP, Time: t}, n
}
