package placement

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"moment/internal/flownet"
	"moment/internal/topology"
)

const gb = 1 << 30

func demand(numGPU int) *flownet.Demand {
	per := make([]float64, numGPU)
	hbm := make([]float64, numGPU)
	for i := range per {
		per[i] = 100 * gb
		hbm[i] = 10 * gb
	}
	total := float64(numGPU) * 100 * gb
	return &flownet.Demand{
		PerGPU:   per,
		HBMPeer:  hbm,
		DRAM:     map[string]float64{"rc0": 25 * gb, "rc1": 25 * gb},
		SSDTotal: total - 50*gb - float64(numGPU)*10*gb,
	}
}

func TestEnumerateCountsMachineA(t *testing.T) {
	m := topology.MachineA()
	ps, err := Enumerate(m)
	if err != nil {
		t.Fatal(err)
	}
	// GPUs: 4 into caps (0,0,4,4) -> 5 ways; SSDs: 8 into (8,8,0,0) -> 9.
	if len(ps) != 45 {
		t.Errorf("enumerated %d, want 45", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(m); err != nil {
			t.Errorf("invalid candidate %v: %v", p, err)
		}
	}
}

func TestEnumerateRespectsSlotCaps(t *testing.T) {
	m := topology.MachineB()
	ps, err := Enumerate(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		gpus, ssds := p.Counts()
		for at, n := range gpus {
			pt, _ := m.Point(at)
			if n > pt.GPUSlots {
				t.Fatalf("candidate overfills %s with %d GPUs", at, n)
			}
		}
		for at, n := range ssds {
			pt, _ := m.Point(at)
			if n > pt.Bays {
				t.Fatalf("candidate overfills %s with %d SSDs", at, n)
			}
		}
	}
}

func TestCompositions(t *testing.T) {
	cs := compositions(3, []int{2, 2})
	// (1,2),(2,1) are both allowed; (3,0),(0,3) exceed caps.
	if len(cs) != 2 {
		t.Fatalf("compositions(3,[2,2]) = %v", cs)
	}
	if len(compositions(0, []int{2, 2})) != 1 {
		t.Error("zero total should have exactly the empty composition")
	}
	if len(compositions(5, []int{2, 2})) != 0 {
		t.Error("infeasible total should have no compositions")
	}
}

func TestDedupeMachineAMirrorSymmetry(t *testing.T) {
	m := topology.MachineA()
	all, err := Enumerate(m)
	if err != nil {
		t.Fatal(err)
	}
	ded, err := Dedupe(m, all)
	if err != nil {
		t.Fatal(err)
	}
	if len(ded) >= len(all) {
		t.Fatalf("dedupe removed nothing: %d -> %d", len(all), len(ded))
	}
	// Machine A's sockets mirror each other, so roughly half the
	// candidates are redundant (diagonal ones are self-symmetric).
	if len(ded) > len(all)*2/3 {
		t.Errorf("dedupe too weak: %d -> %d", len(all), len(ded))
	}
}

func TestCanonicalKeyInvariantUnderMirror(t *testing.T) {
	m := topology.MachineA()
	// 3 GPUs on sw0 + 1 on sw1, SSDs 5 rc0 + 3 rc1 — and its mirror.
	p1 := &topology.Placement{
		GPUAt: []string{"sw0", "sw0", "sw0", "sw1"},
		SSDAt: []string{"rc0", "rc0", "rc0", "rc0", "rc0", "rc1", "rc1", "rc1"},
	}
	p2 := &topology.Placement{
		GPUAt: []string{"sw1", "sw1", "sw1", "sw0"},
		SSDAt: []string{"rc1", "rc1", "rc1", "rc1", "rc1", "rc0", "rc0", "rc0"},
	}
	k1, err := CanonicalKey(m, p1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := CanonicalKey(m, p2)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("mirror placements got different keys:\n%s\n%s", k1, k2)
	}
	// A genuinely different placement must differ.
	p3 := &topology.Placement{
		GPUAt: []string{"sw0", "sw0", "sw1", "sw1"},
		SSDAt: p1.SSDAt,
	}
	k3, err := CanonicalKey(m, p3)
	if err != nil {
		t.Fatal(err)
	}
	if k3 == k1 {
		t.Error("different placements share a key")
	}
}

func TestCanonicalKeyNotInvariantOnAsymmetricB(t *testing.T) {
	// Machine B's sockets are NOT symmetric (rc1 has bays, rc0 hosts the
	// switch cascade), so "mirrored" placements must stay distinct.
	m := topology.MachineB()
	p1 := &topology.Placement{
		GPUAt: []string{"rc0", "sw0", "sw0", "sw1"},
		SSDAt: []string{"rc1", "rc1", "rc1", "rc1", "sw0", "sw0", "sw1", "sw1"},
	}
	p2 := &topology.Placement{
		GPUAt: []string{"rc1", "sw0", "sw0", "sw1"},
		SSDAt: p1.SSDAt,
	}
	k1, err := CanonicalKey(m, p1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := CanonicalKey(m, p2)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == k2 {
		t.Error("asymmetric sockets collapsed by canonical key")
	}
}

func TestCanonicalKeyPermutationProperty(t *testing.T) {
	// Shuffling device order within a placement never changes the key
	// (PCIe switch symmetry: same-point devices are interchangeable).
	m := topology.MachineB()
	r := rand.New(rand.NewSource(3))
	base := &topology.Placement{
		GPUAt: []string{"rc0", "sw0", "sw1", "sw1"},
		SSDAt: []string{"rc1", "rc1", "sw0", "sw0", "rc1", "sw1", "sw1", "rc1"},
	}
	want, err := CanonicalKey(m, base)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		p := base.Clone()
		r.Shuffle(len(p.GPUAt), func(a, b int) { p.GPUAt[a], p.GPUAt[b] = p.GPUAt[b], p.GPUAt[a] })
		r.Shuffle(len(p.SSDAt), func(a, b int) { p.SSDAt[a], p.SSDAt[b] = p.SSDAt[b], p.SSDAt[a] })
		got, err := CanonicalKey(m, p)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("shuffle %d changed key", i)
		}
	}
}

func TestSearchMachineABeatsClassics(t *testing.T) {
	m := topology.MachineA()
	d := demand(4)
	res, err := Search(m, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.Time <= 0 {
		t.Fatalf("bad result %+v", res)
	}
	for _, l := range []topology.ClassicLayout{topology.LayoutA, topology.LayoutB, topology.LayoutC, topology.LayoutD} {
		p, err := topology.ClassicPlacement(m, l)
		if err != nil {
			t.Fatal(err)
		}
		n, err := flownet.Build(m, p, d)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := n.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if res.Time.Sec() > ct.Sec()*1.001 {
			t.Errorf("search result %.3fs worse than classic %v %.3fs", res.Time.Sec(), l, ct.Sec())
		}
	}
}

func TestSearchMachineBBeatsClassics(t *testing.T) {
	m := topology.MachineB()
	d := demand(4)
	res, err := Search(m, d, Options{KeepScores: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []topology.ClassicLayout{topology.LayoutA, topology.LayoutB, topology.LayoutC, topology.LayoutD} {
		p, err := topology.ClassicPlacement(m, l)
		if err != nil {
			t.Fatal(err)
		}
		n, err := flownet.Build(m, p, d)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := n.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if res.Time.Sec() > ct.Sec()*1.001 {
			t.Errorf("search result %.3fs worse than classic %v %.3fs", res.Time.Sec(), l, ct.Sec())
		}
	}
	if len(res.Scores) != res.Evaluated {
		t.Errorf("scores %d != evaluated %d", len(res.Scores), res.Evaluated)
	}
	// Scores must be sorted ascending among the error-free prefix.
	for i := 1; i < len(res.Scores); i++ {
		if res.Scores[i].Err != nil {
			break
		}
		if res.Scores[i].Time < res.Scores[i-1].Time {
			t.Error("scores not sorted")
			break
		}
	}
}

func TestSearchDedupeConsistency(t *testing.T) {
	// Skipping symmetry reduction must not change the optimum.
	m := topology.MachineA()
	d := demand(4)
	withDedupe, err := Search(m, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Search(m, d, Options{SkipDedupe: true})
	if err != nil {
		t.Fatal(err)
	}
	rel := (withDedupe.Time - without.Time).Sec() / without.Time.Sec()
	if rel > 0.001 || rel < -0.001 {
		t.Errorf("dedupe changed optimum: %.4fs vs %.4fs", withDedupe.Time.Sec(), without.Time.Sec())
	}
	if withDedupe.Evaluated >= without.Evaluated {
		t.Errorf("dedupe did not shrink evaluations: %d vs %d",
			withDedupe.Evaluated, without.Evaluated)
	}
}

func TestSearchReducedGPUCounts(t *testing.T) {
	for _, mk := range []func() *topology.Machine{topology.MachineA, topology.MachineB} {
		for n := 1; n <= 4; n++ {
			m := mk().WithGPUs(n)
			res, err := Search(m, demand(n), Options{})
			if err != nil {
				t.Fatalf("%s n=%d: %v", m.Name, n, err)
			}
			if len(res.Best.GPUAt) != n {
				t.Errorf("%s n=%d: best has %d GPUs", m.Name, n, len(res.Best.GPUAt))
			}
		}
	}
}

func TestSearchParallelismDeterministicOptimum(t *testing.T) {
	m := topology.MachineB()
	d := demand(4)
	r1, err := Search(m, d, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Search(m, d, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	rel := (r1.Time - r8.Time).Sec() / r1.Time.Sec()
	if rel > 1e-6 || rel < -1e-6 {
		t.Errorf("optimum depends on parallelism: %v vs %v", r1.Time, r8.Time)
	}
}

func TestSearchInfeasible(t *testing.T) {
	m := topology.MachineA()
	// Demand exceeding any storage supply is rejected at Build time for
	// every candidate, so the search must fail cleanly.
	d := &flownet.Demand{PerGPU: []float64{gb, gb, gb, gb}, SSDTotal: gb}
	if _, err := Search(m, d, Options{}); err == nil {
		t.Fatal("expected search failure")
	}
}

func TestLocalSearchMatchesExhaustiveOnAB(t *testing.T) {
	for _, mk := range []func() *topology.Machine{topology.MachineA, topology.MachineB} {
		m := mk()
		d := demand(4)
		exact, err := Search(m, d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ls, err := LocalSearch(m, d, LocalSearchOptions{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		rel := (ls.Time - exact.Time).Sec() / exact.Time.Sec()
		if rel > 0.01 {
			t.Errorf("machine %s: local search %.3fs vs exhaustive %.3fs (%.1f%% worse)",
				m.Name, ls.Time.Sec(), exact.Time.Sec(), rel*100)
		}
		if err := ls.Best.Validate(m); err != nil {
			t.Errorf("machine %s: invalid local-search placement: %v", m.Name, err)
		}
	}
}

func TestLocalSearchHandlesLargeChassis(t *testing.T) {
	// A chassis with many slots: exhaustive enumeration would be large,
	// local search stays bounded.
	m := &topology.Machine{
		Name: "big",
		Points: []topology.AttachPoint{
			{ID: "rc0", Kind: topology.RootComplex, Bays: 8, GPUSlots: 2},
			{ID: "rc1", Kind: topology.RootComplex, Bays: 8, GPUSlots: 2},
			{ID: "sw0", Kind: topology.Switch, Parent: "rc0", UplinkBW: topology.PCIe4x16, Bays: 4, GPUSlots: 4},
			{ID: "sw1", Kind: topology.Switch, Parent: "rc0", UplinkBW: topology.PCIe4x16, Bays: 4, GPUSlots: 4},
			{ID: "sw2", Kind: topology.Switch, Parent: "rc1", UplinkBW: topology.PCIe4x16, Bays: 4, GPUSlots: 4},
			{ID: "sw3", Kind: topology.Switch, Parent: "rc1", UplinkBW: topology.PCIe4x16, Bays: 4, GPUSlots: 4},
		},
		QPIBW:         topology.QPIRate,
		DRAMPerSocket: 256 << 30,
		DRAMBW:        topology.DRAMServeBW,
		NumGPUs:       8,
		NumSSDs:       16,
		GPUMemory:     40 << 30,
		GPUCacheFrac:  0.15,
		SSDCapacity:   3840e9,
		SSDBW:         topology.P5510BW,
		SSDIOPS:       930000,
		PCIeX16:       topology.PCIe4x16,
		PCIeX4:        topology.PCIe4x4,
		NumNodes:      1,
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	per := make([]float64, 8)
	hbm := make([]float64, 8)
	for i := range per {
		per[i] = 100 * gb
		hbm[i] = 10 * gb
	}
	d := &flownet.Demand{
		PerGPU:   per,
		HBMPeer:  hbm,
		DRAM:     map[string]float64{"rc0": 25 * gb, "rc1": 25 * gb},
		SSDTotal: 800*gb - 50*gb - 80*gb,
	}
	res, err := LocalSearch(m, d, LocalSearchOptions{Seed: 5, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Fatalf("bad result %+v", res)
	}
	// Must beat a naive packed placement.
	packed := &topology.Placement{
		GPUAt: fill(fill(nil, "sw0", 4), "sw1", 4),
		SSDAt: fill(fill(nil, "rc0", 8), "rc1", 8),
	}
	n, err := flownet.Build(m, packed, d)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := n.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.Time.Sec() > pt.Sec()*1.001 {
		t.Errorf("local search %.3fs worse than naive packed %.3fs", res.Time.Sec(), pt.Sec())
	}
}

func TestLocalSearchErrors(t *testing.T) {
	bad := topology.MachineA()
	bad.Points = nil
	if _, err := LocalSearch(bad, demand(4), LocalSearchOptions{}); err == nil {
		t.Error("invalid machine accepted")
	}
}

func fill(s []string, id string, n int) []string {
	for i := 0; i < n; i++ {
		s = append(s, id)
	}
	return s
}

func TestSearchAdaptsToDegradedQPI(t *testing.T) {
	// Profiling-driven planning (§3.1): if the measured QPI rate is low,
	// the chosen placement must avoid cross-socket traffic harder — its
	// predicted time under the degraded fabric must beat the placement
	// chosen assuming a healthy fabric.
	healthy := topology.MachineB()
	degraded := topology.MachineB()
	degraded.QPIBW = topology.QPIRate / 4
	d := demand(4)
	onHealthy, err := Search(healthy, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	onDegraded, err := Search(degraded, d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Score the healthy-fabric choice on the degraded machine.
	n, err := flownet.Build(degraded, onHealthy.Best, d)
	if err != nil {
		t.Fatal(err)
	}
	tHealthyChoice, err := n.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if onDegraded.Time.Sec() > tHealthyChoice.Sec()*1.001 {
		t.Errorf("degraded-aware search %.3fs worse than naive choice %.3fs",
			onDegraded.Time.Sec(), tHealthyChoice.Sec())
	}
}

// Regression: Search used to spawn one goroutine per candidate before
// acquiring the semaphore, so a large enumeration launched thousands of
// goroutines at once. The worker pool must run at most Parallelism
// concurrent evaluations and allocate at most Parallelism worker
// goroutines.
func TestSearchWorkerPoolBounded(t *testing.T) {
	const parallelism = 2
	var cur, peak, calls int64
	evalHook = func() {
		n := atomic.AddInt64(&cur, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
				break
			}
		}
		atomic.AddInt64(&calls, 1)
		time.Sleep(100 * time.Microsecond) // widen the overlap window
		atomic.AddInt64(&cur, -1)
	}
	defer func() { evalHook = nil }()

	before := runtime.NumGoroutine()
	m := topology.MachineB()
	res, err := Search(m, demand(4), Options{Parallelism: parallelism})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("no best placement")
	}
	if int(calls) != res.Evaluated {
		t.Errorf("hook saw %d evaluations, want %d", calls, res.Evaluated)
	}
	if peak > parallelism {
		t.Errorf("%d concurrent evaluations, Parallelism=%d", peak, parallelism)
	}
	// All workers must have exited; no goroutine leak either.
	after := runtime.NumGoroutine()
	if after > before+1 {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

// The pool must also cap itself at the candidate count (no idle workers
// blocking on an empty channel) and finish with a huge Parallelism.
func TestSearchWorkerPoolMoreWorkersThanCandidates(t *testing.T) {
	m := topology.MachineA().WithGPUs(1)
	res, err := Search(m, demand(1), Options{Parallelism: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || res.Time <= 0 {
		t.Fatalf("bad result %+v", res)
	}
}
