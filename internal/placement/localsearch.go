package placement

import (
	"fmt"
	"math/rand"

	"moment/internal/flownet"
	"moment/internal/obs"
	"moment/internal/scorecache"
	"moment/internal/topology"
	"moment/internal/units"
)

// Exhaustive enumeration is exact but its candidate count grows
// combinatorially with slots and devices; beyond a few hundred candidates
// (large custom chassis, §2.3's vendor-built servers) Moment falls back to
// stochastic local search: hill climbing over single-device move and
// device-swap neighborhoods with random restarts. On the evaluated
// machines the local search provably reaches the exhaustive optimum (see
// tests); on larger machines it trades exactness for tractability.

// LocalSearchOptions tunes the stochastic search.
type LocalSearchOptions struct {
	// Restarts is the number of random initial placements (default 8).
	Restarts int
	// MaxSteps bounds improvement steps per restart (default 200).
	MaxSteps int
	// Seed makes the search reproducible.
	Seed int64
	// Tolerance is the bisection tolerance (default 1e-4).
	Tolerance float64
	// Cache, when non-nil, memoizes candidate scores under the same keys
	// as Search (canonical class + machine/demand fingerprints), so hill
	// climbing that revisits a placement class — across restarts or across
	// separate searches — skips the max-flow solve.
	Cache *scorecache.Scores
	// FaultsKey mirrors Options.FaultsKey: the fault-schedule component of
	// the cache key, so fault-aware local searches stay isolated from
	// healthy ones sharing the same cache.
	FaultsKey string
	// Observer receives spans and metrics (nil falls back to the process
	// default observer).
	Observer *obs.Observer
	// Explain, when non-nil, receives the provenance trail: one step per
	// restart and accepted move (Seq = restart index, Count = step) plus
	// run-level summaries, deterministic for a fixed Seed.
	Explain *obs.Explain
}

func (o LocalSearchOptions) defaults() LocalSearchOptions {
	if o.Restarts == 0 {
		o.Restarts = 8
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 200
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-4
	}
	return o
}

// LocalSearch finds a low-epoch-IO placement by hill climbing. It returns
// the best placement found, its predicted time, and the number of
// candidate evaluations spent.
func LocalSearch(m *topology.Machine, d *flownet.Demand, opt LocalSearchOptions) (*Result, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	opt = opt.defaults()
	r := rand.New(rand.NewSource(opt.Seed))
	o := obs.Active(opt.Observer)
	sp := o.Begin("placement.localsearch")
	sp.SetStr("machine", m.Name)
	defer sp.End()

	type pointCap struct {
		id   string
		gpus int
		bays int
	}
	var points []pointCap
	for _, pt := range m.Points {
		points = append(points, pointCap{id: pt.ID, gpus: pt.GPUSlots, bays: pt.Bays})
	}

	randomPlacement := func() *topology.Placement {
		p := &topology.Placement{Name: "ls"}
		gpuLeft := make([]int, len(points))
		bayLeft := make([]int, len(points))
		for i, pt := range points {
			gpuLeft[i] = pt.gpus
			bayLeft[i] = pt.bays
		}
		place := func(n int, left []int) ([]string, bool) {
			var at []string
			for k := 0; k < n; k++ {
				var options []int
				for i := range points {
					if left[i] > 0 {
						options = append(options, i)
					}
				}
				if len(options) == 0 {
					return nil, false
				}
				i := options[r.Intn(len(options))]
				left[i]--
				at = append(at, points[i].id)
			}
			return at, true
		}
		var ok bool
		if p.GPUAt, ok = place(m.NumGPUs, gpuLeft); !ok {
			return nil
		}
		if p.SSDAt, ok = place(m.NumSSDs, bayLeft); !ok {
			return nil
		}
		return p
	}

	prefix := ""
	if opt.Cache != nil {
		prefix = cachePrefix(m, d, opt.Tolerance, opt.FaultsKey)
	}
	evaluations := 0
	cacheHits := 0
	var scratch *flownet.Network
	solve := func(p *topology.Placement) (float64, bool) {
		n, err := flownet.BuildReuse(m, p, d, scratch)
		if err != nil {
			o.Counter("placement_candidates_infeasible_total").Inc()
			return 0, false
		}
		scratch = n
		n.SetObserver(o)
		t, err := n.SolveTol(opt.Tolerance)
		if err != nil {
			o.Counter("placement_candidates_infeasible_total").Inc()
			return 0, false
		}
		return t.Sec(), true
	}
	score := func(p *topology.Placement) (float64, bool) {
		evaluations++
		o.Counter("placement_localsearch_evals_total").Inc()
		if opt.Cache == nil {
			return solve(p)
		}
		key, err := CanonicalKey(m, p)
		if err != nil {
			return 0, false
		}
		key = prefix + key
		if s, ok := opt.Cache.Get(key); ok {
			cacheHits++
			o.Counter("placement_cache_hits_total").Inc()
			return s.Seconds, !s.Infeasible
		}
		o.Counter("placement_cache_misses_total").Inc()
		sec, ok := solve(p)
		if ok {
			opt.Cache.Put(key, scorecache.Score{Seconds: sec})
		} else {
			opt.Cache.Put(key, scorecache.Score{Infeasible: true, Err: "localsearch: infeasible"})
		}
		return sec, ok
	}

	// neighbors yields single-device moves to any point with a free slot.
	neighbors := func(p *topology.Placement) []*topology.Placement {
		var out []*topology.Placement
		gpus, ssds := p.Counts()
		for i := range p.GPUAt {
			for _, pt := range points {
				if pt.id == p.GPUAt[i] || gpus[pt.id] >= pt.gpus {
					continue
				}
				q := p.Clone()
				q.GPUAt[i] = pt.id
				out = append(out, q)
			}
		}
		for i := range p.SSDAt {
			for _, pt := range points {
				if pt.id == p.SSDAt[i] || ssds[pt.id] >= pt.bays {
					continue
				}
				q := p.Clone()
				q.SSDAt[i] = pt.id
				out = append(out, q)
			}
		}
		return out
	}

	var best *topology.Placement
	bestT := 0.0
	for restart := 0; restart < opt.Restarts; restart++ {
		cur := randomPlacement()
		if cur == nil {
			opt.Explain.Add(obs.ExplainStep{Seq: restart, Stage: "restart", Reason: "no-feasible-start"})
			continue
		}
		curT, ok := score(cur)
		if !ok {
			opt.Explain.Add(obs.ExplainStep{Seq: restart, Stage: "restart", Reason: "infeasible-start"})
			continue
		}
		opt.Explain.Add(obs.ExplainStep{Seq: restart, Stage: "restart", Value: curT})
		for step := 0; step < opt.MaxSteps; step++ {
			improved := false
			for _, nb := range neighbors(cur) {
				t, ok := score(nb)
				if ok && t < curT*(1-1e-9) {
					cur, curT = nb, t
					improved = true
					o.Counter("placement_localsearch_moves_total").Inc()
					opt.Explain.Add(obs.ExplainStep{Seq: restart, Stage: "move", Count: step + 1, Value: t})
					break // first-improvement hill climbing
				}
			}
			if !improved {
				break
			}
		}
		if best == nil || curT < bestT {
			best, bestT = cur, curT
		}
	}
	if best == nil {
		return nil, fmt.Errorf("placement: local search found no feasible placement on %s", m.Name)
	}
	best.Name = fmt.Sprintf("%s(moment-ls)", m.Name)
	opt.Explain.Add(obs.ExplainStep{Seq: obs.SeqSummary, Stage: "localsearch", Reason: "evaluations", Count: evaluations})
	opt.Explain.Add(obs.ExplainStep{Seq: obs.SeqSummary, Stage: "localsearch", Reason: "score-cache-hits", Count: cacheHits})
	opt.Explain.Add(obs.ExplainStep{Seq: obs.SeqSummary, Stage: "result", Subject: best.Name, Value: bestT})
	sp.SetInt("evaluations", evaluations)
	sp.SetInt("cache_hits", cacheHits)
	sp.SetFloat("best_seconds", bestT)
	res := &Result{
		Best:       best,
		Time:       units.Seconds(bestT),
		Enumerated: evaluations,
		Evaluated:  evaluations,
		CacheHits:  cacheHits,
		Demand:     d,
		Machine:    m,
	}
	if bestT > 0 {
		res.Throughput = units.Bandwidth(d.TotalDemand() / bestT)
	}
	return res, nil
}
