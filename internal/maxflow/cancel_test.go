package maxflow

import (
	"context"
	"errors"
	"testing"
)

// A bisector with a done context must stop between probes and surface the
// context's error instead of ErrInfeasible or a bogus horizon.
func TestMinTimeCanceled(t *testing.T) {
	g := New(3)
	e1 := g.AddEdge(0, 1, 0)
	e2 := g.AddEdge(1, 2, 0)
	b := NewTimeBisector(g, 0, 2, 100)
	b.AddRateEdge(e1, 10)
	b.AddFixedEdge(e2, 100)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b.Ctx = ctx
	if _, err := b.MinTime(1e-6); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled MinTime err = %v, want context.Canceled", err)
	}

	// Detaching (or rebinding via Reinit) restores normal solving.
	b.Reinit(g, 0, 2, 100)
	b.AddRateEdge(e1, 10)
	b.AddFixedEdge(e2, 100)
	got, err := b.MinTime(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0 {
		t.Fatalf("MinTime = %v after Reinit, want positive horizon", got)
	}
}

// Cancellation mid-bisection: cancel after the first probe via a context
// that a probe hook trips. The bisector only checks between probes, so use
// a context canceled manually after doubling starts.
func TestMinTimeCanceledMidBisection(t *testing.T) {
	g := New(3)
	e1 := g.AddEdge(0, 1, 0)
	e2 := g.AddEdge(1, 2, 0)
	b := NewTimeBisector(g, 0, 2, 1e12)
	b.AddRateEdge(e1, 1) // forces many doubling steps from the initial guess
	b.AddFixedEdge(e2, 1e12)

	ctx, cancel := context.WithCancel(context.Background())
	b.Ctx = ctx
	cancel()
	if _, err := b.MinTime(1e-9); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-bisection MinTime err = %v, want context.Canceled", err)
	}
}
