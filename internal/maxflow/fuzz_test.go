package maxflow

import (
	"math"
	"testing"
)

// FuzzTimeBisector checks the two contracts MinTime rests on, over
// fuzz-generated two-layer networks (source → rate edges → mid nodes →
// fixed byte budgets → sink):
//
//  1. feasibility is monotone in the horizon — if all demand fits in t
//     seconds it fits in any longer horizon;
//  2. the returned minimum time sits on the boundary: feasible at T,
//     infeasible comfortably below it.
func FuzzTimeBisector(f *testing.F) {
	f.Add([]byte{1, 10, 100}, uint8(50))
	f.Add([]byte{3, 1, 2, 3, 4, 5, 6}, uint8(200))
	f.Add([]byte{8, 255, 1, 128, 7, 90, 13, 60, 2, 2, 2, 40, 80, 160, 240, 3, 9}, uint8(120))
	f.Add([]byte{2, 0, 0, 0, 0}, uint8(1))
	f.Fuzz(func(t *testing.T, data []byte, probeByte uint8) {
		if len(data) == 0 {
			t.Skip()
		}
		nMid := 1 + int(data[0])%4
		byteAt := func(k int) float64 {
			if len(data) == 1 {
				return 0
			}
			return float64(data[1+k%(len(data)-1)])
		}
		g := New(2 + nMid)
		s, sink := 0, 1
		b := NewTimeBisector(g, s, sink, 0)
		totalFixed := 0.0
		for i := 0; i < nMid; i++ {
			mid := 2 + i
			rate := 1 + byteAt(2*i) // >= 1 B/s so every budget eventually drains
			fixed := 1 + byteAt(2*i+1)
			b.AddRateEdge(g.AddEdge(s, mid, 0), rate)
			b.AddFixedEdge(g.AddEdge(mid, sink, 0), fixed)
			totalFixed += fixed
		}
		// Demand below the fixed-budget sum keeps the instance feasible at
		// some horizon; the interesting question is where the boundary is.
		b.Demand = totalFixed * 0.9
		const tol = 1e-4
		min, err := b.MinTime(tol)
		if err != nil {
			t.Fatalf("feasible-by-construction instance failed: %v", err)
		}
		if min <= 0 || math.IsInf(min, 1) || math.IsNaN(min) {
			t.Fatalf("MinTime = %v for positive demand %v", min, b.Demand)
		}
		if !b.Feasible(min) {
			t.Fatalf("MinTime %v not feasible", min)
		}
		// The bisection bracket guarantees infeasibility below
		// min/(1+tol); 0.4·min clears that bound with a wide margin.
		if b.Feasible(0.4 * min) {
			t.Fatalf("0.4 x MinTime (%v) still feasible — %v is not minimal", 0.4*min, min)
		}
		// Monotonicity at a fuzz-chosen probe point.
		probe := min * (0.5 + float64(probeByte)/128)
		if b.Feasible(probe) && !b.Feasible(2*probe) {
			t.Fatalf("feasibility not monotone: ok at %v, not at %v", probe, 2*probe)
		}
	})
}
