package maxflow

import (
	"context"
	"testing"
)

// poolNet builds a small two-layer network (source → relays → sink) whose
// shape varies with the parameters: rate edges feed the relays, fixed byte
// budgets drain them.
func poolNet(nMid int, scale, demand float64) *TimeBisector {
	g := New(nMid + 2)
	s, t := 0, nMid+1
	b := NewTimeBisector(g, s, t, demand)
	for i := 0; i < nMid; i++ {
		e := g.AddEdge(s, 1+i, 0)
		b.AddRateEdge(e, scale*float64(10+i*3))
		f := g.AddEdge(1+i, t, 0)
		b.AddFixedEdge(f, demand/float64(nMid)*1.5)
	}
	return b
}

// sequentialReference solves a probe exactly the way a pool worker does —
// clone onto a scratch arena, MinTime — but inline.
func sequentialReference(pr Probe) ProbeResult {
	arena := New(0)
	var bis TimeBisector
	pr.Bis.CloneOnto(&bis, pr.Bis.G.CloneInto(arena))
	before := arena.Stats()
	tm, err := bis.MinTime(pr.Tol)
	after := arena.Stats()
	return ProbeResult{
		Seq: pr.Seq, Tag: pr.Tag, Time: tm, Err: err,
		Stats: SolveStats{
			AugmentingPaths: after.AugmentingPaths - before.AugmentingPaths,
			Relabels:        after.Relabels - before.Relabels,
			Solves:          after.Solves - before.Solves,
		},
		Probes: bis.Probes, Iterations: bis.Iterations,
		WarmStarts: bis.WarmStarts, WarmAborts: bis.WarmAborts,
	}
}

func TestProbePoolMatchesSequential(t *testing.T) {
	var probes []Probe
	for i := 0; i < 24; i++ {
		b := poolNet(2+i%5, 1+0.37*float64(i%7), 1000+50*float64(i))
		probes = append(probes, Probe{Seq: i, Bis: b, Tol: 1e-4})
	}
	pool := &ProbePool{Workers: 4}
	got := pool.Solve(probes)
	if len(got) != len(probes) {
		t.Fatalf("pool returned %d results for %d probes", len(got), len(probes))
	}
	for i, r := range got {
		want := sequentialReference(probes[i])
		if r.Seq != want.Seq {
			t.Fatalf("result %d: seq %d, want %d", i, r.Seq, want.Seq)
		}
		if r.Err != nil || want.Err != nil {
			t.Fatalf("seq %d: unexpected errors pool=%v seq=%v", r.Seq, r.Err, want.Err)
		}
		if r.Time != want.Time {
			t.Fatalf("seq %d: pooled time %v != sequential %v", r.Seq, r.Time, want.Time)
		}
		if r.Stats != want.Stats {
			t.Fatalf("seq %d: pooled stats %+v != sequential %+v", r.Seq, r.Stats, want.Stats)
		}
		if r.Probes != want.Probes || r.Iterations != want.Iterations ||
			r.WarmStarts != want.WarmStarts || r.WarmAborts != want.WarmAborts {
			t.Fatalf("seq %d: bisector counters differ: pooled %+v sequential %+v", r.Seq, r, want)
		}
	}
	st := pool.Stats()
	if st.Submitted != int64(len(probes)) || st.Solved != int64(len(probes)) || st.Canceled != 0 {
		t.Fatalf("pool stats %+v, want submitted=solved=%d", st, len(probes))
	}
	// 4 workers → 8 arenas; everything past the initial fills is a reuse.
	if st.ArenaReuses < int64(len(probes))-8 {
		t.Fatalf("arena reuses %d, want >= %d", st.ArenaReuses, len(probes)-8)
	}
}

func TestBestProbeDeterministicMerge(t *testing.T) {
	// Identical networks at different seqs tie on time; the merge must pick
	// the lowest seq no matter the completion order.
	var probes []Probe
	for _, seq := range []int{7, 3, 11, 5} {
		probes = append(probes, Probe{Seq: seq, Bis: poolNet(3, 2, 500), Tol: 1e-4})
	}
	rs := (&ProbePool{Workers: 3}).Solve(probes)
	best, ok := BestProbe(rs)
	if !ok {
		t.Fatal("no feasible probe")
	}
	if best.Seq != 3 {
		t.Fatalf("tie broken to seq %d, want 3", best.Seq)
	}
	for _, r := range rs[1:] {
		if r.Time != rs[0].Time {
			t.Fatalf("identical networks solved to different times: %v vs %v", r.Time, rs[0].Time)
		}
	}
}

func TestProbePoolCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	pool := &ProbePool{Workers: 2, Ctx: ctx}
	pool.Start()
	if err := pool.Submit(Probe{Seq: 0, Bis: poolNet(3, 1, 800), Tol: 1e-4}); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	r := <-pool.Results()
	if r.Err != nil {
		t.Fatalf("pre-cancel result: %v", r.Err)
	}
	cancel()
	// Eventually every submission is refused with the context's error; the
	// free list may still serve a few in-flight slots first.
	refused := false
	for i := 0; i < 64 && !refused; i++ {
		if err := pool.Submit(Probe{Seq: 1 + i, Bis: poolNet(3, 1, 800), Tol: 1e-4}); err != nil {
			if err != context.Canceled {
				t.Fatalf("submit error %v, want context.Canceled", err)
			}
			refused = true
		}
	}
	if !refused {
		t.Fatal("submissions kept succeeding after cancel")
	}
	pool.Close() // must not deadlock with undelivered results
	for range pool.Results() {
		// drain whatever made it out
	}
}

func TestCloneOntoPreservesWarmState(t *testing.T) {
	proto := poolNet(4, 1.5, 1200)
	tm, err := proto.MinTime(1e-4)
	if err != nil {
		t.Fatal(err)
	}
	arena := New(0)
	var clone TimeBisector
	proto.CloneOnto(&clone, proto.G.CloneInto(arena))
	if !clone.Feasible(tm * 2) {
		t.Fatal("double the solved horizon must stay feasible")
	}
	if clone.WarmStarts != 1 {
		t.Fatalf("clone probe at a grown horizon should warm-start (WarmStarts=%d)", clone.WarmStarts)
	}
	// And the warm answer matches a cold solve of the same question.
	cold := poolNet(4, 1.5, 1200)
	cold.DisableWarmStart = true
	if !cold.Feasible(tm * 2) {
		t.Fatal("cold reference disagrees on feasibility")
	}
}

func TestCloneOntoArenaReuseAllocs(t *testing.T) {
	proto := poolNet(6, 2, 1500)
	arena := New(0)
	var scratch TimeBisector
	// Warm the arena pair once so the backing arrays exist.
	proto.CloneOnto(&scratch, proto.G.CloneInto(arena))
	allocs := testing.AllocsPerRun(200, func() {
		proto.CloneOnto(&scratch, proto.G.CloneInto(arena))
	})
	if allocs != 0 {
		t.Fatalf("warm arena clone allocates %v times per run, want 0", allocs)
	}
}
