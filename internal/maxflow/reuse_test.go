package maxflow

import (
	"math"
	"math/rand"
	"testing"
)

// buildInto constructs a deterministic seeded network in g (which may be a
// fresh New(0) or a Clear()ed arena) and returns source, sink, and the
// forward edge list. Shapes vary with the seed so arena reuse is exercised
// across differently sized rebuilds.
func buildInto(g *Graph, seed int64) (s, t int, edges []EdgeID) {
	r := rand.New(rand.NewSource(seed))
	n := 6 + r.Intn(10)
	s = g.AddNode("s")
	t = g.AddNode("t")
	mid := make([]int, n)
	for i := range mid {
		mid[i] = g.AddNode("mid")
	}
	for i, v := range mid {
		e := g.AddEdge(s, v, float64(1+r.Intn(50)))
		edges = append(edges, e)
		if i+1 < n {
			edges = append(edges, g.AddEdge(v, mid[i+1], float64(1+r.Intn(50))))
		}
		edges = append(edges, g.AddEdge(v, t, float64(1+r.Intn(50))))
	}
	return s, t, edges
}

// sameGraph cross-checks every observable of two graphs: node/edge counts,
// labels, endpoints, capacities, residuals, and flows.
func sameGraph(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("shape mismatch: got %d nodes/%d edges, want %d/%d",
			got.N(), got.M(), want.N(), want.M())
	}
	for v := 0; v < want.N(); v++ {
		if got.Label(v) != want.Label(v) {
			t.Fatalf("node %d label %q, want %q", v, got.Label(v), want.Label(v))
		}
	}
	for e := EdgeID(0); int(e) < 2*want.M(); e += 2 {
		gu, gv := got.Endpoints(e)
		wu, wv := want.Endpoints(e)
		if gu != wu || gv != wv {
			t.Fatalf("edge %d endpoints (%d,%d), want (%d,%d)", e, gu, gv, wu, wv)
		}
		if got.Capacity(e) != want.Capacity(e) {
			t.Fatalf("edge %d capacity %v, want %v", e, got.Capacity(e), want.Capacity(e))
		}
		if math.Abs(got.Flow(e)-want.Flow(e)) > Eps {
			t.Fatalf("edge %d flow %v, want %v", e, got.Flow(e), want.Flow(e))
		}
	}
}

// TestClearRebuildMatchesFresh is the satellite reuse table: for several
// seeds, rebuilding into a Clear()ed arena must be observationally
// identical to a fresh New+AddEdge construction — same labels, edge ids,
// capacities, flows, and max-flow value, with no stale state leaking from
// the previous occupant.
func TestClearRebuildMatchesFresh(t *testing.T) {
	arena := New(0)
	for _, tc := range []struct {
		name  string
		prep  func() // dirties the arena before the rebuild under test
		seed  int64
		solve bool
	}{
		{name: "after-empty", prep: func() {}, seed: 1, solve: true},
		{name: "after-smaller-net", prep: func() { buildInto(arena, 99) }, seed: 2, solve: true},
		{name: "after-solved-net", prep: func() {
			s, tt, _ := buildInto(arena, 42)
			arena.MaxFlow(s, tt, Dinic)
		}, seed: 3, solve: true},
		{name: "after-larger-net", prep: func() {
			s, tt, _ := buildInto(arena, 77) // seed 77 builds a bigger shape than 4
			arena.MaxFlow(s, tt, PushRelabel)
		}, seed: 4, solve: true},
		{name: "unsolved", prep: func() { buildInto(arena, 5) }, seed: 6, solve: false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			arena.Clear()
			tc.prep()
			arena.Clear()
			if arena.N() != 0 || arena.M() != 0 {
				t.Fatalf("Clear left %d nodes / %d edges", arena.N(), arena.M())
			}

			as, at, aEdges := buildInto(arena, tc.seed)
			fresh := New(0)
			fs, ft, fEdges := buildInto(fresh, tc.seed)
			if as != fs || at != ft || len(aEdges) != len(fEdges) {
				t.Fatalf("arena build diverged: terminals (%d,%d)/(%d,%d), %d vs %d edges",
					as, at, fs, ft, len(aEdges), len(fEdges))
			}
			for i := range aEdges {
				if aEdges[i] != fEdges[i] {
					t.Fatalf("edge id %d: arena %d, fresh %d", i, aEdges[i], fEdges[i])
				}
			}
			if tc.solve {
				fa := arena.MaxFlow(as, at, Dinic)
				ff := fresh.MaxFlow(fs, ft, Dinic)
				if math.Abs(fa-ff) > Eps {
					t.Fatalf("max flow %v on arena, %v on fresh graph", fa, ff)
				}
			}
			sameGraph(t, arena, fresh)
		})
	}
}

// TestCloneIntoMatchesClone verifies CloneInto against Clone on solved and
// unsolved graphs, including repeated clones into the same destination
// (sized both under and over the source).
func TestCloneIntoMatchesClone(t *testing.T) {
	dst := New(0)
	for _, seed := range []int64{1, 50, 2, 80, 3} { // alternating sizes
		src := New(0)
		s, tt, _ := buildInto(src, seed)
		if seed%2 == 1 {
			src.MaxFlow(s, tt, Dinic)
		}
		want := src.Clone()
		got := src.CloneInto(dst)
		if got != dst {
			t.Fatal("CloneInto did not return dst")
		}
		sameGraph(t, dst, want)
		if dst.Stats() != src.Stats() {
			t.Fatal("CloneInto dropped work counters")
		}
		// The clone must be independent: solving it must not disturb src.
		before := src.Clone()
		dst.MaxFlow(s, tt, EdmondsKarp)
		sameGraph(t, src, before)
	}
	// Self-clone is a no-op.
	g := New(0)
	s, tt, _ := buildInto(g, 9)
	g.MaxFlow(s, tt, Dinic)
	want := g.Clone()
	if g.CloneInto(g) != g {
		t.Fatal("self CloneInto did not return receiver")
	}
	sameGraph(t, g, want)
}

// TestCloneIntoThenMutate ensures a cloned-into graph supports the full
// mutation surface (AddNode/AddEdge after clone) without corrupting state
// inherited from the source.
func TestCloneIntoThenMutate(t *testing.T) {
	src := New(0)
	s, tt, _ := buildInto(src, 13)
	dst := New(0)
	buildInto(dst, 70) // dirty destination
	src.CloneInto(dst)
	v := dst.AddNode("extra")
	e := dst.AddEdge(s, v, 5)
	dst.AddEdge(v, tt, 5)
	if dst.N() != src.N()+1 || dst.M() != src.M()+2 {
		t.Fatalf("post-clone mutation shape: %d/%d", dst.N(), dst.M())
	}
	if dst.Label(v) != "extra" {
		t.Fatalf("new node label %q", dst.Label(v))
	}
	fresh := src.Clone()
	fv := fresh.AddNode("extra")
	fresh.AddEdge(s, fv, 5)
	fresh.AddEdge(fv, tt, 5)
	fa, ff := dst.MaxFlow(s, tt, Dinic), fresh.MaxFlow(s, tt, Dinic)
	if math.Abs(fa-ff) > Eps {
		t.Fatalf("mutated clone max flow %v, fresh %v", fa, ff)
	}
	_ = e
}

// TestArenaRebuildAllocs is the AllocsPerRun bound from the satellite: once
// the arena's arrays have grown to size, a Clear+rebuild (plus capacity
// re-application, the per-probe bisection pattern) performs zero
// allocations — the measurable point of the reuse API. The structure is
// precomputed outside the measured loop so the harness itself doesn't
// allocate.
func TestArenaRebuildAllocs(t *testing.T) {
	proto := New(0)
	_, _, protoEdges := buildInto(proto, 21)
	type arc struct {
		u, v int
		c    float64
	}
	arcs := make([]arc, 0, len(protoEdges))
	for _, e := range protoEdges {
		u, v := proto.Endpoints(e)
		arcs = append(arcs, arc{u, v, proto.Capacity(e)})
	}
	nodes := proto.N()

	arena := New(0)
	rebuild := func() {
		arena.Clear()
		for i := 0; i < nodes; i++ {
			arena.AddNode("n")
		}
		for _, a := range arcs {
			e := arena.AddEdge(a.u, a.v, a.c)
			arena.RaiseCapacity(e, a.c+1)
		}
	}
	rebuild() // grow the arrays once
	if avg := testing.AllocsPerRun(200, rebuild); avg != 0 {
		t.Errorf("arena rebuild allocates %.1f times per run, want 0", avg)
	}

	// CloneInto into a warmed destination is likewise allocation-free.
	src := New(0)
	buildInto(src, 21)
	dst := New(0)
	src.CloneInto(dst)
	if avg := testing.AllocsPerRun(200, func() { src.CloneInto(dst) }); avg != 0 {
		t.Errorf("warm CloneInto allocates %.1f times per run, want 0", avg)
	}
}
