package maxflow

import (
	"math"
	"math/rand"
	"testing"

	"moment/internal/faults"
)

// warmNet is one randomly generated bisection problem: a layered
// supply→storage→interconnect→gpu→demand network with a guaranteed
// backbone (so demand is always connected) plus random extra rate edges.
type warmNet struct {
	g        *Graph
	bis      *TimeBisector
	ssdRate  []EdgeID // storage egress rate edges, throttle targets
	ssdBase  []float64
	linkRate []EdgeID // interconnect rate edges, downtrain targets
	linkBase []float64
}

// buildWarmNet deterministically constructs the same network for a seed, so
// a warm and a cold bisector can run on independent but identical copies.
func buildWarmNet(seed int64, solver Solver, disableWarm bool) *warmNet {
	r := rand.New(rand.NewSource(seed))
	nStorage := 2 + r.Intn(3)
	nMid := 1 + r.Intn(3)
	nGPU := 2 + r.Intn(3)

	g := New(2)
	s, t := 0, 1
	storage := make([]int, nStorage)
	for i := range storage {
		storage[i] = g.AddNode("ssd")
	}
	mids := make([]int, nMid)
	for i := range mids {
		mids[i] = g.AddNode("mid")
	}
	gpus := make([]int, nGPU)
	for i := range gpus {
		gpus[i] = g.AddNode("gpu")
	}

	demand := 0.0
	perGPU := make([]float64, nGPU)
	for i := range perGPU {
		perGPU[i] = float64(50+r.Intn(200)) * 1e9
		demand += perGPU[i]
	}
	bis := NewTimeBisector(g, s, t, demand)
	bis.Solver = solver
	bis.DisableWarmStart = disableWarm

	w := &warmNet{g: g, bis: bis}

	// Supply: generous fixed budgets so storage is never the binding
	// constraint by construction (rates are).
	for _, sn := range storage {
		e := g.AddEdge(s, sn, 0)
		bis.AddFixedEdge(e, demand)
	}
	// Storage egress rate edges: backbone into mid 0 plus random extras.
	for i, sn := range storage {
		rate := float64(1+r.Intn(8)) * 1e9
		e := g.AddEdge(sn, mids[0], 0)
		bis.AddRateEdge(e, rate)
		w.ssdRate = append(w.ssdRate, e)
		w.ssdBase = append(w.ssdBase, rate)
		if i%2 == 1 && nMid > 1 {
			rate2 := float64(1+r.Intn(8)) * 1e9
			e2 := g.AddEdge(sn, mids[1+r.Intn(nMid-1)], 0)
			bis.AddRateEdge(e2, rate2)
			w.ssdRate = append(w.ssdRate, e2)
			w.ssdBase = append(w.ssdBase, rate2)
		}
	}
	// Interconnect: mids fully chained, each mid feeds every GPU.
	link := func(u, v int) {
		rate := float64(2+r.Intn(16)) * 1e9
		e := g.AddEdge(u, v, 0)
		bis.AddRateEdge(e, rate)
		w.linkRate = append(w.linkRate, e)
		w.linkBase = append(w.linkBase, rate)
	}
	for i := 0; i+1 < nMid; i++ {
		link(mids[i], mids[i+1])
	}
	for _, mid := range mids {
		for _, gpu := range gpus {
			link(mid, gpu)
		}
	}
	// Demand edges.
	for i, gpu := range gpus {
		e := g.AddEdge(gpu, t, 0)
		bis.AddFixedEdge(e, perGPU[i])
	}
	return w
}

// degrade applies a fault injector's time-t factors to the network's rate
// schedules (SSD egress via SSDFactor, interconnect via LinkFactor).
func (w *warmNet) degrade(t *testing.T, in *faults.Injector, at float64) {
	t.Helper()
	for i, e := range w.ssdRate {
		f := in.SSDFactor(i, at)
		if err := w.bis.SetRate(e, w.ssdBase[i]*f); err != nil {
			t.Fatal(err)
		}
	}
	for i, e := range w.linkRate {
		f := in.LinkFactor("up:sw0", at)
		if err := w.bis.SetRate(e, w.linkBase[i]*f); err != nil {
			t.Fatal(err)
		}
	}
}

// agree fails the test unless warm and cold MinTime answers match within
// the bisection's own relative tolerance (both may also agree on
// infeasibility).
func agree(t *testing.T, seed int64, tol float64, warm, cold *TimeBisector) {
	t.Helper()
	tw, errW := warm.MinTime(tol)
	tc, errC := cold.MinTime(tol)
	if (errW == nil) != (errC == nil) {
		t.Fatalf("seed %d: warm err %v, cold err %v", seed, errW, errC)
	}
	if errW != nil {
		return
	}
	diff := math.Abs(tw - tc)
	if diff > 2*tol*math.Max(tw, tc)+Eps {
		t.Fatalf("seed %d: warm MinTime %.9g, cold %.9g (diff %.3g beyond tolerance)",
			seed, tw, tc, diff)
	}
}

// TestWarmStartMatchesColdStart is the satellite property test: over 100
// seeded topologies, the warm-started bisector and a cold reference agree
// within the existing relative tolerance, and warm continuation actually
// fires (otherwise the optimization is dead code).
func TestWarmStartMatchesColdStart(t *testing.T) {
	const tol = 1e-4
	totalWarm := 0
	for seed := int64(0); seed < 100; seed++ {
		solver := []Solver{Dinic, EdmondsKarp, PushRelabel}[seed%3]
		warm := buildWarmNet(seed, solver, false)
		cold := buildWarmNet(seed, solver, true)
		agree(t, seed, tol, warm.bis, cold.bis)
		totalWarm += warm.bis.WarmStarts
		if cold.bis.WarmStarts != 0 {
			t.Fatalf("seed %d: DisableWarmStart bisector warm-started %d times",
				seed, cold.bis.WarmStarts)
		}
		// Repeat solves on the same bisector must stay consistent too
		// (warm state carries across MinTime calls).
		agree(t, seed, tol, warm.bis, cold.bis)
	}
	if totalWarm == 0 {
		t.Fatal("warm start never engaged across 100 topologies")
	}
}

// TestWarmStartUnderFaultSchedules replays deterministic fault-degraded
// capacity schedules (SSD throttles and link downtrains from
// internal/faults) against warm and cold bisectors: after every schedule
// step both must agree, throttle onsets must be self-detected as
// non-monotone (WarmAborts), and throttle recoveries must keep warm starts
// sound.
func TestWarmStartUnderFaultSchedules(t *testing.T) {
	const tol = 1e-4
	abortsSeen, warmSeen := 0, 0
	for seed := int64(0); seed < 20; seed++ {
		sched := &faults.Schedule{
			Seed: seed,
			Events: []faults.Event{
				faults.ThrottleSSD(0, 2, 0.5, 6),
				faults.ThrottleSSD(1, 5, 0.25, 5),
				faults.Downtrain("up:sw0", 4, 0.5, 4),
			},
		}
		in, err := faults.NewInjector(sched)
		if err != nil {
			t.Fatal(err)
		}
		warm := buildWarmNet(seed, Dinic, false)
		cold := buildWarmNet(seed, Dinic, true)
		for _, at := range []float64{0, 3, 6, 9, 12} {
			warm.degrade(t, in, at)
			cold.degrade(t, in, at)
			agree(t, seed, tol, warm.bis, cold.bis)
		}
		abortsSeen += warm.bis.WarmAborts
		warmSeen += warm.bis.WarmStarts
	}
	if warmSeen == 0 {
		t.Fatal("warm start never engaged under fault schedules")
	}
	if abortsSeen == 0 {
		t.Fatal("no warm abort recorded despite non-monotone throttle onsets")
	}
}

// TestWarmAbortSelfDetection pins the abandonment rule precisely: a probe
// at a growing horizon after a rate decrease must abort warm continuation
// (never silently reuse a now-invalid flow), and the post-abort answer must
// match a from-scratch bisector.
func TestWarmAbortSelfDetection(t *testing.T) {
	build := func() *warmNet { return buildWarmNet(7, Dinic, false) }
	w := build()
	probe := 5.0
	w.bis.Feasible(probe) // cold: establishes warm state at the probe horizon
	if w.bis.WarmStarts != 0 || w.bis.WarmAborts != 0 {
		t.Fatalf("counters after first probe: starts=%d aborts=%d",
			w.bis.WarmStarts, w.bis.WarmAborts)
	}

	// Growing horizon, unchanged schedule: must warm-start.
	w.bis.Feasible(probe * 1.5)
	if w.bis.WarmStarts != 1 {
		t.Fatalf("growing-horizon probe did not warm-start (starts=%d)", w.bis.WarmStarts)
	}

	// Halve one rate: the next growing-horizon probe sees a shrunk
	// capacity and must self-detect, abort, and cold-solve.
	if err := w.bis.SetRate(w.ssdRate[0], w.ssdBase[0]*0.5); err != nil {
		t.Fatal(err)
	}
	got := w.bis.Feasible(probe * 2)
	if w.bis.WarmAborts != 1 {
		t.Fatalf("non-monotone change not detected (aborts=%d)", w.bis.WarmAborts)
	}
	fresh := build()
	if err := fresh.bis.SetRate(fresh.ssdRate[0], fresh.ssdBase[0]*0.5); err != nil {
		t.Fatal(err)
	}
	if want := fresh.bis.Feasible(probe * 2); got != want {
		t.Fatalf("post-abort Feasible = %v, fresh bisector says %v", got, want)
	}

	// A fixed-budget decrease must likewise abort.
	w2 := build()
	w2.bis.Feasible(probe)
	var fixedEdge EdgeID = -1
	for _, e := range w2.bis.fixedEdges {
		fixedEdge = e
		break
	}
	if err := w2.bis.SetFixed(fixedEdge, 1); err != nil {
		t.Fatal(err)
	}
	w2.bis.Feasible(probe * 2)
	if w2.bis.WarmAborts != 1 {
		t.Fatalf("fixed-budget decrease not detected (aborts=%d)", w2.bis.WarmAborts)
	}

	// Shrinking horizons are the expected bisection pattern, not a
	// schedule violation: cold re-solve without counting an abort.
	w3 := build()
	w3.bis.Feasible(probe)
	w3.bis.Feasible(probe / 2)
	if w3.bis.WarmAborts != 0 {
		t.Fatalf("shrinking horizon miscounted as abort (aborts=%d)", w3.bis.WarmAborts)
	}
}

// TestSetRateSetFixedValidation covers the error paths of the schedule
// mutators.
func TestSetRateSetFixedValidation(t *testing.T) {
	w := buildWarmNet(3, Dinic, false)
	if err := w.bis.SetRate(w.ssdRate[0], -1); err == nil {
		t.Error("negative rate accepted")
	}
	if err := w.bis.SetRate(w.ssdRate[0], math.NaN()); err == nil {
		t.Error("NaN rate accepted")
	}
	if err := w.bis.SetRate(9999, 1); err == nil {
		t.Error("unknown rate edge accepted")
	}
	if err := w.bis.SetFixed(w.ssdRate[0], 1); err == nil {
		t.Error("rate edge accepted as fixed edge")
	}
	if err := w.bis.SetFixed(9999, math.Inf(-1)); err == nil {
		t.Error("invalid byte budget accepted")
	}
}

// TestInvalidateWarmForcesCold verifies the explicit escape hatch for
// callers that mutate the graph behind the bisector's back.
func TestInvalidateWarmForcesCold(t *testing.T) {
	w := buildWarmNet(11, Dinic, false)
	w.bis.Feasible(4)
	w.bis.InvalidateWarm()
	w.bis.Feasible(8) // growing horizon, but warm state was discarded
	if w.bis.WarmStarts != 0 {
		t.Fatalf("warm start fired after InvalidateWarm (starts=%d)", w.bis.WarmStarts)
	}
	if w.bis.WarmAborts != 0 {
		t.Fatalf("InvalidateWarm path miscounted as abort (aborts=%d)", w.bis.WarmAborts)
	}
}

// TestReinitDropsState verifies arena rebinding: registered edges, probe
// counters, and warm state all reset while the bisector struct is reused.
func TestReinitDropsState(t *testing.T) {
	w := buildWarmNet(5, Dinic, false)
	if _, err := w.bis.MinTime(1e-4); err != nil {
		t.Fatal(err)
	}
	if w.bis.Probes == 0 {
		t.Fatal("no probes recorded before Reinit")
	}
	g2 := New(2)
	w.bis.Reinit(g2, 0, 1, 42)
	if w.bis.G != g2 || w.bis.Demand != 42 {
		t.Fatal("Reinit did not rebind graph/demand")
	}
	if len(w.bis.rateEdges) != 0 || len(w.bis.fixedEdges) != 0 {
		t.Fatal("Reinit kept registered edges")
	}
	if w.bis.Probes != 0 || w.bis.WarmStarts != 0 || w.bis.WarmAborts != 0 || w.bis.warmOK {
		t.Fatal("Reinit kept counters or warm state")
	}
	// The recycled bisector must solve a fresh problem correctly.
	e := g2.AddEdge(0, 1, 0)
	w.bis.AddRateEdge(e, 42) // 42 bytes/sec, 42 bytes → 1 second
	got, err := w.bis.MinTime(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-3 {
		t.Fatalf("recycled bisector MinTime = %v, want ~1", got)
	}
}

// TestWarmStartLeavesUsableFlow ensures the flow left on the graph after a
// warm-started MinTime routes exactly the demand (the property flownet's
// metric accessors rely on).
func TestWarmStartLeavesUsableFlow(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		w := buildWarmNet(seed, Dinic, false)
		if _, err := w.bis.MinTime(1e-4); err != nil {
			t.Fatal(err)
		}
		delivered := 0.0
		for _, e := range w.bis.fixedEdges {
			u, _ := w.g.Endpoints(e)
			if u != w.bis.S { // demand edges into the sink
				delivered += w.g.Flow(e)
			}
		}
		if math.Abs(delivered-w.bis.Demand) > relEps(w.bis.Demand)+Eps {
			t.Fatalf("seed %d: flow delivers %.6g of %.6g demand",
				seed, delivered, w.bis.Demand)
		}
	}
}
