// Package maxflow implements maximum-flow solvers on capacity-constrained
// directed graphs, the optimization core of Moment's communication planner
// (paper §3.2). Three solvers are provided — Edmonds–Karp, Dinic, and FIFO
// push–relabel — along with minimum-cut extraction, flow decomposition into
// source→sink paths (used to turn a flow into per-link traffic assignments),
// and the time-bisection feasibility procedure the paper uses to score
// hardware placement candidates.
//
// Capacities are float64 (bytes or bytes/second); comparisons use a small
// epsilon so profiled bandwidths compose without spurious infeasibility.
package maxflow

import (
	"fmt"
	"math"
)

// Eps is the capacity comparison tolerance. Capacities in Moment are link
// bandwidths (~1e9..1e11), so 1e-6 absolute slack is far below measurement
// noise while still catching genuine zero-capacity residuals.
const Eps = 1e-6

// Inf is the capacity used for virtual (unbounded) edges.
var Inf = math.Inf(1)

// EdgeID identifies an edge returned by AddEdge. The reverse (residual)
// companion of edge e is e^1.
type EdgeID int

// Graph is a directed flow network. The zero value is unusable; construct
// with New. Graph is not safe for concurrent mutation; Clone before sharing.
type Graph struct {
	n     int
	head  [][]EdgeID // adjacency: node -> incident edge ids (both directions)
	to    []int32
	cap   []float64 // original capacity
	resid []float64 // remaining (residual) capacity
	label []string  // optional node labels for diagnostics
	stats SolveStats
	// gen is bumped by every operation that changes capacities, flow, or
	// structure. Consumers that cache conclusions about the graph's state
	// (the TimeBisector's warm flow, cloned-arena bookkeeping) record the
	// generation they observed and treat a mismatch as "the graph moved
	// underneath me". Clone copies it; CloneInto advances the destination's
	// own counter so state keyed to the old contents can never match.
	gen uint64
}

// SolveStats counts the work done by this graph's solvers, cumulative over
// every MaxFlow call (graphs are per-goroutine, so plain ints suffice; the
// increments cost nothing measurable even with observability disabled).
type SolveStats struct {
	// AugmentingPaths counts successful augmentations: shortest paths
	// (Edmonds–Karp), blocking-flow augmentations (Dinic), and the
	// repair-phase augmentations after push–relabel.
	AugmentingPaths int64
	// Relabels counts push–relabel height increases.
	Relabels int64
	// Solves counts MaxFlow invocations.
	Solves int64
}

// Stats returns the cumulative solver work counters.
func (g *Graph) Stats() SolveStats { return g.stats }

// Generation returns a counter that advances on every mutation of the
// graph — capacity writes, flow changes (solves, Reset), and structural
// edits. Two reads returning the same value bracket a window in which the
// graph was untouched.
func (g *Graph) Generation() uint64 { return g.gen }

// New returns an empty flow network with n nodes, numbered 0..n-1.
func New(n int) *Graph {
	if n < 0 {
		panic("maxflow: negative node count")
	}
	return &Graph{
		n:     n,
		head:  make([][]EdgeID, n),
		label: make([]string, n),
	}
}

// AddNode appends a node and returns its index.
func (g *Graph) AddNode(label string) int {
	if n := len(g.head); n < cap(g.head) {
		// Arena reuse after Clear: re-expose the retained adjacency bucket
		// (truncated, so no stale edge ids leak) instead of appending nil,
		// which would discard its backing array.
		g.head = g.head[:n+1]
		g.head[n] = g.head[n][:0]
	} else {
		g.head = append(g.head, nil)
	}
	g.label = append(g.label, label)
	g.n++
	return g.n - 1
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of directed edges added via AddEdge (excluding the
// implicit residual companions).
func (g *Graph) M() int { return len(g.to) / 2 }

// SetLabel attaches a diagnostic label to node v.
func (g *Graph) SetLabel(v int, label string) { g.label[v] = label }

// Label returns node v's diagnostic label.
func (g *Graph) Label(v int) string { return g.label[v] }

// AddEdge inserts a directed edge u→v with the given capacity and returns
// its id. Capacity must be non-negative (Inf allowed for virtual edges).
func (g *Graph) AddEdge(u, v int, capacity float64) EdgeID {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("maxflow: edge (%d,%d) out of range [0,%d)", u, v, g.n))
	}
	if capacity < 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("maxflow: invalid capacity %v on edge (%d,%d)", capacity, u, v))
	}
	id := EdgeID(len(g.to))
	g.to = append(g.to, int32(v), int32(u))
	g.cap = append(g.cap, capacity, 0)
	g.resid = append(g.resid, capacity, 0)
	g.head[u] = append(g.head[u], id)
	g.head[v] = append(g.head[v], id^1)
	g.gen++
	return id
}

// SetCapacity resets edge e's capacity and clears any flow on it.
// Typically used between bisection probes; call Reset to clear all flow.
// Only forward edge ids returned by AddEdge are accepted: writing through a
// residual companion (odd id) would desynchronize cap/resid bookkeeping and
// silently corrupt every subsequent solve.
func (g *Graph) SetCapacity(e EdgeID, capacity float64) {
	g.checkForwardEdge(e, "SetCapacity")
	if capacity < 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("maxflow: invalid capacity %v", capacity))
	}
	g.cap[e] = capacity
	g.resid[e] = capacity
	g.resid[e^1] = 0
	g.gen++
}

// checkForwardEdge panics when e is out of range or names a residual
// companion (odd id) rather than a forward edge from AddEdge.
func (g *Graph) checkForwardEdge(e EdgeID, op string) {
	if e < 0 || int(e) >= len(g.to) {
		panic(fmt.Sprintf("maxflow: %s: edge %d out of range [0,%d)", op, e, len(g.to)))
	}
	if e&1 != 0 {
		panic(fmt.Sprintf("maxflow: %s: edge %d is a residual companion (odd id); use forward edge %d", op, e, e^1))
	}
}

// Capacity returns edge e's original capacity.
func (g *Graph) Capacity(e EdgeID) float64 { return g.cap[e] }

// Flow returns the flow currently routed on edge e (cap - residual).
// Flow on infinite-capacity edges is tracked via their reverse residual.
func (g *Graph) Flow(e EdgeID) float64 {
	if math.IsInf(g.cap[e], 1) {
		return g.resid[e^1]
	}
	f := g.cap[e] - g.resid[e]
	if f < 0 {
		return 0
	}
	return f
}

// Endpoints returns (u, v) for edge e.
func (g *Graph) Endpoints(e EdgeID) (int, int) {
	return int(g.to[e^1]), int(g.to[e])
}

// RaiseCapacity increases edge e's capacity without disturbing the flow
// currently routed on it (SetCapacity clears the edge's flow). Decreases
// are rejected: shrinking a capacity under live flow could leave negative
// residuals, so lowering requires SetCapacity (which resets flow). New
// capacities within Eps of the current one are a no-op.
func (g *Graph) RaiseCapacity(e EdgeID, capacity float64) {
	g.checkForwardEdge(e, "RaiseCapacity")
	if capacity < 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("maxflow: invalid capacity %v", capacity))
	}
	cur := g.cap[e]
	if math.IsInf(cur, 1) {
		if !math.IsInf(capacity, 1) {
			panic(fmt.Sprintf("maxflow: RaiseCapacity would lower edge %d from +Inf to %v", e, capacity))
		}
		return
	}
	if capacity < cur-Eps {
		panic(fmt.Sprintf("maxflow: RaiseCapacity would lower edge %d from %v to %v", e, cur, capacity))
	}
	if math.IsInf(capacity, 1) {
		// Flow on an infinite edge is tracked via the reverse residual,
		// which already holds the routed amount; only the forward side
		// becomes unbounded.
		g.cap[e] = capacity
		g.resid[e] = capacity
		g.gen++
		return
	}
	if delta := capacity - cur; delta > 0 {
		g.cap[e] = capacity
		g.resid[e] += delta
		g.gen++
	}
}

// Reset clears all flow, restoring every edge's residual to its capacity.
func (g *Graph) Reset() {
	for e := 0; e < len(g.cap); e += 2 {
		g.resid[e] = g.cap[e]
		g.resid[e+1] = 0
	}
	g.gen++
}

// Clear empties the graph — zero nodes, zero edges — while retaining every
// backing array, the arena half of the Clear+CloneInto reuse API: a
// subsequent rebuild of a similarly sized network through AddNode/AddEdge
// allocates nothing. Solver work counters survive (they are cumulative per
// arena, and callers meter them by before/after deltas).
func (g *Graph) Clear() {
	for v := range g.head {
		g.head[v] = g.head[v][:0]
	}
	g.head = g.head[:0]
	g.to = g.to[:0]
	g.cap = g.cap[:0]
	g.resid = g.resid[:0]
	g.label = g.label[:0]
	g.n = 0
	g.gen++
}

// Clone returns a deep copy of the graph including current flow.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		n:     g.n,
		head:  make([][]EdgeID, g.n),
		to:    append([]int32(nil), g.to...),
		cap:   append([]float64(nil), g.cap...),
		resid: append([]float64(nil), g.resid...),
		label: append([]string(nil), g.label...),
		stats: g.stats,
		gen:   g.gen,
	}
	for v := range g.head {
		c.head[v] = append([]EdgeID(nil), g.head[v]...)
	}
	return c
}

// CloneInto deep-copies g — structure, capacities, current flow, labels,
// and work counters, exactly like Clone — into dst, reusing dst's backing
// arrays where their capacity allows. Cloning into the same arena
// repeatedly allocates nothing once the arrays have grown to size.
// Returns dst. Cloning a graph into itself is a no-op.
func (g *Graph) CloneInto(dst *Graph) *Graph {
	if dst == g {
		return dst
	}
	dst.n = g.n
	dst.to = append(dst.to[:0], g.to...)
	dst.cap = append(dst.cap[:0], g.cap...)
	dst.resid = append(dst.resid[:0], g.resid...)
	dst.label = append(dst.label[:0], g.label...)
	dst.stats = g.stats
	// The destination's previous contents are gone: advance its own
	// generation (rather than adopting the source's) so any state keyed to
	// what the arena held before the clone is invalidated.
	dst.gen++
	// Adjacency: resize the outer slice preserving retained buckets, then
	// overwrite each bucket in place.
	for len(dst.head) < g.n {
		if n := len(dst.head); n < cap(dst.head) {
			dst.head = dst.head[:n+1]
		} else {
			dst.head = append(dst.head, nil)
		}
	}
	dst.head = dst.head[:g.n]
	for v := 0; v < g.n; v++ {
		dst.head[v] = append(dst.head[v][:0], g.head[v]...)
	}
	return dst
}

// Solver selects the augmenting algorithm.
type Solver int

const (
	// Dinic is the default solver: blocking flows over BFS level graphs.
	Dinic Solver = iota
	// EdmondsKarp augments along shortest paths (BFS Ford–Fulkerson).
	EdmondsKarp
	// PushRelabel is a FIFO push–relabel with the gap heuristic.
	PushRelabel
)

// String names the solver.
func (s Solver) String() string {
	switch s {
	case Dinic:
		return "dinic"
	case EdmondsKarp:
		return "edmonds-karp"
	case PushRelabel:
		return "push-relabel"
	}
	return fmt.Sprintf("solver(%d)", int(s))
}

// MaxFlow computes the maximum s→t flow using the chosen solver, leaving
// the flow recorded on the graph's edges. Any pre-existing flow is cleared.
func (g *Graph) MaxFlow(s, t int, solver Solver) float64 {
	if s < 0 || s >= g.n || t < 0 || t >= g.n {
		panic(fmt.Sprintf("maxflow: terminal out of range: s=%d t=%d n=%d", s, t, g.n))
	}
	if s == t {
		panic("maxflow: source equals sink")
	}
	g.stats.Solves++
	g.gen++
	g.Reset()
	switch solver {
	case EdmondsKarp:
		return g.edmondsKarp(s, t)
	case PushRelabel:
		return g.pushRelabel(s, t)
	default:
		return g.dinic(s, t)
	}
}

// Augment extends whatever valid flow currently sits on the graph to a
// maximum flow, without clearing it first, and returns only the additional
// amount routed. This is the warm-start primitive: a feasible flow plus the
// absence of augmenting paths is a maximum flow (Ford–Fulkerson), so
// continuing from a previous solve after capacities were raised (see
// RaiseCapacity) yields the same value as a cold solve. The starting state
// must be a valid flow — conservation at every internal node — which every
// completed MaxFlow/Augment leaves behind; push–relabel continuations run
// Dinic on the residual network, since PushRelabel's preflow initialization
// assumes empty edges.
func (g *Graph) Augment(s, t int, solver Solver) float64 {
	if s < 0 || s >= g.n || t < 0 || t >= g.n {
		panic(fmt.Sprintf("maxflow: terminal out of range: s=%d t=%d n=%d", s, t, g.n))
	}
	if s == t {
		panic("maxflow: source equals sink")
	}
	g.stats.Solves++
	g.gen++
	switch solver {
	case EdmondsKarp:
		return g.edmondsKarp(s, t)
	default:
		return g.dinic(s, t)
	}
}

func (g *Graph) edmondsKarp(s, t int) float64 {
	total := 0.0
	parent := make([]EdgeID, g.n)
	queue := make([]int, 0, g.n)
	for {
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = -2
		queue = append(queue[:0], s)
		found := false
	bfs:
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range g.head[u] {
				v := int(g.to[e])
				if parent[v] == -1 && g.resid[e] > Eps {
					parent[v] = e
					if v == t {
						found = true
						break bfs
					}
					queue = append(queue, v)
				}
			}
		}
		if !found {
			return total
		}
		// Bottleneck along the path.
		bottleneck := Inf
		for v := t; v != s; {
			e := parent[v]
			if g.resid[e] < bottleneck {
				bottleneck = g.resid[e]
			}
			v, _ = g.Endpoints(e)
		}
		for v := t; v != s; {
			e := parent[v]
			g.resid[e] -= bottleneck
			g.resid[e^1] += bottleneck
			v, _ = g.Endpoints(e)
		}
		g.stats.AugmentingPaths++
		total += bottleneck
	}
}

func (g *Graph) dinic(s, t int) float64 {
	total := 0.0
	level := make([]int32, g.n)
	iter := make([]int, g.n)
	queue := make([]int, 0, g.n)
	for {
		// Build level graph.
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, e := range g.head[u] {
				v := int(g.to[e])
				if level[v] < 0 && g.resid[e] > Eps {
					level[v] = level[u] + 1
					queue = append(queue, v)
				}
			}
		}
		if level[t] < 0 {
			return total
		}
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := g.dinicDFS(s, t, Inf, level, iter)
			if f <= Eps {
				break
			}
			g.stats.AugmentingPaths++
			total += f
		}
	}
}

func (g *Graph) dinicDFS(u, t int, limit float64, level []int32, iter []int) float64 {
	if u == t {
		return limit
	}
	for ; iter[u] < len(g.head[u]); iter[u]++ {
		e := g.head[u][iter[u]]
		v := int(g.to[e])
		if level[v] != level[u]+1 || g.resid[e] <= Eps {
			continue
		}
		d := g.dinicDFS(v, t, math.Min(limit, g.resid[e]), level, iter)
		if d > Eps {
			g.resid[e] -= d
			g.resid[e^1] += d
			return d
		}
	}
	return 0
}

func (g *Graph) pushRelabel(s, t int) float64 {
	n := g.n
	height := make([]int, n)
	excess := make([]float64, n)
	count := make([]int, 2*n+1) // nodes at each height, for the gap heuristic
	inQueue := make([]bool, n)
	queue := make([]int, 0, n)

	height[s] = n
	count[0] = n - 1
	count[n] = 1

	enqueue := func(v int) {
		if !inQueue[v] && v != s && v != t && excess[v] > Eps {
			inQueue[v] = true
			queue = append(queue, v)
		}
	}

	// Saturate source edges.
	for _, e := range g.head[s] {
		if e%2 != 0 { // only forward edges leave flow from s initially
			continue
		}
		c := g.resid[e]
		if c <= Eps {
			continue
		}
		if math.IsInf(c, 1) {
			// Infinite arcs out of the source would make excess infinite;
			// cap the initial push by the total finite capacity of the
			// graph (an upper bound on any feasible flow).
			c = g.finiteCapSum()
		}
		v := int(g.to[e])
		g.resid[e] -= c
		g.resid[e^1] += c
		excess[v] += c
		excess[s] -= c
		enqueue(v)
	}

	relabel := func(u int) {
		g.stats.Relabels++
		count[height[u]]--
		minH := 2 * n
		for _, e := range g.head[u] {
			if g.resid[e] > Eps {
				if h := height[int(g.to[e])] + 1; h < minH {
					minH = h
				}
			}
		}
		if count[height[u]] == 0 && height[u] < n {
			// Gap heuristic: lift every node stranded above the gap.
			gap := height[u]
			for v := 0; v < n; v++ {
				if v != s && height[v] > gap && height[v] < n {
					count[height[v]]--
					height[v] = n + 1
					count[height[v]]++
				}
			}
		}
		height[u] = minH
		count[minH]++
	}

	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		for excess[u] > Eps {
			pushed := false
			for _, e := range g.head[u] {
				if excess[u] <= Eps {
					break
				}
				v := int(g.to[e])
				if g.resid[e] > Eps && height[u] == height[v]+1 {
					d := math.Min(excess[u], g.resid[e])
					g.resid[e] -= d
					g.resid[e^1] += d
					excess[u] -= d
					excess[v] += d
					enqueue(v)
					pushed = true
				}
			}
			if !pushed {
				relabel(u)
				if height[u] >= 2*n {
					break
				}
			}
		}
	}
	// Second phase: the preflow left on the edges is not necessarily a
	// flow. Eps-thresholded discharge can abandon sub-Eps excess at a node,
	// and float cancellation at large scales (returning a finiteCapSum-sized
	// excess across an infinite source arc rounds at ulp of that sum) can
	// annihilate small amounts from one edge's record but not its
	// neighbor's. Rebalance the recorded flows so conservation holds.
	g.rebalance(s, t)
	// Rebalancing cancels flow upstream and may unsaturate a former cut
	// edge; finish with augmenting paths so the flow is maximal again.
	return excess[t] + g.dinic(s, t)
}

// rebalance converts the edge-recorded preflow into a valid flow: at every
// internal node whose recorded inflow exceeds its recorded outflow, cancel
// the surplus on incoming flow-carrying edges, propagating it upstream
// until it is absorbed at the source, the sink, or a deficit node. Works
// purely on the edge bookkeeping, so it also repairs imbalances that exist
// only there (where no residual path back to the source survives).
func (g *Graph) rebalance(s, t int) {
	surplus := make([]float64, g.n)
	for i := 0; i < len(g.to); i += 2 {
		f := g.Flow(EdgeID(i))
		if f <= 0 {
			continue
		}
		surplus[int(g.to[i])] += f
		surplus[int(g.to[i^1])] -= f
	}
	inWork := make([]bool, g.n)
	work := make([]int, 0, g.n)
	push := func(v int) {
		if v != s && v != t && surplus[v] > Eps/2 && !inWork[v] {
			inWork[v] = true
			work = append(work, v)
		}
	}
	for v := 0; v < g.n; v++ {
		push(v)
	}
	// Each cancellation either clears a node's surplus or zeroes an edge's
	// flow; the budget is a safety net against float ping-pong on cycles.
	for budget := 4 * g.n * len(g.to); len(work) > 0 && budget > 0; budget-- {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[v] = false
		for _, e := range g.head[v] {
			if surplus[v] <= 0 {
				break
			}
			if e&1 == 0 {
				continue // even ids in head[v] leave v; odd ids mirror edges into v
			}
			f := g.Flow(e ^ 1)
			if f <= 0 {
				continue
			}
			d := math.Min(surplus[v], f)
			g.resid[e^1] += d
			g.resid[e] -= d
			surplus[v] -= d
			u := int(g.to[e])
			surplus[u] += d
			push(u)
		}
	}
}

func (g *Graph) finiteCapSum() float64 {
	sum := 0.0
	for e := 0; e < len(g.cap); e += 2 {
		if !math.IsInf(g.cap[e], 1) {
			sum += g.cap[e]
		}
	}
	return sum
}

// MinCut returns the edges crossing the minimum s-side cut after MaxFlow has
// run, plus the set of nodes on the source side. The sum of the returned
// edges' capacities equals the max-flow value (max-flow min-cut theorem).
func (g *Graph) MinCut(s int) (edges []EdgeID, sourceSide []bool) {
	sourceSide = make([]bool, g.n)
	queue := []int{s}
	sourceSide[s] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.head[u] {
			v := int(g.to[e])
			if !sourceSide[v] && g.resid[e] > Eps {
				sourceSide[v] = true
				queue = append(queue, v)
			}
		}
	}
	for e := EdgeID(0); int(e) < len(g.to); e += 2 {
		u, v := g.Endpoints(e)
		if sourceSide[u] && !sourceSide[v] {
			edges = append(edges, e)
		}
	}
	return edges, sourceSide
}

// Path is one source→sink flow path with the amount routed along it.
type Path struct {
	Nodes  []int
	Edges  []EdgeID
	Amount float64
}

// Decompose breaks the current flow into at most M source→sink paths
// (cycles in the flow, which the solvers here never produce for DAG-shaped
// communication graphs, are dropped). The graph's flow state is preserved.
func (g *Graph) Decompose(s, t int) []Path {
	// Work on a copy of per-edge flow.
	flow := make([]float64, len(g.to))
	for e := 0; e < len(g.to); e += 2 {
		flow[e] = g.Flow(EdgeID(e))
	}
	var paths []Path
	for {
		// Greedy DFS over positive-flow edges from s to t.
		parent := make([]EdgeID, g.n)
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = -2
		stack := []int{s}
		found := false
		for len(stack) > 0 && !found {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.head[u] {
				if e%2 != 0 {
					continue
				}
				v := int(g.to[e])
				if parent[v] == -1 && flow[e] > Eps {
					parent[v] = e
					if v == t {
						found = true
						break
					}
					stack = append(stack, v)
				}
			}
		}
		if !found {
			return paths
		}
		var p Path
		p.Amount = Inf
		for v := t; v != s; {
			e := parent[v]
			if flow[e] < p.Amount {
				p.Amount = flow[e]
			}
			p.Edges = append(p.Edges, e)
			p.Nodes = append(p.Nodes, v)
			v, _ = g.Endpoints(e)
		}
		p.Nodes = append(p.Nodes, s)
		reverseInts(p.Nodes)
		reverseEdges(p.Edges)
		for _, e := range p.Edges {
			flow[e] -= p.Amount
		}
		paths = append(paths, p)
	}
}

func reverseInts(a []int) {
	for i, j := 0, len(a)-1; i < j; i, j = i+1, j-1 {
		a[i], a[j] = a[j], a[i]
	}
}

func reverseEdges(a []EdgeID) {
	for i, j := 0, len(a)-1; i < j; i, j = i+1, j-1 {
		a[i], a[j] = a[j], a[i]
	}
}
