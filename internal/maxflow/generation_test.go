package maxflow

import "testing"

// TestWarmStateStaleAfterExternalShrink reproduces the warm-start staleness
// bug: an edge capacity shrunk directly on the graph (bypassing the
// bisector, no InvalidateWarm call) between probes. The monotonicity check
// only inspects registered edges, so before the generation counter the
// bisector warm-started from a flow that SetCapacity had already destroyed
// and reported a horizon feasible that the cold truth rejects.
func TestWarmStateStaleAfterExternalShrink(t *testing.T) {
	g := New(3) // 0 = source, 1 = relay, 2 = sink
	sa := g.AddEdge(0, 1, 0)
	at := g.AddEdge(1, 2, 100)
	b := NewTimeBisector(g, 0, 2, 100)
	b.AddRateEdge(sa, 100)

	if !b.Feasible(1) {
		t.Fatal("horizon 1 must be feasible before the shrink")
	}
	// Shrink the unregistered relay edge directly. This both invalidates
	// the saved warm flow (SetCapacity clears the edge's flow, so the 100
	// bytes recorded as delivered are fiction) and is invisible to the
	// registered-edge monotonicity check.
	g.SetCapacity(at, 10)
	if b.Feasible(2) {
		t.Fatal("stale warm state: horizon 2 reported feasible after the relay shrank to 10 B/s-equivalent")
	}

	// Cold reference agrees.
	cold := NewTimeBisector(g.Clone(), 0, 2, 100)
	cold.AddRateEdge(sa, 100)
	cold.DisableWarmStart = true
	if cold.Feasible(2) {
		t.Fatal("cold reference disagrees: horizon 2 should be infeasible")
	}

	// The warm machinery must re-engage after the self-detected
	// invalidation: the next growing-horizon probe warm-starts again.
	warmBefore := b.WarmStarts
	if b.Feasible(3) {
		t.Fatal("horizon 3 still infeasible with the relay at 10")
	}
	if b.WarmStarts != warmBefore+1 {
		t.Fatalf("warm start did not re-engage after invalidation: WarmStarts %d -> %d", warmBefore, b.WarmStarts)
	}
}

// TestGenerationSemantics pins which operations advance the generation
// counter and which leave it alone.
func TestGenerationSemantics(t *testing.T) {
	g := New(2)
	last := g.Generation()
	step := func(name string, want bool, f func()) {
		t.Helper()
		f()
		moved := g.Generation() != last
		if moved != want {
			t.Fatalf("%s: generation moved=%v, want %v", name, moved, want)
		}
		last = g.Generation()
	}
	var e EdgeID
	step("AddEdge", true, func() { e = g.AddEdge(0, 1, 5) })
	step("Capacity read", false, func() { _ = g.Capacity(e) })
	step("Flow read", false, func() { _ = g.Flow(e) })
	step("SetCapacity", true, func() { g.SetCapacity(e, 7) })
	step("RaiseCapacity grow", true, func() { g.RaiseCapacity(e, 9) })
	step("RaiseCapacity no-op", false, func() { g.RaiseCapacity(e, 9) })
	step("MaxFlow", true, func() { g.MaxFlow(0, 1, Dinic) })
	step("Augment", true, func() { g.Augment(0, 1, Dinic) })
	step("Reset", true, func() { g.Reset() })
	step("Clear", true, func() { g.Clear() })

	// Clone carries the source's generation; CloneInto advances the
	// destination's own counter instead of adopting the source's, so
	// anything keyed to the arena's previous contents cannot match.
	src := New(2)
	src.AddEdge(0, 1, 3)
	if c := src.Clone(); c.Generation() != src.Generation() {
		t.Fatalf("Clone generation %d != source %d", c.Generation(), src.Generation())
	}
	arena := New(2)
	arena.AddEdge(0, 1, 1)
	before := arena.Generation()
	src.CloneInto(arena)
	if arena.Generation() == before {
		t.Fatal("CloneInto must advance the destination's generation")
	}
}
