package maxflow

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// ErrInfeasible is returned when no horizon can satisfy the demand (some
// demand is disconnected from the source, or a fixed edge caps it).
var ErrInfeasible = errors.New("maxflow: demand unsatisfiable at any horizon")

// TimeBisector estimates the minimum wall-clock time T at which a set of
// byte demands can be routed through a bandwidth-constrained network —
// the paper's "time-bisection Ford–Fulkerson" (§3.2, Problem Solving).
//
// Edge capacities come in two flavors:
//   - rate edges: physical links whose capacity is a bandwidth; at horizon T
//     they can carry rate·T bytes;
//   - fixed edges: byte budgets independent of T (per-GPU demand arcs into
//     the sink, or per-storage supply arcs out of the source).
//
// Feasible(T) asks whether max-flow at horizon T moves all Demand bytes;
// MinTime binary-searches the smallest such T.
type TimeBisector struct {
	G      *Graph
	S, T   int
	Demand float64 // total bytes that must arrive at the sink
	Solver Solver

	// DisableWarmStart forces every probe to rebuild all capacities and
	// solve from an empty flow — the pre-warm-start behavior, kept as the
	// differential reference (and escape hatch). Default off: probes at a
	// horizon at or above the last solved one reuse the flow already on
	// the graph and only augment the difference.
	DisableWarmStart bool

	// Ctx, when non-nil, lets an abandoned caller stop a bisection early:
	// MinTime checks it before every probe and returns the context's error
	// once it is done. Probe granularity keeps the check off the inner
	// augmenting-path loop — a single max-flow solve on these networks is
	// microseconds, so cancellation latency is one probe, not one solve
	// sequence. Cleared by Reinit (a rebound bisector serves a new caller).
	Ctx context.Context

	rateEdges  []EdgeID
	rates      []float64
	fixedEdges []EdgeID
	fixed      []float64

	// Probes counts Feasible evaluations (each one max-flow solve) and
	// Iterations counts halving steps of the bisection loop, excluding the
	// doubling phase; both reset at the start of each MinTime. Plain ints:
	// bisectors are not shared across goroutines, and callers report them
	// to an observer after the solve rather than paying atomics inside it.
	Probes     int
	Iterations int
	// WarmStarts counts probes that reused the previous probe's flow, and
	// WarmAborts counts warm attempts abandoned because a capacity would
	// have shrunk (non-monotone schedule change, e.g. a rate lowered via
	// SetRate between solves — self-detected, never silently wrong). Both
	// are cumulative across MinTime calls, unlike Probes/Iterations, so
	// fault-degradation sequences can audit warm behavior over a whole
	// schedule.
	WarmStarts int
	WarmAborts int

	// Warm-start bookkeeping: when warmOK, the graph holds a maximum flow
	// of value warmFlow for the capacities of horizon warmT under the
	// schedule applied at that probe, and the graph has not been mutated
	// since (warmGen matches the graph's generation counter). Any mutation
	// that bypasses the bisector — a direct SetCapacity, an external solve,
	// an arena clone — advances the generation and auto-invalidates the
	// warm state on the next probe: the monotonicity check alone only
	// inspects registered edges, so without the generation guard a shrink
	// elsewhere in the graph could silently warm-start from a flow that is
	// no longer real.
	warmT    float64
	warmFlow float64
	warmOK   bool
	warmGen  uint64
}

// NewTimeBisector wraps g for bisection between terminals s and t.
func NewTimeBisector(g *Graph, s, t int, demand float64) *TimeBisector {
	return &TimeBisector{G: g, S: s, T: t, Demand: demand}
}

// AddRateEdge registers edge e as a bandwidth edge with the given rate
// (bytes/second). Infinite rates stay infinite at every horizon.
func (b *TimeBisector) AddRateEdge(e EdgeID, rate float64) {
	b.G.checkForwardEdge(e, "AddRateEdge")
	if rate < 0 || math.IsNaN(rate) {
		panic(fmt.Sprintf("maxflow: invalid rate %v", rate))
	}
	b.rateEdges = append(b.rateEdges, e)
	b.rates = append(b.rates, rate)
}

// AddFixedEdge registers edge e as a horizon-independent byte budget.
func (b *TimeBisector) AddFixedEdge(e EdgeID, bytes float64) {
	b.G.checkForwardEdge(e, "AddFixedEdge")
	if bytes < 0 || math.IsNaN(bytes) {
		panic(fmt.Sprintf("maxflow: invalid byte budget %v", bytes))
	}
	b.fixedEdges = append(b.fixedEdges, e)
	b.fixed = append(b.fixed, bytes)
}

// SetRate updates the bandwidth of a previously registered rate edge —
// the fault-degradation hook (SSD throttles, PCIe downtrains) that lets a
// schedule change between solves without rebuilding the network. The
// warm-start machinery self-detects the change on the next probe: a rate
// increase keeps warm continuation valid, a decrease makes the capacity
// schedule non-monotone and forces a cold re-solve (counted in WarmAborts).
func (b *TimeBisector) SetRate(e EdgeID, rate float64) error {
	if rate < 0 || math.IsNaN(rate) {
		return fmt.Errorf("maxflow: invalid rate %v", rate)
	}
	for i, re := range b.rateEdges {
		if re == e {
			b.rates[i] = rate
			return nil
		}
	}
	return fmt.Errorf("maxflow: edge %d is not a registered rate edge", e)
}

// SetFixed updates the byte budget of a previously registered fixed edge
// (demand or supply repricing between solves). Like SetRate, decreases are
// picked up by the warm-start monotonicity check and force a cold probe.
func (b *TimeBisector) SetFixed(e EdgeID, bytes float64) error {
	if bytes < 0 || math.IsNaN(bytes) {
		return fmt.Errorf("maxflow: invalid byte budget %v", bytes)
	}
	for i, fe := range b.fixedEdges {
		if fe == e {
			b.fixed[i] = bytes
			return nil
		}
	}
	return fmt.Errorf("maxflow: edge %d is not a registered fixed edge", e)
}

// Reinit rebinds the bisector to a rebuilt graph, dropping every registered
// edge, counter, and warm state while retaining slice capacity — the
// bisector half of the graph arena reuse API (see Graph.Clear).
func (b *TimeBisector) Reinit(g *Graph, s, t int, demand float64) {
	b.G, b.S, b.T, b.Demand = g, s, t, demand
	b.Ctx = nil
	b.rateEdges = b.rateEdges[:0]
	b.rates = b.rates[:0]
	b.fixedEdges = b.fixedEdges[:0]
	b.fixed = b.fixed[:0]
	b.Probes, b.Iterations = 0, 0
	b.WarmStarts, b.WarmAborts = 0, 0
	b.warmOK = false
}

// CloneOnto copies the bisector — registered schedule, demand, solver,
// options, and warm-start state — onto dst, rebinding it to graph g, and
// returns dst. g must hold a copy of the receiver's graph state (typically
// via Graph.CloneInto onto a worker arena): the warm bookkeeping travels
// with the cloned flow and is rebased onto g's generation, so a warm
// receiver yields a warm clone. Work counters reset — the clone reports
// only its own solves. Slice capacity in dst is reused, so cloning onto a
// recycled arena pair allocates nothing.
func (b *TimeBisector) CloneOnto(dst *TimeBisector, g *Graph) *TimeBisector {
	dst.G, dst.S, dst.T, dst.Demand = g, b.S, b.T, b.Demand
	dst.Solver = b.Solver
	dst.DisableWarmStart = b.DisableWarmStart
	dst.Ctx = b.Ctx
	dst.rateEdges = append(dst.rateEdges[:0], b.rateEdges...)
	dst.rates = append(dst.rates[:0], b.rates...)
	dst.fixedEdges = append(dst.fixedEdges[:0], b.fixedEdges...)
	dst.fixed = append(dst.fixed[:0], b.fixed...)
	dst.Probes, dst.Iterations = 0, 0
	dst.WarmStarts, dst.WarmAborts = 0, 0
	dst.warmT, dst.warmFlow, dst.warmOK = b.warmT, b.warmFlow, b.warmOK
	dst.warmGen = g.gen
	return dst
}

// InvalidateWarm discards the warm-start state, forcing the next probe to
// re-apply capacities and solve cold. Direct graph mutations (bypassing the
// bisector) are also self-detected via the graph's generation counter, so
// calling this is no longer required for correctness — it remains as an
// explicit hint for callers that know their warm state is useless (e.g.
// before a batch of shrinking edits). SetRate/SetFixed never need it: the
// monotonicity check handles registered-schedule changes.
func (b *TimeBisector) InvalidateWarm() { b.warmOK = false }

// target returns the capacity of registered rate edge i at horizon t.
func (b *TimeBisector) target(i int, t float64) float64 {
	c := b.rates[i]
	if !math.IsInf(c, 1) {
		c *= t
	}
	return c
}

// apply sets all capacities for horizon T, clearing any flow on them.
func (b *TimeBisector) apply(t float64) {
	for i, e := range b.rateEdges {
		b.G.SetCapacity(e, b.target(i, t))
	}
	for i, e := range b.fixedEdges {
		b.G.SetCapacity(e, b.fixed[i])
	}
}

// monotone reports whether every registered edge's capacity at horizon t is
// at least its current capacity on the graph — the condition under which
// the flow already on the graph remains valid and warm continuation is
// sound. A single shrinking edge (smaller horizon, or a rate/budget lowered
// via SetRate/SetFixed) fails the check.
func (b *TimeBisector) monotone(t float64) bool {
	for i, e := range b.rateEdges {
		if capShrinks(b.G.Capacity(e), b.target(i, t)) {
			return false
		}
	}
	for i, e := range b.fixedEdges {
		if capShrinks(b.G.Capacity(e), b.fixed[i]) {
			return false
		}
	}
	return true
}

// capShrinks reports whether moving an edge from capacity cur to capacity
// next would shrink it beyond tolerance.
func capShrinks(cur, next float64) bool {
	if math.IsInf(cur, 1) {
		return !math.IsInf(next, 1)
	}
	return next < cur-Eps
}

// patch raises every registered edge to its horizon-t capacity in place,
// preserving the flow on the graph. Callers must have established
// monotone(t).
func (b *TimeBisector) patch(t float64) {
	for i, e := range b.rateEdges {
		b.G.RaiseCapacity(e, b.target(i, t))
	}
	for i, e := range b.fixedEdges {
		b.G.RaiseCapacity(e, b.fixed[i])
	}
}

// Feasible reports whether all demand can be delivered within horizon t,
// leaving the corresponding flow on the graph.
//
// When the horizon is at or above the last solved one and no capacity
// shrank in between, the probe warm-starts: capacities are raised in place
// and the previous flow is extended by augmentation instead of re-solved
// from scratch (identical value by max-flow/min-cut; see Graph.Augment).
func (b *TimeBisector) Feasible(t float64) bool {
	b.Probes++
	if b.warmOK && b.G.gen != b.warmGen {
		// The graph moved underneath us since the last probe (a direct
		// capacity write, an external solve, an arena reuse): the recorded
		// warm flow no longer describes the graph. Unlike a non-monotone
		// schedule change this is not a WarmAbort — the schedule may be
		// fine — it is simply stale state, discarded before it can lie.
		b.warmOK = false
	}
	if t <= 0 {
		// Nothing moves at a zero horizon. Still apply the horizon-0
		// capacities and clear any flow so callers reading Flow() or
		// Capacity() afterwards don't see stale state from an earlier
		// probe at a different horizon.
		b.apply(0)
		b.G.Reset()
		b.warmOK = false
		return b.Demand <= Eps
	}
	var flow float64
	switch {
	case !b.DisableWarmStart && b.warmOK && t >= b.warmT && b.monotone(t):
		b.WarmStarts++
		b.patch(t)
		flow = b.warmFlow + b.G.Augment(b.S, b.T, b.Solver)
	default:
		if !b.DisableWarmStart && b.warmOK && t >= b.warmT {
			// Warm continuation was structurally available (growing
			// horizon) but a capacity shrank underneath it: the schedule
			// changed non-monotonically. Record the self-detected abort.
			b.WarmAborts++
		}
		b.apply(t)
		flow = b.G.MaxFlow(b.S, b.T, b.Solver)
	}
	b.warmT, b.warmFlow, b.warmOK = t, flow, true
	b.warmGen = b.G.gen
	return flow >= b.Demand-relEps(b.Demand)
}

func relEps(v float64) float64 {
	return math.Max(Eps, 1e-9*math.Abs(v))
}

// canceled returns the context's error once Ctx is done, nil otherwise
// (including when no context is attached).
func (b *TimeBisector) canceled() error {
	if b.Ctx == nil {
		return nil
	}
	select {
	case <-b.Ctx.Done():
		return b.Ctx.Err()
	default:
		return nil
	}
}

// MinTime returns the smallest horizon (within relative tolerance tol, e.g.
// 1e-4) at which the demand is feasible. It doubles an initial guess until
// feasible (up to maxDoublings), then bisects. On return the graph holds a
// feasible flow for the reported horizon.
func (b *TimeBisector) MinTime(tol float64) (float64, error) {
	b.Probes, b.Iterations = 0, 0
	if err := b.canceled(); err != nil {
		return 0, err
	}
	if b.Demand <= Eps {
		// Same hygiene as Feasible(0): leave the graph in the consistent
		// zero-horizon state rather than whatever a previous probe wrote.
		b.apply(0)
		b.G.Reset()
		b.warmOK = false
		return 0, nil
	}
	if tol <= 0 {
		tol = 1e-4
	}
	// Initial guess: demand over the sum of source-side rates, a lower
	// bound on the completion time if the source edges are the bottleneck.
	rateSum := 0.0
	for _, r := range b.rates {
		if !math.IsInf(r, 1) {
			rateSum += r
		}
	}
	lo := 0.0
	hi := 1.0
	if rateSum > 0 {
		hi = b.Demand / rateSum * 2
		if hi <= 0 {
			hi = 1
		}
	}
	const maxDoublings = 80
	d := 0
	for ; d < maxDoublings && !b.Feasible(hi); d++ {
		if err := b.canceled(); err != nil {
			return 0, err
		}
		lo = hi
		hi *= 2
	}
	if d == maxDoublings {
		return 0, ErrInfeasible
	}
	for hi-lo > tol*hi {
		if err := b.canceled(); err != nil {
			return 0, err
		}
		b.Iterations++
		mid := (lo + hi) / 2
		if b.Feasible(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	// Leave a feasible flow on the graph for the reported horizon.
	if !b.Feasible(hi) {
		return 0, ErrInfeasible
	}
	return hi, nil
}

// Throughput returns demand/minTime in bytes/second, the aggregate delivery
// rate the paper reports as a placement candidate's predicted throughput.
func (b *TimeBisector) Throughput(tol float64) (float64, error) {
	t, err := b.MinTime(tol)
	if err != nil {
		return 0, err
	}
	if t == 0 {
		return math.Inf(1), nil
	}
	return b.Demand / t, nil
}
