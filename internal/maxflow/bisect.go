package maxflow

import (
	"errors"
	"fmt"
	"math"
)

// ErrInfeasible is returned when no horizon can satisfy the demand (some
// demand is disconnected from the source, or a fixed edge caps it).
var ErrInfeasible = errors.New("maxflow: demand unsatisfiable at any horizon")

// TimeBisector estimates the minimum wall-clock time T at which a set of
// byte demands can be routed through a bandwidth-constrained network —
// the paper's "time-bisection Ford–Fulkerson" (§3.2, Problem Solving).
//
// Edge capacities come in two flavors:
//   - rate edges: physical links whose capacity is a bandwidth; at horizon T
//     they can carry rate·T bytes;
//   - fixed edges: byte budgets independent of T (per-GPU demand arcs into
//     the sink, or per-storage supply arcs out of the source).
//
// Feasible(T) asks whether max-flow at horizon T moves all Demand bytes;
// MinTime binary-searches the smallest such T.
type TimeBisector struct {
	G      *Graph
	S, T   int
	Demand float64 // total bytes that must arrive at the sink
	Solver Solver

	rateEdges  []EdgeID
	rates      []float64
	fixedEdges []EdgeID
	fixed      []float64

	// Probes counts Feasible evaluations (each one max-flow solve) and
	// Iterations counts halving steps of the bisection loop, excluding the
	// doubling phase; both reset at the start of each MinTime. Plain ints:
	// bisectors are not shared across goroutines, and callers report them
	// to an observer after the solve rather than paying atomics inside it.
	Probes     int
	Iterations int
}

// NewTimeBisector wraps g for bisection between terminals s and t.
func NewTimeBisector(g *Graph, s, t int, demand float64) *TimeBisector {
	return &TimeBisector{G: g, S: s, T: t, Demand: demand}
}

// AddRateEdge registers edge e as a bandwidth edge with the given rate
// (bytes/second). Infinite rates stay infinite at every horizon.
func (b *TimeBisector) AddRateEdge(e EdgeID, rate float64) {
	b.G.checkForwardEdge(e, "AddRateEdge")
	if rate < 0 || math.IsNaN(rate) {
		panic(fmt.Sprintf("maxflow: invalid rate %v", rate))
	}
	b.rateEdges = append(b.rateEdges, e)
	b.rates = append(b.rates, rate)
}

// AddFixedEdge registers edge e as a horizon-independent byte budget.
func (b *TimeBisector) AddFixedEdge(e EdgeID, bytes float64) {
	b.G.checkForwardEdge(e, "AddFixedEdge")
	if bytes < 0 || math.IsNaN(bytes) {
		panic(fmt.Sprintf("maxflow: invalid byte budget %v", bytes))
	}
	b.fixedEdges = append(b.fixedEdges, e)
	b.fixed = append(b.fixed, bytes)
}

// apply sets all capacities for horizon T.
func (b *TimeBisector) apply(t float64) {
	for i, e := range b.rateEdges {
		c := b.rates[i]
		if !math.IsInf(c, 1) {
			c *= t
		}
		b.G.SetCapacity(e, c)
	}
	for i, e := range b.fixedEdges {
		b.G.SetCapacity(e, b.fixed[i])
	}
}

// Feasible reports whether all demand can be delivered within horizon t,
// leaving the corresponding flow on the graph.
func (b *TimeBisector) Feasible(t float64) bool {
	b.Probes++
	if t <= 0 {
		// Nothing moves at a zero horizon. Still apply the horizon-0
		// capacities and clear any flow so callers reading Flow() or
		// Capacity() afterwards don't see stale state from an earlier
		// probe at a different horizon.
		b.apply(0)
		b.G.Reset()
		return b.Demand <= Eps
	}
	b.apply(t)
	flow := b.G.MaxFlow(b.S, b.T, b.Solver)
	return flow >= b.Demand-relEps(b.Demand)
}

func relEps(v float64) float64 {
	return math.Max(Eps, 1e-9*math.Abs(v))
}

// MinTime returns the smallest horizon (within relative tolerance tol, e.g.
// 1e-4) at which the demand is feasible. It doubles an initial guess until
// feasible (up to maxDoublings), then bisects. On return the graph holds a
// feasible flow for the reported horizon.
func (b *TimeBisector) MinTime(tol float64) (float64, error) {
	b.Probes, b.Iterations = 0, 0
	if b.Demand <= Eps {
		// Same hygiene as Feasible(0): leave the graph in the consistent
		// zero-horizon state rather than whatever a previous probe wrote.
		b.apply(0)
		b.G.Reset()
		return 0, nil
	}
	if tol <= 0 {
		tol = 1e-4
	}
	// Initial guess: demand over the sum of source-side rates, a lower
	// bound on the completion time if the source edges are the bottleneck.
	rateSum := 0.0
	for _, r := range b.rates {
		if !math.IsInf(r, 1) {
			rateSum += r
		}
	}
	lo := 0.0
	hi := 1.0
	if rateSum > 0 {
		hi = b.Demand / rateSum * 2
		if hi <= 0 {
			hi = 1
		}
	}
	const maxDoublings = 80
	d := 0
	for ; d < maxDoublings && !b.Feasible(hi); d++ {
		lo = hi
		hi *= 2
	}
	if d == maxDoublings {
		return 0, ErrInfeasible
	}
	for hi-lo > tol*hi {
		b.Iterations++
		mid := (lo + hi) / 2
		if b.Feasible(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	// Leave a feasible flow on the graph for the reported horizon.
	if !b.Feasible(hi) {
		return 0, ErrInfeasible
	}
	return hi, nil
}

// Throughput returns demand/minTime in bytes/second, the aggregate delivery
// rate the paper reports as a placement candidate's predicted throughput.
func (b *TimeBisector) Throughput(tol float64) (float64, error) {
	t, err := b.MinTime(tol)
	if err != nil {
		return 0, err
	}
	if t == 0 {
		return math.Inf(1), nil
	}
	return b.Demand / t, nil
}
