package maxflow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var allSolvers = []Solver{Dinic, EdmondsKarp, PushRelabel}

// classic CLRS-style network with known max flow 23.
func clrsNetwork() (*Graph, int, int, float64) {
	g := New(6)
	s, v1, v2, v3, v4, t := 0, 1, 2, 3, 4, 5
	g.AddEdge(s, v1, 16)
	g.AddEdge(s, v2, 13)
	g.AddEdge(v1, v2, 10)
	g.AddEdge(v2, v1, 4)
	g.AddEdge(v1, v3, 12)
	g.AddEdge(v3, v2, 9)
	g.AddEdge(v2, v4, 14)
	g.AddEdge(v4, v3, 7)
	g.AddEdge(v3, t, 20)
	g.AddEdge(v4, t, 4)
	return g, s, t, 23
}

func TestMaxFlowClassic(t *testing.T) {
	for _, solver := range allSolvers {
		g, s, sink, want := clrsNetwork()
		got := g.MaxFlow(s, sink, solver)
		if math.Abs(got-want) > Eps {
			t.Errorf("%v: max flow = %v, want %v", solver, got, want)
		}
	}
}

func TestMaxFlowSingleEdge(t *testing.T) {
	for _, solver := range allSolvers {
		g := New(2)
		g.AddEdge(0, 1, 5)
		if got := g.MaxFlow(0, 1, solver); math.Abs(got-5) > Eps {
			t.Errorf("%v: got %v, want 5", solver, got)
		}
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	for _, solver := range allSolvers {
		g := New(4)
		g.AddEdge(0, 1, 5)
		g.AddEdge(2, 3, 5)
		if got := g.MaxFlow(0, 3, solver); got > Eps {
			t.Errorf("%v: got %v, want 0", solver, got)
		}
	}
}

func TestMaxFlowParallelPaths(t *testing.T) {
	// Two disjoint 3-hop paths, bottlenecks 2 and 7.
	for _, solver := range allSolvers {
		g := New(6)
		g.AddEdge(0, 1, 2)
		g.AddEdge(1, 2, 10)
		g.AddEdge(2, 5, 10)
		g.AddEdge(0, 3, 10)
		g.AddEdge(3, 4, 7)
		g.AddEdge(4, 5, 10)
		if got := g.MaxFlow(0, 5, solver); math.Abs(got-9) > Eps {
			t.Errorf("%v: got %v, want 9", solver, got)
		}
	}
}

func TestMaxFlowInfiniteVirtualEdges(t *testing.T) {
	// Source and sink attach via infinite virtual edges; the physical
	// bottleneck (12) must decide.
	for _, solver := range allSolvers {
		g := New(5)
		g.AddEdge(0, 1, Inf)
		g.AddEdge(1, 2, 12)
		g.AddEdge(2, 3, 30)
		g.AddEdge(3, 4, Inf)
		if got := g.MaxFlow(0, 4, solver); math.Abs(got-12) > Eps {
			t.Errorf("%v: got %v, want 12", solver, got)
		}
	}
}

func TestFlowConservationAndCapacity(t *testing.T) {
	for _, solver := range allSolvers {
		g, s, sink, _ := clrsNetwork()
		total := g.MaxFlow(s, sink, solver)
		checkConservation(t, g, s, sink, total)
	}
}

func checkConservation(t *testing.T, g *Graph, s, sink int, total float64) {
	t.Helper()
	net := make([]float64, g.N())
	for e := EdgeID(0); int(e) < 2*g.M(); e += 2 {
		u, v := g.Endpoints(e)
		f := g.Flow(e)
		if f < -Eps {
			t.Errorf("negative flow %v on edge %d", f, e)
		}
		if c := g.Capacity(e); !math.IsInf(c, 1) && f > c+Eps {
			t.Errorf("flow %v exceeds capacity %v on edge %d", f, c, e)
		}
		net[u] -= f
		net[v] += f
	}
	for v := 0; v < g.N(); v++ {
		want := 0.0
		switch v {
		case s:
			want = -total
		case sink:
			want = total
		}
		if math.Abs(net[v]-want) > 1e-6*(1+math.Abs(want)) {
			t.Errorf("node %d: net flow %v, want %v", v, net[v], want)
		}
	}
}

func TestMinCutMatchesMaxFlow(t *testing.T) {
	g, s, sink, want := clrsNetwork()
	g.MaxFlow(s, sink, Dinic)
	edges, side := g.MinCut(s)
	if !side[s] {
		t.Fatal("source not on source side")
	}
	if side[sink] {
		t.Fatal("sink on source side")
	}
	sum := 0.0
	for _, e := range edges {
		sum += g.Capacity(e)
	}
	if math.Abs(sum-want) > Eps {
		t.Errorf("cut capacity %v, want %v", sum, want)
	}
}

func TestDecompose(t *testing.T) {
	g, s, sink, want := clrsNetwork()
	g.MaxFlow(s, sink, Dinic)
	paths := g.Decompose(s, sink)
	sum := 0.0
	for _, p := range paths {
		sum += p.Amount
		if p.Nodes[0] != s || p.Nodes[len(p.Nodes)-1] != sink {
			t.Errorf("path endpoints %v", p.Nodes)
		}
		if len(p.Edges) != len(p.Nodes)-1 {
			t.Errorf("path shape: %d edges, %d nodes", len(p.Edges), len(p.Nodes))
		}
		for i, e := range p.Edges {
			u, v := g.Endpoints(e)
			if u != p.Nodes[i] || v != p.Nodes[i+1] {
				t.Errorf("edge %d does not connect consecutive path nodes", e)
			}
		}
		if p.Amount <= 0 {
			t.Errorf("non-positive path amount %v", p.Amount)
		}
	}
	if math.Abs(sum-want) > 1e-6 {
		t.Errorf("decomposed total %v, want %v", sum, want)
	}
	if len(paths) > g.M() {
		t.Errorf("too many paths: %d > %d edges", len(paths), g.M())
	}
}

func randomNetwork(r *rand.Rand) (*Graph, int, int) {
	n := 4 + r.Intn(10)
	g := New(n)
	m := n + r.Intn(3*n)
	for i := 0; i < m; i++ {
		u := r.Intn(n)
		v := r.Intn(n)
		if u == v {
			continue
		}
		g.AddEdge(u, v, float64(1+r.Intn(50)))
	}
	return g, 0, n - 1
}

func TestSolversAgreeOnRandomNetworks(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		g, s, sink := randomNetwork(r)
		want := g.Clone().MaxFlow(s, sink, Dinic)
		for _, solver := range []Solver{EdmondsKarp, PushRelabel} {
			got := g.Clone().MaxFlow(s, sink, solver)
			if math.Abs(got-want) > 1e-6*(1+want) {
				t.Fatalf("iter %d: %v=%v, dinic=%v", i, solver, got, want)
			}
		}
	}
}

func TestConservationOnRandomNetworks(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		g, s, sink := randomNetwork(r)
		total := g.MaxFlow(s, sink, PushRelabel)
		checkConservation(t, g, s, sink, total)
	}
}

func TestMinCutEqualsFlowOnRandomNetworks(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 100; i++ {
		g, s, sink := randomNetwork(r)
		total := g.MaxFlow(s, sink, Dinic)
		edges, _ := g.MinCut(s)
		sum := 0.0
		for _, e := range edges {
			sum += g.Capacity(e)
		}
		if math.Abs(sum-total) > 1e-6*(1+total) {
			t.Fatalf("iter %d: cut %v != flow %v", i, sum, total)
		}
	}
}

func TestMaxFlowScalesLinearlyProperty(t *testing.T) {
	// Scaling all capacities by k scales max flow by k.
	f := func(seed int64, kRaw uint8) bool {
		k := float64(kRaw%7) + 0.5
		r := rand.New(rand.NewSource(seed))
		g, s, sink := randomNetwork(r)
		base := g.Clone().MaxFlow(s, sink, Dinic)
		scaled := g.Clone()
		for e := EdgeID(0); int(e) < 2*g.M(); e += 2 {
			scaled.SetCapacity(e, g.Capacity(e)*k)
		}
		got := scaled.MaxFlow(s, sink, Dinic)
		return math.Abs(got-k*base) <= 1e-6*(1+k*base)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	g, s, sink, want := clrsNetwork()
	c := g.Clone()
	c.MaxFlow(s, sink, Dinic)
	// Original has no flow recorded.
	for e := EdgeID(0); int(e) < 2*g.M(); e += 2 {
		if g.Flow(e) != 0 {
			t.Fatalf("clone mutated original edge %d", e)
		}
	}
	if got := g.MaxFlow(s, sink, Dinic); math.Abs(got-want) > Eps {
		t.Errorf("original flow %v, want %v", got, want)
	}
}

func TestAddNodeAndLabels(t *testing.T) {
	g := New(1)
	v := g.AddNode("gpu0")
	if v != 1 || g.N() != 2 {
		t.Fatalf("AddNode returned %d, N=%d", v, g.N())
	}
	if g.Label(v) != "gpu0" {
		t.Errorf("label = %q", g.Label(v))
	}
	g.SetLabel(0, "src")
	if g.Label(0) != "src" {
		t.Errorf("label = %q", g.Label(0))
	}
	g.AddEdge(0, 1, 3)
	if got := g.MaxFlow(0, 1, Dinic); math.Abs(got-3) > Eps {
		t.Errorf("flow %v", got)
	}
}

func TestInvalidInputsPanic(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("negative nodes", func() { New(-1) })
	mustPanic("edge out of range", func() { New(2).AddEdge(0, 5, 1) })
	mustPanic("negative capacity", func() { New(2).AddEdge(0, 1, -1) })
	mustPanic("nan capacity", func() { New(2).AddEdge(0, 1, math.NaN()) })
	mustPanic("s==t", func() {
		g := New(2)
		g.AddEdge(0, 1, 1)
		g.MaxFlow(0, 0, Dinic)
	})
	mustPanic("terminal range", func() {
		g := New(2)
		g.AddEdge(0, 1, 1)
		g.MaxFlow(0, 7, Dinic)
	})
}

// Regression: SetCapacity through a residual companion (odd id) used to
// silently corrupt the cap/resid invariant; it must panic instead.
func TestSetCapacityRejectsResidualEdge(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	g := New(2)
	e := g.AddEdge(0, 1, 5)
	mustPanic("odd id", func() { g.SetCapacity(e^1, 3) })
	mustPanic("out of range", func() { g.SetCapacity(EdgeID(99), 3) })
	mustPanic("negative id", func() { g.SetCapacity(EdgeID(-2), 3) })
	// The forward edge itself must still be writable.
	g.SetCapacity(e, 3)
	if g.Capacity(e) != 3 {
		t.Fatalf("capacity = %v, want 3", g.Capacity(e))
	}
}

func TestSolverString(t *testing.T) {
	if Dinic.String() != "dinic" || EdmondsKarp.String() != "edmonds-karp" || PushRelabel.String() != "push-relabel" {
		t.Error("solver names changed")
	}
	if Solver(9).String() != "solver(9)" {
		t.Error("unknown solver name")
	}
}

func TestResetAndRerun(t *testing.T) {
	g, s, sink, want := clrsNetwork()
	for i := 0; i < 3; i++ {
		if got := g.MaxFlow(s, sink, Dinic); math.Abs(got-want) > Eps {
			t.Fatalf("run %d: got %v", i, got)
		}
	}
}

func TestAddingEdgeNeverDecreasesFlowProperty(t *testing.T) {
	// Monotonicity: adding capacity anywhere can only help.
	r := rand.New(rand.NewSource(314))
	for trial := 0; trial < 60; trial++ {
		g, s, sink := randomNetwork(r)
		before := g.Clone().MaxFlow(s, sink, Dinic)
		aug := g.Clone()
		u, v := r.Intn(aug.N()), r.Intn(aug.N())
		if u == v {
			continue
		}
		aug.AddEdge(u, v, float64(1+r.Intn(40)))
		after := aug.MaxFlow(s, sink, Dinic)
		if after < before-1e-6 {
			t.Fatalf("trial %d: flow fell from %v to %v after adding an edge", trial, before, after)
		}
	}
}

func TestIncreasingCapacityNeverDecreasesFlowProperty(t *testing.T) {
	f := func(seed int64, extraRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g, s, sink := randomNetwork(r)
		if g.M() == 0 {
			return true
		}
		before := g.Clone().MaxFlow(s, sink, Dinic)
		e := EdgeID(2 * r.Intn(g.M()))
		boosted := g.Clone()
		boosted.SetCapacity(e, g.Capacity(e)+float64(extraRaw)+1)
		after := boosted.MaxFlow(s, sink, Dinic)
		return after >= before-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBisectionMonotoneInDemandProperty(t *testing.T) {
	// A larger demand never completes sooner.
	f := func(seed int64, d1Raw, d2Raw uint8) bool {
		d1 := float64(d1Raw%100) + 1
		d2 := d1 + float64(d2Raw%100) + 1
		build := func(demand float64) (*TimeBisector, error) {
			g := New(3)
			e1 := g.AddEdge(0, 1, 0)
			e2 := g.AddEdge(1, 2, 0)
			b := NewTimeBisector(g, 0, 2, demand)
			b.AddRateEdge(e1, 7)
			b.AddFixedEdge(e2, demand)
			return b, nil
		}
		b1, _ := build(d1)
		b2, _ := build(d2)
		t1, err1 := b1.MinTime(1e-6)
		t2, err2 := b2.MinTime(1e-6)
		if err1 != nil || err2 != nil {
			return false
		}
		return t2 >= t1*(1-1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Regression: push–relabel saturates infinite source arcs with the total
// finite capacity of the graph. On networks mixing ~1e10 capacities with
// near-Eps ones, returning that huge excess across the infinite arc rounds
// at ulp(1e10) ≈ 1e-5, annihilating small amounts from the source arc's
// record but not from downstream edges — the terminal "flow" violated
// conservation at internal nodes by several Eps. The rebalance second phase
// repairs the edge bookkeeping; this network (found by the differential
// fuzzer, seed 195) reproduced the stranding.
func TestPushRelabelPreflowConservation(t *testing.T) {
	build := func() *Graph {
		g := New(12)
		g.AddEdge(0, 2, Inf)
		g.AddEdge(0, 3, 2.535364897054643e-06)
		g.AddEdge(2, 4, 7.867444635905543)
		g.AddEdge(2, 5, 20.55773233823611)
		g.AddEdge(3, 4, 84.74226788907367)
		g.AddEdge(3, 5, 8.569850121189482e+10)
		g.AddEdge(4, 6, 82.71214557085904)
		g.AddEdge(4, 7, 14.544122502422377)
		g.AddEdge(4, 7, 12.239377229854673)
		g.AddEdge(5, 6, 4.455243879174475e+10)
		g.AddEdge(5, 7, 84.88597237353588)
		g.AddEdge(6, 8, 9.8485983136785)
		g.AddEdge(6, 9, 3.500149582370192e+10)
		g.AddEdge(7, 11, 2.651265309570906)
		g.AddEdge(8, 10, 7.977778676014446e-06)
		g.AddEdge(9, 10, 81.8638921268878)
		g.AddEdge(9, 11, 33.54809575920687)
		return g
	}
	s, sink := 0, 1 // the sink is unreachable: the maximum flow is zero
	for _, sv := range []Solver{Dinic, EdmondsKarp, PushRelabel} {
		g := build()
		v := g.MaxFlow(s, sink, sv)
		if v > Eps {
			t.Errorf("%v: value %v, want 0 (sink unreachable)", sv, v)
		}
		in := make([]float64, g.N())
		out := make([]float64, g.N())
		for i := 0; i < g.M(); i++ {
			e := EdgeID(2 * i)
			u, w := g.Endpoints(e)
			f := g.Flow(e)
			out[u] += f
			in[w] += f
		}
		for nd := 0; nd < g.N(); nd++ {
			if nd == s || nd == sink {
				continue
			}
			if d := math.Abs(in[nd] - out[nd]); d > Eps {
				t.Errorf("%v: conservation violated at node %d: in %v, out %v", sv, nd, in[nd], out[nd])
			}
		}
	}
}
