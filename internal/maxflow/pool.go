package maxflow

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Probe is one independent time-bisection job for a ProbePool: solve the
// prototype bisector's network at the given tolerance. Seq is the caller's
// deterministic ordering tag (typically the candidate's enumeration index)
// used to break ties when merging results; Tag rides along untouched.
type Probe struct {
	Seq int
	Tag any
	Bis *TimeBisector
	Tol float64
}

// ProbeResult is one solved probe. Work accounting mirrors what a caller of
// MinTime would read off the bisector and its graph afterwards, as deltas
// covering this probe alone, so pooled solves can be metered identically to
// inline ones.
type ProbeResult struct {
	Seq  int
	Tag  any
	Time float64
	Err  error

	Stats       SolveStats // solver work (solves, augmenting paths, relabels)
	Probes      int
	Iterations  int
	WarmStarts  int
	WarmAborts  int
	WallSeconds float64
}

// Canceled reports whether the probe was abandoned by context cancellation
// rather than failing on the network itself — callers treat such results as
// transient (never cached, not counted as candidate failures).
func (r ProbeResult) Canceled() bool {
	return errors.Is(r.Err, context.Canceled) || errors.Is(r.Err, context.DeadlineExceeded)
}

// PoolStats is a snapshot of a ProbePool's lifetime counters.
type PoolStats struct {
	Submitted   int64 // probes accepted by Submit
	Solved      int64 // probes solved to completion (feasible or not)
	Canceled    int64 // probes or submissions abandoned via the context
	ArenaReuses int64 // submissions served by a recycled arena (vs a fresh one)
}

// poolArena is one worker-side scratch pair: a graph arena plus a bisector
// rebound onto it per job. Both retain their backing arrays across jobs, so
// a recycled arena absorbs a clone without allocating.
type poolArena struct {
	g    *Graph
	bis  TimeBisector
	used bool
}

type poolJob struct {
	seq   int
	tag   any
	tol   float64
	arena *poolArena
}

// ProbePool solves independent TimeBisector probes concurrently, one
// worker per goroutine, each on its own warm-started graph arena. Submit
// clones the prototype's graph and schedule synchronously (the caller may
// rebuild or reuse the prototype the moment Submit returns) onto a recycled
// arena from a bounded free list — the list doubles as backpressure, so a
// fast producer cannot outrun the solvers by more than the pipeline depth.
//
// Results are delivered on Results in completion order; merge them
// deterministically with BestProbe (min (Time, Seq)) or sort by Seq. A nil
// Ctx runs to completion; a canceling Ctx aborts queued submissions,
// in-flight bisections (per-probe checks, see TimeBisector.Ctx), and
// result delivery without deadlock.
type ProbePool struct {
	// Workers is the solver goroutine count; <= 0 means GOMAXPROCS.
	Workers int
	// Ctx, when non-nil, cancels the pool: submissions fail, in-flight
	// solves return the context error, undelivered results are dropped.
	Ctx context.Context

	nworkers  int
	jobs      chan poolJob
	results   chan ProbeResult
	free      chan *poolArena
	wg        sync.WaitGroup
	submitted atomic.Int64
	solved    atomic.Int64
	canceled  atomic.Int64
	reuses    atomic.Int64
}

// Start launches the worker goroutines. Must be called exactly once,
// before any Submit.
func (p *ProbePool) Start() {
	if p.jobs != nil {
		panic("maxflow: ProbePool started twice")
	}
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	p.nworkers = w
	p.jobs = make(chan poolJob, w)
	p.results = make(chan ProbeResult, w)
	// One arena per worker plus one per queue slot: Submit blocks only
	// when every solver is busy and the job queue is full.
	p.free = make(chan *poolArena, 2*w)
	for i := 0; i < 2*w; i++ {
		p.free <- &poolArena{g: New(0)}
	}
	p.wg.Add(w)
	for i := 0; i < w; i++ {
		go p.worker()
	}
}

// NumWorkers returns the resolved worker count (after Start).
func (p *ProbePool) NumWorkers() int { return p.nworkers }

// Submit clones the probe's network onto a pool arena and enqueues it.
// The clone happens on the caller's goroutine: when Submit returns, the
// prototype graph and bisector are free to be reused or rebuilt. Blocks
// for backpressure when the pool is saturated. Returns the context's error
// (submitting nothing) once Ctx is done.
func (p *ProbePool) Submit(pr Probe) error {
	var arena *poolArena
	if p.Ctx != nil {
		select {
		case arena = <-p.free:
		case <-p.Ctx.Done():
			p.canceled.Add(1)
			return p.Ctx.Err()
		}
	} else {
		arena = <-p.free
	}
	if arena.used {
		p.reuses.Add(1)
	}
	arena.used = true
	pr.Bis.CloneOnto(&arena.bis, pr.Bis.G.CloneInto(arena.g))
	if p.Ctx != nil {
		// The pool's context governs in-flight solves; it is expected to
		// be derived from (or identical to) the prototype's own context.
		arena.bis.Ctx = p.Ctx
	}
	job := poolJob{seq: pr.Seq, tag: pr.Tag, tol: pr.Tol, arena: arena}
	if p.Ctx != nil {
		select {
		case p.jobs <- job:
		case <-p.Ctx.Done():
			p.free <- arena
			p.canceled.Add(1)
			return p.Ctx.Err()
		}
	} else {
		p.jobs <- job
	}
	p.submitted.Add(1)
	return nil
}

// Results delivers solved probes in completion order. The channel closes
// after Close.
func (p *ProbePool) Results() <-chan ProbeResult { return p.results }

// Close ends the submission side, waits for in-flight solves, and closes
// Results. Call exactly once, after the last Submit.
func (p *ProbePool) Close() {
	close(p.jobs)
	p.wg.Wait()
	close(p.results)
}

// Stats returns a snapshot of the pool's lifetime counters.
func (p *ProbePool) Stats() PoolStats {
	return PoolStats{
		Submitted:   p.submitted.Load(),
		Solved:      p.solved.Load(),
		Canceled:    p.canceled.Load(),
		ArenaReuses: p.reuses.Load(),
	}
}

func (p *ProbePool) worker() {
	defer p.wg.Done()
	for job := range p.jobs {
		a := job.arena
		before := a.g.stats
		start := time.Now()
		tm, err := a.bis.MinTime(job.tol)
		wall := time.Since(start).Seconds()
		after := a.g.stats
		res := ProbeResult{
			Seq:  job.seq,
			Tag:  job.tag,
			Time: tm,
			Err:  err,
			Stats: SolveStats{
				AugmentingPaths: after.AugmentingPaths - before.AugmentingPaths,
				Relabels:        after.Relabels - before.Relabels,
				Solves:          after.Solves - before.Solves,
			},
			Probes:      a.bis.Probes,
			Iterations:  a.bis.Iterations,
			WarmStarts:  a.bis.WarmStarts,
			WarmAborts:  a.bis.WarmAborts,
			WallSeconds: wall,
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			p.canceled.Add(1)
		} else {
			p.solved.Add(1)
		}
		// Recycle before delivering: a blocked result send must not hold
		// an arena hostage from waiting submitters.
		p.free <- a
		if p.Ctx != nil {
			select {
			case p.results <- res:
			case <-p.Ctx.Done():
				// The consumer is gone; drop the result.
			}
		} else {
			p.results <- res
		}
	}
}

// Solve is the batch convenience: Start, submit every probe, Close, and
// return the results sorted by Seq. Submissions refused by a canceled
// context come back as results carrying the context error, so the output
// always has one entry per input probe.
func (p *ProbePool) Solve(probes []Probe) []ProbeResult {
	p.Start()
	out := make([]ProbeResult, 0, len(probes))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range p.results {
			out = append(out, r)
		}
	}()
	var refused []ProbeResult
	for _, pr := range probes {
		if err := p.Submit(pr); err != nil {
			refused = append(refused, ProbeResult{Seq: pr.Seq, Tag: pr.Tag, Err: err})
		}
	}
	p.Close()
	<-done
	out = append(out, refused...)
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// BestProbe merges pool results deterministically: the error-free result
// with the smallest Time wins, ties broken by the smallest Seq — the same
// rule the placement search's collector applies, so a pooled solve of N
// candidates picks the identical winner regardless of completion order.
func BestProbe(rs []ProbeResult) (best ProbeResult, ok bool) {
	for _, r := range rs {
		if r.Err != nil {
			continue
		}
		if !ok || r.Time < best.Time || (r.Time == best.Time && r.Seq < best.Seq) {
			best, ok = r, true
		}
	}
	return best, ok
}
